#include <gtest/gtest.h>

#include <cmath>

#include "core/distance_pref.h"
#include "generators/ba_gen.h"
#include "generators/common.h"
#include "generators/geo_gen.h"
#include "generators/random_gen.h"
#include "generators/waxman_gen.h"
#include "geo/distance.h"
#include "net/graph_algos.h"
#include "stats/ccdf.h"
#include "tests/test_world.h"

namespace geonet::generators {
namespace {

const geo::Region kBox{"box", 30.0, 45.0, -110.0, -85.0};

TEST(Waxman, NodesInsideRegion) {
  WaxmanOptions options;
  options.node_count = 500;
  const auto g = generate_waxman(kBox, options);
  EXPECT_EQ(g.node_count(), 500u);
  for (const auto& node : g.nodes()) {
    EXPECT_TRUE(kBox.contains(node.location));
  }
}

TEST(Waxman, LinkProbabilityDecaysWithDistance) {
  WaxmanOptions options;
  options.node_count = 800;
  options.alpha = 0.1;
  options.beta = 0.5;
  const auto g = generate_waxman(kBox, options);
  core::DistancePrefOptions pref_options;
  pref_options.method = core::PairCountMethod::kExact;
  pref_options.bins = 8;
  pref_options.bin_miles = kBox.diagonal_miles() / 8.0;
  const auto pref = core::distance_preference(g, kBox, pref_options);
  // Empirical f(d) must be monotone-ish decreasing: first bin clearly
  // exceeds later bins.
  ASSERT_GT(pref.links, 100u);
  EXPECT_GT(pref.f[0], 2.0 * pref.f[4]);
}

TEST(Waxman, BetaControlsDensity) {
  WaxmanOptions sparse;
  sparse.node_count = 400;
  sparse.beta = 0.05;
  WaxmanOptions dense = sparse;
  dense.beta = 0.4;
  EXPECT_GT(generate_waxman(kBox, dense).edge_count(),
            3u * generate_waxman(kBox, sparse).edge_count());
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  ErdosRenyiOptions options;
  options.node_count = 600;
  options.edge_probability = 0.01;
  const auto g = generate_erdos_renyi(kBox, options);
  const double expected = 0.01 * 600.0 * 599.0 / 2.0;
  EXPECT_NEAR(static_cast<double>(g.edge_count()), expected,
              4.0 * std::sqrt(expected));
}

TEST(ErdosRenyi, SparseGraphTypicallyDisconnected) {
  // Section II: sparse G(n, p) is usually not connected.
  ErdosRenyiOptions options;
  options.node_count = 1000;
  options.edge_probability = 0.8 / 1000.0;  // below the ln n / n threshold
  const auto g = generate_erdos_renyi(kBox, options);
  EXPECT_LT(net::giant_component_size(g), g.node_count());
}

TEST(BarabasiAlbert, EdgeAndNodeCounts) {
  BarabasiAlbertOptions options;
  options.node_count = 500;
  options.edges_per_node = 2;
  const auto g = generate_barabasi_albert(kBox, options);
  EXPECT_EQ(g.node_count(), 500u);
  // Seed clique (3 nodes, 3 edges) + 2 per subsequent node.
  EXPECT_NEAR(static_cast<double>(g.edge_count()), 3.0 + 2.0 * 497.0, 20.0);
}

TEST(BarabasiAlbert, IsConnected) {
  BarabasiAlbertOptions options;
  options.node_count = 400;
  const auto g = generate_barabasi_albert(kBox, options);
  EXPECT_EQ(net::giant_component_size(g), g.node_count());
}

TEST(BarabasiAlbert, DegreeDistributionLongTailed) {
  BarabasiAlbertOptions options;
  options.node_count = 3000;
  options.edges_per_node = 2;
  const auto g = generate_barabasi_albert(kBox, options);
  const auto degrees = g.degrees();
  std::vector<double> values(degrees.begin(), degrees.end());
  const auto fit = stats::fit_ccdf_tail(values, 0.3);
  // BA's CCDF tail slope is about -2 (degree exponent 3); allow slack.
  EXPECT_LT(fit.slope, -1.2);
  std::uint32_t max_degree = 0;
  for (const auto d : degrees) max_degree = std::max(max_degree, d);
  EXPECT_GT(max_degree, 50u);
}

TEST(LinkLatencies, ProportionalToGeography) {
  net::AnnotatedGraph g(net::NodeKind::kRouter, "latency");
  g.add_node({net::Ipv4Addr{1}, {40.7, -74.0}, 1});
  g.add_node({net::Ipv4Addr{2}, {34.0, -118.2}, 1});
  g.add_node({net::Ipv4Addr{3}, {40.8, -74.1}, 1});
  g.add_edge(0, 1);  // coast to coast
  g.add_edge(0, 2);  // same metro
  const auto latencies = link_latencies_ms(g);
  ASSERT_EQ(latencies.size(), 2u);
  EXPECT_GT(latencies[0], 20.0);
  EXPECT_LT(latencies[1], 1.0);
  // Circuity factor doubles latency.
  const auto doubled = link_latencies_ms(g, 3.0);
  EXPECT_NEAR(doubled[0] / latencies[0], 2.0, 1e-9);
}

TEST(GeoGenerator, ProducesAnnotatedConnectedTopology) {
  GeoGeneratorOptions options;
  options.router_count = 2000;
  const auto result = generate_geo_topology(geonet::testing::small_world(),
                                            options);
  EXPECT_NEAR(static_cast<double>(result.graph.node_count()), 2000.0, 500.0);
  EXPECT_GT(result.graph.edge_count(), result.graph.node_count());
  EXPECT_EQ(result.link_latency_ms.size(), result.graph.edge_count());
  EXPECT_EQ(net::giant_component_size(result.graph),
            result.graph.node_count());
  // Every node carries an AS label and a real location.
  for (const auto& node : result.graph.nodes()) {
    EXPECT_NE(node.asn, net::kUnknownAs);
    EXPECT_TRUE(geo::is_valid(node.location));
  }
}

TEST(GeoGenerator, FromTruthPreservesStructure) {
  const auto& truth = geonet::testing::small_truth();
  const auto result = topology_from_truth(truth);
  EXPECT_EQ(result.graph.node_count(), truth.topology().router_count());
  // Parallel physical links collapse onto one graph edge.
  EXPECT_LE(result.graph.edge_count(), truth.topology().link_count());
  EXPECT_GT(result.graph.edge_count(), truth.topology().link_count() * 9 / 10);
}

TEST(GeoGenerator, MostLinksAreShort) {
  // The paper's central claim materialised by the generator: the bulk of
  // links is distance-sensitive (short).
  const auto& truth = geonet::testing::small_truth();
  const auto result = topology_from_truth(truth);
  std::size_t shorter_than_300 = 0;
  for (const auto& e : result.graph.edges()) {
    const double d = geo::great_circle_miles(
        result.graph.node(e.a).location, result.graph.node(e.b).location);
    if (d < 300.0) ++shorter_than_300;
  }
  EXPECT_GT(static_cast<double>(shorter_than_300) /
                static_cast<double>(result.graph.edge_count()),
            0.6);
}

}  // namespace
}  // namespace geonet::generators
