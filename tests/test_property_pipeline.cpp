// Parameterized invariant sweeps over the measurement pipeline: every
// processed dataset (dataset x mapper), every pair-counting engine, and a
// range of generator seeds must satisfy the structural invariants.

#include <gtest/gtest.h>

#include <cmath>

#include "core/distance_pref.h"
#include "geo/distance.h"
#include "generators/ba_gen.h"
#include "generators/geo_gen.h"
#include "generators/waxman_gen.h"
#include "net/graph_algos.h"
#include "tests/test_world.h"

namespace geonet {
namespace {

// ------------------------------------------------------------------
// Sweep 1: all four processed datasets.
// ------------------------------------------------------------------

using DatasetParam = std::tuple<synth::DatasetKind, synth::MapperKind>;

class ProcessedDatasetSweep : public ::testing::TestWithParam<DatasetParam> {
 protected:
  const net::AnnotatedGraph& graph() const {
    return testing::small_scenario().graph(std::get<0>(GetParam()),
                                           std::get<1>(GetParam()));
  }
};

TEST_P(ProcessedDatasetSweep, AllLocationsValidAndOnLand) {
  const auto& profiles = testing::small_scenario().world().profiles();
  std::size_t stray = 0;
  for (const auto& node : graph().nodes()) {
    ASSERT_TRUE(geo::is_valid(node.location));
    bool in_some_region = false;
    for (const auto& profile : profiles) {
      in_some_region |= profile.extent.contains(node.location);
    }
    if (!in_some_region) ++stray;
  }
  // City snapping keeps nodes inside economic regions; only quantisation
  // at region edges can stray.
  EXPECT_LT(static_cast<double>(stray),
            0.02 * static_cast<double>(graph().node_count()));
}

TEST_P(ProcessedDatasetSweep, EdgesReferenceValidNodesWithoutLoops) {
  for (const auto& edge : graph().edges()) {
    ASSERT_LT(edge.a, graph().node_count());
    ASSERT_LT(edge.b, graph().node_count());
    EXPECT_LT(edge.a, edge.b);  // canonical order implies no self-loop
  }
}

TEST_P(ProcessedDatasetSweep, MostNodesCarryAsLabels) {
  std::size_t unmapped = 0;
  for (const auto& node : graph().nodes()) {
    if (node.asn == net::kUnknownAs) ++unmapped;
  }
  EXPECT_LT(static_cast<double>(unmapped),
            0.10 * static_cast<double>(graph().node_count()));
}

TEST_P(ProcessedDatasetSweep, GiantComponentDominates) {
  // Mercator's single-source map is tree-heavy, so discarding unmapped or
  // tie-voted routers severs more of it than the multi-monitor Skitter map.
  const bool router_level = std::get<0>(GetParam()) == synth::DatasetKind::kMercator;
  const std::size_t floor = router_level ? graph().node_count() * 6 / 10
                                         : graph().node_count() * 7 / 10;
  EXPECT_GT(net::giant_component_size(graph()), floor);
}

TEST_P(ProcessedDatasetSweep, DegreesAreConsistentWithEdgeCount) {
  const auto degrees = graph().degrees();
  std::size_t total = 0;
  for (const auto d : degrees) total += d;
  EXPECT_EQ(total, 2 * graph().edge_count());
}

INSTANTIATE_TEST_SUITE_P(
    AllProcessedDatasets, ProcessedDatasetSweep,
    ::testing::Combine(::testing::Values(synth::DatasetKind::kSkitter,
                                         synth::DatasetKind::kMercator),
                       ::testing::Values(synth::MapperKind::kIxMapper,
                                         synth::MapperKind::kEdgeScape)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             to_string(std::get<1>(info.param));
    });

// ------------------------------------------------------------------
// Sweep 2: pair-counting engines agree on total mass for any geometry.
// ------------------------------------------------------------------

class PairEngineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PairEngineSweep, EnginesAgreeOnTotalPairMass) {
  stats::Rng rng(GetParam());
  const geo::Region box{"box", 36.0, 46.0, -110.0, -90.0};
  std::vector<geo::GeoPoint> points;
  const std::size_t n = 120 + rng.uniform_index(250);
  for (std::size_t i = 0; i < n; ++i) {
    // Mixture of clustered and scattered points.
    if (rng.bernoulli(0.7)) {
      points.push_back({40.0 + rng.normal(0.0, 0.4),
                        -100.0 + rng.normal(0.0, 0.4)});
    } else {
      points.push_back({rng.uniform(box.south_deg, box.north_deg),
                        rng.uniform(box.west_deg, box.east_deg)});
    }
  }
  for (auto& p : points) {
    p.lat_deg = std::clamp(p.lat_deg, box.south_deg, box.north_deg - 1e-9);
    p.lon_deg = std::clamp(p.lon_deg, box.west_deg, box.east_deg - 1e-9);
  }

  const double expected =
      0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  for (const auto method :
       {core::PairCountMethod::kExact, core::PairCountMethod::kGrid,
        core::PairCountMethod::kSampled}) {
    core::DistancePrefOptions options;
    options.method = method;
    options.sample_pairs = 100000;
    options.seed = GetParam();
    const auto hist = core::pair_distance_histogram(
        points, 0.0, box.diagonal_miles() * 1.01, 50, box, options);
    const double mass = hist.total() + hist.overflow() + hist.underflow();
    EXPECT_NEAR(mass, expected, expected * 0.02)
        << "method " << static_cast<int>(method);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairEngineSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ------------------------------------------------------------------
// Sweep 3: generator invariants across seeds.
// ------------------------------------------------------------------

class GeneratorSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeedSweep, BarabasiAlbertAlwaysConnected) {
  generators::BarabasiAlbertOptions options;
  options.node_count = 600;
  options.seed = GetParam();
  const auto g = generators::generate_barabasi_albert(geo::regions::us(),
                                                      options);
  EXPECT_EQ(net::giant_component_size(g), g.node_count());
}

TEST_P(GeneratorSeedSweep, WaxmanShortLinksOutnumberLongOnes) {
  generators::WaxmanOptions options;
  options.node_count = 500;
  options.alpha = 0.12;
  options.beta = 0.4;
  options.seed = GetParam();
  const auto g = generators::generate_waxman(geo::regions::us(), options);
  const double half = geo::regions::us().diagonal_miles() / 2.0;
  std::size_t short_links = 0;
  std::size_t long_links = 0;
  for (const auto& e : g.edges()) {
    const double d = geo::great_circle_miles(g.node(e.a).location,
                                             g.node(e.b).location);
    (d < half ? short_links : long_links) += 1;
  }
  ASSERT_GT(short_links + long_links, 50u);
  EXPECT_GT(short_links, 3 * long_links);
}

TEST_P(GeneratorSeedSweep, GeoGeneratorDeterministicPerSeed) {
  generators::GeoGeneratorOptions options;
  options.router_count = 800;
  options.seed = GetParam();
  const auto a =
      generators::generate_geo_topology(testing::small_world(), options);
  const auto b =
      generators::generate_geo_topology(testing::small_world(), options);
  EXPECT_EQ(a.graph.node_count(), b.graph.node_count());
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
  ASSERT_GT(a.graph.node_count(), 0u);
  const auto mid = a.graph.node_count() / 2;
  EXPECT_DOUBLE_EQ(a.graph.node(mid).location.lon_deg,
                   b.graph.node(mid).location.lon_deg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace geonet
