// End-to-end I/O integration: a full processed dataset survives the text
// round trip, and the analyses computed before and after agree exactly.

#include <gtest/gtest.h>

#include <sstream>

#include "core/as_analysis.h"
#include "core/link_domains.h"
#include "net/graph_io.h"
#include "tests/test_world.h"

namespace geonet::net {
namespace {

TEST(IntegrationIo, ProcessedDatasetRoundTripsLosslessly) {
  const auto& s = geonet::testing::small_scenario();
  const AnnotatedGraph& original =
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper);

  std::stringstream buffer;
  ASSERT_TRUE(write_graph(buffer, original));
  std::string error;
  const auto restored = read_graph(buffer, &error);
  ASSERT_TRUE(restored.has_value()) << error;

  ASSERT_EQ(restored->node_count(), original.node_count());
  ASSERT_EQ(restored->edge_count(), original.edge_count());
  EXPECT_EQ(restored->kind(), original.kind());

  // Spot-check node payloads across the id range.
  for (std::uint32_t id = 0; id < original.node_count();
       id += original.node_count() / 97 + 1) {
    EXPECT_EQ(restored->node(id).asn, original.node(id).asn) << id;
    EXPECT_NEAR(restored->node(id).location.lat_deg,
                original.node(id).location.lat_deg, 1e-5)
        << id;
    EXPECT_EQ(restored->node(id).addr, original.node(id).addr) << id;
  }

  // The analyses must not notice the round trip (locations are written
  // with 6 decimals ~ 0.1 m, far below any analysis quantum).
  const auto before = core::analyze_as_sizes(original);
  const auto after = core::analyze_as_sizes(*restored);
  ASSERT_EQ(before.records.size(), after.records.size());
  for (std::size_t i = 0; i < before.records.size(); ++i) {
    EXPECT_EQ(before.records[i].asn, after.records[i].asn);
    EXPECT_EQ(before.records[i].node_count, after.records[i].node_count);
    EXPECT_EQ(before.records[i].location_count, after.records[i].location_count);
    EXPECT_EQ(before.records[i].degree, after.records[i].degree);
  }

  const auto domains_before = core::analyze_link_domains(original);
  const auto domains_after = core::analyze_link_domains(*restored);
  EXPECT_EQ(domains_before.interdomain_count, domains_after.interdomain_count);
  EXPECT_EQ(domains_before.intradomain_count, domains_after.intradomain_count);
  EXPECT_NEAR(domains_before.intradomain_mean_miles,
              domains_after.intradomain_mean_miles, 0.01);
}

}  // namespace
}  // namespace geonet::net
