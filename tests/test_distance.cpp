#include "geo/distance.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace geonet::geo {
namespace {

// Reference coordinates.
constexpr GeoPoint kNewYork{40.7128, -74.0060};
constexpr GeoPoint kLosAngeles{34.0522, -118.2437};
constexpr GeoPoint kLondon{51.5074, -0.1278};
constexpr GeoPoint kTokyo{35.6762, 139.6503};

TEST(Distance, ZeroForIdenticalPoints) {
  EXPECT_DOUBLE_EQ(great_circle_miles(kNewYork, kNewYork), 0.0);
}

TEST(Distance, KnownCityPairs) {
  // Accepted great-circle values: NY-LA ~2445 mi, NY-London ~3460 mi,
  // London-Tokyo ~5940 mi.
  EXPECT_NEAR(great_circle_miles(kNewYork, kLosAngeles), 2445.0, 15.0);
  EXPECT_NEAR(great_circle_miles(kNewYork, kLondon), 3460.0, 20.0);
  EXPECT_NEAR(great_circle_miles(kLondon, kTokyo), 5940.0, 30.0);
}

TEST(Distance, Symmetric) {
  EXPECT_DOUBLE_EQ(great_circle_miles(kNewYork, kTokyo),
                   great_circle_miles(kTokyo, kNewYork));
}

TEST(Distance, KmMilesConsistent) {
  const double miles = great_circle_miles(kNewYork, kLondon);
  const double km = great_circle_km(kNewYork, kLondon);
  EXPECT_NEAR(km / miles, 1.609344, 0.001);
}

TEST(Distance, AntipodalIsHalfCircumference) {
  const double d = great_circle_miles({0.0, 0.0}, {0.0, 180.0});
  EXPECT_NEAR(d, kPi * kEarthRadiusMiles, 1.0);
}

TEST(Distance, OneDegreeOfLatitude) {
  const double d = great_circle_miles({30.0, 10.0}, {31.0, 10.0});
  EXPECT_NEAR(d, miles_per_lat_degree(), 0.01);
  EXPECT_NEAR(miles_per_lat_degree(), 69.09, 0.1);
}

TEST(Distance, LongitudeShrinksWithLatitude) {
  EXPECT_NEAR(miles_per_lon_degree(0.0), miles_per_lat_degree(), 1e-9);
  EXPECT_NEAR(miles_per_lon_degree(60.0), 0.5 * miles_per_lat_degree(), 1e-9);
  EXPECT_NEAR(miles_per_lon_degree(90.0), 0.0, 1e-9);
}

TEST(Distance, TriangleInequalitySampled) {
  stats::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const GeoPoint a{rng.uniform(-80.0, 80.0), rng.uniform(-180.0, 180.0)};
    const GeoPoint b{rng.uniform(-80.0, 80.0), rng.uniform(-180.0, 180.0)};
    const GeoPoint c{rng.uniform(-80.0, 80.0), rng.uniform(-180.0, 180.0)};
    EXPECT_LE(great_circle_miles(a, c),
              great_circle_miles(a, b) + great_circle_miles(b, c) + 1e-6);
  }
}

TEST(Bearing, CardinalDirections) {
  EXPECT_NEAR(initial_bearing_deg({0.0, 0.0}, {10.0, 0.0}), 0.0, 1e-9);
  EXPECT_NEAR(initial_bearing_deg({0.0, 0.0}, {0.0, 10.0}), 90.0, 1e-9);
  EXPECT_NEAR(initial_bearing_deg({10.0, 0.0}, {0.0, 0.0}), 180.0, 1e-9);
  EXPECT_NEAR(initial_bearing_deg({0.0, 10.0}, {0.0, 0.0}), 270.0, 1e-9);
}

TEST(DestinationPoint, RoundTripsDistance) {
  stats::Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const GeoPoint start{rng.uniform(-60.0, 60.0), rng.uniform(-179.0, 179.0)};
    const double bearing = rng.uniform(0.0, 360.0);
    const double dist = rng.uniform(1.0, 2000.0);
    const GeoPoint end = destination_point(start, bearing, dist);
    EXPECT_NEAR(great_circle_miles(start, end), dist, dist * 1e-6 + 1e-6);
  }
}

TEST(DestinationPoint, ZeroDistanceStaysPut) {
  const GeoPoint end = destination_point(kNewYork, 123.0, 0.0);
  EXPECT_NEAR(end.lat_deg, kNewYork.lat_deg, 1e-9);
  EXPECT_NEAR(end.lon_deg, kNewYork.lon_deg, 1e-9);
}

TEST(DestinationPoint, NorthFromEquator) {
  const GeoPoint end = destination_point({0.0, 0.0}, 0.0, miles_per_lat_degree());
  EXPECT_NEAR(end.lat_deg, 1.0, 1e-6);
  EXPECT_NEAR(end.lon_deg, 0.0, 1e-9);
}

TEST(FiberLatency, ProportionalToDistance) {
  EXPECT_DOUBLE_EQ(fiber_latency_ms(0.0), 0.0);
  const double one = fiber_latency_ms(1000.0);
  EXPECT_NEAR(fiber_latency_ms(2000.0), 2.0 * one, 1e-9);
  // ~1000 mi at 2/3 c with 1.5 circuity: 1000*1.5/124.2 ~ 12 ms.
  EXPECT_NEAR(one, 12.1, 0.5);
}

TEST(FiberLatency, CircuityScales) {
  EXPECT_NEAR(fiber_latency_ms(500.0, 2.0) / fiber_latency_ms(500.0, 1.0), 2.0,
              1e-9);
}

}  // namespace
}  // namespace geonet::geo
