#include "stats/ccdf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/distributions.h"
#include "stats/rng.h"

namespace geonet::stats {
namespace {

TEST(EmpiricalCdf, SimpleSample) {
  std::vector<double> xs{1, 2, 2, 4};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].x, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].p, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].x, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].p, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].x, 4.0);
  EXPECT_DOUBLE_EQ(cdf[2].p, 1.0);
}

TEST(EmpiricalCcdf, ComplementOfCdf) {
  std::vector<double> xs{1, 2, 2, 4};
  const auto ccdf = empirical_ccdf(xs);
  ASSERT_EQ(ccdf.size(), 3u);
  EXPECT_DOUBLE_EQ(ccdf[0].p, 0.75);  // P[X > 1]
  EXPECT_DOUBLE_EQ(ccdf[1].p, 0.25);  // P[X > 2]
  EXPECT_DOUBLE_EQ(ccdf[2].p, 0.0);   // P[X > 4]
}

TEST(EmpiricalCdf, EmptyInput) {
  EXPECT_TRUE(empirical_cdf({}).empty());
  EXPECT_TRUE(empirical_ccdf({}).empty());
}

TEST(EmpiricalCdf, MonotoneNondecreasing) {
  std::vector<double> xs{5, 1, 3, 3, 9, 2, 2, 2};
  const auto cdf = empirical_cdf(xs);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].x, cdf[i - 1].x);
    EXPECT_GE(cdf[i].p, cdf[i - 1].p);
  }
  EXPECT_DOUBLE_EQ(cdf.back().p, 1.0);
}

TEST(LogLog, DropsNonPositive) {
  std::vector<DistPoint> curve{{10.0, 0.1}, {0.0, 0.5}, {100.0, 0.0}};
  const auto ll = log_log(curve);
  ASSERT_EQ(ll.size(), 1u);
  EXPECT_DOUBLE_EQ(ll[0].x, 1.0);
  EXPECT_DOUBLE_EQ(ll[0].p, -1.0);
}

TEST(FitCcdfTail, RecoversParetoExponent) {
  Rng rng(77);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(pareto(rng, 1.0, 1.5));
  const LinearFit fit = fit_ccdf_tail(xs, 0.2);
  // CCDF of Pareto(1.5) has log-log slope -1.5.
  EXPECT_NEAR(fit.slope, -1.5, 0.15);
  EXPECT_GT(fit.r_squared, 0.95);
}

TEST(FitCcdfTail, TooFewPointsDegenerate) {
  std::vector<double> xs{1.0, 1.0};
  const LinearFit fit = fit_ccdf_tail(xs);
  EXPECT_EQ(fit.n, 0u);
}

TEST(FitCcdfTail, ExponentialTailIsSteeperThanPareto) {
  Rng rng(78);
  std::vector<double> heavy, light;
  for (int i = 0; i < 30000; ++i) {
    heavy.push_back(pareto(rng, 1.0, 1.0));
    light.push_back(1.0 + rng.exponential(1.0));
  }
  const double heavy_slope = fit_ccdf_tail(heavy, 0.3).slope;
  const double light_slope = fit_ccdf_tail(light, 0.3).slope;
  EXPECT_GT(heavy_slope, light_slope);  // -1 > -several
}

}  // namespace
}  // namespace geonet::stats
