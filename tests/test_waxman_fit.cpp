#include "core/waxman_fit.h"

#include <gtest/gtest.h>

#include <cmath>

namespace geonet::core {
namespace {

/// Builds a synthetic DistancePreference whose f(d) is exactly
/// beta*exp(-d/lambda) for d < knee and `flat` beyond, with ample pair
/// support everywhere.
DistancePreference synthetic_pref(double beta, double lambda, double knee,
                                  double flat, double bin_miles,
                                  std::size_t bins) {
  const double hi = bin_miles * static_cast<double>(bins);
  DistancePreference pref{stats::Histogram(0.0, hi, bins),
                          stats::Histogram(0.0, hi, bins),
                          std::vector<double>(bins, 0.0),
                          bin_miles,
                          1000,
                          5000};
  for (std::size_t b = 0; b < bins; ++b) {
    const double d = pref.link_hist.bin_center(b);
    const double f =
        d < knee ? beta * std::exp(-d / lambda) : flat;
    const double pairs = 1e6;
    pref.pair_hist.add_to_bin(b, pairs);
    pref.link_hist.add_to_bin(b, f * pairs);
    pref.f[b] = f;
  }
  return pref;
}

TEST(WaxmanFit, RecoversLambdaAndBeta) {
  const auto pref = synthetic_pref(1e-3, 140.0, 400.0, 2e-5, 35.0, 100);
  WaxmanFitOptions options;
  options.small_d_cut_miles = 350.0;
  const WaxmanCharacterisation w = characterize_waxman(pref, options);
  EXPECT_NEAR(w.lambda_miles, 140.0, 5.0);
  EXPECT_NEAR(w.beta, 1e-3, 1e-4);
  EXPECT_GT(w.semilog_fit.r_squared, 0.99);
}

TEST(WaxmanFit, FlatLevelAndLimit) {
  const double beta = 1e-3;
  const double lambda = 140.0;
  const double flat = 2e-5;
  const auto pref = synthetic_pref(beta, lambda, 400.0, flat, 35.0, 100);
  WaxmanFitOptions options;
  options.small_d_cut_miles = 350.0;
  const WaxmanCharacterisation w = characterize_waxman(pref, options);
  EXPECT_NEAR(w.flat_level, flat, flat * 0.05);
  // Limit solves beta exp(-d/lambda) = flat.
  const double expected_limit = lambda * std::log(beta / flat);
  EXPECT_NEAR(w.sensitivity_limit_miles, expected_limit,
              expected_limit * 0.05);
}

TEST(WaxmanFit, CumulativeFitLinearInFlatRegime) {
  const auto pref = synthetic_pref(1e-3, 140.0, 400.0, 2e-5, 35.0, 100);
  WaxmanFitOptions options;
  options.small_d_cut_miles = 350.0;
  const WaxmanCharacterisation w = characterize_waxman(pref, options);
  EXPECT_GT(w.cumulative_fit.r_squared, 0.999);
  // Slope of F(d) per bin-center mile equals flat/bin width.
  EXPECT_NEAR(w.cumulative_fit.slope, 2e-5 / 35.0, 2e-7);
}

TEST(WaxmanFit, FractionBelowLimitUsesLinkHistogram) {
  auto pref = synthetic_pref(1e-3, 140.0, 400.0, 2e-5, 35.0, 100);
  WaxmanFitOptions options;
  options.small_d_cut_miles = 350.0;
  const WaxmanCharacterisation w = characterize_waxman(pref, options);
  EXPECT_GT(w.fraction_links_below_limit, 0.0);
  EXPECT_LE(w.fraction_links_below_limit, 1.0);
  EXPECT_NEAR(w.fraction_links_below_limit,
              pref.fraction_links_below(w.sensitivity_limit_miles), 1e-12);
}

TEST(WaxmanFit, NoisyBinsBelowSupportSkipped) {
  auto pref = synthetic_pref(1e-3, 140.0, 400.0, 2e-5, 35.0, 100);
  // Poison one small-d bin with a wild value but zero support.
  pref.f[2] = 100.0;
  pref.pair_hist.add_to_bin(2, -pref.pair_hist.count(2));  // zero out
  WaxmanFitOptions options;
  options.small_d_cut_miles = 350.0;
  options.min_pair_support = 10.0;
  const WaxmanCharacterisation w = characterize_waxman(pref, options);
  EXPECT_NEAR(w.lambda_miles, 140.0, 6.0);
}

TEST(WaxmanFit, DefaultCutIsThirdOfRange) {
  const auto pref = synthetic_pref(1e-3, 100.0, 1000.0, 1e-5, 10.0, 90);
  const WaxmanCharacterisation w = characterize_waxman(pref);
  EXPECT_NEAR(w.small_d_cut_miles, 300.0, 1e-9);
}

TEST(WaxmanFit, EmptyPreferenceDegenerates) {
  DistancePreference pref{stats::Histogram(0.0, 1.0, 1),
                          stats::Histogram(0.0, 1.0, 1),
                          {},
                          1.0,
                          0,
                          0};
  const WaxmanCharacterisation w = characterize_waxman(pref);
  EXPECT_DOUBLE_EQ(w.lambda_miles, 0.0);
  EXPECT_DOUBLE_EQ(w.sensitivity_limit_miles, 0.0);
}

TEST(WaxmanFit, PaperSmallDCuts) {
  EXPECT_DOUBLE_EQ(paper_small_d_cut(geo::regions::us()), 250.0);
  EXPECT_DOUBLE_EQ(paper_small_d_cut(geo::regions::europe()), 300.0);
  EXPECT_DOUBLE_EQ(paper_small_d_cut(geo::regions::japan()), 200.0);
  EXPECT_DOUBLE_EQ(paper_small_d_cut({"other", 0, 1, 0, 1}), 0.0);
}

TEST(WaxmanFit, SteeperDecayGivesSmallerLambda) {
  const auto steep = synthetic_pref(1e-3, 80.0, 400.0, 2e-5, 15.0, 100);
  const auto shallow = synthetic_pref(1e-3, 150.0, 400.0, 2e-5, 15.0, 100);
  WaxmanFitOptions options;
  options.small_d_cut_miles = 300.0;
  EXPECT_LT(characterize_waxman(steep, options).lambda_miles,
            characterize_waxman(shallow, options).lambda_miles);
}

}  // namespace
}  // namespace geonet::core
