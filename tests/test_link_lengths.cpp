#include "core/link_lengths.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "tests/test_world.h"

namespace geonet::core {
namespace {

net::AnnotatedGraph line_graph() {
  net::AnnotatedGraph g(net::NodeKind::kRouter, "line");
  g.add_node({net::Ipv4Addr{1}, {40.0, -100.0}, 1});
  g.add_node({net::Ipv4Addr{2}, {40.0, -100.0}, 1});  // co-located
  g.add_node({net::Ipv4Addr{3}, {40.0, -99.0}, 1});   // ~53 mi east
  g.add_node({net::Ipv4Addr{4}, {51.5, -0.1}, 2});    // London
  g.add_edge(0, 1);  // zero length
  g.add_edge(1, 2);  // ~53 mi
  g.add_edge(2, 3);  // transatlantic
  return g;
}

TEST(LinkLengths, MeasuresEveryLink) {
  const auto analysis = analyze_link_lengths(line_graph());
  ASSERT_EQ(analysis.lengths_miles.size(), 3u);
  EXPECT_NEAR(analysis.fraction_zero, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(analysis.summary.min, 0.0, 1e-9);
  EXPECT_GT(analysis.summary.max, 4000.0);
}

TEST(LinkLengths, RegionScopeFiltersLinks) {
  const auto analysis =
      analyze_link_lengths(line_graph(), geo::regions::us());
  ASSERT_EQ(analysis.lengths_miles.size(), 2u);  // transatlantic excluded
  EXPECT_LT(analysis.summary.max, 100.0);
}

TEST(LinkLengths, EmptyGraph) {
  const net::AnnotatedGraph g(net::NodeKind::kRouter);
  const auto analysis = analyze_link_lengths(g);
  EXPECT_TRUE(analysis.lengths_miles.empty());
  EXPECT_DOUBLE_EQ(analysis.fraction_zero, 0.0);
}

TEST(LinkLengths, ScenarioLengthsAreHeavyTailed) {
  const auto& s = geonet::testing::small_scenario();
  const auto analysis = analyze_link_lengths(
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper));
  ASSERT_GT(analysis.lengths_miles.size(), 1000u);
  // Median short, max intercontinental: the distribution Yook et al.
  // studied is broad.
  EXPECT_LT(analysis.summary.median, 300.0);
  EXPECT_GT(analysis.summary.max, 3000.0);
  EXPECT_GT(analysis.fraction_zero, 0.1);  // same-city link mass
}

TEST(SmallWorld, LongLinksMatterMoreThanRandomOnes) {
  // The paper's Section V endnote (Watts & Strogatz): the small fraction
  // of non-local links plays an outsized structural role. Removing the
  // longest 10% must damage global connectivity far more than removing a
  // random 10%.
  const auto& s = geonet::testing::small_scenario();
  const auto& graph =
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper);

  const auto intact =
      probe_link_removal(graph, 0.0, LinkRemoval::kLongest, 48, 5);
  const auto no_long =
      probe_link_removal(graph, 0.10, LinkRemoval::kLongest, 48, 5);
  const auto no_random =
      probe_link_removal(graph, 0.10, LinkRemoval::kRandom, 48, 5);

  EXPECT_NEAR(intact.kept_fraction, 1.0, 1e-9);
  EXPECT_NEAR(no_long.kept_fraction, 0.90, 0.01);
  // Random damage of the same size barely changes the giant component;
  // targeting long links severs much more of it.
  EXPECT_GT(no_random.giant_component, no_long.giant_component);
  EXPECT_GT(no_random.giant_component, graph.node_count() * 6 / 10);
}

TEST(SmallWorld, RemovingEverythingDisconnects) {
  const auto& s = geonet::testing::small_scenario();
  const auto& graph =
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper);
  const auto gutted =
      probe_link_removal(graph, 1.0, LinkRemoval::kLongest, 16, 5);
  EXPECT_NEAR(gutted.kept_fraction, 0.0, 1e-9);
  EXPECT_LE(gutted.giant_component, 1u);
}

}  // namespace
}  // namespace geonet::core
