// Differential property suite for geo::SpatialIndex: every query is
// pinned against an in-test brute-force oracle over the same points —
// including tie-break order — on seeded random sets and adversarial ones
// (poles, antimeridian, duplicates, collinear clusters). Plus the SIDX
// persistence surface: round-trip identity, every-truncation and
// every-single-bit-flip damage tables following the test_store.cpp idiom.

#include "geo/spatial_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "geo/distance.h"
#include "geo/grid.h"
#include "geo/region.h"
#include "geo/spatial_index_store.h"
#include "store/bytes.h"

namespace geonet::geo {
namespace {

using Neighbor = SpatialIndex::Neighbor;

// ---------------------------------------------------------------------
// Brute-force oracle: the spec the index must match bit for bit.
// ---------------------------------------------------------------------

std::vector<Neighbor> all_neighbors(const std::vector<GeoPoint>& points,
                                    const GeoPoint& query) {
  std::vector<Neighbor> out;
  out.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    out.push_back({static_cast<std::uint32_t>(i),
                   great_circle_miles(query, points[i])});
  }
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance_miles != b.distance_miles) {
      return a.distance_miles < b.distance_miles;
    }
    return a.id < b.id;
  });
  return out;
}

std::vector<Neighbor> oracle_nearest(const std::vector<GeoPoint>& points,
                                     const GeoPoint& query, std::size_t k) {
  std::vector<Neighbor> sorted = all_neighbors(points, query);
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

std::vector<Neighbor> oracle_within(const std::vector<GeoPoint>& points,
                                    const GeoPoint& query, double radius) {
  std::vector<Neighbor> out;
  for (const Neighbor& n : all_neighbors(points, query)) {
    if (n.distance_miles <= radius) out.push_back(n);
  }
  return out;
}

std::uint64_t oracle_pair_count(const std::vector<GeoPoint>& points,
                                double limit) {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (great_circle_miles(points[i], points[j]) <= limit) ++count;
    }
  }
  return count;
}

// ---------------------------------------------------------------------
// Point-set generators: seeded random plus the adversarial shapes.
// ---------------------------------------------------------------------

std::vector<GeoPoint> random_points(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> lat(-90.0, 90.0);
  std::uniform_real_distribution<double> lon(-180.0, 180.0);
  std::vector<GeoPoint> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) points.push_back({lat(rng), lon(rng)});
  return points;
}

/// Poles, antimeridian edges, signed zeros, exact duplicates, and two
/// collinear runs (constant lon / constant lat) — the coordinate corner
/// cases where quantisation, box pruning, or tie-breaking could slip.
std::vector<GeoPoint> adversarial_points() {
  std::vector<GeoPoint> points = {
      {90.0, 0.0},      {90.0, 180.0},   {90.0, -180.0}, {-90.0, 17.0},
      {-90.0, -180.0},  {0.0, 180.0},    {0.0, -180.0},  {45.0, 180.0},
      {45.0, -180.0},   {0.0, 0.0},      {0.0, -0.0},    {-0.0, 0.0},
      {-0.0, -0.0},     {37.75, -122.4}, {37.75, -122.4}, {37.75, -122.4},
      {52.5, 13.4},     {52.5, 13.4},
  };
  for (int i = 0; i < 12; ++i) {  // collinear: constant lon
    points.push_back({-30.0 + 5.0 * i, 77.0});
  }
  for (int i = 0; i < 12; ++i) {  // collinear: constant lat
    points.push_back({51.0, -160.0 + 25.0 * i});
  }
  return points;
}

std::vector<GeoPoint> queries_for(const std::vector<GeoPoint>& points,
                                  std::uint64_t seed) {
  std::vector<GeoPoint> queries = random_points(8, seed);
  // Probe from the data itself too: exact hits exercise distance-zero ties.
  for (std::size_t i = 0; i < points.size(); i += 7) queries.push_back(points[i]);
  queries.push_back({90.0, 0.0});
  queries.push_back({-90.0, 180.0});
  queries.push_back({0.0, -180.0});
  return queries;
}

void expect_differential_match(const std::vector<GeoPoint>& points,
                               const SpatialIndex& index,
                               std::uint64_t query_seed) {
  for (const GeoPoint& q : queries_for(points, query_seed)) {
    for (const std::size_t k : {std::size_t{1}, std::size_t{3},
                                std::size_t{16}, points.size() + 5}) {
      EXPECT_EQ(index.nearest(q, k), oracle_nearest(points, q, k))
          << "nearest(k=" << k << ") at " << q.lat_deg << "," << q.lon_deg;
    }
    for (const double r : {0.0, 50.0, 800.0, 7000.0}) {
      EXPECT_EQ(index.within_radius(q, r), oracle_within(points, q, r))
          << "within_radius(" << r << ") at " << q.lat_deg << "," << q.lon_deg;
    }
  }
}

/// Full pairs contract at one limit: each unordered pair visited at most
/// once, visited + pruned == C(n,2), every pair actually within the limit
/// visited, and every pruned pair provably farther (checked by exhaustive
/// re-derivation from the visited set).
void expect_pairs_match(const std::vector<GeoPoint>& points,
                        const SpatialIndex& index, double limit) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> visited;
  bool duplicate = false;
  const auto stats =
      index.pairs_within(limit, [&](std::uint32_t a, std::uint32_t b) {
        auto pair = std::minmax(a, b);
        if (!visited.emplace(pair.first, pair.second).second) duplicate = true;
      });
  EXPECT_FALSE(duplicate) << "a pair was visited twice (limit " << limit << ")";
  EXPECT_EQ(visited.size(), stats.visited_pairs);
  const std::uint64_t n = points.size();
  EXPECT_EQ(stats.total_pairs(), n * (n - 1) / 2);

  std::uint64_t within = 0;
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    for (std::uint32_t j = i + 1; j < points.size(); ++j) {
      const double d = great_circle_miles(points[i], points[j]);
      if (d <= limit) {
        ++within;
        EXPECT_TRUE(visited.count({i, j}))
            << "pair (" << i << "," << j << ") at " << d
            << " mi <= " << limit << " was pruned";
      }
    }
  }
  EXPECT_EQ(within, oracle_pair_count(points, limit));
}

// ---------------------------------------------------------------------
// Differential properties
// ---------------------------------------------------------------------

TEST(SpatialIndex, MatchesOracleOnSeededRandomSets) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const std::vector<GeoPoint> points = random_points(257, seed);
    const SpatialIndex index = SpatialIndex::build(points);
    expect_differential_match(points, index, seed * 101);
  }
}

TEST(SpatialIndex, MatchesOracleOnAdversarialSet) {
  const std::vector<GeoPoint> points = adversarial_points();
  const SpatialIndex index = SpatialIndex::build(points);
  expect_differential_match(points, index, 99);
}

TEST(SpatialIndex, PairsWithinMatchesOracle) {
  for (const std::uint64_t seed : {4u, 5u}) {
    const std::vector<GeoPoint> points = random_points(150, seed);
    const SpatialIndex index = SpatialIndex::build(points);
    for (const double limit :
         {0.0, 100.0, 1500.0, std::numeric_limits<double>::infinity()}) {
      expect_pairs_match(points, index, limit);
    }
  }
  const std::vector<GeoPoint> adversarial = adversarial_points();
  const SpatialIndex index = SpatialIndex::build(adversarial);
  for (const double limit : {0.0, 400.0, 9000.0}) {
    expect_pairs_match(adversarial, index, limit);
  }
}

TEST(SpatialIndex, LeafSizeDoesNotChangeAnyAnswer) {
  const std::vector<GeoPoint> points = random_points(200, 7);
  SpatialIndex::Options tiny, large;
  tiny.leaf_size = 1;
  large.leaf_size = 64;
  const SpatialIndex a = SpatialIndex::build(points, tiny);
  const SpatialIndex b = SpatialIndex::build(points, large);
  ASSERT_EQ(a.order(), b.order());  // the canonical order is structure-free
  for (const GeoPoint& q : queries_for(points, 11)) {
    EXPECT_EQ(a.nearest(q, 5), b.nearest(q, 5));
    EXPECT_EQ(a.within_radius(q, 600.0), b.within_radius(q, 600.0));
  }
  std::uint64_t count_a = 0, count_b = 0;
  a.pairs_within(300.0, [&](std::uint32_t, std::uint32_t) { ++count_a; });
  b.pairs_within(300.0, [&](std::uint32_t, std::uint32_t) { ++count_b; });
  // Visitation sets differ with structure; the contract is on coverage,
  // which expect_pairs_match pins — here just assert both saw every
  // within-limit pair by counting against the oracle's lower bound.
  EXPECT_GE(count_a, oracle_pair_count(points, 300.0));
  EXPECT_GE(count_b, oracle_pair_count(points, 300.0));
}

TEST(SpatialIndex, RegionMembershipMatchesLinearScan) {
  const std::vector<GeoPoint> points = random_points(300, 12);
  const SpatialIndex index = SpatialIndex::build(points);
  for (const Region& region :
       {regions::us(), regions::europe(), regions::japan(), regions::world()}) {
    const std::vector<std::uint8_t> mask = index.region_mask(region);
    ASSERT_EQ(mask.size(), points.size());
    std::vector<std::uint32_t> expected_ids;
    for (std::uint32_t i = 0; i < points.size(); ++i) {
      const bool inside = region.contains(points[i]);
      EXPECT_EQ(mask[i] != 0, inside) << region.name << " point " << i;
      if (inside) expected_ids.push_back(i);
    }
    EXPECT_EQ(index.in_region(region), expected_ids) << region.name;
  }
}

TEST(SpatialIndex, RegionMembershipOnAdversarialEdges) {
  const std::vector<GeoPoint> points = adversarial_points();
  const SpatialIndex index = SpatialIndex::build(points);
  const std::vector<std::uint8_t> mask = index.region_mask(regions::world());
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(mask[i] != 0, regions::world().contains(points[i])) << i;
  }
}

TEST(SpatialIndex, GridTallyMatchesLinearTally) {
  for (const std::uint64_t seed : {21u, 22u}) {
    const std::vector<GeoPoint> points = random_points(400, seed);
    const SpatialIndex index = SpatialIndex::build(points);
    for (const Region& region : {regions::us(), regions::world()}) {
      const Grid grid(region, 75.0);
      std::size_t dropped = 0;
      const std::vector<double> indexed = index.tally(grid, &dropped);
      const std::vector<double> linear = grid.tally(points);
      EXPECT_EQ(indexed, linear) << region.name;
      double inside = 0.0;
      for (const double c : linear) inside += c;
      EXPECT_EQ(dropped, points.size() - static_cast<std::size_t>(inside))
          << region.name;
    }
  }
}

TEST(SpatialIndex, GridTallyCountsPoleAndAntimeridianPoints) {
  // The grid fix: lat=90 / lon=180 belong to the outermost world cells
  // instead of falling out of range.
  const std::vector<GeoPoint> points = adversarial_points();
  const SpatialIndex index = SpatialIndex::build(points);
  const Grid grid(regions::world(), 75.0);
  std::size_t dropped = 0;
  const std::vector<double> indexed = index.tally(grid, &dropped);
  EXPECT_EQ(indexed, grid.tally(points));
  EXPECT_EQ(dropped, 0u);
}

TEST(SpatialIndex, EmptyAndSingletonAndTinyInputs) {
  const SpatialIndex empty = SpatialIndex::build({});
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.nearest({0.0, 0.0}, 3).empty());
  EXPECT_TRUE(empty.within_radius({0.0, 0.0}, 100.0).empty());
  const auto stats =
      empty.pairs_within(100.0, [](std::uint32_t, std::uint32_t) {});
  EXPECT_EQ(stats.total_pairs(), 0u);

  for (std::size_t n = 1; n <= 5; ++n) {
    const std::vector<GeoPoint> points = random_points(n, 33 + n);
    const SpatialIndex index = SpatialIndex::build(points);
    expect_differential_match(points, index, 44 + n);
    expect_pairs_match(points, index, 500.0);
  }
}

TEST(SpatialIndex, BuildIsDeterministic) {
  const std::vector<GeoPoint> points = random_points(128, 55);
  const SpatialIndex a = SpatialIndex::build(points);
  const SpatialIndex b = SpatialIndex::build(points);
  EXPECT_EQ(a.order(), b.order());
  EXPECT_EQ(a.leaves(), b.leaves());
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    EXPECT_EQ(a.nodes()[i].begin, b.nodes()[i].begin);
    EXPECT_EQ(a.nodes()[i].end, b.nodes()[i].end);
  }
}

TEST(SpatialIndex, LowerBoundNeverExceedsRealPairDistance) {
  const std::vector<GeoPoint> points = random_points(200, 77);
  const SpatialIndex index = SpatialIndex::build(points);
  const auto& nodes = index.nodes();
  const auto& order = index.order();
  // Every pair of tree nodes: the box-to-box bound must lower-bound every
  // cross distance between their point sets.
  for (std::size_t a = 0; a < nodes.size(); a += 3) {
    for (std::size_t b = a; b < nodes.size(); b += 5) {
      const double bound = SpatialIndex::min_distance_miles_lower_bound(
          nodes[a].box, nodes[b].box);
      double actual_min = std::numeric_limits<double>::infinity();
      for (std::uint32_t i = nodes[a].begin; i < nodes[a].end; ++i) {
        for (std::uint32_t j = nodes[b].begin; j < nodes[b].end; ++j) {
          if (order[i] == order[j]) continue;
          actual_min = std::min(actual_min,
                                great_circle_miles(index.points()[order[i]],
                                                   index.points()[order[j]]));
        }
      }
      if (std::isinf(actual_min)) continue;
      EXPECT_LE(bound, actual_min)
          << "bound between nodes " << a << " and " << b;
    }
  }
}

TEST(SpatialIndex, FromSortedAcceptsOnlyTheCanonicalOrder) {
  const std::vector<GeoPoint> points = random_points(64, 91);
  const SpatialIndex built = SpatialIndex::build(points);
  const auto ok = SpatialIndex::from_sorted(points, built.order());
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->order(), built.order());

  std::vector<std::uint32_t> swapped = built.order();
  std::swap(swapped.front(), swapped.back());
  EXPECT_FALSE(SpatialIndex::from_sorted(points, swapped).has_value());

  std::vector<std::uint32_t> short_order(built.order().begin(),
                                         built.order().end() - 1);
  EXPECT_FALSE(SpatialIndex::from_sorted(points, short_order).has_value());

  std::vector<std::uint32_t> dup = built.order();
  if (dup.size() >= 2) dup[1] = dup[0];
  EXPECT_FALSE(SpatialIndex::from_sorted(points, dup).has_value());
}

// ---------------------------------------------------------------------
// SIDX persistence: round-trip, truncation, bit flips
// ---------------------------------------------------------------------

TEST(SpatialIndexStore, SnapshotRoundTripPreservesEveryAnswer) {
  const std::vector<GeoPoint> points = adversarial_points();
  const SpatialIndex index = SpatialIndex::build(points);
  const std::vector<std::byte> bytes = encode_spatial_index_snapshot(index);
  auto decoded = decode_spatial_index_snapshot(bytes);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().message();
  const SpatialIndex& warm = decoded.value();
  EXPECT_EQ(warm.order(), index.order());
  EXPECT_EQ(warm.points(), index.points());
  for (const GeoPoint& q : queries_for(points, 13)) {
    EXPECT_EQ(warm.nearest(q, 4), index.nearest(q, 4));
    EXPECT_EQ(warm.within_radius(q, 900.0), index.within_radius(q, 900.0));
  }
}

TEST(SpatialIndexStore, VersionMismatchIsRejected) {
  const SpatialIndex index = SpatialIndex::build(random_points(16, 3));
  store::ByteWriter out;
  encode_spatial_index(out, index);
  std::vector<std::byte> payload = out.take();
  payload[0] ^= std::byte{0x02};  // sidx_version is the first u32
  store::ByteReader in(payload);
  EXPECT_FALSE(decode_spatial_index(in).is_ok());
}

TEST(SpatialIndexStore, EveryTruncationFailsGracefully) {
  const SpatialIndex index = SpatialIndex::build(random_points(24, 6));
  const std::vector<std::byte> bytes = encode_spatial_index_snapshot(index);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::byte> prefix(bytes.data(), len);
    EXPECT_FALSE(decode_spatial_index_snapshot(prefix).is_ok())
        << "truncation to " << len << " bytes went undetected";
  }
}

TEST(SpatialIndexStore, EverySingleBitFlipIsDetected) {
  const std::vector<GeoPoint> points = random_points(24, 8);
  const SpatialIndex index = SpatialIndex::build(points);
  const std::vector<std::byte> bytes = encode_spatial_index_snapshot(index);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::byte> damaged = bytes;
      damaged[i] ^= static_cast<std::byte>(1u << bit);
      auto decoded = decode_spatial_index_snapshot(damaged);
      if (!decoded.is_ok()) continue;  // rejected: the normal outcome
      // The container checksum catches payload damage, so a successful
      // decode can only mean the flip landed outside the covered bytes
      // and left the index bit-identical — anything else is corruption
      // passing validation.
      EXPECT_EQ(decoded.value().points(), points)
          << "bit " << bit << " of byte " << i << " survived validation";
      EXPECT_EQ(decoded.value().order(), index.order())
          << "bit " << bit << " of byte " << i << " survived validation";
    }
  }
}

}  // namespace
}  // namespace geonet::geo
