#include "synth/hostnames.h"

#include <gtest/gtest.h>

#include "geo/distance.h"
#include "tests/test_world.h"

namespace geonet::synth {
namespace {

std::vector<geo::GeoPoint> test_cities() {
  return {{40.7, -74.0}, {34.05, -118.2}, {41.9, -87.6}, {51.5, -0.13}};
}

TEST(CityCodebook, CodesAreUniqueAndDecodable) {
  const CityCodebook codebook(test_cities());
  ASSERT_EQ(codebook.size(), 4u);
  for (std::size_t i = 0; i < codebook.size(); ++i) {
    const std::string code = codebook.code(i);
    EXPECT_EQ(code.size(), 3u);
    const auto decoded = codebook.decode(code);
    ASSERT_TRUE(decoded.has_value()) << code;
    EXPECT_EQ(*decoded, i);
  }
}

TEST(CityCodebook, DecodeRejectsUnknownTokens) {
  const CityCodebook codebook(test_cities());
  EXPECT_FALSE(codebook.decode("zzz").has_value());
  EXPECT_FALSE(codebook.decode("ab").has_value());
  EXPECT_FALSE(codebook.decode("abcd").has_value());
  EXPECT_FALSE(codebook.decode("").has_value());
}

TEST(CityCodebook, NearestDelegatesToIndex) {
  const CityCodebook codebook(test_cities());
  const auto city = codebook.nearest({40.8, -73.9});
  ASSERT_TRUE(city.has_value());
  EXPECT_EQ(*city, 0u);  // New York
}

TEST(Hostnames, GeneratedNamesParseBackToTheirCity) {
  const CityCodebook codebook(test_cities());
  stats::Rng rng(3);
  for (std::size_t city = 0; city < codebook.size(); ++city) {
    for (int i = 0; i < 20; ++i) {
      const std::string hostname =
          make_hostname(rng, codebook.code(city), 64512);
      const auto parsed = parse_city(hostname, codebook);
      ASSERT_TRUE(parsed.has_value()) << hostname;
      EXPECT_EQ(*parsed, city) << hostname;
    }
  }
}

TEST(Hostnames, ParseHandlesPaperStyleName) {
  // The paper's example: 0.so-5-2-0.XL1.NYC8.ALTER.NET (lowercased
  // convention here). Build a codebook where some index maps to "nyc"-like
  // code and check token extraction logic with ordinals.
  const CityCodebook codebook(test_cities());
  const std::string code = codebook.code(2);
  const std::string hostname = "0.so-5-2-0.xl1." + code + "8.alter.net";
  const auto parsed = parse_city(hostname, codebook);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, 2u);
}

TEST(Hostnames, UnparseableNamesReturnNullopt) {
  const CityCodebook codebook(test_cities());
  EXPECT_FALSE(parse_city("core1.example.com", codebook).has_value());
  EXPECT_FALSE(parse_city("", codebook).has_value());
  EXPECT_FALSE(parse_city("so-1-2-3", codebook).has_value());
}

TEST(DnsDatabase, InsertAndLookup) {
  DnsDatabase dns;
  dns.insert(net::Ipv4Addr{42}, "cr1.aaa1.as7.net");
  EXPECT_EQ(dns.lookup(net::Ipv4Addr{42}).value(), "cr1.aaa1.as7.net");
  EXPECT_FALSE(dns.lookup(net::Ipv4Addr{43}).has_value());
}

TEST(BuildDns, NamesRoughlyTheConfiguredFraction) {
  const auto& truth = geonet::testing::small_truth();
  std::vector<geo::GeoPoint> cities;
  for (const auto& grid : geonet::testing::small_world().grids()) {
    for (const auto& city : grid.cities()) cities.push_back(city.center);
  }
  const CityCodebook codebook(std::move(cities));
  DnsOptions options;
  options.named_fraction = 0.8;
  const DnsDatabase dns = build_dns(truth, codebook, options);
  const double named = static_cast<double>(dns.size()) /
                       static_cast<double>(truth.topology().interface_count());
  EXPECT_NEAR(named, 0.8, 0.03);
}

TEST(BuildDns, NamesPointNearTheRouter) {
  const auto& truth = geonet::testing::small_truth();
  std::vector<geo::GeoPoint> cities;
  for (const auto& grid : geonet::testing::small_world().grids()) {
    for (const auto& city : grid.cities()) cities.push_back(city.center);
  }
  const CityCodebook codebook(std::move(cities));
  DnsOptions options;
  options.stale_fraction = 0.0;
  const DnsDatabase dns = build_dns(truth, codebook, options);

  std::size_t checked = 0;
  for (const auto& iface : truth.topology().interfaces()) {
    const auto hostname = dns.lookup(iface.addr);
    if (!hostname) continue;
    const auto city = parse_city(*hostname, codebook);
    ASSERT_TRUE(city.has_value()) << *hostname;
    const auto& router_loc = truth.topology().router(iface.router).location;
    const auto nearest = codebook.nearest(router_loc);
    EXPECT_EQ(*city, *nearest);
    if (++checked > 500) break;
  }
  EXPECT_GT(checked, 100u);
}

TEST(HostnameMapper, MapsNamedInterfacesToTheirCity) {
  const auto& truth = geonet::testing::small_truth();
  std::vector<geo::GeoPoint> cities;
  for (const auto& grid : geonet::testing::small_world().grids()) {
    for (const auto& city : grid.cities()) cities.push_back(city.center);
  }
  const CityCodebook codebook(std::move(cities));
  DnsOptions options;
  options.stale_fraction = 0.0;
  const DnsDatabase dns = build_dns(truth, codebook, options);
  const HostnameMapper mapper(dns, codebook, 0.9, 7);

  std::size_t mapped = 0;
  std::size_t close = 0;
  for (const auto& iface : truth.topology().interfaces()) {
    const auto where = mapper.map(
        iface.addr, truth.topology().router(iface.router).location,
        truth.topology().router(iface.router).location);
    if (!where) continue;
    ++mapped;
    if (geo::great_circle_miles(*where,
                                truth.topology().router(iface.router).location) <
        150.0) {
      ++close;
    }
    if (mapped > 2000) break;
  }
  ASSERT_GT(mapped, 1000u);
  EXPECT_GT(static_cast<double>(close) / static_cast<double>(mapped), 0.95);
}

TEST(HostnameMapper, PrivateAddressesUnmapped) {
  const CityCodebook codebook(test_cities());
  const DnsDatabase dns;
  const HostnameMapper mapper(dns, codebook, 1.0, 7);
  EXPECT_FALSE(mapper.map(*net::parse_ipv4("10.0.0.1"), {40.7, -74.0},
                          {40.7, -74.0})
                   .has_value());
}

TEST(DnsDatabase, LocRecords) {
  DnsDatabase dns;
  EXPECT_FALSE(dns.lookup_loc(net::Ipv4Addr{1}).has_value());
  dns.insert_loc(net::Ipv4Addr{1}, {40.75, -73.99});
  const auto loc = dns.lookup_loc(net::Ipv4Addr{1});
  ASSERT_TRUE(loc.has_value());
  EXPECT_DOUBLE_EQ(loc->lat_deg, 40.75);
  EXPECT_EQ(dns.loc_count(), 1u);
}

TEST(BuildDns, LocFractionHonoured) {
  const auto& truth = geonet::testing::small_truth();
  std::vector<geo::GeoPoint> cities;
  for (const auto& grid : geonet::testing::small_world().grids()) {
    for (const auto& city : grid.cities()) cities.push_back(city.center);
  }
  const CityCodebook codebook(std::move(cities));
  DnsOptions options;
  options.loc_fraction = 0.10;
  const DnsDatabase dns = build_dns(truth, codebook, options);
  const double fraction =
      static_cast<double>(dns.loc_count()) /
      static_cast<double>(truth.topology().interface_count());
  EXPECT_NEAR(fraction, 0.10, 0.02);
}

TEST(HostnameMapper, LocRecordBeatsWhoisButNotHostname) {
  const CityCodebook codebook(test_cities());
  DnsDatabase dns;
  const net::Ipv4Addr with_loc = *net::parse_ipv4("7.7.7.7");
  dns.insert_loc(with_loc, {40.813, -73.928});  // exact LOC answer
  const HostnameMapper mapper(dns, codebook, 1.0, 7);

  // Unnamed + LOC -> the LOC coordinates win over the whois HQ city.
  const auto via_loc = mapper.map(with_loc, {40.813, -73.928}, {34.1, -118.1});
  ASSERT_TRUE(via_loc.has_value());
  EXPECT_DOUBLE_EQ(via_loc->lat_deg, 40.813);

  // Named + LOC -> the hostname's city token wins (the paper's order).
  stats::Rng rng(5);
  dns.insert(with_loc, make_hostname(rng, codebook.code(1), 99));
  const auto via_name = mapper.map(with_loc, {40.813, -73.928}, {34.1, -118.1});
  ASSERT_TRUE(via_name.has_value());
  EXPECT_DOUBLE_EQ(via_name->lat_deg, 34.05);  // city 1 = Los Angeles
}

TEST(HostnameMapper, UnnamedFallsBackToWhoisHeadquarters) {
  const CityCodebook codebook(test_cities());
  const DnsDatabase dns;  // empty: nothing is named
  const HostnameMapper always(dns, codebook, 1.0, 7);
  const auto mapped = always.map(*net::parse_ipv4("8.8.8.8"),
                                 {40.8, -73.9},     // true: New York
                                 {34.1, -118.1});   // HQ: Los Angeles
  ASSERT_TRUE(mapped.has_value());
  EXPECT_DOUBLE_EQ(mapped->lat_deg, 34.05);  // whois answered with HQ city

  const HostnameMapper never(dns, codebook, 0.0, 7);
  EXPECT_FALSE(never.map(*net::parse_ipv4("8.8.8.8"), {40.8, -73.9},
                         {34.1, -118.1})
                   .has_value());
}

}  // namespace
}  // namespace geonet::synth
