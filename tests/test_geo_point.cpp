#include "geo/geo_point.h"

#include <gtest/gtest.h>

namespace geonet::geo {
namespace {

TEST(GeoPoint, ValidityBounds) {
  EXPECT_TRUE(is_valid({0.0, 0.0}));
  EXPECT_TRUE(is_valid({90.0, 180.0}));
  EXPECT_TRUE(is_valid({-90.0, -180.0}));
  EXPECT_FALSE(is_valid({90.1, 0.0}));
  EXPECT_FALSE(is_valid({0.0, 180.1}));
  EXPECT_FALSE(is_valid({std::numeric_limits<double>::quiet_NaN(), 0.0}));
}

TEST(GeoPoint, NormalizeWrapsLongitude) {
  EXPECT_NEAR(normalized({0.0, 190.0}).lon_deg, -170.0, 1e-12);
  EXPECT_NEAR(normalized({0.0, -190.0}).lon_deg, 170.0, 1e-12);
  EXPECT_NEAR(normalized({0.0, 360.0}).lon_deg, 0.0, 1e-12);
  EXPECT_NEAR(normalized({0.0, 540.0}).lon_deg, -180.0, 1e-12);
}

TEST(GeoPoint, NormalizeClampsLatitude) {
  EXPECT_DOUBLE_EQ(normalized({95.0, 0.0}).lat_deg, 90.0);
  EXPECT_DOUBLE_EQ(normalized({-95.0, 0.0}).lat_deg, -90.0);
}

TEST(GeoPoint, NormalizeIdempotent) {
  const GeoPoint p = normalized({47.3, -260.0});
  const GeoPoint q = normalized(p);
  EXPECT_DOUBLE_EQ(p.lat_deg, q.lat_deg);
  EXPECT_DOUBLE_EQ(p.lon_deg, q.lon_deg);
}

TEST(GeoPoint, ToStringHemispheres) {
  EXPECT_EQ(to_string({40.71, -74.01}), "40.71N 74.01W");
  EXPECT_EQ(to_string({-33.87, 151.21}), "33.87S 151.21E");
}

TEST(GeoPoint, DegRadRoundTrip) {
  EXPECT_NEAR(rad_to_deg(deg_to_rad(123.456)), 123.456, 1e-12);
  EXPECT_NEAR(deg_to_rad(180.0), kPi, 1e-12);
}

TEST(QuantizedKey, SameCellSameKey) {
  EXPECT_EQ(quantized_key({40.001, -74.001}), quantized_key({40.002, -74.002}));
}

TEST(QuantizedKey, DifferentCellsDiffer) {
  EXPECT_NE(quantized_key({40.0, -74.0}), quantized_key({40.1, -74.0}));
  EXPECT_NE(quantized_key({40.0, -74.0}), quantized_key({40.0, -74.1}));
}

TEST(QuantizedKey, QuantumControlsGranularity) {
  const GeoPoint a{40.0, -74.0};
  const GeoPoint b{40.2, -74.2};
  EXPECT_NE(quantized_key(a, 0.01), quantized_key(b, 0.01));
  EXPECT_EQ(quantized_key(a, 10.0), quantized_key(b, 10.0));
}

TEST(QuantizedKey, HemispheresDistinct) {
  EXPECT_NE(quantized_key({10.0, 20.0}), quantized_key({-10.0, 20.0}));
  EXPECT_NE(quantized_key({10.0, 20.0}), quantized_key({10.0, -20.0}));
  EXPECT_NE(quantized_key({10.0, 20.0}), quantized_key({20.0, 10.0}));
}

}  // namespace
}  // namespace geonet::geo
