#include "synth/bgp.h"

#include <gtest/gtest.h>

#include <set>

namespace geonet::synth {
namespace {

using net::parse_ipv4;
using net::parse_prefix;

TEST(BgpTable, OriginAsByLongestMatch) {
  BgpTable table;
  table.announce(*parse_prefix("10.0.0.0/8"), 100);
  table.announce(*parse_prefix("10.5.0.0/16"), 200);
  EXPECT_EQ(table.origin_as(*parse_ipv4("10.5.1.1")).value(), 200u);
  EXPECT_EQ(table.origin_as(*parse_ipv4("10.6.1.1")).value(), 100u);
  EXPECT_FALSE(table.origin_as(*parse_ipv4("11.0.0.1")).has_value());
  EXPECT_EQ(table.size(), 2u);
}

TEST(BgpTable, RefreshOverwrites) {
  BgpTable table;
  table.announce(*parse_prefix("192.0.2.0/24"), 1);
  table.announce(*parse_prefix("192.0.2.0/24"), 2);
  EXPECT_EQ(table.origin_as(*parse_ipv4("192.0.2.9")).value(), 2u);
}

TEST(AddressAllocator, BlocksAreAlignedAndDisjoint) {
  AddressAllocator alloc;
  std::set<std::uint32_t> starts;
  for (int i = 0; i < 100; ++i) {
    const net::Prefix block = alloc.allocate_block(20);
    const std::uint32_t size = 1u << 12;
    EXPECT_EQ(block.network.value % size, 0u) << net::to_string(block);
    EXPECT_TRUE(starts.insert(block.network.value).second);
  }
  EXPECT_EQ(alloc.allocated(), 100u * (1u << 12));
}

TEST(AddressAllocator, SkipsPrivateSpace) {
  AddressAllocator alloc;
  // Burn through enough /9s to cross 10/8, 127/8, 172.16/12, 192.168/16.
  for (int i = 0; i < 300; ++i) {
    const net::Prefix block = alloc.allocate_block(9);
    const std::uint32_t first = block.network.value;
    const std::uint32_t last = first + (1u << 23) - 1;
    for (const std::uint32_t probe : {first, last, first + (last - first) / 2}) {
      EXPECT_FALSE(net::is_private(net::Ipv4Addr{probe}))
          << net::to_string(net::Ipv4Addr{probe});
    }
    if (first >= 0xc8000000u) break;  // past 200/8: covered the ranges
  }
}

TEST(AddressAllocator, RejectsSillyLengths) {
  AddressAllocator alloc;
  EXPECT_THROW(alloc.allocate_block(7), std::invalid_argument);
  EXPECT_THROW(alloc.allocate_block(31), std::invalid_argument);
}

TEST(AsAddressSpace, MintsUniquePublicAddresses) {
  AddressAllocator alloc;
  AsAddressSpace space(alloc, 24);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {  // forces several /24 blocks
    const net::Ipv4Addr addr = space.next();
    EXPECT_TRUE(seen.insert(addr.value).second);
    EXPECT_FALSE(net::is_private(addr));
  }
  EXPECT_GE(space.blocks().size(), 4u);
}

TEST(AsAddressSpace, AddressesBelongToOwnBlocks) {
  AddressAllocator alloc;
  AsAddressSpace a(alloc, 24);
  AsAddressSpace b(alloc, 24);
  for (int i = 0; i < 300; ++i) {
    const net::Ipv4Addr from_a = a.next();
    const net::Ipv4Addr from_b = b.next();
    bool a_owns = false;
    for (const auto& block : a.blocks()) a_owns |= contains(block, from_a);
    EXPECT_TRUE(a_owns);
    bool b_in_a = false;
    for (const auto& block : a.blocks()) b_in_a |= contains(block, from_b);
    EXPECT_FALSE(b_in_a);
  }
}

TEST(AsAddressSpace, SkipsNetworkAddress) {
  AddressAllocator alloc;
  AsAddressSpace space(alloc, 24);
  const net::Ipv4Addr first = space.next();
  EXPECT_EQ(first.value & 0xffu, 1u);  // .1, not .0
}

}  // namespace
}  // namespace geonet::synth
