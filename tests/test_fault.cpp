// Unit tests for the fault-injection layer: the err:: taxonomy, the
// FaultPlan spec parser, probe retry semantics, geolocation corruption,
// and the simulators' behaviour under injected damage (including the
// no-plan == empty-plan == pre-fault invariant).

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>

#include "err/status.h"
#include "fault/fault_plan.h"
#include "fault/geo_faults.h"
#include "fault/probe.h"
#include "geo/geo_point.h"
#include "stats/rng.h"
#include "synth/faulty_mapper.h"
#include "synth/mercator.h"
#include "synth/skitter.h"
#include "tests/test_world.h"

namespace geonet {
namespace {

using geonet::testing::small_truth;

// ---------------------------------------------------------------------------
// err::Status / err::Result / err::ErrorBudget

TEST(Status, DefaultIsOk) {
  const err::Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), err::Code::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const err::Status s = err::Status::data_loss("truncated record");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), err::Code::kDataLoss);
  EXPECT_EQ(s.message(), "truncated record");
  EXPECT_EQ(s.to_string(), "DATA_LOSS: truncated record");
  EXPECT_EQ(err::Status::unavailable("x").code(), err::Code::kUnavailable);
  EXPECT_EQ(err::Status::resource_exhausted("x").code(),
            err::Code::kResourceExhausted);
  EXPECT_EQ(err::Status::aborted("x").code(), err::Code::kAborted);
  EXPECT_EQ(err::Status::internal("x").code(), err::Code::kInternal);
  EXPECT_EQ(err::Status::not_found("x").code(), err::Code::kNotFound);
  EXPECT_EQ(err::Status::invalid_argument("x").code(),
            err::Code::kInvalidArgument);
}

TEST(Result, HoldsValueOrStatus) {
  err::Result<int> ok(42);
  EXPECT_TRUE(ok.is_ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.value_or(-1), 42);
  EXPECT_TRUE(ok.status().is_ok());
  EXPECT_TRUE(ok.error_message().empty());

  err::Result<int> bad(err::Status::not_found("no such region"));
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_EQ(bad.status().code(), err::Code::kNotFound);
  EXPECT_EQ(bad.error_message(), "no such region");
}

TEST(Result, MovesValueOut) {
  err::Result<std::string> r(std::string("payload"));
  const std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

TEST(ErrorBudget, ChargesUntilExhausted) {
  err::ErrorBudget budget(2);
  EXPECT_FALSE(budget.exhausted());
  EXPECT_TRUE(budget.charge());   // 1 of 2
  EXPECT_TRUE(budget.charge());   // 2 of 2
  EXPECT_FALSE(budget.exhausted());
  EXPECT_FALSE(budget.charge());  // over budget
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.errors(), 3u);
  EXPECT_EQ(budget.max_errors(), 2u);
}

TEST(ErrorBudget, ZeroBudgetExhaustsOnFirstError) {
  err::ErrorBudget budget(0);
  EXPECT_FALSE(budget.exhausted());
  EXPECT_FALSE(budget.charge());
  EXPECT_TRUE(budget.exhausted());
}

// ---------------------------------------------------------------------------
// FaultPlan spec parsing

TEST(FaultPlanParse, EmptySpecIsEmptyPlan) {
  const auto plan = fault::parse_fault_plan("");
  ASSERT_TRUE(plan.is_ok());
  EXPECT_TRUE(plan.value().empty());
}

TEST(FaultPlanParse, FullSpecPopulatesEveryClause) {
  const auto result = fault::parse_fault_plan(
      "monitor-outage:count=3,at=0.25; throttle:frac=0.1,rate=0.3;"
      "truncate:prob=0.05,min-hops=4; probe-loss:prob=0.02,burst=10;"
      "geo-corrupt:prob=0.04,garble=0.75; seed=77");
  ASSERT_TRUE(result.is_ok()) << result.error_message();
  const fault::FaultPlan& plan = result.value();
  EXPECT_FALSE(plan.empty());
  ASSERT_TRUE(plan.monitor_outage);
  EXPECT_EQ(plan.monitor_outage->count, 3u);
  EXPECT_DOUBLE_EQ(plan.monitor_outage->at_fraction, 0.25);
  ASSERT_TRUE(plan.throttle);
  EXPECT_DOUBLE_EQ(plan.throttle->router_fraction, 0.1);
  EXPECT_DOUBLE_EQ(plan.throttle->answer_rate, 0.3);
  ASSERT_TRUE(plan.truncate);
  EXPECT_DOUBLE_EQ(plan.truncate->probability, 0.05);
  EXPECT_EQ(plan.truncate->min_hops, 4u);
  ASSERT_TRUE(plan.probe_loss);
  EXPECT_DOUBLE_EQ(plan.probe_loss->burst_probability, 0.02);
  EXPECT_DOUBLE_EQ(plan.probe_loss->mean_burst_length, 10.0);
  ASSERT_TRUE(plan.geo_corrupt);
  EXPECT_DOUBLE_EQ(plan.geo_corrupt->probability, 0.04);
  EXPECT_DOUBLE_EQ(plan.geo_corrupt->garble_fraction, 0.75);
  EXPECT_EQ(plan.seed, 77u);
}

TEST(FaultPlanParse, BareClauseUsesDefaults) {
  const auto result = fault::parse_fault_plan("throttle");
  ASSERT_TRUE(result.is_ok());
  ASSERT_TRUE(result.value().throttle);
  EXPECT_DOUBLE_EQ(result.value().throttle->router_fraction, 0.1);
  EXPECT_DOUBLE_EQ(result.value().throttle->answer_rate, 0.25);
  EXPECT_FALSE(result.value().monitor_outage);
}

TEST(FaultPlanParse, RejectsBadSpecs) {
  const char* bad_specs[] = {
      "explode",                      // unknown clause
      "throttle:knob=1",              // unknown key
      "throttle:frac=1.5",            // fraction out of range
      "throttle:frac=abc",            // malformed number
      "truncate:min-hops=0",          // below minimum
      "probe-loss:burst=0.5",         // below minimum
      "count=3",                      // bare key=value that isn't seed
      "seed=-4",                      // negative seed
      "monitor-outage:count",         // key without value
  };
  for (const char* spec : bad_specs) {
    const auto result = fault::parse_fault_plan(spec);
    EXPECT_FALSE(result.is_ok()) << spec;
    EXPECT_EQ(result.status().code(), err::Code::kInvalidArgument) << spec;
    EXPECT_NE(result.error_message().find("fault clause"), std::string::npos)
        << spec << " -> " << result.error_message();
  }
}

TEST(FaultPlanParse, PlanJsonEchoIsWellFormed) {
  const auto result =
      fault::parse_fault_plan("monitor-outage:count=2;throttle");
  ASSERT_TRUE(result.is_ok());
  const std::string json = result.value().to_json();
  EXPECT_NE(json.find("\"monitor_outage\""), std::string::npos);
  EXPECT_NE(json.find("\"throttle\""), std::string::npos);
  EXPECT_EQ(json.find("\"truncate\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Probe retry semantics

TEST(ProbeRetry, PerfectTargetAnswersFirstAttempt) {
  stats::Rng rng(1);
  fault::ProbeStats stats;
  const fault::ProbePolicy policy{.max_attempts = 3};
  EXPECT_TRUE(fault::probe_with_retry(rng, 1.0, policy, stats));
  EXPECT_EQ(stats.probes, 1u);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.losses, 0u);
  EXPECT_EQ(stats.giveups, 0u);
  EXPECT_DOUBLE_EQ(stats.simulated_wait_ms, 0.0);
}

TEST(ProbeRetry, SilentTargetExhaustsAttemptsWithBackoff) {
  stats::Rng rng(1);
  fault::ProbeStats stats;
  const fault::ProbePolicy policy{
      .max_attempts = 3, .timeout_ms = 100.0, .backoff = 2.0};
  EXPECT_FALSE(fault::probe_with_retry(rng, 0.0, policy, stats));
  EXPECT_EQ(stats.probes, 1u);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.losses, 3u);
  EXPECT_EQ(stats.giveups, 1u);
  // 100 + 200 + 400: every timed-out attempt waits, each wait doubling.
  EXPECT_DOUBLE_EQ(stats.simulated_wait_ms, 700.0);
}

TEST(ProbeRetry, ZeroAttemptsStillProbesOnce) {
  stats::Rng rng(1);
  fault::ProbeStats stats;
  const fault::ProbePolicy policy{.max_attempts = 0};
  fault::probe_with_retry(rng, 1.0, policy, stats);
  EXPECT_EQ(stats.attempts, 1u);
}

TEST(ProbeRetry, RetriesRecoverLossyTargets) {
  // With 3 attempts at 50% each, ~87.5% of probes succeed; far more than
  // the single-attempt 50%.
  stats::Rng rng(7);
  fault::ProbeStats stats;
  const fault::ProbePolicy policy{.max_attempts = 3};
  std::size_t answered = 0;
  constexpr std::size_t kProbes = 2000;
  for (std::size_t i = 0; i < kProbes; ++i) {
    if (fault::probe_with_retry(rng, 0.5, policy, stats)) ++answered;
  }
  EXPECT_GT(answered, kProbes * 8 / 10);
  EXPECT_LT(answered, kProbes * 95 / 100);
  EXPECT_EQ(stats.probes, kProbes);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.giveups, kProbes - answered);
  EXPECT_EQ(stats.attempts, stats.retries + kProbes);
}

TEST(ProbeStats, MergeAddsFields) {
  fault::ProbeStats a;
  a.probes = 1;
  a.attempts = 2;
  a.simulated_wait_ms = 10.0;
  fault::ProbeStats b;
  b.probes = 3;
  b.attempts = 4;
  b.simulated_wait_ms = 5.0;
  a.merge(b);
  EXPECT_EQ(a.probes, 4u);
  EXPECT_EQ(a.attempts, 6u);
  EXPECT_DOUBLE_EQ(a.simulated_wait_ms, 15.0);
}

// ---------------------------------------------------------------------------
// Geolocation corruption

TEST(GeoCorruptor, IsDeterministicPerAddress) {
  const fault::GeoCorruptFault spec{.probability = 0.5, .garble_fraction = 0.5};
  const fault::GeoCorruptor corruptor(spec, 1234);
  const geo::GeoPoint answer{40.0, -74.0};
  for (std::uint64_t key = 0; key < 200; ++key) {
    fault::FaultStats s1, s2;
    const auto first = corruptor.corrupt(key, answer, s1);
    const auto second = corruptor.corrupt(key, answer, s2);
    ASSERT_EQ(first.has_value(), second.has_value()) << key;
    if (first) {
      EXPECT_DOUBLE_EQ(first->lat_deg, second->lat_deg) << key;
      EXPECT_DOUBLE_EQ(first->lon_deg, second->lon_deg) << key;
    }
  }
}

TEST(GeoCorruptor, ZeroProbabilityNeverFires) {
  const fault::GeoCorruptor corruptor({.probability = 0.0}, 1);
  fault::FaultStats stats;
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_FALSE(corruptor.corrupt(key, {10.0, 20.0}, stats).has_value());
  }
  EXPECT_FALSE(stats.any());
}

TEST(GeoCorruptor, CertainCorruptionAlwaysFiresAndStaysOnThePlanet) {
  const fault::GeoCorruptFault spec{.probability = 1.0, .garble_fraction = 0.5};
  const fault::GeoCorruptor corruptor(spec, 99);
  fault::FaultStats stats;
  const geo::GeoPoint answer{40.0, -74.0};
  for (std::uint64_t key = 0; key < 100; ++key) {
    const auto wrong = corruptor.corrupt(key, answer, stats);
    ASSERT_TRUE(wrong.has_value()) << key;
    EXPECT_TRUE(geo::is_valid(*wrong)) << key;
  }
  EXPECT_EQ(stats.geo_corrupted + stats.geo_garbled, 100u);
  EXPECT_GT(stats.geo_corrupted, 0u);
  EXPECT_GT(stats.geo_garbled, 0u);
}

/// Stub mapper with a fixed answer, for decorator tests.
class FixedMapper final : public synth::Mapper {
 public:
  [[nodiscard]] std::optional<geo::GeoPoint> map(
      net::Ipv4Addr addr, const geo::GeoPoint&,
      const geo::GeoPoint&) const override {
    if (addr.value % 10 == 0) return std::nullopt;  // unmappable minority
    return geo::GeoPoint{40.0, -74.0};
  }
  [[nodiscard]] std::string name() const override { return "FixedMapper"; }
};

TEST(FaultyMapper, CorruptsAnswersButNeverInventsThem) {
  const FixedMapper inner;
  const synth::FaultyMapper faulty(
      inner, {.probability = 1.0, .garble_fraction = 0.0}, 7);
  EXPECT_EQ(faulty.name(), "FixedMapper");
  std::size_t mapped = 0;
  for (std::uint32_t a = 1; a <= 100; ++a) {
    const net::Ipv4Addr addr{a};
    const auto answer = faulty.map(addr, {0, 0}, {0, 0});
    const auto honest = inner.map(addr, {0, 0}, {0, 0});
    ASSERT_EQ(answer.has_value(), honest.has_value()) << a;
    if (answer) {
      ++mapped;
      EXPECT_TRUE(geo::is_valid(*answer));
      // probability=1: every mapped answer is corrupted away from truth.
      EXPECT_FALSE(answer->lat_deg == honest->lat_deg &&
                   answer->lon_deg == honest->lon_deg)
          << a;
    }
  }
  EXPECT_GT(mapped, 0u);
  EXPECT_EQ(faulty.stats().geo_corrupted, mapped);
}

// ---------------------------------------------------------------------------
// Skitter under faults (and at its option edge cases)

synth::SkitterOptions small_skitter_options() {
  synth::SkitterOptions options;
  options.monitor_count = 5;
  options.destinations_per_monitor = 300;
  options.seed = 2024;
  return options;
}

TEST(SkitterEdgeCases, ZeroMonitorsYieldEmptyObservation) {
  auto options = small_skitter_options();
  options.monitor_count = 0;
  const auto obs = synth::run_skitter(small_truth(), options);
  EXPECT_EQ(obs.traces, 0u);
  EXPECT_TRUE(obs.interfaces.empty());
  EXPECT_TRUE(obs.links.empty());
}

TEST(SkitterEdgeCases, ZeroDestinationsYieldEmptyObservation) {
  auto options = small_skitter_options();
  options.destinations_per_monitor = 0;
  const auto obs = synth::run_skitter(small_truth(), options);
  EXPECT_EQ(obs.traces, 0u);
  EXPECT_TRUE(obs.interfaces.empty());
}

TEST(SkitterEdgeCases, ResponseRateZeroObservesNothing) {
  auto options = small_skitter_options();
  options.hop_response_rate = 0.0;
  const auto obs = synth::run_skitter(small_truth(), options);
  EXPECT_GT(obs.traces, 0u);  // probes fire; nothing answers
  EXPECT_TRUE(obs.interfaces.empty());
  EXPECT_TRUE(obs.links.empty());
}

TEST(SkitterEdgeCases, ResponseRateOneObservesEveryHop) {
  auto options = small_skitter_options();
  options.hop_response_rate = 1.0;
  const auto obs = synth::run_skitter(small_truth(), options);
  EXPECT_GT(obs.traces, 0u);
  EXPECT_GT(obs.interfaces.size(), 0u);
}

TEST(SkitterEdgeCases, OversizedListVariationIsClamped) {
  auto options = small_skitter_options();
  options.destination_list_variation = 5.0;  // would be UB unclamped
  const auto obs = synth::run_skitter(small_truth(), options);
  EXPECT_GT(obs.traces, 0u);
}

template <typename Obs>
void expect_same_observation(const Obs& a, const Obs& b) {
  EXPECT_EQ(a.links, b.links);
  EXPECT_EQ(a.traces, b.traces);
}

TEST(SkitterFaults, EmptyPlanIsByteIdenticalToNoPlan) {
  const auto options = small_skitter_options();
  auto with_empty_plan = options;
  with_empty_plan.faults = fault::FaultPlan{};  // no clauses armed
  const auto baseline = synth::run_skitter(small_truth(), options);
  const auto shadowed = synth::run_skitter(small_truth(), with_empty_plan);
  EXPECT_EQ(baseline.interfaces, shadowed.interfaces);
  expect_same_observation(baseline, shadowed);
  EXPECT_FALSE(shadowed.fault_stats.any());
  EXPECT_FALSE(shadowed.probe_stats.any());
}

TEST(SkitterFaults, MonitorOutageSkipsDestinations) {
  auto options = small_skitter_options();
  const auto baseline = synth::run_skitter(small_truth(), options);
  options.faults =
      fault::parse_fault_plan("monitor-outage:count=2,at=0.0").value();
  const auto damaged = synth::run_skitter(small_truth(), options);
  EXPECT_EQ(damaged.fault_stats.monitors_killed, 2u);
  EXPECT_GT(damaged.fault_stats.destinations_skipped, 0u);
  EXPECT_LT(damaged.traces, baseline.traces);
}

TEST(SkitterFaults, OutageCountIsCappedAtTheMonitorSet) {
  auto options = small_skitter_options();
  options.faults =
      fault::parse_fault_plan("monitor-outage:count=100,at=0.0").value();
  const auto damaged = synth::run_skitter(small_truth(), options);
  EXPECT_EQ(damaged.fault_stats.monitors_killed, options.monitor_count);
  EXPECT_EQ(damaged.traces, 0u);
}

TEST(SkitterFaults, TruncationCutsTraces) {
  auto options = small_skitter_options();
  options.faults =
      fault::parse_fault_plan("truncate:prob=1.0,min-hops=1").value();
  const auto damaged = synth::run_skitter(small_truth(), options);
  EXPECT_GT(damaged.fault_stats.traces_truncated, 0u);
}

TEST(SkitterFaults, ProbeLossBurstsDropWholeTraces) {
  auto options = small_skitter_options();
  const auto baseline = synth::run_skitter(small_truth(), options);
  options.faults =
      fault::parse_fault_plan("probe-loss:prob=0.2,burst=5").value();
  const auto damaged = synth::run_skitter(small_truth(), options);
  EXPECT_GT(damaged.fault_stats.probes_lost, 0u);
  EXPECT_LT(damaged.traces, baseline.traces);
}

TEST(SkitterFaults, ThrottledRoutersVanishWithoutRetries) {
  auto options = small_skitter_options();
  options.hop_response_rate = 1.0;
  const auto baseline = synth::run_skitter(small_truth(), options);

  // Every router throttled, answering no attempt ever: only monitors'
  // probes into silence remain, and every probe burns all its attempts.
  options.faults =
      fault::parse_fault_plan("throttle:frac=1.0,rate=0.0").value();
  const auto damaged = synth::run_skitter(small_truth(), options);
  EXPECT_GT(damaged.fault_stats.routers_throttled, 0u);
  EXPECT_TRUE(damaged.interfaces.empty());
  EXPECT_GT(damaged.probe_stats.giveups, 0u);
  EXPECT_EQ(damaged.probe_stats.losses, damaged.probe_stats.attempts);
  EXPECT_GT(damaged.probe_stats.retries, 0u);
  EXPECT_GT(damaged.probe_stats.simulated_wait_ms, 0.0);
  EXPECT_LT(damaged.interfaces.size(), baseline.interfaces.size());
}

TEST(SkitterFaults, PerfectlyAnsweringThrottleChangesNothing) {
  auto options = small_skitter_options();
  const auto baseline = synth::run_skitter(small_truth(), options);
  options.faults =
      fault::parse_fault_plan("throttle:frac=1.0,rate=1.0").value();
  const auto damaged = synth::run_skitter(small_truth(), options);
  // Rate 1.0 means the first attempt always answers: observation equals
  // the fault-free run, with the bookkeeping showing the probes fired.
  EXPECT_EQ(baseline.interfaces, damaged.interfaces);
  expect_same_observation(baseline, damaged);
  EXPECT_EQ(damaged.probe_stats.retries, 0u);
  EXPECT_GT(damaged.probe_stats.probes, 0u);
}

// ---------------------------------------------------------------------------
// Mercator under faults

TEST(MercatorFaults, EmptyPlanIsByteIdenticalToNoPlan) {
  synth::MercatorOptions options;
  auto with_empty_plan = options;
  with_empty_plan.faults = fault::FaultPlan{};
  const auto baseline = synth::run_mercator(small_truth(), options);
  const auto shadowed = synth::run_mercator(small_truth(), with_empty_plan);
  EXPECT_EQ(baseline.links, shadowed.links);
  EXPECT_EQ(baseline.routers.size(), shadowed.routers.size());
  EXPECT_FALSE(shadowed.fault_stats.any());
}

TEST(MercatorFaults, ThrottleDegradesAliasResolution) {
  synth::MercatorOptions options;
  const auto baseline = synth::run_mercator(small_truth(), options);
  options.faults =
      fault::parse_fault_plan("throttle:frac=1.0,rate=0.0").value();
  const auto damaged = synth::run_mercator(small_truth(), options);
  EXPECT_GT(damaged.fault_stats.routers_throttled, 0u);
  // Unresolved aliases leave interfaces as separate router nodes.
  EXPECT_GT(damaged.routers.size(), baseline.routers.size());
}

TEST(MercatorFaults, ProbeLossSuppressesLateralDiscovery) {
  synth::MercatorOptions options;
  const auto baseline = synth::run_mercator(small_truth(), options);
  options.faults =
      fault::parse_fault_plan("probe-loss:prob=1.0,burst=1000").value();
  const auto damaged = synth::run_mercator(small_truth(), options);
  EXPECT_GT(damaged.fault_stats.probes_lost, 0u);
  EXPECT_LT(damaged.links.size(), baseline.links.size());
}

}  // namespace
}  // namespace geonet
