#include "stats/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace geonet::stats {
namespace {

TEST(Zipf, PmfSumsToOne) {
  const ZipfSampler zipf(100, 1.1);
  double total = 0.0;
  for (std::size_t k = 1; k <= 100; ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, PmfDecreasesWithRank) {
  const ZipfSampler zipf(50, 1.0);
  for (std::size_t k = 1; k < 50; ++k) {
    EXPECT_GT(zipf.pmf(k), zipf.pmf(k + 1));
  }
}

TEST(Zipf, PmfOutOfRangeIsZero) {
  const ZipfSampler zipf(10, 1.0);
  EXPECT_DOUBLE_EQ(zipf.pmf(0), 0.0);
  EXPECT_DOUBLE_EQ(zipf.pmf(11), 0.0);
}

TEST(Zipf, SamplesMatchPmf) {
  const ZipfSampler zipf(10, 1.0);
  Rng rng(33);
  std::vector<int> counts(11, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / kN, zipf.pmf(k), 0.005)
        << "rank " << k;
  }
}

TEST(Zipf, ZeroExponentIsUniform) {
  const ZipfSampler zipf(4, 0.0);
  for (std::size_t k = 1; k <= 4; ++k) {
    EXPECT_NEAR(zipf.pmf(k), 0.25, 1e-12);
  }
}

TEST(Zipf, RejectsInvalidArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(5, -0.5), std::invalid_argument);
}

TEST(Pareto, RespectsMinimum) {
  Rng rng(34);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(pareto(rng, 10.0, 1.5), 10.0);
  }
}

TEST(Pareto, TailExponentApproximatelyCorrect) {
  // For Pareto(alpha), P[X > 2 x_min] = 2^-alpha.
  Rng rng(35);
  constexpr int kN = 200000;
  int above = 0;
  for (int i = 0; i < kN; ++i) {
    if (pareto(rng, 1.0, 2.0) > 2.0) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / kN, 0.25, 0.01);
}

TEST(BoundedPareto, StaysInRange) {
  Rng rng(36);
  for (int i = 0; i < 5000; ++i) {
    const double x = bounded_pareto(rng, 2.0, 50.0, 1.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 50.0);
  }
}

TEST(BoundedPareto, SkewsTowardMinimum) {
  Rng rng(37);
  int low = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    if (bounded_pareto(rng, 1.0, 100.0, 1.5) < 2.0) ++low;
  }
  EXPECT_GT(static_cast<double>(low) / kN, 0.5);
}

TEST(WeightedIndex, FollowsWeights) {
  Rng rng(38);
  std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[weighted_index(rng, weights)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kN, 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[3]) / kN, 0.6, 0.01);
}

TEST(WeightedIndex, AllZeroReturnsSize) {
  Rng rng(39);
  std::vector<double> weights{0.0, 0.0};
  EXPECT_EQ(weighted_index(rng, weights), weights.size());
}

TEST(DiscreteSampler, MatchesWeights) {
  std::vector<double> weights{2.0, 0.0, 8.0};
  const DiscreteSampler sampler(weights);
  EXPECT_DOUBLE_EQ(sampler.total_weight(), 10.0);
  Rng rng(40);
  std::vector<int> counts(3, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.2, 0.01);
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.8, 0.01);
}

TEST(DiscreteSampler, EmptyOrZeroTotalReturnsSize) {
  Rng rng(41);
  const DiscreteSampler empty(std::vector<double>{});
  EXPECT_EQ(empty.sample(rng), 0u);
  const DiscreteSampler zeros(std::vector<double>{0.0, 0.0, 0.0});
  EXPECT_EQ(zeros.sample(rng), 3u);
}

TEST(DiscreteSampler, NegativeWeightsTreatedAsZero) {
  const DiscreteSampler sampler(std::vector<double>{-5.0, 1.0});
  EXPECT_DOUBLE_EQ(sampler.total_weight(), 1.0);
  Rng rng(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 1u);
}

}  // namespace
}  // namespace geonet::stats
