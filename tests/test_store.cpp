#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "store/build_info.h"
#include "store/bytes.h"
#include "store/cache.h"
#include "store/fingerprint.h"
#include "store/fs.h"
#include "store/snapshot.h"

namespace geonet::store {
namespace {

namespace fsys = std::filesystem;

// A fresh per-test scratch directory, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(fsys::temp_directory_path() /
              ("geonet_store_test_" + tag)) {
    fsys::remove_all(path_);
    fsys::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fsys::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fsys::path path_;
};

// ------------------------------------------------------------------
// ByteWriter / ByteReader
// ------------------------------------------------------------------

TEST(Bytes, RoundTripAllPrimitives) {
  ByteWriter out;
  out.u8(0xAB);
  out.u32(0xDEADBEEFu);
  out.u64(0x0123456789ABCDEFull);
  out.f64(-1234.5e-67);
  out.f64(std::numeric_limits<double>::quiet_NaN());
  out.boolean(true);
  out.str("hello, snapshots");
  out.str("");
  const std::vector<std::byte> blob = {std::byte{1}, std::byte{2},
                                       std::byte{3}};
  out.bytes(blob);

  const std::vector<std::byte> buf = out.take();
  ByteReader in(buf);
  EXPECT_EQ(in.u8(), 0xAB);
  EXPECT_EQ(in.u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.f64(), -1234.5e-67);
  EXPECT_TRUE(std::isnan(in.f64()));
  EXPECT_TRUE(in.boolean());
  EXPECT_EQ(in.str(), "hello, snapshots");
  EXPECT_EQ(in.str(), "");
  const auto read_blob = in.bytes();
  ASSERT_EQ(read_blob.size(), blob.size());
  EXPECT_TRUE(std::equal(blob.begin(), blob.end(), read_blob.begin()));
  EXPECT_TRUE(in.ok());
  EXPECT_EQ(in.remaining(), 0u);
}

TEST(Bytes, OverReadTripsStickyFailure) {
  ByteWriter out;
  out.u32(7);
  const std::vector<std::byte> buf = out.buffer();
  ByteReader in(buf);
  EXPECT_EQ(in.u32(), 7u);
  EXPECT_EQ(in.u64(), 0u);  // past the end
  EXPECT_FALSE(in.ok());
  EXPECT_EQ(in.u8(), 0u);  // stays failed
  EXPECT_FALSE(in.ok());
}

TEST(Bytes, CorruptLengthPrefixDoesNotOverRead) {
  ByteWriter out;
  out.str("abc");
  std::vector<std::byte> buf = out.take();
  buf[0] = std::byte{0xFF};  // length prefix now absurdly large
  ByteReader in(buf);
  EXPECT_EQ(in.str(), "");
  EXPECT_FALSE(in.ok());
}

// ------------------------------------------------------------------
// Fingerprint
// ------------------------------------------------------------------

TEST(Fingerprint, DeterministicAndHexRoundTrips) {
  const Digest128 a = Fingerprint().add("x", std::uint64_t{1}).digest();
  const Digest128 b = Fingerprint().add("x", std::uint64_t{1}).digest();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hex().size(), 32u);
  const auto parsed = Digest128::parse_hex(a.hex());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, a);
  EXPECT_FALSE(Digest128::parse_hex("not-hex").has_value());
  EXPECT_FALSE(Digest128::parse_hex(a.hex().substr(1)).has_value());
}

// The satellite contract: changing any single input field changes the
// digest — no two option sets may collide onto one cache entry.
TEST(Fingerprint, EveryFieldChangesTheDigest) {
  const auto base = [] {
    return Fingerprint()
        .add("name", "study")
        .add("seed", std::uint64_t{2002})
        .add("scale", 0.15)
        .add("strict", true)
        .digest();
  }();
  EXPECT_NE(base, Fingerprint()
                      .add("name", "other")
                      .add("seed", std::uint64_t{2002})
                      .add("scale", 0.15)
                      .add("strict", true)
                      .digest());
  EXPECT_NE(base, Fingerprint()
                      .add("name", "study")
                      .add("seed", std::uint64_t{2003})
                      .add("scale", 0.15)
                      .add("strict", true)
                      .digest());
  EXPECT_NE(base, Fingerprint()
                      .add("name", "study")
                      .add("seed", std::uint64_t{2002})
                      .add("scale", 0.16)
                      .add("strict", true)
                      .digest());
  EXPECT_NE(base, Fingerprint()
                      .add("name", "study")
                      .add("seed", std::uint64_t{2002})
                      .add("scale", 0.15)
                      .add("strict", false)
                      .digest());
}

TEST(Fingerprint, FieldNameAndTypeAreSignificant) {
  // Same payload bytes under a different field name or type must not
  // collide.
  EXPECT_NE(Fingerprint().add("a", std::uint64_t{5}).digest(),
            Fingerprint().add("b", std::uint64_t{5}).digest());
  EXPECT_NE(Fingerprint().add("a", std::uint64_t{1}).digest(),
            Fingerprint().add("a", std::int64_t{1}).digest());
  EXPECT_NE(Fingerprint().add("a", true).digest(),
            Fingerprint().add("a", std::uint64_t{1}).digest());
}

TEST(Fingerprint, ProvenanceSeedsTheDigest) {
  EXPECT_NE(Fingerprint::with_provenance().digest(), Fingerprint().digest());
  const std::string json = provenance_json();
  EXPECT_NE(json.find("format_version"), std::string::npos);
  EXPECT_NE(json.find(build_info().compiler), std::string::npos);
}

// ------------------------------------------------------------------
// slug
// ------------------------------------------------------------------

TEST(Slug, SanitizesLabelsIntoFilenames) {
  EXPECT_EQ(slug("EdgeScape, Mercator US"), "edgescape_mercator_us");
  EXPECT_EQ(slug("fig04_EdgeScape, Mercator_US"),
            "fig04_edgescape_mercator_us");
  EXPECT_EQ(slug("already_safe-name_42"), "already_safe-name_42");
  EXPECT_EQ(slug("  spaces  "), "spaces");
  EXPECT_EQ(slug("a/b\\c:d"), "a_b_c_d");
  EXPECT_EQ(slug(""), "");
}

// ------------------------------------------------------------------
// Atomic writes
// ------------------------------------------------------------------

TEST(AtomicWrite, WritesAndReadsBack) {
  ScratchDir dir("atomic");
  const std::string path = dir.file("out.txt");
  ASSERT_TRUE(atomic_write_text(path, "payload\n"));
  const auto bytes = read_file_bytes(path);
  ASSERT_TRUE(bytes.is_ok());
  EXPECT_EQ(bytes.value().size(), 8u);
}

TEST(AtomicWrite, MidWriteFailureLeavesDestinationUntouched) {
  ScratchDir dir("atomic_fail");
  const std::string path = dir.file("artifact.dat");
  ASSERT_TRUE(atomic_write_text(path, "original"));

  // Inject a failure mid-artifact: the writer emits half the payload and
  // then reports failure, as a full disk or crash mid-write would.
  std::string error;
  const bool ok = atomic_write(
      path,
      [](std::ostream& out) {
        out << "partial new conten";
        return false;
      },
      &error);
  EXPECT_FALSE(ok);
  EXPECT_FALSE(error.empty());

  // Destination still has the complete old content, and no temp litter.
  const auto bytes = read_file_bytes(path);
  ASSERT_TRUE(bytes.is_ok());
  const std::string content(reinterpret_cast<const char*>(bytes.value().data()),
                            bytes.value().size());
  EXPECT_EQ(content, "original");
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& entry :
       fsys::directory_iterator(dir.str())) {
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST(AtomicWrite, FailsCleanlyOnMissingDirectory) {
  std::string error;
  EXPECT_FALSE(atomic_write_text("/nonexistent-dir-geonet/x.txt", "a", &error));
  EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------------------
// Snapshot container
// ------------------------------------------------------------------

constexpr std::uint32_t kTestSection = fourcc('T', 'E', 'S', 'T');
constexpr std::uint32_t kOtherSection = fourcc('O', 'T', 'H', 'R');

std::vector<std::byte> test_payload(std::size_t n, std::uint8_t base = 7) {
  std::vector<std::byte> payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<std::byte>(base + i * 13);
  }
  return payload;
}

TEST(Snapshot, RoundTripsSectionsAndProvenance) {
  SnapshotWriter writer;
  writer.add_section(kTestSection, test_payload(64));
  writer.add_section(kOtherSection, test_payload(5, 100));
  writer.add_section(kTestSection, test_payload(3, 200));
  const std::vector<std::byte> bytes = writer.finish();

  auto parsed = SnapshotView::parse(bytes);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  const SnapshotView& view = parsed.value();
  EXPECT_EQ(view.format_version(), kFormatVersion);
  EXPECT_EQ(view.provenance().compiler, build_info().compiler);
  ASSERT_EQ(view.sections().size(), 3u);

  const auto* first = view.find(kTestSection);
  ASSERT_NE(first, nullptr);
  const auto expected = test_payload(64);
  ASSERT_EQ(first->payload.size(), expected.size());
  EXPECT_TRUE(
      std::equal(expected.begin(), expected.end(), first->payload.begin()));
  EXPECT_EQ(view.find_all(kTestSection).size(), 2u);
  EXPECT_EQ(view.find(fourcc('N', 'O', 'P', 'E')), nullptr);
}

TEST(Snapshot, UnknownSectionsAreSkipped) {
  // A "newer writer" adds a section this reader has no name for; the
  // known section must still decode.
  SnapshotWriter writer;
  writer.add_section(fourcc('F', 'U', 'T', 'R'), test_payload(41));
  writer.add_section(kTestSection, test_payload(8));
  const std::vector<std::byte> bytes = writer.finish();

  auto parsed = SnapshotView::parse(bytes);
  ASSERT_TRUE(parsed.is_ok());
  const auto* section = parsed.value().find(kTestSection);
  ASSERT_NE(section, nullptr);
  EXPECT_EQ(section->payload.size(), 8u);
}

TEST(Snapshot, EveryTruncationFailsGracefully) {
  SnapshotWriter writer;
  writer.add_section(kTestSection, test_payload(24));
  const std::vector<std::byte> bytes = writer.finish();

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::byte> prefix(bytes.data(), len);
    auto parsed = SnapshotView::parse(prefix);
    if (!parsed.is_ok()) continue;  // rejected outright: fine
    // If the container somehow parses, the section must not.
    EXPECT_EQ(parsed.value().find(kTestSection), nullptr)
        << "truncation to " << len << " bytes went undetected";
  }
}

TEST(Snapshot, EverySingleBitFlipIsDetected) {
  SnapshotWriter writer;
  writer.add_section(kTestSection, test_payload(24));
  const std::vector<std::byte> bytes = writer.finish();
  const auto expected = test_payload(24);

  // A flip anywhere — magic, version, lengths, checksums, header or
  // payload — must never yield a successful parse that returns the
  // original payload under the original section type.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::byte> damaged = bytes;
      damaged[i] ^= static_cast<std::byte>(1u << bit);
      auto parsed = SnapshotView::parse(damaged);
      if (!parsed.is_ok()) continue;
      const auto* section = parsed.value().find(kTestSection);
      if (section == nullptr) continue;  // renamed section: caller notices
      ASSERT_EQ(section->payload.size(), expected.size());
      EXPECT_FALSE(std::equal(expected.begin(), expected.end(),
                              section->payload.begin()))
          << "bit " << bit << " of byte " << i
          << " flipped without detection";
      // ...and in fact the checksum must have caught it first.
      ADD_FAILURE() << "flip at byte " << i << " bit " << bit
                    << " survived validation";
    }
  }
}

TEST(Snapshot, RejectsFutureFormatVersion) {
  SnapshotWriter writer;
  writer.add_section(kTestSection, test_payload(4));
  std::vector<std::byte> bytes = writer.finish();
  bytes[4] = std::byte{0xEE};  // u32 format_version lives after the magic
  auto parsed = SnapshotView::parse(bytes);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_EQ(parsed.status().code(), err::Code::kInvalidArgument);
}

// ------------------------------------------------------------------
// ArtifactCache
// ------------------------------------------------------------------

std::vector<std::byte> small_snapshot(std::uint8_t base) {
  SnapshotWriter writer;
  writer.add_section(kTestSection, test_payload(32, base));
  return writer.finish();
}

Digest128 key_of(std::uint64_t n) {
  return Fingerprint().add("test_key", n).digest();
}

TEST(ArtifactCache, PutGetRoundTripAndMiss) {
  ScratchDir dir("cache_basic");
  ArtifactCache cache(dir.str());

  const auto miss = cache.get(key_of(1));
  ASSERT_FALSE(miss.is_ok());
  EXPECT_EQ(miss.status().code(), err::Code::kNotFound);

  const auto snapshot = small_snapshot(1);
  ASSERT_TRUE(cache.put(key_of(1), snapshot).is_ok());
  const auto hit = cache.get(key_of(1));
  ASSERT_TRUE(hit.is_ok());
  EXPECT_EQ(hit.value(), snapshot);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.quarantined, 0u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ArtifactCache, CorruptEntryIsQuarantinedNotReturned) {
  ScratchDir dir("cache_corrupt");
  ArtifactCache cache(dir.str());
  ASSERT_TRUE(cache.put(key_of(2), small_snapshot(2)).is_ok());

  // Damage the entry on disk, as bit rot or a partial write would.
  const std::string path = cache.entry_path(key_of(2));
  {
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekp(30);
    char c = 0;
    file.seekg(30);
    file.get(c);
    file.seekp(30);
    file.put(static_cast<char>(c ^ 0x10));
  }

  const auto result = cache.get(key_of(2));
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), err::Code::kDataLoss);
  // Quarantined: gone from the live set, parked under quarantine/.
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().quarantined, 1u);
  EXPECT_FALSE(fsys::exists(path));
  // A later get is a plain miss: recompute-and-repopulate works.
  EXPECT_EQ(cache.get(key_of(2)).status().code(), err::Code::kNotFound);
  ASSERT_TRUE(cache.put(key_of(2), small_snapshot(2)).is_ok());
  EXPECT_TRUE(cache.get(key_of(2)).is_ok());
}

TEST(ArtifactCache, InjectedCorruptionIsDeterministic) {
  ScratchDir dir("cache_fault");
  ArtifactCache cache(dir.str());
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(cache.put(key_of(i), small_snapshot(
                                         static_cast<std::uint8_t>(i)))
                    .is_ok());
  }

  // probability 1: every read is corrupted, detected, and quarantined.
  cache.set_corruption({1.0, 42});
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto result = cache.get(key_of(i));
    ASSERT_FALSE(result.is_ok()) << "entry " << i;
    EXPECT_NE(result.status().code(), err::Code::kNotFound);
  }
  EXPECT_EQ(cache.stats().quarantined, 8u);

  // probability 0: reads are clean again.
  ScratchDir dir2("cache_fault_off");
  ArtifactCache clean(dir2.str());
  ASSERT_TRUE(clean.put(key_of(1), small_snapshot(1)).is_ok());
  clean.set_corruption({0.0, 42});
  EXPECT_TRUE(clean.get(key_of(1)).is_ok());
}

TEST(ArtifactCache, GcEvictsOldestFirst) {
  ScratchDir dir("cache_gc");
  ArtifactCache cache(dir.str());
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(cache.put(key_of(i), small_snapshot(
                                         static_cast<std::uint8_t>(i)))
                    .is_ok());
  }
  const auto before = cache.ls();
  ASSERT_EQ(before.size(), 4u);
  const std::uint64_t entry_bytes = before.front().bytes;

  // Keep room for roughly two entries.
  const std::size_t evicted = cache.gc(2 * entry_bytes);
  EXPECT_EQ(evicted, 2u);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_LE(cache.stats().bytes, 2 * entry_bytes);

  // The survivors are the newest ones (ls is oldest-first).
  const auto after = cache.ls();
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after.back().key, before.back().key);

  EXPECT_EQ(cache.gc(0), 2u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ArtifactCache, VerifyFindsAndQuarantinesBadEntries) {
  ScratchDir dir("cache_verify");
  ArtifactCache cache(dir.str());
  ASSERT_TRUE(cache.put(key_of(1), small_snapshot(1)).is_ok());
  ASSERT_TRUE(cache.put(key_of(2), small_snapshot(2)).is_ok());
  EXPECT_EQ(cache.verify(), 0u);

  {
    std::ofstream file(cache.entry_path(key_of(2)),
                       std::ios::binary | std::ios::trunc);
    file << "GEOSgarbage";
  }
  EXPECT_EQ(cache.verify(), 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().quarantined, 1u);
  EXPECT_TRUE(cache.get(key_of(1)).is_ok());
}

TEST(ArtifactCache, IgnoresForeignFilesInDir) {
  ScratchDir dir("cache_foreign");
  ArtifactCache cache(dir.str());
  ASSERT_TRUE(cache.put(key_of(1), small_snapshot(1)).is_ok());
  {
    std::ofstream file(dir.file("README.txt"));
    file << "not a cache entry";
  }
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.ls().size(), 1u);
  EXPECT_EQ(cache.verify(), 0u);
}

}  // namespace
}  // namespace geonet::store
