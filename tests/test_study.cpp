#include "core/study.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "exec/thread_pool.h"
#include "geo/spatial_index.h"
#include "tests/test_world.h"

namespace geonet::core {
namespace {

const StudyReport& scenario_report() {
  static const StudyReport report = [] {
    const auto& s = geonet::testing::small_scenario();
    return run_study(
        s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper),
        s.world());
  }();
  return report;
}

TEST(Study, CoversAllPaperArtifacts) {
  const StudyReport& r = scenario_report();
  EXPECT_EQ(r.economic_rows.size(), 8u);   // Table III (+World)
  EXPECT_EQ(r.homogeneity_rows.size(), 3u);  // Table IV
  EXPECT_EQ(r.regions.size(), 3u);         // Figures 2,4,5,6 / Tables V,VI
  EXPECT_GT(r.as_sizes.records.size(), 10u);  // Figures 7,8
  EXPECT_GT(r.hulls.records.size(), 10u);     // Figures 9,10
  EXPECT_GT(r.nodes, 0u);
  EXPECT_GT(r.links, 0u);
  EXPECT_GT(r.distinct_locations, 0u);
}

TEST(Study, RegionsInPaperOrder) {
  const StudyReport& r = scenario_report();
  EXPECT_EQ(r.regions[0].region.name, "US");
  EXPECT_EQ(r.regions[1].region.name, "Europe");
  EXPECT_EQ(r.regions[2].region.name, "Japan");
}

TEST(Study, HeadlineFindingsHold) {
  const StudyReport& r = scenario_report();
  for (const auto& region : r.regions) {
    // Strong relationship between infrastructure and population.
    EXPECT_GT(region.density.loglog_fit.slope, 0.8) << region.region.name;
    EXPECT_GT(region.density.loglog_fit.r_squared, 0.4) << region.region.name;
    // Distance sensitivity covers the majority of links (paper: 75-95%).
    EXPECT_GT(region.waxman.fraction_links_below_limit, 0.6)
        << region.region.name;
    EXPECT_LE(region.waxman.fraction_links_below_limit, 1.0);
    // The decay scale is a sane number of miles.
    EXPECT_GT(region.waxman.lambda_miles, 10.0) << region.region.name;
    EXPECT_LT(region.waxman.lambda_miles, 1500.0) << region.region.name;
    // Intradomain links dominate.
    EXPECT_GT(region.link_domains.intradomain_fraction(), 0.5)
        << region.region.name;
  }
  EXPECT_GT(r.world_links.intradomain_fraction(), 0.7);
}

TEST(Study, SummaryMentionsKeyNumbers) {
  const StudyReport& r = scenario_report();
  const std::string text = summarize(r);
  EXPECT_NE(text.find(r.dataset_name), std::string::npos);
  EXPECT_NE(text.find("US"), std::string::npos);
  EXPECT_NE(text.find("lambda"), std::string::npos);
  EXPECT_NE(text.find("fractal"), std::string::npos);
}

TEST(Study, CustomRegionsRespected) {
  const auto& s = geonet::testing::small_scenario();
  StudyOptions options;
  options.regions = {geo::regions::us()};
  options.compute_fractal_dimension = false;
  const StudyReport r = run_study(
      s.graph(synth::DatasetKind::kMercator, synth::MapperKind::kEdgeScape),
      s.world(), options);
  EXPECT_EQ(r.regions.size(), 1u);
  EXPECT_EQ(r.regions[0].region.name, "US");
  EXPECT_DOUBLE_EQ(r.fractal.dimension, 0.0);
}

TEST(Study, ConsistentAcrossDatasetsAndMappers) {
  // The paper's robustness claim: conclusions agree across the two
  // datasets and the two mappers. Check the qualitative invariants on all
  // four processed datasets.
  const auto& s = geonet::testing::small_scenario();
  StudyOptions options;
  options.compute_fractal_dimension = false;
  for (const auto dataset :
       {synth::DatasetKind::kSkitter, synth::DatasetKind::kMercator}) {
    for (const auto mapper :
         {synth::MapperKind::kIxMapper, synth::MapperKind::kEdgeScape}) {
      const StudyReport r =
          run_study(s.graph(dataset, mapper), s.world(), options);
      SCOPED_TRACE(r.dataset_name);
      EXPECT_GT(r.world_links.intradomain_fraction(), 0.6);
      EXPECT_GT(r.as_sizes.corr_nodes_locations, 0.5);
      for (const auto& region : r.regions) {
        // Undersized regional samples (this scenario is deliberately tiny)
        // make the Figure 5 fit meaningless; the paper itself notes Japan
        // gets noisy. Require the signature only where data supports it.
        if (region.distance.links < 250) continue;
        EXPECT_GT(region.waxman.fraction_links_below_limit, 0.5)
            << region.region.name;
      }
    }
  }
}

// ------------------------------------------------------------------
// Spatial-index determinism pins: the index is a pure accelerator, so
// an index-backed study must be byte-identical to the brute-force one —
// at any thread count, with a caller-provided index, and under faults.
// ------------------------------------------------------------------

TEST(Study, SpatialIndexDoesNotChangeAnyReportByte) {
  const auto& s = geonet::testing::small_scenario();
  const auto& graph =
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper);

  StudyOptions brute;
  brute.use_spatial_index = false;
  const std::string golden =
      study_report_json(run_study(graph, s.world(), brute));

  StudyOptions indexed;  // use_spatial_index defaults to true
  EXPECT_EQ(study_report_json(run_study(graph, s.world(), indexed)), golden);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    exec::ThreadPool::set_global_threads(threads);
    EXPECT_EQ(study_report_json(run_study(graph, s.world(), indexed)), golden)
        << threads << " threads";
  }
  exec::ThreadPool::set_global_threads(
      exec::ThreadPool::default_thread_count());
}

TEST(Study, CallerProvidedIndexMatchesBruteForce) {
  const auto& s = geonet::testing::small_scenario();
  const auto& graph =
      s.graph(synth::DatasetKind::kMercator, synth::MapperKind::kIxMapper);
  const geo::SpatialIndex index = geo::SpatialIndex::build(graph.locations());

  StudyOptions brute;
  brute.use_spatial_index = false;
  brute.compute_fractal_dimension = false;
  StudyOptions warm = brute;
  warm.use_spatial_index = true;
  warm.spatial_index = &index;

  EXPECT_EQ(study_report_json(run_study(graph, s.world(), warm)),
            study_report_json(run_study(graph, s.world(), brute)));
}

TEST(Study, SpatialIndexIdenticalUnderInjectedFaults) {
  const auto& s = geonet::testing::small_scenario();
  const auto& graph =
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper);

  StudyOptions brute;
  brute.use_spatial_index = false;
  brute.compute_fractal_dimension = false;
  brute.inject_phase_failures = {"density:US", "hulls"};
  StudyOptions indexed = brute;
  indexed.use_spatial_index = true;

  const StudyReport a = run_study(graph, s.world(), indexed);
  const StudyReport b = run_study(graph, s.world(), brute);
  EXPECT_EQ(a.degradation.errors, 2u);
  EXPECT_EQ(study_report_json(a), study_report_json(b));
  EXPECT_EQ(study_degradation_json(a.degradation),
            study_degradation_json(b.degradation));
}

TEST(Study, MarkdownExportContainsAllSections) {
  const StudyReport& r = scenario_report();
  const std::string path = ::testing::TempDir() + "/geonet_study.md";
  ASSERT_TRUE(write_study_markdown(r, path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("# Study: " + r.dataset_name), std::string::npos);
  EXPECT_NE(text.find("Table III"), std::string::npos);
  EXPECT_NE(text.find("Table IV"), std::string::npos);
  EXPECT_NE(text.find("Per-region fits"), std::string::npos);
  EXPECT_NE(text.find("AS structure"), std::string::npos);
  EXPECT_NE(text.find("| US |"), std::string::npos);
}

}  // namespace
}  // namespace geonet::core
