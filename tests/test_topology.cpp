#include "net/topology.h"

#include <gtest/gtest.h>

namespace geonet::net {
namespace {

Ipv4Addr addr(std::uint32_t v) { return Ipv4Addr{v}; }

TEST(Topology, AddRouterBasics) {
  Topology t;
  const RouterId a = t.add_router({40.0, -74.0}, 65001);
  const RouterId b = t.add_router({34.0, -118.0});
  EXPECT_EQ(t.router_count(), 2u);
  EXPECT_EQ(t.router(a).asn, 65001u);
  EXPECT_EQ(t.router(b).asn, kUnknownAs);
  EXPECT_DOUBLE_EQ(t.router(a).location.lat_deg, 40.0);
  EXPECT_EQ(t.degree(a), 0u);
}

TEST(Topology, StandaloneInterface) {
  Topology t;
  const RouterId r = t.add_router({0.0, 0.0});
  const InterfaceId i = t.add_interface(r, addr(0x01020304));
  EXPECT_EQ(t.interface_count(), 1u);
  EXPECT_EQ(t.interface(i).router, r);
  ASSERT_EQ(t.router(r).interfaces.size(), 1u);
  EXPECT_EQ(t.router(r).interfaces.front(), i);
}

TEST(Topology, LinkMintsTwoInterfaces) {
  Topology t;
  const RouterId a = t.add_router({0.0, 0.0});
  const RouterId b = t.add_router({1.0, 1.0});
  const LinkId link = t.add_link(a, b, addr(0x0a000001), addr(0x0a000002));
  EXPECT_EQ(t.link_count(), 1u);
  EXPECT_EQ(t.interface_count(), 2u);
  const Link& l = t.link(link);
  EXPECT_EQ(t.interface(l.if_a).router, a);
  EXPECT_EQ(t.interface(l.if_b).router, b);
  EXPECT_EQ(t.interface(l.if_a).addr, addr(0x0a000001));
  EXPECT_EQ(t.interface(l.if_b).addr, addr(0x0a000002));
}

TEST(Topology, AdjacencySymmetric) {
  Topology t;
  const RouterId a = t.add_router({0.0, 0.0});
  const RouterId b = t.add_router({1.0, 1.0});
  t.add_link(a, b, addr(1), addr(2));
  ASSERT_EQ(t.degree(a), 1u);
  ASSERT_EQ(t.degree(b), 1u);
  const Adjacency& from_a = t.neighbors(a).front();
  const Adjacency& from_b = t.neighbors(b).front();
  EXPECT_EQ(from_a.neighbor, b);
  EXPECT_EQ(from_b.neighbor, a);
  EXPECT_EQ(from_a.local_if, from_b.remote_if);
  EXPECT_EQ(from_a.remote_if, from_b.local_if);
  EXPECT_EQ(from_a.link, from_b.link);
}

TEST(Topology, AreConnected) {
  Topology t;
  const RouterId a = t.add_router({0.0, 0.0});
  const RouterId b = t.add_router({1.0, 1.0});
  const RouterId c = t.add_router({2.0, 2.0});
  t.add_link(a, b, addr(1), addr(2));
  EXPECT_TRUE(t.are_connected(a, b));
  EXPECT_TRUE(t.are_connected(b, a));
  EXPECT_FALSE(t.are_connected(a, c));
  EXPECT_FALSE(t.are_connected(b, c));
}

TEST(Topology, ParallelLinksAllowed) {
  // Real routers do run parallel circuits; the model allows them and they
  // count as separate links with distinct interfaces.
  Topology t;
  const RouterId a = t.add_router({0.0, 0.0});
  const RouterId b = t.add_router({1.0, 1.0});
  t.add_link(a, b, addr(1), addr(2));
  t.add_link(a, b, addr(3), addr(4));
  EXPECT_EQ(t.link_count(), 2u);
  EXPECT_EQ(t.degree(a), 2u);
  EXPECT_EQ(t.interface_count(), 4u);
}

TEST(Topology, InterfacesPerRouterTrackDegreePlusLoopback) {
  Topology t;
  const RouterId a = t.add_router({0.0, 0.0});
  const RouterId b = t.add_router({1.0, 1.0});
  const RouterId c = t.add_router({2.0, 2.0});
  t.add_interface(a, addr(100));  // loopback
  t.add_link(a, b, addr(1), addr(2));
  t.add_link(a, c, addr(3), addr(4));
  EXPECT_EQ(t.router(a).interfaces.size(), 3u);  // loopback + 2 links
  EXPECT_EQ(t.router(b).interfaces.size(), 1u);
}

}  // namespace
}  // namespace geonet::net
