#include "core/validate.h"

#include <gtest/gtest.h>

#include "generators/ba_gen.h"
#include "generators/geo_gen.h"
#include "tests/test_world.h"

namespace geonet::core {
namespace {

TEST(Validate, GeoGeneratorOutputPassesMostCriteria) {
  const auto& world = geonet::testing::small_world();
  generators::GeoGeneratorOptions options;
  options.router_count = 4000;
  const auto topo = generators::generate_geo_topology(world, options);
  const RealismReport report =
      check_realism(topo.graph, world, geo::regions::us());
  // The geography-aware generator is built to satisfy the paper's
  // signatures; at small scale density may hover near the slope-1 line,
  // so require a strong majority rather than perfection.
  EXPECT_GE(report.passed + 2, report.checks.size());
  EXPECT_EQ(report.checks.size(), 8u);  // AS criteria included
}

TEST(Validate, BarabasiAlbertFailsGeographicCriteria) {
  const auto& world = geonet::testing::small_world();
  generators::BarabasiAlbertOptions options;
  options.node_count = 3000;
  const auto graph =
      generators::generate_barabasi_albert(geo::regions::us(), options);
  const RealismReport report = check_realism(graph, world, geo::regions::us());
  // Single-AS graph: AS criteria are skipped, geography criteria fail.
  EXPECT_EQ(report.checks.size(), 5u);
  EXPECT_FALSE(report.all_pass());
  // Specifically: no superlinear density and no distance-sensitive
  // majority.
  for (const auto& check : report.checks) {
    if (check.criterion.find("superlinear") != std::string::npos) {
      EXPECT_FALSE(check.pass);
    }
  }
}

TEST(Validate, ProcessedDatasetPassesAllCriteria) {
  const auto& s = geonet::testing::small_scenario();
  const RealismReport report = check_realism(
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper),
      s.world(), geo::regions::us());
  EXPECT_EQ(report.checks.size(), 8u);
  EXPECT_GE(report.passed, 7u) << to_string(report);
}

TEST(Validate, EvaluateIsPureFunctionOfSignature) {
  RealismSignature sig;
  sig.density_slope = 1.3;
  sig.density_r2 = 0.8;
  sig.lambda_miles = 120.0;
  sig.fraction_distance_sensitive = 0.85;
  sig.degree_tail_slope = -2.0;
  sig.intradomain_fraction = 0.85;
  sig.corr_nodes_locations = 0.9;
  sig.zero_hull_fraction = 0.5;
  sig.as_count = 100;
  const RealismReport report = evaluate_realism(sig);
  EXPECT_TRUE(report.all_pass()) << to_string(report);

  sig.density_slope = 0.5;  // break one criterion
  const RealismReport broken = evaluate_realism(sig);
  EXPECT_EQ(broken.passed + 1, broken.checks.size());
}

TEST(Validate, SingleAsGraphSkipsAsCriteria) {
  RealismSignature sig;
  sig.as_count = 1;
  const RealismReport report = evaluate_realism(sig);
  EXPECT_EQ(report.checks.size(), 5u);
}

TEST(Validate, ToStringListsEveryCheck) {
  RealismSignature sig;
  sig.as_count = 100;
  const RealismReport report = evaluate_realism(sig);
  const std::string text = to_string(report);
  for (const auto& check : report.checks) {
    EXPECT_NE(text.find(check.criterion), std::string::npos);
  }
  EXPECT_NE(text.find("criteria passed"), std::string::npos);
}

}  // namespace
}  // namespace geonet::core
