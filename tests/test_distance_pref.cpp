#include "core/distance_pref.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geo/distance.h"
#include "stats/rng.h"

namespace geonet::core {
namespace {

/// Small cluster graph with known geometry: nodes at three "cities"
/// ~100 and ~200 miles apart along a parallel.
net::AnnotatedGraph make_city_graph() {
  net::AnnotatedGraph g(net::NodeKind::kRouter, "cities");
  // At 40N one degree of longitude is ~52.9 miles.
  const double lat = 40.0;
  const double step = 100.0 / geo::miles_per_lon_degree(lat);
  // Two nodes per city.
  for (int city = 0; city < 3; ++city) {
    for (int k = 0; k < 2; ++k) {
      g.add_node({net::Ipv4Addr{0},
                  {lat, -100.0 + step * city},
                  1});
    }
  }
  // Links: within city 0 (distance 0), city0-city1 (~100 mi).
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  return g;
}

geo::Region city_region() { return {"box", 35.0, 45.0, -105.0, -90.0}; }

TEST(DistancePref, ExactCountsMatchHandComputation) {
  const auto g = make_city_graph();
  DistancePrefOptions options;
  options.method = PairCountMethod::kExact;
  options.bins = 10;
  options.bin_miles = 30.0;
  const DistancePreference pref =
      distance_preference(g, city_region(), options);

  EXPECT_EQ(pref.nodes, 6u);
  EXPECT_EQ(pref.links, 2u);
  // Pairs: same-city pairs 3 (bin 0); cross-city at ~100mi: 4 pairs
  // (bin 3); at ~200mi: 4 pairs (bin 6); c0-c2? cities at 0,100,200 ->
  // pairs (c0,c1) 4 at 100, (c1,c2) 4 at 100, (c0,c2) 4 at 200.
  EXPECT_DOUBLE_EQ(pref.pair_hist.count(0), 3.0);
  EXPECT_DOUBLE_EQ(pref.pair_hist.count(3), 8.0);
  EXPECT_DOUBLE_EQ(pref.pair_hist.count(6), 4.0);
  // Links: one at 0, one at ~100.
  EXPECT_DOUBLE_EQ(pref.link_hist.count(0), 1.0);
  EXPECT_DOUBLE_EQ(pref.link_hist.count(3), 1.0);
  // f(d) = links/pairs per bin.
  EXPECT_DOUBLE_EQ(pref.f[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(pref.f[3], 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(pref.f[6], 0.0);
}

TEST(DistancePref, CumulatedIsRunningSum) {
  const auto g = make_city_graph();
  DistancePrefOptions options;
  options.method = PairCountMethod::kExact;
  options.bins = 10;
  options.bin_miles = 30.0;
  const auto pref = distance_preference(g, city_region(), options);
  const auto cumulative = pref.cumulated();
  double running = 0.0;
  for (std::size_t b = 0; b < pref.f.size(); ++b) {
    running += pref.f[b];
    EXPECT_DOUBLE_EQ(cumulative[b], running);
  }
}

TEST(DistancePref, FractionLinksBelow) {
  const auto g = make_city_graph();
  DistancePrefOptions options;
  options.method = PairCountMethod::kExact;
  options.bins = 10;
  options.bin_miles = 30.0;
  const auto pref = distance_preference(g, city_region(), options);
  EXPECT_DOUBLE_EQ(pref.fraction_links_below(50.0), 0.5);
  EXPECT_DOUBLE_EQ(pref.fraction_links_below(150.0), 1.0);
  EXPECT_DOUBLE_EQ(pref.fraction_links_below(5.0), 0.0);
}

TEST(DistancePref, FractionLinksBelowCountsOutOfRangeMass) {
  // Table V semantics: links outside the histogram span still exist.
  // Both underflow and overflow mass belong in the denominator, and
  // underflow mass (x < lo) counts as below any limit past lo. The seed
  // implementation added only overflow() to the denominator, biasing the
  // fraction whenever underflow mass was present.
  DistancePreference pref;
  pref.link_hist = stats::Histogram(10.0, 50.0, 4);  // bin centers 15..45
  pref.link_hist.add(15.0);   // bin 0
  pref.link_hist.add(45.0);   // bin 3
  pref.link_hist.add(5.0);    // underflow
  pref.link_hist.add(100.0);  // overflow
  pref.links = 4;
  // limit 30: bin 0 plus the underflow link; overflow only inflates the
  // denominator.
  EXPECT_DOUBLE_EQ(pref.fraction_links_below(30.0), 2.0 / 4.0);
  // limit beyond the span: everything but the overflow link.
  EXPECT_DOUBLE_EQ(pref.fraction_links_below(1000.0), 3.0 / 4.0);
  // limit at lo: nothing is known to be below it.
  EXPECT_DOUBLE_EQ(pref.fraction_links_below(10.0), 0.0);
}

TEST(DistancePref, LinksOutsideRegionExcluded) {
  auto g = make_city_graph();
  const auto outside = g.add_node({net::Ipv4Addr{0}, {50.0, -100.0}, 1});
  g.add_edge(0, outside);
  DistancePrefOptions options;
  options.method = PairCountMethod::kExact;
  options.bins = 10;
  options.bin_miles = 30.0;
  const auto pref = distance_preference(g, city_region(), options);
  EXPECT_EQ(pref.nodes, 6u);  // the extra node is at 50N, outside
  EXPECT_EQ(pref.links, 2u);  // boundary-crossing link dropped
}

TEST(DistancePref, GridApproximatesExact) {
  // Random city-like point set: grid-based pair counting must agree with
  // exact counting to within the cell-diagonal bin slop.
  stats::Rng rng(11);
  net::AnnotatedGraph g(net::NodeKind::kRouter, "random");
  const geo::Region box{"box", 38.0, 44.0, -104.0, -92.0};
  for (int i = 0; i < 400; ++i) {
    g.add_node({net::Ipv4Addr{0},
                {rng.uniform(box.south_deg, box.north_deg),
                 rng.uniform(box.west_deg, box.east_deg)},
                1});
  }
  DistancePrefOptions exact;
  exact.method = PairCountMethod::kExact;
  exact.bins = 20;
  exact.bin_miles = 40.0;
  DistancePrefOptions grid = exact;
  grid.method = PairCountMethod::kGrid;
  grid.grid_cell_arcmin = 7.5;

  const auto pe = distance_preference(g, box, exact);
  const auto pg = distance_preference(g, box, grid);
  double total_exact = 0.0, total_grid = 0.0, l1 = 0.0;
  for (std::size_t b = 0; b < 20; ++b) {
    total_exact += pe.pair_hist.count(b);
    total_grid += pg.pair_hist.count(b);
    l1 += std::fabs(pe.pair_hist.count(b) - pg.pair_hist.count(b));
  }
  EXPECT_NEAR(total_grid, total_exact, total_exact * 0.01);
  EXPECT_LT(l1 / total_exact, 0.25);  // mass shifts at most one bin
}

TEST(DistancePref, SampledApproximatesExact) {
  stats::Rng rng(12);
  net::AnnotatedGraph g(net::NodeKind::kRouter, "random");
  const geo::Region box{"box", 38.0, 44.0, -104.0, -92.0};
  for (int i = 0; i < 300; ++i) {
    g.add_node({net::Ipv4Addr{0},
                {rng.uniform(box.south_deg, box.north_deg),
                 rng.uniform(box.west_deg, box.east_deg)},
                1});
  }
  DistancePrefOptions exact;
  exact.method = PairCountMethod::kExact;
  exact.bins = 10;
  exact.bin_miles = 80.0;
  DistancePrefOptions sampled = exact;
  sampled.method = PairCountMethod::kSampled;
  sampled.sample_pairs = 200000;

  const auto pe = distance_preference(g, box, exact);
  const auto ps = distance_preference(g, box, sampled);
  double total_exact = 0.0, total_sampled = 0.0;
  for (std::size_t b = 0; b < 10; ++b) {
    total_exact += pe.pair_hist.count(b);
    total_sampled += ps.pair_hist.count(b);
    if (pe.pair_hist.count(b) > 500.0) {
      EXPECT_NEAR(ps.pair_hist.count(b) / pe.pair_hist.count(b), 1.0, 0.1)
          << "bin " << b;
    }
  }
  EXPECT_NEAR(total_sampled, total_exact, total_exact * 0.05);
}

TEST(DistancePref, PaperBinSizes) {
  EXPECT_DOUBLE_EQ(paper_bin_miles(geo::regions::us()), 35.0);
  EXPECT_DOUBLE_EQ(paper_bin_miles(geo::regions::europe()), 15.0);
  EXPECT_DOUBLE_EQ(paper_bin_miles(geo::regions::japan()), 11.0);
  // Unknown region: diagonal / bins.
  const geo::Region box{"box", 0.0, 10.0, 0.0, 10.0};
  EXPECT_NEAR(paper_bin_miles(box, 100), box.diagonal_miles() / 100.0, 1e-9);
}

TEST(DistancePref, DomainDecompositionSumsToWhole) {
  // f_all(d) = f_intra(d) + f_inter(d) bin by bin, because the domain
  // filter touches only the numerator (links touching the unknown-AS
  // bucket are excluded from every class for this check).
  net::AnnotatedGraph g(net::NodeKind::kRouter, "domains");
  stats::Rng rng(21);
  const geo::Region box{"box", 38.0, 44.0, -104.0, -92.0};
  for (int i = 0; i < 120; ++i) {
    g.add_node({net::Ipv4Addr{0},
                {rng.uniform(box.south_deg, box.north_deg),
                 rng.uniform(box.west_deg, box.east_deg)},
                1 + static_cast<std::uint32_t>(rng.uniform_index(4))});
  }
  for (int e = 0; e < 400; ++e) {
    g.add_edge(static_cast<std::uint32_t>(rng.uniform_index(120)),
               static_cast<std::uint32_t>(rng.uniform_index(120)));
  }
  DistancePrefOptions options;
  options.method = PairCountMethod::kExact;
  options.bins = 12;
  options.bin_miles = 60.0;

  options.domain_filter = DomainFilter::kAll;
  const auto all = distance_preference(g, box, options);
  options.domain_filter = DomainFilter::kIntradomainOnly;
  const auto intra = distance_preference(g, box, options);
  options.domain_filter = DomainFilter::kInterdomainOnly;
  const auto inter = distance_preference(g, box, options);

  EXPECT_EQ(all.links, intra.links + inter.links);  // no unknown-AS nodes
  for (std::size_t b = 0; b < all.f.size(); ++b) {
    EXPECT_NEAR(all.f[b], intra.f[b] + inter.f[b], 1e-12) << "bin " << b;
  }
}

TEST(DistancePref, DomainFilterExcludesUnknownAs) {
  net::AnnotatedGraph g(net::NodeKind::kRouter, "unknown");
  g.add_node({net::Ipv4Addr{0}, {40.0, -100.0}, 1});
  g.add_node({net::Ipv4Addr{0}, {40.1, -100.1}, 0});  // unmapped AS
  g.add_edge(0, 1);
  const geo::Region box{"box", 38.0, 44.0, -104.0, -92.0};
  DistancePrefOptions options;
  options.method = PairCountMethod::kExact;
  options.bins = 4;
  options.bin_miles = 100.0;
  options.domain_filter = DomainFilter::kIntradomainOnly;
  EXPECT_EQ(distance_preference(g, box, options).links, 0u);
  options.domain_filter = DomainFilter::kInterdomainOnly;
  EXPECT_EQ(distance_preference(g, box, options).links, 0u);
  options.domain_filter = DomainFilter::kAll;
  EXPECT_EQ(distance_preference(g, box, options).links, 1u);
}

TEST(DistancePref, EmptyRegionProducesZeros) {
  const auto g = make_city_graph();
  const geo::Region empty{"empty", -10.0, 0.0, 0.0, 10.0};
  const auto pref = distance_preference(g, empty);
  EXPECT_EQ(pref.nodes, 0u);
  EXPECT_EQ(pref.links, 0u);
  for (const double v : pref.f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(DistancePref, IndexedExactHistogramIsByteIdenticalToBrute) {
  // The index-routed kExact path prunes far pairs into the overflow
  // bucket wholesale; the histogram must still match the brute-force
  // enumeration bin for bin, bit for bit.
  stats::Rng rng(2026);
  std::vector<geo::GeoPoint> points;
  for (int i = 0; i < 230; ++i) {
    points.push_back({25.0 + 25.0 * rng.uniform(), -150.0 + 105.0 * rng.uniform()});
  }
  const geo::Region region = geo::regions::us();
  DistancePrefOptions options;
  options.method = PairCountMethod::kExact;
  const double hi = 500.0;  // well under the region diagonal: real pruning

  const geo::SpatialIndex index = geo::SpatialIndex::build(points);
  const stats::Histogram brute =
      pair_distance_histogram(points, 0.0, hi, 50, region, options);
  const stats::Histogram indexed =
      pair_distance_histogram(points, 0.0, hi, 50, region, options, &index);
  ASSERT_EQ(indexed.bin_count(), brute.bin_count());
  for (std::size_t b = 0; b < brute.bin_count(); ++b) {
    EXPECT_EQ(indexed.count(b), brute.count(b)) << "bin " << b;
  }
  EXPECT_EQ(indexed.total(), brute.total());
}

TEST(DistancePref, IndexedGridHistogramIsByteIdenticalToBrute) {
  stats::Rng rng(2027);
  std::vector<geo::GeoPoint> points;
  for (int i = 0; i < 400; ++i) {
    points.push_back({25.0 + 25.0 * rng.uniform(), -150.0 + 105.0 * rng.uniform()});
  }
  const geo::Region region = geo::regions::us();
  DistancePrefOptions options;
  options.method = PairCountMethod::kGrid;

  const geo::SpatialIndex index = geo::SpatialIndex::build(points);
  const stats::Histogram brute =
      pair_distance_histogram(points, 0.0, 3000.0, 40, region, options);
  const stats::Histogram indexed = pair_distance_histogram(
      points, 0.0, 3000.0, 40, region, options, &index);
  ASSERT_EQ(indexed.bin_count(), brute.bin_count());
  for (std::size_t b = 0; b < brute.bin_count(); ++b) {
    EXPECT_EQ(indexed.count(b), brute.count(b)) << "bin " << b;
  }
}

TEST(DistancePref, IndexBackedPreferenceMatchesBruteForce) {
  const auto g = make_city_graph();
  const geo::SpatialIndex index = geo::SpatialIndex::build(g.locations());
  DistancePrefOptions options;
  options.method = PairCountMethod::kExact;
  options.bins = 10;
  options.bin_miles = 30.0;
  const DistancePreference brute =
      distance_preference(g, city_region(), options);
  const DistancePreference indexed =
      distance_preference(g, city_region(), options, &index);
  EXPECT_EQ(indexed.nodes, brute.nodes);
  EXPECT_EQ(indexed.links, brute.links);
  EXPECT_EQ(indexed.f, brute.f);
  for (std::size_t b = 0; b < brute.pair_hist.bin_count(); ++b) {
    EXPECT_EQ(indexed.pair_hist.count(b), brute.pair_hist.count(b));
  }
}

}  // namespace
}  // namespace geonet::core
