#include "geo/projection.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geo/distance.h"

namespace geonet::geo {
namespace {

double planar_distance(const PlanarPoint& a, const PlanarPoint& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

TEST(Albers, OriginProjectsNearZero) {
  const Region us = regions::us();
  const AlbersProjection proj = AlbersProjection::for_region(us);
  const PlanarPoint origin = proj.project(us.center());
  EXPECT_NEAR(origin.x, 0.0, 1e-6);
  EXPECT_NEAR(origin.y, 0.0, 1e-6);
}

TEST(Albers, DistancesNearOriginApproximateGreatCircle) {
  const Region us = regions::us();
  const AlbersProjection proj = AlbersProjection::for_region(us);
  const GeoPoint a{38.0, -97.0};
  const GeoPoint b{39.0, -95.0};
  const double planar = planar_distance(proj.project(a), proj.project(b));
  const double sphere = great_circle_miles(a, b);
  EXPECT_NEAR(planar / sphere, 1.0, 0.01);
}

TEST(Albers, PreservesAreasAcrossLatitudes) {
  // Equal-area property: two 1-degree boxes at different latitudes must
  // project to areas in the same ratio as their spherical areas.
  const AlbersProjection proj = AlbersProjection::world();
  const auto projected_quad_area = [&](double lat, double lon) {
    const PlanarPoint p00 = proj.project({lat, lon});
    const PlanarPoint p01 = proj.project({lat, lon + 1.0});
    const PlanarPoint p11 = proj.project({lat + 1.0, lon + 1.0});
    const PlanarPoint p10 = proj.project({lat + 1.0, lon});
    // Shoelace over the quad.
    const auto cross = [](const PlanarPoint& a, const PlanarPoint& b) {
      return a.x * b.y - b.x * a.y;
    };
    return 0.5 * std::fabs(cross(p00, p01) + cross(p01, p11) +
                           cross(p11, p10) + cross(p10, p00));
  };
  const Region low{"low", 10.0, 11.0, 5.0, 6.0};
  const Region high{"high", 55.0, 56.0, 5.0, 6.0};
  const double ratio_truth = high.area_sq_miles() / low.area_sq_miles();
  const double ratio_projected =
      projected_quad_area(55.0, 5.0) / projected_quad_area(10.0, 5.0);
  EXPECT_NEAR(ratio_projected / ratio_truth, 1.0, 0.01);
}

TEST(Albers, AbsoluteAreaIsAccurate) {
  const Region us = regions::us();
  const AlbersProjection proj = AlbersProjection::for_region(us);
  // A 2x2 degree box in the middle of the region.
  const Region box{"box", 36.0, 38.0, -98.0, -96.0};
  const PlanarPoint p00 = proj.project({box.south_deg, box.west_deg});
  const PlanarPoint p01 = proj.project({box.south_deg, box.east_deg});
  const PlanarPoint p11 = proj.project({box.north_deg, box.east_deg});
  const PlanarPoint p10 = proj.project({box.north_deg, box.west_deg});
  const auto cross = [](const PlanarPoint& a, const PlanarPoint& b) {
    return a.x * b.y - b.x * a.y;
  };
  const double projected = 0.5 * std::fabs(cross(p00, p01) + cross(p01, p11) +
                                           cross(p11, p10) + cross(p10, p00));
  EXPECT_NEAR(projected / box.area_sq_miles(), 1.0, 0.01);
}

TEST(Albers, MeridiansConvergePoleward) {
  const AlbersProjection proj = AlbersProjection::world();
  const double equator = planar_distance(proj.project({0.0, 0.0}),
                                         proj.project({0.0, 10.0}));
  const double north = planar_distance(proj.project({70.0, 0.0}),
                                       proj.project({70.0, 10.0}));
  EXPECT_LT(north, equator);
}

TEST(Albers, DistinctPointsProjectDistinctly) {
  const AlbersProjection proj = AlbersProjection::world();
  EXPECT_NE(proj.project({10.0, 20.0}), proj.project({10.0, 21.0}));
  EXPECT_NE(proj.project({10.0, 20.0}), proj.project({11.0, 20.0}));
}

TEST(Albers, SouthernHemisphereRegionWorks) {
  const Region australia{"Australia", -45.0, -10.0, 112.0, 155.0};
  const AlbersProjection proj = AlbersProjection::for_region(australia);
  const GeoPoint a{-33.9, 151.2};  // Sydney
  const GeoPoint b{-37.8, 144.9};  // Melbourne
  const double planar = planar_distance(proj.project(a), proj.project(b));
  EXPECT_NEAR(planar / great_circle_miles(a, b), 1.0, 0.02);
}

}  // namespace
}  // namespace geonet::geo
