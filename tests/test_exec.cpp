// geonet_exec test suite: chunk planning, the work-stealing pool, the
// parallel_for/parallel_reduce primitives, and — the load-bearing part —
// the determinism contract: seeded pipeline stages produce byte-identical
// results at any thread count, including under fault injection. Runs under
// the `exec` ctest label so the tsan preset can target exactly this
// surface.

#include "exec/parallel.h"
#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/distance_pref.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/bootstrap.h"
#include "stats/rng.h"
#include "synth/skitter.h"
#include "tests/test_world.h"

namespace geonet::exec {
namespace {

/// Restores the global pool to its default size when a test ends, so test
/// order cannot leak a thread-count override.
struct PoolGuard {
  ~PoolGuard() { ThreadPool::set_global_threads(0); }
};

// ---------------------------------------------------------------- planning

TEST(ChunkPlan, CoversRangeInOrderWithoutGaps) {
  for (const std::size_t n : {0u, 1u, 7u, 64u, 1000u, 4097u}) {
    for (const std::size_t grain : {1u, 3u, 64u, 5000u}) {
      const ChunkPlan plan = plan_chunks(n, grain);
      if (n == 0) {
        EXPECT_EQ(plan.chunks, 0u);
        continue;
      }
      ASSERT_GE(plan.chunks, 1u);
      ASSERT_LE(plan.chunks, kDefaultMaxChunks);
      std::size_t expect_begin = 0;
      for (std::size_t c = 0; c < plan.chunks; ++c) {
        EXPECT_EQ(plan.begin(c), expect_begin);
        EXPECT_GE(plan.end(c), plan.begin(c));
        expect_begin = plan.end(c);
      }
      EXPECT_EQ(expect_begin, n);
    }
  }
}

TEST(ChunkPlan, RespectsGrainAndMaxChunks) {
  // 100 items at grain 30 -> floor(100/30) = 3 chunks.
  EXPECT_EQ(plan_chunks(100, 30).chunks, 3u);
  // Below 2*grain the plan is a single (serial) chunk.
  EXPECT_EQ(plan_chunks(100, 60).chunks, 1u);
  // Huge n clamps at max_chunks, never at a thread-dependent value.
  EXPECT_EQ(plan_chunks(1u << 20, 1).chunks, kDefaultMaxChunks);
  EXPECT_EQ(plan_chunks(1000, 10, 8).chunks, 8u);
}

TEST(ChunkPlan, BalancedSplitDiffersByAtMostOne) {
  const ChunkPlan plan = plan_chunks(1003, 1, 64);
  std::size_t lo = 1003, hi = 0;
  for (std::size_t c = 0; c < plan.chunks; ++c) {
    const std::size_t size = plan.end(c) - plan.begin(c);
    lo = std::min(lo, size);
    hi = std::max(hi, size);
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(ChunkRng, SubstreamsAreDecorrelatedAndStable) {
  // Chunk 0 of seed s is exactly Rng(s): a single-chunk region consumes
  // the same stream a serial implementation would.
  stats::Rng direct(42);
  stats::Rng chunk0 = chunk_rng(42, 0);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(direct.next_u64(), chunk0.next_u64());
  }
  // Distinct chunks get distinct streams.
  stats::Rng a = chunk_rng(42, 1);
  stats::Rng b = chunk_rng(42, 2);
  bool differ = false;
  for (int i = 0; i < 16; ++i) {
    if (a.next_u64() != b.next_u64()) differ = true;
  }
  EXPECT_TRUE(differ);
}

// -------------------------------------------------------------------- pool

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    constexpr std::size_t kChunks = 200;
    std::vector<std::atomic<int>> hits(kChunks);
    pool.run(kChunks, [&](std::size_t chunk) {
      hits[chunk].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t c = 0; c < kChunks; ++c) {
      EXPECT_EQ(hits[c].load(), 1) << "chunk " << c << " threads " << threads;
    }
  }
}

TEST(ThreadPool, ReportsLowestFailingChunkAtAnyThreadCount) {
  for (const std::size_t threads : {1u, 4u, 8u}) {
    ThreadPool pool(threads);
    std::atomic<int> executed{0};
    try {
      pool.run(40, [&](std::size_t chunk) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= 7 && chunk % 3 == 1) {
          throw std::runtime_error("chunk " + std::to_string(chunk) + " died");
        }
      });
      FAIL() << "expected ParallelError";
    } catch (const ParallelError& e) {
      // Lowest failing chunk is 7 regardless of scheduling; every chunk
      // still ran (failure does not cancel siblings, so side effects are
      // thread-count-independent too).
      EXPECT_EQ(e.chunk(), 7u);
      EXPECT_EQ(e.status().code(), err::Code::kAborted);
      EXPECT_NE(std::string(e.what()).find("chunk 7"), std::string::npos);
      EXPECT_EQ(executed.load(), 40);
    }
  }
}

TEST(ThreadPool, NestedRegionsRunInlineWithoutDeadlock) {
  PoolGuard guard;
  ThreadPool::set_global_threads(4);
  std::atomic<std::size_t> inner_total{0};
  RegionOptions outer;
  outer.name = "test/outer";
  outer.grain = 1;
  parallel_for(8, outer, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      RegionOptions inner;
      inner.name = "test/inner";
      inner.grain = 1;
      std::size_t local = 0;
      parallel_for(10, inner,
                   [&](std::size_t b, std::size_t e, std::size_t) {
                     // Inline on this worker: safe to touch `local`
                     // without synchronisation.
                     local += e - b;
                   });
      inner_total.fetch_add(local, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(inner_total.load(), 80u);
}

TEST(ThreadPool, GlobalPoolResizesAndDefaultsAreSane) {
  PoolGuard guard;
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().thread_count(), 3u);
  ThreadPool::set_global_threads(0);  // back to default
  EXPECT_EQ(ThreadPool::global().thread_count(),
            ThreadPool::default_thread_count());
}

TEST(ThreadPool, TasksMetricCounts) {
  PoolGuard guard;
  ThreadPool::set_global_threads(2);
  auto& tasks = obs::MetricsRegistry::global().counter("exec.tasks");
  const std::uint64_t before = tasks.value();
  RegionOptions options;
  options.name = "test/metric";
  options.grain = 1;
  options.max_chunks = 16;
  parallel_for(16, options, [](std::size_t, std::size_t, std::size_t) {});
  EXPECT_EQ(tasks.value(), before + 16);
}

// ------------------------------------------------------------- primitives

TEST(ParallelFor, CoversEveryIndexOnceAtAnyThreadCount) {
  PoolGuard guard;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    ThreadPool::set_global_threads(threads);
    constexpr std::size_t kN = 10'000;
    std::vector<std::atomic<int>> hits(kN);
    RegionOptions options;
    options.name = "test/coverage";
    options.grain = 64;
    parallel_for(kN, options,
                 [&](std::size_t begin, std::size_t end, std::size_t) {
                   for (std::size_t i = begin; i < end; ++i) {
                     hits[i].fetch_add(1, std::memory_order_relaxed);
                   }
                 });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, ChunkSpansLinkToEnclosingSpanAcrossThreads) {
  PoolGuard guard;
  ThreadPool::set_global_threads(4);
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.set_enabled(true);
  tracer.clear();

  constexpr std::size_t kN = 4096;
  std::atomic<std::uint64_t> sum{0};
  {
    const obs::Span phase("test/traced_phase");
    RegionOptions options;
    options.name = "test/traced_region";
    options.grain = 64;
    parallel_for(kN, options,
                 [&](std::size_t begin, std::size_t end, std::size_t) {
                   std::uint64_t local = 0;
                   for (std::size_t i = begin; i < end; ++i) local += i;
                   sum.fetch_add(local, std::memory_order_relaxed);
                 });
  }
  tracer.set_enabled(false);
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(kN) * (kN - 1) / 2);

  // Every exec/chunk[*] event must point back at the region span, which
  // in turn points at the enclosing phase span — even for chunks that
  // ran on pool worker threads.
  const obs::TraceEvent* phase = nullptr;
  const obs::TraceEvent* region = nullptr;
  std::vector<const obs::TraceEvent*> chunks;
  const auto events = tracer.events();
  for (const obs::TraceEvent& event : events) {
    if (event.name == "test/traced_phase") phase = &event;
    if (event.name == "test/traced_region") region = &event;
    if (event.name.rfind("exec/chunk[", 0) == 0) chunks.push_back(&event);
  }
  ASSERT_NE(phase, nullptr);
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->parent, phase->id);
  EXPECT_EQ(region->depth, phase->depth + 1);
  ASSERT_FALSE(chunks.empty());

  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  std::vector<std::uint32_t> indices;
  for (const obs::TraceEvent* chunk : chunks) {
    EXPECT_EQ(chunk->parent, region->id) << chunk->name;
    EXPECT_EQ(chunk->depth, region->depth + 1) << chunk->name;
    ASSERT_NE(chunk->chunk, obs::TraceEvent::kNoChunk);
    ranges.emplace_back(chunk->range_begin, chunk->range_end);
    indices.push_back(chunk->chunk);
  }
  // Chunk indices are unique and the recorded ranges tile [0, kN).
  std::sort(indices.begin(), indices.end());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], static_cast<std::uint32_t>(i));
  }
  std::sort(ranges.begin(), ranges.end());
  std::uint64_t expect_begin = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_LT(begin, end);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, kN);

  // The pool sampled its queue/worker counters while the region ran.
  bool saw_queue_depth = false;
  bool saw_active_workers = false;
  for (const obs::CounterEvent& counter : tracer.counter_events()) {
    if (counter.name == "exec.queue_depth") saw_queue_depth = true;
    if (counter.name == "exec.active_workers") saw_active_workers = true;
  }
  EXPECT_TRUE(saw_queue_depth);
  EXPECT_TRUE(saw_active_workers);
  tracer.clear();
}

TEST(ParallelReduce, MatchesSerialSumAtAnyThreadCount) {
  PoolGuard guard;
  constexpr std::size_t kN = 100'000;
  const std::uint64_t want = static_cast<std::uint64_t>(kN) * (kN - 1) / 2;
  RegionOptions options;
  options.name = "test/sum";
  options.grain = 128;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    ThreadPool::set_global_threads(threads);
    const std::uint64_t got = parallel_reduce<std::uint64_t>(
        kN, options, [] { return std::uint64_t{0}; },
        [](std::uint64_t& acc, std::size_t begin, std::size_t end,
           std::size_t) {
          for (std::size_t i = begin; i < end; ++i) acc += i;
        },
        [](std::uint64_t& into, std::uint64_t&& from) { into += from; });
    EXPECT_EQ(got, want) << "threads " << threads;
  }
}

TEST(ParallelReduce, ErrorInsideBodySurfacesAsParallelError) {
  PoolGuard guard;
  ThreadPool::set_global_threads(4);
  RegionOptions options;
  options.name = "test/throwing";
  options.grain = 1;
  EXPECT_THROW(
      parallel_reduce<int>(
          32, options, [] { return 0; },
          [](int&, std::size_t, std::size_t, std::size_t chunk) {
            if (chunk == 3) throw std::runtime_error("bad chunk");
          },
          [](int& into, int&& from) { into += from; }),
      ParallelError);
}

// ---------------------------------------------- pipeline-stage determinism
//
// The acceptance criterion for the subsystem: every parallelised stage is
// a pure function of (inputs, seed). Each test runs a stage at 1, 4 and 8
// threads and requires byte-identical output.

std::vector<geo::GeoPoint> scattered_points(std::size_t n) {
  stats::Rng rng(77);
  std::vector<geo::GeoPoint> pts;
  const geo::Region us = geo::regions::us();
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(us.south_deg, us.north_deg),
                   rng.uniform(us.west_deg, us.east_deg)});
  }
  return pts;
}

TEST(Determinism, PairHistogramsIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const auto pts = scattered_points(1500);
  const geo::Region us = geo::regions::us();
  for (const auto method :
       {core::PairCountMethod::kExact, core::PairCountMethod::kGrid}) {
    core::DistancePrefOptions options;
    options.method = method;
    std::vector<double> reference;
    for (const std::size_t threads : {1u, 4u, 8u}) {
      ThreadPool::set_global_threads(threads);
      const stats::Histogram h =
          core::pair_distance_histogram(pts, 0.0, 3500.0, 100, us, options);
      if (reference.empty()) {
        reference = h.counts();
      } else {
        EXPECT_EQ(h.counts(), reference)
            << "method " << static_cast<int>(method) << " threads " << threads;
      }
    }
  }
}

TEST(Determinism, BootstrapIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  stats::Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    xs.push_back(x);
    ys.push_back(2.0 * x + rng.normal(0.0, 1.0));
  }
  std::vector<double> reference;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    ThreadPool::set_global_threads(threads);
    const stats::BootstrapInterval ci =
        stats::bootstrap_slope(xs, ys, 300, 0.05, 999);
    if (reference.empty()) {
      reference = {ci.point, ci.lo, ci.hi};
    } else {
      EXPECT_EQ(ci.point, reference[0]) << "threads " << threads;
      EXPECT_EQ(ci.lo, reference[1]) << "threads " << threads;
      EXPECT_EQ(ci.hi, reference[2]) << "threads " << threads;
    }
  }
}

TEST(Determinism, SkitterIdenticalAcrossThreadCountsWithAndWithoutFaults) {
  PoolGuard guard;
  const auto& truth = geonet::testing::small_truth();

  auto plan = fault::parse_fault_plan(
      "monitor-outage:count=2,at=0.5;throttle:frac=0.2,rate=0.5;"
      "truncate:prob=0.3,min-hops=2;probe-loss:prob=0.05,burst=3;seed=11");
  ASSERT_TRUE(plan.is_ok());

  for (const bool with_faults : {false, true}) {
    synth::SkitterOptions options;
    options.monitor_count = 6;
    options.destinations_per_monitor = 300;
    options.seed = 31;
    if (with_faults) options.faults = plan.value();

    std::optional<synth::InterfaceObservation> reference;
    for (const std::size_t threads : {1u, 4u, 8u}) {
      ThreadPool::set_global_threads(threads);
      const synth::InterfaceObservation obs = run_skitter(truth, options);
      if (!reference) {
        reference = obs;
        continue;
      }
      EXPECT_EQ(obs.interfaces, reference->interfaces)
          << "faults " << with_faults << " threads " << threads;
      EXPECT_EQ(obs.links, reference->links)
          << "faults " << with_faults << " threads " << threads;
      EXPECT_EQ(obs.traces, reference->traces);
      EXPECT_EQ(obs.fault_stats.traces_truncated,
                reference->fault_stats.traces_truncated);
      EXPECT_EQ(obs.fault_stats.probes_lost, reference->fault_stats.probes_lost);
      EXPECT_EQ(obs.fault_stats.destinations_skipped,
                reference->fault_stats.destinations_skipped);
      EXPECT_EQ(obs.probe_stats.attempts, reference->probe_stats.attempts);
    }
  }
}

}  // namespace
}  // namespace geonet::exec
