#include "net/ipv4.h"

#include <gtest/gtest.h>

namespace geonet::net {
namespace {

TEST(Ipv4, FormatKnownAddresses) {
  EXPECT_EQ(to_string(Ipv4Addr{0}), "0.0.0.0");
  EXPECT_EQ(to_string(Ipv4Addr{0xffffffff}), "255.255.255.255");
  EXPECT_EQ(to_string(Ipv4Addr{0xc0000201}), "192.0.2.1");
}

TEST(Ipv4, ParseRoundTrip) {
  for (const char* text : {"0.0.0.0", "1.2.3.4", "255.255.255.255",
                           "192.168.1.1", "10.0.0.255"}) {
    const auto addr = parse_ipv4(text);
    ASSERT_TRUE(addr.has_value()) << text;
    EXPECT_EQ(to_string(*addr), text);
  }
}

TEST(Ipv4, ParseRejectsMalformed) {
  for (const char* text :
       {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.999", "a.b.c.d",
        "1.2.3.4x", "1..3.4", ".1.2.3", "01.2.3.4", "-1.2.3.4"}) {
    EXPECT_FALSE(parse_ipv4(text).has_value()) << text;
  }
}

TEST(Ipv4, ParseAllowsBareZeroOctets) {
  EXPECT_TRUE(parse_ipv4("0.0.0.1").has_value());
}

TEST(Ipv4, PrivateRanges) {
  EXPECT_TRUE(is_private(*parse_ipv4("10.1.2.3")));
  EXPECT_TRUE(is_private(*parse_ipv4("172.16.0.1")));
  EXPECT_TRUE(is_private(*parse_ipv4("172.31.255.255")));
  EXPECT_TRUE(is_private(*parse_ipv4("192.168.100.1")));
  EXPECT_TRUE(is_private(*parse_ipv4("127.0.0.1")));
  EXPECT_FALSE(is_private(*parse_ipv4("172.32.0.1")));
  EXPECT_FALSE(is_private(*parse_ipv4("11.0.0.1")));
  EXPECT_FALSE(is_private(*parse_ipv4("8.8.8.8")));
  EXPECT_FALSE(is_private(*parse_ipv4("192.169.0.1")));
}

TEST(Prefix, MaskValues) {
  EXPECT_EQ(prefix_mask(0), 0u);
  EXPECT_EQ(prefix_mask(8), 0xff000000u);
  EXPECT_EQ(prefix_mask(24), 0xffffff00u);
  EXPECT_EQ(prefix_mask(32), 0xffffffffu);
  EXPECT_EQ(prefix_mask(33), 0xffffffffu);  // clamped
}

TEST(Prefix, NormalizeZeroesHostBits) {
  const Prefix p = normalized({*parse_ipv4("192.168.1.77"), 24});
  EXPECT_EQ(to_string(p), "192.168.1.0/24");
}

TEST(Prefix, ContainsSemantics) {
  const Prefix p = *parse_prefix("10.20.0.0/16");
  EXPECT_TRUE(contains(p, *parse_ipv4("10.20.0.0")));
  EXPECT_TRUE(contains(p, *parse_ipv4("10.20.255.255")));
  EXPECT_FALSE(contains(p, *parse_ipv4("10.21.0.0")));
  EXPECT_FALSE(contains(p, *parse_ipv4("11.20.0.0")));
}

TEST(Prefix, DefaultRouteContainsEverything) {
  const Prefix p = *parse_prefix("0.0.0.0/0");
  EXPECT_TRUE(contains(p, *parse_ipv4("1.2.3.4")));
  EXPECT_TRUE(contains(p, *parse_ipv4("255.255.255.255")));
}

TEST(Prefix, ParseRoundTrip) {
  for (const char* text : {"0.0.0.0/0", "10.0.0.0/8", "192.0.2.0/24",
                           "1.2.3.4/32"}) {
    const auto p = parse_prefix(text);
    ASSERT_TRUE(p.has_value()) << text;
    EXPECT_EQ(to_string(*p), text);
  }
}

TEST(Prefix, ParseRejectsBad) {
  for (const char* text :
       {"", "10.0.0.0", "10.0.0.0/", "10.0.0.0/33", "10.0.0/8",
        "10.0.0.0/8x", "banana/8"}) {
    EXPECT_FALSE(parse_prefix(text).has_value()) << text;
  }
}

TEST(Prefix, ParseNormalizes) {
  const auto p = parse_prefix("10.0.0.255/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(to_string(*p), "10.0.0.0/24");
}

TEST(Prefix, Ordering) {
  EXPECT_LT(Ipv4Addr{1}, Ipv4Addr{2});
  const Prefix a{Ipv4Addr{0x0a000000}, 8};
  const Prefix b{Ipv4Addr{0x0a000000}, 16};
  EXPECT_LT(a, b);
}

}  // namespace
}  // namespace geonet::net
