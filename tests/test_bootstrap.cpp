#include "stats/bootstrap.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/linear_fit.h"

namespace geonet::stats {
namespace {

TEST(Bootstrap, SlopeIntervalCoversTruth) {
  Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    xs.push_back(x);
    ys.push_back(2.0 * x + 1.0 + rng.normal(0.0, 1.0));
  }
  const auto ci = bootstrap_slope(xs, ys);
  EXPECT_NEAR(ci.point, 2.0, 0.1);
  EXPECT_LT(ci.lo, 2.0);
  EXPECT_GT(ci.hi, 2.0);
  EXPECT_LT(ci.hi - ci.lo, 0.5);
  EXPECT_EQ(ci.resamples, 400u);
}

TEST(Bootstrap, IntervalShrinksWithSampleSize) {
  Rng rng(6);
  const auto make = [&](int n) {
    std::vector<double> xs, ys;
    for (int i = 0; i < n; ++i) {
      const double x = rng.uniform(0.0, 10.0);
      xs.push_back(x);
      ys.push_back(x + rng.normal(0.0, 2.0));
    }
    const auto ci = bootstrap_slope(xs, ys);
    return ci.hi - ci.lo;
  };
  EXPECT_GT(make(50), make(2000));
}

TEST(Bootstrap, CustomStatistic) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{10, 20, 30, 40};
  const auto ci = bootstrap_paired(
      xs, ys,
      [](std::span<const double> x, std::span<const double> y) {
        double sum = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) sum += y[i] / x[i];
        return sum / static_cast<double>(x.size());
      },
      100);
  EXPECT_DOUBLE_EQ(ci.point, 10.0);
  EXPECT_DOUBLE_EQ(ci.lo, 10.0);  // the ratio is constant: zero variance
  EXPECT_DOUBLE_EQ(ci.hi, 10.0);
}

TEST(Bootstrap, EmptyInputsDegenerate) {
  const auto ci = bootstrap_slope({}, {});
  EXPECT_EQ(ci.resamples, 0u);
  EXPECT_DOUBLE_EQ(ci.point, 0.0);
}

TEST(Bootstrap, DeterministicForSeed) {
  Rng rng(7);
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(rng.uniform(0.0, 1.0));
    ys.push_back(rng.uniform(0.0, 1.0));
  }
  const auto a = bootstrap_slope(xs, ys, 200, 0.05, 99);
  const auto b = bootstrap_slope(xs, ys, 200, 0.05, 99);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

}  // namespace
}  // namespace geonet::stats
