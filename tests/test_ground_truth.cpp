#include "synth/ground_truth.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "net/graph_algos.h"
#include "tests/test_world.h"

namespace geonet::synth {
namespace {

using testing::small_truth;
using testing::small_world;

TEST(GroundTruth, BuildsNonTrivialWorld) {
  const GroundTruth& gt = small_truth();
  EXPECT_GT(gt.topology().router_count(), 1000u);
  EXPECT_GT(gt.topology().link_count(), gt.topology().router_count());
  EXPECT_GT(gt.ases().size(), 50u);
  EXPECT_GT(gt.bgp().size(), gt.ases().size() / 2);
}

TEST(GroundTruth, RouterGraphIsConnected) {
  const GroundTruth& gt = small_truth();
  std::size_t components = 0;
  net::router_components(gt.topology(), &components);
  EXPECT_EQ(components, 1u);
}

TEST(GroundTruth, EveryRouterBelongsToItsAs) {
  const GroundTruth& gt = small_truth();
  std::size_t assigned = 0;
  for (const AsInfo& as_info : gt.ases()) {
    for (const net::RouterId r : as_info.routers) {
      EXPECT_EQ(gt.topology().router(r).asn, as_info.asn);
      ++assigned;
    }
  }
  EXPECT_EQ(assigned, gt.topology().router_count());
}

TEST(GroundTruth, SitesPartitionAsRouters) {
  const GroundTruth& gt = small_truth();
  for (const AsInfo& as_info : gt.ases()) {
    std::size_t in_sites = 0;
    for (const Site& site : as_info.sites) {
      EXPECT_FALSE(site.routers.empty());
      in_sites += site.routers.size();
    }
    EXPECT_EQ(in_sites, as_info.routers.size()) << "asn " << as_info.asn;
  }
}

TEST(GroundTruth, RoutersLieInsideSomeProfileExtent) {
  const GroundTruth& gt = small_truth();
  const auto& profiles = small_world().profiles();
  std::size_t outside = 0;
  for (const net::Router& router : gt.topology().routers()) {
    bool inside = false;
    for (const auto& profile : profiles) {
      inside |= profile.extent.contains(router.location);
    }
    if (!inside) ++outside;
  }
  EXPECT_EQ(outside, 0u);
}

TEST(GroundTruth, InterfaceAddressesAreUniqueAndPublic) {
  const GroundTruth& gt = small_truth();
  std::unordered_set<std::uint32_t> seen;
  for (const net::Interface& iface : gt.topology().interfaces()) {
    EXPECT_TRUE(seen.insert(iface.addr.value).second);
    EXPECT_FALSE(net::is_private(iface.addr));
  }
}

TEST(GroundTruth, IntradomainAddressesComeFromOwnAs) {
  const GroundTruth& gt = small_truth();
  std::size_t checked = 0;
  for (const net::Link& link : gt.topology().links()) {
    const auto& if_a = gt.topology().interface(link.if_a);
    const auto& if_b = gt.topology().interface(link.if_b);
    const std::uint32_t as_a = gt.topology().router(if_a.router).asn;
    const std::uint32_t as_b = gt.topology().router(if_b.router).asn;
    if (as_a != as_b) continue;  // interdomain numbering is ambiguous
    const AsInfo* info = gt.as_info(as_a);
    ASSERT_NE(info, nullptr);
    for (const net::Ipv4Addr addr : {if_a.addr, if_b.addr}) {
      bool owned = false;
      for (const net::Prefix& block : info->prefixes) {
        owned |= net::contains(block, addr);
      }
      EXPECT_TRUE(owned);
    }
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(GroundTruth, MostLinksAreIntradomain) {
  const GroundTruth& gt = small_truth();
  const double inter = static_cast<double>(gt.interdomain_link_count());
  const double total = static_cast<double>(gt.topology().link_count());
  EXPECT_GT(inter, 0.0);
  EXPECT_LT(inter / total, 0.35);  // the paper finds < 20%; generous bound
}

TEST(GroundTruth, BgpResolvesMostLoopbacks) {
  const GroundTruth& gt = small_truth();
  std::size_t resolved = 0;
  std::size_t correct = 0;
  std::size_t total = 0;
  for (const AsInfo& as_info : gt.ases()) {
    for (const net::RouterId r : as_info.routers) {
      // The first interface added per router is its loopback.
      const net::InterfaceId loopback =
          gt.topology().router(r).interfaces.front();
      const auto asn = gt.bgp().origin_as(gt.topology().interface(loopback).addr);
      ++total;
      if (asn) {
        ++resolved;
        if (*asn == as_info.asn) ++correct;
      }
    }
  }
  // ~2% of ASes are unannounced; foreign more-specifics add slight noise.
  EXPECT_GT(static_cast<double>(resolved) / static_cast<double>(total), 0.93);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(resolved), 0.95);
}

TEST(GroundTruth, UnannouncedAsesAbsentFromBgp) {
  const GroundTruth& gt = small_truth();
  std::size_t unannounced = 0;
  for (const AsInfo& as_info : gt.ases()) {
    if (as_info.announced) continue;
    ++unannounced;
    for (const net::Prefix& block : as_info.prefixes) {
      const auto origin = gt.bgp().origin_as(
          net::Ipv4Addr{block.network.value + 1});
      // Either uncovered or covered by someone else's more-specific.
      if (origin) {
        EXPECT_NE(*origin, as_info.asn);
      }
    }
  }
  EXPECT_GT(unannounced, 0u);
}

TEST(GroundTruth, AsSizesAreLongTailed) {
  const GroundTruth& gt = small_truth();
  std::size_t biggest = 0;
  std::size_t tiny = 0;
  for (const AsInfo& as_info : gt.ases()) {
    biggest = std::max(biggest, as_info.routers.size());
    if (as_info.routers.size() <= 4) ++tiny;
  }
  EXPECT_GT(biggest, 50u);
  EXPECT_GT(static_cast<double>(tiny) / static_cast<double>(gt.ases().size()),
            0.4);
}

TEST(GroundTruth, InterfaceHelpersConsistent) {
  const GroundTruth& gt = small_truth();
  const AsInfo& first = gt.ases().front();
  const net::RouterId r = first.routers.front();
  const net::InterfaceId iface = gt.topology().router(r).interfaces.front();
  EXPECT_EQ(gt.interface_true_asn(iface), first.asn);
  EXPECT_DOUBLE_EQ(gt.interface_location(iface).lat_deg,
                   gt.topology().router(r).location.lat_deg);
  EXPECT_DOUBLE_EQ(gt.interface_as_home(iface).lat_deg, first.home.lat_deg);
}

TEST(GroundTruth, AsInfoLookup) {
  const GroundTruth& gt = small_truth();
  const AsInfo& first = gt.ases().front();
  EXPECT_EQ(gt.as_info(first.asn), &first);
  EXPECT_EQ(gt.as_info(9999999), nullptr);
}

TEST(GroundTruth, DeterministicForFixedSeed) {
  const GroundTruthOptions options = testing::small_truth_options();
  const GroundTruth a = GroundTruth::build(small_world(), options);
  const GroundTruth b = GroundTruth::build(small_world(), options);
  EXPECT_EQ(a.topology().router_count(), b.topology().router_count());
  EXPECT_EQ(a.topology().link_count(), b.topology().link_count());
  EXPECT_EQ(a.ases().size(), b.ases().size());
  EXPECT_EQ(a.bgp().size(), b.bgp().size());
  // Spot-check a router location.
  const auto mid = a.topology().router_count() / 2;
  EXPECT_DOUBLE_EQ(a.topology().router(mid).location.lat_deg,
                   b.topology().router(mid).location.lat_deg);
}

TEST(GroundTruth, ScaleControlsSize) {
  GroundTruthOptions tiny = testing::small_truth_options();
  tiny.interface_scale = 0.01;
  const GroundTruth small = GroundTruth::build(small_world(), tiny);
  EXPECT_LT(small.topology().router_count(),
            small_truth().topology().router_count());
}

}  // namespace
}  // namespace geonet::synth
