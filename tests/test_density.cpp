#include "core/density.h"

#include <gtest/gtest.h>

#include <cmath>

#include "report/table.h"
#include "stats/rng.h"
#include "tests/test_world.h"

namespace geonet::core {
namespace {

/// A hand-built world with one populated region and a graph whose node
/// counts follow an exact power of patch population, so the analysis must
/// recover the planted exponent.
struct PlantedWorld {
  population::WorldPopulation world = population::WorldPopulation::build(5);
  net::AnnotatedGraph graph{net::NodeKind::kInterface, "planted"};
};

net::AnnotatedGraph planted_graph(const population::WorldPopulation& world,
                                  double exponent, double scale) {
  net::AnnotatedGraph graph(net::NodeKind::kInterface, "planted");
  const geo::Region us = geo::regions::us();
  const geo::Grid patches(us, 75.0);
  stats::Rng rng(17);
  for (std::size_t flat = 0; flat < patches.cell_count(); ++flat) {
    const geo::Region bounds = patches.cell_bounds(patches.unflatten(flat));
    const double people = world.population_in(bounds);
    if (people <= 0.0) continue;
    const auto nodes = static_cast<std::size_t>(
        std::llround(scale * std::pow(people / 1e6, exponent)));
    for (std::size_t k = 0; k < nodes; ++k) {
      graph.add_node({net::Ipv4Addr{0},
                      {rng.uniform(bounds.south_deg, bounds.north_deg),
                       rng.uniform(bounds.west_deg, bounds.east_deg)},
                      1});
    }
  }
  return graph;
}

TEST(Density, RecoversPlantedExponent) {
  const population::WorldPopulation world = population::WorldPopulation::build(5);
  const auto graph = planted_graph(world, 1.5, 40.0);
  const DensityAnalysis result =
      analyze_density(graph, world, geo::regions::us());
  // Rounding to integer node counts truncates small patches; the fit still
  // lands close to the planted exponent.
  EXPECT_NEAR(result.loglog_fit.slope, 1.5, 0.25);
  EXPECT_GT(result.loglog_fit.r_squared, 0.9);
  EXPECT_TRUE(result.superlinear());
}

TEST(Density, LinearPlantIsNotSuperlinear) {
  const population::WorldPopulation world = population::WorldPopulation::build(5);
  const auto graph = planted_graph(world, 0.7, 40.0);
  const DensityAnalysis result =
      analyze_density(graph, world, geo::regions::us());
  EXPECT_LT(result.loglog_fit.slope, 1.0);
  EXPECT_FALSE(result.superlinear());
}

TEST(Density, EmptyGraphYieldsNoPatches) {
  const population::WorldPopulation world = population::WorldPopulation::build(5);
  const net::AnnotatedGraph graph(net::NodeKind::kInterface);
  const DensityAnalysis result =
      analyze_density(graph, world, geo::regions::us());
  EXPECT_TRUE(result.patches.empty());
  EXPECT_EQ(result.nodes_in_region, 0u);
  EXPECT_EQ(result.loglog_fit.n, 0u);
}

TEST(Density, NodesOutsideRegionIgnored) {
  const population::WorldPopulation world = population::WorldPopulation::build(5);
  net::AnnotatedGraph graph(net::NodeKind::kInterface);
  graph.add_node({net::Ipv4Addr{0}, {51.5, -0.1}, 1});  // London
  const DensityAnalysis result =
      analyze_density(graph, world, geo::regions::us());
  EXPECT_EQ(result.nodes_in_region, 0u);
}

TEST(Density, PatchSizeParameterRespected) {
  const population::WorldPopulation world = population::WorldPopulation::build(5);
  const auto graph = planted_graph(world, 1.2, 20.0);
  const DensityAnalysis fine =
      analyze_density(graph, world, geo::regions::us(), 37.5);
  const DensityAnalysis coarse =
      analyze_density(graph, world, geo::regions::us(), 150.0);
  EXPECT_GT(fine.occupied_patches, coarse.occupied_patches);
  EXPECT_DOUBLE_EQ(fine.patch_arcmin, 37.5);
}

TEST(Density, CountNodesIn) {
  net::AnnotatedGraph graph(net::NodeKind::kInterface);
  graph.add_node({net::Ipv4Addr{0}, {40.0, -100.0}, 1});
  graph.add_node({net::Ipv4Addr{0}, {41.0, -101.0}, 1});
  graph.add_node({net::Ipv4Addr{0}, {51.5, -0.1}, 1});
  EXPECT_EQ(count_nodes_in(graph, geo::regions::us()), 2u);
  EXPECT_EQ(count_nodes_in(graph, geo::regions::europe()), 1u);
  EXPECT_EQ(count_nodes_in(graph, geo::regions::japan()), 0u);
}

TEST(Density, EmptyRegionRowsUseNaSentinel) {
  // A region with zero nodes has no defined people-per-node: the row must
  // carry the NaN sentinel (rendered "n/a" in tables, null in JSON), not
  // inf or a misleading zero.
  const population::WorldPopulation world = population::WorldPopulation::build(5);
  const net::AnnotatedGraph graph(net::NodeKind::kInterface);
  for (const auto& rows :
       {homogeneity_table(graph, world), economic_region_table(graph, world)}) {
    ASSERT_FALSE(rows.empty());
    for (const auto& row : rows) {
      EXPECT_EQ(row.nodes, 0u) << row.name;
      EXPECT_TRUE(std::isnan(row.people_per_node)) << row.name;
      EXPECT_TRUE(std::isnan(row.online_per_node)) << row.name;
      EXPECT_EQ(report::fmt(row.people_per_node, 1), "n/a") << row.name;
    }
  }
}

TEST(Density, EconomicTableHasWorldRow) {
  const auto& s = testing::small_scenario();
  const auto rows = economic_region_table(
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper),
      s.world());
  ASSERT_EQ(rows.size(), 8u);
  EXPECT_EQ(rows.back().name, "World");
  EXPECT_EQ(rows.back().nodes,
            s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper)
                .node_count());
  // Regional node counts sum to at most the world row.
  std::size_t regional = 0;
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) regional += rows[i].nodes;
  EXPECT_LE(regional, rows.back().nodes);
}

TEST(Density, EconomicTableReproducesTableIIIContrast) {
  const auto& s = testing::small_scenario();
  const auto rows = economic_region_table(
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper),
      s.world());
  double people_lo = 1e18, people_hi = 0.0;
  double online_lo = 1e18, online_hi = 0.0;
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
    if (rows[i].nodes == 0) continue;
    people_lo = std::min(people_lo, rows[i].people_per_node);
    people_hi = std::max(people_hi, rows[i].people_per_node);
    online_lo = std::min(online_lo, rows[i].online_per_node);
    online_hi = std::max(online_hi, rows[i].online_per_node);
  }
  // Section IV.A: people/interface varies ~100x, online/interface only a
  // few-fold. At test scale the contrast is attenuated but must be clear.
  EXPECT_GT(people_hi / people_lo, 20.0);
  EXPECT_LT(online_hi / online_lo, people_hi / people_lo / 4.0);
}

TEST(Density, HomogeneityTableMatchesTableIVShape) {
  const auto& s = testing::small_scenario();
  const auto rows = homogeneity_table(
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper),
      s.world());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "Northern US");
  EXPECT_EQ(rows[1].name, "Southern US");
  EXPECT_EQ(rows[2].name, "Central Am.");
  // The two US halves are within a small factor; Central America is far
  // less developed (paper: 991 vs 1305 vs 35,533 people/interface).
  ASSERT_GT(rows[0].nodes, 0u);
  ASSERT_GT(rows[1].nodes, 0u);
  const double ratio_us = rows[1].people_per_node / rows[0].people_per_node;
  EXPECT_GT(ratio_us, 0.2);
  EXPECT_LT(ratio_us, 5.0);
  if (rows[2].nodes > 0) {
    EXPECT_GT(rows[2].people_per_node, 4.0 * rows[0].people_per_node);
  }
}

}  // namespace
}  // namespace geonet::core
