#include "geo/grid.h"

#include <gtest/gtest.h>

#include <numeric>

#include "geo/distance.h"

namespace geonet::geo {
namespace {

TEST(Grid, DimensionsFromCellSize) {
  // US box: 25 deg lat x 105 deg lon at 75 arcmin = 1.25 deg cells.
  const Grid grid(regions::us(), 75.0);
  EXPECT_EQ(grid.rows(), 20u);
  EXPECT_EQ(grid.cols(), 84u);
  EXPECT_EQ(grid.cell_count(), 20u * 84u);
}

TEST(Grid, RejectsNonPositiveCell) {
  EXPECT_THROW(Grid(regions::us(), 0.0), std::invalid_argument);
  EXPECT_THROW(Grid(regions::us(), -5.0), std::invalid_argument);
}

TEST(Grid, CellOfCorners) {
  const Grid grid(regions::us(), 75.0);
  const auto sw = grid.cell_of({25.0, -150.0});
  ASSERT_TRUE(sw.has_value());
  EXPECT_EQ(sw->row, 0u);
  EXPECT_EQ(sw->col, 0u);

  const auto ne = grid.cell_of({49.999, -45.001});
  ASSERT_TRUE(ne.has_value());
  EXPECT_EQ(ne->row, grid.rows() - 1);
  EXPECT_EQ(ne->col, grid.cols() - 1);
}

TEST(Grid, OutsideReturnsNullopt) {
  const Grid grid(regions::us(), 75.0);
  EXPECT_FALSE(grid.cell_of({51.0, -100.0}).has_value());
  EXPECT_FALSE(grid.cell_of({40.0, -44.0}).has_value());
}

TEST(Grid, FlattenRoundTrip) {
  const Grid grid(regions::europe(), 30.0);
  for (std::size_t flat : {std::size_t{0}, grid.cell_count() / 2,
                           grid.cell_count() - 1}) {
    EXPECT_EQ(grid.flat_index(grid.unflatten(flat)), flat);
  }
}

TEST(Grid, CellCenterInsideBounds) {
  const Grid grid(regions::japan(), 75.0);
  for (std::size_t flat = 0; flat < grid.cell_count(); flat += 7) {
    const CellIndex cell = grid.unflatten(flat);
    const Region bounds = grid.cell_bounds(cell);
    const GeoPoint center = grid.cell_center(cell);
    EXPECT_TRUE(bounds.contains(center)) << flat;
    EXPECT_EQ(grid.cell_of(center)->row, cell.row);
    EXPECT_EQ(grid.cell_of(center)->col, cell.col);
  }
}

TEST(Grid, CellBoundsClippedAtRegionEdge) {
  // 16-degree lat span at 75 arcmin = 12.8 cells -> 13 rows, last clipped.
  const Grid grid(regions::europe(), 75.0);
  const Region last =
      grid.cell_bounds({grid.rows() - 1, 0});
  EXPECT_LE(last.north_deg, regions::europe().north_deg + 1e-12);
  EXPECT_LT(last.lat_span_deg(), 1.25 + 1e-12);
}

TEST(Grid, TallyCountsAndDrops) {
  const Grid grid(regions::us(), 75.0);
  std::vector<GeoPoint> points{
      {40.0, -100.0}, {40.0, -100.0}, {40.01, -99.99},   // same cell
      {30.0, -90.0},
      {60.0, -100.0},  // outside
  };
  std::size_t dropped = 0;
  const auto counts = grid.tally(points, &dropped);
  EXPECT_EQ(dropped, 1u);
  EXPECT_DOUBLE_EQ(std::accumulate(counts.begin(), counts.end(), 0.0), 4.0);
  const auto cell = grid.cell_of({40.0, -100.0});
  EXPECT_DOUBLE_EQ(counts[grid.flat_index(*cell)], 3.0);
}

TEST(Grid, MaxCellDiagonalBoundsSampledCells) {
  const Grid grid(regions::us(), 7.5);
  const double bound = grid.max_cell_diagonal_miles();
  for (std::size_t flat = 0; flat < grid.cell_count(); flat += 101) {
    const Region b = grid.cell_bounds(grid.unflatten(flat));
    const double diag = great_circle_miles({b.south_deg, b.west_deg},
                                           {b.north_deg, b.east_deg});
    EXPECT_LE(diag, bound + 1e-6);
  }
}

TEST(Grid, GlobalUpperEdgeBelongsToTheLastCell) {
  // Regression: a point exactly at lat 90 or lon 180 used to fall out of
  // range in a world grid even though no cell exists beyond the pole or
  // the antimeridian. It now lands in the last row/column.
  const Grid grid(regions::world(), 75.0);
  const auto pole = grid.cell_of({90.0, 0.0});
  ASSERT_TRUE(pole.has_value());
  EXPECT_EQ(pole->row, grid.rows() - 1);
  const auto antimeridian = grid.cell_of({0.0, 180.0});
  ASSERT_TRUE(antimeridian.has_value());
  EXPECT_EQ(antimeridian->col, grid.cols() - 1);
  const auto corner = grid.cell_of({90.0, 180.0});
  ASSERT_TRUE(corner.has_value());
  EXPECT_EQ(corner->row, grid.rows() - 1);
  EXPECT_EQ(corner->col, grid.cols() - 1);

  std::size_t dropped = 0;
  grid.tally(std::vector<GeoPoint>{{90.0, 180.0}, {-90.0, -180.0}}, &dropped);
  EXPECT_EQ(dropped, 0u);
}

TEST(Grid, InteriorUpperEdgesStayExclusive) {
  // The fix applies only to the global edges: a regional grid still
  // excludes its own north/east boundary, so adjacent grids never
  // double-count a shared edge.
  const Grid us(regions::us(), 75.0);
  EXPECT_FALSE(us.cell_of({50.0, -100.0}).has_value());   // north edge
  EXPECT_FALSE(us.cell_of({40.0, -45.0}).has_value());    // east edge
  const Region north_to_pole{"arctic", 60.0, 90.0, -10.0, 10.0};
  const Grid arctic(north_to_pole, 75.0);
  EXPECT_TRUE(arctic.cell_of({90.0, 0.0}).has_value());   // pole edge: kept
  EXPECT_FALSE(arctic.cell_of({75.0, 10.0}).has_value()); // east edge: not
}

TEST(Grid, SingleCellDegenerateRegion) {
  const Region tiny{"tiny", 10.0, 10.1, 20.0, 20.1};
  const Grid grid(tiny, 75.0);
  EXPECT_EQ(grid.cell_count(), 1u);
  EXPECT_TRUE(grid.cell_of({10.05, 20.05}).has_value());
}

}  // namespace
}  // namespace geonet::geo
