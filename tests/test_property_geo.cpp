// Property-style parameterized sweeps over the geographic primitives:
// every invariant must hold for every study region (and a few synthetic
// boxes), not just hand-picked examples.

#include <gtest/gtest.h>

#include <cmath>

#include "geo/box_counting.h"
#include "geo/convex_hull.h"
#include "geo/distance.h"
#include "geo/grid.h"
#include "geo/projection.h"
#include "geo/region.h"
#include "stats/rng.h"

namespace geonet::geo {
namespace {

std::vector<Region> sweep_regions() {
  return {regions::us(),
          regions::europe(),
          regions::japan(),
          regions::australia(),
          regions::south_america(),
          {"equatorial", -8.0, 8.0, -30.0, 10.0},
          {"tall", 10.0, 58.0, 100.0, 112.0}};
}

class RegionSweep : public ::testing::TestWithParam<Region> {
 protected:
  stats::Rng rng_{GetParam().name.size() * 7919 + 11};

  GeoPoint random_point() {
    const Region& r = GetParam();
    return {rng_.uniform(r.south_deg, r.north_deg),
            rng_.uniform(r.west_deg, r.east_deg)};
  }
};

TEST_P(RegionSweep, RandomPointsAreContained) {
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(GetParam().contains(random_point()));
  }
}

TEST_P(RegionSweep, DiagonalBoundsSampledPairDistances) {
  const double diag = GetParam().diagonal_miles();
  for (int i = 0; i < 300; ++i) {
    const double d = great_circle_miles(random_point(), random_point());
    EXPECT_LE(d, diag + 1e-6);
  }
}

TEST_P(RegionSweep, AreaPositiveAndBelowHemisphere) {
  const double area = GetParam().area_sq_miles();
  EXPECT_GT(area, 0.0);
  EXPECT_LT(area, 2.0 * kPi * kEarthRadiusMiles * kEarthRadiusMiles);
}

TEST_P(RegionSweep, GridRoundTripsEverySampledPoint) {
  for (const double arcmin : {75.0, 22.5, 7.5}) {
    const Grid grid(GetParam(), arcmin);
    for (int i = 0; i < 200; ++i) {
      const GeoPoint p = random_point();
      const auto cell = grid.cell_of(p);
      ASSERT_TRUE(cell.has_value());
      EXPECT_TRUE(grid.cell_bounds(*cell).contains(p))
          << to_string(p) << " arcmin=" << arcmin;
    }
  }
}

TEST_P(RegionSweep, GridCellsPartitionTally) {
  const Grid grid(GetParam(), 75.0);
  std::vector<GeoPoint> points;
  for (int i = 0; i < 800; ++i) points.push_back(random_point());
  std::size_t dropped = 0;
  const auto counts = grid.tally(points, &dropped);
  EXPECT_EQ(dropped, 0u);
  double total = 0.0;
  for (const double c : counts) total += c;
  EXPECT_DOUBLE_EQ(total, 800.0);
}

TEST_P(RegionSweep, ProjectionPreservesSmallDistancesEverywhere) {
  const AlbersProjection proj = AlbersProjection::for_region(GetParam());
  for (int i = 0; i < 100; ++i) {
    const GeoPoint a = random_point();
    const GeoPoint b =
        destination_point(a, rng_.uniform(0.0, 360.0), rng_.uniform(5.0, 60.0));
    if (!GetParam().contains(b)) continue;
    const PlanarPoint pa = proj.project(a);
    const PlanarPoint pb = proj.project(b);
    const double planar = std::hypot(pa.x - pb.x, pa.y - pb.y);
    const double sphere = great_circle_miles(a, b);
    // Equal-area conic preserves areas, not distances; for regions
    // spanning 60+ degrees of latitude the distance distortion reaches
    // ~10% at the edges.
    EXPECT_NEAR(planar / sphere, 1.0, 0.12) << to_string(a);
  }
}

TEST_P(RegionSweep, HullOfProjectedSampleContainsProjectedPoints) {
  const AlbersProjection proj = AlbersProjection::for_region(GetParam());
  std::vector<PlanarPoint> pts;
  for (int i = 0; i < 300; ++i) pts.push_back(proj.project(random_point()));
  const auto hull = convex_hull(pts);
  for (const auto& p : pts) {
    EXPECT_TRUE(point_in_convex_polygon(p, hull));
  }
}

TEST_P(RegionSweep, HullAreaNeverExceedsRegionArea) {
  const AlbersProjection proj = AlbersProjection::for_region(GetParam());
  std::vector<GeoPoint> pts;
  for (int i = 0; i < 400; ++i) pts.push_back(random_point());
  const double hull_area = hull_area_sq_miles(pts, proj);
  // Parallels project to arcs, so a hull of near-corner points can bulge
  // past the straight-edged box area; allow that sliver plus distortion.
  EXPECT_LE(hull_area, GetParam().area_sq_miles() * 1.15);
  EXPECT_GT(hull_area, 0.0);
}

TEST_P(RegionSweep, BoxCountingDimensionBetweenZeroAndTwo) {
  std::vector<GeoPoint> pts;
  for (int i = 0; i < 2000; ++i) pts.push_back(random_point());
  const auto result = box_counting_dimension(pts, GetParam());
  EXPECT_GT(result.dimension, 0.0);
  EXPECT_LT(result.dimension, 2.3);
}

INSTANTIATE_TEST_SUITE_P(AllRegions, RegionSweep,
                         ::testing::ValuesIn(sweep_regions()),
                         [](const auto& info) {
                           std::string name = info.param.name;
                           for (auto& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- destination_point round trip swept over distances and bearings ---

class DestinationSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DestinationSweep, DistanceRoundTrips) {
  const auto [bearing, distance] = GetParam();
  stats::Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    const GeoPoint start{rng.uniform(-65.0, 65.0), rng.uniform(-179.0, 179.0)};
    const GeoPoint end = destination_point(start, bearing, distance);
    EXPECT_NEAR(great_circle_miles(start, end), distance, 1e-6 * distance + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BearingsAndDistances, DestinationSweep,
    ::testing::Combine(::testing::Values(0.0, 45.0, 90.0, 180.0, 270.0, 359.0),
                       ::testing::Values(1.0, 50.0, 500.0, 3000.0)));

}  // namespace
}  // namespace geonet::geo
