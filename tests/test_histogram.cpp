#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace geonet::stats {
namespace {

TEST(Histogram, BasicBinning) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.99);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, RejectsInvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, DefaultConstructedIsUsable) {
  Histogram h;
  EXPECT_EQ(h.bin_count(), 1u);
  h.add(0.5);
  EXPECT_DOUBLE_EQ(h.total(), 1.0);
}

TEST(Histogram, LowerEdgeInclusiveUpperExclusive) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  h.add(10.0);  // exactly hi -> overflow
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
}

TEST(Histogram, UnderflowOverflowTracked) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(11.0, 2.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
}

TEST(Histogram, NonFiniteGoesNowhereInBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
}

TEST(Histogram, WeightsAccumulate) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5, 2.5);
  h.add(1.9, 0.5);
  EXPECT_DOUBLE_EQ(h.count(1), 3.0);
}

TEST(Histogram, BinGeometry) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_left(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 11.0);
  EXPECT_DOUBLE_EQ(h.bin_left(4), 18.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 19.0);
}

TEST(Histogram, BinOfMapsEdgesConsistently) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.bin_of(0.0), 0u);
  EXPECT_EQ(h.bin_of(0.25), 1u);
  EXPECT_EQ(h.bin_of(0.9999), 3u);
  EXPECT_EQ(h.bin_of(1.0), 4u);   // out of range
  EXPECT_EQ(h.bin_of(-0.1), 4u);  // out of range
}

TEST(Histogram, AddToBinDirect) {
  Histogram h(0.0, 1.0, 4);
  h.add_to_bin(2, 7.0);
  h.add_to_bin(99, 1.0);  // ignored
  EXPECT_DOUBLE_EQ(h.count(2), 7.0);
  EXPECT_DOUBLE_EQ(h.total(), 7.0);
}

TEST(Histogram, RatioElementwise) {
  Histogram links(0.0, 3.0, 3);
  Histogram pairs(0.0, 3.0, 3);
  links.add(0.5, 2.0);
  pairs.add(0.5, 8.0);
  pairs.add(2.5, 4.0);  // links bin empty -> ratio 0
  const auto f = links.ratio(pairs);
  EXPECT_DOUBLE_EQ(f[0], 0.25);
  EXPECT_DOUBLE_EQ(f[1], 0.0);  // denominator 0
  EXPECT_DOUBLE_EQ(f[2], 0.0);
}

TEST(Histogram, RatioEmptyDenominatorBinYieldsZero) {
  Histogram a(0.0, 2.0, 2);
  Histogram b(0.0, 2.0, 2);
  a.add(0.5);
  const auto f = a.ratio(b);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
}

}  // namespace
}  // namespace geonet::stats
