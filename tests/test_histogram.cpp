#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

namespace geonet::stats {
namespace {

TEST(Histogram, BasicBinning) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.99);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, RejectsInvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, DefaultConstructedIsUsable) {
  Histogram h;
  EXPECT_EQ(h.bin_count(), 1u);
  h.add(0.5);
  EXPECT_DOUBLE_EQ(h.total(), 1.0);
}

TEST(Histogram, LowerEdgeInclusiveUpperExclusive) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  h.add(10.0);  // exactly hi -> overflow
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
}

TEST(Histogram, UnderflowOverflowTracked) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(11.0, 2.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
}

TEST(Histogram, NonFiniteDroppedEntirely) {
  // Non-finite samples are dropped outright: they land neither in a bin
  // nor in the underflow/overflow tallies (NaN used to fall through the
  // `x < lo` comparison into overflow).
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 0.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 0.0);
}

TEST(Histogram, WeightsAccumulate) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5, 2.5);
  h.add(1.9, 0.5);
  EXPECT_DOUBLE_EQ(h.count(1), 3.0);
}

TEST(Histogram, BinGeometry) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_left(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 11.0);
  EXPECT_DOUBLE_EQ(h.bin_left(4), 18.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 19.0);
}

TEST(Histogram, BinOfMapsEdgesConsistently) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.bin_of(0.0), 0u);
  EXPECT_EQ(h.bin_of(0.25), 1u);
  EXPECT_EQ(h.bin_of(0.9999), 3u);
  EXPECT_EQ(h.bin_of(1.0), 4u);   // out of range
  EXPECT_EQ(h.bin_of(-0.1), 4u);  // out of range
}

TEST(Histogram, AddToBinDirect) {
  Histogram h(0.0, 1.0, 4);
  h.add_to_bin(2, 7.0);
  h.add_to_bin(99, 1.0);  // ignored
  EXPECT_DOUBLE_EQ(h.count(2), 7.0);
  EXPECT_DOUBLE_EQ(h.total(), 7.0);
}

TEST(Histogram, RatioElementwise) {
  Histogram links(0.0, 3.0, 3);
  Histogram pairs(0.0, 3.0, 3);
  links.add(0.5, 2.0);
  pairs.add(0.5, 8.0);
  pairs.add(2.5, 4.0);  // links bin empty -> ratio 0
  const auto f = links.ratio(pairs);
  EXPECT_DOUBLE_EQ(f[0], 0.25);
  EXPECT_DOUBLE_EQ(f[1], 0.0);  // denominator 0
  EXPECT_DOUBLE_EQ(f[2], 0.0);
}

TEST(Histogram, RatioEmptyDenominatorBinYieldsZero) {
  Histogram a(0.0, 2.0, 2);
  Histogram b(0.0, 2.0, 2);
  a.add(0.5);
  const auto f = a.ratio(b);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
}

TEST(Histogram, MergeRejectsBinningMismatch) {
  Histogram a(0.0, 10.0, 5);
  EXPECT_THROW(a.merge(Histogram(0.0, 10.0, 10)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(0.0, 20.0, 5)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(1.0, 10.0, 5)), std::invalid_argument);
  // A failed merge must not have half-applied anything.
  EXPECT_DOUBLE_EQ(a.total(), 0.0);
}

TEST(Histogram, MergeSumsBinsAndOutliers) {
  Histogram a(0.0, 10.0, 5);
  a.add(1.0);        // bin 0
  a.add(-3.0);       // underflow
  Histogram b(0.0, 10.0, 5);
  b.add(1.5, 2.0);   // bin 0
  b.add(9.0);        // bin 4
  b.add(10.0);       // exactly hi -> overflow
  b.add(42.0, 3.0);  // overflow
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.count(0), 3.0);
  EXPECT_DOUBLE_EQ(a.count(4), 1.0);
  EXPECT_DOUBLE_EQ(a.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(a.overflow(), 4.0);
  EXPECT_DOUBLE_EQ(a.total(), 4.0);
}

TEST(Histogram, ChunkOrderedMergeMatchesSerialLoop) {
  // The exec determinism contract for histogram reductions: filling
  // per-chunk histograms over contiguous index ranges and merging them in
  // ascending chunk order is byte-identical to one serial pass.
  std::vector<double> xs;
  std::vector<double> ws;
  std::uint64_t state = 12345;
  for (int i = 0; i < 1000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    xs.push_back(static_cast<double>(state % 1200) / 100.0 - 1.0);
    ws.push_back(1.0 + static_cast<double>(state % 7) * 0.125);
  }

  Histogram serial(0.0, 10.0, 32);
  for (std::size_t i = 0; i < xs.size(); ++i) serial.add(xs[i], ws[i]);

  const std::size_t chunks = 7;  // deliberately not a divisor of n
  Histogram merged(0.0, 10.0, 32);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * xs.size() / chunks;
    const std::size_t end = (c + 1) * xs.size() / chunks;
    Histogram part(0.0, 10.0, 32);
    for (std::size_t i = begin; i < end; ++i) part.add(xs[i], ws[i]);
    merged.merge(part);
  }

  ASSERT_EQ(serial.bin_count(), merged.bin_count());
  for (std::size_t b = 0; b < serial.bin_count(); ++b) {
    EXPECT_DOUBLE_EQ(serial.count(b), merged.count(b)) << "bin " << b;
  }
  EXPECT_DOUBLE_EQ(serial.underflow(), merged.underflow());
  EXPECT_DOUBLE_EQ(serial.overflow(), merged.overflow());
}

}  // namespace
}  // namespace geonet::stats
