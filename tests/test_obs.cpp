#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/study.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "synth/scenario.h"
#include "tests/test_world.h"

namespace geonet::obs {
namespace {

// ------------------------------------------------------------------
// Counters, gauges, histograms
// ------------------------------------------------------------------

TEST(Counter, SumsAcrossShardsAndThreads) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), 42u + kThreads * kPerThread);

  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Gauge, LastValueWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0);
  gauge.set(7);
  gauge.set(-3);
  EXPECT_EQ(gauge.value(), -3);
}

TEST(Histogram, BucketIndexIsPowerOfTwo) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 0u);
  EXPECT_EQ(Histogram::bucket_index(2), 1u);
  EXPECT_EQ(Histogram::bucket_index(3), 1u);
  EXPECT_EQ(Histogram::bucket_index(4), 2u);
  EXPECT_EQ(Histogram::bucket_index(1023), 9u);
  EXPECT_EQ(Histogram::bucket_index(1024), 10u);
  // Saturates in the last bucket instead of overflowing.
  EXPECT_EQ(Histogram::bucket_index(~0ULL), Histogram::kBuckets - 1);
}

TEST(Histogram, RecordsCountSumMinMaxMean) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.min(), 0u);
  EXPECT_EQ(histogram.max(), 0u);
  EXPECT_EQ(histogram.mean(), 0.0);

  for (const std::uint64_t sample : {5u, 10u, 15u}) histogram.record(sample);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.sum(), 30u);
  EXPECT_EQ(histogram.min(), 5u);
  EXPECT_EQ(histogram.max(), 15u);
  EXPECT_DOUBLE_EQ(histogram.mean(), 10.0);
  // 5 -> bucket 2 ([4,8)), 10 and 15 -> bucket 3 ([8,16)).
  EXPECT_EQ(histogram.bucket_count(2), 1u);
  EXPECT_EQ(histogram.bucket_count(3), 2u);
}

TEST(MetricsRegistry, HandlesAreStableAndNamed) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test.a");
  Counter& again = registry.counter("test.a");
  EXPECT_EQ(&a, &again);  // same name, same instrument
  a.add(3);
  registry.counter("test.b").add(1);
  registry.gauge("test.g").set(9);
  registry.histogram("test.h").record(100);

  const auto counters = registry.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].name, "test.a");  // name-sorted
  EXPECT_EQ(counters[0].value, 3u);
  EXPECT_EQ(counters[1].name, "test.b");

  std::string error;
  EXPECT_TRUE(json_validate(registry.to_json(), &error)) << error;
}

// ------------------------------------------------------------------
// JSON writer + validator
// ------------------------------------------------------------------

TEST(JsonWriter, EscapesAndNests) {
  JsonWriter json;
  json.begin_object();
  json.key("text").value("a\"b\\c\nd\te");
  json.key("num").value(1.5);
  json.key("neg").value(std::int64_t{-7});
  json.key("flag").value(true);
  json.key("nothing").null();
  json.key("list").begin_array().value(1).value(2).end_array();
  json.end_object();

  const std::string& out = json.str();
  EXPECT_NE(out.find("\"a\\\"b\\\\c\\nd\\te\""), std::string::npos);
  EXPECT_NE(out.find("\"list\":[1,2]"), std::string::npos);
  std::string error;
  EXPECT_TRUE(json_validate(out, &error)) << error << "\n" << out;
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.value(std::numeric_limits<double>::infinity());
  json.end_array();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(JsonValidate, AcceptsValidRejectsBroken) {
  EXPECT_TRUE(json_validate("{}"));
  EXPECT_TRUE(json_validate("[1,2.5,-3e2,\"x\",true,false,null]"));
  EXPECT_TRUE(json_validate("  {\"a\": {\"b\": []}} "));
  EXPECT_FALSE(json_validate(""));
  EXPECT_FALSE(json_validate("{"));
  EXPECT_FALSE(json_validate("{\"a\":}"));
  EXPECT_FALSE(json_validate("[1,]"));
  EXPECT_FALSE(json_validate("{\"a\":1} extra"));
  EXPECT_FALSE(json_validate("'single'"));
  EXPECT_FALSE(json_validate("{\"a\":01}"));
  std::string error;
  EXPECT_FALSE(json_validate("[1,", &error));
  EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------------------
// Spans + tracing
// ------------------------------------------------------------------

TEST(Trace, SpansNestAndExportWellFormedChromeJson) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  tracer.clear();
  {
    const Span outer("obs_test/outer");
    const Span middle("obs_test/middle");
    { const Span inner("obs_test/inner"); }
    { const Span inner("obs_test/inner"); }
  }
  tracer.set_enabled(false);

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);  // two inners, middle, outer (end order)
  const TraceEvent* outer = nullptr;
  const TraceEvent* middle = nullptr;
  int inners = 0;
  for (const TraceEvent& event : events) {
    if (event.name == "obs_test/outer") outer = &event;
    if (event.name == "obs_test/middle") middle = &event;
    if (event.name == "obs_test/inner") {
      ++inners;
      EXPECT_EQ(event.depth, 2u);
    }
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(middle, nullptr);
  EXPECT_EQ(inners, 2);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(middle->depth, 1u);
  // Temporal containment: the outer span brackets the middle one.
  EXPECT_LE(outer->start_us, middle->start_us);
  EXPECT_GE(outer->start_us + outer->duration_us,
            middle->start_us + middle->duration_us);

  const std::string trace = tracer.chrome_trace_json();
  std::string error;
  EXPECT_TRUE(json_validate(trace, &error)) << error;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("obs_test/inner"), std::string::npos);

  const std::string summary = tracer.summary();
  EXPECT_NE(summary.find("obs_test/outer"), std::string::npos);
  tracer.clear();
}

TEST(Trace, SpansFeedStageHistogramsEvenWhenDisabled) {
  ASSERT_FALSE(Tracer::global().enabled());
  Histogram& stage =
      MetricsRegistry::global().histogram("stage_us.obs_test/quiet");
  const std::uint64_t before = stage.count();
  { const Span span("obs_test/quiet"); }
  EXPECT_EQ(stage.count(), before + 1);
}

TEST(Trace, ScopedTimerRecordsIntoSink) {
  Histogram sink;
  { const ScopedTimer timer(sink); }
  EXPECT_EQ(sink.count(), 1u);
}

// ------------------------------------------------------------------
// Log levels
// ------------------------------------------------------------------

TEST(Log, ThresholdFilters) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Suppressed call must be a no-op (and must not crash on formatting).
  log(LogLevel::kInfo, "should not appear %d", 1);
  set_log_level(before);
}

// ------------------------------------------------------------------
// Run reports
// ------------------------------------------------------------------

TEST(RunReport, EmitsSchemaInfoSectionsMetricsSpans) {
  MetricsRegistry registry;
  registry.counter("rr.count").add(5);
  registry.histogram("stage_us.rr/phase").record(1000);
  Tracer tracer;

  RunReport report("unit");
  report.set_info("scale", "0.15");
  report.add_section("payload", "{\"answer\":42}");
  const std::string json = report.to_json(registry, tracer);

  std::string error;
  ASSERT_TRUE(json_validate(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"schema\":\"geonet.run_report.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"command\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"scale\":\"0.15\""), std::string::npos);
  EXPECT_NE(json.find("\"payload\":{\"answer\":42}"), std::string::npos);
  EXPECT_NE(json.find("\"rr.count\":5"), std::string::npos);
  // Span table falls back to the stage_us.* histograms when no trace ran.
  EXPECT_NE(json.find("\"name\":\"rr/phase\""), std::string::npos);
}

// The acceptance path of `geonet scenario --metrics`: a scenario run's
// full RunReport (processing stats + study headline + metrics) must
// round-trip through a JSON parse.
TEST(RunReport, ScenarioRunReportIsWellFormed) {
  const synth::Scenario& scenario = geonet::testing::small_scenario();

  core::StudyOptions options;
  options.compute_fractal_dimension = false;
  options.regions = {geo::regions::us()};
  const core::StudyReport study = core::run_study(
      scenario.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper),
      scenario.world(), options);

  RunReport report("scenario");
  report.set_info("scale", std::to_string(scenario.options().scale));
  report.add_section("processing_stats", synth::scenario_stats_json(scenario));
  report.add_section("study", core::study_report_json(study));
  const std::string json = report.to_json();

  std::string error;
  ASSERT_TRUE(json_validate(json, &error)) << error;
  EXPECT_NE(json.find("\"Skitter+IxMapper\""), std::string::npos);
  EXPECT_NE(json.find("\"input_nodes\""), std::string::npos);
  EXPECT_NE(json.find("\"density_slope\""), std::string::npos);
  // Pipeline counters accumulated during the scenario build.
  EXPECT_NE(json.find("\"pipeline.nodes_processed\""), std::string::npos);
  EXPECT_NE(json.find("\"pipeline.links_emitted\""), std::string::npos);
}

}  // namespace
}  // namespace geonet::obs
