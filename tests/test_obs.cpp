#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/study.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "synth/scenario.h"
#include "tests/test_world.h"

namespace geonet::obs {
namespace {

// ------------------------------------------------------------------
// Counters, gauges, histograms
// ------------------------------------------------------------------

TEST(Counter, SumsAcrossShardsAndThreads) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), 42u + kThreads * kPerThread);

  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Gauge, LastValueWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0);
  gauge.set(7);
  gauge.set(-3);
  EXPECT_EQ(gauge.value(), -3);
}

TEST(Histogram, BucketIndexIsPowerOfTwo) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 0u);
  EXPECT_EQ(Histogram::bucket_index(2), 1u);
  EXPECT_EQ(Histogram::bucket_index(3), 1u);
  EXPECT_EQ(Histogram::bucket_index(4), 2u);
  EXPECT_EQ(Histogram::bucket_index(1023), 9u);
  EXPECT_EQ(Histogram::bucket_index(1024), 10u);
  // Saturates in the last bucket instead of overflowing.
  EXPECT_EQ(Histogram::bucket_index(~0ULL), Histogram::kBuckets - 1);
}

TEST(Histogram, RecordsCountSumMinMaxMean) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.min(), 0u);
  EXPECT_EQ(histogram.max(), 0u);
  EXPECT_EQ(histogram.mean(), 0.0);

  for (const std::uint64_t sample : {5u, 10u, 15u}) histogram.record(sample);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.sum(), 30u);
  EXPECT_EQ(histogram.min(), 5u);
  EXPECT_EQ(histogram.max(), 15u);
  EXPECT_DOUBLE_EQ(histogram.mean(), 10.0);
  // 5 -> bucket 2 ([4,8)), 10 and 15 -> bucket 3 ([8,16)).
  EXPECT_EQ(histogram.bucket_count(2), 1u);
  EXPECT_EQ(histogram.bucket_count(3), 2u);
}

TEST(MetricsRegistry, HandlesAreStableAndNamed) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test.a");
  Counter& again = registry.counter("test.a");
  EXPECT_EQ(&a, &again);  // same name, same instrument
  a.add(3);
  registry.counter("test.b").add(1);
  registry.gauge("test.g").set(9);
  registry.histogram("test.h").record(100);

  const auto counters = registry.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].name, "test.a");  // name-sorted
  EXPECT_EQ(counters[0].value, 3u);
  EXPECT_EQ(counters[1].name, "test.b");

  std::string error;
  EXPECT_TRUE(json_validate(registry.to_json(), &error)) << error;
}

// ------------------------------------------------------------------
// JSON writer + validator
// ------------------------------------------------------------------

TEST(JsonWriter, EscapesAndNests) {
  JsonWriter json;
  json.begin_object();
  json.key("text").value("a\"b\\c\nd\te");
  json.key("num").value(1.5);
  json.key("neg").value(std::int64_t{-7});
  json.key("flag").value(true);
  json.key("nothing").null();
  json.key("list").begin_array().value(1).value(2).end_array();
  json.end_object();

  const std::string& out = json.str();
  EXPECT_NE(out.find("\"a\\\"b\\\\c\\nd\\te\""), std::string::npos);
  EXPECT_NE(out.find("\"list\":[1,2]"), std::string::npos);
  std::string error;
  EXPECT_TRUE(json_validate(out, &error)) << error << "\n" << out;
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.value(std::numeric_limits<double>::infinity());
  json.end_array();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(JsonValidate, AcceptsValidRejectsBroken) {
  EXPECT_TRUE(json_validate("{}"));
  EXPECT_TRUE(json_validate("[1,2.5,-3e2,\"x\",true,false,null]"));
  EXPECT_TRUE(json_validate("  {\"a\": {\"b\": []}} "));
  EXPECT_FALSE(json_validate(""));
  EXPECT_FALSE(json_validate("{"));
  EXPECT_FALSE(json_validate("{\"a\":}"));
  EXPECT_FALSE(json_validate("[1,]"));
  EXPECT_FALSE(json_validate("{\"a\":1} extra"));
  EXPECT_FALSE(json_validate("'single'"));
  EXPECT_FALSE(json_validate("{\"a\":01}"));
  std::string error;
  EXPECT_FALSE(json_validate("[1,", &error));
  EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------------------
// Spans + tracing
// ------------------------------------------------------------------

TEST(Trace, SpansNestAndExportWellFormedChromeJson) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  tracer.clear();
  {
    const Span outer("obs_test/outer");
    const Span middle("obs_test/middle");
    { const Span inner("obs_test/inner"); }
    { const Span inner("obs_test/inner"); }
  }
  tracer.set_enabled(false);

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);  // two inners, middle, outer (end order)
  const TraceEvent* outer = nullptr;
  const TraceEvent* middle = nullptr;
  int inners = 0;
  for (const TraceEvent& event : events) {
    if (event.name == "obs_test/outer") outer = &event;
    if (event.name == "obs_test/middle") middle = &event;
    if (event.name == "obs_test/inner") {
      ++inners;
      EXPECT_EQ(event.depth, 2u);
    }
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(middle, nullptr);
  EXPECT_EQ(inners, 2);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(middle->depth, 1u);
  // Temporal containment: the outer span brackets the middle one.
  // start_us and duration_us are each truncated to whole microseconds
  // from independent clock reads, so a computed end may understate the
  // true end by up to 1us per truncation — allow 2us of slack.
  EXPECT_LE(outer->start_us, middle->start_us);
  EXPECT_GE(outer->start_us + outer->duration_us + 2,
            middle->start_us + middle->duration_us);

  const std::string trace = tracer.chrome_trace_json();
  std::string error;
  EXPECT_TRUE(json_validate(trace, &error)) << error;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("obs_test/inner"), std::string::npos);

  const std::string summary = tracer.summary();
  EXPECT_NE(summary.find("obs_test/outer"), std::string::npos);
  tracer.clear();
}

TEST(Trace, SpansCarryUniqueIdsAndParentLinks) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  tracer.clear();
  {
    const Span outer("obs_test/outer");
    const Span middle("obs_test/middle");
    { const Span inner("obs_test/inner"); }
  }
  tracer.set_enabled(false);

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  const TraceEvent* outer = nullptr;
  const TraceEvent* middle = nullptr;
  const TraceEvent* inner = nullptr;
  for (const TraceEvent& event : events) {
    if (event.name == "obs_test/outer") outer = &event;
    if (event.name == "obs_test/middle") middle = &event;
    if (event.name == "obs_test/inner") inner = &event;
  }
  ASSERT_TRUE(outer != nullptr && middle != nullptr && inner != nullptr);
  EXPECT_GT(outer->id, 0u);
  EXPECT_NE(outer->id, middle->id);
  EXPECT_NE(middle->id, inner->id);
  EXPECT_EQ(outer->parent, 0u);  // root
  EXPECT_EQ(middle->parent, outer->id);
  EXPECT_EQ(inner->parent, middle->id);
  // Ordinary spans carry no chunk payload.
  EXPECT_EQ(inner->chunk, TraceEvent::kNoChunk);
  tracer.clear();
}

TEST(Trace, ContextGuardLinksSpansAcrossThreads) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  tracer.clear();
  SpanContext captured;
  {
    const Span parent("obs_test/submitter");
    captured = current_span_context();
    ASSERT_GT(captured.span_id, 0u);
    std::thread worker([captured] {
      const ContextGuard guard(captured);
      const Span child("obs_test/worker_child");
    });
    worker.join();
  }
  tracer.set_enabled(false);

  const TraceEvent* parent = nullptr;
  const TraceEvent* child = nullptr;
  for (const TraceEvent& event : tracer.events()) {
    if (event.name == "obs_test/submitter") parent = &event;
    if (event.name == "obs_test/worker_child") child = &event;
  }
  ASSERT_TRUE(parent != nullptr && child != nullptr);
  EXPECT_EQ(child->parent, parent->id);
  EXPECT_EQ(child->depth, parent->depth + 1);
  tracer.clear();
}

TEST(Trace, ChunkSpanEmitsChunkEventWithRangeArgs) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  tracer.clear();
  {
    const Span region("obs_test/region");
    const SpanContext context = current_span_context();
    { const ChunkSpan chunk(context, 3, 300, 400); }
  }
  tracer.set_enabled(false);

  const TraceEvent* region = nullptr;
  const TraceEvent* chunk = nullptr;
  for (const TraceEvent& event : tracer.events()) {
    if (event.name == "obs_test/region") region = &event;
    if (event.name == "exec/chunk[3]") chunk = &event;
  }
  ASSERT_TRUE(region != nullptr && chunk != nullptr);
  EXPECT_EQ(chunk->parent, region->id);
  EXPECT_EQ(chunk->chunk, 3u);
  EXPECT_EQ(chunk->range_begin, 300u);
  EXPECT_EQ(chunk->range_end, 400u);
  EXPECT_EQ(chunk->depth, region->depth + 1);
  // The chrome export exposes the payload as args and counter samples as
  // "C" events.
  tracer.set_enabled(true);
  tracer.record_counter("obs_test.counter", 7);
  tracer.set_enabled(false);
  const std::string json = tracer.chrome_trace_json();
  std::string error;
  EXPECT_TRUE(json_validate(json, &error)) << error;
  EXPECT_NE(json.find("\"chunk\":3"), std::string::npos);
  EXPECT_NE(json.find("\"begin\":300"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"span_id\""), std::string::npos);
  EXPECT_NE(json.find("\"parent_id\""), std::string::npos);
  tracer.clear();
}

TEST(Trace, ChunkSpanIsNoOpWhenDisabled) {
  Tracer& tracer = Tracer::global();
  ASSERT_FALSE(tracer.enabled());
  tracer.clear();
  { const ChunkSpan chunk(SpanContext{1, 1}, 0, 0, 10); }
  tracer.record_counter("obs_test.ignored", 1);
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_TRUE(tracer.counter_events().empty());
}

TEST(Trace, ChromeExportEmitsFlowArrowsForCrossThreadChildren) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  tracer.clear();
  {
    const Span parent("obs_test/flow_parent");
    const SpanContext captured = current_span_context();
    std::thread worker([captured] {
      const ContextGuard guard(captured);
      const Span child("obs_test/flow_child");
    });
    worker.join();
  }
  tracer.set_enabled(false);
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  tracer.clear();
}

TEST(Trace, SummaryRendersTreeWithSelfTimeAndPercentiles) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(true);
  tracer.clear();
  {
    const Span outer("obs_test/tree_outer");
    { const Span inner("obs_test/tree_inner"); }
  }
  tracer.set_enabled(false);

  const std::string summary = tracer.summary();
  EXPECT_NE(summary.find("obs_test/tree_outer"), std::string::npos);
  // The child renders indented under its parent.
  EXPECT_NE(summary.find("  obs_test/tree_inner"), std::string::npos);
  EXPECT_NE(summary.find("p95"), std::string::npos);

  const std::string profile = tracer.profile_json();
  std::string error;
  ASSERT_TRUE(json_validate(profile, &error)) << error;
  EXPECT_NE(profile.find("\"schema\":\"geonet.profile.v1\""),
            std::string::npos);
  const auto parsed = json_parse(profile);
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* stages = parsed->find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_EQ(stages->items().size(), 2u);
  bool found_inner = false;
  for (const JsonValue& stage : stages->items()) {
    const JsonValue* total = stage.find("total_us");
    const JsonValue* self = stage.find("self_us");
    ASSERT_TRUE(total != nullptr && self != nullptr);
    EXPECT_LE(self->as_double(), total->as_double());
    if (stage.find("name")->as_string() == "obs_test/tree_inner") {
      found_inner = true;
      EXPECT_EQ(stage.find("parent")->as_string(), "obs_test/tree_outer");
    }
  }
  EXPECT_TRUE(found_inner);
  tracer.clear();
}

TEST(Trace, ThreadIndexIsDenseAndStable) {
  const std::uint32_t own = thread_index();
  EXPECT_EQ(thread_index(), own);  // stable per thread
  std::uint32_t other = own;
  std::thread worker([&other] { other = thread_index(); });
  worker.join();
  EXPECT_NE(other, own);
}

TEST(Histogram, PercentileEstimatesFromBuckets) {
  Histogram histogram;
  EXPECT_EQ(histogram.percentile(0.5), 0.0);  // empty
  for (std::uint64_t i = 0; i < 100; ++i) histogram.record(1000);
  histogram.record(1u << 20);  // one outlier
  const double p50 = histogram.percentile(0.50);
  EXPECT_GE(p50, 1000.0);
  EXPECT_LT(p50, 2048.0);  // within the sample's pow2 bucket
  // The estimate is clamped to the observed range.
  EXPECT_LE(histogram.percentile(1.0), static_cast<double>(1u << 20));
  EXPECT_GE(histogram.percentile(0.0), 1000.0);
}

// ------------------------------------------------------------------
// JSON DOM parser
// ------------------------------------------------------------------

TEST(JsonParse, BuildsDomWithTypedAccessors) {
  const auto root = json_parse(
      R"({"name":"geonet","n":42,"pi":3.5,"ok":true,"none":null,)"
      R"("list":[1,2,3],"nested":{"deep":"x"}})");
  ASSERT_TRUE(root.has_value());
  ASSERT_TRUE(root->is_object());
  EXPECT_EQ(root->find("name")->as_string(), "geonet");
  EXPECT_EQ(root->find("n")->as_int(), 42);
  EXPECT_DOUBLE_EQ(root->find("pi")->as_double(), 3.5);
  EXPECT_TRUE(root->find("ok")->as_bool());
  EXPECT_TRUE(root->find("none")->is_null());
  EXPECT_EQ(root->find("missing"), nullptr);
  const JsonValue* list = root->find("list");
  ASSERT_TRUE(list != nullptr && list->is_array());
  ASSERT_EQ(list->items().size(), 3u);
  EXPECT_EQ(list->items()[2].as_int(), 3);
  EXPECT_EQ(root->find("nested")->find("deep")->as_string(), "x");
  // Wrong-kind access degrades to the fallback, never throws.
  EXPECT_EQ(root->find("name")->as_int(-1), -1);
}

TEST(JsonParse, UnescapesStrings) {
  const auto root = json_parse(R"(["a\"b\\c\nd\t", "Aé"])");
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(root->items()[0].as_string(), "a\"b\\c\nd\t");
  EXPECT_EQ(root->items()[1].as_string(), "A\xc3\xa9");  // é in UTF-8
}

TEST(JsonParse, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(json_parse("", &error).has_value());
  EXPECT_FALSE(json_parse("{", &error).has_value());
  EXPECT_FALSE(json_parse("[1,]", &error).has_value());
  EXPECT_FALSE(json_parse("{\"a\":1} extra", &error).has_value());
  EXPECT_FALSE(error.empty());
  // Round-trip: everything the writer emits, the parser accepts.
  JsonWriter writer;
  writer.begin_object();
  writer.key("weird \"key\"").value("tab\there");
  writer.end_object();
  EXPECT_TRUE(json_parse(writer.str()).has_value());
}

TEST(Trace, SpansFeedStageHistogramsEvenWhenDisabled) {
  ASSERT_FALSE(Tracer::global().enabled());
  Histogram& stage =
      MetricsRegistry::global().histogram("stage_us.obs_test/quiet");
  const std::uint64_t before = stage.count();
  { const Span span("obs_test/quiet"); }
  EXPECT_EQ(stage.count(), before + 1);
}

TEST(Trace, ScopedTimerRecordsIntoSink) {
  Histogram sink;
  { const ScopedTimer timer(sink); }
  EXPECT_EQ(sink.count(), 1u);
}

// ------------------------------------------------------------------
// Log levels
// ------------------------------------------------------------------

TEST(Log, ThresholdFilters) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Suppressed call must be a no-op (and must not crash on formatting).
  log(LogLevel::kInfo, "should not appear %d", 1);
  set_log_level(before);
}

TEST(Log, PrefixFormatIsPinned) {
  // The `[<elapsed>ms t<idx>] ` prefix is part of the observable log
  // format; tooling that parses logs depends on it staying stable.
  char buf[64];
  std::size_t n = format_log_prefix(0, 0, buf, sizeof(buf));
  EXPECT_EQ(std::string(buf, n), "[     0.0ms t00] ");
  n = format_log_prefix(1234567, 3, buf, sizeof(buf));
  EXPECT_EQ(std::string(buf, n), "[  1234.6ms t03] ");
  n = format_log_prefix(987654321, 42, buf, sizeof(buf));
  EXPECT_EQ(std::string(buf, n), "[987654.3ms t42] ");
  // A too-small buffer truncates safely (NUL-terminated) while still
  // reporting the would-be length, snprintf-style.
  char tiny[8];
  n = format_log_prefix(1234567, 3, tiny, sizeof(tiny));
  EXPECT_EQ(n, 17u);
  EXPECT_EQ(std::string(tiny), "[  1234");
}

// ------------------------------------------------------------------
// Run reports
// ------------------------------------------------------------------

TEST(RunReport, EmitsSchemaInfoSectionsMetricsSpans) {
  MetricsRegistry registry;
  registry.counter("rr.count").add(5);
  registry.histogram("stage_us.rr/phase").record(1000);
  Tracer tracer;

  RunReport report("unit");
  report.set_info("scale", "0.15");
  report.add_section("payload", "{\"answer\":42}");
  const std::string json = report.to_json(registry, tracer);

  std::string error;
  ASSERT_TRUE(json_validate(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"schema\":\"geonet.run_report.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"command\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"scale\":\"0.15\""), std::string::npos);
  EXPECT_NE(json.find("\"payload\":{\"answer\":42}"), std::string::npos);
  EXPECT_NE(json.find("\"rr.count\":5"), std::string::npos);
  // Span table falls back to the stage_us.* histograms when no trace ran.
  EXPECT_NE(json.find("\"name\":\"rr/phase\""), std::string::npos);
}

// The acceptance path of `geonet scenario --metrics`: a scenario run's
// full RunReport (processing stats + study headline + metrics) must
// round-trip through a JSON parse.
TEST(RunReport, ScenarioRunReportIsWellFormed) {
  const synth::Scenario& scenario = geonet::testing::small_scenario();

  core::StudyOptions options;
  options.compute_fractal_dimension = false;
  options.regions = {geo::regions::us()};
  const core::StudyReport study = core::run_study(
      scenario.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper),
      scenario.world(), options);

  RunReport report("scenario");
  report.set_info("scale", std::to_string(scenario.options().scale));
  report.add_section("processing_stats", synth::scenario_stats_json(scenario));
  report.add_section("study", core::study_report_json(study));
  const std::string json = report.to_json();

  std::string error;
  ASSERT_TRUE(json_validate(json, &error)) << error;
  EXPECT_NE(json.find("\"Skitter+IxMapper\""), std::string::npos);
  EXPECT_NE(json.find("\"input_nodes\""), std::string::npos);
  EXPECT_NE(json.find("\"density_slope\""), std::string::npos);
  // Pipeline counters accumulated during the scenario build.
  EXPECT_NE(json.find("\"pipeline.nodes_processed\""), std::string::npos);
  EXPECT_NE(json.find("\"pipeline.links_emitted\""), std::string::npos);
}

}  // namespace
}  // namespace geonet::obs
