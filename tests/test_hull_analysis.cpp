#include "core/hull_analysis.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/topology.h"
#include "tests/test_world.h"

namespace geonet::core {
namespace {

const AsHullRecord* find_as(const HullAnalysis& a, std::uint32_t asn) {
  const auto it =
      std::find_if(a.records.begin(), a.records.end(),
                   [&](const AsHullRecord& r) { return r.asn == asn; });
  return it == a.records.end() ? nullptr : &*it;
}

/// AS 1: continental triangle (big hull). AS 2: two points (zero hull).
/// AS 3: single point (zero hull). AS 0 nodes must be ignored.
net::AnnotatedGraph make_hull_graph() {
  net::AnnotatedGraph g(net::NodeKind::kInterface, "hulls");
  g.add_node({net::Ipv4Addr{1}, {40.7, -74.0}, 1});
  g.add_node({net::Ipv4Addr{2}, {34.0, -118.2}, 1});
  g.add_node({net::Ipv4Addr{3}, {47.6, -122.3}, 1});
  g.add_node({net::Ipv4Addr{4}, {41.9, -87.6}, 2});
  g.add_node({net::Ipv4Addr{5}, {29.8, -95.4}, 2});
  g.add_node({net::Ipv4Addr{6}, {33.7, -84.4}, 3});
  g.add_node({net::Ipv4Addr{7}, {25.8, -80.2}, 0});
  g.add_edge(0, 3);  // AS1 - AS2
  return g;
}

TEST(HullAnalysis, AreasPerAs) {
  const HullAnalysis analysis = analyze_hulls(make_hull_graph());
  ASSERT_EQ(analysis.records.size(), 3u);
  const auto* as1 = find_as(analysis, 1);
  ASSERT_NE(as1, nullptr);
  EXPECT_GT(as1->hull_area_sq_miles, 100000.0);  // continental triangle
  EXPECT_EQ(as1->node_count, 3u);
  EXPECT_EQ(as1->degree, 1u);

  EXPECT_DOUBLE_EQ(find_as(analysis, 2)->hull_area_sq_miles, 0.0);
  EXPECT_DOUBLE_EQ(find_as(analysis, 3)->hull_area_sq_miles, 0.0);
}

TEST(HullAnalysis, ZeroAreaFraction) {
  const HullAnalysis analysis = analyze_hulls(make_hull_graph());
  EXPECT_NEAR(analysis.zero_area_fraction, 2.0 / 3.0, 1e-12);
}

TEST(HullAnalysis, RestrictionShrinksHulls) {
  // Restricting to a box that cuts off the west coast shrinks AS 1 to two
  // eastern points -> zero area.
  HullOptions options;
  options.restrict_to = geo::Region{"east", 25.0, 50.0, -100.0, -60.0};
  const HullAnalysis analysis = analyze_hulls(make_hull_graph(), options);
  const auto* as1 = find_as(analysis, 1);
  ASSERT_NE(as1, nullptr);
  EXPECT_EQ(as1->node_count, 1u);  // only New York remains
  EXPECT_DOUBLE_EQ(as1->hull_area_sq_miles, 0.0);
}

TEST(HullAnalysis, EmptyGraph) {
  const net::AnnotatedGraph g(net::NodeKind::kInterface);
  const HullAnalysis analysis = analyze_hulls(g);
  EXPECT_TRUE(analysis.records.empty());
  EXPECT_DOUBLE_EQ(analysis.zero_area_fraction, 0.0);
}

TEST(HullAnalysis, ScenarioShowsTwoRegimes) {
  const auto& s = testing::small_scenario();
  const HullAnalysis analysis = analyze_hulls(
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper));
  ASSERT_GT(analysis.records.size(), 50u);

  // A substantial share of ASes has zero geographic extent (Figure 9).
  EXPECT_GT(analysis.zero_area_fraction, 0.25);

  // Above the detected size thresholds, everything is dispersed
  // (Figure 10's second regime).
  const auto& t = analysis.thresholds;
  EXPECT_GT(t.dispersed_area_sq_miles, 0.0);
  if (t.by_node_count > 0.0) {
    for (const auto& r : analysis.records) {
      if (static_cast<double>(r.node_count) >= t.by_node_count) {
        EXPECT_GE(r.hull_area_sq_miles, t.dispersed_area_sq_miles);
      }
    }
  }
}

TEST(HullAnalysis, SmallAsesShowWideVariability) {
  // Figure 10's first regime: among small ASes, some are compact and some
  // are widely dispersed.
  const auto& s = testing::small_scenario();
  const HullAnalysis analysis = analyze_hulls(
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper));
  std::size_t compact = 0;
  std::size_t dispersed = 0;
  for (const auto& r : analysis.records) {
    if (r.node_count > 20) continue;  // small ASes only
    if (r.hull_area_sq_miles <= 0.0) {
      ++compact;
    } else if (r.hull_area_sq_miles > 1e6) {  // continental scale
      ++dispersed;
    }
  }
  EXPECT_GT(compact, 10u);
  EXPECT_GT(dispersed, 3u);
}

TEST(HullAnalysis, WorldHullsLargerThanRegional) {
  const auto& s = testing::small_scenario();
  const auto& graph =
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper);
  const HullAnalysis world = analyze_hulls(graph);
  HullOptions us_options;
  us_options.restrict_to = geo::regions::us();
  const HullAnalysis us = analyze_hulls(graph, us_options);
  double world_max = 0.0, us_max = 0.0;
  for (const auto& r : world.records) {
    world_max = std::max(world_max, r.hull_area_sq_miles);
  }
  for (const auto& r : us.records) {
    us_max = std::max(us_max, r.hull_area_sq_miles);
  }
  EXPECT_GT(world_max, us_max);
}

}  // namespace
}  // namespace geonet::core
