// White-box tests of the processing pipeline using a scripted Mapper:
// exact control over per-address answers makes the paper's Section III.B
// rules (location votes, tie discards, AS votes) directly checkable.

#include <gtest/gtest.h>

#include <unordered_map>

#include "synth/scenario.h"
#include "tests/test_world.h"

namespace geonet::synth {
namespace {

/// Mapper whose answers are a lookup table; unknown addresses fail.
class ScriptedMapper final : public Mapper {
 public:
  void answer(net::Ipv4Addr addr, const geo::GeoPoint& where) {
    table_[addr.value] = where;
  }

  std::optional<geo::GeoPoint> map(net::Ipv4Addr addr, const geo::GeoPoint&,
                                   const geo::GeoPoint&) const override {
    const auto it = table_.find(addr.value);
    if (it == table_.end()) return std::nullopt;
    return it->second;
  }

  std::string name() const override { return "Scripted"; }

 private:
  std::unordered_map<std::uint32_t, geo::GeoPoint> table_;
};

/// Finds a ground-truth router with at least `n` interfaces.
net::RouterId router_with_interfaces(const GroundTruth& truth, std::size_t n) {
  for (net::RouterId r = 0; r < truth.topology().router_count(); ++r) {
    if (truth.topology().router(r).interfaces.size() >= n) return r;
  }
  ADD_FAILURE() << "no router with " << n << " interfaces";
  return 0;
}

net::Ipv4Addr addr_of(const GroundTruth& truth, net::InterfaceId iface) {
  return truth.topology().interface(iface).addr;
}

TEST(ProcessRouters, MajorityLocationWins) {
  const auto& truth = testing::small_truth();
  const net::RouterId r = router_with_interfaces(truth, 3);
  const auto& ifaces = truth.topology().router(r).interfaces;

  RouterObservation raw;
  raw.routers.push_back({{ifaces[0], ifaces[1], ifaces[2]}, r});

  ScriptedMapper mapper;
  const geo::GeoPoint majority{40.0, -74.0};
  const geo::GeoPoint outlier{34.0, -118.0};
  mapper.answer(addr_of(truth, ifaces[0]), majority);
  mapper.answer(addr_of(truth, ifaces[1]), majority);
  mapper.answer(addr_of(truth, ifaces[2]), outlier);

  ProcessingStats stats;
  const auto graph = process_router_observation(truth, raw, mapper, &stats);
  ASSERT_EQ(graph.node_count(), 1u);
  EXPECT_DOUBLE_EQ(graph.node(0).location.lat_deg, 40.0);
  EXPECT_EQ(stats.tie_discarded_routers, 0u);
}

TEST(ProcessRouters, LocationTieDiscardsTheRouter) {
  const auto& truth = testing::small_truth();
  const net::RouterId r = router_with_interfaces(truth, 2);
  const auto& ifaces = truth.topology().router(r).interfaces;

  RouterObservation raw;
  raw.routers.push_back({{ifaces[0], ifaces[1]}, r});

  ScriptedMapper mapper;
  mapper.answer(addr_of(truth, ifaces[0]), {40.0, -74.0});
  mapper.answer(addr_of(truth, ifaces[1]), {34.0, -118.0});

  ProcessingStats stats;
  const auto graph = process_router_observation(truth, raw, mapper, &stats);
  EXPECT_EQ(graph.node_count(), 0u);
  EXPECT_EQ(stats.tie_discarded_routers, 1u);
}

TEST(ProcessRouters, SingleMappedInterfaceIsNoTie) {
  const auto& truth = testing::small_truth();
  const net::RouterId r = router_with_interfaces(truth, 2);
  const auto& ifaces = truth.topology().router(r).interfaces;

  RouterObservation raw;
  raw.routers.push_back({{ifaces[0], ifaces[1]}, r});

  ScriptedMapper mapper;  // only one interface mappable
  mapper.answer(addr_of(truth, ifaces[0]), {40.0, -74.0});

  ProcessingStats stats;
  const auto graph = process_router_observation(truth, raw, mapper, &stats);
  ASSERT_EQ(graph.node_count(), 1u);
  EXPECT_EQ(stats.tie_discarded_routers, 0u);
}

TEST(ProcessRouters, FullyUnmappedRouterDiscarded) {
  const auto& truth = testing::small_truth();
  const net::RouterId r = router_with_interfaces(truth, 1);
  RouterObservation raw;
  raw.routers.push_back(
      {{truth.topology().router(r).interfaces.front()}, r});

  const ScriptedMapper mapper;  // empty: everything fails
  ProcessingStats stats;
  const auto graph = process_router_observation(truth, raw, mapper, &stats);
  EXPECT_EQ(graph.node_count(), 0u);
  EXPECT_EQ(stats.unmapped_nodes, 1u);
}

TEST(ProcessRouters, LinksToDiscardedRoutersDrop) {
  const auto& truth = testing::small_truth();
  const net::RouterId r1 = router_with_interfaces(truth, 1);
  net::RouterId r2 = r1 + 1;
  const net::InterfaceId if1 = truth.topology().router(r1).interfaces.front();
  const net::InterfaceId if2 = truth.topology().router(r2).interfaces.front();

  RouterObservation raw;
  raw.routers.push_back({{if1}, r1});
  raw.routers.push_back({{if2}, r2});
  raw.links.emplace_back(0, 1);

  ScriptedMapper mapper;
  mapper.answer(addr_of(truth, if1), {40.0, -74.0});
  // if2 unmapped -> router 1 discarded -> link dropped.

  const auto graph = process_router_observation(truth, raw, mapper);
  EXPECT_EQ(graph.node_count(), 1u);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(ProcessInterfaces, UnmappedInterfacesAndTheirLinksDrop) {
  const auto& truth = testing::small_truth();
  const net::RouterId r = router_with_interfaces(truth, 2);
  const auto& ifaces = truth.topology().router(r).interfaces;

  InterfaceObservation raw;
  raw.interfaces = {ifaces[0], ifaces[1]};
  raw.links.emplace_back(ifaces[0], ifaces[1]);

  ScriptedMapper mapper;
  mapper.answer(addr_of(truth, ifaces[0]), {40.0, -74.0});

  ProcessingStats stats;
  const auto graph = process_interface_observation(truth, raw, mapper, &stats);
  EXPECT_EQ(graph.node_count(), 1u);
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_EQ(stats.unmapped_nodes, 1u);
}

TEST(ProcessInterfaces, AsLabelsComeFromBgpNotGroundTruth) {
  // The pipeline must label by longest-prefix match of the address, the
  // paper's method — not by peeking at the true owner.
  const auto& truth = testing::small_truth();
  const net::RouterId r = router_with_interfaces(truth, 1);
  const net::InterfaceId iface = truth.topology().router(r).interfaces.front();

  InterfaceObservation raw;
  raw.interfaces = {iface};

  ScriptedMapper mapper;
  mapper.answer(addr_of(truth, iface), {40.0, -74.0});

  const auto graph = process_interface_observation(truth, raw, mapper);
  ASSERT_EQ(graph.node_count(), 1u);
  const auto expected =
      truth.bgp().origin_as(addr_of(truth, iface)).value_or(net::kUnknownAs);
  EXPECT_EQ(graph.node(0).asn, expected);
}

}  // namespace
}  // namespace geonet::synth
