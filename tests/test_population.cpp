#include "population/synth_population.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geo/distance.h"
#include "population/economic_profile.h"

namespace geonet::population {
namespace {

TEST(PopulationGrid, DepositAndTotals) {
  PopulationGrid raster(geo::Grid(geo::regions::us(), 75.0));
  raster.deposit({40.0, -100.0}, 1000.0);
  raster.deposit({40.0, -100.0}, 500.0);
  raster.deposit({60.0, -100.0}, 999.0);  // outside: ignored
  EXPECT_DOUBLE_EQ(raster.total_population(), 1500.0);
  const auto cell = raster.grid().cell_of({40.0, -100.0});
  EXPECT_DOUBLE_EQ(raster.cell_population(*cell), 1500.0);
}

TEST(PopulationGrid, NegativeDepositsIgnored) {
  PopulationGrid raster(geo::Grid(geo::regions::us(), 75.0));
  raster.deposit({40.0, -100.0}, -5.0);
  EXPECT_DOUBLE_EQ(raster.total_population(), 0.0);
}

TEST(PopulationGrid, PopulationInBox) {
  PopulationGrid raster(geo::Grid(geo::regions::us(), 75.0));
  raster.deposit({40.0, -120.0}, 100.0);
  raster.deposit({40.0, -80.0}, 200.0);
  const geo::Region west{"west", 25.0, 50.0, -150.0, -100.0};
  EXPECT_DOUBLE_EQ(raster.population_in(west), 100.0);
  EXPECT_DOUBLE_EQ(raster.population_in(geo::regions::us()), 300.0);
}

TEST(PopulationGrid, SampleEmptyReturnsNullopt) {
  PopulationGrid raster(geo::Grid(geo::regions::us(), 75.0));
  stats::Rng rng(1);
  EXPECT_FALSE(raster.sample_location(rng).has_value());
}

TEST(PopulationGrid, SamplingFollowsWeights) {
  PopulationGrid raster(geo::Grid(geo::regions::us(), 75.0));
  raster.deposit({30.0, -120.0}, 900.0);
  raster.deposit({45.0, -70.0}, 100.0);
  stats::Rng rng(2);
  int west = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const auto p = raster.sample_location(rng);
    ASSERT_TRUE(p.has_value());
    if (p->lon_deg < -100.0) ++west;
  }
  EXPECT_NEAR(static_cast<double>(west) / kN, 0.9, 0.01);
}

TEST(PopulationGrid, SamplerRefreshesAfterDeposit) {
  PopulationGrid raster(geo::Grid(geo::regions::us(), 75.0));
  raster.deposit({30.0, -120.0}, 100.0);
  stats::Rng rng(3);
  (void)raster.sample_location(rng);  // builds the sampler
  raster.deposit({45.0, -70.0}, 1e9); // invalidates it
  int east = 0;
  for (int i = 0; i < 1000; ++i) {
    if (raster.sample_location(rng)->lon_deg > -100.0) ++east;
  }
  EXPECT_GT(east, 950);
}

TEST(EconomicProfile, TableIIIFigures) {
  const auto profiles = world_profiles();
  ASSERT_EQ(profiles.size(), 7u);

  const auto usa = profile_by_name("USA");
  ASSERT_TRUE(usa.has_value());
  EXPECT_DOUBLE_EQ(usa->population_millions, 299.0);
  EXPECT_DOUBLE_EQ(usa->online_millions, 166.0);
  EXPECT_NEAR(usa->people_per_interface(), 1060.1, 1.0);  // paper: 1,061
  EXPECT_NEAR(usa->online_per_interface(), 588.5, 1.0);   // paper: 588

  const auto africa = profile_by_name("Africa");
  ASSERT_TRUE(africa.has_value());
  EXPECT_NEAR(africa->people_per_interface(), 99893.0, 200.0);  // ~100,011
}

TEST(EconomicProfile, PeoplePerInterfaceVariesOver100x) {
  double lo = 1e18;
  double hi = 0.0;
  for (const auto& p : world_profiles()) {
    lo = std::min(lo, p.people_per_interface());
    hi = std::max(hi, p.people_per_interface());
  }
  EXPECT_GT(hi / lo, 100.0);  // Section IV.A
}

TEST(EconomicProfile, OnlinePerInterfaceVariesOnlyAFewX) {
  double lo = 1e18;
  double hi = 0.0;
  for (const auto& p : world_profiles()) {
    lo = std::min(lo, p.online_per_interface());
    hi = std::max(hi, p.online_per_interface());
  }
  EXPECT_LT(hi / lo, 6.0);  // paper: about a factor of four
}

TEST(EconomicProfile, ExtentsAreDisjoint) {
  const auto profiles = world_profiles();
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    for (std::size_t j = i + 1; j < profiles.size(); ++j) {
      const auto& a = profiles[i].extent;
      const auto& b = profiles[j].extent;
      const bool overlap = a.south_deg < b.north_deg &&
                           b.south_deg < a.north_deg &&
                           a.west_deg < b.east_deg && b.west_deg < a.east_deg;
      EXPECT_FALSE(overlap) << profiles[i].name << " vs " << profiles[j].name;
    }
  }
}

TEST(EconomicProfile, WorldTotalsSum) {
  const EconomicProfile world = world_totals();
  EXPECT_NEAR(world.population_millions, 2151.0, 1.0);
  EXPECT_NEAR(world.online_millions, 395.67, 1.0);
  EXPECT_GT(world.paper_interfaces, 440000.0);
}

TEST(EconomicProfile, UnknownNameIsNullopt) {
  EXPECT_FALSE(profile_by_name("Narnia").has_value());
}

TEST(SynthCities, SizesFollowZipfOrdering) {
  const auto profile = *profile_by_name("USA");
  stats::Rng rng(7);
  const auto cities = synthesize_cities(profile, rng);
  ASSERT_EQ(cities.size(), profile.city_count);
  for (std::size_t i = 1; i < cities.size(); ++i) {
    EXPECT_GE(cities[i - 1].population, cities[i].population);
  }
  double total = 0.0;
  for (const auto& c : cities) total += c.population;
  EXPECT_NEAR(total,
              profile.population_millions * 1e6 * profile.urban_fraction,
              1.0);
}

TEST(SynthCities, CentersInsideExtent) {
  const auto profile = *profile_by_name("Japan");
  stats::Rng rng(8);
  for (const auto& city : synthesize_cities(profile, rng)) {
    EXPECT_TRUE(profile.extent.contains(city.center))
        << geo::to_string(city.center);
  }
}

TEST(SynthPopulation, TotalMatchesProfile) {
  const auto profile = *profile_by_name("Australia");
  stats::Rng rng(9);
  const PopulationGrid raster = synthesize_population(profile, rng);
  EXPECT_NEAR(raster.total_population(), profile.population_millions * 1e6,
              profile.population_millions * 1e6 * 0.02);
}

TEST(SynthPopulation, UrbanCellsDenserThanRural) {
  const auto profile = *profile_by_name("USA");
  stats::Rng rng(10);
  const PopulationGrid raster = synthesize_population(profile, rng);
  // The largest city's cell should hold far more than the uniform floor.
  const auto& top_city = raster.cities().front();
  const auto cell = raster.grid().cell_of(top_city.center);
  ASSERT_TRUE(cell.has_value());
  const double rural_floor = profile.population_millions * 1e6 *
                             (1.0 - profile.urban_fraction) /
                             static_cast<double>(raster.grid().cell_count());
  EXPECT_GT(raster.cell_population(*cell), 50.0 * rural_floor);
}

TEST(WorldPopulation, BuildsAllRegionsDeterministically) {
  const WorldPopulation a = WorldPopulation::build(11);
  const WorldPopulation b = WorldPopulation::build(11);
  ASSERT_EQ(a.grids().size(), 7u);
  EXPECT_DOUBLE_EQ(a.total_population(), b.total_population());
  EXPECT_NEAR(a.total_population(), 2151e6, 2151e6 * 0.02);
}

TEST(WorldPopulation, PopulationInSpansGrids) {
  const WorldPopulation world = WorldPopulation::build(12);
  const double us = world.population_in(geo::regions::us());
  EXPECT_GT(us, 200e6);
  EXPECT_LT(us, 350e6);
  const double japan = world.population_in(geo::regions::japan());
  EXPECT_GT(japan, 100e6);
  EXPECT_LT(japan, 160e6);
}

}  // namespace
}  // namespace geonet::population
