#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "synth/mercator.h"
#include "synth/skitter.h"
#include "tests/test_world.h"

namespace geonet::synth {
namespace {

using testing::small_truth;

TEST(Skitter, ObservesASubstantialFractionOfInterfaces) {
  const GroundTruth& gt = small_truth();
  const InterfaceObservation obs = run_skitter(gt);
  EXPECT_GT(obs.traces, 1000u);
  EXPECT_GT(obs.interfaces.size(), gt.topology().router_count() / 2);
  EXPECT_GT(obs.links.size(), obs.interfaces.size() / 2);
  // Observation is strictly smaller than reality.
  EXPECT_LT(obs.interfaces.size(), gt.topology().interface_count());
}

TEST(Skitter, ObservedInterfacesAreDistinctAndReal) {
  const GroundTruth& gt = small_truth();
  const InterfaceObservation obs = run_skitter(gt);
  std::unordered_set<net::InterfaceId> seen;
  for (const net::InterfaceId iface : obs.interfaces) {
    EXPECT_LT(iface, gt.topology().interface_count());
    EXPECT_TRUE(seen.insert(iface).second);
  }
}

TEST(Skitter, LinksConnectObservedInterfaces) {
  const GroundTruth& gt = small_truth();
  const InterfaceObservation obs = run_skitter(gt);
  std::unordered_set<net::InterfaceId> seen(obs.interfaces.begin(),
                                            obs.interfaces.end());
  std::set<std::pair<net::InterfaceId, net::InterfaceId>> links;
  for (const auto& [a, b] : obs.links) {
    EXPECT_NE(a, b);
    EXPECT_TRUE(seen.contains(a));
    EXPECT_TRUE(seen.contains(b));
    const auto canon = std::minmax(a, b);
    EXPECT_TRUE(links.insert({canon.first, canon.second}).second)
        << "duplicate link";
  }
}

TEST(Skitter, InterfaceLinksJoinAdjacentRoutersWhenAllRespond) {
  // With every router answering probes, a Skitter "link" joins the entry
  // interfaces of consecutive hops, so the two routers must be directly
  // connected in the truth.
  const GroundTruth& gt = small_truth();
  SkitterOptions options;
  options.hop_response_rate = 1.0;
  const InterfaceObservation obs = run_skitter(gt, options);
  std::size_t checked = 0;
  for (const auto& [a, b] : obs.links) {
    const net::RouterId ra = gt.topology().interface(a).router;
    const net::RouterId rb = gt.topology().interface(b).router;
    ASSERT_NE(ra, rb);
    EXPECT_TRUE(gt.topology().are_connected(ra, rb));
    if (++checked > 2000) break;
  }
}

TEST(Skitter, SilentRoutersCreateFalseAdjacencies) {
  // With some routers filtering ICMP, traces splice over them, producing
  // interface links between routers that are NOT directly connected — a
  // documented artifact of traceroute maps that the paper's pipeline
  // inherits. Silent routers themselves never appear.
  const GroundTruth& gt = small_truth();
  SkitterOptions options;
  options.hop_response_rate = 0.9;
  const InterfaceObservation obs = run_skitter(gt, options);
  std::size_t false_adjacent = 0;
  for (const auto& [a, b] : obs.links) {
    const net::RouterId ra = gt.topology().interface(a).router;
    const net::RouterId rb = gt.topology().interface(b).router;
    if (!gt.topology().are_connected(ra, rb)) ++false_adjacent;
  }
  EXPECT_GT(false_adjacent, 0u);
  // Still a small minority of links.
  EXPECT_LT(false_adjacent, obs.links.size() / 4);
}

TEST(Skitter, MoreMonitorsSeeMore) {
  const GroundTruth& gt = small_truth();
  SkitterOptions one;
  one.monitor_count = 1;
  one.destinations_per_monitor = 500;
  SkitterOptions many = one;
  many.monitor_count = 12;
  const auto few_obs = run_skitter(gt, one);
  const auto many_obs = run_skitter(gt, many);
  EXPECT_GT(many_obs.links.size(), few_obs.links.size());
}

TEST(Skitter, DeterministicForSeed) {
  const GroundTruth& gt = small_truth();
  SkitterOptions options;
  options.destinations_per_monitor = 300;
  const auto a = run_skitter(gt, options);
  const auto b = run_skitter(gt, options);
  EXPECT_EQ(a.interfaces.size(), b.interfaces.size());
  EXPECT_EQ(a.links.size(), b.links.size());
  EXPECT_EQ(a.traces, b.traces);
}

TEST(Mercator, ObservesRoutersWithInterfaces) {
  const GroundTruth& gt = small_truth();
  const RouterObservation obs = run_mercator(gt);
  EXPECT_GT(obs.routers.size(), gt.topology().router_count() / 2);
  EXPECT_GT(obs.raw_interfaces, obs.routers.size() / 2);
  for (const ObservedRouter& router : obs.routers) {
    EXPECT_FALSE(router.interfaces.empty());
    for (const net::InterfaceId iface : router.interfaces) {
      // All interfaces of an observed router truly share that router.
      EXPECT_EQ(gt.topology().interface(iface).router, router.true_router);
    }
  }
}

TEST(Mercator, PerfectAliasResolutionYieldsAtMostOneNodePerRouter) {
  const GroundTruth& gt = small_truth();
  MercatorOptions options;
  options.alias_resolution_rate = 1.0;
  const RouterObservation obs = run_mercator(gt, options);
  std::unordered_set<net::RouterId> seen;
  for (const ObservedRouter& router : obs.routers) {
    EXPECT_TRUE(seen.insert(router.true_router).second)
        << "router observed as two nodes despite perfect resolution";
  }
}

TEST(Mercator, FailedAliasResolutionInflatesNodeCount) {
  const GroundTruth& gt = small_truth();
  MercatorOptions never;
  never.alias_resolution_rate = 0.0;
  MercatorOptions always;
  always.alias_resolution_rate = 1.0;
  const auto unresolved = run_mercator(gt, never);
  const auto resolved = run_mercator(gt, always);
  EXPECT_GT(unresolved.routers.size(), resolved.routers.size());
  // Without resolution, observed "routers" == observed interfaces.
  EXPECT_EQ(unresolved.routers.size(), unresolved.raw_interfaces);
}

TEST(Mercator, LateralDiscoveryAddsLinks) {
  const GroundTruth& gt = small_truth();
  MercatorOptions tree_only;
  tree_only.lateral_discovery_rate = 0.0;
  MercatorOptions full;
  full.lateral_discovery_rate = 1.0;
  full.alias_resolution_rate = 1.0;
  const auto tree_obs = run_mercator(gt, tree_only);
  const auto full_obs = run_mercator(gt, full);
  EXPECT_GT(full_obs.links.size(), tree_obs.links.size());
  // With full lateral discovery and resolution, every truth link between
  // reachable routers appears (parallel links collapse onto router pairs).
  EXPECT_GE(full_obs.links.size(), gt.topology().link_count() * 9 / 10);
}

TEST(Mercator, LinksReferenceObservedNodes) {
  const GroundTruth& gt = small_truth();
  const RouterObservation obs = run_mercator(gt);
  for (const auto& [a, b] : obs.links) {
    ASSERT_LT(a, obs.routers.size());
    ASSERT_LT(b, obs.routers.size());
    EXPECT_NE(a, b);
  }
}

TEST(SkitterVsMercator, SkitterSeesMoreNodes) {
  // Table I structure: the interface-level dataset is larger than the
  // router-level one.
  const GroundTruth& gt = small_truth();
  const auto skitter = run_skitter(gt);
  const auto mercator = run_mercator(gt);
  EXPECT_GT(skitter.interfaces.size(), mercator.routers.size());
}

}  // namespace
}  // namespace geonet::synth
