#include "core/link_domains.h"

#include <gtest/gtest.h>

#include "geo/distance.h"
#include "net/topology.h"
#include "tests/test_world.h"

namespace geonet::core {
namespace {

/// Two ASes: AS1 in New York + Chicago, AS2 in Chicago.
/// Links: NY-Chicago intra (AS1), Chicago-Chicago inter (AS1-AS2),
/// plus a link touching an unmapped node (ignored).
net::AnnotatedGraph make_domain_graph() {
  net::AnnotatedGraph g(net::NodeKind::kRouter, "domains");
  g.add_node({net::Ipv4Addr{1}, {40.7, -74.0}, 1});   // 0 NY, AS1
  g.add_node({net::Ipv4Addr{2}, {41.9, -87.6}, 1});   // 1 Chi, AS1
  g.add_node({net::Ipv4Addr{3}, {41.9, -87.6}, 2});   // 2 Chi, AS2
  g.add_node({net::Ipv4Addr{4}, {34.0, -118.2}, 0});  // 3 LA, unmapped
  g.add_edge(0, 1);  // intra, ~712 mi
  g.add_edge(1, 2);  // inter, 0 mi
  g.add_edge(2, 3);  // touches unmapped: excluded
  return g;
}

TEST(LinkDomains, ClassifiesAndMeasures) {
  const LinkDomainStats stats = analyze_link_domains(make_domain_graph());
  EXPECT_EQ(stats.scope, "World");
  EXPECT_EQ(stats.intradomain_count, 1u);
  EXPECT_EQ(stats.interdomain_count, 1u);
  EXPECT_NEAR(stats.intradomain_mean_miles, 712.0, 15.0);
  EXPECT_DOUBLE_EQ(stats.interdomain_mean_miles, 0.0);
  EXPECT_DOUBLE_EQ(stats.intradomain_fraction(), 0.5);
}

TEST(LinkDomains, RegionScopeRequiresBothEndpointsInside) {
  const geo::Region midwest{"midwest", 38.0, 45.0, -95.0, -80.0};
  const LinkDomainStats stats =
      analyze_link_domains(make_domain_graph(), midwest);
  EXPECT_EQ(stats.scope, "midwest");
  EXPECT_EQ(stats.intradomain_count, 0u);  // NY endpoint outside
  EXPECT_EQ(stats.interdomain_count, 1u);  // Chi-Chi inside
}

TEST(LinkDomains, EmptyGraph) {
  const net::AnnotatedGraph g(net::NodeKind::kRouter);
  const LinkDomainStats stats = analyze_link_domains(g);
  EXPECT_EQ(stats.interdomain_count + stats.intradomain_count, 0u);
  EXPECT_DOUBLE_EQ(stats.intradomain_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(stats.interdomain_mean_miles, 0.0);
}

TEST(LinkDomains, ScenarioMatchesTableVIShape) {
  const auto& s = testing::small_scenario();
  const auto& graph =
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper);
  const LinkDomainStats world = analyze_link_domains(graph);

  // The paper: intradomain links are the large majority (>= 83% world).
  EXPECT_GT(world.intradomain_fraction(), 0.7);
  // Interdomain links are markedly longer on average (paper: ~2x).
  EXPECT_GT(world.interdomain_mean_miles, 1.3 * world.intradomain_mean_miles);
}

TEST(LinkDomains, RegionalRowsAreConsistentWithWorld) {
  const auto& s = testing::small_scenario();
  const auto& graph =
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper);
  const LinkDomainStats world = analyze_link_domains(graph);
  std::size_t regional_total = 0;
  for (const auto& region : geo::regions::paper_study_regions()) {
    const LinkDomainStats row = analyze_link_domains(graph, region);
    regional_total += row.interdomain_count + row.intradomain_count;
    if (row.intradomain_count > 50) {
      EXPECT_GT(row.intradomain_fraction(), 0.5) << region.name;
    }
  }
  EXPECT_LE(regional_total, world.interdomain_count + world.intradomain_count);
  // About half of all links lie within the continental US (paper note).
  const LinkDomainStats us = analyze_link_domains(graph, geo::regions::us());
  const double us_share =
      static_cast<double>(us.interdomain_count + us.intradomain_count) /
      static_cast<double>(world.interdomain_count + world.intradomain_count);
  EXPECT_GT(us_share, 0.25);
  EXPECT_LT(us_share, 0.8);
}

TEST(LinkDomains, MeanLengthsWithinDistanceSensitivityIntuition) {
  // Table VI vs Table V: intradomain mean lengths sit well inside the
  // distance-sensitive range for every study region.
  const auto& s = testing::small_scenario();
  const auto& graph =
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper);
  for (const auto& region : geo::regions::paper_study_regions()) {
    const LinkDomainStats row = analyze_link_domains(graph, region);
    if (row.intradomain_count < 50) continue;
    EXPECT_LT(row.intradomain_mean_miles, 0.5 * region.diagonal_miles())
        << region.name;
  }
}

}  // namespace
}  // namespace geonet::core
