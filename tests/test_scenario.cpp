#include "synth/scenario.h"

#include <gtest/gtest.h>

#include "tests/test_world.h"

namespace geonet::synth {
namespace {

using testing::small_scenario;

TEST(Scenario, BuildsAllFourProcessedDatasets) {
  const Scenario& s = small_scenario();
  for (const DatasetKind dataset :
       {DatasetKind::kSkitter, DatasetKind::kMercator}) {
    for (const MapperKind mapper :
         {MapperKind::kIxMapper, MapperKind::kEdgeScape}) {
      const auto& graph = s.graph(dataset, mapper);
      EXPECT_GT(graph.node_count(), 100u) << graph.name();
      EXPECT_GT(graph.edge_count(), 100u) << graph.name();
      const auto& stats = s.stats(dataset, mapper);
      EXPECT_EQ(stats.output_nodes, graph.node_count());
      EXPECT_EQ(stats.output_links, graph.edge_count());
      EXPECT_GT(stats.distinct_locations, 10u);
      EXPECT_LE(stats.distinct_locations, graph.node_count());
    }
  }
}

TEST(Scenario, DatasetNamesIdentifyPipeline) {
  const Scenario& s = small_scenario();
  EXPECT_EQ(s.graph(DatasetKind::kSkitter, MapperKind::kIxMapper).name(),
            "Skitter+IxMapper");
  EXPECT_EQ(s.graph(DatasetKind::kMercator, MapperKind::kEdgeScape).name(),
            "Mercator+EdgeScape");
  EXPECT_STREQ(to_string(DatasetKind::kSkitter), "Skitter");
  EXPECT_STREQ(to_string(MapperKind::kEdgeScape), "EdgeScape");
}

TEST(Scenario, NodeKindsMatchDatasets) {
  const Scenario& s = small_scenario();
  EXPECT_EQ(s.graph(DatasetKind::kSkitter, MapperKind::kIxMapper).kind(),
            net::NodeKind::kInterface);
  EXPECT_EQ(s.graph(DatasetKind::kMercator, MapperKind::kIxMapper).kind(),
            net::NodeKind::kRouter);
}

TEST(Scenario, TableIShape_SkitterLargerThanMercator) {
  const Scenario& s = small_scenario();
  for (const MapperKind mapper :
       {MapperKind::kIxMapper, MapperKind::kEdgeScape}) {
    EXPECT_GT(s.graph(DatasetKind::kSkitter, mapper).node_count(),
              s.graph(DatasetKind::kMercator, mapper).node_count());
    EXPECT_GT(s.graph(DatasetKind::kSkitter, mapper).edge_count(),
              s.graph(DatasetKind::kMercator, mapper).edge_count());
  }
}

TEST(Scenario, EdgeScapeMapsMoreThanIxMapper) {
  // Section III.B: EdgeScape's failure rate is lower, so it keeps more
  // nodes of the same raw observation.
  const Scenario& s = small_scenario();
  EXPECT_GE(s.graph(DatasetKind::kSkitter, MapperKind::kEdgeScape).node_count(),
            s.graph(DatasetKind::kSkitter, MapperKind::kIxMapper).node_count());
  EXPECT_LT(s.stats(DatasetKind::kSkitter, MapperKind::kEdgeScape).unmapped_nodes,
            s.stats(DatasetKind::kSkitter, MapperKind::kIxMapper).unmapped_nodes);
}

TEST(Scenario, UnmappedFractionsMatchPaperOrderOfMagnitude) {
  const Scenario& s = small_scenario();
  const auto& stats = s.stats(DatasetKind::kSkitter, MapperKind::kIxMapper);
  const double unmapped_fraction =
      static_cast<double>(stats.unmapped_nodes) /
      static_cast<double>(stats.input_nodes);
  EXPECT_GT(unmapped_fraction, 0.001);
  EXPECT_LT(unmapped_fraction, 0.05);  // paper: ~1.5%
}

TEST(Scenario, MercatorTieDiscardsHappenButAreRare) {
  const Scenario& s = small_scenario();
  const auto& stats = s.stats(DatasetKind::kMercator, MapperKind::kIxMapper);
  const double tie_fraction = static_cast<double>(stats.tie_discarded_routers) /
                              static_cast<double>(stats.input_nodes);
  EXPECT_LT(tie_fraction, 0.08);  // paper: 2.9%
}

TEST(Scenario, SomeNodesLandInTheSeparateAs) {
  const Scenario& s = small_scenario();
  const auto& stats = s.stats(DatasetKind::kSkitter, MapperKind::kIxMapper);
  EXPECT_GT(stats.as_unmapped_nodes, 0u);  // paper: 1.5-2.8%
  EXPECT_LT(static_cast<double>(stats.as_unmapped_nodes) /
                static_cast<double>(stats.output_nodes),
            0.10);
}

TEST(Scenario, GraphsCarryValidLocations) {
  const Scenario& s = small_scenario();
  const auto& graph = s.graph(DatasetKind::kSkitter, MapperKind::kIxMapper);
  for (const auto& node : graph.nodes()) {
    EXPECT_TRUE(geo::is_valid(node.location));
  }
}

TEST(Scenario, DistinctLocationCountHelper) {
  net::AnnotatedGraph g(net::NodeKind::kInterface);
  g.add_node({net::Ipv4Addr{1}, {40.0, -74.0}, 1});
  g.add_node({net::Ipv4Addr{2}, {40.0, -74.0}, 1});
  g.add_node({net::Ipv4Addr{3}, {34.0, -118.0}, 1});
  EXPECT_EQ(distinct_location_count(g), 2u);
  EXPECT_EQ(distinct_location_count(g, 90.0), 1u);
}

TEST(Scenario, DefaultOptionsReadScaleFromEnvironment) {
  // Do not mutate the process environment here; just check the default.
  const ScenarioOptions options = ScenarioOptions::defaults();
  EXPECT_GT(options.scale, 0.0);
}

TEST(Scenario, MechanicalPipelineProducesComparableDatasets) {
  synth::ScenarioOptions options;
  options.scale = 0.02;
  options.seed = 77;
  options.mechanical_pipeline = true;
  const Scenario mechanical = Scenario::build(options);
  options.mechanical_pipeline = false;
  const Scenario statistical = Scenario::build(options);

  const auto& m = mechanical.graph(DatasetKind::kSkitter, MapperKind::kIxMapper);
  const auto& t = statistical.graph(DatasetKind::kSkitter, MapperKind::kIxMapper);
  EXPECT_EQ(m.name(), "Skitter+HostnameMapper");
  // Node/edge counts within 10% of the statistical pipeline.
  EXPECT_NEAR(static_cast<double>(m.node_count()),
              static_cast<double>(t.node_count()),
              0.10 * static_cast<double>(t.node_count()));
  EXPECT_NEAR(static_cast<double>(m.edge_count()),
              static_cast<double>(t.edge_count()),
              0.10 * static_cast<double>(t.edge_count()));
  // Propagated BGP leaves somewhat more nodes AS-unmapped than the
  // omniscient table, but the bulk still resolves.
  const auto& stats = mechanical.stats(DatasetKind::kSkitter,
                                       MapperKind::kIxMapper);
  EXPECT_LT(static_cast<double>(stats.as_unmapped_nodes),
            0.25 * static_cast<double>(stats.output_nodes));
}

TEST(ProcessInterfaces, DiscardsUnmappableAndKeepsEdgesConsistent) {
  const auto& s = small_scenario();
  ProcessingStats stats;
  const GeoMapper mapper(GeoMapper::ixmapper_profile(), {{40.0, -74.0}}, 7);
  const auto graph =
      process_interface_observation(s.truth(), s.skitter_raw(), mapper, &stats);
  EXPECT_EQ(stats.input_nodes, s.skitter_raw().interfaces.size());
  EXPECT_EQ(stats.output_nodes + stats.unmapped_nodes, stats.input_nodes);
  // Single-city database: everything mappable snaps to one location.
  EXPECT_LE(stats.distinct_locations, 2u);
}

}  // namespace
}  // namespace geonet::synth
