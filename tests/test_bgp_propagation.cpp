#include "synth/bgp_propagation.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_world.h"

namespace geonet::synth {
namespace {

using testing::small_truth;

const std::vector<AsRelationship>& relationships() {
  static const std::vector<AsRelationship> rels =
      infer_as_relationships(small_truth());
  return rels;
}

TEST(BgpPropagation, InfersOneRelationshipPerAsPair) {
  const auto& rels = relationships();
  ASSERT_FALSE(rels.empty());
  std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (const auto& rel : rels) {
    const auto canon = std::minmax(rel.customer_asn, rel.provider_asn);
    EXPECT_TRUE(pairs.insert(canon).second) << "duplicate pair";
    EXPECT_NE(rel.customer_asn, rel.provider_asn);
  }
}

TEST(BgpPropagation, ProvidersAreUsuallyLargerThanCustomers) {
  // The size heuristic makes providers larger; the every-AS-buys-transit
  // post-pass may occasionally invert that for hierarchy tops, so the
  // check is a strong majority, not a universal rule.
  const auto& truth = small_truth();
  std::size_t total = 0;
  std::size_t larger = 0;
  for (const auto& rel : relationships()) {
    if (rel.relation != AsRelation::kCustomerProvider) continue;
    const AsInfo* customer = truth.as_info(rel.customer_asn);
    const AsInfo* provider = truth.as_info(rel.provider_asn);
    ASSERT_NE(customer, nullptr);
    ASSERT_NE(provider, nullptr);
    ++total;
    if (provider->routers.size() >= customer->routers.size()) ++larger;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(larger) / static_cast<double>(total), 0.78);
}

TEST(BgpPropagation, MixOfRelationsExists) {
  std::size_t c2p = 0;
  std::size_t p2p = 0;
  for (const auto& rel : relationships()) {
    (rel.relation == AsRelation::kCustomerProvider ? c2p : p2p) += 1;
  }
  EXPECT_GT(c2p, 0u);
  EXPECT_GT(p2p, 0u);
}

TEST(BgpPropagation, OriginAlwaysSeesItself) {
  const auto& truth = small_truth();
  for (std::size_t i = 0; i < 20; ++i) {
    const std::uint32_t asn = truth.ases()[i * 7 % truth.ases().size()].asn;
    const auto reach = visible_at(truth, relationships(), asn);
    EXPECT_TRUE(std::binary_search(reach.begin(), reach.end(), asn));
  }
}

TEST(BgpPropagation, LargeTransitSeesMostOrigins) {
  // The biggest AS sits atop the hierarchy: customer routes propagate up
  // to it from nearly everywhere (that is what made RouteViews feasible).
  const auto& truth = small_truth();
  const AsInfo* biggest = &truth.ases().front();
  for (const AsInfo& info : truth.ases()) {
    if (info.routers.size() > biggest->routers.size()) biggest = &info;
  }
  const BgpTable table = vantage_table(truth, relationships(), biggest->asn);
  EXPECT_GT(table_coverage(truth, table), 0.8);
}

TEST(BgpPropagation, AnyTransitBuyingVantageSeesNearlyEverything) {
  // Valley-free export hands a stub its providers' full tables, so even
  // the smallest AS receives near-complete routes — which is why a
  // single RouteViews feed already covers almost all announced space.
  const auto& truth = small_truth();
  const AsInfo* biggest = &truth.ases().front();
  const AsInfo* smallest = &truth.ases().front();
  for (const AsInfo& info : truth.ases()) {
    if (info.routers.size() > biggest->routers.size()) biggest = &info;
    if (info.routers.size() < smallest->routers.size()) smallest = &info;
  }
  const double big_coverage = table_coverage(
      truth, vantage_table(truth, relationships(), biggest->asn));
  const double small_coverage = table_coverage(
      truth, vantage_table(truth, relationships(), smallest->asn));
  EXPECT_GT(big_coverage, 0.9);
  EXPECT_GT(small_coverage, 0.9);
}

TEST(BgpPropagation, UnionImprovesCoverageMonotonically) {
  const auto& truth = small_truth();
  // Vantages in decreasing size order, like RouteViews' backbone feeds.
  std::vector<const AsInfo*> by_size;
  for (const AsInfo& info : truth.ases()) by_size.push_back(&info);
  std::sort(by_size.begin(), by_size.end(),
            [](const AsInfo* a, const AsInfo* b) {
              return a->routers.size() > b->routers.size();
            });
  std::vector<std::uint32_t> vantages;
  double previous = 0.0;
  for (std::size_t count : {1u, 4u, 12u}) {
    vantages.clear();
    for (std::size_t i = 0; i < count && i < by_size.size(); ++i) {
      vantages.push_back(by_size[i]->asn);
    }
    const double coverage = table_coverage(
        truth, route_views_union(truth, relationships(), vantages));
    EXPECT_GE(coverage, previous - 1e-12) << count;
    previous = coverage;
  }
  EXPECT_GT(previous, 0.85);
}

TEST(BgpPropagation, UnannouncedAsesNeverAppear) {
  const auto& truth = small_truth();
  std::vector<std::uint32_t> all;
  for (const AsInfo& info : truth.ases()) all.push_back(info.asn);
  const BgpTable table = route_views_union(truth, relationships(), all);
  for (const AsInfo& info : truth.ases()) {
    if (info.announced) continue;
    for (const net::Prefix& block : info.prefixes) {
      const auto origin =
          table.origin_as(net::Ipv4Addr{block.network.value + 1});
      if (origin) {
        EXPECT_NE(*origin, info.asn);
      }
    }
  }
}

TEST(BgpPropagation, ValleyFreeBlocksPeerPeerTransit) {
  // Hand-built: origin 1 is a customer of 2; 2 peers with 3; 3 has
  // customer 4 and peer 5. Routes go 1->2 (up), 2->3 (across), 3->4
  // (down). They must NOT continue across a second peering to 5.
  const std::vector<AsRelationship> rels = {
      {1, 2, AsRelation::kCustomerProvider},
      {2, 3, AsRelation::kPeerPeer},
      {4, 3, AsRelation::kCustomerProvider},
      {3, 5, AsRelation::kPeerPeer},
  };
  const auto reach = visible_at(small_truth(), rels, 1);
  EXPECT_TRUE(std::binary_search(reach.begin(), reach.end(), 2u));
  EXPECT_TRUE(std::binary_search(reach.begin(), reach.end(), 3u));
  EXPECT_TRUE(std::binary_search(reach.begin(), reach.end(), 4u));
  EXPECT_FALSE(std::binary_search(reach.begin(), reach.end(), 5u));
}

TEST(BgpPropagation, DownstreamOnlyForProviderRoutes) {
  // Origin 1 is the PROVIDER of 2; 2 has provider 3. A route learned from
  // one's provider is exported only to customers, so 3 must not hear 1's
  // routes through 2.
  const std::vector<AsRelationship> rels = {
      {2, 1, AsRelation::kCustomerProvider},  // 2 is customer of 1
      {2, 3, AsRelation::kCustomerProvider},  // 2 is customer of 3
  };
  const auto reach = visible_at(small_truth(), rels, 1);
  EXPECT_TRUE(std::binary_search(reach.begin(), reach.end(), 2u));
  EXPECT_FALSE(std::binary_search(reach.begin(), reach.end(), 3u));
}

TEST(AsPath, TrivialAndDirectPaths) {
  const std::vector<AsRelationship> rels = {
      {1, 2, AsRelation::kCustomerProvider},
  };
  const auto self = as_path(rels, 1, 1);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0], 1u);

  const auto up = as_path(rels, 1, 2);
  ASSERT_EQ(up.size(), 2u);
  EXPECT_EQ(up[0], 1u);
  EXPECT_EQ(up[1], 2u);

  const auto down = as_path(rels, 2, 1);
  ASSERT_EQ(down.size(), 2u);
  EXPECT_EQ(down[0], 2u);
  EXPECT_EQ(down[1], 1u);
}

TEST(AsPath, ClassicUpAcrossDown) {
  // 1 -> 2 (provider) -> 3 (peer) -> 4 (customer of 3).
  const std::vector<AsRelationship> rels = {
      {1, 2, AsRelation::kCustomerProvider},
      {2, 3, AsRelation::kPeerPeer},
      {4, 3, AsRelation::kCustomerProvider},
  };
  const auto path = as_path(rels, 1, 4);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], 1u);
  EXPECT_EQ(path[1], 2u);
  EXPECT_EQ(path[2], 3u);
  EXPECT_EQ(path[3], 4u);
}

TEST(AsPath, ValleyForbidden) {
  // 1 and 3 are both customers of 2... wait, that IS reachable (up then
  // down). The forbidden shape is down-then-up: 2 is the only provider
  // link of both 1 and 3, and the only path from 1 to 3 via 4 would go
  // down to 4 then up to 3 — policy forbids it.
  const std::vector<AsRelationship> rels = {
      {4, 1, AsRelation::kCustomerProvider},  // 4 is customer of 1
      {4, 3, AsRelation::kCustomerProvider},  // 4 is customer of 3
  };
  EXPECT_TRUE(as_path(rels, 1, 3).empty());  // would need a valley via 4
  // But 1 can reach 4 (down) and 4 can reach 3 (up).
  EXPECT_EQ(as_path(rels, 1, 4).size(), 2u);
  EXPECT_EQ(as_path(rels, 4, 3).size(), 2u);
}

TEST(AsPath, TwoPeeringsForbidden) {
  // 1 - 2 (peer), 2 - 3 (peer): a route may cross at most one peering.
  const std::vector<AsRelationship> rels = {
      {1, 2, AsRelation::kPeerPeer},
      {2, 3, AsRelation::kPeerPeer},
  };
  EXPECT_EQ(as_path(rels, 1, 2).size(), 2u);
  EXPECT_TRUE(as_path(rels, 1, 3).empty());
}

TEST(AsPath, PathsExistBetweenSampledScenarioAses) {
  const auto& truth = small_truth();
  const auto& rels = relationships();
  std::size_t reachable = 0;
  std::size_t total = 0;
  double hops = 0.0;
  for (std::size_t i = 0; i < 40; ++i) {
    const std::uint32_t src =
        truth.ases()[(i * 13) % truth.ases().size()].asn;
    const std::uint32_t dst =
        truth.ases()[(i * 29 + 7) % truth.ases().size()].asn;
    if (src == dst) continue;
    ++total;
    const auto path = as_path(rels, src, dst);
    if (path.empty()) continue;
    ++reachable;
    hops += static_cast<double>(path.size() - 1);
    EXPECT_EQ(path.front(), src);
    EXPECT_EQ(path.back(), dst);
  }
  ASSERT_GT(total, 30u);
  // Nearly all AS pairs are policy-reachable (default-free reachability),
  // with short AS paths (the era's BGP tables averaged ~4 hops).
  EXPECT_GT(static_cast<double>(reachable) / static_cast<double>(total), 0.9);
  EXPECT_LT(hops / static_cast<double>(reachable), 7.0);
}

}  // namespace
}  // namespace geonet::synth
