#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/density.h"
#include "core/distance_pref.h"
#include "core/hull_analysis.h"
#include "geo/region.h"
#include "net/annotated_graph.h"
#include "net/graph_io.h"
#include "obs/json.h"
#include "population/synth_population.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "store/cache.h"
#include "store/fingerprint.h"

namespace geonet::serve {
namespace {

// ---------------------------------------------------------------------------
// Shared fixtures: one small world and one hand-built US graph, reused
// across the suite (snapshot builds run the full offline analyses, so
// they are shared rather than rebuilt per test).

const population::WorldPopulation& world() {
  static const population::WorldPopulation w =
      population::WorldPopulation::build(5);
  return w;
}

/// US-resident nodes across three ASes (+ one unmapped), with enough
/// links for a non-trivial f(d). AS 1 spans a continental triangle.
net::AnnotatedGraph make_graph() {
  net::AnnotatedGraph g(net::NodeKind::kInterface, "serve-test");
  g.add_node({net::Ipv4Addr{1}, {40.7, -74.0}, 1});    // 0 New York
  g.add_node({net::Ipv4Addr{2}, {34.0, -118.2}, 1});   // 1 Los Angeles
  g.add_node({net::Ipv4Addr{3}, {47.6, -122.3}, 1});   // 2 Seattle
  g.add_node({net::Ipv4Addr{4}, {41.9, -87.6}, 2});    // 3 Chicago
  g.add_node({net::Ipv4Addr{5}, {29.8, -95.4}, 2});    // 4 Houston
  g.add_node({net::Ipv4Addr{6}, {33.7, -84.4}, 3});    // 5 Atlanta
  g.add_node({net::Ipv4Addr{7}, {25.8, -80.2}, 0});    // 6 Miami (unmapped)
  g.add_node({net::Ipv4Addr{8}, {39.7, -104.9}, 2});   // 7 Denver
  g.add_edge(0, 3);
  g.add_edge(3, 7);
  g.add_edge(7, 1);
  g.add_edge(1, 2);
  g.add_edge(4, 5);
  g.add_edge(0, 5);
  return g;
}

ServeOptions serve_options() {
  ServeOptions options;
  options.regions = {geo::regions::us()};
  return options;
}

std::shared_ptr<const ServeSnapshot> snapshot() {
  static const std::shared_ptr<const ServeSnapshot> snap = [] {
    auto result =
        ServeSnapshot::build(make_graph(), world(), serve_options());
    if (!result.is_ok()) std::abort();
    return result.value();
  }();
  return snap;
}

obs::JsonValue parse_json(const std::string& text) {
  std::string error;
  std::optional<obs::JsonValue> doc = obs::json_parse(text, &error);
  EXPECT_TRUE(doc.has_value()) << error << " in: " << text;
  return doc.has_value() ? *doc : obs::JsonValue::make_null();
}

double number_at(const obs::JsonValue& doc, std::string_view key) {
  const obs::JsonValue* v = doc.find(key);
  EXPECT_NE(v, nullptr) << "missing key " << key;
  return v == nullptr ? 0.0 : v->as_double();
}

/// JsonWriter prints ~10 significant digits, so round-tripped doubles
/// match the source values to relative 1e-9, not bit-exactly. (The
/// bit-exact pins below compare the structs, not the rendered JSON.)
void expect_json_near(double rendered, double expected) {
  EXPECT_NEAR(rendered, expected,
              std::abs(expected) * 1e-8 + 1e-9);
}

// ---------------------------------------------------------------------------
// FrameDecoder

TEST(FrameDecoder, RoundTripsFramesInOrder) {
  FrameDecoder decoder;
  decoder.feed(encode_frame("alpha") + encode_frame("") + encode_frame("g"));
  EXPECT_EQ(decoder.next(), "alpha");
  EXPECT_EQ(decoder.next(), "");
  EXPECT_EQ(decoder.next(), "g");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.bad());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoder, ReassemblesBytewiseFeeds) {
  const std::string frame = encode_frame(R"({"op":"ping"})");
  FrameDecoder decoder;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_FALSE(decoder.next().has_value()) << "complete after byte " << i;
    decoder.feed(std::string_view(&frame[i], 1));
  }
  EXPECT_EQ(decoder.next(), R"({"op":"ping"})");
}

TEST(FrameDecoder, TruncatedFrameStaysPending) {
  const std::string frame = encode_frame("payload");
  FrameDecoder decoder;
  decoder.feed(std::string_view(frame).substr(0, frame.size() - 1));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.bad());
  EXPECT_GT(decoder.buffered(), 0u);
}

TEST(FrameDecoder, OversizedDeclaredLengthPoisonsStream) {
  FrameDecoder decoder(64);
  std::string prefix;
  const std::uint32_t declared = 65;
  prefix.push_back(static_cast<char>(declared >> 24));
  prefix.push_back(static_cast<char>(declared >> 16));
  prefix.push_back(static_cast<char>(declared >> 8));
  prefix.push_back(static_cast<char>(declared));
  decoder.feed(prefix);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.bad());
  EXPECT_FALSE(decoder.error().empty());
  // Poisoned for good: more bytes never resurrect the stream.
  decoder.feed("more");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.bad());
}

TEST(FrameDecoder, MaxSizePayloadAccepted) {
  FrameDecoder decoder(64);
  const std::string payload(64, 'x');
  decoder.feed(encode_frame(payload));
  EXPECT_EQ(decoder.next(), payload);
  EXPECT_FALSE(decoder.bad());
}

// ---------------------------------------------------------------------------
// parse_request fuzz tables

TEST(ParseRequest, RejectsMalformedPayloads) {
  const char* kBad[] = {
      "",                                     // empty
      "{",                                    // truncated JSON
      "null",                                 // not an object
      "[1,2]",                                // not an object
      "42",                                   // not an object
      R"({})",                                // missing op
      R"({"op":7})",                          // op not a string
      R"({"op":"warp"})",                     // unknown op
      R"({"op":"nearest"})",                  // missing lat/lon
      R"({"op":"nearest","lat":40})",         // missing lon
      R"({"op":"nearest","lat":"x","lon":0})",// lat not a number
      R"({"op":"nearest","lat":91,"lon":0})", // lat out of range
      R"({"op":"nearest","lat":0,"lon":181})",// lon out of range
      R"({"op":"nearest","lat":1e999,"lon":0})",  // non-finite lat
      R"({"op":"nearest","lat":0,"lon":0,"k":0})",    // k below domain
      R"({"op":"nearest","lat":0,"lon":0,"k":4097})", // k above cap
      R"({"op":"within","lat":0,"lon":0})",   // missing radius
      R"({"op":"within","lat":0,"lon":0,"radius_miles":-1})",
      R"({"op":"within","lat":0,"lon":0,"radius_miles":10,"max_hits":0})",
      R"({"op":"within","lat":0,"lon":0,"radius_miles":10,"max_hits":65537})",
      R"({"op":"fd","d":100})",               // missing region
      R"({"op":"fd","region":"US"})",         // missing d
      R"({"op":"fd","region":"US","d":-5})",  // negative distance
      R"({"op":"reload"})",                   // missing fingerprint
      R"({"op":"reload","fingerprint":"abc"})",        // wrong length
      R"({"op":"reload","fingerprint":"zz345678901234567890123456789012"})",
  };
  for (const char* payload : kBad) {
    const err::Result<Request> parsed = parse_request(payload);
    EXPECT_FALSE(parsed.is_ok()) << "accepted: " << payload;
    if (!parsed.is_ok()) {
      EXPECT_EQ(parsed.status().code(), err::Code::kInvalidArgument)
          << payload;
      EXPECT_FALSE(parsed.status().message().empty()) << payload;
    }
  }
}

TEST(ParseRequest, AcceptsValidPayloads) {
  const auto ping = parse_request(R"({"op":"ping"})");
  ASSERT_TRUE(ping.is_ok());
  EXPECT_EQ(ping.value().verb, Verb::kPing);
  EXPECT_FALSE(ping.value().is_control());

  const auto nearest =
      parse_request(R"({"op":"nearest","lat":40.5,"lon":-100.25,"k":3})");
  ASSERT_TRUE(nearest.is_ok());
  EXPECT_EQ(nearest.value().verb, Verb::kNearest);
  EXPECT_DOUBLE_EQ(nearest.value().lat, 40.5);
  EXPECT_DOUBLE_EQ(nearest.value().lon, -100.25);
  EXPECT_EQ(nearest.value().k, 3u);

  const auto within = parse_request(
      R"({"op":"within","lat":0,"lon":0,"radius_miles":250,"max_hits":7})");
  ASSERT_TRUE(within.is_ok());
  EXPECT_DOUBLE_EQ(within.value().radius_miles, 250.0);
  EXPECT_EQ(within.value().max_hits, 7u);

  const auto fd = parse_request(R"({"op":"fd","region":"US","d":120})");
  ASSERT_TRUE(fd.is_ok());
  EXPECT_EQ(fd.value().region, "US");
  EXPECT_DOUBLE_EQ(fd.value().d, 120.0);

  const auto reload = parse_request(
      R"({"op":"reload","fingerprint":"0123456789abcdef0123456789abcdef"})");
  ASSERT_TRUE(reload.is_ok());
  EXPECT_TRUE(reload.value().is_control());

  const auto stats = parse_request(R"({"op":"stats"})");
  ASSERT_TRUE(stats.is_ok());
  EXPECT_TRUE(stats.value().is_control());
}

// ---------------------------------------------------------------------------
// HTTP shim parsing

TEST(HttpShim, DetectsAndCompletesRequests) {
  EXPECT_TRUE(looks_like_http("GET /ping HTTP/1.1\r\n"));
  EXPECT_TRUE(looks_like_http("GET "));
  EXPECT_FALSE(looks_like_http("\x00\x00\x00\x05hello"));
  EXPECT_FALSE(looks_like_http("POST /ping"));

  EXPECT_FALSE(has_complete_http_request("GET /ping HTTP/1.1\r\n"));
  EXPECT_TRUE(has_complete_http_request("GET /ping HTTP/1.1\r\n\r\n"));
}

TEST(HttpShim, ParsesQueryParameters) {
  const auto parsed = parse_http_request(
      "GET /nearest?lat=40.5&lon=-100.25&k=3 HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().verb, Verb::kNearest);
  EXPECT_DOUBLE_EQ(parsed.value().lat, 40.5);
  EXPECT_DOUBLE_EQ(parsed.value().lon, -100.25);
  EXPECT_EQ(parsed.value().k, 3u);

  // Percent- and plus-decoding in values.
  const auto fd = parse_http_request(
      "GET /fd?region=%55S&d=120 HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(fd.is_ok());
  EXPECT_EQ(fd.value().region, "US");
}

TEST(HttpShim, RejectsNonGetAndUnknownPaths) {
  EXPECT_FALSE(parse_http_request("POST /ping HTTP/1.1\r\n\r\n").is_ok());
  EXPECT_FALSE(parse_http_request("GET /warp HTTP/1.1\r\n\r\n").is_ok());
  EXPECT_FALSE(parse_http_request("GARBAGE\r\n\r\n").is_ok());
}

TEST(HttpShim, RendersResponses) {
  const std::string response = http_response(200, R"({"ok":true})");
  EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u);
  EXPECT_NE(response.find("Content-Length: 11"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\n{\"ok\":true}"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Snapshot differential pins: serve tables must be the offline tables.

TEST(ServeSnapshot, DensityTableMatchesOfflineAnalysis) {
  const auto snap = snapshot();
  ASSERT_EQ(snap->regions().size(), 1u);
  const ServeSnapshot::RegionTable& table = snap->regions()[0];

  // Offline run takes the brute-force path (no index): any divergence in
  // the serve tables is a real differential failure, bit for bit.
  const core::DensityAnalysis offline =
      core::analyze_density(make_graph(), world(), geo::regions::us());
  EXPECT_DOUBLE_EQ(table.density.loglog_fit.slope, offline.loglog_fit.slope);
  EXPECT_DOUBLE_EQ(table.density.loglog_fit.intercept,
                   offline.loglog_fit.intercept);
  EXPECT_DOUBLE_EQ(table.density.loglog_fit.r_squared,
                   offline.loglog_fit.r_squared);
  EXPECT_EQ(table.density.nodes_in_region, offline.nodes_in_region);
  EXPECT_EQ(table.density.occupied_patches, offline.occupied_patches);
}

TEST(ServeSnapshot, DistancePreferenceMatchesOfflineAnalysis) {
  const auto snap = snapshot();
  const core::DistancePreference& served = snap->regions()[0].fd;
  const core::DistancePreference offline = core::distance_preference(
      make_graph(), geo::regions::us(), core::DistancePrefOptions{});

  EXPECT_DOUBLE_EQ(served.bin_miles, offline.bin_miles);
  EXPECT_EQ(served.nodes, offline.nodes);
  EXPECT_EQ(served.links, offline.links);
  ASSERT_EQ(served.f.size(), offline.f.size());
  for (std::size_t b = 0; b < served.f.size(); ++b) {
    EXPECT_DOUBLE_EQ(served.f[b], offline.f[b]) << "bin " << b;
    EXPECT_EQ(served.link_hist.count(b), offline.link_hist.count(b))
        << "bin " << b;
    EXPECT_EQ(served.pair_hist.count(b), offline.pair_hist.count(b))
        << "bin " << b;
  }
}

TEST(ServeSnapshot, HullRecordsMatchOfflineAnalysis) {
  const auto snap = snapshot();
  const core::HullAnalysis offline = core::analyze_hulls(make_graph());
  ASSERT_EQ(snap->hulls().records.size(), offline.records.size());
  for (std::size_t i = 0; i < offline.records.size(); ++i) {
    EXPECT_EQ(snap->hulls().records[i].asn, offline.records[i].asn);
    EXPECT_DOUBLE_EQ(snap->hulls().records[i].hull_area_sq_miles,
                     offline.records[i].hull_area_sq_miles);
    EXPECT_EQ(snap->hulls().records[i].node_count,
              offline.records[i].node_count);
  }
}

TEST(ServeSnapshot, FdAnswerLooksUpOfflineBin) {
  const auto snap = snapshot();
  const core::DistancePreference& fd = snap->regions()[0].fd;

  Request request;
  request.verb = Verb::kFd;
  request.region = "US";
  request.d = 800.0;
  const obs::JsonValue doc = parse_json(snap->answer(request));
  EXPECT_TRUE(doc.find("ok")->as_bool());

  const std::size_t bin = fd.link_hist.bin_of(800.0);
  ASSERT_LT(bin, fd.link_hist.bin_count());
  EXPECT_EQ(static_cast<std::size_t>(number_at(doc, "bin")), bin);
  expect_json_near(number_at(doc, "f"), fd.f[bin]);
  expect_json_near(number_at(doc, "bin_center_miles"), fd.bin_center(bin));
  EXPECT_EQ(static_cast<std::uint64_t>(number_at(doc, "link_count")),
            fd.link_hist.count(bin));
}

TEST(ServeSnapshot, FdBeyondRangeAndUnknownRegion) {
  const auto snap = snapshot();
  Request request;
  request.verb = Verb::kFd;
  request.region = "US";
  request.d = 1e9;
  const obs::JsonValue beyond = parse_json(snap->answer(request));
  EXPECT_TRUE(beyond.find("beyond_range")->as_bool());
  EXPECT_DOUBLE_EQ(number_at(beyond, "f"), 0.0);

  request.region = "Atlantis";
  request.d = 100.0;
  const obs::JsonValue missing = parse_json(snap->answer(request));
  EXPECT_FALSE(missing.find("ok")->as_bool());
  EXPECT_EQ(missing.find("error")->find("code")->as_string(), "NOT_FOUND");
}

TEST(ServeSnapshot, DensityAnswerReadsPrecomputedPatch) {
  const auto snap = snapshot();
  Request request;
  request.verb = Verb::kDensity;
  request.lat = 41.9;   // Chicago's patch: exactly one node
  request.lon = -87.6;
  const obs::JsonValue doc = parse_json(snap->answer(request));
  const obs::JsonValue* rows = doc.find("regions");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->items().size(), 1u);
  const obs::JsonValue& row = rows->items()[0];
  EXPECT_EQ(row.find("region")->as_string(), "US");
  EXPECT_DOUBLE_EQ(number_at(row, "nodes"), 1.0);
  expect_json_near(number_at(row.find("fit") ? *row.find("fit") : row, "slope"),
                   snap->regions()[0].density.loglog_fit.slope);

  // A point outside every served region answers with an empty rows array.
  request.lat = 51.5;  // London
  request.lon = -0.1;
  const obs::JsonValue outside = parse_json(snap->answer(request));
  EXPECT_TRUE(outside.find("regions")->items().empty());
}

TEST(ServeSnapshot, NearestMatchesSpatialIndex) {
  const auto snap = snapshot();
  Request request;
  request.verb = Verb::kNearest;
  request.lat = 40.0;
  request.lon = -100.0;
  request.k = 3;
  const obs::JsonValue doc = parse_json(snap->answer(request));
  const auto expected =
      snap->index().nearest({40.0, -100.0}, 3);
  const obs::JsonValue* hits = doc.find("hits");
  ASSERT_NE(hits, nullptr);
  ASSERT_EQ(hits->items().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(static_cast<std::uint32_t>(
                  number_at(hits->items()[i], "id")),
              expected[i].id);
    expect_json_near(number_at(hits->items()[i], "distance_miles"),
                     expected[i].distance_miles);
  }
}

TEST(ServeSnapshot, WithinReportsCountAndTruncation) {
  const auto snap = snapshot();
  Request request;
  request.verb = Verb::kWithin;
  request.lat = 39.7;   // Denver
  request.lon = -104.9;
  request.radius_miles = 2000.0;
  request.max_hits = 2;
  const obs::JsonValue doc = parse_json(snap->answer(request));
  const auto expected =
      snap->index().within_radius({39.7, -104.9}, 2000.0);
  EXPECT_EQ(static_cast<std::size_t>(number_at(doc, "count")),
            expected.size());
  EXPECT_EQ(doc.find("truncated")->as_bool(), expected.size() > 2);
  EXPECT_EQ(doc.find("hits")->items().size(),
            std::min<std::size_t>(expected.size(), 2));
}

TEST(ServeSnapshot, AsContainmentAgreesWithHullGeometry) {
  const auto snap = snapshot();
  Request request;
  request.verb = Verb::kAs;
  request.lat = 39.7;   // Denver: inside AS 1's continental triangle
  request.lon = -104.9;
  const obs::JsonValue doc = parse_json(snap->answer(request));
  const obs::JsonValue* containing = doc.find("containing");
  ASSERT_NE(containing, nullptr);
  bool has_as1 = false;
  for (const obs::JsonValue& entry : containing->items()) {
    if (static_cast<std::uint32_t>(number_at(entry, "asn")) == 1u) {
      has_as1 = true;
      const core::AsHullRecord& record = snap->hulls().records.front();
      ASSERT_EQ(record.asn, 1u);
      expect_json_near(number_at(entry, "hull_area_sq_miles"),
                       record.hull_area_sq_miles);
    }
  }
  EXPECT_TRUE(has_as1);

  // Mid-Pacific: no AS hull contains it; nearest is still reported.
  request.lat = 30.0;
  request.lon = -160.0;
  const obs::JsonValue ocean = parse_json(snap->answer(request));
  EXPECT_TRUE(ocean.find("containing")->items().empty());
  EXPECT_NE(ocean.find("nearest"), nullptr);
}

TEST(ServeSnapshot, RejectsEmptyGraphAndControlVerbs) {
  const auto empty = ServeSnapshot::build(
      net::AnnotatedGraph(net::NodeKind::kInterface), world(),
      serve_options());
  EXPECT_FALSE(empty.is_ok());

  Request reload;
  reload.verb = Verb::kReload;
  const obs::JsonValue doc = parse_json(snapshot()->answer(reload));
  EXPECT_FALSE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("error")->find("code")->as_string(), "INTERNAL");
}

TEST(ServeSnapshot, EveryDataVerbAnswersWellFormedJson) {
  const auto snap = snapshot();
  const char* kPayloads[] = {
      R"({"op":"ping"})",
      R"({"op":"info"})",
      R"({"op":"density","lat":40.7,"lon":-74.0})",
      R"({"op":"fd","region":"US","d":500})",
      R"({"op":"nearest","lat":40,"lon":-100,"k":2})",
      R"({"op":"within","lat":40,"lon":-100,"radius_miles":900})",
      R"({"op":"as","lat":39.7,"lon":-104.9})",
  };
  for (const char* payload : kPayloads) {
    const err::Result<Request> parsed = parse_request(payload);
    ASSERT_TRUE(parsed.is_ok()) << payload;
    const obs::JsonValue doc = parse_json(snap->answer(parsed.value()));
    EXPECT_TRUE(doc.find("ok")->as_bool()) << payload;
    EXPECT_EQ(doc.find("epoch")->as_string(), snap->epoch()) << payload;
  }
}

// ---------------------------------------------------------------------------
// End-to-end over real sockets.

class ServerFixture {
 public:
  explicit ServerFixture(std::shared_ptr<const ServeSnapshot> snap,
                         store::ArtifactCache* cache = nullptr,
                         bool allow_shutdown = true) {
    ServerOptions options;
    options.port = 0;
    options.allow_shutdown = allow_shutdown;
    server_ = std::make_unique<Server>(options, std::move(snap), cache,
                                       &world(), serve_options());
    const err::Status status = server_->start();
    EXPECT_TRUE(status.is_ok()) << status.message();
    runner_ = std::thread([this] {
      const err::Status run_status = server_->run();
      EXPECT_TRUE(run_status.is_ok()) << run_status.message();
    });
  }

  ~ServerFixture() { stop(); }

  void stop() {
    if (runner_.joinable()) {
      server_->request_stop();
      runner_.join();
    }
  }

  /// Waits for run() to return on its own (shutdown verb / drain tests).
  void join() {
    if (runner_.joinable()) runner_.join();
  }

  Server& server() { return *server_; }

  Client connect() {
    Client client;
    const err::Status status =
        client.connect("127.0.0.1", server_->port());
    EXPECT_TRUE(status.is_ok()) << status.message();
    return client;
  }

 private:
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

TEST(Server, BindsEphemeralPort) {
  ServerFixture fixture(snapshot());
  EXPECT_NE(fixture.server().port(), 0);
  EXPECT_EQ(fixture.server().epoch(), snapshot()->epoch());
}

TEST(Server, AnswersByteIdenticalToSnapshot) {
  ServerFixture fixture(snapshot());
  Client client = fixture.connect();
  const char* kPayloads[] = {
      R"({"op":"ping"})",
      R"({"op":"info"})",
      R"({"op":"density","lat":41.9,"lon":-87.6})",
      R"({"op":"fd","region":"US","d":800})",
      R"({"op":"nearest","lat":40,"lon":-100,"k":3})",
      R"({"op":"within","lat":39.7,"lon":-104.9,"radius_miles":2000})",
      R"({"op":"as","lat":39.7,"lon":-104.9})",
  };
  for (const char* payload : kPayloads) {
    const err::Result<std::string> response = client.request(payload);
    ASSERT_TRUE(response.is_ok()) << payload;
    EXPECT_EQ(response.value(),
              snapshot()->answer(parse_request(payload).value()))
        << payload;
  }
}

TEST(Server, PipelinedRequestsAnswerInArrivalOrder) {
  ServerFixture fixture(snapshot());
  Client client = fixture.connect();
  std::string burst;
  for (int k = 1; k <= 5; ++k) {
    burst += encode_frame(R"({"op":"nearest","lat":40,"lon":-100,"k":)" +
                          std::to_string(k) + "}");
  }
  ASSERT_TRUE(client.send_raw(burst).is_ok());
  for (int k = 1; k <= 5; ++k) {
    const err::Result<std::string> response = client.read_response();
    ASSERT_TRUE(response.is_ok()) << "response " << k;
    const obs::JsonValue doc = parse_json(response.value());
    EXPECT_EQ(doc.find("hits")->items().size(), static_cast<std::size_t>(k));
  }
}

TEST(Server, MalformedJsonAnswersErrorAndKeepsConnection) {
  ServerFixture fixture(snapshot());
  Client client = fixture.connect();
  const err::Result<std::string> bad = client.request("{not json");
  ASSERT_TRUE(bad.is_ok());
  const obs::JsonValue doc = parse_json(bad.value());
  EXPECT_FALSE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("error")->find("code")->as_string(),
            "INVALID_ARGUMENT");

  // The stream is still framed; the connection survives.
  const err::Result<std::string> ping =
      client.request(R"({"op":"ping"})");
  ASSERT_TRUE(ping.is_ok());
  EXPECT_TRUE(parse_json(ping.value()).find("ok")->as_bool());
  EXPECT_GE(fixture.server().stats().errors, 1u);
}

TEST(Server, OversizedFrameAnswersOnceAndCloses) {
  ServerFixture fixture(snapshot());
  Client client = fixture.connect();
  std::string prefix;
  const std::uint32_t declared = kMaxFrameBytes + 1;
  prefix.push_back(static_cast<char>(declared >> 24));
  prefix.push_back(static_cast<char>(declared >> 16));
  prefix.push_back(static_cast<char>(declared >> 8));
  prefix.push_back(static_cast<char>(declared));
  ASSERT_TRUE(client.send_raw(prefix).is_ok());

  const err::Result<std::string> error_response = client.read_response();
  ASSERT_TRUE(error_response.is_ok());
  EXPECT_FALSE(parse_json(error_response.value()).find("ok")->as_bool());
  // The stream is unrecoverable: the server closes after answering.
  EXPECT_FALSE(client.read_response().is_ok());
}

TEST(Server, TruncatedFrameThenDisconnectIsHarmless) {
  ServerFixture fixture(snapshot());
  {
    Client client = fixture.connect();
    ASSERT_TRUE(client.send_raw("\x00\x00\x00\x40partial").is_ok());
  }  // disconnect with an incomplete frame pending
  // Server must survive and keep answering on a fresh connection.
  Client client = fixture.connect();
  const err::Result<std::string> ping = client.request(R"({"op":"ping"})");
  ASSERT_TRUE(ping.is_ok());
  EXPECT_TRUE(parse_json(ping.value()).find("ok")->as_bool());
}

TEST(Server, HttpShimAnswersOneGetAndCloses) {
  ServerFixture fixture(snapshot());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fixture.server().port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string request =
      "GET /nearest?lat=40&lon=-100&k=2 HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u);
  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const obs::JsonValue doc = parse_json(response.substr(body_at + 4));
  EXPECT_TRUE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("hits")->items().size(), 2u);
}

TEST(Server, HttpShimMapsErrorCodesToStatusLines) {
  ServerFixture fixture(snapshot());
  const auto http_get = [&](const std::string& path) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(fixture.server().port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    const std::string request = "GET " + path + " HTTP/1.1\r\n\r\n";
    ::send(fd, request.data(), request.size(), 0);
    std::string response;
    char buffer[4096];
    ssize_t n;
    while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
      response.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
  };
  // Unknown region and unknown path are kNotFound -> 404; an
  // out-of-domain argument is kInvalidArgument -> 400.
  EXPECT_EQ(http_get("/fd?region=Atlantis&d=5").rfind("HTTP/1.1 404", 0), 0u);
  EXPECT_EQ(http_get("/warp").rfind("HTTP/1.1 404", 0), 0u);
  EXPECT_EQ(http_get("/nearest?lat=95&lon=0").rfind("HTTP/1.1 400", 0), 0u);
}

TEST(Server, StatsVerbCountsAndShutdownVerbStops) {
  ServerFixture fixture(snapshot());
  Client client = fixture.connect();
  ASSERT_TRUE(client.request(R"({"op":"ping"})").is_ok());
  const err::Result<std::string> stats =
      client.request(R"({"op":"stats"})");
  ASSERT_TRUE(stats.is_ok());
  const obs::JsonValue doc = parse_json(stats.value());
  EXPECT_TRUE(doc.find("ok")->as_bool());
  EXPECT_GE(number_at(doc, "requests"), 1.0);
  EXPECT_EQ(static_cast<std::uint64_t>(number_at(doc, "reloads")), 0u);

  const err::Result<std::string> shutdown =
      client.request(R"({"op":"shutdown"})");
  ASSERT_TRUE(shutdown.is_ok());
  EXPECT_TRUE(parse_json(shutdown.value()).find("ok")->as_bool());
  fixture.join();  // run() must return on its own
}

TEST(Server, ShutdownVerbCanBeDisabled) {
  ServerFixture fixture(snapshot(), nullptr, /*allow_shutdown=*/false);
  Client client = fixture.connect();
  const err::Result<std::string> shutdown =
      client.request(R"({"op":"shutdown"})");
  ASSERT_TRUE(shutdown.is_ok());
  EXPECT_FALSE(parse_json(shutdown.value()).find("ok")->as_bool());
  // Still serving.
  EXPECT_TRUE(client.request(R"({"op":"ping"})").is_ok());
}

TEST(Server, ReloadWithoutCacheIsUnavailable) {
  ServerFixture fixture(snapshot());
  Client client = fixture.connect();
  const err::Result<std::string> reload = client.request(
      R"({"op":"reload","fingerprint":"0123456789abcdef0123456789abcdef"})");
  ASSERT_TRUE(reload.is_ok());
  const obs::JsonValue doc = parse_json(reload.value());
  EXPECT_FALSE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("error")->find("code")->as_string(), "UNAVAILABLE");
}

TEST(Server, DrainAnswersInFlightRequestsOnStop) {
  ServerFixture fixture(snapshot());
  Client client = fixture.connect();
  // Bytes reach the kernel buffer before the stop lands; the drain sweep
  // must still answer them.
  ASSERT_TRUE(
      client.send_raw(encode_frame(R"({"op":"ping"})")).is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  fixture.server().request_stop();
  const err::Result<std::string> response = client.read_response();
  ASSERT_TRUE(response.is_ok());
  EXPECT_TRUE(parse_json(response.value()).find("ok")->as_bool());
  fixture.join();
  EXPECT_GE(fixture.server().stats().requests, 1u);
}

// ---------------------------------------------------------------------------
// Hot swap: epochs are never torn.

std::string temp_cache_dir() {
  std::string tmpl = ::testing::TempDir() + "serve_cache_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

TEST(Server, HotSwapNeverTearsEpochs) {
  store::ArtifactCache cache(temp_cache_dir());
  const auto key_a =
      store::Digest128::parse_hex("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
  const auto key_b =
      store::Digest128::parse_hex("bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb");
  ASSERT_TRUE(key_a.has_value());
  ASSERT_TRUE(key_b.has_value());

  net::AnnotatedGraph graph_b = make_graph();
  graph_b.add_node({net::Ipv4Addr{99}, {36.1, -115.2}, 3});  // Las Vegas
  ASSERT_TRUE(
      cache.put(*key_a, net::encode_graph_snapshot(make_graph())).is_ok());
  ASSERT_TRUE(
      cache.put(*key_b, net::encode_graph_snapshot(graph_b)).is_ok());

  const auto initial =
      ServeSnapshot::from_cache(cache, *key_a, world(), serve_options());
  ASSERT_TRUE(initial.is_ok()) << initial.status().message();
  EXPECT_EQ(initial.value()->epoch(), key_a->hex());

  ServerFixture fixture(initial.value(), &cache);

  // Load thread: hammer pings; every answer must carry exactly one of
  // the two epochs (never anything else, never a transport error).
  std::atomic<bool> done{false};
  std::atomic<int> torn{0};
  std::atomic<int> answered{0};
  std::atomic<int> saw_b{0};
  std::thread load([&] {
    Client client;
    if (!client.connect("127.0.0.1", fixture.server().port()).is_ok()) {
      torn.fetch_add(1);
      return;
    }
    while (!done.load(std::memory_order_relaxed)) {
      const err::Result<std::string> response =
          client.request(R"({"op":"ping"})");
      if (!response.is_ok()) {
        torn.fetch_add(1);
        return;
      }
      const std::optional<obs::JsonValue> doc =
          obs::json_parse(response.value());
      const std::string epoch(
          doc.has_value() && doc->find("epoch") != nullptr
              ? doc->find("epoch")->as_string()
              : std::string_view{});
      if (epoch == key_b->hex()) {
        saw_b.fetch_add(1);
      } else if (epoch != key_a->hex()) {
        torn.fetch_add(1);
      }
      answered.fetch_add(1);
    }
  });

  // Let the load thread get going, then hot-swap.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Client control = fixture.connect();
  const err::Result<std::string> reload = control.request(
      R"({"op":"reload","fingerprint":")" + key_b->hex() + R"("})");
  ASSERT_TRUE(reload.is_ok());
  const obs::JsonValue reload_doc = parse_json(reload.value());
  ASSERT_TRUE(reload_doc.find("ok")->as_bool()) << reload.value();
  EXPECT_EQ(reload_doc.find("epoch")->as_string(), key_b->hex());

  // After the reload response, new requests answer from epoch B.
  const err::Result<std::string> after =
      control.request(R"({"op":"ping"})");
  ASSERT_TRUE(after.is_ok());
  EXPECT_EQ(parse_json(after.value()).find("epoch")->as_string(),
            key_b->hex());

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  done.store(true);
  load.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(answered.load(), 0);
  EXPECT_EQ(fixture.server().stats().reloads, 1u);

  // The swapped graph really is graph B: one more node than A.
  const err::Result<std::string> info =
      control.request(R"({"op":"info"})");
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(static_cast<std::size_t>(
                number_at(parse_json(info.value()), "nodes")),
            make_graph().node_count() + 1);
}

TEST(Server, ReloadUnknownFingerprintKeepsServing) {
  store::ArtifactCache cache(temp_cache_dir());
  const auto key =
      store::Digest128::parse_hex("cccccccccccccccccccccccccccccccc");
  ASSERT_TRUE(key.has_value());
  ASSERT_TRUE(
      cache.put(*key, net::encode_graph_snapshot(make_graph())).is_ok());
  const auto initial =
      ServeSnapshot::from_cache(cache, *key, world(), serve_options());
  ASSERT_TRUE(initial.is_ok());

  ServerFixture fixture(initial.value(), &cache);
  Client client = fixture.connect();
  const err::Result<std::string> reload = client.request(
      R"({"op":"reload","fingerprint":"dddddddddddddddddddddddddddddddd"})");
  ASSERT_TRUE(reload.is_ok());
  const obs::JsonValue doc = parse_json(reload.value());
  EXPECT_FALSE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("error")->find("code")->as_string(), "NOT_FOUND");

  // The old epoch keeps serving.
  const err::Result<std::string> ping = client.request(R"({"op":"ping"})");
  ASSERT_TRUE(ping.is_ok());
  EXPECT_EQ(parse_json(ping.value()).find("epoch")->as_string(),
            key->hex());
  EXPECT_EQ(fixture.server().stats().reloads, 0u);
}

}  // namespace
}  // namespace geonet::serve
