#include "stats/summary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace geonet::stats {
namespace {

TEST(Summary, BasicStatistics) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summary, EvenCountMedianInterpolates) {
  std::vector<double> xs{1, 2, 3, 10};
  EXPECT_DOUBLE_EQ(summarize(xs).median, 2.5);
}

TEST(Summary, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summary, IgnoresNonFinite) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> xs{1.0, nan, 3.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
}

TEST(Mean, HandlesEmpty) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(Quantile, OrderStatistics) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 20.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 7.5);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 2.0);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputsGiveZero) {
  std::vector<double> xs{1, 1, 1};
  std::vector<double> ys{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
  EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);
}

TEST(Pearson, IgnoresNaNPairs) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> xs{1, 2, nan, 4};
  std::vector<double> ys{2, 4, 100, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(AverageRanks, NoTies) {
  std::vector<double> xs{30, 10, 20};
  const auto ranks = average_ranks(xs);
  EXPECT_DOUBLE_EQ(ranks[0], 3.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(AverageRanks, TiesAveraged) {
  std::vector<double> xs{5, 5, 1};
  const auto ranks = average_ranks(xs);
  EXPECT_DOUBLE_EQ(ranks[0], 2.5);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 1.0);
}

TEST(Spearman, MonotoneNonlinearIsPerfect) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys{1, 8, 27, 64, 125};  // x^3: nonlinear, monotone
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
  EXPECT_LT(pearson(xs, ys), 1.0);
}

TEST(Spearman, ReversedIsMinusOne) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{4, 3, 2, 1};
  EXPECT_NEAR(spearman(xs, ys), -1.0, 1e-12);
}

}  // namespace
}  // namespace geonet::stats
