// Parameterized knob sweeps over the ground-truth grower: each option
// must move the measured world in its documented direction. These guard
// the calibration that makes the benches reproduce the paper's shapes.

#include <gtest/gtest.h>

#include <cmath>

#include "core/hull_analysis.h"
#include "geo/distance.h"
#include "core/waxman_fit.h"
#include "generators/geo_gen.h"
#include "synth/ground_truth.h"
#include "tests/test_world.h"

namespace geonet::synth {
namespace {

using geonet::testing::small_world;

GroundTruthOptions sweep_base() {
  GroundTruthOptions options;
  options.interface_scale = 0.02;
  options.seed = 4321;
  return options;
}

net::AnnotatedGraph truth_graph(const GroundTruthOptions& options) {
  const GroundTruth truth = GroundTruth::build(small_world(), options);
  return generators::topology_from_truth(truth).graph;
}

TEST(KnobSweep, StructuralLinksReduceDistanceSensitiveShare) {
  auto low = sweep_base();
  low.structural_link_probability = 0.05;
  auto high = sweep_base();
  high.structural_link_probability = 0.85;
  const auto frac = [&](const GroundTruthOptions& options) {
    return core::characterize_region(truth_graph(options), geo::regions::us())
        .fraction_links_below_limit;
  };
  EXPECT_GT(frac(low), frac(high));
}

TEST(KnobSweep, SingleSiteProbabilityConfinesSmallAses) {
  // Needs a scale where home cells hold whole small ASes; at tiny scales
  // per-cell quotas force spillover sites regardless of the knob.
  auto low = sweep_base();
  low.interface_scale = 0.08;
  low.single_site_probability = 0.1;
  auto high = sweep_base();
  high.interface_scale = 0.08;
  high.single_site_probability = 0.95;
  const auto single_site_share = [&](const GroundTruthOptions& options) {
    const GroundTruth truth = GroundTruth::build(small_world(), options);
    std::size_t singles = 0;
    std::size_t smalls = 0;
    for (const auto& info : truth.ases()) {
      if (info.routers.size() >= options.large_as_threshold) continue;
      ++smalls;
      if (info.sites.size() == 1) ++singles;
    }
    return static_cast<double>(singles) / static_cast<double>(smalls);
  };
  EXPECT_LT(single_site_share(low) + 0.2, single_site_share(high));
}

TEST(KnobSweep, AsSizeTailControlsLargestAs) {
  auto heavy = sweep_base();
  heavy.as_size_pareto_alpha = 0.7;
  auto light = sweep_base();
  light.as_size_pareto_alpha = 1.8;
  const auto biggest = [&](const GroundTruthOptions& options) {
    const GroundTruth truth = GroundTruth::build(small_world(), options);
    std::size_t max_size = 0;
    for (const auto& info : truth.ases()) {
      max_size = std::max(max_size, info.routers.size());
    }
    return max_size;
  };
  EXPECT_GT(biggest(heavy), biggest(light));
}

TEST(KnobSweep, UnannouncedFractionDrivesBgpHoles) {
  auto none = sweep_base();
  none.unannounced_fraction = 0.0;
  auto lots = sweep_base();
  lots.unannounced_fraction = 0.25;
  const auto unannounced_ases = [&](const GroundTruthOptions& options) {
    const GroundTruth truth = GroundTruth::build(small_world(), options);
    std::size_t count = 0;
    for (const auto& info : truth.ases()) {
      if (!info.announced) ++count;
    }
    return count;
  };
  EXPECT_EQ(unannounced_ases(none), 0u);
  EXPECT_GT(unannounced_ases(lots), 10u);
}

TEST(KnobSweep, InterfacesPerRouterControlsBudgetConversion) {
  auto dense = sweep_base();
  dense.interfaces_per_router = 3.0;
  auto sparse = sweep_base();
  sparse.interfaces_per_router = 9.0;
  const auto routers = [&](const GroundTruthOptions& options) {
    return GroundTruth::build(small_world(), options).topology().router_count();
  };
  EXPECT_GT(routers(dense), routers(sparse));
}

TEST(KnobSweep, ExtraIntraSiteLinksRaiseMeanDegree) {
  auto few = sweep_base();
  few.intra_site_extra_links_per_router = 0.0;
  auto many = sweep_base();
  many.intra_site_extra_links_per_router = 1.5;
  // At tiny scales most sites have 1-2 routers and extras dedup away, so
  // measure on a larger world where multi-router sites exist.
  few.interface_scale = 0.05;
  many.interface_scale = 0.05;
  many.intra_site_extra_links_per_router = 3.0;
  const auto links_per_router = [&](const GroundTruthOptions& options) {
    const GroundTruth truth = GroundTruth::build(small_world(), options);
    return static_cast<double>(truth.topology().link_count()) /
           static_cast<double>(truth.topology().router_count());
  };
  EXPECT_GT(links_per_router(many), links_per_router(few) * 1.03);
}

TEST(KnobSweep, PeeringColocationShortensInterdomainLinks) {
  auto colocated = sweep_base();
  colocated.peering_colocated_probability = 0.95;
  auto remote = sweep_base();
  remote.peering_colocated_probability = 0.0;
  const auto mean_interdomain_miles = [&](const GroundTruthOptions& options) {
    const GroundTruth truth = GroundTruth::build(small_world(), options);
    const auto& topology = truth.topology();
    double total = 0.0;
    std::size_t count = 0;
    for (const auto& link : topology.links()) {
      const auto& a = topology.interface(link.if_a);
      const auto& b = topology.interface(link.if_b);
      if (topology.router(a.router).asn == topology.router(b.router).asn) {
        continue;
      }
      total += geo::great_circle_miles(topology.router(a.router).location,
                                       topology.router(b.router).location);
      ++count;
    }
    return count == 0 ? 0.0 : total / static_cast<double>(count);
  };
  // Colocation snaps peerings to nearest site pairs; the remaining long
  // tail (single-site stubs far from any partner site) caps the effect.
  EXPECT_LT(mean_interdomain_miles(colocated),
            0.85 * mean_interdomain_miles(remote));
}

TEST(KnobSweep, MaxAsSizeCapIsRespected) {
  auto options = sweep_base();
  options.max_as_size_fraction = 0.02;
  const GroundTruth truth = GroundTruth::build(small_world(), options);
  // Budgets differ per region; check against the world's total budget as
  // a loose upper bound on the cap semantics.
  std::size_t biggest = 0;
  for (const auto& info : truth.ases()) {
    biggest = std::max(biggest, info.routers.size());
  }
  // Largest region budget ~ USA share of the scaled interface budget.
  const double usa_budget = 282048.0 * options.interface_scale /
                            options.interfaces_per_router;
  EXPECT_LT(static_cast<double>(biggest), 0.05 * usa_budget + 16.0);
}

}  // namespace
}  // namespace geonet::synth
