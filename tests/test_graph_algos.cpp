#include "net/graph_algos.h"

#include <gtest/gtest.h>

namespace geonet::net {
namespace {

Ipv4Addr addr(std::uint32_t v) { return Ipv4Addr{v}; }

/// Path topology: r0 - r1 - r2 - r3, plus a spur r1 - r4.
Topology make_path_topology() {
  Topology t;
  for (int i = 0; i < 5; ++i) {
    t.add_router({static_cast<double>(i), 0.0});
  }
  t.add_link(0, 1, addr(1), addr(2));
  t.add_link(1, 2, addr(3), addr(4));
  t.add_link(2, 3, addr(5), addr(6));
  t.add_link(1, 4, addr(7), addr(8));
  return t;
}

TEST(BfsTree, HopCountsFromSource) {
  const Topology t = make_path_topology();
  const BfsTree tree = bfs_tree(t, 0);
  EXPECT_EQ(tree.hop_count[0], 0u);
  EXPECT_EQ(tree.hop_count[1], 1u);
  EXPECT_EQ(tree.hop_count[2], 2u);
  EXPECT_EQ(tree.hop_count[3], 3u);
  EXPECT_EQ(tree.hop_count[4], 2u);
}

TEST(BfsTree, EntryInterfacesAreOnIncomingLink) {
  const Topology t = make_path_topology();
  const BfsTree tree = bfs_tree(t, 0);
  // Router 1 is entered from router 0 over link 0; its entry interface
  // must live on router 1.
  EXPECT_EQ(t.interface(tree.entry_if[1]).router, 1u);
  EXPECT_EQ(t.interface(tree.entry_if[3]).router, 3u);
}

TEST(BfsTree, ExtractPathEndpoints) {
  const Topology t = make_path_topology();
  const BfsTree tree = bfs_tree(t, 0);
  const auto path = extract_path(tree, 3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path[1], 1u);
  EXPECT_EQ(path[2], 2u);
  EXPECT_EQ(path.back(), 3u);
}

TEST(BfsTree, PathToSourceIsItself) {
  const Topology t = make_path_topology();
  const BfsTree tree = bfs_tree(t, 2);
  const auto path = extract_path(tree, 2);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path.front(), 2u);
}

TEST(BfsTree, UnreachableGivesEmptyPath) {
  Topology t;
  t.add_router({0.0, 0.0});
  t.add_router({1.0, 1.0});  // isolated
  const BfsTree tree = bfs_tree(t, 0);
  EXPECT_EQ(tree.hop_count[1], kNoParent);
  EXPECT_TRUE(extract_path(tree, 1).empty());
}

TEST(BfsTree, ShortestOfTwoRoutes) {
  Topology t;
  for (int i = 0; i < 4; ++i) t.add_router({static_cast<double>(i), 0.0});
  // Square: 0-1, 1-3, 0-2, 2-3 -> dist(0,3) == 2.
  t.add_link(0, 1, addr(1), addr(2));
  t.add_link(1, 3, addr(3), addr(4));
  t.add_link(0, 2, addr(5), addr(6));
  t.add_link(2, 3, addr(7), addr(8));
  const BfsTree tree = bfs_tree(t, 0);
  EXPECT_EQ(tree.hop_count[3], 2u);
}

AnnotatedGraph make_two_component_graph() {
  AnnotatedGraph g(NodeKind::kRouter);
  for (int i = 0; i < 6; ++i) {
    g.add_node({Ipv4Addr{0}, {static_cast<double>(i), 0.0}, 1});
  }
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);  // second component of size 2 + isolated node 5
  return g;
}

TEST(Components, CountsAndLabels) {
  const AnnotatedGraph g = make_two_component_graph();
  std::size_t count = 0;
  const auto comp = connected_components(g, &count);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_NE(comp[5], comp[3]);
}

TEST(Components, GiantComponentSize) {
  const AnnotatedGraph g = make_two_component_graph();
  EXPECT_EQ(giant_component_size(g), 3u);
}

TEST(Components, EmptyGraph) {
  const AnnotatedGraph g(NodeKind::kRouter);
  std::size_t count = 99;
  EXPECT_TRUE(connected_components(g, &count).empty());
  EXPECT_EQ(count, 0u);
  EXPECT_EQ(giant_component_size(g), 0u);
}

TEST(Components, RouterComponentsOverTopology) {
  Topology t;
  for (int i = 0; i < 4; ++i) t.add_router({0.0, 0.0});
  t.add_link(0, 1, addr(1), addr(2));
  std::size_t count = 0;
  const auto comp = router_components(t, &count);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_NE(comp[2], comp[3]);
}

TEST(MeanHops, PathGraphExact) {
  AnnotatedGraph g(NodeKind::kRouter);
  for (int i = 0; i < 4; ++i) {
    g.add_node({Ipv4Addr{0}, {static_cast<double>(i), 0.0}, 1});
  }
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  // All-pairs hop counts of a 4-path: mean = 20/12 when sampled from all
  // sources (directed pairs).
  const double mean = estimated_mean_hops(g, 1000, 1);
  EXPECT_NEAR(mean, 20.0 / 12.0, 1e-9);
}

TEST(MeanHops, EmptyAndSingleton) {
  const AnnotatedGraph empty(NodeKind::kRouter);
  EXPECT_DOUBLE_EQ(estimated_mean_hops(empty, 10, 1), 0.0);
  AnnotatedGraph one(NodeKind::kRouter);
  one.add_node({Ipv4Addr{0}, {0.0, 0.0}, 1});
  EXPECT_DOUBLE_EQ(estimated_mean_hops(one, 10, 1), 0.0);
}

}  // namespace
}  // namespace geonet::net
