#include "stats/linear_fit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "stats/rng.h"

namespace geonet::stats {
namespace {

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> xs{0, 1, 2, 3, 4};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(2.5 * x - 1.0);
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit.n, 5u);
}

TEST(LinearFit, AtEvaluatesLine) {
  const LinearFit fit{2.0, 3.0, 1.0, 2};
  EXPECT_DOUBLE_EQ(fit.at(0.0), 3.0);
  EXPECT_DOUBLE_EQ(fit.at(10.0), 23.0);
}

TEST(LinearFit, NoisyDataApproximateSlope) {
  Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    xs.push_back(x);
    ys.push_back(3.0 * x + 1.0 + rng.normal(0.0, 0.5));
  }
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 0.05);
  EXPECT_NEAR(fit.intercept, 1.0, 0.2);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LinearFit, EmptyInputIsDegenerate) {
  const LinearFit fit = fit_line({}, {});
  EXPECT_EQ(fit.n, 0u);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 0.0);
}

TEST(LinearFit, SinglePointYieldsMeanIntercept) {
  std::vector<double> xs{2.0};
  std::vector<double> ys{7.0};
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_EQ(fit.n, 1u);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 7.0);
}

TEST(LinearFit, ZeroVarianceX) {
  std::vector<double> xs{3.0, 3.0, 3.0};
  std::vector<double> ys{1.0, 2.0, 3.0};
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
  EXPECT_DOUBLE_EQ(fit.r_squared, 0.0);
}

TEST(LinearFit, SkipsNonFinitePoints) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> xs{0, 1, nan, 3, 4};
  std::vector<double> ys{0, 2, 4, inf, 8};
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_EQ(fit.n, 3u);  // points 0, 1, 4 survive
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
}

TEST(LinearFit, MismatchedLengthsUseShorter) {
  std::vector<double> xs{0, 1, 2, 3, 4, 5, 6};
  std::vector<double> ys{1, 3, 5};
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_EQ(fit.n, 3u);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
}

TEST(LinearFitWeighted, ZeroWeightExcludesPoint) {
  std::vector<double> xs{0, 1, 2, 100};
  std::vector<double> ys{0, 1, 2, -50};
  std::vector<double> ws{1, 1, 1, 0};
  const LinearFit fit = fit_line_weighted(xs, ys, ws);
  EXPECT_EQ(fit.n, 3u);
  EXPECT_NEAR(fit.slope, 1.0, 1e-12);
}

TEST(LinearFitWeighted, HeavyWeightDominates) {
  // Two clusters: slope-1 points with tiny weight, flat points heavy.
  std::vector<double> xs{0, 1, 2, 3};
  std::vector<double> ys{0, 1, 5, 5};
  std::vector<double> ws{0.001, 0.001, 1000, 1000};
  const LinearFit fit = fit_line_weighted(xs, ys, ws);
  EXPECT_NEAR(fit.slope, 0.0, 0.05);
}

TEST(LinearFit, NegativeSlope) {
  std::vector<double> xs{0, 1, 2, 3};
  std::vector<double> ys{9, 7, 5, 3};
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, -2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 9.0, 1e-12);
}

}  // namespace
}  // namespace geonet::stats
