#include "core/as_analysis.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/topology.h"
#include "tests/test_world.h"

namespace geonet::core {
namespace {

/// Hand-built graph: AS 1 has 3 nodes in 2 locations; AS 2 has 2 nodes in
/// 1 location; AS 3 has 1 node; plus an unmapped node (asn 0).
/// AS edges: 1-2, 1-3 -> degrees 2, 1, 1.
net::AnnotatedGraph make_as_graph() {
  net::AnnotatedGraph g(net::NodeKind::kInterface, "handmade");
  g.add_node({net::Ipv4Addr{1}, {40.0, -74.0}, 1});   // 0
  g.add_node({net::Ipv4Addr{2}, {40.0, -74.0}, 1});   // 1 same loc
  g.add_node({net::Ipv4Addr{3}, {34.0, -118.0}, 1});  // 2
  g.add_node({net::Ipv4Addr{4}, {41.9, -87.6}, 2});   // 3
  g.add_node({net::Ipv4Addr{5}, {41.9, -87.6}, 2});   // 4
  g.add_node({net::Ipv4Addr{6}, {47.6, -122.3}, 3});  // 5
  g.add_node({net::Ipv4Addr{7}, {33.7, -84.4}, 0});   // 6 unmapped
  g.add_edge(0, 1);  // intra AS 1
  g.add_edge(1, 3);  // AS 1 - AS 2
  g.add_edge(2, 5);  // AS 1 - AS 3
  g.add_edge(4, 6);  // AS 2 - unmapped: ignored for degrees
  return g;
}

const AsRecord* find_as(const AsSizeAnalysis& a, std::uint32_t asn) {
  const auto it = std::find_if(a.records.begin(), a.records.end(),
                               [&](const AsRecord& r) { return r.asn == asn; });
  return it == a.records.end() ? nullptr : &*it;
}

TEST(AsAnalysis, CountsPerAs) {
  const auto analysis = analyze_as_sizes(make_as_graph());
  ASSERT_EQ(analysis.records.size(), 3u);  // unmapped bucket omitted

  const AsRecord* as1 = find_as(analysis, 1);
  ASSERT_NE(as1, nullptr);
  EXPECT_EQ(as1->node_count, 3u);
  EXPECT_EQ(as1->location_count, 2u);
  EXPECT_EQ(as1->degree, 2u);

  const AsRecord* as2 = find_as(analysis, 2);
  ASSERT_NE(as2, nullptr);
  EXPECT_EQ(as2->node_count, 2u);
  EXPECT_EQ(as2->location_count, 1u);
  EXPECT_EQ(as2->degree, 1u);

  const AsRecord* as3 = find_as(analysis, 3);
  ASSERT_NE(as3, nullptr);
  EXPECT_EQ(as3->node_count, 1u);
  EXPECT_EQ(as3->location_count, 1u);
  EXPECT_EQ(as3->degree, 1u);
}

TEST(AsAnalysis, RecordsSortedByAsn) {
  const auto analysis = analyze_as_sizes(make_as_graph());
  for (std::size_t i = 1; i < analysis.records.size(); ++i) {
    EXPECT_LT(analysis.records[i - 1].asn, analysis.records[i].asn);
  }
}

TEST(AsAnalysis, ParallelAsEdgesCountOnce) {
  auto g = make_as_graph();
  // A second physical link between AS1 and AS2 must not raise degree.
  g.add_edge(0, 4);
  const auto analysis = analyze_as_sizes(g);
  EXPECT_EQ(find_as(analysis, 1)->degree, 2u);
  EXPECT_EQ(find_as(analysis, 2)->degree, 1u);
}

TEST(AsAnalysis, EmptyGraph) {
  const net::AnnotatedGraph g(net::NodeKind::kInterface);
  const auto analysis = analyze_as_sizes(g);
  EXPECT_TRUE(analysis.records.empty());
  EXPECT_DOUBLE_EQ(analysis.corr_nodes_locations, 0.0);
}

TEST(AsAnalysis, VectorsAlignWithRecords) {
  const auto analysis = analyze_as_sizes(make_as_graph());
  const auto nodes = analysis.node_counts();
  const auto locs = analysis.location_counts();
  const auto degs = analysis.degrees();
  ASSERT_EQ(nodes.size(), analysis.records.size());
  for (std::size_t i = 0; i < analysis.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(nodes[i], analysis.records[i].node_count);
    EXPECT_DOUBLE_EQ(locs[i], analysis.records[i].location_count);
    EXPECT_DOUBLE_EQ(degs[i], analysis.records[i].degree);
  }
}

TEST(AsAnalysis, LocationQuantumMatters) {
  net::AnnotatedGraph g(net::NodeKind::kInterface);
  g.add_node({net::Ipv4Addr{1}, {40.00, -74.00}, 1});
  g.add_node({net::Ipv4Addr{2}, {40.30, -74.30}, 1});
  EXPECT_EQ(analyze_as_sizes(g, 0.01).records.front().location_count, 2u);
  EXPECT_EQ(analyze_as_sizes(g, 5.0).records.front().location_count, 1u);
}

TEST(AsAnalysis, ScenarioSizesAreLongTailedAndCorrelated) {
  // Section VI.A on the full pipeline output.
  const auto& s = testing::small_scenario();
  const auto analysis = analyze_as_sizes(
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper));
  ASSERT_GT(analysis.records.size(), 50u);

  // All three pairwise correlations positive and meaningful.
  EXPECT_GT(analysis.corr_nodes_locations, 0.5);
  EXPECT_GT(analysis.corr_nodes_degree, 0.3);
  EXPECT_GT(analysis.corr_locations_degree, 0.3);

  // Long tails: CCDF tail exponents clearly negative, and max >> median.
  EXPECT_LT(analysis.tail_nodes.slope, -0.5);
  EXPECT_LT(analysis.tail_locations.slope, -0.5);
  std::size_t max_nodes = 0;
  for (const auto& r : analysis.records) {
    max_nodes = std::max(max_nodes, r.node_count);
  }
  EXPECT_GT(max_nodes, 50u);
}

TEST(AsAnalysis, StrongestCorrelationIsNodesVsLocations) {
  // Figure 8: the tightest scatter is interfaces vs locations.
  const auto& s = testing::small_scenario();
  const auto analysis = analyze_as_sizes(
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper));
  EXPECT_GE(analysis.corr_nodes_locations, analysis.corr_nodes_degree - 0.05);
  EXPECT_GE(analysis.corr_nodes_locations,
            analysis.corr_locations_degree - 0.05);
}

}  // namespace
}  // namespace geonet::core
