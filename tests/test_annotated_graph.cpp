#include "net/annotated_graph.h"

#include <gtest/gtest.h>

namespace geonet::net {
namespace {

GraphNode node_at(double lat, double lon, std::uint32_t asn = 1) {
  return {Ipv4Addr{0}, {lat, lon}, asn};
}

TEST(AnnotatedGraph, KindAndName) {
  const AnnotatedGraph g(NodeKind::kInterface, "Skitter+IxMapper");
  EXPECT_EQ(g.kind(), NodeKind::kInterface);
  EXPECT_EQ(g.name(), "Skitter+IxMapper");
  EXPECT_STREQ(to_string(NodeKind::kInterface), "interface");
  EXPECT_STREQ(to_string(NodeKind::kRouter), "router");
}

TEST(AnnotatedGraph, AddNodesSequentialIds) {
  AnnotatedGraph g(NodeKind::kRouter);
  EXPECT_EQ(g.add_node(node_at(1, 1)), 0u);
  EXPECT_EQ(g.add_node(node_at(2, 2)), 1u);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_DOUBLE_EQ(g.node(1).location.lat_deg, 2.0);
}

TEST(AnnotatedGraph, EdgeDeduplication) {
  AnnotatedGraph g(NodeKind::kRouter);
  g.add_node(node_at(0, 0));
  g.add_node(node_at(1, 1));
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));  // undirected duplicate
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(AnnotatedGraph, SelfLoopsRejected) {
  AnnotatedGraph g(NodeKind::kInterface);
  g.add_node(node_at(0, 0));
  EXPECT_FALSE(g.add_edge(0, 0));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(AnnotatedGraph, OutOfRangeEdgeRejected) {
  AnnotatedGraph g(NodeKind::kInterface);
  g.add_node(node_at(0, 0));
  EXPECT_FALSE(g.add_edge(0, 5));
  EXPECT_FALSE(g.add_edge(7, 9));
}

TEST(AnnotatedGraph, EdgesStoredCanonically) {
  AnnotatedGraph g(NodeKind::kRouter);
  g.add_node(node_at(0, 0));
  g.add_node(node_at(1, 1));
  g.add_edge(1, 0);
  EXPECT_EQ(g.edges().front().a, 0u);
  EXPECT_EQ(g.edges().front().b, 1u);
}

TEST(AnnotatedGraph, HasEdgeQueries) {
  AnnotatedGraph g(NodeKind::kRouter);
  g.add_node(node_at(0, 0));
  g.add_node(node_at(1, 1));
  g.add_node(node_at(2, 2));
  g.add_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(0, 99));
}

TEST(AnnotatedGraph, DegreesCount) {
  AnnotatedGraph g(NodeKind::kRouter);
  for (int i = 0; i < 4; ++i) g.add_node(node_at(i, i));
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  const auto deg = g.degrees();
  EXPECT_EQ(deg[0], 3u);
  EXPECT_EQ(deg[1], 1u);
  EXPECT_EQ(deg[2], 1u);
  EXPECT_EQ(deg[3], 1u);
}

TEST(AnnotatedGraph, LocationsInNodeOrder) {
  AnnotatedGraph g(NodeKind::kInterface);
  g.add_node(node_at(5, 6));
  g.add_node(node_at(7, 8));
  const auto locs = g.locations();
  ASSERT_EQ(locs.size(), 2u);
  EXPECT_DOUBLE_EQ(locs[0].lat_deg, 5.0);
  EXPECT_DOUBLE_EQ(locs[1].lon_deg, 8.0);
}

}  // namespace
}  // namespace geonet::net
