#include "geo/box_counting.h"

#include <gtest/gtest.h>

#include <vector>

#include "stats/rng.h"

namespace geonet::geo {
namespace {

TEST(BoxCounting, CountBoxesSinglePoint) {
  const std::vector<GeoPoint> pts{{40.0, -100.0}};
  const BoxCount bc = count_boxes(pts, regions::us(), 75.0);
  EXPECT_EQ(bc.occupied_boxes, 1u);
}

TEST(BoxCounting, FinerBoxesNeverFewer) {
  stats::Rng rng(3);
  std::vector<GeoPoint> pts;
  for (int i = 0; i < 2000; ++i) {
    pts.push_back({rng.uniform(26.0, 49.0), rng.uniform(-149.0, -46.0)});
  }
  const auto coarse = count_boxes(pts, regions::us(), 300.0);
  const auto fine = count_boxes(pts, regions::us(), 75.0);
  EXPECT_GE(fine.occupied_boxes, coarse.occupied_boxes);
}

TEST(BoxCounting, UniformCloudHasDimensionNearTwo) {
  stats::Rng rng(4);
  std::vector<GeoPoint> pts;
  for (int i = 0; i < 60000; ++i) {
    pts.push_back({rng.uniform(26.0, 49.0), rng.uniform(-149.0, -46.0)});
  }
  const auto result =
      box_counting_dimension(pts, regions::us(), 60.0, 960.0, 5);
  EXPECT_NEAR(result.dimension, 2.0, 0.25);
  EXPECT_GT(result.fit.r_squared, 0.95);
}

TEST(BoxCounting, LineOfPointsHasDimensionNearOne) {
  std::vector<GeoPoint> pts;
  for (int i = 0; i < 20000; ++i) {
    const double t = static_cast<double>(i) / 20000.0;
    pts.push_back({30.0 + 18.0 * t, -140.0 + 90.0 * t});
  }
  const auto result =
      box_counting_dimension(pts, regions::us(), 30.0, 960.0, 6);
  EXPECT_NEAR(result.dimension, 1.0, 0.2);
}

TEST(BoxCounting, SinglePointHasDimensionNearZero) {
  const std::vector<GeoPoint> pts{{40.0, -100.0}};
  const auto result = box_counting_dimension(pts, regions::us());
  EXPECT_NEAR(result.dimension, 0.0, 1e-9);
}

TEST(BoxCounting, SweepRecordsAllScales) {
  stats::Rng rng(5);
  std::vector<GeoPoint> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back({rng.uniform(26.0, 49.0), rng.uniform(-149.0, -46.0)});
  }
  const auto result =
      box_counting_dimension(pts, regions::us(), 15.0, 960.0, 7);
  EXPECT_EQ(result.sweep.size(), 7u);
  for (const auto& bc : result.sweep) {
    EXPECT_GT(bc.occupied_boxes, 0u);
    EXPECT_LE(bc.occupied_boxes, 100u);
  }
}

TEST(BoxCounting, InvalidParametersDegenerate) {
  const std::vector<GeoPoint> pts{{40.0, -100.0}};
  EXPECT_DOUBLE_EQ(
      box_counting_dimension(pts, regions::us(), 100.0, 50.0, 5).dimension,
      0.0);
  EXPECT_DOUBLE_EQ(
      box_counting_dimension(pts, regions::us(), 15.0, 960.0, 1).dimension,
      0.0);
}

}  // namespace
}  // namespace geonet::geo
