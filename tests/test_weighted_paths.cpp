#include "net/weighted_paths.h"

#include <gtest/gtest.h>

#include "generators/common.h"
#include "generators/geo_gen.h"
#include "net/topology.h"
#include "tests/test_world.h"

namespace geonet::net {
namespace {

/// Weighted square: 0-1 (1ms), 1-3 (1ms), 0-2 (5ms), 2-3 (1ms),
/// plus direct 0-3 (10ms). Shortest 0->3 goes via 1 (2ms).
AnnotatedGraph square_graph() {
  AnnotatedGraph g(NodeKind::kRouter, "square");
  for (int i = 0; i < 4; ++i) {
    g.add_node({Ipv4Addr{0}, {static_cast<double>(i), 0.0}, 1});
  }
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  return g;
}

const std::vector<double> kSquareWeights{1.0, 1.0, 5.0, 1.0, 10.0};

TEST(WeightedPaths, DijkstraFindsCheapestRoute) {
  const AnnotatedGraph g = square_graph();
  const WeightedGraph wg(g, kSquareWeights);
  const auto paths = wg.dijkstra(0);
  EXPECT_DOUBLE_EQ(paths.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(paths.distance[1], 1.0);
  EXPECT_DOUBLE_EQ(paths.distance[2], 3.0);  // 0-1-3-2 beats direct 0-2
  EXPECT_DOUBLE_EQ(paths.distance[3], 2.0);
}

TEST(WeightedPaths, ExtractPathSequence) {
  const AnnotatedGraph g = square_graph();
  const WeightedGraph wg(g, kSquareWeights);
  const auto paths = wg.dijkstra(0);
  const auto route = WeightedGraph::extract_path(paths, 0, 3);
  ASSERT_EQ(route.size(), 3u);
  EXPECT_EQ(route[0], 0u);
  EXPECT_EQ(route[1], 1u);
  EXPECT_EQ(route[2], 3u);
}

TEST(WeightedPaths, UnreachableNode) {
  AnnotatedGraph g = square_graph();
  g.add_node({Ipv4Addr{0}, {9.0, 9.0}, 1});  // isolated
  std::vector<double> weights = kSquareWeights;
  const WeightedGraph wg(g, weights);
  const auto paths = wg.dijkstra(0);
  EXPECT_EQ(paths.distance[4], WeightedGraph::kUnreachable);
  EXPECT_TRUE(WeightedGraph::extract_path(paths, 0, 4).empty());
}

TEST(WeightedPaths, ZeroAndNegativeWeightsClamped) {
  AnnotatedGraph g(NodeKind::kRouter);
  g.add_node({Ipv4Addr{0}, {0, 0}, 1});
  g.add_node({Ipv4Addr{0}, {1, 1}, 1});
  g.add_edge(0, 1);
  const std::vector<double> weights{-3.0};
  const WeightedGraph wg(g, weights);
  const auto paths = wg.dijkstra(0);
  EXPECT_DOUBLE_EQ(paths.distance[1], 0.0);  // clamped to zero, no blowup
}

TEST(WeightedPaths, MissingWeightsDefaultToHopCount) {
  const AnnotatedGraph g = square_graph();
  const WeightedGraph wg(g, {});
  const auto paths = wg.dijkstra(0);
  EXPECT_DOUBLE_EQ(paths.distance[3], 1.0);  // the direct edge
}

TEST(WeightedPaths, InvalidSourceYieldsAllUnreachable) {
  const AnnotatedGraph g = square_graph();
  const WeightedGraph wg(g, kSquareWeights);
  const auto paths = wg.dijkstra(99);
  for (const double d : paths.distance) {
    EXPECT_EQ(d, WeightedGraph::kUnreachable);
  }
}

TEST(LatencyStretch, GeneratedTopologyRoutesReasonably) {
  generators::GeoGeneratorOptions options;
  options.router_count = 1500;
  const auto topo = generators::generate_geo_topology(
      geonet::testing::small_world(), options);
  const StretchStats stats =
      latency_stretch(topo.graph, topo.link_latency_ms, 40, 7);
  ASSERT_GT(stats.pairs, 200u);
  // Path latency can never beat straight-line propagation at the same
  // circuity factor...
  EXPECT_GE(stats.median, 1.0 - 1e-9);
  // ...and a sane topology should not detour by orders of magnitude.
  EXPECT_LT(stats.median, 8.0);
  EXPECT_GE(stats.p95, stats.median);
}

TEST(LatencyStretch, DegenerateInputs) {
  const AnnotatedGraph empty(NodeKind::kRouter);
  EXPECT_EQ(latency_stretch(empty, {}, 4, 1).pairs, 0u);
}

}  // namespace
}  // namespace geonet::net
