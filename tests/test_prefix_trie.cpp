#include "net/prefix_trie.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stats/rng.h"

namespace geonet::net {
namespace {

TEST(PrefixTrie, EmptyTrieMatchesNothing) {
  const PrefixTrie trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.longest_match(*parse_ipv4("1.2.3.4")).has_value());
}

TEST(PrefixTrie, ExactPrefixLookup) {
  PrefixTrie trie;
  trie.insert(*parse_prefix("10.0.0.0/8"), 100);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.exact_match(*parse_prefix("10.0.0.0/8")).value(), 100u);
  EXPECT_FALSE(trie.exact_match(*parse_prefix("10.0.0.0/9")).has_value());
  EXPECT_FALSE(trie.exact_match(*parse_prefix("11.0.0.0/8")).has_value());
}

TEST(PrefixTrie, LongestMatchWins) {
  PrefixTrie trie;
  trie.insert(*parse_prefix("10.0.0.0/8"), 1);
  trie.insert(*parse_prefix("10.1.0.0/16"), 2);
  trie.insert(*parse_prefix("10.1.2.0/24"), 3);

  EXPECT_EQ(trie.longest_match(*parse_ipv4("10.1.2.3")).value(), 3u);
  EXPECT_EQ(trie.longest_match(*parse_ipv4("10.1.9.9")).value(), 2u);
  EXPECT_EQ(trie.longest_match(*parse_ipv4("10.200.0.1")).value(), 1u);
  EXPECT_FALSE(trie.longest_match(*parse_ipv4("11.0.0.1")).has_value());
}

TEST(PrefixTrie, MatchEntryReportsPrefix) {
  PrefixTrie trie;
  trie.insert(*parse_prefix("192.0.2.0/24"), 7);
  const auto match = trie.longest_match_entry(*parse_ipv4("192.0.2.200"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(to_string(match->prefix), "192.0.2.0/24");
  EXPECT_EQ(match->value, 7u);
}

TEST(PrefixTrie, DefaultRouteCatchesAll) {
  PrefixTrie trie;
  trie.insert(*parse_prefix("0.0.0.0/0"), 42);
  trie.insert(*parse_prefix("8.8.8.0/24"), 8);
  EXPECT_EQ(trie.longest_match(*parse_ipv4("1.1.1.1")).value(), 42u);
  EXPECT_EQ(trie.longest_match(*parse_ipv4("8.8.8.8")).value(), 8u);
}

TEST(PrefixTrie, HostRoute) {
  PrefixTrie trie;
  trie.insert(*parse_prefix("5.5.5.5/32"), 55);
  EXPECT_EQ(trie.longest_match(*parse_ipv4("5.5.5.5")).value(), 55u);
  EXPECT_FALSE(trie.longest_match(*parse_ipv4("5.5.5.4")).has_value());
}

TEST(PrefixTrie, ReinsertOverwrites) {
  PrefixTrie trie;
  trie.insert(*parse_prefix("10.0.0.0/8"), 1);
  trie.insert(*parse_prefix("10.0.0.0/8"), 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.longest_match(*parse_ipv4("10.0.0.1")).value(), 2u);
}

TEST(PrefixTrie, SiblingPrefixesDoNotInterfere) {
  PrefixTrie trie;
  trie.insert(*parse_prefix("128.0.0.0/1"), 1);
  trie.insert(*parse_prefix("0.0.0.0/1"), 0);
  EXPECT_EQ(trie.longest_match(*parse_ipv4("200.0.0.1")).value(), 1u);
  EXPECT_EQ(trie.longest_match(*parse_ipv4("100.0.0.1")).value(), 0u);
}

TEST(PrefixTrie, EntriesReturnsAllInserted) {
  PrefixTrie trie;
  trie.insert(*parse_prefix("10.0.0.0/8"), 1);
  trie.insert(*parse_prefix("10.1.0.0/16"), 2);
  trie.insert(*parse_prefix("192.0.2.0/24"), 3);
  const auto entries = trie.entries();
  ASSERT_EQ(entries.size(), 3u);
  std::vector<std::string> texts;
  for (const auto& e : entries) texts.push_back(to_string(e.prefix));
  EXPECT_NE(std::find(texts.begin(), texts.end(), "10.0.0.0/8"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "10.1.0.0/16"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "192.0.2.0/24"), texts.end());
}

// Property test: the trie agrees with a brute-force linear scan on random
// prefixes and queries.
TEST(PrefixTrie, AgreesWithLinearScanOnRandomData) {
  stats::Rng rng(1234);
  PrefixTrie trie;
  std::vector<std::pair<Prefix, std::uint32_t>> table;
  for (std::uint32_t i = 0; i < 500; ++i) {
    const Prefix p = normalized(
        {Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
         static_cast<std::uint8_t>(rng.uniform_index(25) + 8)});
    trie.insert(p, i);
    // Mirror overwrite semantics in the reference table.
    auto it = std::find_if(table.begin(), table.end(),
                           [&](const auto& e) { return e.first == p; });
    if (it != table.end()) {
      it->second = i;
    } else {
      table.emplace_back(p, i);
    }
  }
  for (int q = 0; q < 2000; ++q) {
    const Ipv4Addr addr{static_cast<std::uint32_t>(rng.next_u64())};
    std::optional<std::uint32_t> expected;
    int best_len = -1;
    for (const auto& [prefix, value] : table) {
      if (contains(prefix, addr) && prefix.length > best_len) {
        best_len = prefix.length;
        expected = value;
      }
    }
    EXPECT_EQ(trie.longest_match(addr), expected) << to_string(addr);
  }
}

}  // namespace
}  // namespace geonet::net
