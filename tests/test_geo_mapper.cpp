#include "synth/geo_mapper.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geo/distance.h"

namespace geonet::synth {
namespace {

std::vector<geo::GeoPoint> test_cities() {
  return {{40.7, -74.0},   // New York
          {34.05, -118.2}, // Los Angeles
          {41.9, -87.6},   // Chicago
          {51.5, -0.13},   // London
          {35.68, 139.7}}; // Tokyo
}

TEST(CityIndex, NearestFindsObviousCity) {
  const CityIndex index(test_cities());
  const auto ny = index.nearest({40.8, -73.9});
  ASSERT_TRUE(ny.has_value());
  EXPECT_EQ(*ny, 0u);
  const auto tokyo = index.nearest({36.0, 140.0});
  ASSERT_TRUE(tokyo.has_value());
  EXPECT_EQ(*tokyo, 4u);
}

TEST(CityIndex, EmptyDatabase) {
  const CityIndex index({});
  EXPECT_FALSE(index.nearest({0.0, 0.0}).has_value());
}

TEST(CityIndex, AgreesWithLinearScan) {
  stats::Rng rng(4);
  std::vector<geo::GeoPoint> cities;
  for (int i = 0; i < 500; ++i) {
    cities.push_back({rng.uniform(-60.0, 60.0), rng.uniform(-180.0, 180.0)});
  }
  const CityIndex index(cities);
  for (int q = 0; q < 200; ++q) {
    const geo::GeoPoint p{rng.uniform(-60.0, 60.0),
                          rng.uniform(-180.0, 180.0)};
    const auto got = index.nearest(p);
    ASSERT_TRUE(got.has_value());
    double best = 1e18;
    std::size_t expected = 0;
    for (std::size_t i = 0; i < cities.size(); ++i) {
      const double d = geo::great_circle_miles(p, cities[i]);
      if (d < best) {
        best = d;
        expected = i;
      }
    }
    EXPECT_NEAR(geo::great_circle_miles(p, cities[*got]), best, 1e-9);
    (void)expected;
  }
}

TEST(GeoMapper, DeterministicPerAddress) {
  const GeoMapper mapper(GeoMapper::ixmapper_profile(), test_cities(), 1);
  const net::Ipv4Addr addr{0x08080808};
  const geo::GeoPoint loc{40.8, -73.9};
  const geo::GeoPoint home{34.0, -118.0};
  const auto first = mapper.map(addr, loc, home);
  for (int i = 0; i < 20; ++i) {
    const auto again = mapper.map(addr, loc, home);
    ASSERT_EQ(first.has_value(), again.has_value());
    if (first) {
      EXPECT_DOUBLE_EQ(first->lat_deg, again->lat_deg);
      EXPECT_DOUBLE_EQ(first->lon_deg, again->lon_deg);
    }
  }
}

TEST(GeoMapper, PrivateAddressesAlwaysUnmapped) {
  const GeoMapper mapper(GeoMapper::edgescape_profile(), test_cities(), 2);
  EXPECT_FALSE(mapper.map(*net::parse_ipv4("10.1.2.3"), {40.7, -74.0},
                          {40.7, -74.0})
                   .has_value());
  EXPECT_FALSE(mapper.map(*net::parse_ipv4("192.168.0.1"), {40.7, -74.0},
                          {40.7, -74.0})
                   .has_value());
}

TEST(GeoMapper, FailureRateApproximatelyHonoured) {
  MapperProfile profile = GeoMapper::ixmapper_profile();
  profile.failure_rate = 0.2;
  profile.hq_error_rate = 0.0;
  const GeoMapper mapper(profile, test_cities(), 3);
  int failures = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const net::Ipv4Addr addr{0x01000000u + static_cast<std::uint32_t>(i)};
    if (!mapper.map(addr, {40.7, -74.0}, {40.7, -74.0})) ++failures;
  }
  EXPECT_NEAR(static_cast<double>(failures) / kN, 0.2, 0.02);
}

TEST(GeoMapper, CitySnapReturnsExactCityCoordinates) {
  MapperProfile profile = GeoMapper::ixmapper_profile();
  profile.failure_rate = 0.0;
  profile.hq_error_rate = 0.0;
  const GeoMapper mapper(profile, test_cities(), 4);
  const auto mapped = mapper.map(*net::parse_ipv4("8.8.8.8"),
                                 {41.0, -73.5},  // near New York
                                 {34.0, -118.0});
  ASSERT_TRUE(mapped.has_value());
  EXPECT_DOUBLE_EQ(mapped->lat_deg, 40.7);
  EXPECT_DOUBLE_EQ(mapped->lon_deg, -74.0);
}

TEST(GeoMapper, HqErrorMapsToHomeCity) {
  MapperProfile profile = GeoMapper::ixmapper_profile();
  profile.failure_rate = 0.0;
  profile.hq_error_rate = 1.0;  // always whois fallback
  const GeoMapper mapper(profile, test_cities(), 5);
  const auto mapped = mapper.map(*net::parse_ipv4("8.8.4.4"),
                                 {40.8, -73.9},    // physically in New York
                                 {34.1, -118.1});  // org registered in LA
  ASSERT_TRUE(mapped.has_value());
  EXPECT_DOUBLE_EQ(mapped->lat_deg, 34.05);  // snapped to LA
}

TEST(GeoMapper, PreciseModeQuantizesTrueLocation) {
  MapperProfile profile = GeoMapper::edgescape_profile();
  profile.failure_rate = 0.0;
  profile.hq_error_rate = 0.0;
  profile.precise_rate = 1.0;
  profile.precise_quantum_deg = 0.05;
  const GeoMapper mapper(profile, test_cities(), 6);
  const auto mapped = mapper.map(*net::parse_ipv4("9.9.9.9"),
                                 {40.813, -73.928}, {40.7, -74.0});
  ASSERT_TRUE(mapped.has_value());
  EXPECT_NEAR(mapped->lat_deg, 40.80, 1e-9);
  EXPECT_NEAR(mapped->lon_deg, -73.95, 1e-9);
}

TEST(GeoMapper, ProfilesMatchPaperFailureRates) {
  const MapperProfile ix = GeoMapper::ixmapper_profile();
  const MapperProfile es = GeoMapper::edgescape_profile();
  EXPECT_EQ(ix.name, "IxMapper");
  EXPECT_EQ(es.name, "EdgeScape");
  // Section III.B: IxMapper misses 1-1.5%, EdgeScape 0.3-0.6%.
  EXPECT_GT(ix.failure_rate, es.failure_rate);
  EXPECT_LE(ix.failure_rate, 0.015);
  EXPECT_LE(es.failure_rate, 0.006);
}

}  // namespace
}  // namespace geonet::synth
