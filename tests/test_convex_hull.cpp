#include "geo/convex_hull.h"

#include <gtest/gtest.h>

#include <vector>

#include "stats/rng.h"

namespace geonet::geo {
namespace {

TEST(ConvexHull, EmptyAndTinyInputs) {
  EXPECT_TRUE(convex_hull({}).empty());

  const std::vector<PlanarPoint> one{{1.0, 2.0}};
  EXPECT_EQ(convex_hull(one).size(), 1u);

  const std::vector<PlanarPoint> two{{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_EQ(convex_hull(two).size(), 2u);
}

TEST(ConvexHull, DuplicatesCollapse) {
  const std::vector<PlanarPoint> pts{{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  EXPECT_EQ(convex_hull(pts).size(), 1u);
}

TEST(ConvexHull, CollinearPointsYieldSegment) {
  const std::vector<PlanarPoint> pts{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 2u);
  EXPECT_DOUBLE_EQ(polygon_area(hull), 0.0);
}

TEST(ConvexHull, UnitSquare) {
  const std::vector<PlanarPoint> pts{
      {0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.8}};
  const auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_DOUBLE_EQ(polygon_area(hull), 1.0);
}

TEST(ConvexHull, CounterClockwiseWinding) {
  const std::vector<PlanarPoint> pts{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  const auto hull = convex_hull(pts);
  EXPECT_GT(polygon_signed_area(hull), 0.0);
}

TEST(ConvexHull, ContainsAllInputPoints) {
  stats::Rng rng(9);
  std::vector<PlanarPoint> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)});
  }
  const auto hull = convex_hull(pts);
  for (const auto& p : pts) {
    EXPECT_TRUE(point_in_convex_polygon(p, hull));
  }
}

TEST(ConvexHull, HullOfHullIsIdempotent) {
  stats::Rng rng(10);
  std::vector<PlanarPoint> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0)});
  }
  const auto hull = convex_hull(pts);
  const auto hull2 = convex_hull(hull);
  EXPECT_EQ(hull.size(), hull2.size());
  EXPECT_NEAR(polygon_area(hull), polygon_area(hull2), 1e-9);
}

TEST(ConvexHull, AreaGrowsWithSpread) {
  std::vector<PlanarPoint> tight{{0, 0}, {1, 0}, {0, 1}};
  std::vector<PlanarPoint> wide{{0, 0}, {10, 0}, {0, 10}};
  EXPECT_LT(polygon_area(convex_hull(tight)), polygon_area(convex_hull(wide)));
}

TEST(PolygonArea, TriangleKnownArea) {
  const std::vector<PlanarPoint> tri{{0, 0}, {4, 0}, {0, 3}};
  EXPECT_DOUBLE_EQ(polygon_area(tri), 6.0);
  EXPECT_DOUBLE_EQ(polygon_signed_area(tri), 6.0);
  const std::vector<PlanarPoint> tri_cw{{0, 0}, {0, 3}, {4, 0}};
  EXPECT_DOUBLE_EQ(polygon_signed_area(tri_cw), -6.0);
}

TEST(PolygonArea, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(polygon_area({}), 0.0);
  const std::vector<PlanarPoint> two{{0, 0}, {5, 5}};
  EXPECT_DOUBLE_EQ(polygon_area(two), 0.0);
}

TEST(PointInPolygon, BoundaryAndOutside) {
  const std::vector<PlanarPoint> square{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  EXPECT_TRUE(point_in_convex_polygon({1, 1}, square));
  EXPECT_TRUE(point_in_convex_polygon({0, 0}, square));   // vertex
  EXPECT_TRUE(point_in_convex_polygon({1, 0}, square));   // edge
  EXPECT_FALSE(point_in_convex_polygon({3, 1}, square));
  EXPECT_FALSE(point_in_convex_polygon({-0.1, 1}, square));
}

TEST(HullAreaSqMiles, SinglePointAndPairAreZero) {
  const AlbersProjection proj = AlbersProjection::world();
  const std::vector<GeoPoint> one{{40.0, -74.0}};
  EXPECT_DOUBLE_EQ(hull_area_sq_miles(one, proj), 0.0);
  const std::vector<GeoPoint> pair{{40.0, -74.0}, {34.0, -118.0}};
  EXPECT_DOUBLE_EQ(hull_area_sq_miles(pair, proj), 0.0);
}

TEST(HullAreaSqMiles, OneDegreeBoxNearEquator) {
  const AlbersProjection proj = AlbersProjection::world();
  const std::vector<GeoPoint> corners{
      {0.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {1.0, 0.0}};
  const Region box{"box", 0.0, 1.0, 0.0, 1.0};
  EXPECT_NEAR(hull_area_sq_miles(corners, proj) / box.area_sq_miles(), 1.0,
              0.02);
}

TEST(HullAreaSqMiles, GrowsWithGeographicSpread) {
  const AlbersProjection proj = AlbersProjection::world();
  const std::vector<GeoPoint> metro{
      {40.7, -74.0}, {40.8, -74.1}, {40.9, -73.9}};
  const std::vector<GeoPoint> continental{
      {40.7, -74.0}, {34.0, -118.2}, {47.6, -122.3}};
  EXPECT_LT(hull_area_sq_miles(metro, proj),
            hull_area_sq_miles(continental, proj) / 100.0);
}

}  // namespace
}  // namespace geonet::geo
