#include <gtest/gtest.h>

#include <algorithm>

#include "generators/hierarchical_gen.h"
#include "generators/inet_gen.h"
#include "geo/distance.h"
#include "net/graph_algos.h"
#include "stats/ccdf.h"

namespace geonet::generators {
namespace {

const geo::Region kBox{"box", 28.0, 48.0, -120.0, -80.0};

TEST(Inet, ProducesRequestedNodeCount) {
  InetOptions options;
  options.node_count = 700;
  const auto g = generate_inet(kBox, options);
  EXPECT_EQ(g.node_count(), 700u);
  EXPECT_GE(g.edge_count(), g.node_count() - 3);
}

TEST(Inet, GraphIsConnected) {
  InetOptions options;
  options.node_count = 800;
  const auto g = generate_inet(kBox, options);
  EXPECT_EQ(net::giant_component_size(g), g.node_count());
}

TEST(Inet, DegreeTailIsHeavy) {
  InetOptions options;
  options.node_count = 4000;
  options.degree_exponent = 2.1;
  const auto g = generate_inet(kBox, options);
  const auto degrees = g.degrees();
  std::vector<double> values(degrees.begin(), degrees.end());
  const auto tail = stats::fit_ccdf_tail(values, 0.4);
  EXPECT_LT(tail.slope, -0.8);
  const auto max_degree = *std::max_element(degrees.begin(), degrees.end());
  EXPECT_GT(max_degree, 40u);
}

TEST(Inet, NodesInsideRegion) {
  const auto g = generate_inet(kBox, {});
  for (const auto& node : g.nodes()) {
    EXPECT_TRUE(kBox.contains(node.location));
  }
}

TEST(Inet, DeterministicPerSeed) {
  InetOptions options;
  options.node_count = 300;
  const auto a = generate_inet(kBox, options);
  const auto b = generate_inet(kBox, options);
  EXPECT_EQ(a.edge_count(), b.edge_count());
}

TEST(TransitStub, StructureMatchesOptions) {
  TransitStubOptions options;
  options.transit_domains = 3;
  options.transit_nodes_per_domain = 5;
  options.stubs_per_transit = 4;
  options.stub_nodes_mean = 8;
  const auto g = generate_transit_stub(kBox, options);

  // 3 transit ASes + 12 stub ASes.
  std::set<std::uint32_t> ases;
  for (const auto& node : g.nodes()) ases.insert(node.asn);
  EXPECT_EQ(ases.size(), 3u + 12u);
  EXPECT_GE(g.node_count(), 3u * 5u + 12u * 2u);
}

TEST(TransitStub, GraphIsConnected) {
  const auto g = generate_transit_stub(kBox, {});
  EXPECT_EQ(net::giant_component_size(g), g.node_count());
}

TEST(TransitStub, StubsAreGeographicallyCompact) {
  TransitStubOptions options;
  options.stub_radius_miles = 30.0;
  const auto g = generate_transit_stub(kBox, options);

  // Group nodes by AS; transit ASes are the first `transit_domains` ASNs.
  std::map<std::uint32_t, std::vector<geo::GeoPoint>> by_as;
  for (const auto& node : g.nodes()) {
    by_as[node.asn].push_back(node.location);
  }
  std::size_t compact = 0;
  std::size_t stubs = 0;
  for (const auto& [asn, points] : by_as) {
    if (asn <= options.transit_domains) continue;  // skip transit ASes
    ++stubs;
    double max_d = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (std::size_t j = i + 1; j < points.size(); ++j) {
        max_d = std::max(max_d, geo::great_circle_miles(points[i], points[j]));
      }
    }
    if (max_d <= 2.0 * options.stub_radius_miles + 1e-6) ++compact;
  }
  ASSERT_GT(stubs, 0u);
  EXPECT_EQ(compact, stubs);
}

TEST(TransitStub, IntradomainLinksDominate) {
  const auto g = generate_transit_stub(kBox, {});
  std::size_t intra = 0;
  std::size_t inter = 0;
  for (const auto& e : g.edges()) {
    (g.node(e.a).asn == g.node(e.b).asn ? intra : inter) += 1;
  }
  EXPECT_GT(intra, 2 * inter);
}

}  // namespace
}  // namespace geonet::generators
