#pragma once

// Shared, lazily-built small synthetic worlds for the heavier tests.
// Building population + ground truth takes a second or two, so tests share
// one instance per configuration instead of rebuilding per test case.

#include "population/synth_population.h"
#include "synth/ground_truth.h"
#include "synth/scenario.h"

namespace geonet::testing {

inline const population::WorldPopulation& small_world() {
  static const population::WorldPopulation world =
      population::WorldPopulation::build(2002);
  return world;
}

inline synth::GroundTruthOptions small_truth_options() {
  synth::GroundTruthOptions options;
  options.interface_scale = 0.02;
  options.seed = 99;
  return options;
}

inline const synth::GroundTruth& small_truth() {
  static const synth::GroundTruth truth =
      synth::GroundTruth::build(small_world(), small_truth_options());
  return truth;
}

inline const synth::Scenario& small_scenario() {
  static const synth::Scenario scenario = [] {
    synth::ScenarioOptions options;  // fixed, ignores GEONET_SCALE
    options.scale = 0.03;
    options.seed = 4242;
    return synth::Scenario::build(options);
  }();
  return scenario;
}

}  // namespace geonet::testing
