#include "stats/fenwick.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace geonet::stats {
namespace {

TEST(Fenwick, PrefixSumsMatchBruteForce) {
  std::vector<double> weights{1, 0, 3, 2, 5, 0, 7};
  const FenwickTree tree(weights);
  double running = 0.0;
  for (std::size_t i = 0; i <= weights.size(); ++i) {
    EXPECT_DOUBLE_EQ(tree.prefix_sum(i), running);
    if (i < weights.size()) running += weights[i];
  }
  EXPECT_DOUBLE_EQ(tree.total(), 18.0);
}

TEST(Fenwick, SetAndAdd) {
  FenwickTree tree(4);
  tree.set(0, 5.0);
  tree.add(2, 3.0);
  EXPECT_DOUBLE_EQ(tree.value(0), 5.0);
  EXPECT_DOUBLE_EQ(tree.value(2), 3.0);
  EXPECT_DOUBLE_EQ(tree.total(), 8.0);
  tree.set(0, 1.0);
  EXPECT_DOUBLE_EQ(tree.total(), 4.0);
}

TEST(Fenwick, AddClampsAtZero) {
  FenwickTree tree(2);
  tree.set(0, 2.0);
  tree.add(0, -10.0);
  EXPECT_DOUBLE_EQ(tree.value(0), 0.0);
  EXPECT_DOUBLE_EQ(tree.total(), 0.0);
}

TEST(Fenwick, OutOfRangeAddIgnored) {
  FenwickTree tree(2);
  tree.add(99, 1.0);
  EXPECT_DOUBLE_EQ(tree.total(), 0.0);
}

TEST(Fenwick, LowerBoundFindsOwningIndex) {
  const FenwickTree tree(std::vector<double>{2.0, 0.0, 3.0, 5.0});
  EXPECT_EQ(tree.lower_bound(0.0), 0u);
  EXPECT_EQ(tree.lower_bound(1.9), 0u);
  EXPECT_EQ(tree.lower_bound(2.0), 2u);  // index 1 has zero weight
  EXPECT_EQ(tree.lower_bound(4.9), 2u);
  EXPECT_EQ(tree.lower_bound(5.0), 3u);
  EXPECT_EQ(tree.lower_bound(9.9), 3u);
  EXPECT_EQ(tree.lower_bound(10.0), 4u);  // past total
}

TEST(Fenwick, EmptyTree) {
  const FenwickTree tree(0);
  EXPECT_DOUBLE_EQ(tree.total(), 0.0);
  Rng rng(1);
  EXPECT_EQ(tree.sample(rng), 0u);
}

TEST(Fenwick, SampleFollowsWeights) {
  const FenwickTree tree(std::vector<double>{1.0, 0.0, 3.0});
  Rng rng(99);
  std::vector<int> counts(3, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const std::size_t idx = tree.sample(rng);
    ASSERT_LT(idx, 3u);
    ++counts[idx];
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.25, 0.01);
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.01);
}

TEST(Fenwick, SampleAfterDepletion) {
  FenwickTree tree(std::vector<double>{1.0, 4.0});
  tree.add(1, -4.0);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(tree.sample(rng), 0u);
  tree.add(0, -1.0);
  EXPECT_EQ(tree.sample(rng), 2u);  // exhausted
}

TEST(Fenwick, LargeRandomConsistency) {
  Rng rng(123);
  std::vector<double> weights(1000);
  for (auto& w : weights) w = rng.uniform();
  FenwickTree tree(weights);
  // Random mutations, then verify against brute force.
  for (int i = 0; i < 500; ++i) {
    const auto idx = static_cast<std::size_t>(rng.uniform_index(1000));
    const double v = rng.uniform();
    tree.set(idx, v);
    weights[idx] = v;
  }
  const double brute = std::accumulate(weights.begin(), weights.end(), 0.0);
  EXPECT_NEAR(tree.total(), brute, 1e-9);
  EXPECT_NEAR(tree.prefix_sum(500),
              std::accumulate(weights.begin(), weights.begin() + 500, 0.0),
              1e-9);
}

}  // namespace
}  // namespace geonet::stats
