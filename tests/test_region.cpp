#include "geo/region.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geo/distance.h"

namespace geonet::geo {
namespace {

TEST(Region, PaperTableIIBoundaries) {
  const Region us = regions::us();
  EXPECT_DOUBLE_EQ(us.north_deg, 50.0);
  EXPECT_DOUBLE_EQ(us.south_deg, 25.0);
  EXPECT_DOUBLE_EQ(us.west_deg, -150.0);
  EXPECT_DOUBLE_EQ(us.east_deg, -45.0);

  const Region europe = regions::europe();
  EXPECT_DOUBLE_EQ(europe.north_deg, 58.0);
  EXPECT_DOUBLE_EQ(europe.south_deg, 42.0);
  EXPECT_DOUBLE_EQ(europe.west_deg, -5.0);
  EXPECT_DOUBLE_EQ(europe.east_deg, 22.0);

  const Region japan = regions::japan();
  EXPECT_DOUBLE_EQ(japan.north_deg, 60.0);
  EXPECT_DOUBLE_EQ(japan.south_deg, 30.0);
  EXPECT_DOUBLE_EQ(japan.west_deg, 130.0);
  EXPECT_DOUBLE_EQ(japan.east_deg, 150.0);
}

TEST(Region, ContainsInclusiveExclusive) {
  const Region us = regions::us();
  EXPECT_TRUE(us.contains({25.0, -150.0}));   // lower edges inclusive
  EXPECT_FALSE(us.contains({50.0, -100.0}));  // upper edges exclusive
  EXPECT_FALSE(us.contains({40.0, -45.0}));
  EXPECT_TRUE(us.contains({40.0, -100.0}));
  EXPECT_FALSE(us.contains({40.0, 100.0}));
}

TEST(Region, UsSubregionsPartitionTheBox) {
  const Region north = regions::northern_us();
  const Region south = regions::southern_us();
  const Region us = regions::us();
  EXPECT_DOUBLE_EQ(north.north_deg, us.north_deg);
  EXPECT_DOUBLE_EQ(south.south_deg, us.south_deg);
  EXPECT_DOUBLE_EQ(north.south_deg, south.north_deg);
  // Any US point is in exactly one subregion.
  for (double lat = 25.5; lat < 50.0; lat += 3.1) {
    const GeoPoint p{lat, -100.0};
    EXPECT_NE(north.contains(p), south.contains(p));
  }
}

TEST(Region, SpansAndCenter) {
  const Region europe = regions::europe();
  EXPECT_DOUBLE_EQ(europe.lat_span_deg(), 16.0);
  EXPECT_DOUBLE_EQ(europe.lon_span_deg(), 27.0);
  const GeoPoint c = europe.center();
  EXPECT_DOUBLE_EQ(c.lat_deg, 50.0);
  EXPECT_DOUBLE_EQ(c.lon_deg, 8.5);
}

TEST(Region, DiagonalBoundsAllInteriorDistances) {
  const Region japan = regions::japan();
  const double diag = japan.diagonal_miles();
  EXPECT_GT(diag, 0.0);
  EXPECT_GE(diag + 1e-6,
            great_circle_miles({japan.south_deg, japan.west_deg},
                               {japan.north_deg, japan.east_deg}));
}

TEST(Region, AreaMatchesSphericalFormula) {
  // Whole sphere: 4 pi R^2.
  const Region world = regions::world();
  EXPECT_NEAR(world.area_sq_miles(),
              4.0 * kPi * kEarthRadiusMiles * kEarthRadiusMiles,
              1.0);
}

TEST(Region, AreaOfBandScalesWithLongitude) {
  const Region half{"half", 0.0, 10.0, 0.0, 180.0};
  const Region full{"full", 0.0, 10.0, -180.0, 180.0};
  EXPECT_NEAR(full.area_sq_miles() / half.area_sq_miles(), 2.0, 1e-9);
}

TEST(Region, ByNameFindsAllCanonicalRegions) {
  for (const char* name :
       {"US", "Europe", "Japan", "Northern US", "Southern US", "Central Am.",
        "Africa", "South America", "Mexico", "W. Europe", "Australia",
        "World"}) {
    const auto region = regions::by_name(name);
    ASSERT_TRUE(region.has_value()) << name;
    EXPECT_EQ(region->name, name);
  }
  EXPECT_FALSE(regions::by_name("Atlantis").has_value());
}

TEST(Region, PaperStudyRegionsOrder) {
  const auto regions = regions::paper_study_regions();
  ASSERT_EQ(regions.size(), 3u);
  EXPECT_EQ(regions[0].name, "US");
  EXPECT_EQ(regions[1].name, "Europe");
  EXPECT_EQ(regions[2].name, "Japan");
}

TEST(Region, EconomicRegionsMatchTableIII) {
  const auto regions = regions::economic_regions();
  ASSERT_EQ(regions.size(), 7u);
  EXPECT_EQ(regions.front().name, "Africa");
  EXPECT_EQ(regions.back().name, "US");
}

TEST(Region, WorldContainsEverything) {
  const Region world = regions::world();
  EXPECT_TRUE(world.contains({0.0, 0.0}));
  EXPECT_TRUE(world.contains({-89.9, -179.9}));
  EXPECT_TRUE(world.contains({89.9, 179.9}));
}

}  // namespace
}  // namespace geonet::geo
