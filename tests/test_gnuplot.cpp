#include "report/gnuplot.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace geonet::report {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Gnuplot, WritesPanelsWithSettings) {
  const std::string path = ::testing::TempDir() + "/geonet_plot.gp";
  GnuplotPanel panel;
  panel.title = "f(d) US";
  panel.xlabel = "d (miles)";
  panel.ylabel = "f(d)";
  panel.dat_files = {"fig04_a.dat", "fig04_b.dat"};
  panel.logy = true;
  ASSERT_TRUE(write_gnuplot_script(path, {panel}));

  const std::string script = read_all(path);
  EXPECT_NE(script.find("set title \"f(d) US\""), std::string::npos);
  EXPECT_NE(script.find("set xlabel \"d (miles)\""), std::string::npos);
  EXPECT_NE(script.find("set logscale y"), std::string::npos);
  EXPECT_NE(script.find("unset logscale x"), std::string::npos);
  EXPECT_NE(script.find("fig04_a.dat"), std::string::npos);
  EXPECT_NE(script.find("fig04_b.dat"), std::string::npos);
  EXPECT_NE(script.find("set output \"f_d__US_0.png\""), std::string::npos);
}

TEST(Gnuplot, MultiplePanelsEachGetOutputs) {
  const std::string path = ::testing::TempDir() + "/geonet_multi.gp";
  GnuplotPanel a;
  a.title = "one";
  a.dat_files = {"a.dat"};
  GnuplotPanel b;
  b.title = "two";
  b.dat_files = {"b.dat"};
  b.points = false;
  ASSERT_TRUE(write_gnuplot_script(path, {a, b}));
  const std::string script = read_all(path);
  EXPECT_NE(script.find("one_0.png"), std::string::npos);
  EXPECT_NE(script.find("two_1.png"), std::string::npos);
  EXPECT_NE(script.find("with lines"), std::string::npos);
  EXPECT_NE(script.find("with points"), std::string::npos);
}

TEST(Gnuplot, QuotesAreSanitized) {
  const std::string path = ::testing::TempDir() + "/geonet_quote.gp";
  GnuplotPanel panel;
  panel.title = "say \"hi\"";
  panel.dat_files = {"x.dat"};
  ASSERT_TRUE(write_gnuplot_script(path, {panel}));
  EXPECT_EQ(read_all(path).find("\"say \"hi\"\""), std::string::npos);
}

TEST(Gnuplot, FailsOnBadPath) {
  EXPECT_FALSE(write_gnuplot_script("/no/such/dir/x.gp", {}));
}

}  // namespace
}  // namespace geonet::report
