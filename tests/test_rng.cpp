#include "stats/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace geonet::stats {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differ = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() != b.next_u64()) ++differ;
  }
  EXPECT_GT(differ, 60);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(8);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5.0, 3.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexIsUnbiased) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform_index(5)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.2, 0.01);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(12);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(14);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(15);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(16);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(18);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(2.5));
  EXPECT_NEAR(sum / kN, 2.5, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / kN, 200.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(20);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(std::span<int>(copy));
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(42);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(2);
  int differ = 0;
  for (int i = 0; i < 64; ++i) {
    if (child_a.next_u64() != child_b.next_u64()) ++differ;
  }
  EXPECT_GT(differ, 60);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(42);
  Rng p2(42);
  Rng c1 = p1.fork(9);
  Rng c2 = p2.fork(9);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), first);
  EXPECT_NE(splitmix64(s2), first);  // state advanced
}

}  // namespace
}  // namespace geonet::stats
