// End-to-end coverage for the storage layer against the real pipeline:
// graph snapshot round trips, study-phase codec round trips, and the
// warm-vs-cold byte-identity contract of run_study with an artifact
// cache attached.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/study.h"
#include "core/study_store.h"
#include "exec/thread_pool.h"
#include "geo/spatial_index.h"
#include "geo/spatial_index_store.h"
#include "net/graph_io.h"
#include "obs/metrics.h"
#include "store/cache.h"
#include "store/snapshot.h"
#include "synth/scenario.h"
#include "synth/scenario_store.h"
#include "tests/test_world.h"

namespace geonet {
namespace {

namespace fsys = std::filesystem;

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(fsys::temp_directory_path() /
              ("geonet_store_pipeline_" + tag)) {
    fsys::remove_all(path_);
    fsys::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fsys::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fsys::path path_;
};

const net::AnnotatedGraph& study_graph() {
  return testing::small_scenario().graph(synth::DatasetKind::kSkitter,
                                         synth::MapperKind::kIxMapper);
}

void expect_graphs_equal(const net::AnnotatedGraph& a,
                         const net::AnnotatedGraph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.kind(), b.kind());
  EXPECT_EQ(a.name(), b.name());
  for (std::uint32_t i = 0; i < a.node_count(); ++i) {
    EXPECT_EQ(a.node(i).addr.value, b.node(i).addr.value);
    EXPECT_EQ(a.node(i).location.lat_deg, b.node(i).location.lat_deg);
    EXPECT_EQ(a.node(i).location.lon_deg, b.node(i).location.lon_deg);
    EXPECT_EQ(a.node(i).asn, b.node(i).asn);
  }
  for (std::size_t i = 0; i < a.edge_count(); ++i) {
    EXPECT_EQ(a.edges()[i].a, b.edges()[i].a);
    EXPECT_EQ(a.edges()[i].b, b.edges()[i].b);
  }
}

// ------------------------------------------------------------------
// Graph snapshots
// ------------------------------------------------------------------

TEST(GraphSnapshot, RoundTripsARealProcessedGraph) {
  const net::AnnotatedGraph& graph = study_graph();
  const std::vector<std::byte> bytes = net::encode_graph_snapshot(graph);
  auto decoded = net::decode_graph_snapshot(bytes);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().message();
  expect_graphs_equal(graph, decoded.value().graph);
  EXPECT_TRUE(decoded.value().link_latency_ms.empty());

  // Every snapshot carries the 'SIDX' warm index, validated on decode to
  // be exactly the canonical index of the graph's own locations.
  ASSERT_TRUE(decoded.value().spatial_index.has_value());
  const geo::SpatialIndex& warm = *decoded.value().spatial_index;
  const geo::SpatialIndex fresh = geo::SpatialIndex::build(graph.locations());
  EXPECT_EQ(warm.order(), fresh.order());
  EXPECT_EQ(warm.points(), fresh.points());
}

TEST(GraphSnapshot, ForeignSpatialIndexSectionIsDroppedNotTrusted) {
  // Splice the SIDX section of a different graph into this snapshot: the
  // graph must still decode, but the mismatched index must not surface.
  const net::AnnotatedGraph& graph = study_graph();
  const net::AnnotatedGraph& other = testing::small_scenario().graph(
      synth::DatasetKind::kMercator, synth::MapperKind::kIxMapper);
  ASSERT_NE(graph.node_count(), 0u);

  store::SnapshotWriter writer;
  store::ByteWriter body;
  net::encode_graph(body, graph);
  writer.add_section(net::kSectionGraph, body.take());
  store::ByteWriter sidx;
  geo::encode_spatial_index(sidx,
                            geo::SpatialIndex::build(other.locations()));
  writer.add_section(geo::kSectionSpatialIndex, sidx.take());

  auto decoded = net::decode_graph_snapshot(writer.finish());
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().message();
  expect_graphs_equal(graph, decoded.value().graph);
  EXPECT_FALSE(decoded.value().spatial_index.has_value());
}

TEST(GraphSnapshot, RoundTripsLatencyColumn) {
  net::AnnotatedGraph graph(net::NodeKind::kRouter, "latency test");
  for (int i = 0; i < 4; ++i) {
    graph.add_node({net::Ipv4Addr{static_cast<std::uint32_t>(i + 1)},
                    {10.0 * i, -20.0 * i},
                    static_cast<std::uint32_t>(100 + i)});
  }
  ASSERT_TRUE(graph.add_edge(0, 1));
  ASSERT_TRUE(graph.add_edge(1, 2));
  ASSERT_TRUE(graph.add_edge(2, 3));
  const std::vector<double> latency = {1.5, 0.25, 99.875};

  const auto bytes = net::encode_graph_snapshot(graph, latency);
  auto decoded = net::decode_graph_snapshot(bytes);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().message();
  expect_graphs_equal(graph, decoded.value().graph);
  EXPECT_EQ(decoded.value().link_latency_ms, latency);
}

TEST(GraphSnapshot, FileRoundTripViaGeosSuffix) {
  ScratchDir dir("graph_file");
  const net::AnnotatedGraph& graph = study_graph();

  const std::string path = dir.file("topology.geos");
  std::string error;
  ASSERT_TRUE(net::write_graph_file(path, graph, {}, &error)) << error;
  EXPECT_TRUE(net::is_snapshot_file(path));

  // The generic reader sniffs the magic and takes the binary path.
  auto result = net::read_graph_file_ex(path);
  ASSERT_TRUE(result.ok()) << result.status.message();
  expect_graphs_equal(graph, *result.graph);
  EXPECT_TRUE(result.quarantined.empty());

  // Text path still works and is not misdetected.
  const std::string text_path = dir.file("topology.txt");
  ASSERT_TRUE(net::write_graph_file(text_path, graph, {}, &error)) << error;
  EXPECT_FALSE(net::is_snapshot_file(text_path));
  auto text_result = net::read_graph_file_ex(text_path);
  ASSERT_TRUE(text_result.ok()) << text_result.status.message();
  EXPECT_EQ(text_result.graph->node_count(), graph.node_count());
}

TEST(GraphSnapshot, DigestTracksContent) {
  const net::AnnotatedGraph& graph = study_graph();
  const store::Digest128 digest = net::graph_digest(graph);
  EXPECT_EQ(digest, net::graph_digest(graph));

  net::AnnotatedGraph copy = graph;
  ASSERT_GE(copy.node_count(), 2u);
  // A different topology must have a different identity.
  net::AnnotatedGraph tiny(net::NodeKind::kRouter);
  tiny.add_node({net::Ipv4Addr{1}, {0.0, 0.0}, 1});
  EXPECT_NE(net::graph_digest(tiny), digest);
}

TEST(GraphSnapshot, CorruptGraphCountsFailGracefully) {
  // A hand-built 'GRPH' section claiming far more nodes than the payload
  // holds must fail with kDataLoss, not allocate or crash.
  store::ByteWriter body;
  body.u8(1);        // router kind
  body.str("evil");  // name
  body.u64(std::uint64_t{1} << 40);  // node_count: absurd
  store::ByteReader reader(body.buffer());
  auto decoded = net::decode_graph(reader);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), err::Code::kDataLoss);
}

// ------------------------------------------------------------------
// Study-phase codecs
// ------------------------------------------------------------------

TEST(StudyCodec, HistogramRoundTripsTailsExactly) {
  stats::Histogram hist(0.0, 100.0, 10);
  hist.add(5.0, 2.0);
  hist.add(95.0, 0.125);
  hist.add(-3.0);   // underflow
  hist.add(250.0);  // overflow
  hist.add(100.0);  // boundary: overflow by contract

  store::ByteWriter out;
  core::encode_histogram(out, hist);
  store::ByteReader in(out.buffer());
  auto decoded = core::decode_histogram(in);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().message();
  const stats::Histogram& back = decoded.value();
  EXPECT_EQ(back.lo(), hist.lo());
  EXPECT_EQ(back.hi(), hist.hi());
  EXPECT_EQ(back.counts(), hist.counts());
  EXPECT_EQ(back.underflow(), hist.underflow());
  EXPECT_EQ(back.overflow(), hist.overflow());
}

TEST(StudyCodec, HistogramRejectsMalformedShape) {
  store::ByteWriter out;
  out.f64(10.0);  // lo
  out.f64(5.0);   // hi < lo
  out.f64(0.0);   // underflow
  out.f64(0.0);   // overflow
  out.u64(3);     // bins
  out.f64(0.0);
  out.f64(0.0);
  out.f64(0.0);
  store::ByteReader in(out.buffer());
  EXPECT_FALSE(core::decode_histogram(in).is_ok());
}

TEST(StudyCodec, FitSummaryAndTablesRoundTrip) {
  stats::LinearFit fit{1.26, -3.5, 0.9875, 321};
  store::ByteWriter out;
  core::encode_fit(out, fit);

  stats::Summary summary{42, 1.5, 0.25, -8.0, 99.0, 1.0};
  core::encode_summary(out, summary);

  const std::vector<core::RegionDensityRow> economic = {
      {"US", 284.0, 160.7, 18000, 15778.0, 8900.0},
      {"Undefined", 0.0, 0.0, 0, 0.0, 0.0},
  };
  const std::vector<core::RegionDensityRow> homogeneity = {
      {"Scandinavia", 24.0, 0.0, 900, 26000.0, 0.0},
  };
  core::encode_region_tables(out, economic, homogeneity);

  store::ByteReader in(out.buffer());
  const stats::LinearFit fit_back = core::decode_fit(in);
  EXPECT_EQ(fit_back.slope, fit.slope);
  EXPECT_EQ(fit_back.intercept, fit.intercept);
  EXPECT_EQ(fit_back.r_squared, fit.r_squared);
  EXPECT_EQ(fit_back.n, fit.n);

  const stats::Summary summary_back = core::decode_summary(in);
  EXPECT_EQ(summary_back.n, summary.n);
  EXPECT_EQ(summary_back.mean, summary.mean);
  EXPECT_EQ(summary_back.median, summary.median);

  auto tables = core::decode_region_tables(in);
  ASSERT_TRUE(tables.is_ok()) << tables.status().message();
  ASSERT_TRUE(in.ok());
  const auto& [economic_back, homogeneity_back] = tables.value();
  ASSERT_EQ(economic_back.size(), economic.size());
  EXPECT_EQ(economic_back[0].name, "US");
  EXPECT_EQ(economic_back[0].nodes, economic[0].nodes);
  EXPECT_EQ(economic_back[0].people_per_node, economic[0].people_per_node);
  ASSERT_EQ(homogeneity_back.size(), 1u);
  EXPECT_EQ(homogeneity_back[0].name, "Scandinavia");
}

TEST(StudyCodec, WorldDigestIsStableAndSeedSensitive) {
  const auto& world = testing::small_world();
  EXPECT_EQ(core::world_digest(world), core::world_digest(world));
  const auto other = population::WorldPopulation::build(7777);
  EXPECT_NE(core::world_digest(other), core::world_digest(world));
}

TEST(StudyCodec, StudyFingerprintTracksEveryOption) {
  const auto& world = testing::small_world();
  const net::AnnotatedGraph& graph = study_graph();
  core::StudyOptions options;
  const store::Digest128 base =
      core::study_fingerprint(graph, world, options).digest();
  EXPECT_EQ(core::study_fingerprint(graph, world, options).digest(), base);

  core::StudyOptions changed = options;
  changed.compute_fractal_dimension = !options.compute_fractal_dimension;
  EXPECT_NE(core::study_fingerprint(graph, world, changed).digest(), base);

  core::StudyOptions errors = options;
  errors.max_errors = 123;
  EXPECT_NE(core::study_fingerprint(graph, world, errors).digest(), base);

  core::StudyOptions faulty = options;
  faulty.inject_phase_failures = {"density"};
  EXPECT_NE(core::study_fingerprint(graph, world, faulty).digest(), base);
}

// ------------------------------------------------------------------
// Warm vs cold run_study
// ------------------------------------------------------------------

std::uint64_t phase_hit_count() {
  return obs::MetricsRegistry::global().counter("store.phase_hits").value();
}

TEST(StudyCache, WarmRunIsByteIdenticalAndSkipsPhases) {
  ScratchDir dir("warm_cold");
  store::ArtifactCache cache(dir.str());
  const auto& world = testing::small_scenario().world();

  core::StudyOptions options;
  options.cache = &cache;

  const core::StudyReport cold = core::run_study(study_graph(), world, options);
  EXPECT_FALSE(cold.degradation.degraded());
  EXPECT_GT(cache.stats().entries, 0u);

  const std::uint64_t hits_before = phase_hit_count();
  const core::StudyReport warm = core::run_study(study_graph(), world, options);
  EXPECT_GT(phase_hit_count(), hits_before);

  // The whole analysis payload must match byte for byte.
  EXPECT_EQ(core::study_report_json(warm), core::study_report_json(cold));
  EXPECT_EQ(core::study_degradation_json(warm.degradation),
            core::study_degradation_json(cold.degradation));
  EXPECT_EQ(warm.degradation.phases.size(), cold.degradation.phases.size());
  EXPECT_TRUE(warm.degradation.notes.empty());
}

TEST(StudyCache, WarmRunMatchesUnderFourThreads) {
  ScratchDir dir("warm_threads");
  store::ArtifactCache cache(dir.str());
  const auto& world = testing::small_scenario().world();

  core::StudyOptions options;
  options.cache = &cache;

  const core::StudyReport cold = core::run_study(study_graph(), world, options);

  exec::ThreadPool::set_global_threads(4);
  const core::StudyReport warm = core::run_study(study_graph(), world, options);
  exec::ThreadPool::set_global_threads(
      exec::ThreadPool::default_thread_count());

  EXPECT_EQ(core::study_report_json(warm), core::study_report_json(cold));
}

TEST(StudyCache, DisabledCacheMatchesEnabledCache) {
  ScratchDir dir("cache_off");
  store::ArtifactCache cache(dir.str());
  const auto& world = testing::small_scenario().world();

  core::StudyOptions with_cache;
  with_cache.cache = &cache;
  const core::StudyReport cached =
      core::run_study(study_graph(), world, with_cache);

  const core::StudyReport plain =
      core::run_study(study_graph(), world, core::StudyOptions{});
  EXPECT_EQ(core::study_report_json(plain), core::study_report_json(cached));
}

TEST(StudyCache, CorruptEntriesForceRecomputeWithNotes) {
  ScratchDir dir("warm_corrupt");
  store::ArtifactCache cache(dir.str());
  const auto& world = testing::small_scenario().world();

  core::StudyOptions options;
  options.cache = &cache;
  const core::StudyReport cold = core::run_study(study_graph(), world, options);

  // Damage every cached entry via the deterministic injection hook.
  cache.set_corruption({1.0, 99});
  const core::StudyReport recovered =
      core::run_study(study_graph(), world, options);
  cache.set_corruption({0.0, 0});

  // Identical analysis, but the degradation report says what happened.
  EXPECT_EQ(core::study_report_json(recovered), core::study_report_json(cold));
  EXPECT_FALSE(recovered.degradation.notes.empty());
  // Notes alone must not flip the run to degraded.
  EXPECT_FALSE(recovered.degradation.degraded());
  const std::string json = core::study_degradation_json(recovered.degradation);
  EXPECT_NE(json.find("notes"), std::string::npos);

  // The damaged entries were quarantined and re-populated; a third run
  // is warm again.
  const std::uint64_t hits_before = phase_hit_count();
  const core::StudyReport warm = core::run_study(study_graph(), world, options);
  EXPECT_GT(phase_hit_count(), hits_before);
  EXPECT_EQ(core::study_report_json(warm), core::study_report_json(cold));
}

TEST(StudyCache, SpatialIndexIsCachedAndReused) {
  ScratchDir dir("warm_sidx");
  store::ArtifactCache cache(dir.str());
  const auto& world = testing::small_scenario().world();

  core::StudyOptions options;
  options.cache = &cache;
  const auto sidx_hits = [] {
    return obs::MetricsRegistry::global().counter("store.sidx_hits").value();
  };

  const std::uint64_t before = sidx_hits();
  const core::StudyReport cold = core::run_study(study_graph(), world, options);
  EXPECT_EQ(sidx_hits(), before);  // cold run builds, doesn't hit

  const core::StudyReport warm = core::run_study(study_graph(), world, options);
  EXPECT_GT(sidx_hits(), before);  // warm run decodes the cached SIDX
  EXPECT_EQ(core::study_report_json(warm), core::study_report_json(cold));
}

TEST(StudyCache, CorruptSpatialIndexEntryDegradesToRebuild) {
  ScratchDir dir("corrupt_sidx");
  store::ArtifactCache cache(dir.str());
  const auto& world = testing::small_scenario().world();

  core::StudyOptions options;
  options.cache = &cache;
  options.compute_fractal_dimension = false;
  const core::StudyReport cold = core::run_study(study_graph(), world, options);

  // Damage every entry — including the cached SIDX. The index is rebuilt
  // (note recorded), the analysis is unchanged.
  cache.set_corruption({1.0, 7});
  const core::StudyReport recovered =
      core::run_study(study_graph(), world, options);
  cache.set_corruption({0.0, 0});

  EXPECT_EQ(core::study_report_json(recovered), core::study_report_json(cold));
  EXPECT_FALSE(recovered.degradation.degraded());
  bool noted = false;
  for (const std::string& note : recovered.degradation.notes) {
    if (note.find("spatial index") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted) << "no degradation note mentions the spatial index";
}

TEST(StudyCache, FingerprintChangeMissesOldEntries) {
  ScratchDir dir("warm_missing");
  store::ArtifactCache cache(dir.str());
  const auto& world = testing::small_scenario().world();

  core::StudyOptions options;
  options.cache = &cache;
  (void)core::run_study(study_graph(), world, options);
  const std::uint64_t entries = cache.stats().entries;

  // Different options -> different keys -> cold again, new entries.
  core::StudyOptions changed = options;
  changed.patch_arcmin = options.patch_arcmin + 10;
  const std::uint64_t hits_before = phase_hit_count();
  (void)core::run_study(study_graph(), world, changed);
  EXPECT_EQ(phase_hit_count(), hits_before);
  EXPECT_GT(cache.stats().entries, entries);
}

// ------------------------------------------------------------------
// Scenario artifacts
// ------------------------------------------------------------------

TEST(ScenarioStore, ArtifactsRoundTripThroughSnapshot) {
  const synth::Scenario& scenario = testing::small_scenario();
  const synth::ScenarioArtifacts artifacts =
      synth::snapshot_artifacts(scenario);

  const std::vector<std::byte> bytes =
      synth::encode_scenario_artifacts(artifacts);
  auto decoded = synth::decode_scenario_artifacts(bytes);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().message();
  const synth::ScenarioArtifacts& back = decoded.value();

  for (std::size_t slot = 0; slot < artifacts.graphs.size(); ++slot) {
    expect_graphs_equal(artifacts.graphs[slot], back.graphs[slot]);
    EXPECT_EQ(back.stats[slot].output_nodes, artifacts.stats[slot].output_nodes);
    EXPECT_EQ(back.stats[slot].distinct_locations,
              artifacts.stats[slot].distinct_locations);
  }
  EXPECT_EQ(back.probe_stats.probes, artifacts.probe_stats.probes);
  EXPECT_EQ(back.fault_stats.probes_lost, artifacts.fault_stats.probes_lost);

  // The JSON the CLI renders from decoded artifacts must be byte-equal to
  // the Scenario-based rendering — the warm-path identity contract.
  EXPECT_EQ(synth::scenario_stats_json(back.stats),
            synth::scenario_stats_json(scenario));
}

TEST(ScenarioStore, SlotLayoutMatchesScenario) {
  const synth::Scenario& scenario = testing::small_scenario();
  const synth::ScenarioArtifacts artifacts =
      synth::snapshot_artifacts(scenario);
  for (const synth::DatasetKind dataset :
       {synth::DatasetKind::kSkitter, synth::DatasetKind::kMercator}) {
    for (const synth::MapperKind mapper :
         {synth::MapperKind::kIxMapper, synth::MapperKind::kEdgeScape}) {
      const std::size_t slot = synth::dataset_slot(dataset, mapper);
      ASSERT_LT(slot, artifacts.graphs.size());
      EXPECT_EQ(artifacts.graphs[slot].node_count(),
                scenario.graph(dataset, mapper).node_count());
    }
  }
}

TEST(ScenarioStore, FingerprintSeparatesScenarioOptions) {
  synth::ScenarioOptions a = synth::ScenarioOptions::defaults();
  const store::Digest128 base = synth::scenario_fingerprint(a).digest();
  EXPECT_EQ(synth::scenario_fingerprint(a).digest(), base);

  synth::ScenarioOptions scale = a;
  scale.scale = a.scale * 2.0;
  EXPECT_NE(synth::scenario_fingerprint(scale).digest(), base);

  synth::ScenarioOptions seed = a;
  seed.seed = a.seed + 1;
  EXPECT_NE(synth::scenario_fingerprint(seed).digest(), base);

  synth::ScenarioOptions faulted = a;
  faulted.faults = fault::FaultPlan{};
  faulted.faults->cache_corrupt = fault::CacheCorruptFault{0.5};
  EXPECT_NE(synth::scenario_fingerprint(faulted).digest(), base);
}

TEST(ScenarioStore, TruncatedArtifactsFailGracefully) {
  const synth::ScenarioArtifacts artifacts =
      synth::snapshot_artifacts(testing::small_scenario());
  const std::vector<std::byte> bytes =
      synth::encode_scenario_artifacts(artifacts);
  // Cut mid-way through the graph sections: parse or decode must fail,
  // never crash.
  const std::span<const std::byte> cut(bytes.data(), bytes.size() / 2);
  EXPECT_FALSE(synth::decode_scenario_artifacts(cut).is_ok());
}

}  // namespace
}  // namespace geonet
