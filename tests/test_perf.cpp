// Unit tests for the perf-regression gate (geonet::perf): BENCH record
// parsing, tolerance policy, diff semantics (regression / improvement /
// noise floor / one-sided metrics), metadata refusals, and the
// directory-level check behind `geonet perf check`.

#include "perf/perf_gate.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace geonet::perf {
namespace {

struct SpanFixture {
  std::string name;
  double total_us;
};

/// Builds a minimal geonet.run_report.v1 bench document. Empty metadata
/// strings are omitted, mimicking unstamped legacy records.
std::string record_json(const std::string& wall_us,
                        const std::vector<SpanFixture>& spans,
                        const std::string& threads = "4",
                        const std::string& build_type = "Release",
                        const std::string& timestamp = "2026-08-09T00:00:00Z") {
  std::string json = R"({"schema":"geonet.run_report.v1","info":{)";
  json += R"("experiment":"unit")";
  if (!wall_us.empty()) json += R"(,"wall_us":")" + wall_us + "\"";
  if (!threads.empty()) json += R"(,"threads":")" + threads + "\"";
  if (!build_type.empty()) json += R"(,"build_type":")" + build_type + "\"";
  if (!timestamp.empty()) json += R"(,"timestamp_utc":")" + timestamp + "\"";
  json += "},\"spans\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) json += ",";
    json += R"({"name":")" + spans[i].name +
            R"(","total_us":)" + std::to_string(spans[i].total_us) + "}";
  }
  json += "]}";
  return json;
}

TEST(ParseBenchRecord, ExtractsMetadataAndSortedMetrics) {
  const auto result = parse_bench_record(
      record_json("123456", {{"zeta", 50.0}, {"alpha", 10.0}}),
      "BENCH_unit.json");
  ASSERT_TRUE(result.is_ok()) << result.status().message();
  const BenchRecord& record = result.value();
  EXPECT_EQ(record.file, "BENCH_unit.json");
  EXPECT_EQ(record.experiment, "unit");
  EXPECT_EQ(record.threads, "4");
  EXPECT_EQ(record.build_type, "Release");
  EXPECT_EQ(record.timestamp_utc, "2026-08-09T00:00:00Z");
  ASSERT_EQ(record.metrics.size(), 3u);  // wall_us + two spans, name-sorted
  EXPECT_EQ(record.metrics[0].name, "span/alpha");
  EXPECT_EQ(record.metrics[1].name, "span/zeta");
  EXPECT_EQ(record.metrics[2].name, "wall_us");
  EXPECT_DOUBLE_EQ(record.metrics[2].us, 123456.0);
}

TEST(ParseBenchRecord, RejectsWrongSchemaAndBadJson) {
  EXPECT_FALSE(parse_bench_record("not json at all").is_ok());
  EXPECT_FALSE(parse_bench_record(R"({"schema":"something.else"})").is_ok());
  EXPECT_FALSE(parse_bench_record(R"({"info":{}})").is_ok());
}

TEST(DiffRecords, WithinToleranceIsOk) {
  const auto baseline =
      parse_bench_record(record_json("100000", {{"phase", 50000.0}}));
  const auto current =
      parse_bench_record(record_json("105000", {{"phase", 52000.0}}));
  ASSERT_TRUE(baseline.is_ok() && current.is_ok());
  const Diff diff =
      diff_records(baseline.value(), current.value(), Tolerances{});
  EXPECT_TRUE(diff.comparable);
  EXPECT_FALSE(diff.regressed());
  for (const DiffRow& row : diff.rows) {
    EXPECT_EQ(row.status, RowStatus::kOk) << row.metric;
  }
}

TEST(DiffRecords, FlagsRegressionAndImprovementBeyondTolerance) {
  const auto baseline =
      parse_bench_record(record_json("100000", {{"fast", 80000.0}}));
  const auto current =
      parse_bench_record(record_json("125000", {{"fast", 40000.0}}));
  ASSERT_TRUE(baseline.is_ok() && current.is_ok());
  const Diff diff =
      diff_records(baseline.value(), current.value(), Tolerances{});
  ASSERT_EQ(diff.rows.size(), 2u);
  EXPECT_EQ(diff.rows[0].metric, "span/fast");
  EXPECT_EQ(diff.rows[0].status, RowStatus::kImprovement);
  EXPECT_EQ(diff.rows[1].metric, "wall_us");
  EXPECT_EQ(diff.rows[1].status, RowStatus::kRegression);
  EXPECT_NEAR(diff.rows[1].delta_pct, 25.0, 1e-9);
  EXPECT_TRUE(diff.regressed());
}

TEST(DiffRecords, NoiseFloorSkipsOnlyWhenBothRecordsAreUnderIt) {
  Tolerances tolerances;
  tolerances.min_us = 1000.0;
  // Both sub-noise: skipped even though the ratio is huge.
  const auto tiny_base = parse_bench_record(record_json("100", {}));
  const auto tiny_cur = parse_bench_record(record_json("900", {}));
  ASSERT_TRUE(tiny_base.is_ok() && tiny_cur.is_ok());
  Diff diff = diff_records(tiny_base.value(), tiny_cur.value(), tolerances);
  ASSERT_EQ(diff.rows.size(), 1u);
  EXPECT_EQ(diff.rows[0].status, RowStatus::kTooSmall);
  EXPECT_FALSE(diff.regressed());
  // A metric that grows past the floor still gates.
  const auto grown = parse_bench_record(record_json("5000", {}));
  ASSERT_TRUE(grown.is_ok());
  diff = diff_records(tiny_base.value(), grown.value(), tolerances);
  ASSERT_EQ(diff.rows.size(), 1u);
  EXPECT_EQ(diff.rows[0].status, RowStatus::kRegression);
}

TEST(DiffRecords, OneSidedMetricsNeverGate) {
  const auto baseline =
      parse_bench_record(record_json("100000", {{"removed", 5000.0}}));
  const auto current =
      parse_bench_record(record_json("100000", {{"added", 5000.0}}));
  ASSERT_TRUE(baseline.is_ok() && current.is_ok());
  const Diff diff =
      diff_records(baseline.value(), current.value(), Tolerances{});
  ASSERT_EQ(diff.rows.size(), 3u);
  EXPECT_EQ(diff.rows[0].metric, "span/added");
  EXPECT_EQ(diff.rows[0].status, RowStatus::kCurrentOnly);
  EXPECT_EQ(diff.rows[1].metric, "span/removed");
  EXPECT_EQ(diff.rows[1].status, RowStatus::kBaselineOnly);
  EXPECT_FALSE(diff.regressed());
}

TEST(DiffRecords, RefusesOnMetadataConflictsUnlessOverridden) {
  const auto base = parse_bench_record(record_json("100000", {}));
  ASSERT_TRUE(base.is_ok());

  const auto other_threads =
      parse_bench_record(record_json("100000", {}, "8"));
  ASSERT_TRUE(other_threads.is_ok());
  Diff diff =
      diff_records(base.value(), other_threads.value(), Tolerances{});
  EXPECT_FALSE(diff.comparable);
  EXPECT_NE(diff.refusal.find("thread counts differ"), std::string::npos);
  EXPECT_TRUE(diff.rows.empty());

  const auto other_build =
      parse_bench_record(record_json("100000", {}, "4", "Debug"));
  ASSERT_TRUE(other_build.is_ok());
  diff = diff_records(base.value(), other_build.value(), Tolerances{});
  EXPECT_FALSE(diff.comparable);
  EXPECT_NE(diff.refusal.find("build types differ"), std::string::npos);

  // A current record older than the baseline is a stale artifact.
  const auto stale = parse_bench_record(
      record_json("100000", {}, "4", "Release", "2020-01-01T00:00:00Z"));
  ASSERT_TRUE(stale.is_ok());
  diff = diff_records(base.value(), stale.value(), Tolerances{});
  EXPECT_FALSE(diff.comparable);
  EXPECT_NE(diff.refusal.find("predates"), std::string::npos);

  // --ignore-meta compares anyway.
  diff = diff_records(base.value(), other_threads.value(), Tolerances{},
                      /*ignore_meta=*/true);
  EXPECT_TRUE(diff.comparable);
  EXPECT_FALSE(diff.rows.empty());
}

TEST(DiffRecords, UnknownMetadataNeverConflicts) {
  // Legacy records without stamping (empty metadata) stay comparable
  // against stamped ones.
  const auto legacy = parse_bench_record(record_json("100000", {}, "", "", ""));
  const auto stamped = parse_bench_record(record_json("100000", {}));
  ASSERT_TRUE(legacy.is_ok() && stamped.is_ok());
  EXPECT_TRUE(
      diff_records(legacy.value(), stamped.value(), Tolerances{}).comparable);
  EXPECT_TRUE(
      diff_records(stamped.value(), legacy.value(), Tolerances{}).comparable);
}

TEST(Tolerances, PerMetricOverrideWinsOverDefault) {
  Tolerances tolerances;
  tolerances.default_pct = 10.0;
  tolerances.per_metric.push_back({"wall_us", 50.0});
  EXPECT_DOUBLE_EQ(tolerances.for_metric("wall_us"), 50.0);
  EXPECT_DOUBLE_EQ(tolerances.for_metric("span/other"), 10.0);

  // A +25% wall-clock change passes under the 50% override but the same
  // span change gates under the default.
  const auto baseline =
      parse_bench_record(record_json("100000", {{"phase", 100000.0}}));
  const auto current =
      parse_bench_record(record_json("125000", {{"phase", 125000.0}}));
  ASSERT_TRUE(baseline.is_ok() && current.is_ok());
  const Diff diff =
      diff_records(baseline.value(), current.value(), tolerances);
  ASSERT_EQ(diff.rows.size(), 2u);
  EXPECT_EQ(diff.rows[0].metric, "span/phase");
  EXPECT_EQ(diff.rows[0].status, RowStatus::kRegression);
  EXPECT_EQ(diff.rows[1].metric, "wall_us");
  EXPECT_EQ(diff.rows[1].status, RowStatus::kOk);
}

TEST(RenderDiff, ShowsVerdictAndRefusals) {
  const auto baseline = parse_bench_record(record_json("100000", {}));
  const auto slower = parse_bench_record(record_json("200000", {}));
  ASSERT_TRUE(baseline.is_ok() && slower.is_ok());
  const std::string regressed = render_diff(
      diff_records(baseline.value(), slower.value(), Tolerances{}));
  EXPECT_NE(regressed.find("REGRESSION"), std::string::npos);
  EXPECT_NE(regressed.find("=> REGRESSED"), std::string::npos);

  const std::string ok = render_diff(
      diff_records(baseline.value(), baseline.value(), Tolerances{}));
  EXPECT_NE(ok.find("=> OK"), std::string::npos);

  const auto other = parse_bench_record(record_json("100000", {}, "8"));
  ASSERT_TRUE(other.is_ok());
  const std::string refused = render_diff(
      diff_records(baseline.value(), other.value(), Tolerances{}));
  EXPECT_NE(refused.find("REFUSED"), std::string::npos);
  EXPECT_NE(refused.find("--ignore-meta"), std::string::npos);
}

TEST(CheckDirectories, ComparesMatchingRecordsAndListsMissingOnes) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "geonet_test_perf_gate";
  fs::remove_all(root);
  const fs::path baseline_dir = root / "baseline";
  const fs::path current_dir = root / "current";
  fs::create_directories(baseline_dir);
  fs::create_directories(current_dir);
  const auto write = [](const fs::path& path, const std::string& text) {
    std::ofstream out(path);
    out << text;
  };
  write(baseline_dir / "BENCH_a.json", record_json("100000", {}));
  write(baseline_dir / "BENCH_b.json", record_json("100000", {}));
  write(current_dir / "BENCH_a.json", record_json("150000", {}));
  // BENCH_b.json missing from current; stray non-bench files ignored.
  write(baseline_dir / "notes.txt", "not a record");

  const auto result = check_directories(baseline_dir.string(),
                                        current_dir.string(), Tolerances{});
  ASSERT_TRUE(result.is_ok()) << result.status().message();
  ASSERT_EQ(result.value().diffs.size(), 1u);
  EXPECT_EQ(result.value().diffs[0].label, "BENCH_a.json");
  EXPECT_TRUE(result.value().regressed());
  EXPECT_FALSE(result.value().refused());
  ASSERT_EQ(result.value().missing_current.size(), 1u);
  EXPECT_EQ(result.value().missing_current[0], "BENCH_b.json");

  // A baseline directory without records is an error, not an empty pass.
  fs::remove(baseline_dir / "BENCH_a.json");
  fs::remove(baseline_dir / "BENCH_b.json");
  EXPECT_FALSE(check_directories(baseline_dir.string(), current_dir.string(),
                                 Tolerances{})
                   .is_ok());
  fs::remove_all(root);
}

}  // namespace
}  // namespace geonet::perf
