// Integration-level fault matrix: the ISSUE acceptance scenario (kill 3
// of 19 monitors mid-run, throttle 10% of routers) must degrade the
// measurement without wrecking the science, and run_study must capture
// phase failures instead of aborting.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/study.h"
#include "fault/fault_plan.h"
#include "synth/scenario.h"
#include "tests/test_world.h"

namespace geonet {
namespace {

using geonet::testing::small_world;

synth::ScenarioOptions matrix_options() {
  synth::ScenarioOptions options;  // fixed, ignores GEONET_SCALE
  options.scale = 0.04;
  options.seed = 20020101;
  return options;
}

const synth::Scenario& clean_scenario() {
  static const synth::Scenario scenario =
      synth::Scenario::build(matrix_options());
  return scenario;
}

const synth::Scenario& faulted_scenario() {
  static const synth::Scenario scenario = [] {
    auto options = matrix_options();
    options.faults =
        fault::parse_fault_plan(
            "monitor-outage:count=3,at=0.5;throttle:frac=0.1,rate=0.3")
            .value();
    return synth::Scenario::build(options);
  }();
  return scenario;
}

TEST(FaultMatrix, AcceptancePlanDegradesButCompletes) {
  const synth::Scenario& scenario = faulted_scenario();
  const fault::FaultStats& faults = scenario.fault_stats();
  EXPECT_EQ(faults.monitors_killed, 3u);
  EXPECT_GT(faults.destinations_skipped, 0u);
  EXPECT_GT(faults.routers_throttled, 0u);
  EXPECT_GT(scenario.probe_stats().probes, 0u);
  EXPECT_GT(scenario.probe_stats().retries, 0u);
  // The damaged campaign still yields a usable processed dataset.
  const auto& graph = scenario.graph(synth::DatasetKind::kSkitter,
                                     synth::MapperKind::kIxMapper);
  EXPECT_GT(graph.node_count(), 1000u);
  EXPECT_GT(graph.edge_count(), 1000u);
}

TEST(FaultMatrix, DegradationJsonIsPopulatedOnlyUnderFaults) {
  const std::string clean = synth::scenario_degradation_json(clean_scenario());
  EXPECT_EQ(clean, "{}");
  const std::string faulted =
      synth::scenario_degradation_json(faulted_scenario());
  EXPECT_NE(faulted.find("\"plan\""), std::string::npos);
  EXPECT_NE(faulted.find("\"monitors_killed\":3"), std::string::npos)
      << faulted;
  EXPECT_NE(faulted.find("\"probes\""), std::string::npos);
}

TEST(FaultMatrix, WaxmanDecayScaleSurvivesTheAcceptancePlan) {
  core::StudyOptions options;
  options.compute_fractal_dimension = false;
  options.regions = {geo::regions::us()};
  const auto study = [&](const synth::Scenario& scenario) {
    return core::run_study(scenario.graph(synth::DatasetKind::kSkitter,
                                          synth::MapperKind::kIxMapper),
                           scenario.world(), options);
  };
  const core::StudyReport clean = study(clean_scenario());
  const core::StudyReport faulted = study(faulted_scenario());
  ASSERT_EQ(clean.regions.size(), 1u);
  ASSERT_EQ(faulted.regions.size(), 1u);
  const double clean_lambda = clean.regions[0].waxman.lambda_miles;
  const double faulted_lambda = faulted.regions[0].waxman.lambda_miles;
  ASSERT_GT(clean_lambda, 0.0);
  // Acceptance bound: the decay scale moves < 25% under the plan.
  EXPECT_LT(std::abs(faulted_lambda - clean_lambda) / clean_lambda, 0.25)
      << "clean " << clean_lambda << " vs faulted " << faulted_lambda;
  EXPECT_FALSE(clean.degradation.degraded());
  EXPECT_FALSE(faulted.degradation.degraded());
}

// ---------------------------------------------------------------------------
// run_study graceful degradation (driven by the chaos hook)

TEST(StudyDegradation, InjectedPhaseFailureIsCapturedNotFatal) {
  const auto& scenario = clean_scenario();
  core::StudyOptions options;
  options.compute_fractal_dimension = false;
  options.inject_phase_failures = {"hulls"};
  const core::StudyReport report = core::run_study(
      scenario.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper),
      scenario.world(), options);
  EXPECT_TRUE(report.degradation.degraded());
  EXPECT_EQ(report.degradation.errors, 1u);
  EXPECT_FALSE(report.degradation.budget_exhausted);
  bool found = false;
  for (const core::PhaseOutcome& phase : report.degradation.phases) {
    if (phase.phase == "hulls") {
      found = true;
      EXPECT_FALSE(phase.ok);
      EXPECT_FALSE(phase.error.empty());
    }
  }
  EXPECT_TRUE(found);
  // The rest of the study is intact.
  EXPECT_FALSE(report.regions.empty());
  EXPECT_GT(report.nodes, 0u);
  // And the damage is visible in both renderings.
  EXPECT_NE(core::summarize(report).find("DEGRADED"), std::string::npos);
  const std::string json = core::study_degradation_json(report.degradation);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("hulls"), std::string::npos) << json;
}

TEST(StudyDegradation, DependentPhasesAreSkippedWhenInputsFail) {
  const auto& scenario = clean_scenario();
  core::StudyOptions options;
  options.compute_fractal_dimension = false;
  options.regions = {geo::regions::us()};
  options.inject_phase_failures = {"distance_pref:US"};
  const core::StudyReport report = core::run_study(
      scenario.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper),
      scenario.world(), options);
  EXPECT_EQ(report.degradation.errors, 1u);
  EXPECT_GE(report.degradation.skipped, 1u);
  bool waxman_skipped = false;
  for (const core::PhaseOutcome& phase : report.degradation.phases) {
    if (phase.phase == "waxman_fit:US") {
      waxman_skipped = phase.skipped;
      EXPECT_NE(phase.error.find("dependency"), std::string::npos);
    }
  }
  EXPECT_TRUE(waxman_skipped);
}

TEST(StudyDegradation, ExhaustedBudgetSkipsRemainingPhases) {
  const auto& scenario = clean_scenario();
  core::StudyOptions options;
  options.compute_fractal_dimension = false;
  options.regions = {geo::regions::us()};
  options.max_errors = 0;  // first error blows the budget
  options.inject_phase_failures = {"economic_tables"};
  const core::StudyReport report = core::run_study(
      scenario.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper),
      scenario.world(), options);
  EXPECT_TRUE(report.degradation.budget_exhausted);
  EXPECT_EQ(report.degradation.errors, 1u);
  EXPECT_GT(report.degradation.skipped, 0u);
  const std::string json = core::study_degradation_json(report.degradation);
  EXPECT_NE(json.find("\"budget_exhausted\":true"), std::string::npos) << json;
  EXPECT_NE(core::study_report_json(report).find("\"degraded\":true"),
            std::string::npos);
}

TEST(StudyDegradation, CleanRunReportsNoDamage) {
  const auto& scenario = clean_scenario();
  core::StudyOptions options;
  options.compute_fractal_dimension = false;
  options.regions = {geo::regions::us()};
  const core::StudyReport report = core::run_study(
      scenario.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper),
      scenario.world(), options);
  EXPECT_FALSE(report.degradation.degraded());
  EXPECT_FALSE(report.degradation.budget_exhausted);
  EXPECT_EQ(core::study_degradation_json(report.degradation), "{}");
  EXPECT_EQ(core::summarize(report).find("DEGRADED"), std::string::npos);
}

}  // namespace
}  // namespace geonet
