#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "report/ascii_map.h"
#include "report/series.h"
#include "report/table.h"

namespace geonet::report {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table table({"Region", "Nodes"});
  table.add_row({"US", "1234"});
  table.add_row({"Europe", "56"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("Region"), std::string::npos);
  EXPECT_NE(out.find("US"), std::string::npos);
  EXPECT_NE(out.find("1234"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, PadsShortRows) {
  Table table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_NO_THROW(table.to_string());
}

TEST(Table, NumericCellsRightAligned) {
  Table table({"name", "count"});
  table.add_row({"x", "5"});
  table.add_row({"y", "12345"});
  const std::string out = table.to_string();
  // "5" must be right-aligned under "count": find the row line.
  std::istringstream stream(out);
  std::string line;
  std::getline(stream, line);  // header
  std::getline(stream, line);  // separator
  std::getline(stream, line);  // row x
  EXPECT_EQ(line.back(), '5');
}

TEST(Table, MarkdownRendering) {
  Table table({"Region", "Nodes"});
  table.add_row({"US", "1234"});
  const std::string md = table.to_markdown();
  EXPECT_EQ(md, "| Region | Nodes |\n|---|---|\n| US | 1234 |\n");
}

TEST(Formatting, Fmt) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Formatting, FmtCountThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(563521), "563,521");
  EXPECT_EQ(fmt_count(1075454), "1,075,454");
}

TEST(Formatting, FmtPercent) {
  EXPECT_EQ(fmt_percent(0.921, 1), "92.1%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(Series, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/geonet_series.dat";
  Series series{"f(d)", {{1.0, 0.5}, {2.0, 0.25}}};
  ASSERT_TRUE(write_series(path, series, "unit test"));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "# unit test");
  std::getline(in, line);  // series header
  double x = 0.0, y = 0.0;
  in >> x >> y;
  EXPECT_DOUBLE_EQ(x, 1.0);
  EXPECT_DOUBLE_EQ(y, 0.5);
  in >> x >> y;
  EXPECT_DOUBLE_EQ(x, 2.0);
  EXPECT_DOUBLE_EQ(y, 0.25);
}

TEST(Series, WriteColumnsTruncatesToShortest) {
  const std::string path = ::testing::TempDir() + "/geonet_columns.dat";
  ASSERT_TRUE(write_columns(path, {"a", "b"},
                            {{1.0, 2.0, 3.0}, {10.0, 20.0}}));
  std::ifstream in(path);
  std::string line;
  int data_lines = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') ++data_lines;
  }
  EXPECT_EQ(data_lines, 2);
}

TEST(Series, WriteFailsOnBadPath) {
  EXPECT_FALSE(write_series("/nonexistent-dir/xyz/file.dat", {"s", {}}));
}

TEST(AsciiMap, DimensionsAndContent) {
  std::vector<geo::GeoPoint> points;
  for (int i = 0; i < 50; ++i) points.push_back({40.0, -100.0});
  points.push_back({30.0, -80.0});
  const geo::Region us = geo::regions::us();
  const std::string map = ascii_density_map(points, us, 60);
  // 60 wide, aspect-derived height, newline-terminated rows.
  const auto first_newline = map.find('\n');
  EXPECT_EQ(first_newline, 60u);
  // Dense cell renders darker than the single-point cell.
  EXPECT_NE(map.find('@'), std::string::npos);
  EXPECT_NE(map.find_first_of(".:-="), std::string::npos);
}

TEST(AsciiMap, EmptyPointsAllBlank) {
  const std::string map =
      ascii_density_map({}, geo::regions::us(), 40);
  for (const char c : map) {
    EXPECT_TRUE(c == ' ' || c == '\n');
  }
}

TEST(AsciiMap, PointsOutsideRegionIgnored) {
  std::vector<geo::GeoPoint> points{{51.5, -0.1}};  // London not in US box
  const std::string map = ascii_density_map(points, geo::regions::us(), 40);
  for (const char c : map) {
    EXPECT_TRUE(c == ' ' || c == '\n');
  }
}

TEST(ResultsDir, CreatesDirectory) {
  const std::string dir = results_dir();
  EXPECT_FALSE(dir.empty());
  std::ofstream probe(dir + "/probe.tmp");
  EXPECT_TRUE(probe.good());
  probe.close();
  std::remove((dir + "/probe.tmp").c_str());
}

}  // namespace
}  // namespace geonet::report
