#include "net/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "generators/common.h"
#include "net/topology.h"

namespace geonet::net {
namespace {

AnnotatedGraph sample_graph() {
  AnnotatedGraph g(NodeKind::kRouter, "sample graph");
  g.add_node({*parse_ipv4("1.0.0.1"), {40.7128, -74.006}, 100});
  g.add_node({*parse_ipv4("1.0.0.2"), {34.0522, -118.244}, 100});
  g.add_node({*parse_ipv4("2.0.0.1"), {51.5074, -0.1278}, 200});
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  return g;
}

TEST(GraphIo, RoundTripsNodesEdgesAndMetadata) {
  const AnnotatedGraph original = sample_graph();
  std::stringstream buffer;
  ASSERT_TRUE(write_graph(buffer, original));

  std::string error;
  const auto restored = read_graph(buffer, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_EQ(restored->kind(), NodeKind::kRouter);
  EXPECT_EQ(restored->name(), "sample graph");
  ASSERT_EQ(restored->node_count(), original.node_count());
  ASSERT_EQ(restored->edge_count(), original.edge_count());
  for (std::uint32_t i = 0; i < original.node_count(); ++i) {
    EXPECT_NEAR(restored->node(i).location.lat_deg,
                original.node(i).location.lat_deg, 1e-5);
    EXPECT_EQ(restored->node(i).asn, original.node(i).asn);
    EXPECT_EQ(restored->node(i).addr, original.node(i).addr);
  }
  EXPECT_TRUE(restored->has_edge(0, 1));
  EXPECT_TRUE(restored->has_edge(1, 2));
  EXPECT_FALSE(restored->has_edge(0, 2));
}

TEST(GraphIo, RoundTripsLatencyColumn) {
  const AnnotatedGraph original = sample_graph();
  const auto latencies = generators::link_latencies_ms(original);
  std::stringstream buffer;
  ASSERT_TRUE(write_graph(buffer, original, latencies));
  // The extra column must not break reading.
  const auto restored = read_graph(buffer);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->edge_count(), original.edge_count());
}

TEST(GraphIo, ReadsInterfaceKindAndComments) {
  std::stringstream in(
      "# a comment\n"
      "kind interface\n"
      "node 5 10.5 20.5 7\n"
      "node 9 11.5 21.5 7   # trailing comment\n"
      "link 5 9\n"
      "\n");
  const auto g = read_graph(in);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->kind(), NodeKind::kInterface);
  EXPECT_EQ(g->node_count(), 2u);
  EXPECT_EQ(g->edge_count(), 1u);
}

TEST(GraphIo, SparseIdsAreRemapped) {
  std::stringstream in(
      "node 1000 0 0 1\n"
      "node 42 1 1 1\n"
      "link 1000 42\n");
  const auto g = read_graph(in);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->node_count(), 2u);
  EXPECT_TRUE(g->has_edge(0, 1));
}

TEST(GraphIo, RejectsMalformedRecords) {
  std::string error;
  {
    std::stringstream in("node 1 abc def 1\n");
    EXPECT_FALSE(read_graph(in, &error).has_value());
    EXPECT_NE(error.find("line 1"), std::string::npos);
  }
  {
    std::stringstream in("frobnicate 1 2 3\n");
    EXPECT_FALSE(read_graph(in, &error).has_value());
  }
  {
    std::stringstream in("node 1 0 0 1\nlink 1 2\n");
    EXPECT_FALSE(read_graph(in, &error).has_value());
    EXPECT_NE(error.find("unknown node"), std::string::npos);
  }
  {
    std::stringstream in("node 1 0 0 1\nnode 1 2 2 2\n");
    EXPECT_FALSE(read_graph(in, &error).has_value());
    EXPECT_NE(error.find("duplicate"), std::string::npos);
  }
  {
    std::stringstream in("node 1 95.0 0 1\n");  // invalid latitude
    EXPECT_FALSE(read_graph(in, &error).has_value());
  }
  {
    std::stringstream in("kind banana\n");
    EXPECT_FALSE(read_graph(in, &error).has_value());
  }
}

TEST(GraphIo, BadAddressRejected) {
  std::stringstream in("node 1 0 0 1 999.999.999.999\n");
  std::string error;
  EXPECT_FALSE(read_graph(in, &error).has_value());
  EXPECT_NE(error.find("bad address"), std::string::npos);
}

TEST(GraphIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/geonet_io.graph";
  const AnnotatedGraph original = sample_graph();
  ASSERT_TRUE(write_graph_file(path, original));
  std::string error;
  const auto restored = read_graph_file(path, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_EQ(restored->node_count(), 3u);
}

TEST(GraphIo, MissingFileReportsError) {
  std::string error;
  EXPECT_FALSE(read_graph_file("/no/such/file.graph", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace geonet::net
