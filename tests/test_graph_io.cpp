#include "net/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "generators/common.h"
#include "net/topology.h"

namespace geonet::net {
namespace {

AnnotatedGraph sample_graph() {
  AnnotatedGraph g(NodeKind::kRouter, "sample graph");
  g.add_node({*parse_ipv4("1.0.0.1"), {40.7128, -74.006}, 100});
  g.add_node({*parse_ipv4("1.0.0.2"), {34.0522, -118.244}, 100});
  g.add_node({*parse_ipv4("2.0.0.1"), {51.5074, -0.1278}, 200});
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  return g;
}

TEST(GraphIo, RoundTripsNodesEdgesAndMetadata) {
  const AnnotatedGraph original = sample_graph();
  std::stringstream buffer;
  ASSERT_TRUE(write_graph(buffer, original));

  std::string error;
  const auto restored = read_graph(buffer, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_EQ(restored->kind(), NodeKind::kRouter);
  EXPECT_EQ(restored->name(), "sample graph");
  ASSERT_EQ(restored->node_count(), original.node_count());
  ASSERT_EQ(restored->edge_count(), original.edge_count());
  for (std::uint32_t i = 0; i < original.node_count(); ++i) {
    EXPECT_NEAR(restored->node(i).location.lat_deg,
                original.node(i).location.lat_deg, 1e-5);
    EXPECT_EQ(restored->node(i).asn, original.node(i).asn);
    EXPECT_EQ(restored->node(i).addr, original.node(i).addr);
  }
  EXPECT_TRUE(restored->has_edge(0, 1));
  EXPECT_TRUE(restored->has_edge(1, 2));
  EXPECT_FALSE(restored->has_edge(0, 2));
}

TEST(GraphIo, RoundTripsLatencyColumn) {
  const AnnotatedGraph original = sample_graph();
  const auto latencies = generators::link_latencies_ms(original);
  std::stringstream buffer;
  ASSERT_TRUE(write_graph(buffer, original, latencies));
  // The extra column must not break reading.
  const auto restored = read_graph(buffer);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->edge_count(), original.edge_count());
}

TEST(GraphIo, ReadsInterfaceKindAndComments) {
  std::stringstream in(
      "# a comment\n"
      "kind interface\n"
      "node 5 10.5 20.5 7\n"
      "node 9 11.5 21.5 7   # trailing comment\n"
      "link 5 9\n"
      "\n");
  const auto g = read_graph(in);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->kind(), NodeKind::kInterface);
  EXPECT_EQ(g->node_count(), 2u);
  EXPECT_EQ(g->edge_count(), 1u);
}

TEST(GraphIo, SparseIdsAreRemapped) {
  std::stringstream in(
      "node 1000 0 0 1\n"
      "node 42 1 1 1\n"
      "link 1000 42\n");
  const auto g = read_graph(in);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->node_count(), 2u);
  EXPECT_TRUE(g->has_edge(0, 1));
}

TEST(GraphIo, RejectsMalformedRecords) {
  std::string error;
  {
    std::stringstream in("node 1 abc def 1\n");
    EXPECT_FALSE(read_graph(in, &error).has_value());
    EXPECT_NE(error.find("line 1"), std::string::npos);
  }
  {
    std::stringstream in("frobnicate 1 2 3\n");
    EXPECT_FALSE(read_graph(in, &error).has_value());
  }
  {
    std::stringstream in("node 1 0 0 1\nlink 1 2\n");
    EXPECT_FALSE(read_graph(in, &error).has_value());
    EXPECT_NE(error.find("unknown node"), std::string::npos);
  }
  {
    std::stringstream in("node 1 0 0 1\nnode 1 2 2 2\n");
    EXPECT_FALSE(read_graph(in, &error).has_value());
    EXPECT_NE(error.find("duplicate"), std::string::npos);
  }
  {
    std::stringstream in("node 1 95.0 0 1\n");  // invalid latitude
    EXPECT_FALSE(read_graph(in, &error).has_value());
  }
  {
    std::stringstream in("kind banana\n");
    EXPECT_FALSE(read_graph(in, &error).has_value());
  }
}

TEST(GraphIo, BadAddressRejected) {
  std::stringstream in("node 1 0 0 1 999.999.999.999\n");
  std::string error;
  EXPECT_FALSE(read_graph(in, &error).has_value());
  EXPECT_NE(error.find("bad address"), std::string::npos);
}

TEST(GraphIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/geonet_io.graph";
  const AnnotatedGraph original = sample_graph();
  ASSERT_TRUE(write_graph_file(path, original));
  std::string error;
  const auto restored = read_graph_file(path, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_EQ(restored->node_count(), 3u);
}

TEST(GraphIo, MissingFileReportsError) {
  std::string error;
  EXPECT_FALSE(read_graph_file("/no/such/file.graph", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Strict vs lenient parsing over a table of malformed inputs: strict mode
// must reject each one outright; lenient mode must quarantine exactly the
// bad records and keep the rest of the graph.

struct FuzzCase {
  const char* label;
  const char* input;
  std::size_t quarantined;  ///< lenient-mode quarantine count
  std::size_t nodes;        ///< surviving nodes in lenient mode
  std::size_t links;        ///< surviving links in lenient mode
  const char* reason;       ///< substring of the first quarantine reason
};

constexpr FuzzCase kFuzzCases[] = {
    {"truncated node record", "node 1 0\nnode 2 0 0 1\nnode 3 1 1 1\nlink 2 3\n",
     1, 2, 1, "malformed node record"},
    {"non-numeric fields", "node 1 abc def 1\nnode 2 0 0 1\n", 1, 1, 0,
     "malformed node record"},
    {"duplicate node id", "node 1 0 0 1\nnode 1 5 5 2\nnode 2 1 1 1\nlink 1 2\n",
     1, 2, 1, "duplicate node id 1"},
    {"out-of-range latitude", "node 1 95 0 1\nnode 2 0 0 1\n", 1, 1, 0,
     "invalid coordinates"},
    {"out-of-range longitude", "node 1 0 200 1\nnode 2 0 0 1\n", 1, 1, 0,
     "invalid coordinates"},
    {"bad address", "node 1 0 0 1 999.999.999.999\nnode 2 0 0 1\n", 1, 1, 0,
     "bad address"},
    {"link to unknown node", "node 1 0 0 1\nlink 1 7\n", 1, 1, 0,
     "unknown node"},
    {"truncated link record", "node 1 0 0 1\nnode 2 1 1 1\nlink 1\nlink 1 2\n",
     1, 2, 1, "malformed link record"},
    {"unknown record tag", "frobnicate 1 2 3\nnode 1 0 0 1\n", 1, 1, 0,
     "unknown record"},
    {"unknown kind", "kind banana\nnode 1 0 0 1\n", 1, 1, 0, "unknown kind"},
};

TEST(GraphIoFuzz, StrictRejectsMalformedInputs) {
  for (const FuzzCase& c : kFuzzCases) {
    std::stringstream in(c.input);
    const GraphReadResult result = read_graph_ex(in, {.lenient = false});
    EXPECT_FALSE(result.ok()) << c.label;
    EXPECT_EQ(result.status.code(), err::Code::kDataLoss) << c.label;
    EXPECT_NE(result.status.message().find(c.reason), std::string::npos)
        << c.label << ": " << result.status.message();
    // Strict failures still identify the offending record.
    ASSERT_FALSE(result.quarantined.empty()) << c.label;
  }
}

TEST(GraphIoFuzz, LenientQuarantinesAndKeepsTheRest) {
  for (const FuzzCase& c : kFuzzCases) {
    std::stringstream in(c.input);
    const GraphReadResult result = read_graph_ex(in, {.lenient = true});
    ASSERT_TRUE(result.ok()) << c.label << ": " << result.status.message();
    EXPECT_TRUE(result.status.is_ok()) << c.label;
    EXPECT_EQ(result.quarantined.size(), c.quarantined) << c.label;
    EXPECT_EQ(result.graph->node_count(), c.nodes) << c.label;
    EXPECT_EQ(result.graph->edge_count(), c.links) << c.label;
    ASSERT_FALSE(result.quarantined.empty()) << c.label;
    EXPECT_NE(result.quarantined.front().reason.find(c.reason),
              std::string::npos)
        << c.label << ": " << result.quarantined.front().reason;
    EXPECT_FALSE(result.quarantined.front().text.empty()) << c.label;
  }
}

TEST(GraphIoFuzz, QuarantineRecordsCarryLineNumbers) {
  std::stringstream in(
      "node 1 0 0 1\n"
      "node 2 bad bad 1\n"
      "node 3 1 1 1\n"
      "link 3 99\n");
  const GraphReadResult result = read_graph_ex(in, {.lenient = true});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.quarantined.size(), 2u);
  EXPECT_EQ(result.quarantined[0].line_no, 2u);
  EXPECT_EQ(result.quarantined[1].line_no, 4u);
}

TEST(GraphIoFuzz, QuarantineCapFailsTheRead) {
  std::stringstream in(
      "node 1 a a 1\n"
      "node 2 b b 1\n"
      "node 3 c c 1\n"
      "node 4 d d 1\n");
  const GraphReadResult result =
      read_graph_ex(in, {.lenient = true, .max_quarantined = 2});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status.code(), err::Code::kResourceExhausted);
}

TEST(GraphIoFuzz, LenientCleanInputHasNoQuarantine) {
  std::stringstream buffer;
  ASSERT_TRUE(write_graph(buffer, sample_graph()));
  const GraphReadResult result = read_graph_ex(buffer, {.lenient = true});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.quarantined.empty());
  EXPECT_EQ(result.graph->node_count(), 3u);
}

// ---------------------------------------------------------------------------
// Write-side error reporting: a stream that dies mid-write must be caught
// at the record it died on, not discovered (or missed) at the end.

/// A streambuf that accepts `limit` bytes and then fails every write.
class LimitedBuf : public std::streambuf {
 public:
  explicit LimitedBuf(std::size_t limit) : limit_(limit) {}

 protected:
  int overflow(int ch) override {
    if (written_ >= limit_) return traits_type::eof();
    ++written_;
    return ch;
  }
  std::streamsize xsputn(const char* /*s*/, std::streamsize n) override {
    const auto room = static_cast<std::streamsize>(limit_ - written_);
    const std::streamsize accepted = n < room ? n : room;
    written_ += static_cast<std::size_t>(accepted);
    return accepted;
  }

 private:
  std::size_t limit_;
  std::size_t written_ = 0;
};

TEST(GraphIoWrite, HeaderFailureIsReported) {
  LimitedBuf buf(4);
  std::ostream out(&buf);
  std::string error;
  EXPECT_FALSE(write_graph(out, sample_graph(), {}, &error));
  EXPECT_NE(error.find("header"), std::string::npos) << error;
}

TEST(GraphIoWrite, FailingNodeRecordIsNamed) {
  // Enough room for the header lines but not for all three node records.
  LimitedBuf buf(120);
  std::ostream out(&buf);
  std::string error;
  EXPECT_FALSE(write_graph(out, sample_graph(), {}, &error));
  EXPECT_NE(error.find("node record"), std::string::npos) << error;
}

TEST(GraphIoWrite, FailingLinkRecordIsNamed) {
  const AnnotatedGraph graph = sample_graph();
  // Find how many bytes a full write needs, then starve the link section.
  std::ostringstream full;
  ASSERT_TRUE(write_graph(full, graph));
  LimitedBuf buf(full.str().size() - 4);
  std::ostream out(&buf);
  std::string error;
  EXPECT_FALSE(write_graph(out, graph, {}, &error));
  EXPECT_NE(error.find("link record"), std::string::npos) << error;
}

TEST(GraphIoWrite, UnwritablePathIsReported) {
  std::string error;
  EXPECT_FALSE(
      write_graph_file("/no/such/dir/out.graph", sample_graph(), {}, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

}  // namespace
}  // namespace geonet::net
