
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_annotated_graph.cpp" "tests/CMakeFiles/geonet_tests.dir/test_annotated_graph.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_annotated_graph.cpp.o.d"
  "/root/repo/tests/test_as_analysis.cpp" "tests/CMakeFiles/geonet_tests.dir/test_as_analysis.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_as_analysis.cpp.o.d"
  "/root/repo/tests/test_bgp.cpp" "tests/CMakeFiles/geonet_tests.dir/test_bgp.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_bgp.cpp.o.d"
  "/root/repo/tests/test_bgp_propagation.cpp" "tests/CMakeFiles/geonet_tests.dir/test_bgp_propagation.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_bgp_propagation.cpp.o.d"
  "/root/repo/tests/test_bootstrap.cpp" "tests/CMakeFiles/geonet_tests.dir/test_bootstrap.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_bootstrap.cpp.o.d"
  "/root/repo/tests/test_box_counting.cpp" "tests/CMakeFiles/geonet_tests.dir/test_box_counting.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_box_counting.cpp.o.d"
  "/root/repo/tests/test_ccdf.cpp" "tests/CMakeFiles/geonet_tests.dir/test_ccdf.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_ccdf.cpp.o.d"
  "/root/repo/tests/test_convex_hull.cpp" "tests/CMakeFiles/geonet_tests.dir/test_convex_hull.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_convex_hull.cpp.o.d"
  "/root/repo/tests/test_density.cpp" "tests/CMakeFiles/geonet_tests.dir/test_density.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_density.cpp.o.d"
  "/root/repo/tests/test_distance.cpp" "tests/CMakeFiles/geonet_tests.dir/test_distance.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_distance.cpp.o.d"
  "/root/repo/tests/test_distance_pref.cpp" "tests/CMakeFiles/geonet_tests.dir/test_distance_pref.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_distance_pref.cpp.o.d"
  "/root/repo/tests/test_distributions.cpp" "tests/CMakeFiles/geonet_tests.dir/test_distributions.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_distributions.cpp.o.d"
  "/root/repo/tests/test_fenwick.cpp" "tests/CMakeFiles/geonet_tests.dir/test_fenwick.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_fenwick.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/geonet_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_geo_mapper.cpp" "tests/CMakeFiles/geonet_tests.dir/test_geo_mapper.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_geo_mapper.cpp.o.d"
  "/root/repo/tests/test_geo_point.cpp" "tests/CMakeFiles/geonet_tests.dir/test_geo_point.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_geo_point.cpp.o.d"
  "/root/repo/tests/test_gnuplot.cpp" "tests/CMakeFiles/geonet_tests.dir/test_gnuplot.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_gnuplot.cpp.o.d"
  "/root/repo/tests/test_graph_algos.cpp" "tests/CMakeFiles/geonet_tests.dir/test_graph_algos.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_graph_algos.cpp.o.d"
  "/root/repo/tests/test_graph_io.cpp" "tests/CMakeFiles/geonet_tests.dir/test_graph_io.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_graph_io.cpp.o.d"
  "/root/repo/tests/test_grid.cpp" "tests/CMakeFiles/geonet_tests.dir/test_grid.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_grid.cpp.o.d"
  "/root/repo/tests/test_ground_truth.cpp" "tests/CMakeFiles/geonet_tests.dir/test_ground_truth.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_ground_truth.cpp.o.d"
  "/root/repo/tests/test_histogram.cpp" "tests/CMakeFiles/geonet_tests.dir/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_histogram.cpp.o.d"
  "/root/repo/tests/test_hostnames.cpp" "tests/CMakeFiles/geonet_tests.dir/test_hostnames.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_hostnames.cpp.o.d"
  "/root/repo/tests/test_hull_analysis.cpp" "tests/CMakeFiles/geonet_tests.dir/test_hull_analysis.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_hull_analysis.cpp.o.d"
  "/root/repo/tests/test_integration_io.cpp" "tests/CMakeFiles/geonet_tests.dir/test_integration_io.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_integration_io.cpp.o.d"
  "/root/repo/tests/test_ipv4.cpp" "tests/CMakeFiles/geonet_tests.dir/test_ipv4.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_ipv4.cpp.o.d"
  "/root/repo/tests/test_knob_properties.cpp" "tests/CMakeFiles/geonet_tests.dir/test_knob_properties.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_knob_properties.cpp.o.d"
  "/root/repo/tests/test_linear_fit.cpp" "tests/CMakeFiles/geonet_tests.dir/test_linear_fit.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_linear_fit.cpp.o.d"
  "/root/repo/tests/test_link_domains.cpp" "tests/CMakeFiles/geonet_tests.dir/test_link_domains.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_link_domains.cpp.o.d"
  "/root/repo/tests/test_link_lengths.cpp" "tests/CMakeFiles/geonet_tests.dir/test_link_lengths.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_link_lengths.cpp.o.d"
  "/root/repo/tests/test_new_generators.cpp" "tests/CMakeFiles/geonet_tests.dir/test_new_generators.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_new_generators.cpp.o.d"
  "/root/repo/tests/test_population.cpp" "tests/CMakeFiles/geonet_tests.dir/test_population.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_population.cpp.o.d"
  "/root/repo/tests/test_prefix_trie.cpp" "tests/CMakeFiles/geonet_tests.dir/test_prefix_trie.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_prefix_trie.cpp.o.d"
  "/root/repo/tests/test_probes.cpp" "tests/CMakeFiles/geonet_tests.dir/test_probes.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_probes.cpp.o.d"
  "/root/repo/tests/test_process_pipeline.cpp" "tests/CMakeFiles/geonet_tests.dir/test_process_pipeline.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_process_pipeline.cpp.o.d"
  "/root/repo/tests/test_projection.cpp" "tests/CMakeFiles/geonet_tests.dir/test_projection.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_projection.cpp.o.d"
  "/root/repo/tests/test_property_geo.cpp" "tests/CMakeFiles/geonet_tests.dir/test_property_geo.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_property_geo.cpp.o.d"
  "/root/repo/tests/test_property_pipeline.cpp" "tests/CMakeFiles/geonet_tests.dir/test_property_pipeline.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_property_pipeline.cpp.o.d"
  "/root/repo/tests/test_region.cpp" "tests/CMakeFiles/geonet_tests.dir/test_region.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_region.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/geonet_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/geonet_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_scenario.cpp" "tests/CMakeFiles/geonet_tests.dir/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_scenario.cpp.o.d"
  "/root/repo/tests/test_study.cpp" "tests/CMakeFiles/geonet_tests.dir/test_study.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_study.cpp.o.d"
  "/root/repo/tests/test_summary.cpp" "tests/CMakeFiles/geonet_tests.dir/test_summary.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_summary.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/geonet_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_validate.cpp" "tests/CMakeFiles/geonet_tests.dir/test_validate.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_validate.cpp.o.d"
  "/root/repo/tests/test_waxman_fit.cpp" "tests/CMakeFiles/geonet_tests.dir/test_waxman_fit.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_waxman_fit.cpp.o.d"
  "/root/repo/tests/test_weighted_paths.cpp" "tests/CMakeFiles/geonet_tests.dir/test_weighted_paths.cpp.o" "gcc" "tests/CMakeFiles/geonet_tests.dir/test_weighted_paths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/geonet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/geonet_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/generators/CMakeFiles/geonet_generators.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/geonet_report.dir/DependInfo.cmake"
  "/root/repo/build/src/population/CMakeFiles/geonet_population.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/geonet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/geonet_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/geonet_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
