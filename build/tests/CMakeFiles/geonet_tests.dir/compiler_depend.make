# Empty compiler generated dependencies file for geonet_tests.
# This may be replaced when dependencies are built.
