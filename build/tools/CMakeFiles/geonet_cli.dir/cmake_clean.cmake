file(REMOVE_RECURSE
  "CMakeFiles/geonet_cli.dir/geonet_cli.cpp.o"
  "CMakeFiles/geonet_cli.dir/geonet_cli.cpp.o.d"
  "geonet"
  "geonet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geonet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
