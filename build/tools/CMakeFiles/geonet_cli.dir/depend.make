# Empty dependencies file for geonet_cli.
# This may be replaced when dependencies are built.
