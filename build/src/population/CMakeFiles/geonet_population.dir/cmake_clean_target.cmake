file(REMOVE_RECURSE
  "libgeonet_population.a"
)
