# Empty compiler generated dependencies file for geonet_population.
# This may be replaced when dependencies are built.
