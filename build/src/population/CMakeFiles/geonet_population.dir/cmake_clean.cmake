file(REMOVE_RECURSE
  "CMakeFiles/geonet_population.dir/economic_profile.cpp.o"
  "CMakeFiles/geonet_population.dir/economic_profile.cpp.o.d"
  "CMakeFiles/geonet_population.dir/population_grid.cpp.o"
  "CMakeFiles/geonet_population.dir/population_grid.cpp.o.d"
  "CMakeFiles/geonet_population.dir/synth_population.cpp.o"
  "CMakeFiles/geonet_population.dir/synth_population.cpp.o.d"
  "libgeonet_population.a"
  "libgeonet_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geonet_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
