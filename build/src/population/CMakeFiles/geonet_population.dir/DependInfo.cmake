
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/population/economic_profile.cpp" "src/population/CMakeFiles/geonet_population.dir/economic_profile.cpp.o" "gcc" "src/population/CMakeFiles/geonet_population.dir/economic_profile.cpp.o.d"
  "/root/repo/src/population/population_grid.cpp" "src/population/CMakeFiles/geonet_population.dir/population_grid.cpp.o" "gcc" "src/population/CMakeFiles/geonet_population.dir/population_grid.cpp.o.d"
  "/root/repo/src/population/synth_population.cpp" "src/population/CMakeFiles/geonet_population.dir/synth_population.cpp.o" "gcc" "src/population/CMakeFiles/geonet_population.dir/synth_population.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/geonet_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/geonet_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
