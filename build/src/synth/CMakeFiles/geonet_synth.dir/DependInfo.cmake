
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/bgp.cpp" "src/synth/CMakeFiles/geonet_synth.dir/bgp.cpp.o" "gcc" "src/synth/CMakeFiles/geonet_synth.dir/bgp.cpp.o.d"
  "/root/repo/src/synth/bgp_propagation.cpp" "src/synth/CMakeFiles/geonet_synth.dir/bgp_propagation.cpp.o" "gcc" "src/synth/CMakeFiles/geonet_synth.dir/bgp_propagation.cpp.o.d"
  "/root/repo/src/synth/geo_mapper.cpp" "src/synth/CMakeFiles/geonet_synth.dir/geo_mapper.cpp.o" "gcc" "src/synth/CMakeFiles/geonet_synth.dir/geo_mapper.cpp.o.d"
  "/root/repo/src/synth/ground_truth.cpp" "src/synth/CMakeFiles/geonet_synth.dir/ground_truth.cpp.o" "gcc" "src/synth/CMakeFiles/geonet_synth.dir/ground_truth.cpp.o.d"
  "/root/repo/src/synth/hostnames.cpp" "src/synth/CMakeFiles/geonet_synth.dir/hostnames.cpp.o" "gcc" "src/synth/CMakeFiles/geonet_synth.dir/hostnames.cpp.o.d"
  "/root/repo/src/synth/mercator.cpp" "src/synth/CMakeFiles/geonet_synth.dir/mercator.cpp.o" "gcc" "src/synth/CMakeFiles/geonet_synth.dir/mercator.cpp.o.d"
  "/root/repo/src/synth/scenario.cpp" "src/synth/CMakeFiles/geonet_synth.dir/scenario.cpp.o" "gcc" "src/synth/CMakeFiles/geonet_synth.dir/scenario.cpp.o.d"
  "/root/repo/src/synth/skitter.cpp" "src/synth/CMakeFiles/geonet_synth.dir/skitter.cpp.o" "gcc" "src/synth/CMakeFiles/geonet_synth.dir/skitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/geonet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/population/CMakeFiles/geonet_population.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/geonet_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/geonet_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
