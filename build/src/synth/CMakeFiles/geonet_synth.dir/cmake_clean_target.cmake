file(REMOVE_RECURSE
  "libgeonet_synth.a"
)
