# Empty dependencies file for geonet_synth.
# This may be replaced when dependencies are built.
