file(REMOVE_RECURSE
  "CMakeFiles/geonet_synth.dir/bgp.cpp.o"
  "CMakeFiles/geonet_synth.dir/bgp.cpp.o.d"
  "CMakeFiles/geonet_synth.dir/bgp_propagation.cpp.o"
  "CMakeFiles/geonet_synth.dir/bgp_propagation.cpp.o.d"
  "CMakeFiles/geonet_synth.dir/geo_mapper.cpp.o"
  "CMakeFiles/geonet_synth.dir/geo_mapper.cpp.o.d"
  "CMakeFiles/geonet_synth.dir/ground_truth.cpp.o"
  "CMakeFiles/geonet_synth.dir/ground_truth.cpp.o.d"
  "CMakeFiles/geonet_synth.dir/hostnames.cpp.o"
  "CMakeFiles/geonet_synth.dir/hostnames.cpp.o.d"
  "CMakeFiles/geonet_synth.dir/mercator.cpp.o"
  "CMakeFiles/geonet_synth.dir/mercator.cpp.o.d"
  "CMakeFiles/geonet_synth.dir/scenario.cpp.o"
  "CMakeFiles/geonet_synth.dir/scenario.cpp.o.d"
  "CMakeFiles/geonet_synth.dir/skitter.cpp.o"
  "CMakeFiles/geonet_synth.dir/skitter.cpp.o.d"
  "libgeonet_synth.a"
  "libgeonet_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geonet_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
