file(REMOVE_RECURSE
  "CMakeFiles/geonet_core.dir/as_analysis.cpp.o"
  "CMakeFiles/geonet_core.dir/as_analysis.cpp.o.d"
  "CMakeFiles/geonet_core.dir/density.cpp.o"
  "CMakeFiles/geonet_core.dir/density.cpp.o.d"
  "CMakeFiles/geonet_core.dir/distance_pref.cpp.o"
  "CMakeFiles/geonet_core.dir/distance_pref.cpp.o.d"
  "CMakeFiles/geonet_core.dir/hull_analysis.cpp.o"
  "CMakeFiles/geonet_core.dir/hull_analysis.cpp.o.d"
  "CMakeFiles/geonet_core.dir/link_domains.cpp.o"
  "CMakeFiles/geonet_core.dir/link_domains.cpp.o.d"
  "CMakeFiles/geonet_core.dir/link_lengths.cpp.o"
  "CMakeFiles/geonet_core.dir/link_lengths.cpp.o.d"
  "CMakeFiles/geonet_core.dir/study.cpp.o"
  "CMakeFiles/geonet_core.dir/study.cpp.o.d"
  "CMakeFiles/geonet_core.dir/validate.cpp.o"
  "CMakeFiles/geonet_core.dir/validate.cpp.o.d"
  "CMakeFiles/geonet_core.dir/waxman_fit.cpp.o"
  "CMakeFiles/geonet_core.dir/waxman_fit.cpp.o.d"
  "libgeonet_core.a"
  "libgeonet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geonet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
