# Empty dependencies file for geonet_core.
# This may be replaced when dependencies are built.
