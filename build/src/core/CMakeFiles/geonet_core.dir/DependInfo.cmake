
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/as_analysis.cpp" "src/core/CMakeFiles/geonet_core.dir/as_analysis.cpp.o" "gcc" "src/core/CMakeFiles/geonet_core.dir/as_analysis.cpp.o.d"
  "/root/repo/src/core/density.cpp" "src/core/CMakeFiles/geonet_core.dir/density.cpp.o" "gcc" "src/core/CMakeFiles/geonet_core.dir/density.cpp.o.d"
  "/root/repo/src/core/distance_pref.cpp" "src/core/CMakeFiles/geonet_core.dir/distance_pref.cpp.o" "gcc" "src/core/CMakeFiles/geonet_core.dir/distance_pref.cpp.o.d"
  "/root/repo/src/core/hull_analysis.cpp" "src/core/CMakeFiles/geonet_core.dir/hull_analysis.cpp.o" "gcc" "src/core/CMakeFiles/geonet_core.dir/hull_analysis.cpp.o.d"
  "/root/repo/src/core/link_domains.cpp" "src/core/CMakeFiles/geonet_core.dir/link_domains.cpp.o" "gcc" "src/core/CMakeFiles/geonet_core.dir/link_domains.cpp.o.d"
  "/root/repo/src/core/link_lengths.cpp" "src/core/CMakeFiles/geonet_core.dir/link_lengths.cpp.o" "gcc" "src/core/CMakeFiles/geonet_core.dir/link_lengths.cpp.o.d"
  "/root/repo/src/core/study.cpp" "src/core/CMakeFiles/geonet_core.dir/study.cpp.o" "gcc" "src/core/CMakeFiles/geonet_core.dir/study.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/core/CMakeFiles/geonet_core.dir/validate.cpp.o" "gcc" "src/core/CMakeFiles/geonet_core.dir/validate.cpp.o.d"
  "/root/repo/src/core/waxman_fit.cpp" "src/core/CMakeFiles/geonet_core.dir/waxman_fit.cpp.o" "gcc" "src/core/CMakeFiles/geonet_core.dir/waxman_fit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/geonet_report.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/geonet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/population/CMakeFiles/geonet_population.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/geonet_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/geonet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/geonet_synth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
