file(REMOVE_RECURSE
  "libgeonet_core.a"
)
