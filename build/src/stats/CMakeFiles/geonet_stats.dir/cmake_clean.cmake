file(REMOVE_RECURSE
  "CMakeFiles/geonet_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/geonet_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/geonet_stats.dir/ccdf.cpp.o"
  "CMakeFiles/geonet_stats.dir/ccdf.cpp.o.d"
  "CMakeFiles/geonet_stats.dir/distributions.cpp.o"
  "CMakeFiles/geonet_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/geonet_stats.dir/fenwick.cpp.o"
  "CMakeFiles/geonet_stats.dir/fenwick.cpp.o.d"
  "CMakeFiles/geonet_stats.dir/histogram.cpp.o"
  "CMakeFiles/geonet_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/geonet_stats.dir/linear_fit.cpp.o"
  "CMakeFiles/geonet_stats.dir/linear_fit.cpp.o.d"
  "CMakeFiles/geonet_stats.dir/rng.cpp.o"
  "CMakeFiles/geonet_stats.dir/rng.cpp.o.d"
  "CMakeFiles/geonet_stats.dir/summary.cpp.o"
  "CMakeFiles/geonet_stats.dir/summary.cpp.o.d"
  "libgeonet_stats.a"
  "libgeonet_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geonet_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
