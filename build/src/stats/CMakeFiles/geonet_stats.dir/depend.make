# Empty dependencies file for geonet_stats.
# This may be replaced when dependencies are built.
