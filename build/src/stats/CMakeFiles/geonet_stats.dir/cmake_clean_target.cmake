file(REMOVE_RECURSE
  "libgeonet_stats.a"
)
