file(REMOVE_RECURSE
  "libgeonet_report.a"
)
