# Empty dependencies file for geonet_report.
# This may be replaced when dependencies are built.
