file(REMOVE_RECURSE
  "CMakeFiles/geonet_report.dir/ascii_map.cpp.o"
  "CMakeFiles/geonet_report.dir/ascii_map.cpp.o.d"
  "CMakeFiles/geonet_report.dir/gnuplot.cpp.o"
  "CMakeFiles/geonet_report.dir/gnuplot.cpp.o.d"
  "CMakeFiles/geonet_report.dir/series.cpp.o"
  "CMakeFiles/geonet_report.dir/series.cpp.o.d"
  "CMakeFiles/geonet_report.dir/table.cpp.o"
  "CMakeFiles/geonet_report.dir/table.cpp.o.d"
  "libgeonet_report.a"
  "libgeonet_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geonet_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
