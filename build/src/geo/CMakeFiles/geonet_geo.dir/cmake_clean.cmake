file(REMOVE_RECURSE
  "CMakeFiles/geonet_geo.dir/box_counting.cpp.o"
  "CMakeFiles/geonet_geo.dir/box_counting.cpp.o.d"
  "CMakeFiles/geonet_geo.dir/convex_hull.cpp.o"
  "CMakeFiles/geonet_geo.dir/convex_hull.cpp.o.d"
  "CMakeFiles/geonet_geo.dir/distance.cpp.o"
  "CMakeFiles/geonet_geo.dir/distance.cpp.o.d"
  "CMakeFiles/geonet_geo.dir/geo_point.cpp.o"
  "CMakeFiles/geonet_geo.dir/geo_point.cpp.o.d"
  "CMakeFiles/geonet_geo.dir/grid.cpp.o"
  "CMakeFiles/geonet_geo.dir/grid.cpp.o.d"
  "CMakeFiles/geonet_geo.dir/projection.cpp.o"
  "CMakeFiles/geonet_geo.dir/projection.cpp.o.d"
  "CMakeFiles/geonet_geo.dir/region.cpp.o"
  "CMakeFiles/geonet_geo.dir/region.cpp.o.d"
  "libgeonet_geo.a"
  "libgeonet_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geonet_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
