
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/box_counting.cpp" "src/geo/CMakeFiles/geonet_geo.dir/box_counting.cpp.o" "gcc" "src/geo/CMakeFiles/geonet_geo.dir/box_counting.cpp.o.d"
  "/root/repo/src/geo/convex_hull.cpp" "src/geo/CMakeFiles/geonet_geo.dir/convex_hull.cpp.o" "gcc" "src/geo/CMakeFiles/geonet_geo.dir/convex_hull.cpp.o.d"
  "/root/repo/src/geo/distance.cpp" "src/geo/CMakeFiles/geonet_geo.dir/distance.cpp.o" "gcc" "src/geo/CMakeFiles/geonet_geo.dir/distance.cpp.o.d"
  "/root/repo/src/geo/geo_point.cpp" "src/geo/CMakeFiles/geonet_geo.dir/geo_point.cpp.o" "gcc" "src/geo/CMakeFiles/geonet_geo.dir/geo_point.cpp.o.d"
  "/root/repo/src/geo/grid.cpp" "src/geo/CMakeFiles/geonet_geo.dir/grid.cpp.o" "gcc" "src/geo/CMakeFiles/geonet_geo.dir/grid.cpp.o.d"
  "/root/repo/src/geo/projection.cpp" "src/geo/CMakeFiles/geonet_geo.dir/projection.cpp.o" "gcc" "src/geo/CMakeFiles/geonet_geo.dir/projection.cpp.o.d"
  "/root/repo/src/geo/region.cpp" "src/geo/CMakeFiles/geonet_geo.dir/region.cpp.o" "gcc" "src/geo/CMakeFiles/geonet_geo.dir/region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/geonet_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
