# Empty dependencies file for geonet_geo.
# This may be replaced when dependencies are built.
