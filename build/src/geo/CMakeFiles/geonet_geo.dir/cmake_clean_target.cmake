file(REMOVE_RECURSE
  "libgeonet_geo.a"
)
