# Empty dependencies file for geonet_net.
# This may be replaced when dependencies are built.
