file(REMOVE_RECURSE
  "CMakeFiles/geonet_net.dir/annotated_graph.cpp.o"
  "CMakeFiles/geonet_net.dir/annotated_graph.cpp.o.d"
  "CMakeFiles/geonet_net.dir/graph_algos.cpp.o"
  "CMakeFiles/geonet_net.dir/graph_algos.cpp.o.d"
  "CMakeFiles/geonet_net.dir/graph_io.cpp.o"
  "CMakeFiles/geonet_net.dir/graph_io.cpp.o.d"
  "CMakeFiles/geonet_net.dir/ipv4.cpp.o"
  "CMakeFiles/geonet_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/geonet_net.dir/prefix_trie.cpp.o"
  "CMakeFiles/geonet_net.dir/prefix_trie.cpp.o.d"
  "CMakeFiles/geonet_net.dir/topology.cpp.o"
  "CMakeFiles/geonet_net.dir/topology.cpp.o.d"
  "CMakeFiles/geonet_net.dir/weighted_paths.cpp.o"
  "CMakeFiles/geonet_net.dir/weighted_paths.cpp.o.d"
  "libgeonet_net.a"
  "libgeonet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geonet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
