file(REMOVE_RECURSE
  "libgeonet_net.a"
)
