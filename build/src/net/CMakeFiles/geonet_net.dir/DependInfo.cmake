
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/annotated_graph.cpp" "src/net/CMakeFiles/geonet_net.dir/annotated_graph.cpp.o" "gcc" "src/net/CMakeFiles/geonet_net.dir/annotated_graph.cpp.o.d"
  "/root/repo/src/net/graph_algos.cpp" "src/net/CMakeFiles/geonet_net.dir/graph_algos.cpp.o" "gcc" "src/net/CMakeFiles/geonet_net.dir/graph_algos.cpp.o.d"
  "/root/repo/src/net/graph_io.cpp" "src/net/CMakeFiles/geonet_net.dir/graph_io.cpp.o" "gcc" "src/net/CMakeFiles/geonet_net.dir/graph_io.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/net/CMakeFiles/geonet_net.dir/ipv4.cpp.o" "gcc" "src/net/CMakeFiles/geonet_net.dir/ipv4.cpp.o.d"
  "/root/repo/src/net/prefix_trie.cpp" "src/net/CMakeFiles/geonet_net.dir/prefix_trie.cpp.o" "gcc" "src/net/CMakeFiles/geonet_net.dir/prefix_trie.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/geonet_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/geonet_net.dir/topology.cpp.o.d"
  "/root/repo/src/net/weighted_paths.cpp" "src/net/CMakeFiles/geonet_net.dir/weighted_paths.cpp.o" "gcc" "src/net/CMakeFiles/geonet_net.dir/weighted_paths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/geonet_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/geonet_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
