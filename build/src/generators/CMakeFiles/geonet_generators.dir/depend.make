# Empty dependencies file for geonet_generators.
# This may be replaced when dependencies are built.
