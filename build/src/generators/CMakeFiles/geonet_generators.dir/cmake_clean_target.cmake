file(REMOVE_RECURSE
  "libgeonet_generators.a"
)
