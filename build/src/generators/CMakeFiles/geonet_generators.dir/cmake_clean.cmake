file(REMOVE_RECURSE
  "CMakeFiles/geonet_generators.dir/ba_gen.cpp.o"
  "CMakeFiles/geonet_generators.dir/ba_gen.cpp.o.d"
  "CMakeFiles/geonet_generators.dir/common.cpp.o"
  "CMakeFiles/geonet_generators.dir/common.cpp.o.d"
  "CMakeFiles/geonet_generators.dir/geo_gen.cpp.o"
  "CMakeFiles/geonet_generators.dir/geo_gen.cpp.o.d"
  "CMakeFiles/geonet_generators.dir/hierarchical_gen.cpp.o"
  "CMakeFiles/geonet_generators.dir/hierarchical_gen.cpp.o.d"
  "CMakeFiles/geonet_generators.dir/inet_gen.cpp.o"
  "CMakeFiles/geonet_generators.dir/inet_gen.cpp.o.d"
  "CMakeFiles/geonet_generators.dir/random_gen.cpp.o"
  "CMakeFiles/geonet_generators.dir/random_gen.cpp.o.d"
  "CMakeFiles/geonet_generators.dir/waxman_gen.cpp.o"
  "CMakeFiles/geonet_generators.dir/waxman_gen.cpp.o.d"
  "libgeonet_generators.a"
  "libgeonet_generators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geonet_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
