
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/generators/ba_gen.cpp" "src/generators/CMakeFiles/geonet_generators.dir/ba_gen.cpp.o" "gcc" "src/generators/CMakeFiles/geonet_generators.dir/ba_gen.cpp.o.d"
  "/root/repo/src/generators/common.cpp" "src/generators/CMakeFiles/geonet_generators.dir/common.cpp.o" "gcc" "src/generators/CMakeFiles/geonet_generators.dir/common.cpp.o.d"
  "/root/repo/src/generators/geo_gen.cpp" "src/generators/CMakeFiles/geonet_generators.dir/geo_gen.cpp.o" "gcc" "src/generators/CMakeFiles/geonet_generators.dir/geo_gen.cpp.o.d"
  "/root/repo/src/generators/hierarchical_gen.cpp" "src/generators/CMakeFiles/geonet_generators.dir/hierarchical_gen.cpp.o" "gcc" "src/generators/CMakeFiles/geonet_generators.dir/hierarchical_gen.cpp.o.d"
  "/root/repo/src/generators/inet_gen.cpp" "src/generators/CMakeFiles/geonet_generators.dir/inet_gen.cpp.o" "gcc" "src/generators/CMakeFiles/geonet_generators.dir/inet_gen.cpp.o.d"
  "/root/repo/src/generators/random_gen.cpp" "src/generators/CMakeFiles/geonet_generators.dir/random_gen.cpp.o" "gcc" "src/generators/CMakeFiles/geonet_generators.dir/random_gen.cpp.o.d"
  "/root/repo/src/generators/waxman_gen.cpp" "src/generators/CMakeFiles/geonet_generators.dir/waxman_gen.cpp.o" "gcc" "src/generators/CMakeFiles/geonet_generators.dir/waxman_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/geonet_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/geonet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/population/CMakeFiles/geonet_population.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/geonet_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/geonet_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
