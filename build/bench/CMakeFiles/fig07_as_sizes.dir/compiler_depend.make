# Empty compiler generated dependencies file for fig07_as_sizes.
# This may be replaced when dependencies are built.
