file(REMOVE_RECURSE
  "CMakeFiles/fig07_as_sizes.dir/fig07_as_sizes.cpp.o"
  "CMakeFiles/fig07_as_sizes.dir/fig07_as_sizes.cpp.o.d"
  "fig07_as_sizes"
  "fig07_as_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_as_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
