
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_routeviews.cpp" "bench/CMakeFiles/ablation_routeviews.dir/ablation_routeviews.cpp.o" "gcc" "bench/CMakeFiles/ablation_routeviews.dir/ablation_routeviews.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/geonet_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/geonet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/generators/CMakeFiles/geonet_generators.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/geonet_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/geonet_report.dir/DependInfo.cmake"
  "/root/repo/build/src/population/CMakeFiles/geonet_population.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/geonet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/geonet_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/geonet_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
