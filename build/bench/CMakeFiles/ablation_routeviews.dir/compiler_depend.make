# Empty compiler generated dependencies file for ablation_routeviews.
# This may be replaced when dependencies are built.
