# Empty compiler generated dependencies file for fig10_hull_scatter.
# This may be replaced when dependencies are built.
