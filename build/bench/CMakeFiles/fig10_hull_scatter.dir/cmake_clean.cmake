file(REMOVE_RECURSE
  "CMakeFiles/fig10_hull_scatter.dir/fig10_hull_scatter.cpp.o"
  "CMakeFiles/fig10_hull_scatter.dir/fig10_hull_scatter.cpp.o.d"
  "fig10_hull_scatter"
  "fig10_hull_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_hull_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
