file(REMOVE_RECURSE
  "CMakeFiles/table4_homogeneity.dir/table4_homogeneity.cpp.o"
  "CMakeFiles/table4_homogeneity.dir/table4_homogeneity.cpp.o.d"
  "table4_homogeneity"
  "table4_homogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_homogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
