# Empty compiler generated dependencies file for table4_homogeneity.
# This may be replaced when dependencies are built.
