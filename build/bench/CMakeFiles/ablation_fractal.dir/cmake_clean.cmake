file(REMOVE_RECURSE
  "CMakeFiles/ablation_fractal.dir/ablation_fractal.cpp.o"
  "CMakeFiles/ablation_fractal.dir/ablation_fractal.cpp.o.d"
  "ablation_fractal"
  "ablation_fractal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fractal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
