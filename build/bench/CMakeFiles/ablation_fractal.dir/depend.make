# Empty dependencies file for ablation_fractal.
# This may be replaced when dependencies are built.
