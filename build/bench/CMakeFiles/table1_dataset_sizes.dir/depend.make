# Empty dependencies file for table1_dataset_sizes.
# This may be replaced when dependencies are built.
