file(REMOVE_RECURSE
  "CMakeFiles/table1_dataset_sizes.dir/table1_dataset_sizes.cpp.o"
  "CMakeFiles/table1_dataset_sizes.dir/table1_dataset_sizes.cpp.o.d"
  "table1_dataset_sizes"
  "table1_dataset_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_dataset_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
