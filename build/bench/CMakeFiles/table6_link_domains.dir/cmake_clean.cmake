file(REMOVE_RECURSE
  "CMakeFiles/table6_link_domains.dir/table6_link_domains.cpp.o"
  "CMakeFiles/table6_link_domains.dir/table6_link_domains.cpp.o.d"
  "table6_link_domains"
  "table6_link_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_link_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
