# Empty dependencies file for table6_link_domains.
# This may be replaced when dependencies are built.
