file(REMOVE_RECURSE
  "CMakeFiles/fig06_cumulated.dir/fig06_cumulated.cpp.o"
  "CMakeFiles/fig06_cumulated.dir/fig06_cumulated.cpp.o.d"
  "fig06_cumulated"
  "fig06_cumulated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_cumulated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
