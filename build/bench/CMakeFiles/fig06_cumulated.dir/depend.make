# Empty dependencies file for fig06_cumulated.
# This may be replaced when dependencies are built.
