file(REMOVE_RECURSE
  "CMakeFiles/fig04_distance_pref.dir/fig04_distance_pref.cpp.o"
  "CMakeFiles/fig04_distance_pref.dir/fig04_distance_pref.cpp.o.d"
  "fig04_distance_pref"
  "fig04_distance_pref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_distance_pref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
