# Empty compiler generated dependencies file for fig04_distance_pref.
# This may be replaced when dependencies are built.
