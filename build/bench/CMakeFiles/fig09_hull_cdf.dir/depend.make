# Empty dependencies file for fig09_hull_cdf.
# This may be replaced when dependencies are built.
