# Empty compiler generated dependencies file for fig08_as_correlations.
# This may be replaced when dependencies are built.
