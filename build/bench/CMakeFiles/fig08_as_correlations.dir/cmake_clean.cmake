file(REMOVE_RECURSE
  "CMakeFiles/fig08_as_correlations.dir/fig08_as_correlations.cpp.o"
  "CMakeFiles/fig08_as_correlations.dir/fig08_as_correlations.cpp.o.d"
  "fig08_as_correlations"
  "fig08_as_correlations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_as_correlations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
