# Empty dependencies file for ablation_hostnames.
# This may be replaced when dependencies are built.
