file(REMOVE_RECURSE
  "CMakeFiles/ablation_hostnames.dir/ablation_hostnames.cpp.o"
  "CMakeFiles/ablation_hostnames.dir/ablation_hostnames.cpp.o.d"
  "ablation_hostnames"
  "ablation_hostnames.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hostnames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
