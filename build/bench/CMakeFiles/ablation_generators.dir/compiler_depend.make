# Empty compiler generated dependencies file for ablation_generators.
# This may be replaced when dependencies are built.
