file(REMOVE_RECURSE
  "CMakeFiles/ablation_generators.dir/ablation_generators.cpp.o"
  "CMakeFiles/ablation_generators.dir/ablation_generators.cpp.o.d"
  "ablation_generators"
  "ablation_generators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
