file(REMOVE_RECURSE
  "CMakeFiles/fig01_maps.dir/fig01_maps.cpp.o"
  "CMakeFiles/fig01_maps.dir/fig01_maps.cpp.o.d"
  "fig01_maps"
  "fig01_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
