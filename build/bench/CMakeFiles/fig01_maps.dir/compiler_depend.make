# Empty compiler generated dependencies file for fig01_maps.
# This may be replaced when dependencies are built.
