# Empty compiler generated dependencies file for table3_regions.
# This may be replaced when dependencies are built.
