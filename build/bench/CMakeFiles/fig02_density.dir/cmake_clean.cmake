file(REMOVE_RECURSE
  "CMakeFiles/fig02_density.dir/fig02_density.cpp.o"
  "CMakeFiles/fig02_density.dir/fig02_density.cpp.o.d"
  "fig02_density"
  "fig02_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
