# Empty compiler generated dependencies file for fig02_density.
# This may be replaced when dependencies are built.
