file(REMOVE_RECURSE
  "CMakeFiles/table5_sensitivity_limits.dir/table5_sensitivity_limits.cpp.o"
  "CMakeFiles/table5_sensitivity_limits.dir/table5_sensitivity_limits.cpp.o.d"
  "table5_sensitivity_limits"
  "table5_sensitivity_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_sensitivity_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
