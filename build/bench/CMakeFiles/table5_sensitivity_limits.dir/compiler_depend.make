# Empty compiler generated dependencies file for table5_sensitivity_limits.
# This may be replaced when dependencies are built.
