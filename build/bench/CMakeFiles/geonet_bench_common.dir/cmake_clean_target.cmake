file(REMOVE_RECURSE
  "libgeonet_bench_common.a"
)
