# Empty compiler generated dependencies file for geonet_bench_common.
# This may be replaced when dependencies are built.
