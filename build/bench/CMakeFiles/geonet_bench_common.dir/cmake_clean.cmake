file(REMOVE_RECURSE
  "CMakeFiles/geonet_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/geonet_bench_common.dir/bench_common.cpp.o.d"
  "libgeonet_bench_common.a"
  "libgeonet_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geonet_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
