file(REMOVE_RECURSE
  "CMakeFiles/ablation_link_lengths.dir/ablation_link_lengths.cpp.o"
  "CMakeFiles/ablation_link_lengths.dir/ablation_link_lengths.cpp.o.d"
  "ablation_link_lengths"
  "ablation_link_lengths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_link_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
