# Empty compiler generated dependencies file for ablation_link_lengths.
# This may be replaced when dependencies are built.
