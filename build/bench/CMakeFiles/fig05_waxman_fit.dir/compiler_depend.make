# Empty compiler generated dependencies file for fig05_waxman_fit.
# This may be replaced when dependencies are built.
