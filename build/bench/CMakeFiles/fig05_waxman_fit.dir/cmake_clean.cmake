file(REMOVE_RECURSE
  "CMakeFiles/fig05_waxman_fit.dir/fig05_waxman_fit.cpp.o"
  "CMakeFiles/fig05_waxman_fit.dir/fig05_waxman_fit.cpp.o.d"
  "fig05_waxman_fit"
  "fig05_waxman_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_waxman_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
