# Empty dependencies file for analyze_topology.
# This may be replaced when dependencies are built.
