file(REMOVE_RECURSE
  "CMakeFiles/analyze_topology.dir/analyze_topology.cpp.o"
  "CMakeFiles/analyze_topology.dir/analyze_topology.cpp.o.d"
  "analyze_topology"
  "analyze_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
