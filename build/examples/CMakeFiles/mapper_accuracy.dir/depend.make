# Empty dependencies file for mapper_accuracy.
# This may be replaced when dependencies are built.
