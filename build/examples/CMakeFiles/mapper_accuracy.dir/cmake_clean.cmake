file(REMOVE_RECURSE
  "CMakeFiles/mapper_accuracy.dir/mapper_accuracy.cpp.o"
  "CMakeFiles/mapper_accuracy.dir/mapper_accuracy.cpp.o.d"
  "mapper_accuracy"
  "mapper_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapper_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
