# Empty dependencies file for topology_generator.
# This may be replaced when dependencies are built.
