file(REMOVE_RECURSE
  "CMakeFiles/topology_generator.dir/topology_generator.cpp.o"
  "CMakeFiles/topology_generator.dir/topology_generator.cpp.o.d"
  "topology_generator"
  "topology_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
