# Empty compiler generated dependencies file for interdomain_routing.
# This may be replaced when dependencies are built.
