file(REMOVE_RECURSE
  "CMakeFiles/measurement_study.dir/measurement_study.cpp.o"
  "CMakeFiles/measurement_study.dir/measurement_study.cpp.o.d"
  "measurement_study"
  "measurement_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measurement_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
