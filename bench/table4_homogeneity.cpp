// Table IV + Figure 3: the homogeneity test. The two halves of the US
// show similar infrastructure deployment; Central America is drastically
// different, justifying the per-region analysis.

#include <cstdio>

#include "bench_common.h"
#include "core/density.h"
#include "report/ascii_map.h"

int main() {
  using namespace geonet;
  bench::print_banner("table4_homogeneity", "Table IV + Figure 3");
  const auto& s = bench::scenario();
  const auto& graph =
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper);

  const auto rows = core::homogeneity_table(graph, s.world());
  struct PaperRow {
    double pop_millions;
    double people_per;
  };
  const PaperRow paper_rows[] = {{168, 991}, {132, 1305}, {154, 35533}};

  report::Table table({"Region", "Pop (M)", "Nodes", "People/Node",
                       "paper Pop", "paper P/N"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_row({rows[i].name, report::fmt(rows[i].population_millions, 0),
                   report::fmt_count(rows[i].nodes),
                   report::fmt(rows[i].people_per_node, 0),
                   report::fmt(paper_rows[i].pop_millions, 0),
                   report::fmt(paper_rows[i].people_per, 0)});
  }
  std::printf("%s\n", table.to_string().c_str());

  if (rows[0].nodes > 0 && rows[1].nodes > 0 && rows[2].nodes > 0) {
    std::printf("N-US vs S-US people/node ratio : %.2f (paper: 1.32 — similar)\n",
                rows[1].people_per_node / rows[0].people_per_node);
    std::printf("CentralAm vs N-US ratio        : %.1f (paper: 35.9 — different)\n",
                rows[2].people_per_node / rows[0].people_per_node);
  }

  std::printf("\nFigure 3 regions (node density):\n");
  for (const auto& region :
       {geo::regions::northern_us(), geo::regions::southern_us(),
        geo::regions::central_america()}) {
    std::printf("\n-- %s --\n%s", region.name.c_str(),
                report::ascii_density_map(graph.locations(), region, 66).c_str());
  }
  return 0;
}
