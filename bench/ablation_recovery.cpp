// Pipeline validation the original authors could not do: plant known
// parameters in the ground truth, run the full measurement + analysis
// pipeline, and check the recovered values track the planted ones.
//
// Two sweeps:
//   1. planted placement exponent alpha  -> recovered Figure 2 slope
//   2. planted link decay scale lambda   -> recovered Figure 5 lambda
//
// Recovery is attenuated (patch aggregation, truncation, city snapping),
// so the check is *monotone tracking*, not equality — this bench
// quantifies exactly how much the paper's methodology compresses the
// underlying exponents.

#include <cstdio>

#include "bench_common.h"
#include "core/density.h"
#include "core/waxman_fit.h"

namespace {

using namespace geonet;

/// A single-region world (the US profile only) so sweeps are cheap.
population::EconomicProfile us_profile() {
  auto profile = *population::profile_by_name("USA");
  return profile;
}

struct SweepPoint {
  double planted;
  double recovered;
};

}  // namespace

int main() {
  bench::print_banner("ablation_recovery",
                      "planted-vs-recovered parameter validation");
  const double scale = bench::scenario().options().scale;

  // --- Sweep 1: placement exponent. ---
  report::Table alpha_table({"planted alpha", "recovered slope", "r^2"});
  std::vector<SweepPoint> alpha_points;
  for (const double alpha : {1.0, 1.4, 1.8, 2.4}) {
    auto profile = us_profile();
    profile.placement_alpha = alpha;
    const auto world = population::WorldPopulation::build(31, {profile});

    synth::GroundTruthOptions growth;
    growth.interface_scale = scale;
    growth.seed = 32;
    const auto truth = synth::GroundTruth::build(world, growth);

    const auto skitter = synth::run_skitter(truth);
    const synth::GeoMapper mapper(synth::GeoMapper::ixmapper_profile(),
                                  [&] {
                                    std::vector<geo::GeoPoint> cities;
                                    for (const auto& c :
                                         world.grid_for(0).cities()) {
                                      cities.push_back(c.center);
                                    }
                                    return cities;
                                  }(),
                                  33);
    const auto graph =
        synth::process_interface_observation(truth, skitter, mapper);

    const auto density =
        core::analyze_density(graph, world, geo::regions::us());
    alpha_table.add_row({report::fmt(alpha, 1),
                         report::fmt(density.loglog_fit.slope, 2),
                         report::fmt(density.loglog_fit.r_squared, 2)});
    alpha_points.push_back({alpha, density.loglog_fit.slope});
  }
  std::printf("%s", alpha_table.to_string().c_str());
  bool alpha_monotone = true;
  for (std::size_t i = 1; i < alpha_points.size(); ++i) {
    alpha_monotone &= alpha_points[i].recovered > alpha_points[i - 1].recovered;
  }
  std::printf("recovered slope tracks planted alpha monotonically: %s\n\n",
              alpha_monotone ? "yes" : "NO");

  // --- Sweep 2: link decay scale. ---
  report::Table lambda_table({"planted lambda (mi)", "recovered lambda (mi)",
                              "% dist-sensitive"});
  std::vector<SweepPoint> lambda_points;
  for (const double lambda : {50.0, 105.0, 200.0}) {
    auto profile = us_profile();
    profile.link_distance_scale_miles = lambda;
    const auto world = population::WorldPopulation::build(31, {profile});

    synth::GroundTruthOptions growth;
    growth.interface_scale = scale;
    growth.seed = 34;
    const auto truth = synth::GroundTruth::build(world, growth);
    const auto skitter = synth::run_skitter(truth);
    const synth::GeoMapper mapper(synth::GeoMapper::ixmapper_profile(),
                                  [&] {
                                    std::vector<geo::GeoPoint> cities;
                                    for (const auto& c :
                                         world.grid_for(0).cities()) {
                                      cities.push_back(c.center);
                                    }
                                    return cities;
                                  }(),
                                  35);
    const auto graph =
        synth::process_interface_observation(truth, skitter, mapper);
    const auto w = core::characterize_region(graph, geo::regions::us());
    lambda_table.add_row({report::fmt(lambda, 0),
                          report::fmt(w.lambda_miles, 0),
                          report::fmt_percent(w.fraction_links_below_limit)});
    lambda_points.push_back({lambda, w.lambda_miles});
  }
  std::printf("%s", lambda_table.to_string().c_str());
  bool lambda_monotone = true;
  for (std::size_t i = 1; i < lambda_points.size(); ++i) {
    lambda_monotone &=
        lambda_points[i].recovered > lambda_points[i - 1].recovered;
  }
  std::printf("recovered lambda tracks planted lambda monotonically: %s\n",
              lambda_monotone ? "yes" : "NO");
  std::printf("\n(the gap between planted and recovered values quantifies the\n"
              " attenuation built into the paper's own methodology: 75-arcmin\n"
              " patch aggregation, >=1-router truncation, city-granularity\n"
              " geolocation, and pair-density weighting of f(d).)\n");
  return 0;
}
