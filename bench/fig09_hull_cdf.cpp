// Figure 9: CDFs of AS convex hull area for the World and for the US and
// Europe restrictions. ~80% of ASes in the paper have one or two
// locations, hence zero hull area; the rest spread over many decades.

#include <cstdio>
#include <optional>

#include "bench_common.h"
#include "core/hull_analysis.h"
#include "stats/summary.h"
#include "stats/ccdf.h"

int main() {
  using namespace geonet;
  bench::print_banner("fig09_hull_cdf", "Figure 9");
  const auto& s = bench::scenario();
  const auto& graph =
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper);

  struct Scope {
    const char* name;
    std::optional<geo::Region> region;
  };
  const Scope scopes[] = {{"World", std::nullopt},
                          {"US", geo::regions::us()},
                          {"Europe", geo::regions::europe()}};

  report::Table table({"Scope", "ASes", "zero-area", "median +area (mi^2)",
                       "p99 (mi^2)"});
  for (const auto& scope : scopes) {
    core::HullOptions options;
    options.restrict_to = scope.region;
    const auto analysis = core::analyze_hulls(graph, options);

    std::vector<double> positive;
    std::vector<double> all_areas;
    for (const auto& r : analysis.records) {
      all_areas.push_back(r.hull_area_sq_miles);
      if (r.hull_area_sq_miles > 0.0) positive.push_back(r.hull_area_sq_miles);
    }
    table.add_row({scope.name, report::fmt_count(analysis.records.size()),
                   report::fmt_percent(analysis.zero_area_fraction),
                   report::fmt(stats::quantile(positive, 0.5), 0),
                   report::fmt(stats::quantile(positive, 0.99), 0)});

    const auto cdf = stats::empirical_cdf(all_areas);
    report::Series series{"hull area (mi^2) vs P[X<=x]", {}};
    for (const auto& pt : cdf) series.points.push_back({pt.x, pt.p});
    bench::save_series(std::string("fig09_") + scope.name + ".dat", series,
                       "Figure 9 hull-area CDF");
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("check: a large point mass at zero area (paper: ~80%%; this\n"
              "substrate: ~half) followed by wide dispersion spanning many\n"
              "orders of magnitude, for all three scopes.\n");
  return 0;
}
