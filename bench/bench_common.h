#pragma once

// Shared infrastructure for the experiment binaries: one canonical
// Scenario per process (GEONET_SCALE-controlled), the paper's reference
// numbers, and printing helpers for paper-vs-measured rows.

#include <string>
#include <vector>

#include "core/study.h"
#include "report/series.h"
#include "report/table.h"
#include "synth/scenario.h"

namespace geonet::obs {
class RunReport;
}

namespace geonet::bench {

/// The process-wide scenario; built on first use and reported to stderr.
const synth::Scenario& scenario();

/// All four (dataset, mapper) combinations in Table I order.
struct DatasetRef {
  synth::DatasetKind dataset;
  synth::MapperKind mapper;
  const char* label;
};
const std::vector<DatasetRef>& all_datasets();

/// The (dataset, mapper) pairs the paper's main body uses (IxMapper).
const std::vector<DatasetRef>& ixmapper_datasets();

/// Prints the standard experiment banner (scale, dataset sizes) and
/// registers an exit hook that writes `results/BENCH_<experiment>.json`,
/// a geonet.run_report.v1 record carrying the run's per-stage span
/// timings and pipeline counters — one point of the perf trajectory
/// tracked across PRs. Set GEONET_BENCH_REPORT=0 to disable, or
/// GEONET_BENCH_REPORT_DIR to redirect.
void print_banner(const char* experiment, const char* paper_artifact);

/// Stamps a BENCH run report with the facts `geonet perf diff` uses to
/// judge comparability: `threads` (the effective pool size), the binary's
/// BuildInfo (`tool_version`, `compiler`, `build_type`, `git_describe`)
/// and an ISO-8601 UTC `timestamp_utc`. Every BENCH_*.json writer calls
/// this so cross-thread-count or stale-binary comparisons are refused
/// instead of reported as bogus regressions.
void stamp_bench_report(obs::RunReport& report);

/// Builds an artifact-safe .dat filename from a free-form label:
/// store::slug over the stem, so "fig04_EdgeScape, Mercator_US" becomes
/// "fig04_edgescape_mercator_us.dat". Use this for both save_series and
/// the gnuplot panel references so the script always matches the files.
std::string dat_name(const std::string& stem);

/// Writes a two-column series under results/ and reports the path. The
/// filename stem is slugged via dat_name, so callers may pass raw labels.
void save_series(const std::string& filename, const report::Series& series,
                 const std::string& comment);

// -----------------------------------------------------------------
// Paper reference values (Tables II-VI, Figures 2 and 5), used to print
// the expected numbers next to the measured ones.
// -----------------------------------------------------------------
namespace paper {

/// Figure 2 fitted density slopes, IxMapper panels.
struct DensitySlopes {
  double mercator;
  double skitter;
};
DensitySlopes density_slope(const std::string& region_name);

/// Figure 5 semilog slopes (per mile), IxMapper panels.
struct SemilogSlopes {
  double mercator;
  double skitter;
};
SemilogSlopes semilog_slope(const std::string& region_name);

/// Table V rows (IxMapper): limit (mi) and % links below.
struct SensitivityRow {
  double mercator_limit_miles;
  double mercator_fraction_below;
  double skitter_limit_miles;
  double skitter_fraction_below;
};
SensitivityRow sensitivity(const std::string& region_name);

/// Table VI rows (Skitter): counts and mean lengths.
struct LinkDomainRow {
  double inter_count;
  double inter_mean_miles;
  double intra_count;
  double intra_mean_miles;
};
LinkDomainRow link_domains(const std::string& scope_name);

}  // namespace paper

}  // namespace geonet::bench
