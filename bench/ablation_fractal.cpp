// Section II cross-check (Yook, Jeong & Barabasi): the box-counting
// fractal dimension of router locations — the paper confirms ~1.5 for its
// datasets. Also an ablation over box-size sweeps, and a uniform-scatter
// control showing what dimension a Waxman-style placement would give.

#include <cstdio>

#include "bench_common.h"
#include "generators/waxman_gen.h"
#include "geo/box_counting.h"

int main() {
  using namespace geonet;
  bench::print_banner("ablation_fractal",
                      "Section II fractal-dimension cross-check");
  const auto& s = bench::scenario();
  const auto& graph =
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper);
  const auto locations = graph.locations();

  report::Table table({"Point set", "Region", "dimension", "r^2"});
  for (const auto& region : geo::regions::paper_study_regions()) {
    const auto result = geo::box_counting_dimension(locations, region);
    table.add_row({"measured dataset", region.name,
                   report::fmt(result.dimension, 2),
                   report::fmt(result.fit.r_squared, 2)});
  }

  // Control: uniform random placement (Waxman assumption 1) has dimension
  // near 2 — visibly different from real, clustered infrastructure.
  generators::WaxmanOptions waxman;
  waxman.node_count = locations.size() / 2;
  waxman.beta = 0.0;  // placement only, no links needed
  const auto uniform = generators::generate_waxman(geo::regions::us(), waxman);
  const auto control =
      geo::box_counting_dimension(uniform.locations(), geo::regions::us());
  table.add_row({"uniform control", "US", report::fmt(control.dimension, 2),
                 report::fmt(control.fit.r_squared, 2)});
  std::printf("%s\n", table.to_string().c_str());

  // Sweep: dimension stability across box-size ranges (US).
  report::Table sweep({"min box (arcmin)", "max box", "scales", "dimension"});
  for (const double min_box : {15.0, 30.0, 60.0}) {
    for (const std::size_t scales : {5, 7}) {
      const auto result = geo::box_counting_dimension(
          locations, geo::regions::us(), min_box, 960.0, scales);
      sweep.add_row({report::fmt(min_box, 0), "960", std::to_string(scales),
                     report::fmt(result.dimension, 2)});
    }
  }
  std::printf("%s\n", sweep.to_string().c_str());
  std::printf("check: the measured dataset's dimension sits well below the\n"
              "uniform control's ~2 (paper/Yook et al.: ~1.5 at full scale;\n"
              "smaller synthetic worlds read lower because the number of\n"
              "distinct metro locations caps the fine-scale box counts).\n");
  return 0;
}
