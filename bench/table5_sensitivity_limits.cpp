// Table V: the limits of distance sensitivity — where the exponential fit
// meets the large-d flat level — and the fraction of links shorter than
// that limit (75-95% in the paper: most links are distance-sensitive).

#include <cstdio>

#include "bench_common.h"
#include "core/waxman_fit.h"

int main() {
  using namespace geonet;
  bench::print_banner("table5_sensitivity_limits", "Table V");
  const auto& s = bench::scenario();

  report::Table table({"Dataset", "Region", "Limit (mi)", "% < Limit",
                       "paper Limit", "paper %"});
  for (const auto& ref : bench::all_datasets()) {
    const auto& graph = s.graph(ref.dataset, ref.mapper);
    for (const auto& region : geo::regions::paper_study_regions()) {
      const auto w = core::characterize_region(graph, region);
      const auto paper = bench::paper::sensitivity(region.name);
      const bool is_mercator = ref.dataset == synth::DatasetKind::kMercator;
      table.add_row(
          {ref.label, region.name,
           report::fmt(w.sensitivity_limit_miles, 0),
           report::fmt_percent(w.fraction_links_below_limit),
           report::fmt(is_mercator ? paper.mercator_limit_miles
                                   : paper.skitter_limit_miles, 0),
           report::fmt_percent(is_mercator ? paper.mercator_fraction_below
                                           : paper.skitter_fraction_below)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("check: the large majority of links (paper: 75-95%%) falls\n"
              "inside the distance-sensitive regime in every region, and the\n"
              "values are consistent across the two datasets.\n");
  return 0;
}
