// Figure 8 (and appendix Figure 16): scatterplots of the three AS size
// measures against each other. All pairs correlate; the tightest relation
// is interfaces vs locations.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/as_analysis.h"

int main() {
  using namespace geonet;
  bench::print_banner("fig08_as_correlations", "Figure 8 (+ Figure 16)");
  const auto& s = bench::scenario();

  report::Table table({"Dataset", "ifaces~locs", "ifaces~deg", "locs~deg"});
  for (const auto& ref : bench::all_datasets()) {
    const auto a = core::analyze_as_sizes(s.graph(ref.dataset, ref.mapper));
    table.add_row({ref.label, report::fmt(a.corr_nodes_locations, 3),
                   report::fmt(a.corr_nodes_degree, 3),
                   report::fmt(a.corr_locations_degree, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto analysis = core::analyze_as_sizes(
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper));

  // Scatter series for the three panels.
  report::Series a{"log10(interfaces) vs log10(locations)", {}};
  report::Series b{"log10(interfaces) vs log10(degree)", {}};
  report::Series c{"log10(locations) vs log10(degree)", {}};
  for (const auto& r : analysis.records) {
    const double n = std::log10(static_cast<double>(r.node_count));
    const double l = std::log10(static_cast<double>(r.location_count));
    a.points.push_back({n, l});
    if (r.degree > 0) {
      const double d = std::log10(static_cast<double>(r.degree));
      b.points.push_back({n, d});
      c.points.push_back({l, d});
    }
  }
  bench::save_series("fig08_ifaces_vs_locations.dat", a, "Figure 8a");
  bench::save_series("fig08_ifaces_vs_degree.dat", b, "Figure 8b");
  bench::save_series("fig08_locations_vs_degree.dat", c, "Figure 8c");

  std::printf("check: all three correlations positive and strong; the\n"
              "paper finds interfaces-vs-locations to be the tightest\n"
              "scatter (Figure 8a).\n");
  return 0;
}
