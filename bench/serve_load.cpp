// geonet serve load generator: an in-process Server over a clustered
// synthetic US topology, hammered by 1/4/8 synchronous client threads
// issuing a deterministic mix of query verbs over real loopback sockets,
// with the server's exec pool resized to match (1/4/8 workers) — the
// sweep measures the batch fan-out architecture end to end. Records
// throughput (requests/s) and client-observed latency percentiles
// (p50/p95/p99) per thread count, plus the cores actually available:
// on a single-core host the scaling ratio pins near 1.0 by physics, so
// the record carries `cores` and the perf gate compares like with like.
// Before each sweep every thread replays a fixed probe set and compares
// the wire answers against ServeSnapshot::answer() byte for byte — a
// mismatch at ANY pool size fails the bench (exit 1), making the record
// double as a cross-thread-count determinism pin; timing itself never
// fails the run (the perf gate judges that offline).
// Written as results/BENCH_serve.json in the geonet.run_report.v1 bench
// schema. Knobs: GEONET_BENCH_SERVE_NODES (default 20000),
// GEONET_BENCH_SERVE_REQUESTS per thread (default 4000); disable the
// record with GEONET_BENCH_REPORT=0, redirect with
// GEONET_BENCH_REPORT_DIR.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "exec/thread_pool.h"
#include "geo/region.h"
#include "net/annotated_graph.h"
#include "obs/json.h"
#include "obs/run_report.h"
#include "population/synth_population.h"
#include "report/series.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "store/fs.h"

namespace {

using namespace geonet;

/// Clustered router topology inside the US study box: nodes bunch around
/// metro centers, chained into intra-cluster links plus a long-haul link
/// per cluster. Deterministic in the seed regardless of platform.
net::AnnotatedGraph clustered_us_graph(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> lat_center(27.0, 48.0);
  std::uniform_real_distribution<double> lon_center(-120.0, -72.0);
  std::normal_distribution<double> spread(0.0, 0.8);
  const std::size_t cluster_count = 64;
  std::vector<geo::GeoPoint> centers;
  centers.reserve(cluster_count);
  for (std::size_t i = 0; i < cluster_count; ++i) {
    centers.push_back({lat_center(rng), lon_center(rng)});
  }
  net::AnnotatedGraph graph(net::NodeKind::kRouter, "serve-load");
  std::uniform_int_distribution<std::size_t> pick(0, cluster_count - 1);
  std::vector<std::uint32_t> last_in_cluster(cluster_count, UINT32_MAX);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = pick(rng);
    double lat = centers[c].lat_deg + spread(rng);
    double lon = centers[c].lon_deg + spread(rng);
    lat = std::clamp(lat, 25.5, 49.5);
    lon = std::clamp(lon, -124.0, -67.0);
    const auto id = static_cast<std::uint32_t>(graph.node_count());
    graph.add_node({net::Ipv4Addr{static_cast<std::uint32_t>(i + 1)},
                    {lat, lon},
                    static_cast<std::uint32_t>(c % 200 + 1)});
    if (last_in_cluster[c] != UINT32_MAX) {
      graph.add_edge(last_in_cluster[c], id);
    }
    last_in_cluster[c] = id;
  }
  // One long-haul link per cluster pair ring so f(d) has distant bins.
  for (std::size_t c = 0; c + 1 < cluster_count; ++c) {
    if (last_in_cluster[c] != UINT32_MAX &&
        last_in_cluster[c + 1] != UINT32_MAX) {
      graph.add_edge(last_in_cluster[c], last_in_cluster[c + 1]);
    }
  }
  return graph;
}

long long elapsed_us(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// The request mix, cycled deterministically per thread. Point queries
/// jitter across the US box so index traversals vary.
std::string mixed_payload(std::size_t i, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> lat(26.0, 49.0);
  std::uniform_real_distribution<double> lon(-123.0, -68.0);
  char buffer[160];
  switch (i % 5) {
    case 0:
      std::snprintf(buffer, sizeof(buffer),
                    R"({"op":"nearest","lat":%.6f,"lon":%.6f,"k":32})",
                    lat(rng), lon(rng));
      break;
    case 1:
      std::snprintf(
          buffer, sizeof(buffer),
          R"({"op":"within","lat":%.6f,"lon":%.6f,"radius_miles":250,"max_hits":64})",
          lat(rng), lon(rng));
      break;
    case 2:
      std::snprintf(buffer, sizeof(buffer),
                    R"({"op":"fd","region":"US","d":%.1f})",
                    std::uniform_real_distribution<double>(0.0, 3000.0)(rng));
      break;
    case 3:
      std::snprintf(buffer, sizeof(buffer),
                    R"({"op":"density","lat":%.6f,"lon":%.6f})", lat(rng),
                    lon(rng));
      break;
    default:
      std::snprintf(buffer, sizeof(buffer),
                    R"({"op":"as","lat":%.6f,"lon":%.6f})", lat(rng),
                    lon(rng));
      break;
  }
  return buffer;
}

/// Fixed probe set answered once offline; every load thread replays it
/// on the wire and must read back the identical bytes.
std::vector<std::string> probe_payloads() {
  return {
      R"({"op":"ping"})",
      R"({"op":"info"})",
      R"({"op":"nearest","lat":40.75,"lon":-74.0,"k":16})",
      R"({"op":"within","lat":41.88,"lon":-87.63,"radius_miles":300,"max_hits":32})",
      R"({"op":"fd","region":"US","d":750})",
      R"({"op":"density","lat":34.05,"lon":-118.24})",
      R"({"op":"as","lat":39.74,"lon":-104.99})",
  };
}

struct SweepResult {
  std::size_t threads = 0;
  std::uint64_t requests = 0;
  long long wall_us = 0;
  double rps = 0.0;
  long long p50_us = 0;
  long long p95_us = 0;
  long long p99_us = 0;
  bool identity_ok = true;
};

SweepResult run_sweep(std::uint16_t port, std::size_t thread_count,
                      std::size_t requests_per_thread,
                      const std::vector<std::string>& probes,
                      const std::vector<std::string>& expected) {
  SweepResult result;
  result.threads = thread_count;
  std::vector<std::vector<long long>> latencies(thread_count);
  std::atomic<int> identity_failures{0};
  std::atomic<int> transport_failures{0};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(thread_count);
  for (std::size_t t = 0; t < thread_count; ++t) {
    workers.emplace_back([&, t] {
      serve::Client client;
      if (!client.connect("127.0.0.1", port).is_ok()) {
        transport_failures.fetch_add(1);
        return;
      }
      // Identity pass: wire answers must be the snapshot's bytes.
      for (std::size_t p = 0; p < probes.size(); ++p) {
        const err::Result<std::string> response = client.request(probes[p]);
        if (!response.is_ok()) {
          transport_failures.fetch_add(1);
          return;
        }
        if (response.value() != expected[p]) identity_failures.fetch_add(1);
      }
      std::mt19937_64 rng(0xbadcafe + t);
      auto& mine = latencies[t];
      mine.reserve(requests_per_thread);
      for (std::size_t i = 0; i < requests_per_thread; ++i) {
        const std::string payload = mixed_payload(i, rng);
        const auto q0 = std::chrono::steady_clock::now();
        const err::Result<std::string> response = client.request(payload);
        if (!response.is_ok()) {
          transport_failures.fetch_add(1);
          return;
        }
        mine.push_back(elapsed_us(q0));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  result.wall_us = elapsed_us(t0);

  std::vector<long long> all;
  for (const auto& mine : latencies) {
    all.insert(all.end(), mine.begin(), mine.end());
  }
  std::sort(all.begin(), all.end());
  result.requests = all.size();
  result.identity_ok =
      identity_failures.load() == 0 && transport_failures.load() == 0;
  if (!all.empty()) {
    const auto pct = [&](double p) {
      const auto idx = static_cast<std::size_t>(
          p * static_cast<double>(all.size() - 1));
      return all[idx];
    };
    result.p50_us = pct(0.50);
    result.p95_us = pct(0.95);
    result.p99_us = pct(0.99);
    result.rps = static_cast<double>(all.size()) * 1e6 /
                 static_cast<double>(result.wall_us);
  }
  return result;
}

}  // namespace

int main() {
  std::printf("================================================================\n");
  std::printf("serve_load  --  infrastructure: geonet serve throughput sweep\n");
  std::printf("================================================================\n");

  std::size_t nodes = 20000;
  if (const char* env = std::getenv("GEONET_BENCH_SERVE_NODES")) {
    const long long v = std::atoll(env);
    if (v > 0) nodes = static_cast<std::size_t>(v);
  }
  std::size_t requests_per_thread = 4000;
  if (const char* env = std::getenv("GEONET_BENCH_SERVE_REQUESTS")) {
    const long long v = std::atoll(env);
    if (v > 0) requests_per_thread = static_cast<std::size_t>(v);
  }

  const auto start = std::chrono::steady_clock::now();
  std::printf("building world + %zu-node topology + serve snapshot...\n",
              nodes);
  const population::WorldPopulation world =
      population::WorldPopulation::build(5);
  serve::ServeOptions serve_options;
  serve_options.regions = {geo::regions::us()};

  auto t0 = std::chrono::steady_clock::now();
  auto snapshot = serve::ServeSnapshot::build(
      clustered_us_graph(nodes, 0x5eedf00d), world, serve_options);
  if (!snapshot.is_ok()) {
    std::fprintf(stderr, "snapshot build failed: %s\n",
                 snapshot.status().message().c_str());
    return 1;
  }
  const long long snapshot_build_us = elapsed_us(t0);

  serve::ServerOptions server_options;
  server_options.port = 0;
  serve::Server server(server_options, snapshot.value(), nullptr, &world,
                       serve_options);
  if (const err::Status status = server.start(); !status.is_ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.message().c_str());
    return 1;
  }
  std::thread runner([&server] { (void)server.run(); });
  const std::uint16_t port = server.port();
  std::printf("serving on 127.0.0.1:%u (snapshot build %lld us)\n", port,
              snapshot_build_us);

  const std::vector<std::string> probes = probe_payloads();
  std::vector<std::string> expected;
  expected.reserve(probes.size());
  for (const std::string& probe : probes) {
    expected.push_back(snapshot.value()->answer(
        serve::parse_request(probe).value()));
  }

  const std::size_t original_pool = exec::ThreadPool::global().thread_count();
  const std::size_t cores = std::thread::hardware_concurrency();

  obs::JsonWriter json;
  json.begin_object();
  json.key("nodes").value(nodes);
  json.key("requests_per_thread").value(requests_per_thread);
  json.key("cores").value(cores);
  json.key("snapshot_build_us")
      .value(static_cast<std::uint64_t>(snapshot_build_us));
  json.key("sweep").begin_array();

  bool identity_ok = true;
  double rps_at_1 = 0.0;
  double rps_at_4 = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    // Resize the server's exec pool to match the client count. Safe here:
    // every client from the previous sweep has disconnected and joined, so
    // no batch region is running.
    exec::ThreadPool::set_global_threads(threads);
    const SweepResult sweep =
        run_sweep(port, threads, requests_per_thread, probes, expected);
    identity_ok = identity_ok && sweep.identity_ok;
    if (threads == 1) rps_at_1 = sweep.rps;
    if (threads == 4) rps_at_4 = sweep.rps;
    std::printf(
        "threads=%zu  %8llu reqs in %8lld us  %9.0f req/s  "
        "p50 %5lld us  p95 %5lld us  p99 %5lld us  identity %s\n",
        threads, static_cast<unsigned long long>(sweep.requests),
        sweep.wall_us, sweep.rps, sweep.p50_us, sweep.p95_us, sweep.p99_us,
        sweep.identity_ok ? "ok" : "MISMATCH");

    json.begin_object();
    json.key("threads").value(threads);
    json.key("pool_threads").value(exec::ThreadPool::global().thread_count());
    json.key("requests").value(sweep.requests);
    json.key("wall_us").value(static_cast<std::uint64_t>(sweep.wall_us));
    json.key("requests_per_second").value(sweep.rps);
    json.key("p50_us").value(static_cast<std::uint64_t>(sweep.p50_us));
    json.key("p95_us").value(static_cast<std::uint64_t>(sweep.p95_us));
    json.key("p99_us").value(static_cast<std::uint64_t>(sweep.p99_us));
    json.key("identity_ok").value(sweep.identity_ok);
    json.end_object();
  }
  json.end_array();
  exec::ThreadPool::set_global_threads(original_pool);

  const double scaling = rps_at_1 > 0.0 ? rps_at_4 / rps_at_1 : 0.0;
  const bool core_bound = cores < 4;
  json.key("all_identity_ok").value(identity_ok);
  json.key("scaling_4_over_1").value(scaling);
  json.key("core_bound").value(core_bound);
  json.end_object();
  std::printf("identity: %s; 4-thread scaling over 1: %.2fx (%zu core%s)\n",
              identity_ok ? "ok" : "MISMATCH", scaling, cores,
              cores == 1 ? "" : "s");
  if (core_bound) {
    std::printf(
        "note: host has %zu core(s); parallel scaling is core-bound and the "
        "ratio pins near 1.0 — the sweep still measures per-thread latency "
        "and pins cross-pool-size answer identity\n",
        cores);
  }

  server.request_stop();
  runner.join();
  const serve::ServerStats stats = server.stats();
  std::printf("server: %llu request(s), %llu batch(es), %llu error(s)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.errors));

  bool written = true;
  if (const char* env = std::getenv("GEONET_BENCH_REPORT");
      env == nullptr || std::string(env) != "0") {
    obs::RunReport report("bench");
    report.set_info("experiment", "serve");
    report.set_info("paper_artifact", "infrastructure: online query service");
    report.set_info("wall_us", std::to_string(elapsed_us(start)));
    bench::stamp_bench_report(report);
    report.add_section("load_sweep", json.str());
    const char* dir = std::getenv("GEONET_BENCH_REPORT_DIR");
    const std::string path =
        (dir != nullptr ? std::string(dir) : report::results_dir()) +
        "/BENCH_serve.json";
    written = store::atomic_write_text(path, report.to_json() + "\n");
    if (written) std::printf("bench record written: %s\n", path.c_str());
  }
  return identity_ok && written ? 0 : 1;
}
