// Section III.C mechanics: the paper maps nodes to ASes with RouteViews,
// "the union of many BGP backbone tables contributed by several dozen
// participating ASes". This ablation derives that table from valley-free
// route propagation over inferred AS relationships and shows how AS-
// mapping coverage grows with the number of contributing vantage ASes —
// and how much of the paper's "unmapped" fraction is a visibility
// artifact rather than unannounced space.

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "bench_common.h"
#include "synth/bgp_propagation.h"

int main() {
  using namespace geonet;
  bench::print_banner("ablation_routeviews",
                      "Section III.C RouteViews table construction");
  const auto& s = bench::scenario();
  const auto& truth = s.truth();

  const auto relationships = synth::infer_as_relationships(truth);
  std::size_t c2p = 0;
  std::size_t p2p = 0;
  for (const auto& rel : relationships) {
    (rel.relation == synth::AsRelation::kCustomerProvider ? c2p : p2p) += 1;
  }
  std::printf("inferred AS relationships: %zu customer-provider, %zu peer-peer\n\n",
              c2p, p2p);

  std::vector<const synth::AsInfo*> by_size;
  for (const auto& info : truth.ases()) by_size.push_back(&info);
  std::sort(by_size.begin(), by_size.end(),
            [](const synth::AsInfo* a, const synth::AsInfo* b) {
              return a->routers.size() > b->routers.size();
            });

  const auto evaluate = [&](const std::vector<std::uint32_t>& vantages) {
    const auto rib = synth::route_views_union(truth, relationships, vantages);
    std::size_t mapped = 0;
    for (const net::InterfaceId iface : s.skitter_raw().interfaces) {
      if (rib.origin_as(truth.topology().interface(iface).addr)) ++mapped;
    }
    return std::tuple<std::size_t, double, double>(
        rib.size(), synth::table_coverage(truth, rib),
        static_cast<double>(mapped) /
            static_cast<double>(s.skitter_raw().interfaces.size()));
  };

  // Sweep 1: stub vantages, smallest first — a single leaf sees only its
  // own providers' cones, so coverage climbs with each contributed table.
  report::Table stub_table({"stub vantages", "RIB entries", "prefix coverage",
                            "interfaces AS-mapped"});
  for (const std::size_t count : {1u, 4u, 16u, 64u}) {
    std::vector<std::uint32_t> vantages;
    for (std::size_t i = 0; i < count && i < by_size.size(); ++i) {
      vantages.push_back(by_size[by_size.size() - 1 - i]->asn);
    }
    const auto [entries, coverage, mapped] = evaluate(vantages);
    stub_table.add_row({report::fmt_count(count), report::fmt_count(entries),
                        report::fmt_percent(coverage),
                        report::fmt_percent(mapped)});
  }
  std::printf("%s\n", stub_table.to_string().c_str());

  // Sweep 2: backbone vantages, like RouteViews' actual contributors.
  report::Table core_table({"backbone vantages", "RIB entries",
                            "prefix coverage", "interfaces AS-mapped"});
  for (const std::size_t count : {1u, 4u, 16u}) {
    std::vector<std::uint32_t> vantages;
    for (std::size_t i = 0; i < count && i < by_size.size(); ++i) {
      vantages.push_back(by_size[i]->asn);
    }
    const auto [entries, coverage, mapped] = evaluate(vantages);
    core_table.add_row({report::fmt_count(count), report::fmt_count(entries),
                        report::fmt_percent(coverage),
                        report::fmt_percent(mapped)});
  }
  std::printf("%s\n", core_table.to_string().c_str());
  std::printf("check: valley-free export means any transit-buying vantage\n"
              "receives near-complete tables from its providers, so even a\n"
              "single feed covers ~99%% and the union only sweeps up the\n"
              "last slivers. The interfaces that stay unmapped under every\n"
              "table are unannounced space plus border interfaces numbered\n"
              "from it — the paper's 1.5-2.8%% 'separate AS' bucket.\n");
  return 0;
}
