// Warm/cold sweep for the geonet::store artifact cache: run the full
// analysis study once against an empty cache (cold, every phase computed
// and snapshotted) and again against the populated cache (warm, every
// phase deserialized), and record the wall times plus a byte-identity
// cross-check of the resulting study report. Written as
// results/BENCH_store.json in the geonet.run_report.v1 bench schema.
// Control the substrate size with GEONET_BENCH_STORE_SCALE (default
// 0.05); disable with GEONET_BENCH_REPORT=0, redirect with
// GEONET_BENCH_REPORT_DIR.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/study.h"
#include "obs/json.h"
#include "obs/run_report.h"
#include "report/series.h"
#include "store/cache.h"
#include "store/fs.h"
#include "synth/scenario.h"

int main() {
  using namespace geonet;
  std::printf("================================================================\n");
  std::printf("store_cache  --  infrastructure: snapshot cache warm/cold sweep\n");
  std::printf("================================================================\n");

  double scale = 0.05;
  if (const char* env = std::getenv("GEONET_BENCH_STORE_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) scale = v;
  }

  auto options = synth::ScenarioOptions::defaults();
  options.scale = scale;
  std::printf("building scenario at scale %.3f...\n", options.scale);
  const synth::Scenario scenario = synth::Scenario::build(options);
  const auto& graph =
      scenario.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper);

  const std::filesystem::path cache_dir =
      std::filesystem::temp_directory_path() / "geonet_bench_store_cache";
  std::filesystem::remove_all(cache_dir);
  store::ArtifactCache cache(cache_dir.string());

  core::StudyOptions study_options;
  study_options.cache = &cache;

  const auto start = std::chrono::steady_clock::now();
  const auto timed_run = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    core::StudyReport report =
        core::run_study(graph, scenario.world(), study_options);
    const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - t0);
    return std::pair<long long, std::string>(wall.count(),
                                             core::study_report_json(report));
  };

  const auto [cold_us, cold_json] = timed_run();
  std::printf("cold run: %lld us (cache populated)\n", cold_us);

  std::vector<long long> warm_us;
  bool identical = true;
  long long best_warm = cold_us;
  for (int i = 0; i < 3; ++i) {
    const auto [us, json] = timed_run();
    warm_us.push_back(us);
    if (json != cold_json) identical = false;
    if (us < best_warm) best_warm = us;
    std::printf("warm run %d: %lld us\n", i + 1, us);
  }
  const double speedup =
      best_warm > 0 ? static_cast<double>(cold_us) / static_cast<double>(best_warm)
                    : 0.0;
  std::printf("warm speedup: %.1fx; reports identical: %s\n", speedup,
              identical ? "yes" : "NO");

  obs::JsonWriter json;
  json.begin_object();
  json.key("scale").value(scale);
  json.key("cold_us").value(static_cast<std::uint64_t>(cold_us));
  json.key("warm_us").begin_array();
  for (const long long us : warm_us) {
    json.value(static_cast<std::uint64_t>(us));
  }
  json.end_array();
  json.key("speedup_cold_over_best_warm").value(speedup);
  json.key("reports_identical").value(identical);
  const store::CacheStats stats = cache.stats();
  json.key("cache_entries").value(stats.entries);
  json.key("cache_bytes").value(stats.bytes);
  json.end_object();

  bool written = true;
  if (const char* env = std::getenv("GEONET_BENCH_REPORT");
      env == nullptr || std::string(env) != "0") {
    obs::RunReport report("bench");
    report.set_info("experiment", "store");
    report.set_info("paper_artifact", "infrastructure: snapshot cache");
    report.set_info("scale", std::to_string(scale));
    const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    report.set_info("wall_us", std::to_string(wall.count()));
    bench::stamp_bench_report(report);
    report.add_section("cache_sweep", json.str());
    const char* dir = std::getenv("GEONET_BENCH_REPORT_DIR");
    const std::string path =
        (dir != nullptr ? std::string(dir) : report::results_dir()) +
        "/BENCH_store.json";
    written = store::atomic_write_text(path, report.to_json() + "\n");
    if (written) std::printf("bench record written: %s\n", path.c_str());
  }

  std::filesystem::remove_all(cache_dir);
  return identical && written ? 0 : 1;
}
