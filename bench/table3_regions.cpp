// Table III: variation in people-per-interface density across world
// economic regions, and the far smaller variation in online users per
// interface (Skitter + IxMapper).

#include <cstdio>

#include "bench_common.h"
#include "core/density.h"

int main() {
  using namespace geonet;
  bench::print_banner("table3_regions", "Table III");
  const auto& s = bench::scenario();
  const auto& graph =
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper);

  const auto rows = core::economic_region_table(graph, s.world());

  // Paper values for the last two columns.
  struct PaperRow {
    const char* name;
    double people_per;
    double online_per;
  };
  const PaperRow paper_rows[] = {
      {"Africa", 100011, 495},   {"South America", 33752, 2161},
      {"Mexico", 35534, 784},    {"W. Europe", 3817, 1489},
      {"Japan", 3631, 1250},     {"Australia", 975, 552},
      {"USA", 1061, 588},        {"World", 10032, 910},
  };

  report::Table table({"Region", "Pop (M)", "Nodes", "People/Node",
                       "Online (M)", "Online/Node", "paper P/N", "paper O/N"});
  double min_people = 1e18, max_people = 0.0;
  double min_online = 1e18, max_online = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    table.add_row({row.name, report::fmt(row.population_millions, 0),
                   report::fmt_count(row.nodes),
                   report::fmt(row.people_per_node, 0),
                   report::fmt(row.online_millions, 1),
                   report::fmt(row.online_per_node, 0),
                   report::fmt(paper_rows[i].people_per, 0),
                   report::fmt(paper_rows[i].online_per, 0)});
    if (i + 1 < rows.size() && row.nodes > 0) {  // exclude the World row
      min_people = std::min(min_people, row.people_per_node);
      max_people = std::max(max_people, row.people_per_node);
      min_online = std::min(min_online, row.online_per_node);
      max_online = std::max(max_online, row.online_per_node);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("people/node spread : %.0fx   (paper: >100x)\n",
              max_people / min_people);
  std::printf("online/node spread : %.1fx   (paper: ~4x)\n",
              max_online / min_online);
  return 0;
}
