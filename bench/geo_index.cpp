// geo::SpatialIndex build/query sweep: seeded clustered router sets from
// 1k to 100k points, measuring index build time, nearest/within_radius
// query throughput, and limit-bounded pair counting routed through the
// index versus exact O(n^2) enumeration. Every indexed pair count is
// cross-checked against the brute-force count — a mismatch fails the
// bench (exit 1), so the committed record doubles as a correctness pin.
// Written as results/BENCH_geo.json in the geonet.run_report.v1 bench
// schema. Trim the sweep with GEONET_BENCH_GEO_MAX (default 100000);
// disable the record with GEONET_BENCH_REPORT=0, redirect with
// GEONET_BENCH_REPORT_DIR.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exec/parallel.h"
#include "geo/distance.h"
#include "geo/spatial_index.h"
#include "obs/json.h"
#include "obs/run_report.h"
#include "report/series.h"
#include "store/fs.h"

namespace {

using namespace geonet;

/// Clustered point cloud: routers bunch around metro areas, which is the
/// regime the index's subtree pruning is built for. Deterministic in the
/// seed regardless of platform (explicit distributions over mt19937_64).
std::vector<geo::GeoPoint> clustered_points(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> lat_center(-55.0, 65.0);
  std::uniform_real_distribution<double> lon_center(-180.0, 180.0);
  std::normal_distribution<double> spread(0.0, 1.5);
  const std::size_t cluster_count = 64;
  std::vector<geo::GeoPoint> centers;
  centers.reserve(cluster_count);
  for (std::size_t i = 0; i < cluster_count; ++i) {
    centers.push_back({lat_center(rng), lon_center(rng)});
  }
  std::uniform_int_distribution<std::size_t> pick(0, cluster_count - 1);
  std::vector<geo::GeoPoint> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geo::GeoPoint& c = centers[pick(rng)];
    double lat = c.lat_deg + spread(rng);
    double lon = c.lon_deg + spread(rng);
    if (lat > 90.0) lat = 90.0;
    if (lat < -90.0) lat = -90.0;
    if (lon >= 180.0) lon -= 360.0;
    if (lon < -180.0) lon += 360.0;
    points.push_back({lat, lon});
  }
  return points;
}

long long elapsed_us(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Limit-bounded pair count through the index, parallel over leaves —
/// the same traversal core/distance_pref routes its histogram through.
std::uint64_t indexed_pair_count(const std::vector<geo::GeoPoint>& points,
                                 const geo::SpatialIndex& index,
                                 double limit_miles) {
  exec::RegionOptions region;
  region.name = "bench/pairs_indexed";
  region.grain = 1;
  return exec::parallel_reduce<std::uint64_t>(
      index.leaf_count(), region, [] { return std::uint64_t{0}; },
      [&](std::uint64_t& acc, std::size_t begin, std::size_t end,
          std::size_t) {
        for (std::size_t leaf = begin; leaf < end; ++leaf) {
          index.visit_leaf_pairs(
              leaf, limit_miles, [&](std::uint32_t a, std::uint32_t b) {
                if (geo::great_circle_miles(points[a], points[b]) <=
                    limit_miles) {
                  ++acc;
                }
              });
        }
      },
      [](std::uint64_t& into, std::uint64_t from) { into += from; });
}

/// The pre-index hot path: every unordered pair, one haversine each.
std::uint64_t brute_pair_count(const std::vector<geo::GeoPoint>& points,
                               double limit_miles) {
  exec::RegionOptions region;
  region.name = "bench/pairs_brute";
  region.grain = 64;
  return exec::parallel_reduce<std::uint64_t>(
      points.size(), region, [] { return std::uint64_t{0}; },
      [&](std::uint64_t& acc, std::size_t begin, std::size_t end,
          std::size_t) {
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = i + 1; j < points.size(); ++j) {
            if (geo::great_circle_miles(points[i], points[j]) <= limit_miles) {
              ++acc;
            }
          }
        }
      },
      [](std::uint64_t& into, std::uint64_t from) { into += from; });
}

}  // namespace

int main() {
  std::printf("================================================================\n");
  std::printf("geo_index  --  infrastructure: spatial index build/query sweep\n");
  std::printf("================================================================\n");

  std::size_t max_n = 100000;
  if (const char* env = std::getenv("GEONET_BENCH_GEO_MAX")) {
    const long long v = std::atoll(env);
    if (v > 0) max_n = static_cast<std::size_t>(v);
  }
  std::vector<std::size_t> sweep;
  for (const std::size_t n : {std::size_t{1000}, std::size_t{10000},
                              std::size_t{100000}}) {
    if (n <= max_n) sweep.push_back(n);
  }
  if (sweep.empty()) sweep.push_back(max_n);

  constexpr double kPairLimitMiles = 200.0;
  constexpr double kRadiusMiles = 100.0;
  constexpr std::size_t kQueries = 1000;
  constexpr std::size_t kNearestK = 8;

  const auto start = std::chrono::steady_clock::now();
  obs::JsonWriter json;
  json.begin_object();
  json.key("pair_limit_miles").value(kPairLimitMiles);
  json.key("radius_miles").value(kRadiusMiles);
  json.key("queries").value(kQueries);
  json.key("sweep").begin_array();

  bool counts_match = true;
  double final_speedup = 0.0;
  for (const std::size_t n : sweep) {
    const std::vector<geo::GeoPoint> points = clustered_points(n, 0x9e0caf3);

    auto t0 = std::chrono::steady_clock::now();
    const geo::SpatialIndex index = geo::SpatialIndex::build(points);
    const long long build_us = elapsed_us(t0);

    // Query probes reuse the point set itself (query i = point i*stride),
    // so the workload scales with n without a second generator.
    const std::size_t stride = points.size() / kQueries + 1;
    std::uint64_t nearest_checksum = 0;
    t0 = std::chrono::steady_clock::now();
    for (std::size_t q = 0; q < points.size(); q += stride) {
      for (const auto& hit : index.nearest(points[q], kNearestK)) {
        nearest_checksum += hit.id;
      }
    }
    const long long nearest_us = elapsed_us(t0);

    std::uint64_t within_total = 0;
    t0 = std::chrono::steady_clock::now();
    for (std::size_t q = 0; q < points.size(); q += stride) {
      within_total += index.within_radius(points[q], kRadiusMiles).size();
    }
    const long long within_us = elapsed_us(t0);

    t0 = std::chrono::steady_clock::now();
    const std::uint64_t indexed = indexed_pair_count(points, index,
                                                     kPairLimitMiles);
    const long long indexed_us = elapsed_us(t0);

    t0 = std::chrono::steady_clock::now();
    const std::uint64_t brute = brute_pair_count(points, kPairLimitMiles);
    const long long brute_us = elapsed_us(t0);

    if (indexed != brute) counts_match = false;
    const double speedup =
        indexed_us > 0
            ? static_cast<double>(brute_us) / static_cast<double>(indexed_us)
            : 0.0;
    final_speedup = speedup;
    std::printf(
        "n=%7zu  build %8lld us  nearest %8lld us  within %8lld us\n"
        "           pairs<=%.0fmi indexed %8lld us  brute %10lld us  "
        "speedup %6.1fx  count %llu %s\n",
        n, build_us, nearest_us, within_us, kPairLimitMiles, indexed_us,
        brute_us, speedup, static_cast<unsigned long long>(indexed),
        indexed == brute ? "(= brute)" : "!= BRUTE — MISMATCH");

    json.begin_object();
    json.key("n").value(n);
    json.key("build_us").value(static_cast<std::uint64_t>(build_us));
    json.key("nearest_us").value(static_cast<std::uint64_t>(nearest_us));
    json.key("nearest_checksum").value(nearest_checksum);
    json.key("within_us").value(static_cast<std::uint64_t>(within_us));
    json.key("within_total").value(within_total);
    json.key("pairs_indexed_us").value(static_cast<std::uint64_t>(indexed_us));
    json.key("pairs_brute_us").value(static_cast<std::uint64_t>(brute_us));
    json.key("pair_count").value(indexed);
    json.key("counts_match").value(indexed == brute);
    json.key("speedup_brute_over_indexed").value(speedup);
    json.end_object();
  }
  json.end_array();
  json.key("all_counts_match").value(counts_match);
  json.key("final_speedup").value(final_speedup);
  json.end_object();
  std::printf("all counts match: %s; speedup at n=%zu: %.1fx\n",
              counts_match ? "yes" : "NO", sweep.back(), final_speedup);

  bool written = true;
  if (const char* env = std::getenv("GEONET_BENCH_REPORT");
      env == nullptr || std::string(env) != "0") {
    obs::RunReport report("bench");
    report.set_info("experiment", "geo");
    report.set_info("paper_artifact", "infrastructure: spatial index");
    report.set_info("wall_us", std::to_string(elapsed_us(start)));
    bench::stamp_bench_report(report);
    report.add_section("index_sweep", json.str());
    const char* dir = std::getenv("GEONET_BENCH_REPORT_DIR");
    const std::string path =
        (dir != nullptr ? std::string(dir) : report::results_dir()) +
        "/BENCH_geo.json";
    written = store::atomic_write_text(path, report.to_json() + "\n");
    if (written) std::printf("bench record written: %s\n", path.c_str());
  }
  return counts_match && written ? 0 : 1;
}
