// Ablation: statistical vs mechanical geolocation.
//
// GeoMapper models IxMapper's behaviour statistically (city snap +
// failure/whois rates). HostnameMapper is the mechanical version: the
// ground truth gets real reverse-DNS names with city codes, and the
// mapper parses them — the technique the paper describes as IxMapper's
// primary method ("0.so-5-2-0.XL1.NYC8.ALTER.NET maps to New York").
// If the statistical model is a fair stand-in, the paper's headline
// analyses must come out the same under both.

#include <cstdio>

#include "bench_common.h"
#include "core/density.h"
#include "core/link_domains.h"
#include "core/waxman_fit.h"
#include "synth/hostnames.h"

int main() {
  using namespace geonet;
  bench::print_banner("ablation_hostnames",
                      "Section III.B hostname-mapping mechanics");
  const auto& s = bench::scenario();
  const auto& truth = s.truth();

  // Build the codebook and reverse DNS for the scenario's world.
  std::vector<geo::GeoPoint> cities;
  for (const auto& grid : s.world().grids()) {
    for (const auto& city : grid.cities()) cities.push_back(city.center);
  }
  const synth::CityCodebook codebook(cities);
  const synth::DnsDatabase dns = synth::build_dns(truth, codebook);
  const synth::HostnameMapper hostname_mapper(dns, codebook, 0.85, 77);
  const synth::GeoMapper statistical(synth::GeoMapper::ixmapper_profile(),
                                     cities, s.options().seed ^ 0x1a11ULL);

  // Process the same raw Skitter observation through both mappers.
  synth::ProcessingStats stat_stats, host_stats;
  const auto graph_stat = synth::process_interface_observation(
      truth, s.skitter_raw(), statistical, &stat_stats);
  const auto graph_host = synth::process_interface_observation(
      truth, s.skitter_raw(), hostname_mapper, &host_stats);

  report::Table sizes({"Mapper", "nodes", "links", "locations", "unmapped"});
  const auto add_size = [&](const char* name,
                            const net::AnnotatedGraph& graph,
                            const synth::ProcessingStats& stats) {
    sizes.add_row({name, report::fmt_count(graph.node_count()),
                   report::fmt_count(graph.edge_count()),
                   report::fmt_count(stats.distinct_locations),
                   report::fmt_percent(
                       static_cast<double>(stats.unmapped_nodes) /
                       static_cast<double>(stats.input_nodes))});
  };
  add_size("statistical (GeoMapper)", graph_stat, stat_stats);
  add_size("mechanical (hostnames)", graph_host, host_stats);
  std::printf("%s\n", sizes.to_string().c_str());

  report::Table findings({"Mapper", "US density slope", "US lambda (mi)",
                          "US % dist-sensitive", "intra %"});
  const auto add_findings = [&](const char* name,
                                const net::AnnotatedGraph& graph) {
    const auto density =
        core::analyze_density(graph, s.world(), geo::regions::us());
    const auto waxman = core::characterize_region(graph, geo::regions::us());
    const auto domains = core::analyze_link_domains(graph);
    findings.add_row({name, report::fmt(density.loglog_fit.slope, 2),
                      report::fmt(waxman.lambda_miles, 0),
                      report::fmt_percent(waxman.fraction_links_below_limit),
                      report::fmt_percent(domains.intradomain_fraction())});
  };
  add_findings("statistical", graph_stat);
  add_findings("mechanical", graph_host);
  std::printf("%s\n", findings.to_string().c_str());
  std::printf("check: the two rows agree — the statistical error model is a\n"
              "sound stand-in for mechanically parsing hostname city codes,\n"
              "which is why the library uses it in the default pipeline.\n");
  return 0;
}
