// Section VII ablation: run the paper's analysis pipeline over topology
// generators — the geography-aware generator this library provides, the
// classic Waxman model, and Barabasi-Albert — and check which of the
// paper's empirical signatures each reproduces. Also sweeps the
// ground-truth long-haul knob that controls the Table V split.

#include <cstdio>

#include "bench_common.h"
#include "core/density.h"
#include "core/link_domains.h"
#include "core/validate.h"
#include "core/waxman_fit.h"
#include "generators/ba_gen.h"
#include "generators/geo_gen.h"
#include "generators/hierarchical_gen.h"
#include "generators/inet_gen.h"
#include "generators/waxman_gen.h"
#include "net/graph_algos.h"
#include "stats/ccdf.h"

namespace {

using namespace geonet;

struct Signature {
  std::size_t realism_passed = 0;
  std::size_t realism_total = 0;
  double density_slope = 0.0;
  double lambda_miles = 0.0;
  double fraction_sensitive = 0.0;
  double degree_tail_slope = 0.0;
  double intradomain_fraction = 0.0;
};

Signature measure(const net::AnnotatedGraph& graph,
                  const population::WorldPopulation& world) {
  Signature sig;
  const auto realism = core::check_realism(graph, world, geo::regions::us());
  sig.realism_passed = realism.passed;
  sig.realism_total = realism.checks.size();
  const geo::Region us = geo::regions::us();
  sig.density_slope =
      core::analyze_density(graph, world, us).loglog_fit.slope;
  const auto w = core::characterize_region(graph, us);
  sig.lambda_miles = w.lambda_miles;
  sig.fraction_sensitive = w.fraction_links_below_limit;
  const auto degrees = graph.degrees();
  std::vector<double> values(degrees.begin(), degrees.end());
  sig.degree_tail_slope = stats::fit_ccdf_tail(values, 0.3).slope;
  sig.intradomain_fraction =
      core::analyze_link_domains(graph).intradomain_fraction();
  return sig;
}

}  // namespace

int main() {
  bench::print_banner("ablation_generators",
                      "Section VII topology-generator comparison");
  const auto& s = bench::scenario();
  const std::size_t n = std::max<std::size_t>(
      4000, s.truth().topology().router_count() / 2);

  report::Table table({"Generator", "density slope", "lambda (mi)",
                       "% dist-sensitive", "deg tail", "intra %",
                       "realism"});
  const auto add = [&](const char* name, const Signature& sig) {
    table.add_row({name, report::fmt(sig.density_slope, 2),
                   report::fmt(sig.lambda_miles, 0),
                   report::fmt_percent(sig.fraction_sensitive),
                   report::fmt(sig.degree_tail_slope, 2),
                   report::fmt_percent(sig.intradomain_fraction),
                   std::to_string(sig.realism_passed) + "/" +
                       std::to_string(sig.realism_total)});
  };

  {
    generators::GeoGeneratorOptions options;
    options.router_count = n;
    const auto result = generators::generate_geo_topology(s.world(), options);
    add("GeoGenerator", measure(result.graph, s.world()));
  }
  {
    generators::WaxmanOptions options;
    options.node_count = std::min<std::size_t>(n, 6000);
    options.alpha = 0.05;
    options.beta = 0.02;
    const auto graph = generators::generate_waxman(geo::regions::us(), options);
    add("Waxman", measure(graph, s.world()));
  }
  {
    generators::BarabasiAlbertOptions options;
    options.node_count = n;
    const auto graph =
        generators::generate_barabasi_albert(geo::regions::us(), options);
    add("BarabasiAlbert", measure(graph, s.world()));
  }
  {
    generators::InetOptions options;
    options.node_count = n;
    const auto graph = generators::generate_inet(geo::regions::us(), options);
    add("Inet", measure(graph, s.world()));
  }
  {
    generators::TransitStubOptions options;
    options.transit_domains = std::max<std::size_t>(4, n / 1500);
    options.stubs_per_transit = 8;
    options.stub_nodes_mean = 12;
    const auto graph =
        generators::generate_transit_stub(geo::regions::us(), options);
    add("TransitStub", measure(graph, s.world()));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "reading: only the geography-aware generator reproduces all of the\n"
      "paper's signatures at once — superlinear density (>1), a mile-scale\n"
      "distance decay, a dominant distance-sensitive link share, a heavy\n"
      "degree tail, and a realistic intradomain majority. Waxman gets the\n"
      "distance decay but places nodes uniformly (density slope near 0 and\n"
      "no AS structure); BA and Inet get degree tails but no geography;\n"
      "TransitStub has hierarchy and an intradomain majority, but its\n"
      "uniform domain placement still misses the population law.\n\n");

  // Knob sweep: structural (distance-free) link probability drives the
  // fraction of distance-sensitive links (the Table V split).
  report::Table sweep({"structural link prob", "% dist-sensitive",
                       "lambda (mi)"});
  for (const double p : {0.05, 0.30, 0.70}) {
    synth::GroundTruthOptions growth;
    growth.interface_scale = s.options().scale * 0.5;
    growth.structural_link_probability = p;
    growth.seed = 777;
    const auto truth = synth::GroundTruth::build(s.world(), growth);
    const auto result = generators::topology_from_truth(truth);
    const auto w = core::characterize_region(result.graph, geo::regions::us());
    sweep.add_row({report::fmt(p, 2),
                   report::fmt_percent(w.fraction_links_below_limit),
                   report::fmt(w.lambda_miles, 0)});
  }
  std::printf("%s", sweep.to_string().c_str());
  std::printf("(more structural long-haul links -> smaller distance-sensitive\n"
              " share, mirroring how the 75-95%% range arises in Table V)\n");
  return 0;
}
