// Figure 1: the geographic maps of mapped nodes for the three study
// regions (US, Europe, Japan), rendered as ASCII density maps, plus the
// per-region mapped-node counts.

#include <cstdio>

#include "bench_common.h"
#include "core/density.h"
#include "report/ascii_map.h"

int main() {
  using namespace geonet;
  bench::print_banner("fig01_maps", "Figure 1");
  const auto& s = bench::scenario();
  const auto& graph =
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper);
  const auto locations = graph.locations();

  for (const auto& region : geo::regions::paper_study_regions()) {
    std::printf("\n-- %s: %zu mapped nodes --\n", region.name.c_str(),
                core::count_nodes_in(graph, region));
    std::printf("%s", report::ascii_density_map(locations, region, 72).c_str());
  }
  std::printf("\n(the paper's Figure 1 shows the same three boxes; the visual\n"
              " check is strong clustering at metros, not uniform scatter)\n");
  return 0;
}
