// Table VI: intradomain versus interdomain links — counts and mean
// lengths for the World and the three study regions. The paper finds
// intradomain links are >= 83% of links and roughly half as long as
// interdomain links.

#include <cstdio>
#include <optional>

#include "bench_common.h"
#include "core/link_domains.h"
#include "core/waxman_fit.h"

int main() {
  using namespace geonet;
  bench::print_banner("table6_link_domains", "Table VI");
  const auto& s = bench::scenario();
  const auto& graph =
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper);

  struct Scope {
    const char* name;
    std::optional<geo::Region> region;
  };
  const Scope scopes[] = {{"World", std::nullopt},
                          {"US", geo::regions::us()},
                          {"Europe", geo::regions::europe()},
                          {"Japan", geo::regions::japan()}};

  report::Table table({"Scope", "Inter cnt", "Inter mean mi", "Intra cnt",
                       "Intra mean mi", "intra %", "paper inter mi",
                       "paper intra mi"});
  for (const auto& scope : scopes) {
    const auto stats = core::analyze_link_domains(graph, scope.region);
    const auto paper = bench::paper::link_domains(scope.name);
    table.add_row({scope.name, report::fmt_count(stats.interdomain_count),
                   report::fmt(stats.interdomain_mean_miles, 1),
                   report::fmt_count(stats.intradomain_count),
                   report::fmt(stats.intradomain_mean_miles, 1),
                   report::fmt_percent(stats.intradomain_fraction()),
                   report::fmt(paper.inter_mean_miles, 1),
                   report::fmt(paper.intra_mean_miles, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto world = core::analyze_link_domains(graph);
  std::printf("inter/intra mean-length ratio (World): %.2f (paper: ~2.2)\n\n",
              world.intradomain_mean_miles > 0.0
                  ? world.interdomain_mean_miles / world.intradomain_mean_miles
                  : 0.0);

  // Decomposition f(d) = f_intra(d) + f_inter(d): how distance-sensitive
  // is each link class on its own? (The paper observes intradomain mean
  // lengths sit inside the Table V sensitivity limits while interdomain
  // means approach or exceed them.)
  report::Table decompose({"Region", "class", "lambda (mi)",
                           "% links < limit"});
  for (const auto& region : geo::regions::paper_study_regions()) {
    for (const auto filter : {core::DomainFilter::kIntradomainOnly,
                              core::DomainFilter::kInterdomainOnly}) {
      core::DistancePrefOptions pref_options;
      pref_options.domain_filter = filter;
      const auto pref =
          core::distance_preference(graph, region, pref_options);
      core::WaxmanFitOptions fit_options;
      fit_options.small_d_cut_miles = core::paper_small_d_cut(region);
      const auto w = core::characterize_waxman(pref, fit_options);
      decompose.add_row(
          {region.name,
           filter == core::DomainFilter::kIntradomainOnly ? "intra" : "inter",
           report::fmt(w.lambda_miles, 0),
           report::fmt_percent(w.fraction_links_below_limit)});
    }
  }
  std::printf("%s", decompose.to_string().c_str());
  std::printf("(intradomain links carry the sharp distance decay; interdomain\n"
              " links are flatter — consistent with Table VI's 2x lengths)\n");
  return 0;
}
