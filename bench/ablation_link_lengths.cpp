// Section II contrast with Yook, Jeong & Barabasi: they studied the
// distribution of link *lengths*; the paper studies the conditional
// connection probability f(d). This bench computes the length
// distribution on the same datasets, plus the paper's Section V endnote:
// the structural value of the few long links (Watts-Strogatz).

#include <cstdio>

#include "bench_common.h"
#include "core/link_lengths.h"
#include "stats/ccdf.h"

int main() {
  using namespace geonet;
  bench::print_banner("ablation_link_lengths",
                      "Section II link-length distribution + Section V endnote");
  const auto& s = bench::scenario();

  report::Table table({"Dataset", "Region", "links", "zero-len", "median mi",
                       "mean mi", "max mi", "tail slope"});
  for (const auto& ref : bench::ixmapper_datasets()) {
    const auto& graph = s.graph(ref.dataset, ref.mapper);
    for (const auto* scope : {"World", "US", "Europe", "Japan"}) {
      std::optional<geo::Region> region;
      if (std::string(scope) != "World") region = geo::regions::by_name(scope);
      const auto analysis = core::analyze_link_lengths(graph, region);
      table.add_row({ref.label, scope,
                     report::fmt_count(analysis.lengths_miles.size()),
                     report::fmt_percent(analysis.fraction_zero),
                     report::fmt(analysis.summary.median, 0),
                     report::fmt(analysis.summary.mean, 0),
                     report::fmt(analysis.summary.max, 0),
                     report::fmt(analysis.tail.slope, 2)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // Write the world length CCDF for plotting.
  const auto& skitter =
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper);
  const auto world = core::analyze_link_lengths(skitter);
  const auto ccdf = stats::empirical_ccdf(world.lengths_miles);
  report::Series series{"link length (mi) vs P[X>x]", {}};
  for (const auto& pt : stats::log_log(ccdf)) {
    series.points.push_back({pt.x, pt.p});
  }
  bench::save_series("link_length_ccdf.dat", series,
                     "link length CCDF (log-log)");

  // Small-world probe: longest-10% removal vs random-10% removal.
  std::printf("\nstructural role of long links (Watts-Strogatz endnote):\n");
  report::Table probe({"Removal", "kept", "giant component", "mean hops"});
  const auto add_probe = [&](const char* name, const core::SmallWorldProbe& p) {
    probe.add_row({name, report::fmt_percent(p.kept_fraction),
                   report::fmt_count(p.giant_component),
                   report::fmt(p.mean_hops, 2)});
  };
  add_probe("none", core::probe_link_removal(skitter, 0.0,
                                             core::LinkRemoval::kLongest, 48));
  add_probe("longest 10%",
            core::probe_link_removal(skitter, 0.10,
                                     core::LinkRemoval::kLongest, 48));
  add_probe("random 10%",
            core::probe_link_removal(skitter, 0.10,
                                     core::LinkRemoval::kRandom, 48));
  std::printf("%s", probe.to_string().c_str());
  std::printf("check: random damage of equal size is almost harmless, while\n"
              "removing the longest links tears the graph apart — the small\n"
              "distance-insensitive minority of links is structurally vital,\n"
              "exactly the paper's closing point in Section V.\n");
  return 0;
}
