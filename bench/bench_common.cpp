#include "bench_common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <string_view>

#include "exec/thread_pool.h"
#include "obs/log.h"
#include "obs/run_report.h"
#include "store/build_info.h"
#include "store/fs.h"

namespace geonet::bench {

const synth::Scenario& scenario() {
  static const synth::Scenario instance = [] {
    const auto options = synth::ScenarioOptions::defaults();
    obs::log(obs::LogLevel::kInfo,
             "[geonet] building scenario at scale %.3f...", options.scale);
    synth::Scenario s = synth::Scenario::build(options);
    obs::log(obs::LogLevel::kInfo, "[geonet] scenario ready");
    return s;
  }();
  return instance;
}

const std::vector<DatasetRef>& all_datasets() {
  static const std::vector<DatasetRef> datasets = {
      {synth::DatasetKind::kMercator, synth::MapperKind::kIxMapper,
       "IxMapper, Mercator"},
      {synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper,
       "IxMapper, Skitter"},
      {synth::DatasetKind::kMercator, synth::MapperKind::kEdgeScape,
       "EdgeScape, Mercator"},
      {synth::DatasetKind::kSkitter, synth::MapperKind::kEdgeScape,
       "EdgeScape, Skitter"},
  };
  return datasets;
}

const std::vector<DatasetRef>& ixmapper_datasets() {
  static const std::vector<DatasetRef> datasets = {
      {synth::DatasetKind::kMercator, synth::MapperKind::kIxMapper,
       "Mercator"},
      {synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper,
       "Skitter"},
  };
  return datasets;
}

namespace {

/// State for the per-figure timing record written at process exit. The
/// experiment identifiers passed to print_banner are already file-safe
/// (fig02_density, table5_sensitivity_limits, ...).
struct BenchRecord {
  std::string experiment;
  std::string artifact;
  std::chrono::steady_clock::time_point start;
};
BenchRecord& bench_record() {
  static BenchRecord record;
  return record;
}

void write_bench_report() {
  const BenchRecord& record = bench_record();
  if (record.experiment.empty()) return;
  if (const char* env = std::getenv("GEONET_BENCH_REPORT")) {
    if (std::string(env) == "0") return;
  }
  const char* dir = std::getenv("GEONET_BENCH_REPORT_DIR");
  const std::string path = (dir != nullptr ? std::string(dir)
                                           : report::results_dir()) +
                           "/BENCH_" + record.experiment + ".json";

  obs::RunReport report("bench");
  report.set_info("experiment", record.experiment);
  report.set_info("paper_artifact", record.artifact);
  report.set_info("scale",
                  std::to_string(synth::ScenarioOptions::defaults().scale));
  const auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - record.start);
  report.set_info("wall_us", std::to_string(wall_us.count()));
  stamp_bench_report(report);
  if (store::atomic_write_text(path, report.to_json() + "\n")) {
    obs::log(obs::LogLevel::kInfo, "[geonet] bench record written: %s",
             path.c_str());
  }
}

}  // namespace

void print_banner(const char* experiment, const char* paper_artifact) {
  BenchRecord& record = bench_record();
  if (record.experiment.empty()) {
    record.experiment = experiment;
    record.artifact = paper_artifact;
    record.start = std::chrono::steady_clock::now();
    std::atexit(write_bench_report);
  }
  std::printf("================================================================\n");
  std::printf("%s  --  reproduces %s\n", experiment, paper_artifact);
  std::printf("  (paper: On the Geographic Location of Internet Resources,\n");
  std::printf("   Lakhina/Byers/Crovella/Matta, IMC 2002; synthetic substrate)\n");
  std::printf("================================================================\n");
}

void stamp_bench_report(obs::RunReport& report) {
  // The effective pool size, not the live pool: benches size the pool via
  // GEONET_THREADS or hardware, and this also stays safe in exit hooks
  // where the global pool may already be torn down.
  report.set_info(
      "threads", std::to_string(exec::ThreadPool::default_thread_count()));
  const store::BuildInfo& build = store::build_info();
  report.set_info("tool_version", build.tool_version);
  report.set_info("compiler", build.compiler);
  report.set_info("build_type", build.build_type);
  report.set_info("git_describe", build.git_describe);
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  char stamp[32] = "unknown";
#if defined(_WIN32)
  gmtime_s(&utc, &now);
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
#else
  if (gmtime_r(&now, &utc) != nullptr) {
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  }
#endif
  report.set_info("timestamp_utc", stamp);
}

std::string dat_name(const std::string& stem) {
  // Strip a trailing ".dat" so callers can pass either a label or a
  // full filename; everything goes through the same slug.
  std::string base = stem;
  constexpr std::string_view kExt = ".dat";
  if (base.size() >= kExt.size() &&
      base.compare(base.size() - kExt.size(), kExt.size(), kExt) == 0) {
    base.resize(base.size() - kExt.size());
  }
  return store::slug(base) + ".dat";
}

void save_series(const std::string& filename, const report::Series& series,
                 const std::string& comment) {
  const std::string path = report::results_dir() + "/" + dat_name(filename);
  if (report::write_series(path, series, comment)) {
    std::printf("  [series written: %s]\n", path.c_str());
  }
}

namespace paper {

DensitySlopes density_slope(const std::string& region_name) {
  if (region_name == "US") return {1.20, 1.26};
  if (region_name == "Europe") return {1.56, 1.60};
  if (region_name == "Japan") return {1.75, 1.71};
  return {0.0, 0.0};
}

SemilogSlopes semilog_slope(const std::string& region_name) {
  if (region_name == "US") return {-0.00691, -0.00705};
  if (region_name == "Europe") return {-0.0128, -0.0123};
  if (region_name == "Japan") return {-0.00689, -0.00882};
  return {0.0, 0.0};
}

SensitivityRow sensitivity(const std::string& region_name) {
  if (region_name == "US") return {820.0, 0.821, 818.0, 0.772};
  if (region_name == "Europe") return {383.0, 0.973, 366.0, 0.954};
  if (region_name == "Japan") return {165.0, 0.915, 116.0, 0.928};
  return {0.0, 0.0, 0.0, 0.0};
}

LinkDomainRow link_domains(const std::string& scope_name) {
  if (scope_name == "World") return {146936, 1664.0, 715997, 757.0};
  if (scope_name == "US") return {77367, 762.0, 354593, 421.0};
  if (scope_name == "Europe") return {15365, 88.6, 99023, 29.1};
  if (scope_name == "Japan") return {3651, 181.0, 44701, 54.5};
  return {0, 0, 0, 0};
}

}  // namespace paper

}  // namespace geonet::bench
