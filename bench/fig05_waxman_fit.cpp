// Figure 5 (and appendix Figure 13): ln f(d) versus d over small d is
// close to linear — the Waxman exponential form. Paper slopes (IxMapper):
// US -0.0069/-0.0071, Europe -0.0128/-0.0123, Japan -0.0069/-0.0088,
// i.e. decay scales of ~80-145 miles.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/waxman_fit.h"

int main() {
  using namespace geonet;
  bench::print_banner("fig05_waxman_fit", "Figure 5 (+ Figure 13)");
  const auto& s = bench::scenario();

  report::Table table({"Dataset", "Region", "slope (1/mi)", "lambda (mi)",
                       "beta", "r^2", "paper slope", "paper lambda"});
  for (const auto& ref : bench::all_datasets()) {
    const auto& graph = s.graph(ref.dataset, ref.mapper);
    for (const auto& region : geo::regions::paper_study_regions()) {
      const auto pref = core::distance_preference(graph, region);
      core::WaxmanFitOptions options;
      options.small_d_cut_miles = core::paper_small_d_cut(region);
      const auto w = core::characterize_waxman(pref, options);

      const auto paper = bench::paper::semilog_slope(region.name);
      const double paper_slope = ref.dataset == synth::DatasetKind::kMercator
                                     ? paper.mercator
                                     : paper.skitter;
      table.add_row({ref.label, region.name,
                     report::fmt(w.semilog_fit.slope, 5),
                     report::fmt(w.lambda_miles, 0),
                     report::fmt(w.beta, 6),
                     report::fmt(w.semilog_fit.r_squared, 2),
                     report::fmt(paper_slope, 5),
                     report::fmt(-1.0 / paper_slope, 0)});

      report::Series series;
      series.name = "d(miles) vs ln f(d), small d";
      for (std::size_t b = 0; b < pref.f.size(); ++b) {
        const double d = pref.bin_center(b);
        if (d > options.small_d_cut_miles) break;
        if (pref.f[b] > 0.0) {
          series.points.push_back({d, std::log(pref.f[b])});
        }
      }
      const std::string file = bench::dat_name(std::string("fig05_") +
                                               ref.label + "_" + region.name);
      bench::save_series(file, series, "Figure 5 semilog small-d");
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("check: negative slope with a reasonable linear fit (Waxman's\n"
              "exponential form); lambda of order 100 miles per region.\n");
  return 0;
}
