// Figure 10 (and appendix Figure 17): hull area against the three AS size
// measures. Two regimes: wide variability among small ASes, and a size
// threshold above which every AS is maximally dispersed (paper: degree
// ~100, interfaces ~1000, locations ~100).

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/hull_analysis.h"

int main() {
  using namespace geonet;
  bench::print_banner("fig10_hull_scatter", "Figure 10 (+ Figure 17)");
  const auto& s = bench::scenario();
  const auto& graph =
      s.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper);
  const auto analysis = core::analyze_hulls(graph);

  report::Table table({"Measure", "dispersal threshold", "paper threshold"});
  table.add_row({"degree", report::fmt(analysis.thresholds.by_degree, 0),
                 "~100"});
  table.add_row({"interfaces",
                 report::fmt(analysis.thresholds.by_node_count, 0), "~1000"});
  table.add_row({"locations",
                 report::fmt(analysis.thresholds.by_locations, 0), "~100"});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("dispersed means hull area >= %.0f mi^2 (%.0f%% of the 99th\n"
              "percentile hull).\n\n",
              analysis.thresholds.dispersed_area_sq_miles, 10.0);

  report::Series deg{"log10(degree) vs log10(hull area)", {}};
  report::Series ifc{"log10(interfaces) vs log10(hull area)", {}};
  report::Series loc{"log10(locations) vs log10(hull area)", {}};
  for (const auto& r : analysis.records) {
    if (r.hull_area_sq_miles <= 0.0) continue;
    const double h = std::log10(r.hull_area_sq_miles);
    ifc.points.push_back({std::log10(static_cast<double>(r.node_count)), h});
    loc.points.push_back(
        {std::log10(static_cast<double>(r.location_count)), h});
    if (r.degree > 0) {
      deg.points.push_back({std::log10(static_cast<double>(r.degree)), h});
    }
  }
  bench::save_series("fig10_degree_vs_hull.dat", deg, "Figure 10a");
  bench::save_series("fig10_ifaces_vs_hull.dat", ifc, "Figure 10b");
  bench::save_series("fig10_locations_vs_hull.dat", loc, "Figure 10c");

  // The first regime: even small ASes can reach near-maximal dispersal.
  double max_small_hull = 0.0;
  double max_hull = 0.0;
  for (const auto& r : analysis.records) {
    max_hull = std::max(max_hull, r.hull_area_sq_miles);
    if (r.location_count <= 4) {
      max_small_hull = std::max(max_small_hull, r.hull_area_sq_miles);
    }
  }
  std::printf("largest hull of an AS with <= 4 locations: %.2e mi^2\n",
              max_small_hull);
  std::printf("largest hull overall:                      %.2e mi^2\n", max_hull);
  std::printf("ratio: %.2f   (paper: even 3-4 location ASes can be nearly\n"
              "worldwide — expect a ratio approaching 1)\n",
              max_hull > 0.0 ? max_small_hull / max_hull : 0.0);
  return 0;
}
