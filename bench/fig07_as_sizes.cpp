// Figure 7 (and appendix Figure 15): log-log complementary distributions
// of the three AS size measures — number of interfaces, number of
// distinct locations, and AS degree — all long-tailed.

#include <cstdio>

#include <algorithm>

#include "bench_common.h"
#include "core/as_analysis.h"
#include "stats/summary.h"
#include "stats/ccdf.h"

int main() {
  using namespace geonet;
  bench::print_banner("fig07_as_sizes", "Figure 7 (+ Figure 15)");
  const auto& s = bench::scenario();

  report::Table table({"Dataset", "Measure", "ASes", "max", "median",
                       "tail slope", "tail r^2"});
  for (const auto& ref : bench::all_datasets()) {
    const auto analysis = core::analyze_as_sizes(s.graph(ref.dataset, ref.mapper));
    struct Measure {
      const char* name;
      std::vector<double> values;
      stats::LinearFit tail;
    };
    const std::vector<Measure> measures = {
        {"interfaces", analysis.node_counts(), analysis.tail_nodes},
        {"locations", analysis.location_counts(), analysis.tail_locations},
        {"degree", analysis.degrees(), analysis.tail_degree},
    };
    for (const auto& m : measures) {
      double max_value = 0.0;
      for (const double v : m.values) max_value = std::max(max_value, v);
      table.add_row({ref.label, m.name, report::fmt_count(m.values.size()),
                     report::fmt(max_value, 0),
                     report::fmt(stats::quantile(m.values, 0.5), 0),
                     report::fmt(m.tail.slope, 2),
                     report::fmt(m.tail.r_squared, 2)});
      if (ref.dataset == synth::DatasetKind::kSkitter &&
          ref.mapper == synth::MapperKind::kIxMapper) {
        const auto ccdf = stats::empirical_ccdf(m.values);
        const auto ll = stats::log_log(ccdf);
        report::Series series;
        series.name = std::string("log10(") + m.name + ") vs log10(P[X>x])";
        for (const auto& pt : ll) series.points.push_back({pt.x, pt.p});
        bench::save_series(std::string("fig07_") + m.name + ".dat", series,
                           "Figure 7 CCDF");
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("check: all three measures span orders of magnitude with\n"
              "negative log-log tail slopes (long tails), as in Figure 7;\n"
              "the locations measure behaves like the other two — the\n"
              "paper's new observation.\n");
  return 0;
}
