// Figure 2 (and appendix Figure 11): router/interface density versus
// population density over 75-arcmin patches, log-log, with fitted slopes.
// Paper slopes (IxMapper): US 1.20/1.26, Europe 1.56/1.60, Japan
// 1.75/1.71 (Mercator/Skitter); all clearly superlinear.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/density.h"
#include "stats/bootstrap.h"

int main() {
  using namespace geonet;
  bench::print_banner("fig02_density", "Figure 2 (+ Figure 11)");
  const auto& s = bench::scenario();

  report::Table table({"Mapper", "Dataset", "Region", "slope", "95% CI", "r^2",
                       "patches", "paper slope"});
  for (const auto& ref : bench::all_datasets()) {
    const auto& graph = s.graph(ref.dataset, ref.mapper);
    for (const auto& region : geo::regions::paper_study_regions()) {
      const auto analysis = core::analyze_density(graph, s.world(), region);
      const auto paper = bench::paper::density_slope(region.name);
      const bool is_mercator = ref.dataset == synth::DatasetKind::kMercator;
      std::vector<double> log_pop, log_nodes;
      for (const auto& patch : analysis.patches) {
        log_pop.push_back(std::log10(patch.population));
        log_nodes.push_back(std::log10(patch.node_count));
      }
      const auto ci = stats::bootstrap_slope(log_pop, log_nodes, 300);
      char ci_text[40];
      std::snprintf(ci_text, sizeof(ci_text), "[%.2f,%.2f]", ci.lo, ci.hi);
      table.add_row({to_string(ref.mapper), to_string(ref.dataset),
                     region.name,
                     report::fmt(analysis.loglog_fit.slope, 2),
                     ci_text,
                     report::fmt(analysis.loglog_fit.r_squared, 2),
                     report::fmt_count(analysis.patches.size()),
                     report::fmt(is_mercator ? paper.mercator : paper.skitter,
                                 2)});

      // Emit the scatter for the main-body (IxMapper) panels.
      if (ref.mapper == synth::MapperKind::kIxMapper) {
        report::Series series;
        series.name = "log10(pop) vs log10(nodes)";
        for (const auto& patch : analysis.patches) {
          series.points.push_back({std::log10(patch.population),
                                   std::log10(patch.node_count)});
        }
        const std::string file = bench::dat_name(
            std::string("fig02_") + to_string(ref.dataset) + "_" + region.name);
        bench::save_series(file, series, "Figure 2 patch scatter");
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("check: every slope > 1 (superlinear), consistent across the\n"
              "two datasets and the two mappers, as in the paper.\n");
  return 0;
}
