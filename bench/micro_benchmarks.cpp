// google-benchmark microbenchmarks for the performance-critical kernels:
// great-circle distance, LPM trie lookups, convex hulls, the three
// pair-distance histogram engines, grid tallies, and end-to-end synthesis.
// After the benchmark suite, main() sweeps the exact pair-histogram over
// thread counts and writes results/BENCH_exec.json (PR bench schema).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/distance_pref.h"
#include "exec/thread_pool.h"
#include "geo/convex_hull.h"
#include "geo/distance.h"
#include "geo/grid.h"
#include "net/prefix_trie.h"
#include "obs/json.h"
#include "obs/run_report.h"
#include "population/synth_population.h"
#include "report/series.h"
#include "stats/fenwick.h"
#include "store/fs.h"
#include "stats/rng.h"
#include "synth/ground_truth.h"

namespace {

using namespace geonet;

std::vector<geo::GeoPoint> random_points(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<geo::GeoPoint> pts;
  pts.reserve(n);
  const geo::Region us = geo::regions::us();
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(us.south_deg, us.north_deg),
                   rng.uniform(us.west_deg, us.east_deg)});
  }
  return pts;
}

void BM_GreatCircle(benchmark::State& state) {
  const auto pts = random_points(1024, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = pts[i % pts.size()];
    const auto& b = pts[(i * 7 + 3) % pts.size()];
    benchmark::DoNotOptimize(geo::great_circle_miles(a, b));
    ++i;
  }
}
BENCHMARK(BM_GreatCircle);

void BM_PrefixTrieLookup(benchmark::State& state) {
  stats::Rng rng(2);
  net::PrefixTrie trie;
  for (int i = 0; i < state.range(0); ++i) {
    trie.insert({net::Ipv4Addr{static_cast<std::uint32_t>(rng.next_u64())},
                 static_cast<std::uint8_t>(8 + rng.uniform_index(17))},
                static_cast<std::uint32_t>(i));
  }
  std::uint32_t q = 0x01020304;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.longest_match(net::Ipv4Addr{q}));
    q = q * 1664525u + 1013904223u;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefixTrieLookup)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ConvexHull(benchmark::State& state) {
  const auto geo_pts = random_points(static_cast<std::size_t>(state.range(0)), 3);
  const geo::AlbersProjection proj = geo::AlbersProjection::world();
  std::vector<geo::PlanarPoint> pts;
  for (const auto& p : geo_pts) pts.push_back(proj.project(p));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::convex_hull(pts));
  }
}
BENCHMARK(BM_ConvexHull)->Arg(100)->Arg(1000)->Arg(10000);

void BM_GridTally(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 4);
  const geo::Grid grid(geo::regions::us(), 7.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.tally(pts));
  }
}
BENCHMARK(BM_GridTally)->Arg(10000)->Arg(100000);

void BM_FenwickSample(benchmark::State& state) {
  stats::Rng rng(5);
  std::vector<double> weights(100000);
  for (auto& w : weights) w = rng.uniform();
  const stats::FenwickTree tree(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.sample(rng));
  }
}
BENCHMARK(BM_FenwickSample);

void BM_PairHistogram(benchmark::State& state) {
  const auto method = static_cast<core::PairCountMethod>(state.range(1));
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 6);
  const geo::Region us = geo::regions::us();
  core::DistancePrefOptions options;
  options.method = method;
  options.sample_pairs = 500000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::pair_distance_histogram(pts, 0.0, 3500.0, 100, us, options));
  }
  state.SetLabel(method == core::PairCountMethod::kExact    ? "exact"
                 : method == core::PairCountMethod::kGrid   ? "grid"
                                                            : "sampled");
}
BENCHMARK(BM_PairHistogram)
    ->Args({2000, 0})   // exact
    ->Args({2000, 1})   // grid
    ->Args({2000, 2})   // sampled
    ->Args({20000, 1})
    ->Args({20000, 2});

void BM_GroundTruthBuild(benchmark::State& state) {
  const auto world = population::WorldPopulation::build(7);
  synth::GroundTruthOptions options;
  options.interface_scale = 0.01 * static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::GroundTruth::build(world, options));
  }
}
BENCHMARK(BM_GroundTruthBuild)->Arg(1)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_PopulationSynthesis(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        population::WorldPopulation::build(static_cast<std::uint64_t>(
            state.iterations())));
  }
}
BENCHMARK(BM_PopulationSynthesis)->Unit(benchmark::kMillisecond);

// Thread-scaling record for the exec subsystem: wall time of the exact
// pair-distance histogram (the heaviest parallel region) at 1/2/4/8
// threads, plus a determinism cross-check that every thread count yields
// identical counts. Written as results/BENCH_exec.json in the same
// geonet.run_report.v1 bench schema as the experiment binaries, so the
// perf trajectory tooling picks it up unchanged. Control points with
// GEONET_BENCH_PAIR_POINTS (default 20000); disable with
// GEONET_BENCH_REPORT=0, redirect with GEONET_BENCH_REPORT_DIR.
void write_exec_scaling_record() {
  if (const char* env = std::getenv("GEONET_BENCH_REPORT")) {
    if (std::string(env) == "0") return;
  }
  std::size_t points = 20000;
  if (const char* env = std::getenv("GEONET_BENCH_PAIR_POINTS")) {
    const long long n = std::atoll(env);
    if (n > 1) points = static_cast<std::size_t>(n);
  }

  const auto pts = random_points(points, 6);
  const geo::Region us = geo::regions::us();
  core::DistancePrefOptions options;
  options.method = core::PairCountMethod::kExact;

  const auto start = std::chrono::steady_clock::now();
  const auto run_once = [&] {
    return core::pair_distance_histogram(pts, 0.0, 3500.0, 100, us, options);
  };

  struct Point {
    std::size_t threads;
    long long wall_us;
  };
  std::vector<Point> sweep;
  std::vector<double> reference_counts;
  bool identical = true;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    exec::ThreadPool::set_global_threads(threads);
    run_once();  // warm-up: pool spawn, page faults
    const auto t0 = std::chrono::steady_clock::now();
    const auto hist = run_once();
    const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - t0);
    sweep.push_back({threads, wall.count()});
    if (reference_counts.empty()) {
      reference_counts = hist.counts();
    } else if (hist.counts() != reference_counts) {
      identical = false;
    }
    std::printf("exec scaling: %zu thread(s) -> %lld us%s\n", threads,
                static_cast<long long>(wall.count()),
                threads == 1 ? " (baseline)" : "");
  }
  exec::ThreadPool::set_global_threads(exec::ThreadPool::default_thread_count());

  obs::JsonWriter json;
  json.begin_object();
  json.key("kernel").value("exact_pair_histogram");
  json.key("points").value(static_cast<std::uint64_t>(points));
  json.key("hardware_threads")
      .value(static_cast<std::uint64_t>(exec::ThreadPool::default_thread_count()));
  json.key("counts_identical_across_threads").value(identical);
  json.key("sweep").begin_array();
  const double base = static_cast<double>(sweep.front().wall_us);
  for (const Point& p : sweep) {
    json.begin_object();
    json.key("threads").value(static_cast<std::uint64_t>(p.threads));
    json.key("wall_us").value(static_cast<std::uint64_t>(p.wall_us));
    json.key("speedup_vs_1")
        .value(p.wall_us > 0 ? base / static_cast<double>(p.wall_us) : 0.0);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  obs::RunReport report("bench");
  report.set_info("experiment", "exec");
  report.set_info("paper_artifact", "infrastructure: exec thread scaling");
  report.set_info("scale", "1");
  const auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  report.set_info("wall_us", std::to_string(wall_us.count()));
  bench::stamp_bench_report(report);
  report.add_section("thread_scaling", json.str());

  const char* dir = std::getenv("GEONET_BENCH_REPORT_DIR");
  const std::string path =
      (dir != nullptr ? std::string(dir) : report::results_dir()) +
      "/BENCH_exec.json";
  if (store::atomic_write_text(path, report.to_json() + "\n")) {
    std::printf("bench record written: %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_exec_scaling_record();
  return 0;
}
