// Figure 6 (and appendix Figure 14): the cumulated distance preference
// function F(d) over the large-d regime is nearly linear, i.e. f(d) is
// roughly constant — connectivity is distance-independent at long range.

#include <cstdio>

#include "bench_common.h"
#include "core/waxman_fit.h"

int main() {
  using namespace geonet;
  bench::print_banner("fig06_cumulated", "Figure 6 (+ Figure 14)");
  const auto& s = bench::scenario();

  report::Table table({"Dataset", "Region", "F(d) slope", "r^2",
                       "flat level f"});
  for (const auto& ref : bench::all_datasets()) {
    const auto& graph = s.graph(ref.dataset, ref.mapper);
    for (const auto& region : geo::regions::paper_study_regions()) {
      const auto pref = core::distance_preference(graph, region);
      core::WaxmanFitOptions options;
      options.small_d_cut_miles = core::paper_small_d_cut(region);
      const auto w = core::characterize_waxman(pref, options);

      table.add_row({ref.label, region.name,
                     report::fmt(w.cumulative_fit.slope, 8),
                     report::fmt(w.cumulative_fit.r_squared, 3),
                     report::fmt(w.flat_level, 8)});

      report::Series series;
      series.name = "d(miles) vs F(d), large d";
      const auto cumulative = pref.cumulated();
      for (std::size_t b = 0; b < pref.f.size(); ++b) {
        const double d = pref.bin_center(b);
        if (d <= options.small_d_cut_miles) continue;
        if (pref.pair_hist.count(b) > 0.0) {
          series.points.push_back({d, cumulative[b]});
        }
      }
      const std::string file = bench::dat_name(std::string("fig06_") +
                                               ref.label + "_" + region.name);
      bench::save_series(file, series, "Figure 6 cumulated F(d) large-d");
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("check: r^2 near 1 — F(d) is linear over large d, so f(d) is\n"
              "constant there (the paper finds good agreement in 5 of 6\n"
              "panels, with Mercator/Europe the noisy exception).\n");
  return 0;
}
