// Figure 4 (and appendix Figure 12): the empirical distance preference
// function f(d) for the three study regions and both datasets, computed
// with the paper's 100-bin histograms (bin sizes 35/15/11 miles).

#include <cstdio>

#include "bench_common.h"
#include "core/distance_pref.h"
#include "report/gnuplot.h"

int main() {
  using namespace geonet;
  bench::print_banner("fig04_distance_pref", "Figure 4 (+ Figure 12)");
  const auto& s = bench::scenario();

  report::Table table({"Dataset", "Region", "bin (mi)", "nodes", "links",
                       "f(first bin)", "f(mid)", "decline"});
  for (const auto& ref : bench::all_datasets()) {
    const auto& graph = s.graph(ref.dataset, ref.mapper);
    for (const auto& region : geo::regions::paper_study_regions()) {
      const auto pref = core::distance_preference(graph, region);

      // Summaries: f at the first populated bin and mid-range average.
      double first = 0.0;
      for (const double v : pref.f) {
        if (v > 0.0) {
          first = v;
          break;
        }
      }
      double mid = 0.0;
      std::size_t count = 0;
      for (std::size_t b = pref.f.size() / 3; b < 2 * pref.f.size() / 3; ++b) {
        mid += pref.f[b];
        ++count;
      }
      mid /= static_cast<double>(count);

      table.add_row({ref.label, region.name, report::fmt(pref.bin_miles, 0),
                     report::fmt_count(pref.nodes),
                     report::fmt_count(pref.links),
                     report::fmt(first, 7), report::fmt(mid, 7),
                     report::fmt(mid > 0 ? first / mid : 0.0, 1)});

      report::Series series;
      series.name = "d(miles) vs f(d)";
      for (std::size_t b = 0; b < pref.f.size(); ++b) {
        if (pref.pair_hist.count(b) > 0.0) {
          series.points.push_back({pref.bin_center(b), pref.f[b]});
        }
      }
      const std::string file = bench::dat_name(std::string("fig04_") +
                                               ref.label + "_" + region.name);
      bench::save_series(file, series, "Figure 4 empirical f(d)");
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // A ready-to-run gnuplot script over the emitted series.
  std::vector<report::GnuplotPanel> panels;
  for (const auto& region : geo::regions::paper_study_regions()) {
    report::GnuplotPanel panel;
    panel.title = "Figure 4: empirical f(d), " + region.name;
    panel.xlabel = "d (miles)";
    panel.ylabel = "f(d)";
    panel.logy = true;
    // Reference the files by the same label the save loop used (the
    // all_datasets labels), restricted to the main-body IxMapper panels.
    for (const auto& ref : bench::all_datasets()) {
      if (ref.mapper != synth::MapperKind::kIxMapper) continue;
      panel.dat_files.push_back(bench::dat_name(std::string("fig04_") +
                                                ref.label + "_" + region.name));
    }
    panels.push_back(std::move(panel));
  }
  const std::string script = report::results_dir() + "/fig04_plots.gp";
  if (report::write_gnuplot_script(script, panels)) {
    std::printf("  [gnuplot script written: %s]\n", script.c_str());
  }
  std::printf("check: f declines steeply over small d and flattens at large d\n"
              "(the paper's two regimes); 'decline' is f(first)/f(mid-range).\n");
  return 0;
}
