// Table I: sizes of the processed datasets — nodes, links, and distinct
// locations for each (mapper, dataset) combination — plus the Section
// III.B processing-loss percentages the paper quotes inline.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace geonet;
  bench::print_banner("table1_dataset_sizes", "Table I + Section III.B");
  const auto& s = bench::scenario();

  // Paper's Table I rows for reference.
  struct PaperRow {
    const char* label;
    unsigned long long nodes, links, locations;
  };
  const PaperRow paper_rows[] = {
      {"IxMapper, Mercator", 214498, 258999, 7696},
      {"IxMapper, Skitter", 563521, 862933, 12610},
      {"EdgeScape, Mercator", 216116, 269484, 7076},
      {"EdgeScape, Skitter", 570761, 881618, 13767},
  };

  report::Table table({"Dataset", "Nodes", "Links", "Locations",
                       "paper Nodes", "paper Links", "paper Locs"});
  for (std::size_t i = 0; i < bench::all_datasets().size(); ++i) {
    const auto& ref = bench::all_datasets()[i];
    const auto& graph = s.graph(ref.dataset, ref.mapper);
    const auto& stats = s.stats(ref.dataset, ref.mapper);
    table.add_row({ref.label, report::fmt_count(graph.node_count()),
                   report::fmt_count(graph.edge_count()),
                   report::fmt_count(stats.distinct_locations),
                   report::fmt_count(paper_rows[i].nodes),
                   report::fmt_count(paper_rows[i].links),
                   report::fmt_count(paper_rows[i].locations)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("(absolute sizes scale with GEONET_SCALE=%.3f; the shape to\n"
              " check is Skitter >> Mercator and EdgeScape >= IxMapper)\n\n",
              s.options().scale);

  report::Table loss({"Dataset", "geoloc fail", "AS unmapped", "router ties"});
  for (const auto& ref : bench::all_datasets()) {
    const auto& stats = s.stats(ref.dataset, ref.mapper);
    const double in = static_cast<double>(stats.input_nodes);
    loss.add_row(
        {ref.label,
         report::fmt_percent(static_cast<double>(stats.unmapped_nodes) / in),
         report::fmt_percent(static_cast<double>(stats.as_unmapped_nodes) /
                             static_cast<double>(stats.output_nodes)),
         report::fmt_percent(
             static_cast<double>(stats.tie_discarded_routers) / in)});
  }
  std::printf("%s", loss.to_string().c_str());
  std::printf("(paper: geolocation failures 0.3-1.5%%; AS-unmapped 1.5-2.8%%;\n"
              " Mercator location-vote ties 2.5-2.9%%)\n");
  return 0;
}
