// interdomain_routing: the paper's Section VII punchline, executed.
//
// "Routers need autonomous system labels in order to assign IP addresses
// to them in a realistic manner, e.g., to simulate interdomain routing."
// This example does exactly that: grow a geography-annotated topology,
// infer the AS business hierarchy, and run valley-free (Gao-Rexford) BGP
// path selection over it — then measure what geography says about the
// resulting routes: AS path lengths, policy-path reachability, and the
// geographic detour BGP policy imposes compared with unrestricted
// shortest paths.

#include <algorithm>
#include <cstdio>

#include "geo/distance.h"
#include "report/table.h"
#include "stats/rng.h"
#include "stats/summary.h"
#include "synth/bgp_propagation.h"
#include "synth/ground_truth.h"

int main() {
  using namespace geonet;

  std::printf("growing an AS-annotated topology and its BGP hierarchy...\n");
  const auto world = population::WorldPopulation::build(2002);
  synth::GroundTruthOptions growth;
  growth.interface_scale = 0.06;
  growth.seed = 99;
  const auto truth = synth::GroundTruth::build(world, growth);
  const auto relationships = synth::infer_as_relationships(truth);
  std::printf("  %zu routers, %zu ASes, %zu AS relationships\n",
              truth.topology().router_count(), truth.ases().size(),
              relationships.size());

  // Sample AS pairs; compute valley-free AS paths and their geographic
  // footprint (home-to-home distances along the AS hops).
  stats::Rng rng(5);
  std::vector<double> hop_counts;
  std::vector<double> policy_miles;
  std::vector<double> direct_miles;
  std::size_t unreachable = 0;
  constexpr int kPairs = 400;
  for (int i = 0; i < kPairs; ++i) {
    const auto& src = truth.ases()[rng.uniform_index(truth.ases().size())];
    const auto& dst = truth.ases()[rng.uniform_index(truth.ases().size())];
    if (src.asn == dst.asn) continue;
    const auto path = synth::as_path(relationships, src.asn, dst.asn);
    if (path.empty()) {
      ++unreachable;
      continue;
    }
    hop_counts.push_back(static_cast<double>(path.size() - 1));

    double along = 0.0;
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      const auto* a = truth.as_info(path[h]);
      const auto* b = truth.as_info(path[h + 1]);
      if (a != nullptr && b != nullptr) {
        along += geo::great_circle_miles(a->home, b->home);
      }
    }
    policy_miles.push_back(along);
    direct_miles.push_back(geo::great_circle_miles(src.home, dst.home));
  }

  const auto hops = stats::summarize(hop_counts);
  std::printf("\nvalley-free AS paths over %zu sampled pairs "
              "(%zu policy-unreachable):\n",
              hop_counts.size() + unreachable, unreachable);
  std::printf("  AS hops: median %.0f, mean %.2f, max %.0f "
              "(2002-era BGP averaged ~4)\n",
              hops.median, hops.mean, hops.max);

  // Geographic stretch of policy routing at the AS level.
  std::vector<double> stretch;
  for (std::size_t i = 0; i < policy_miles.size(); ++i) {
    if (direct_miles[i] > 100.0) {
      stretch.push_back(policy_miles[i] / direct_miles[i]);
    }
  }
  const auto s = stats::summarize(stretch);
  std::printf("  geographic stretch of policy paths (AS-home polyline vs\n"
              "  direct): median %.2f, p95 %.2f over %zu long-haul pairs\n",
              stats::quantile(stretch, 0.5), stats::quantile(stretch, 0.95),
              s.n);

  // Where do routes climb? Tally the home region of the top (peak) AS.
  report::Table peaks({"peak AS home region", "share of paths"});
  std::vector<std::size_t> counts(world.profiles().size(), 0);
  std::size_t counted = 0;
  stats::Rng rng2(7);
  for (int i = 0; i < kPairs; ++i) {
    const auto& src = truth.ases()[rng2.uniform_index(truth.ases().size())];
    const auto& dst = truth.ases()[rng2.uniform_index(truth.ases().size())];
    if (src.asn == dst.asn) continue;
    const auto path = synth::as_path(relationships, src.asn, dst.asn);
    if (path.size() < 3) continue;
    const auto* peak = truth.as_info(path[path.size() / 2]);
    if (peak == nullptr) continue;
    for (std::size_t p = 0; p < world.profiles().size(); ++p) {
      if (world.profiles()[p].extent.contains(peak->home)) {
        ++counts[p];
        ++counted;
        break;
      }
    }
  }
  for (std::size_t p = 0; p < world.profiles().size(); ++p) {
    if (counts[p] == 0) continue;
    peaks.add_row({world.profiles()[p].name,
                   report::fmt_percent(static_cast<double>(counts[p]) /
                                       static_cast<double>(counted))});
  }
  std::printf("\n%s", peaks.to_string().c_str());
  std::printf("(transit concentrates where the infrastructure is: the same\n"
              " population-follows-infrastructure law the paper measures)\n");
  return 0;
}
