// topology_generator: the paper's Section VII vision as a tool.
//
// Generates a router-level topology annotated with geographic locations,
// AS identifiers, and link latencies — the three labels the paper argues
// become straightforward once topology generation is geography-driven —
// and writes it in a simple text format. Also prints the validation
// signatures (density slope, distance decay, AS structure) so a user can
// check the generated graph behaves like the measured Internet.
//
// Usage: topology_generator [router_count] [output.graph]

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/log.h"

#include "core/density.h"
#include "net/graph_io.h"
#include "core/link_domains.h"
#include "core/waxman_fit.h"
#include "generators/geo_gen.h"
#include "geo/distance.h"
#include "net/graph_algos.h"
#include "population/synth_population.h"

int main(int argc, char** argv) {
  using namespace geonet;

  std::size_t router_count = 10000;
  const char* output_path = "generated_topology.graph";
  if (argc > 1) {
    const long parsed = std::atol(argv[1]);
    if (parsed > 10) router_count = static_cast<std::size_t>(parsed);
  }
  if (argc > 2) output_path = argv[2];

  std::printf("synthesizing population and growing a %zu-router topology...\n",
              router_count);
  const auto world = population::WorldPopulation::build(2002);
  generators::GeoGeneratorOptions options;
  options.router_count = router_count;
  const auto result = generators::generate_geo_topology(world, options);
  const auto& graph = result.graph;

  std::printf("generated: %zu routers, %zu links, giant component %zu\n",
              graph.node_count(), graph.edge_count(),
              net::giant_component_size(graph));

  // --- validation signatures against the paper's findings ---
  const auto density =
      core::analyze_density(graph, world, geo::regions::us());
  const auto waxman = core::characterize_region(graph, geo::regions::us());
  const auto domains = core::analyze_link_domains(graph);
  std::printf("validation (US): density slope %.2f (superlinear: %s), "
              "lambda %.0f mi,\n  distance-sensitive links %.0f%%, "
              "intradomain share %.0f%%\n",
              density.loglog_fit.slope, density.superlinear() ? "yes" : "NO",
              waxman.lambda_miles,
              100.0 * waxman.fraction_links_below_limit,
              100.0 * domains.intradomain_fraction());

  // --- emit the annotated topology in the library interchange format,
  // readable back via net::read_graph_file (see examples/analyze_topology)
  if (!net::write_graph_file(output_path, graph, result.link_latency_ms)) {
    obs::log(obs::LogLevel::kError, "cannot write %s", output_path);
    return 1;
  }
  std::printf("wrote %s (%zu nodes + %zu links)\n", output_path,
              graph.node_count(), graph.edge_count());
  return 0;
}
