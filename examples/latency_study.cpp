// latency_study: what latency annotations buy you (Section VII).
//
// The paper argues geography-annotated topologies make latency labelling
// "a straightforward matter". This example generates topologies with
// several generators, labels every link with its propagation latency, and
// measures the *latency stretch* — how much longer shortest paths are
// than straight-line propagation. Geography-blind generators produce
// absurd stretch because their links ignore distance.

#include <algorithm>
#include <cstdio>

#include "generators/ba_gen.h"
#include "generators/common.h"
#include "generators/geo_gen.h"
#include "generators/hierarchical_gen.h"
#include "generators/waxman_gen.h"
#include "net/weighted_paths.h"
#include "population/synth_population.h"
#include "report/table.h"

int main() {
  using namespace geonet;

  std::printf("generating topologies and measuring latency stretch...\n\n");
  const auto world = population::WorldPopulation::build(2002);

  report::Table table({"Generator", "nodes", "links", "median stretch",
                       "p95 stretch", "median link ms"});
  const auto add = [&](const char* name, const net::AnnotatedGraph& graph) {
    const auto latencies = generators::link_latencies_ms(graph);
    const auto stretch = net::latency_stretch(graph, latencies, 48, 17);
    std::vector<double> sorted = latencies;
    const auto mid = sorted.begin() + static_cast<std::ptrdiff_t>(sorted.size() / 2);
    std::nth_element(sorted.begin(), mid, sorted.end());
    table.add_row({name, report::fmt_count(graph.node_count()),
                   report::fmt_count(graph.edge_count()),
                   report::fmt(stretch.median, 2),
                   report::fmt(stretch.p95, 2),
                   report::fmt(sorted.empty() ? 0.0 : *mid, 2)});
  };

  {
    generators::GeoGeneratorOptions options;
    options.router_count = 6000;
    add("GeoGenerator",
        generators::generate_geo_topology(world, options).graph);
  }
  {
    generators::TransitStubOptions options;
    options.transit_domains = 6;
    options.stubs_per_transit = 10;
    add("TransitStub",
        generators::generate_transit_stub(geo::regions::us(), options));
  }
  {
    generators::WaxmanOptions options;
    options.node_count = 3000;
    options.alpha = 0.08;
    options.beta = 0.05;
    add("Waxman", generators::generate_waxman(geo::regions::us(), options));
  }
  {
    generators::BarabasiAlbertOptions options;
    options.node_count = 6000;
    add("BarabasiAlbert",
        generators::generate_barabasi_albert(geo::regions::us(), options));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("stretch = shortest-path latency / straight-line latency over\n"
              "sampled pairs. Distance-aware generators route within a small\n"
              "factor of geodesic; BA's random geometry forces paths through\n"
              "arbitrary corners of the map (its 'median link ms' alone is\n"
              "already continental).\n");
  return 0;
}
