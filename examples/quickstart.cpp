// Quickstart: build a synthetic world, measure it the way the paper did,
// and run the complete analysis pipeline.
//
// This is the smallest end-to-end tour of the library:
//   1. synthesize population + ground-truth Internet   (synth::Scenario)
//   2. pick a processed dataset                        (Skitter + IxMapper)
//   3. run every analysis of the paper                 (core::run_study)

#include <cstdio>

#include "core/study.h"
#include "synth/scenario.h"

int main() {
  using namespace geonet;

  // A small world (5% of the paper's scale) keeps this example fast.
  synth::ScenarioOptions options = synth::ScenarioOptions::defaults();
  options.scale = std::min(options.scale, 0.05);

  std::printf("building scenario (scale %.2f)...\n", options.scale);
  const synth::Scenario scenario = synth::Scenario::build(options);

  const auto& graph = scenario.graph(synth::DatasetKind::kSkitter,
                                     synth::MapperKind::kIxMapper);
  std::printf("dataset %s: %zu nodes, %zu links\n", graph.name().c_str(),
              graph.node_count(), graph.edge_count());

  const core::StudyReport report = core::run_study(graph, scenario.world());
  std::printf("%s", core::summarize(report).c_str());

  // Headline findings, as the paper states them:
  for (const auto& region : report.regions) {
    std::printf("%-7s: router density is %s in population (slope %.2f); "
                "%2.0f%% of links lie in the distance-sensitive regime\n",
                region.region.name.c_str(),
                region.density.superlinear() ? "superlinear" : "sublinear",
                region.density.loglog_fit.slope,
                100.0 * region.waxman.fraction_links_below_limit);
  }
  return 0;
}
