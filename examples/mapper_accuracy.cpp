// mapper_accuracy: how much does the geolocation service matter?
//
// The paper runs every analysis twice (IxMapper and EdgeScape) and shows
// the conclusions agree. This example quantifies the disagreement at the
// node level: for a sample of observed interfaces, it maps each address
// with both services and measures the distance between the two answers
// and between each answer and the ground truth — something the paper's
// authors could not do, because nobody knows the true location of a real
// router. A synthetic substrate does.

#include <algorithm>
#include <cstdio>

#include "geo/distance.h"
#include "report/table.h"
#include "stats/summary.h"
#include "synth/scenario.h"

int main() {
  using namespace geonet;

  synth::ScenarioOptions options = synth::ScenarioOptions::defaults();
  options.scale = std::min(options.scale, 0.08);
  std::printf("building scenario at scale %.3f...\n", options.scale);
  const synth::Scenario scenario = synth::Scenario::build(options);
  const auto& truth = scenario.truth();

  // Rebuild the two mappers exactly as the scenario pipeline does.
  std::vector<geo::GeoPoint> city_db;
  for (const auto& grid : scenario.world().grids()) {
    for (const auto& city : grid.cities()) city_db.push_back(city.center);
  }
  const synth::GeoMapper ixmapper(synth::GeoMapper::ixmapper_profile(),
                                  city_db, options.seed ^ 0x1a11ULL);
  const synth::GeoMapper edgescape(synth::GeoMapper::edgescape_profile(),
                                   city_db, options.seed ^ 0xed6eULL);

  std::vector<double> err_ix, err_es, disagree;
  std::size_t ix_fail = 0, es_fail = 0;
  for (const net::InterfaceId iface : scenario.skitter_raw().interfaces) {
    const auto addr = truth.topology().interface(iface).addr;
    const geo::GeoPoint real = truth.interface_location(iface);
    const geo::GeoPoint home = truth.interface_as_home(iface);
    const auto a = ixmapper.map(addr, real, home);
    const auto b = edgescape.map(addr, real, home);
    if (!a) ++ix_fail;
    if (!b) ++es_fail;
    if (a) err_ix.push_back(geo::great_circle_miles(*a, real));
    if (b) err_es.push_back(geo::great_circle_miles(*b, real));
    if (a && b) disagree.push_back(geo::great_circle_miles(*a, *b));
  }

  const auto row = [](const char* name, const std::vector<double>& xs) {
    const auto s = stats::summarize(xs);
    std::printf("%-22s n=%-7zu median=%6.1f mi  mean=%7.1f mi  p95=%7.1f mi\n",
                name, s.n, s.median, s.mean, stats::quantile(xs, 0.95));
  };
  std::printf("\nper-interface geolocation error vs ground truth:\n");
  row("IxMapper error", err_ix);
  row("EdgeScape error", err_es);
  row("IxMapper vs EdgeScape", disagree);
  std::printf("\nfailure rates: IxMapper %.2f%%, EdgeScape %.2f%% "
              "(paper: ~1.5%% / ~0.3%%)\n",
              100.0 * static_cast<double>(ix_fail) /
                  static_cast<double>(scenario.skitter_raw().interfaces.size()),
              100.0 * static_cast<double>(es_fail) /
                  static_cast<double>(scenario.skitter_raw().interfaces.size()));

  // Does the mapping choice change the headline analysis? Compare the
  // distance-sensitivity fraction computed from the two processed graphs.
  std::printf("\nagreement fraction within 25 miles: %.1f%%\n",
              100.0 *
                  static_cast<double>(std::count_if(
                      disagree.begin(), disagree.end(),
                      [](double d) { return d < 25.0; })) /
                  static_cast<double>(disagree.size()));
  std::printf("(city-granularity agreement is what Padmanabhan & Subramanian\n"
              " report for hostname-based techniques, and why the paper's\n"
              " results are stable across mappers)\n");
  return 0;
}
