// analyze_topology: run the paper's geographic analyses on *any* annotated
// topology file — the downstream-consumer path. Feed it a file written by
// topology_generator (or your own graph in the same format) and get the
// paper's signatures back: density-vs-population fit, distance preference
// characterisation, AS size measures, hulls, link domains.
//
// Usage: analyze_topology <topology.graph> [region]
//   region: US (default), Europe, Japan, World, ...

#include <cstdio>

#include "core/as_analysis.h"
#include "obs/log.h"
#include "core/density.h"
#include "core/hull_analysis.h"
#include "core/link_domains.h"
#include "core/link_lengths.h"
#include "core/validate.h"
#include "core/waxman_fit.h"
#include "net/graph_io.h"
#include "population/synth_population.h"

int main(int argc, char** argv) {
  using namespace geonet;

  if (argc < 2) {
    obs::log(obs::LogLevel::kError, "usage: %s <topology.graph> [region]", argv[0]);
    return 2;
  }
  std::string error;
  const auto graph = net::read_graph_file(argv[1], &error);
  if (!graph) {
    obs::log(obs::LogLevel::kError, "failed to read %s: %s", argv[1], error.c_str());
    return 1;
  }
  const geo::Region region =
      (argc > 2 ? geo::regions::by_name(argv[2]) : std::nullopt)
          .value_or(geo::regions::us());

  std::printf("%s: %zu %s nodes, %zu links; analysing region %s\n",
              argv[1], graph->node_count(), to_string(graph->kind()),
              graph->edge_count(), region.name.c_str());

  // Population reference: the library's synthetic world. For topologies
  // generated elsewhere, substitute your own raster here.
  const auto world = population::WorldPopulation::build(2002);

  const auto density = core::analyze_density(*graph, world, region);
  std::printf("\ndensity vs population (Fig 2): slope %.2f, r^2 %.2f over "
              "%zu patches -> %s\n",
              density.loglog_fit.slope, density.loglog_fit.r_squared,
              density.patches.size(),
              density.superlinear() ? "superlinear" : "NOT superlinear");

  const auto waxman = core::characterize_region(*graph, region);
  std::printf("distance preference (Figs 4-6, Table V): lambda %.0f mi, "
              "limit %.0f mi, %.0f%% of links distance-sensitive\n",
              waxman.lambda_miles, waxman.sensitivity_limit_miles,
              100.0 * waxman.fraction_links_below_limit);

  const auto as_sizes = core::analyze_as_sizes(*graph);
  std::printf("AS structure (Figs 7-8): %zu ASes, corr(interfaces,locations) "
              "%.2f, corr(interfaces,degree) %.2f\n",
              as_sizes.records.size(), as_sizes.corr_nodes_locations,
              as_sizes.corr_nodes_degree);

  const auto hulls = core::analyze_hulls(*graph);
  std::printf("geographic extent (Figs 9-10): %.0f%% of ASes with zero hull "
              "area; dispersal threshold at ~%.0f locations\n",
              100.0 * hulls.zero_area_fraction,
              hulls.thresholds.by_locations);

  const auto domains = core::analyze_link_domains(*graph);
  std::printf("link domains (Table VI): %.0f%% intradomain; mean lengths "
              "intra %.0f mi / inter %.0f mi\n",
              100.0 * domains.intradomain_fraction(),
              domains.intradomain_mean_miles, domains.interdomain_mean_miles);

  const auto lengths = core::analyze_link_lengths(*graph);
  std::printf("link lengths: median %.0f mi, mean %.0f mi, max %.0f mi\n",
              lengths.summary.median, lengths.summary.mean,
              lengths.summary.max);

  std::printf("\nrealism verdict against the paper's findings:\n%s",
              to_string(core::check_realism(*graph, world, region)).c_str());
  return 0;
}
