// measurement_study: the full reproduction in one program.
//
// Builds the synthetic planet, runs both measurement campaigns (Skitter-
// and Mercator-style), maps them with both geolocation services, runs the
// complete analysis pipeline on each of the four processed datasets, and
// prints a compact cross-dataset consistency report — the paper's core
// robustness claim ("consistent across two datasets and two mapping
// methods").
//
// Usage: measurement_study [scale]
//   scale: fraction of the paper's dataset sizes (default 0.08).

#include <cstdio>
#include <cstdlib>

#include "core/study.h"
#include "report/series.h"
#include "report/table.h"
#include "synth/scenario.h"

int main(int argc, char** argv) {
  using namespace geonet;

  synth::ScenarioOptions options = synth::ScenarioOptions::defaults();
  options.scale = 0.08;
  if (argc > 1) {
    const double parsed = std::atof(argv[1]);
    if (parsed > 0.0) options.scale = parsed;
  }

  std::printf("building the synthetic planet and both measurement\n"
              "campaigns at scale %.3f...\n\n", options.scale);
  const synth::Scenario scenario = synth::Scenario::build(options);

  core::StudyOptions study_options;
  study_options.compute_fractal_dimension = false;

  report::Table consistency({"Dataset", "US slope", "EU slope", "JP slope",
                             "US lambda", "% sensitive (US)", "intra %",
                             "corr(n,loc)"});
  for (const auto dataset :
       {synth::DatasetKind::kMercator, synth::DatasetKind::kSkitter}) {
    for (const auto mapper :
         {synth::MapperKind::kIxMapper, synth::MapperKind::kEdgeScape}) {
      const auto& graph = scenario.graph(dataset, mapper);
      const core::StudyReport r =
          core::run_study(graph, scenario.world(), study_options);
      std::printf("%s", core::summarize(r).c_str());
      std::string md = report::results_dir() + "/study_" + r.dataset_name + ".md";
      for (auto& c : md) {
        if (c == '+') c = '_';
      }
      core::write_study_markdown(r, md);
      consistency.add_row(
          {r.dataset_name,
           report::fmt(r.regions[0].density.loglog_fit.slope, 2),
           report::fmt(r.regions[1].density.loglog_fit.slope, 2),
           report::fmt(r.regions[2].density.loglog_fit.slope, 2),
           report::fmt(r.regions[0].waxman.lambda_miles, 0),
           report::fmt_percent(
               r.regions[0].waxman.fraction_links_below_limit),
           report::fmt_percent(r.world_links.intradomain_fraction()),
           report::fmt(r.as_sizes.corr_nodes_locations, 2)});
    }
  }

  std::printf("\n==== cross-dataset consistency (the paper's robustness "
              "claim) ====\n%s",
              consistency.to_string().c_str());
  std::printf("\nall four rows should agree qualitatively: superlinear\n"
              "density slopes, lambda of order 100 miles, a dominant\n"
              "distance-sensitive link share, an intradomain majority, and\n"
              "strongly correlated AS size measures.\n");
  return 0;
}
