#!/usr/bin/env python3
"""End-to-end check of the geonet observability artifacts.

Runs `geonet scenario --trace --metrics --quiet` at a small scale and
asserts that:
  * the trace file is valid JSON in Chrome trace_event format and holds
    at least 12 distinct span names,
  * the metrics file is a valid geonet.run_report.v1 document carrying
    the pipeline counters and per-stage wall-time histograms.

Usage: check_trace.py <path-to-geonet_cli> [scale]
Registered as the `check_trace` ctest in tests/CMakeLists.txt.
"""

import json
import os
import subprocess
import sys
import tempfile

MIN_DISTINCT_SPANS = 12

REQUIRED_COUNTERS = [
    "pipeline.nodes_processed",
    "pipeline.nodes_unmapped",
    "pipeline.routers_tie_discarded",
    "pipeline.links_emitted",
]

REQUIRED_SPANS = [
    "synth/skitter",
    "synth/mercator",
    "pipeline/process_interfaces",
    "study/run",
]


def fail(message):
    print("check_trace: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail("usage: check_trace.py <geonet_cli> [scale]")
    cli = sys.argv[1]
    scale = sys.argv[2] if len(sys.argv) > 2 else "0.02"

    with tempfile.TemporaryDirectory(prefix="geonet_check_trace_") as tmp:
        trace_path = os.path.join(tmp, "trace.json")
        metrics_path = os.path.join(tmp, "metrics.json")
        cmd = [cli, "scenario", scale,
               "--trace", trace_path, "--metrics", metrics_path, "--quiet"]
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 0:
            fail("CLI exited %d\nstderr:\n%s"
                 % (result.returncode, result.stderr))

        # --- trace file: Chrome trace_event format ---
        try:
            with open(trace_path) as handle:
                trace = json.load(handle)
        except (OSError, ValueError) as err:
            fail("trace file unreadable or invalid JSON: %s" % err)
        events = trace.get("traceEvents")
        if not isinstance(events, list) or not events:
            fail("trace has no traceEvents array")
        for event in events:
            for field in ("name", "cat", "ph", "ts", "dur", "pid", "tid"):
                if field not in event:
                    fail("trace event missing %r: %r" % (field, event))
            if event["ph"] != "X":
                fail("unexpected event phase %r" % event["ph"])
            if event["dur"] < 0 or event["ts"] < 0:
                fail("negative timestamp in %r" % event)
        names = {event["name"] for event in events}
        if len(names) < MIN_DISTINCT_SPANS:
            fail("only %d distinct spans (need >= %d): %s"
                 % (len(names), MIN_DISTINCT_SPANS, sorted(names)))
        for span in REQUIRED_SPANS:
            if span not in names:
                fail("expected span %r missing; have %s" % (span, sorted(names)))

        # --- metrics file: geonet.run_report.v1 ---
        try:
            with open(metrics_path) as handle:
                report = json.load(handle)
        except (OSError, ValueError) as err:
            fail("metrics file unreadable or invalid JSON: %s" % err)
        if report.get("schema") != "geonet.run_report.v1":
            fail("unexpected schema %r" % report.get("schema"))
        if report.get("command") != "scenario":
            fail("unexpected command %r" % report.get("command"))
        counters = report.get("metrics", {}).get("counters", {})
        for name in REQUIRED_COUNTERS:
            if name not in counters:
                fail("counter %r missing; have %s"
                     % (name, sorted(counters)))
            if not isinstance(counters[name], int):
                fail("counter %r is not an integer" % name)
        if counters["pipeline.nodes_processed"] <= 0:
            fail("pipeline.nodes_processed is zero — instrumentation dead?")
        histograms = report.get("metrics", {}).get("histograms", {})
        stages = [h for h in histograms if h.startswith("stage_us.")]
        if len(stages) < MIN_DISTINCT_SPANS:
            fail("only %d stage_us.* histograms (need >= %d)"
                 % (len(stages), MIN_DISTINCT_SPANS))
        for name in stages:
            hist = histograms[name]
            if hist.get("count", 0) <= 0:
                fail("histogram %r has zero count" % name)

    print("check_trace: OK (%d spans, %d events, %d counters)"
          % (len(names), len(events), len(counters)))


if __name__ == "__main__":
    main()
