#!/usr/bin/env python3
"""End-to-end check of the geonet observability artifacts.

Runs `geonet scenario --threads 4 --trace --metrics --quiet` at a small
scale and asserts that:
  * the trace file is valid JSON in Chrome trace_event format holding at
    least 12 distinct span names,
  * every "X" span carries args.span_id (unique, nonzero) and every
    non-root span's args.parent_id resolves to another recorded span,
  * every exec/chunk[*] span links to a parent span and carries
    chunk/begin/end args describing its item range,
  * flow arrows ("s"/"f") come in id-matched pairs,
  * counter tracks ("C") sample exec.queue_depth and exec.active_workers,
  * the metrics file is a valid geonet.run_report.v1 document carrying
    the pipeline counters and per-stage wall-time histograms.

Usage: check_trace.py <path-to-geonet_cli> [scale]
Registered as the `check_trace` ctest in tests/CMakeLists.txt.
"""

import json
import os
import subprocess
import sys
import tempfile

MIN_DISTINCT_SPANS = 12

REQUIRED_COUNTERS = [
    "pipeline.nodes_processed",
    "pipeline.nodes_unmapped",
    "pipeline.routers_tie_discarded",
    "pipeline.links_emitted",
]

REQUIRED_SPANS = [
    "synth/skitter",
    "synth/mercator",
    "pipeline/process_interfaces",
    "study/run",
]

REQUIRED_COUNTER_TRACKS = [
    "exec.queue_depth",
    "exec.active_workers",
]


def fail(message):
    print("check_trace: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def check_complete_events(spans):
    """Validates "X" events: ids, parent linkage, and chunk args."""
    ids = {}
    for event in spans:
        for field in ("name", "cat", "ph", "ts", "dur", "pid", "tid"):
            if field not in event:
                fail("trace event missing %r: %r" % (field, event))
        if event["dur"] < 0 or event["ts"] < 0:
            fail("negative timestamp in %r" % event)
        args = event.get("args")
        if not isinstance(args, dict):
            fail("span %r has no args object" % event["name"])
        span_id = args.get("span_id")
        if not isinstance(span_id, int) or span_id <= 0:
            fail("span %r has bad span_id %r" % (event["name"], span_id))
        if span_id in ids:
            fail("duplicate span_id %d (%r and %r)"
                 % (span_id, ids[span_id]["name"], event["name"]))
        ids[span_id] = event

    chunk_spans = 0
    for event in spans:
        args = event["args"]
        parent = args.get("parent_id", 0)
        if parent != 0 and parent not in ids:
            fail("span %r parent_id %d does not resolve to a recorded span"
                 % (event["name"], parent))
        if event["name"].startswith("exec/chunk["):
            chunk_spans += 1
            if parent == 0:
                fail("chunk span %r has no parent" % event["name"])
            for field in ("chunk", "begin", "end"):
                if not isinstance(args.get(field), int):
                    fail("chunk span %r missing args.%s"
                         % (event["name"], field))
            if args["begin"] >= args["end"]:
                fail("chunk span %r has empty range [%d, %d)"
                     % (event["name"], args["begin"], args["end"]))
    if chunk_spans == 0:
        fail("no exec/chunk[*] spans — pool chunk tracing dead?")
    return chunk_spans


def check_flow_events(flows):
    """Flow arrows must come in id-matched s/f pairs."""
    starts = {}
    finishes = {}
    for event in flows:
        if "id" not in event:
            fail("flow event missing id: %r" % event)
        bucket = starts if event["ph"] == "s" else finishes
        bucket.setdefault(event["id"], []).append(event)
    if set(starts) != set(finishes):
        fail("unmatched flow ids: starts %s vs finishes %s"
             % (sorted(set(starts) - set(finishes)),
                sorted(set(finishes) - set(starts))))
    return len(starts)


def check_counter_events(counters):
    names = set()
    for event in counters:
        args = event.get("args")
        if not isinstance(args, dict) or "value" not in args:
            fail("counter event without args.value: %r" % event)
        names.add(event["name"])
    for name in REQUIRED_COUNTER_TRACKS:
        if name not in names:
            fail("counter track %r missing; have %s" % (name, sorted(names)))


def main():
    if len(sys.argv) < 2:
        fail("usage: check_trace.py <geonet_cli> [scale]")
    cli = sys.argv[1]
    scale = sys.argv[2] if len(sys.argv) > 2 else "0.02"

    with tempfile.TemporaryDirectory(prefix="geonet_check_trace_") as tmp:
        trace_path = os.path.join(tmp, "trace.json")
        metrics_path = os.path.join(tmp, "metrics.json")
        cmd = [cli, "scenario", scale, "--threads", "4",
               "--trace", trace_path, "--metrics", metrics_path, "--quiet"]
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 0:
            fail("CLI exited %d\nstderr:\n%s"
                 % (result.returncode, result.stderr))

        # --- trace file: Chrome trace_event format ---
        try:
            with open(trace_path) as handle:
                trace = json.load(handle)
        except (OSError, ValueError) as err:
            fail("trace file unreadable or invalid JSON: %s" % err)
        events = trace.get("traceEvents")
        if not isinstance(events, list) or not events:
            fail("trace has no traceEvents array")
        if "geonet" not in trace:
            fail("trace missing top-level geonet provenance")

        by_phase = {}
        for event in events:
            by_phase.setdefault(event.get("ph"), []).append(event)
        unknown = set(by_phase) - {"X", "s", "f", "C"}
        if unknown:
            fail("unexpected event phases %s" % sorted(unknown))

        spans = by_phase.get("X", [])
        chunk_spans = check_complete_events(spans)
        flow_pairs = check_flow_events(
            by_phase.get("s", []) + by_phase.get("f", []))
        check_counter_events(by_phase.get("C", []))

        names = {event["name"] for event in spans}
        if len(names) < MIN_DISTINCT_SPANS:
            fail("only %d distinct spans (need >= %d): %s"
                 % (len(names), MIN_DISTINCT_SPANS, sorted(names)))
        for span in REQUIRED_SPANS:
            if span not in names:
                fail("expected span %r missing; have %s" % (span, sorted(names)))

        # --- metrics file: geonet.run_report.v1 ---
        try:
            with open(metrics_path) as handle:
                report = json.load(handle)
        except (OSError, ValueError) as err:
            fail("metrics file unreadable or invalid JSON: %s" % err)
        if report.get("schema") != "geonet.run_report.v1":
            fail("unexpected schema %r" % report.get("schema"))
        if report.get("command") != "scenario":
            fail("unexpected command %r" % report.get("command"))
        counters = report.get("metrics", {}).get("counters", {})
        for name in REQUIRED_COUNTERS:
            if name not in counters:
                fail("counter %r missing; have %s"
                     % (name, sorted(counters)))
            if not isinstance(counters[name], int):
                fail("counter %r is not an integer" % name)
        if counters["pipeline.nodes_processed"] <= 0:
            fail("pipeline.nodes_processed is zero — instrumentation dead?")
        histograms = report.get("metrics", {}).get("histograms", {})
        stages = [h for h in histograms if h.startswith("stage_us.")]
        if len(stages) < MIN_DISTINCT_SPANS:
            fail("only %d stage_us.* histograms (need >= %d)"
                 % (len(stages), MIN_DISTINCT_SPANS))
        for name in stages:
            hist = histograms[name]
            if hist.get("count", 0) <= 0:
                fail("histogram %r has zero count" % name)

    print("check_trace: OK (%d spans, %d chunk spans, %d flow pairs, "
          "%d events, %d counters)"
          % (len(names), chunk_spans, flow_pairs, len(events), len(counters)))


if __name__ == "__main__":
    main()
