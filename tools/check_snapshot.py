#!/usr/bin/env python3
"""Out-of-process format guard for GEOS binary snapshots.

An independent re-implementation of the snapshot parser (see
src/store/snapshot.h for the layout) validates a snapshot produced by the
CLI, then drills the robustness contract from the outside:

  * the file parses: magic, format version, header provenance, and every
    section checksum verify;
  * a graph snapshot carries a 'GRPH' section and an 'SIDX' spatial-index
    section whose envelope validates: version, leaf size, exact payload
    length, in-range coordinates, and the stored order being a
    permutation of the points (see src/geo/spatial_index_store.h);
  * every truncation of the file is rejected;
  * single-bit flips are rejected (sampled across the whole file);
  * appending an unknown section still parses and the known sections are
    unchanged (forward compatibility).

Usage:
  check_snapshot.py <path-to-geonet_cli>     # self-driving format check
  check_snapshot.py --parse <file.geos>      # parse + validate one file
  check_snapshot.py --flip <file.geos> <n>   # flip bit n in place (for
                                             # corruption drills)

Registered as the `check_snapshot` ctest in tests/CMakeLists.txt.
"""

import os
import struct
import subprocess
import sys
import tempfile

MAGIC = b"GEOS"
FORMAT_VERSION = 1
FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
MASK64 = (1 << 64) - 1


def fnv1a64(data, seed=FNV_OFFSET):
    h = seed
    for byte in data:
        h ^= byte
        h = (h * FNV_PRIME) & MASK64
    return h


class SnapshotError(Exception):
    pass


class Reader:
    def __init__(self, data):
        self.data = data
        self.pos = 0

    def remaining(self):
        return len(self.data) - self.pos

    def take(self, n):
        if n > self.remaining():
            raise SnapshotError(
                "truncated: need %d bytes, have %d" % (n, self.remaining()))
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u32(self):
        return struct.unpack("<I", self.take(4))[0]

    def u64(self):
        return struct.unpack("<Q", self.take(8))[0]

    def string(self):
        n = self.u64()
        if n > self.remaining():
            raise SnapshotError("string length %d exceeds remaining" % n)
        return self.take(n).decode("utf-8", errors="replace")


def parse_snapshot(data):
    """Full validation; returns (provenance dict, [(fourcc, payload)])."""
    reader = Reader(data)
    if reader.take(4) != MAGIC:
        raise SnapshotError("bad magic")
    version = reader.u32()
    if version != FORMAT_VERSION:
        raise SnapshotError("format version %d (expected %d)"
                            % (version, FORMAT_VERSION))
    header_len = reader.u64()
    if header_len > reader.remaining():
        raise SnapshotError("header length %d exceeds remaining" % header_len)
    header = reader.take(header_len)
    header_checksum = reader.u64()
    if fnv1a64(header) != header_checksum:
        raise SnapshotError("header checksum mismatch")

    hreader = Reader(header)
    provenance = {
        "tool_version": hreader.string(),
        "compiler": hreader.string(),
        "build_type": hreader.string(),
    }
    section_count = hreader.u32()
    if hreader.remaining() != 0:
        raise SnapshotError("trailing bytes in header")

    sections = []
    for _ in range(section_count):
        fourcc = reader.take(4).decode("ascii", errors="replace")
        payload_len = reader.u64()
        payload_checksum = reader.u64()
        if payload_len > reader.remaining():
            raise SnapshotError("section %r length %d exceeds remaining"
                                % (fourcc, payload_len))
        payload = reader.take(payload_len)
        if fnv1a64(payload) != payload_checksum:
            raise SnapshotError("section %r checksum mismatch" % fourcc)
        sections.append((fourcc, payload))
    if reader.remaining() != 0:
        raise SnapshotError("%d trailing bytes after last section"
                            % reader.remaining())
    return provenance, sections


SIDX_VERSION = 1


def validate_sidx(payload):
    """Envelope check of one SIDX payload (layout documented in
    src/geo/spatial_index_store.h). Raises SnapshotError on damage."""
    reader = Reader(payload)
    version = reader.u32()
    if version != SIDX_VERSION:
        raise SnapshotError("SIDX version %d (expected %d)"
                            % (version, SIDX_VERSION))
    leaf_size = reader.u32()
    if leaf_size == 0:
        raise SnapshotError("SIDX leaf size is zero")
    count = reader.u64()
    if count * 20 != reader.remaining():
        raise SnapshotError("SIDX payload length does not match %d points"
                            % count)
    for i in range(count):
        lat, lon = struct.unpack("<dd", reader.take(16))
        if not (-90.0 <= lat <= 90.0 and -180.0 <= lon <= 180.0):
            raise SnapshotError("SIDX point %d out of range: %r, %r"
                                % (i, lat, lon))
    order = struct.unpack("<%dI" % count, reader.take(4 * count))
    if sorted(order) != list(range(count)):
        raise SnapshotError("SIDX order is not a permutation of 0..%d"
                            % (count - 1))
    return count


def append_section(data, fourcc, payload):
    """Re-renders the snapshot with one extra (unknown) section."""
    provenance, sections = parse_snapshot(data)
    sections = sections + [(fourcc, payload)]

    header = b""
    for key in ("tool_version", "compiler", "build_type"):
        value = provenance[key].encode()
        header += struct.pack("<Q", len(value)) + value
    header += struct.pack("<I", len(sections))

    out = MAGIC + struct.pack("<I", FORMAT_VERSION)
    out += struct.pack("<Q", len(header)) + header
    out += struct.pack("<Q", fnv1a64(header))
    for name, payload in sections:
        out += name.encode("ascii")
        out += struct.pack("<QQ", len(payload), fnv1a64(payload))
        out += payload
    return out


def flip_bit(path, bit):
    with open(path, "r+b") as handle:
        data = bytearray(handle.read())
        if bit >= len(data) * 8:
            raise SnapshotError("bit %d out of range (%d bytes)"
                                % (bit, len(data)))
        data[bit // 8] ^= 1 << (bit % 8)
        handle.seek(0)
        handle.write(data)
        handle.truncate()


def fail(message):
    print("check_snapshot: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def check_file(path):
    with open(path, "rb") as handle:
        data = handle.read()
    provenance, sections = parse_snapshot(data)
    print("check_snapshot: %s parses: version %d, %d section(s) [%s], "
          "provenance %s" % (os.path.basename(path), FORMAT_VERSION,
                             len(sections),
                             ", ".join(name for name, _ in sections),
                             provenance))


def drill(cli):
    with tempfile.TemporaryDirectory(prefix="geonet_check_snapshot_") as tmp:
        snapshot_path = os.path.join(tmp, "topology.geos")
        cmd = [cli, "generate", "64", snapshot_path, "7", "--quiet"]
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 0:
            fail("CLI exited %d\nstderr:\n%s"
                 % (result.returncode, result.stderr))
        with open(snapshot_path, "rb") as handle:
            data = handle.read()

    # 1. The pristine snapshot parses and carries the graph section.
    try:
        provenance, sections = parse_snapshot(data)
    except SnapshotError as err:
        fail("pristine snapshot rejected: %s" % err)
    names = [name for name, _ in sections]
    if "GRPH" not in names:
        fail("no GRPH section; have %s" % names)
    if "SIDX" not in names:
        fail("no SIDX spatial-index section; have %s" % names)
    try:
        sidx_points = validate_sidx(dict(sections)["SIDX"])
    except SnapshotError as err:
        fail("SIDX envelope invalid: %s" % err)
    if sidx_points == 0:
        fail("SIDX indexes no points for a non-empty generated graph")
    for key in ("tool_version", "compiler", "build_type"):
        if not provenance[key]:
            fail("empty provenance field %r" % key)

    # 2. Every truncation is rejected.
    for length in range(len(data)):
        try:
            parse_snapshot(data[:length])
        except SnapshotError:
            continue
        fail("truncation to %d bytes (of %d) went undetected"
             % (length, len(data)))

    # 3. Single-bit flips are rejected. Sample every byte (one rotating
    #    bit each) to keep the drill fast on large snapshots.
    flips = 0
    for i in range(len(data)):
        damaged = bytearray(data)
        damaged[i] ^= 1 << (i % 8)
        try:
            _, flipped_sections = parse_snapshot(bytes(damaged))
        except SnapshotError:
            flips += 1
            continue
        # A flip inside a fourcc tag renames the section; the payload
        # bytes must still be intact and the original tag gone.
        flipped_names = [name for name, _ in flipped_sections]
        if flipped_names == names and [p for _, p in flipped_sections] == \
                [p for _, p in sections]:
            fail("bit flip at byte %d went completely undetected" % i)
        flips += 1
    if flips != len(data):
        fail("internal error: %d flips checked of %d" % (flips, len(data)))

    # 4. Forward compatibility: an unknown section appended by a "newer
    #    writer" parses, and the known sections are untouched.
    extended = append_section(data, "FUTR", b"\x01\x02\x03\x04\x05")
    try:
        _, new_sections = parse_snapshot(extended)
    except SnapshotError as err:
        fail("snapshot with unknown section rejected: %s" % err)
    if [s for s in new_sections if s[0] != "FUTR"] != sections:
        fail("known sections changed after appending an unknown one")

    print("check_snapshot: OK (%d bytes, sections %s, %d truncations, "
          "%d bit flips)" % (len(data), names, len(data), len(data)))


def main():
    if len(sys.argv) >= 3 and sys.argv[1] == "--parse":
        try:
            check_file(sys.argv[2])
        except (OSError, SnapshotError) as err:
            fail(str(err))
        return
    if len(sys.argv) >= 4 and sys.argv[1] == "--flip":
        try:
            flip_bit(sys.argv[2], int(sys.argv[3]))
        except (OSError, ValueError, SnapshotError) as err:
            fail(str(err))
        print("check_snapshot: flipped bit %s in %s"
              % (sys.argv[3], sys.argv[2]))
        return
    if len(sys.argv) < 2:
        fail("usage: check_snapshot.py <geonet_cli> | "
             "--parse <file.geos> | --flip <file.geos> <bit>")
    drill(sys.argv[1])


if __name__ == "__main__":
    main()
