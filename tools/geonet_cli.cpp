// geonet — command-line front end to the library.
//
//   geonet generate <routers> <out.graph> [seed]
//       Grow a geography/AS/latency-annotated topology and write it.
//   geonet analyze <in.graph> [region]
//       Run the paper's analyses over a topology file.
//   geonet validate <in.graph> [region]
//       Score a topology against the paper's findings; exit 0 iff all
//       criteria pass (CI-friendly).
//   geonet scenario [scale]
//       Build the full synthetic measurement scenario and print the
//       Table I summary plus the study headline numbers.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "core/study.h"
#include "core/validate.h"
#include "generators/geo_gen.h"
#include "net/graph_io.h"
#include "report/series.h"
#include "report/table.h"
#include "synth/scenario.h"

namespace {

using namespace geonet;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  geonet generate <routers> <out.graph> [seed]\n"
               "  geonet analyze <in.graph> [region]\n"
               "  geonet validate <in.graph> [region]\n"
               "  geonet scenario [scale]\n");
  return 2;
}

geo::Region region_arg(int argc, char** argv, int index) {
  if (argc > index) {
    if (const auto region = geo::regions::by_name(argv[index])) {
      return *region;
    }
    std::fprintf(stderr, "unknown region '%s', using US\n", argv[index]);
  }
  return geo::regions::us();
}

int cmd_generate(int argc, char** argv) {
  if (argc < 4) return usage();
  generators::GeoGeneratorOptions options;
  options.router_count = static_cast<std::size_t>(std::atol(argv[2]));
  if (argc > 4) options.seed = static_cast<std::uint64_t>(std::atoll(argv[4]));
  if (options.router_count < 16) {
    std::fprintf(stderr, "router count must be >= 16\n");
    return 2;
  }
  const auto world = population::WorldPopulation::build(2002);
  const auto topo = generators::generate_geo_topology(world, options);
  if (!net::write_graph_file(argv[3], topo.graph, topo.link_latency_ms)) {
    std::fprintf(stderr, "cannot write %s\n", argv[3]);
    return 1;
  }
  std::printf("wrote %s: %zu nodes, %zu links (lat/lon + AS + latency)\n",
              argv[3], topo.graph.node_count(), topo.graph.edge_count());
  return 0;
}

std::optional<net::AnnotatedGraph> load(const char* path) {
  std::string error;
  auto graph = net::read_graph_file(path, &error);
  if (!graph) std::fprintf(stderr, "failed to read %s: %s\n", path, error.c_str());
  return graph;
}

int cmd_analyze(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto graph = load(argv[2]);
  if (!graph) return 1;
  const geo::Region region = region_arg(argc, argv, 3);
  const auto world = population::WorldPopulation::build(2002);

  core::StudyOptions options;
  options.regions = {region};
  options.compute_fractal_dimension = false;
  const core::StudyReport report = core::run_study(*graph, world, options);
  std::printf("%s", core::summarize(report).c_str());
  const std::string md = report::results_dir() + "/study.md";
  if (core::write_study_markdown(report, md)) {
    std::printf("markdown report: %s\n", md.c_str());
  }
  return 0;
}

int cmd_validate(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto graph = load(argv[2]);
  if (!graph) return 1;
  const geo::Region region = region_arg(argc, argv, 3);
  const auto world = population::WorldPopulation::build(2002);
  const core::RealismReport report =
      core::check_realism(*graph, world, region);
  std::printf("%s", to_string(report).c_str());
  return report.all_pass() ? 0 : 1;
}

int cmd_scenario(int argc, char** argv) {
  synth::ScenarioOptions options = synth::ScenarioOptions::defaults();
  if (argc > 2) {
    const double scale = std::atof(argv[2]);
    if (scale > 0.0) options.scale = scale;
  }
  std::printf("building scenario at scale %.3f...\n", options.scale);
  const synth::Scenario scenario = synth::Scenario::build(options);

  report::Table table({"Dataset", "Nodes", "Links", "Locations"});
  struct Ref {
    synth::DatasetKind d;
    synth::MapperKind m;
    const char* label;
  };
  for (const Ref& ref : {Ref{synth::DatasetKind::kMercator,
                             synth::MapperKind::kIxMapper, "Mercator+IxMapper"},
                         Ref{synth::DatasetKind::kSkitter,
                             synth::MapperKind::kIxMapper, "Skitter+IxMapper"},
                         Ref{synth::DatasetKind::kMercator,
                             synth::MapperKind::kEdgeScape, "Mercator+EdgeScape"},
                         Ref{synth::DatasetKind::kSkitter,
                             synth::MapperKind::kEdgeScape, "Skitter+EdgeScape"}}) {
    const auto& graph = scenario.graph(ref.d, ref.m);
    table.add_row({ref.label, report::fmt_count(graph.node_count()),
                   report::fmt_count(graph.edge_count()),
                   report::fmt_count(
                       scenario.stats(ref.d, ref.m).distinct_locations)});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto report = core::run_study(
      scenario.graph(synth::DatasetKind::kSkitter, synth::MapperKind::kIxMapper),
      scenario.world());
  std::printf("%s", core::summarize(report).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "generate") == 0) return cmd_generate(argc, argv);
  if (std::strcmp(argv[1], "analyze") == 0) return cmd_analyze(argc, argv);
  if (std::strcmp(argv[1], "validate") == 0) return cmd_validate(argc, argv);
  if (std::strcmp(argv[1], "scenario") == 0) return cmd_scenario(argc, argv);
  return usage();
}
