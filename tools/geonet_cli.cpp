// geonet — command-line front end to the library.
//
//   geonet generate <routers> <out.graph> [seed]
//       Grow a geography/AS/latency-annotated topology and write it.
//   geonet analyze <in.graph> [region]
//       Run the paper's analyses over a topology file.
//   geonet validate <in.graph> [region]
//       Score a topology against the paper's findings; exit 0 iff all
//       criteria pass (CI-friendly).
//   geonet scenario [scale]   (alias: geonet study)
//       Build the full synthetic measurement scenario and print the
//       Table I summary plus the study headline numbers.
//   geonet cache <ls|stats [--json]|gc|verify>
//       Inspect or maintain the artifact cache (requires --cache-dir or
//       GEONET_CACHE_DIR).
//   geonet serve (--graph <file> | --fingerprint <hex32>) [--port <n>]
//       Long-running geo-query server over an immutable snapshot:
//       length-prefixed TCP JSON protocol + HTTP GET shim, hot-swappable
//       by fingerprint via the `reload` verb (see docs/serve.md).
//   geonet perf diff <baseline.json> <current.json>
//   geonet perf check --baseline-dir <dir> [--current-dir <dir>]
//       Perf-regression gate over BENCH_*.json records: compare named
//       timings against a committed baseline with per-metric tolerances;
//       exit 1 on regression, 2 on an incomparable pair (see
//       docs/architecture.md, Perf Gate).
//
// Global flags (any subcommand):
//   --trace <file>     write a chrome://tracing-loadable span trace
//   --profile <file>   write a geonet.profile.v1 per-stage profile
//   --metrics <file>   write a geonet.run_report.v1 JSON run report
//   --faults <spec>    inject measurement faults (see docs/robustness.md)
//   --threads <n>      worker threads for parallel regions (default: all
//                      cores, or GEONET_THREADS); results are identical
//                      at any thread count
//   --cache-dir <dir>  content-addressed artifact cache: scenario builds
//                      and study phases are memoized as GEOS snapshots,
//                      so a repeat run skips simulation/recomputation and
//                      is byte-identical to a cold one (default: off, or
//                      GEONET_CACHE_DIR; see docs/storage.md)
//   --max-errors <n>   analysis-phase error budget before giving up
//   --lenient-io       quarantine malformed graph records instead of failing
//   --quiet            suppress info/warn diagnostics on stderr
//   --version, --help

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/study.h"
#include "core/validate.h"
#include "exec/thread_pool.h"
#include "fault/fault_plan.h"
#include "generators/geo_gen.h"
#include "net/graph_io.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "perf/perf_gate.h"
#include "report/series.h"
#include "report/table.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "store/build_info.h"
#include "store/cache.h"
#include "store/fs.h"
#include "synth/scenario.h"
#include "synth/scenario_store.h"

namespace {

using namespace geonet;

constexpr const char* kVersion = "geonet 1.0.0";

constexpr const char* kUsage =
    "usage:\n"
    "  geonet generate <routers> <out.graph> [seed]\n"
    "                  (a .geos output embeds the spatial index; analyze\n"
    "                  then starts with proximity queries warm)\n"
    "  geonet analyze <in.graph> [region]\n"
    "  geonet validate <in.graph> [region]\n"
    "  geonet scenario [scale]        (alias: study)\n"
    "  geonet cache <ls|stats [--json]|gc --max-bytes <n>|verify>\n"
    "  geonet serve (--graph <file> | --fingerprint <hex32>)\n"
    "               [--port <n>] [--port-file <file>] [--world-seed <n>]\n"
    "               (port 0 = ephemeral; the bound port is printed and,\n"
    "               with --port-file, written there; queries: ping, info,\n"
    "               density, fd, nearest, within, as, stats, reload,\n"
    "               shutdown — see docs/serve.md)\n"
    "  geonet perf diff <baseline.json> <current.json> [perf flags]\n"
    "  geonet perf check --baseline-dir <dir> [--current-dir <dir>]\n"
    "                    [perf flags]\n"
    "  geonet help | --help | --version\n"
    "perf flags:\n"
    "  --tolerance-pct <x>      default regression tolerance (default 10)\n"
    "  --tolerance <name=pct>   per-metric override (repeatable)\n"
    "  --min-us <n>             skip timings under n microseconds in both\n"
    "                           records (default 1000; they are noise)\n"
    "  --ignore-meta            compare despite thread-count/build-type/\n"
    "                           timestamp conflicts\n"
    "global flags:\n"
    "  --trace <file>    write chrome://tracing span trace\n"
    "  --profile <file>  write per-stage profile (geonet.profile.v1);\n"
    "                    implies tracing for the run\n"
    "  --metrics <file>  write machine-readable run report (JSON)\n"
    "  --faults <spec>   inject faults into the measurement campaigns;\n"
    "                    spec e.g. 'monitor-outage:count=3,at=0.5;"
    "throttle:frac=0.1,rate=0.3'\n"
    "                    (clauses: monitor-outage, throttle, truncate,\n"
    "                    probe-loss, geo-corrupt, cache-corrupt, seed=<n>;\n"
    "                    see docs/robustness.md)\n"
    "  --threads <n>     worker threads for parallel regions (default:\n"
    "                    GEONET_THREADS or all cores); any n gives\n"
    "                    identical results (see docs/parallelism.md)\n"
    "  --cache-dir <dir> memoize scenario builds and study phases as GEOS\n"
    "                    snapshots under <dir> (default: GEONET_CACHE_DIR\n"
    "                    or off); warm re-runs are byte-identical to cold\n"
    "                    ones (see docs/storage.md)\n"
    "  --max-errors <n>  tolerate up to n analysis phase errors (default 8)\n"
    "  --lenient-io      quarantine malformed graph records instead of\n"
    "                    failing the whole read\n"
    "  --quiet           errors only on stderr\n";

int usage() {
  obs::log(obs::LogLevel::kError, "%s", kUsage);
  return 2;
}

/// Flags shared by every subcommand, stripped from argv before dispatch.
struct GlobalFlags {
  std::string trace_path;
  std::string profile_path;
  std::string metrics_path;
  std::string cache_dir;  ///< empty = caching off
  std::optional<fault::FaultPlan> faults;
  std::optional<std::size_t> threads;
  std::optional<std::size_t> max_errors;
  bool lenient_io = false;
  bool quiet = false;
  bool version = false;
  bool help = false;
};

/// Parses and removes global flags; returns nullopt on malformed input.
std::optional<GlobalFlags> extract_global_flags(std::vector<std::string>& args) {
  GlobalFlags flags;
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto flag_value = [&](const char* name) -> std::optional<std::string> {
      if (arg != name) return std::nullopt;
      if (i + 1 >= args.size()) return std::nullopt;
      return args[++i];
    };
    if (arg == "--trace" || arg == "--metrics" || arg == "--profile") {
      const auto value = flag_value(arg.c_str());
      if (!value) {
        obs::log(obs::LogLevel::kError, "%s requires a file argument",
                 arg.c_str());
        return std::nullopt;
      }
      (arg == "--trace"     ? flags.trace_path
       : arg == "--profile" ? flags.profile_path
                            : flags.metrics_path) = *value;
    } else if (arg == "--cache-dir") {
      const auto value = flag_value("--cache-dir");
      if (!value || value->empty()) {
        obs::log(obs::LogLevel::kError, "--cache-dir requires a directory");
        return std::nullopt;
      }
      flags.cache_dir = *value;
    } else if (arg == "--faults") {
      const auto value = flag_value("--faults");
      if (!value) {
        obs::log(obs::LogLevel::kError, "--faults requires a spec argument");
        return std::nullopt;
      }
      auto plan = fault::parse_fault_plan(*value);
      if (!plan.is_ok()) {
        obs::log(obs::LogLevel::kError, "bad --faults spec: %s",
                 plan.error_message().c_str());
        return std::nullopt;
      }
      flags.faults = std::move(plan).value();
    } else if (arg == "--threads") {
      const auto value = flag_value("--threads");
      if (!value) {
        obs::log(obs::LogLevel::kError, "--threads requires a count");
        return std::nullopt;
      }
      char* end = nullptr;
      const unsigned long long n = std::strtoull(value->c_str(), &end, 10);
      if (end == value->c_str() || *end != '\0' || n == 0) {
        obs::log(obs::LogLevel::kError,
                 "--threads: '%s' is not a positive integer", value->c_str());
        return std::nullopt;
      }
      flags.threads = static_cast<std::size_t>(n);
    } else if (arg == "--max-errors") {
      const auto value = flag_value("--max-errors");
      if (!value) {
        obs::log(obs::LogLevel::kError, "--max-errors requires a count");
        return std::nullopt;
      }
      char* end = nullptr;
      const unsigned long long n = std::strtoull(value->c_str(), &end, 10);
      if (end == value->c_str() || *end != '\0') {
        obs::log(obs::LogLevel::kError,
                 "--max-errors: '%s' is not a non-negative integer",
                 value->c_str());
        return std::nullopt;
      }
      flags.max_errors = static_cast<std::size_t>(n);
    } else if (arg == "--lenient-io") {
      flags.lenient_io = true;
    } else if (arg == "--quiet" || arg == "-q") {
      flags.quiet = true;
    } else if (arg == "--version") {
      flags.version = true;
    } else if (arg == "--help" || arg == "-h" || arg == "help") {
      flags.help = true;
    } else {
      rest.push_back(arg);
    }
  }
  if (flags.cache_dir.empty()) {
    if (const char* env = std::getenv("GEONET_CACHE_DIR")) {
      if (*env != '\0') flags.cache_dir = env;
    }
  }
  args = std::move(rest);
  return flags;
}

/// Resolves a region argument. Unknown names are a hard usage error: the
/// caller gets nullopt and the user a list of valid names (exit 2), so a
/// typo can never silently analyse the wrong region.
std::optional<geo::Region> region_arg(const std::vector<std::string>& args,
                                      std::size_t index) {
  if (args.size() <= index) return geo::regions::us();
  if (const auto region = geo::regions::by_name(args[index])) {
    return *region;
  }
  std::string known;
  for (const auto& r : geo::regions::all()) {
    if (!known.empty()) known += ", ";
    known += "'" + r.name + "'";
  }
  obs::log(obs::LogLevel::kError, "unknown region '%s'; valid names: %s",
           args[index].c_str(), known.c_str());
  return std::nullopt;
}

/// Assembles the run report's `degradation` section from the measurement
/// half (scenario fault stats), the analysis half (study phase damage)
/// and I/O quarantining. Pass "" or "{}" for absent halves.
void add_degradation_section(obs::RunReport& run_report,
                             const std::string& measurement_json,
                             const std::string& analysis_json,
                             std::size_t records_quarantined) {
  const bool measured = !measurement_json.empty() && measurement_json != "{}";
  const bool analysed = !analysis_json.empty() && analysis_json != "{}";
  obs::JsonWriter json;
  json.begin_object();
  json.key("degraded").value(measured || analysed || records_quarantined != 0);
  if (measured) json.key("measurement").raw(measurement_json);
  if (analysed) json.key("analysis").raw(analysis_json);
  if (records_quarantined != 0) {
    json.key("io").begin_object();
    json.key("records_quarantined")
        .value(static_cast<std::uint64_t>(records_quarantined));
    json.end_object();
  }
  json.end_object();
  run_report.add_section("degradation", json.str());
}

int cmd_cache(const std::vector<std::string>& args,
              store::ArtifactCache* cache, obs::RunReport& run_report) {
  if (cache == nullptr) {
    obs::log(obs::LogLevel::kError,
             "'geonet cache' needs a cache directory: pass --cache-dir or "
             "set GEONET_CACHE_DIR");
    return 2;
  }
  const std::string action = args.size() > 1 ? args[1] : "stats";
  obs::JsonWriter json;
  json.begin_object();
  json.key("action").value(action);
  int status = 0;
  if (action == "ls") {
    for (const store::CacheEntryInfo& entry : cache->ls()) {
      std::printf("%s  %10llu bytes  mtime %lld\n", entry.key.hex().c_str(),
                  static_cast<unsigned long long>(entry.bytes),
                  static_cast<long long>(entry.mtime_s));
    }
  } else if (action == "stats") {
    const store::CacheStats stats = cache->stats();
    bool as_json = false;
    for (std::size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "--json") as_json = true;
    }
    if (as_json) {
      // Machine-readable form (check_serve.py and readiness probes).
      obs::JsonWriter out;
      out.begin_object();
      out.key("entries").value(stats.entries);
      out.key("bytes").value(stats.bytes);
      out.key("quarantined").value(stats.quarantined);
      out.key("dir").value(cache->dir());
      out.end_object();
      std::printf("%s\n", out.str().c_str());
    } else {
      std::printf("entries:     %llu\nbytes:       %llu\nquarantined: %llu\n",
                  static_cast<unsigned long long>(stats.entries),
                  static_cast<unsigned long long>(stats.bytes),
                  static_cast<unsigned long long>(stats.quarantined));
    }
    json.key("entries").value(stats.entries);
    json.key("bytes").value(stats.bytes);
    json.key("quarantined").value(stats.quarantined);
  } else if (action == "gc") {
    std::uint64_t max_bytes = 0;
    bool have_budget = false;
    for (std::size_t i = 2; i + 1 < args.size(); ++i) {
      if (args[i] == "--max-bytes") {
        char* end = nullptr;
        max_bytes = std::strtoull(args[i + 1].c_str(), &end, 10);
        have_budget = end != args[i + 1].c_str() && *end == '\0';
      }
    }
    if (!have_budget) {
      obs::log(obs::LogLevel::kError,
               "cache gc requires --max-bytes <n> (the size to shrink to)");
      return 2;
    }
    const std::size_t evicted = cache->gc(max_bytes);
    std::printf("evicted %zu entr%s (oldest first) to fit %llu bytes\n",
                evicted, evicted == 1 ? "y" : "ies",
                static_cast<unsigned long long>(max_bytes));
    json.key("evicted").value(evicted);
    json.key("max_bytes").value(max_bytes);
  } else if (action == "verify") {
    const store::CacheStats stats = cache->stats();
    const std::size_t bad = cache->verify();
    std::printf("%llu entr%s verified, %zu corrupt (quarantined)\n",
                static_cast<unsigned long long>(stats.entries),
                stats.entries == 1 ? "y" : "ies", bad);
    json.key("verified").value(stats.entries);
    json.key("corrupt").value(bad);
    status = bad == 0 ? 0 : 1;
  } else {
    obs::log(obs::LogLevel::kError,
             "unknown cache action '%s' (ls, stats, gc, verify)",
             action.c_str());
    return usage();
  }
  json.end_object();
  run_report.add_section("cache", json.str());
  return status;
}

int cmd_generate(const std::vector<std::string>& args,
                 obs::RunReport& run_report) {
  if (args.size() < 3) return usage();
  generators::GeoGeneratorOptions options;
  options.router_count = static_cast<std::size_t>(std::atol(args[1].c_str()));
  if (args.size() > 3) {
    options.seed = static_cast<std::uint64_t>(std::atoll(args[3].c_str()));
  }
  if (options.router_count < 16) {
    obs::log(obs::LogLevel::kError, "router count must be >= 16");
    return 2;
  }
  const auto world = population::WorldPopulation::build(2002);
  const auto topo = generators::generate_geo_topology(world, options);
  std::string error;
  if (!net::write_graph_file(args[2], topo.graph, topo.link_latency_ms,
                             &error)) {
    obs::log(obs::LogLevel::kError, "cannot write %s: %s", args[2].c_str(),
             error.c_str());
    return 1;
  }
  std::printf("wrote %s: %zu nodes, %zu links (lat/lon + AS + latency)\n",
              args[2].c_str(), topo.graph.node_count(),
              topo.graph.edge_count());
  obs::JsonWriter json;
  json.begin_object();
  json.key("output").value(args[2]);
  json.key("nodes").value(topo.graph.node_count());
  json.key("links").value(topo.graph.edge_count());
  json.end_object();
  run_report.add_section("generate", json.str());
  return 0;
}

std::optional<net::AnnotatedGraph> load(
    const std::string& path, bool lenient, std::size_t* quarantined,
    std::optional<geo::SpatialIndex>* spatial_index = nullptr) {
  net::GraphReadOptions options;
  options.lenient = lenient;
  net::GraphReadResult result = net::read_graph_file_ex(path, options);
  if (spatial_index != nullptr) {
    *spatial_index = std::move(result.spatial_index);
  }
  if (quarantined != nullptr) *quarantined = result.quarantined.size();
  for (const auto& record : result.quarantined) {
    obs::log(obs::LogLevel::kWarn, "%s: quarantined line %zu: %s [%s]",
             path.c_str(), record.line_no, record.reason.c_str(),
             record.text.c_str());
  }
  if (!result.ok()) {
    obs::log(obs::LogLevel::kError, "failed to read %s: %s", path.c_str(),
             result.status.message().c_str());
    return std::nullopt;
  }
  if (!result.quarantined.empty()) {
    obs::log(obs::LogLevel::kWarn, "%s: %zu malformed record(s) quarantined",
             path.c_str(), result.quarantined.size());
  }
  return std::move(result.graph);
}

int cmd_analyze(const std::vector<std::string>& args, const GlobalFlags& flags,
                store::ArtifactCache* cache, obs::RunReport& run_report) {
  if (args.size() < 2) return usage();
  std::size_t quarantined = 0;
  // A .geos input carries a prebuilt spatial index; handing it to the
  // study skips the cold build (results identical either way).
  std::optional<geo::SpatialIndex> warm_index;
  const auto graph = load(args[1], flags.lenient_io, &quarantined, &warm_index);
  if (!graph) return 1;
  const auto region = region_arg(args, 2);
  if (!region) return 2;
  const auto world = population::WorldPopulation::build(2002);

  core::StudyOptions options;
  options.regions = {*region};
  options.compute_fractal_dimension = false;
  if (flags.max_errors) options.max_errors = *flags.max_errors;
  options.cache = cache;
  if (warm_index) options.spatial_index = &*warm_index;
  const core::StudyReport report = core::run_study(*graph, world, options);
  std::printf("%s", core::summarize(report).c_str());
  run_report.add_section("study", core::study_report_json(report));
  add_degradation_section(run_report, "",
                          core::study_degradation_json(report.degradation),
                          quarantined);
  const std::string md = report::results_dir() + "/study.md";
  if (core::write_study_markdown(report, md)) {
    std::printf("markdown report: %s\n", md.c_str());
  }
  return report.degradation.budget_exhausted ? 1 : 0;
}

int cmd_validate(const std::vector<std::string>& args, const GlobalFlags& flags,
                 obs::RunReport& run_report) {
  if (args.size() < 2) return usage();
  std::size_t quarantined = 0;
  const auto graph = load(args[1], flags.lenient_io, &quarantined);
  if (!graph) return 1;
  const auto region = region_arg(args, 2);
  if (!region) return 2;
  const auto world = population::WorldPopulation::build(2002);
  const core::RealismReport report =
      core::check_realism(*graph, world, *region);
  std::printf("%s", to_string(report).c_str());
  obs::JsonWriter json;
  json.begin_object();
  json.key("all_pass").value(report.all_pass());
  json.end_object();
  run_report.add_section("validate", json.str());
  if (quarantined != 0) {
    add_degradation_section(run_report, "", "", quarantined);
  }
  return report.all_pass() ? 0 : 1;
}

int cmd_scenario(const std::vector<std::string>& args, const GlobalFlags& flags,
                 store::ArtifactCache* cache, obs::RunReport& run_report) {
  synth::ScenarioOptions options = synth::ScenarioOptions::defaults();
  if (args.size() > 1) {
    const double scale = std::atof(args[1].c_str());
    if (scale > 0.0) options.scale = scale;
  }
  options.faults = flags.faults;
  if (options.faults) {
    obs::log(obs::LogLevel::kInfo, "fault plan armed: %s",
             options.faults->to_json().c_str());
  }

  // The simulation half (two measurement campaigns, four processing
  // pipelines) is memoized as one scenario-artifacts snapshot; a warm run
  // decodes it and rebuilds only the cheap population substrate. A
  // corrupt or missing entry falls through to a full (cold) build.
  synth::ScenarioArtifacts artifacts;
  std::unique_ptr<population::WorldPopulation> world;
  bool warm = false;
  std::string cache_note;
  const store::Digest128 scenario_key =
      synth::scenario_fingerprint(options).digest();
  if (cache != nullptr) {
    auto bytes = cache->get(scenario_key);
    if (bytes.is_ok()) {
      auto decoded = synth::decode_scenario_artifacts(bytes.value());
      if (decoded.is_ok()) {
        artifacts = std::move(decoded).value();
        world = std::make_unique<population::WorldPopulation>(
            population::WorldPopulation::build(options.seed));
        warm = true;
        obs::log(obs::LogLevel::kInfo,
                 "scenario cache hit (%s); skipping simulation",
                 scenario_key.hex().c_str());
      } else {
        cache_note = "scenario cache entry was undecodable (" +
                     decoded.status().message() + "); rebuilt";
      }
    } else if (bytes.status().code() != err::Code::kNotFound) {
      cache_note = bytes.status().message() + "; rebuilt";
    }
  }
  if (!warm) {
    obs::log(obs::LogLevel::kInfo, "building scenario at scale %.3f...",
             options.scale);
    const synth::Scenario scenario = synth::Scenario::build(options);
    artifacts = synth::snapshot_artifacts(scenario);
    world = std::make_unique<population::WorldPopulation>(
        population::WorldPopulation::build(options.seed));
    if (cache != nullptr) {
      const err::Status put =
          cache->put(scenario_key, synth::encode_scenario_artifacts(artifacts));
      if (!put.is_ok()) {
        obs::log(obs::LogLevel::kWarn, "scenario not cached: %s",
                 put.message().c_str());
      }
    }
  }
  run_report.set_info("scale", std::to_string(options.scale));
  run_report.add_section("processing_stats",
                         synth::scenario_stats_json(artifacts.stats));

  report::Table table({"Dataset", "Nodes", "Links", "Locations"});
  struct Ref {
    synth::DatasetKind d;
    synth::MapperKind m;
    const char* label;
  };
  for (const Ref& ref : {Ref{synth::DatasetKind::kMercator,
                             synth::MapperKind::kIxMapper, "Mercator+IxMapper"},
                         Ref{synth::DatasetKind::kSkitter,
                             synth::MapperKind::kIxMapper, "Skitter+IxMapper"},
                         Ref{synth::DatasetKind::kMercator,
                             synth::MapperKind::kEdgeScape, "Mercator+EdgeScape"},
                         Ref{synth::DatasetKind::kSkitter,
                             synth::MapperKind::kEdgeScape, "Skitter+EdgeScape"}}) {
    const std::size_t slot = synth::dataset_slot(ref.d, ref.m);
    const auto& graph = artifacts.graphs[slot];
    table.add_row({ref.label, report::fmt_count(graph.node_count()),
                   report::fmt_count(graph.edge_count()),
                   report::fmt_count(artifacts.stats[slot].distinct_locations)});
  }
  std::printf("%s\n", table.to_string().c_str());

  core::StudyOptions study_options;
  if (flags.max_errors) study_options.max_errors = *flags.max_errors;
  study_options.cache = cache;
  core::StudyReport report = core::run_study(
      artifacts.graphs[synth::dataset_slot(synth::DatasetKind::kSkitter,
                                           synth::MapperKind::kIxMapper)],
      *world, study_options);
  if (!cache_note.empty()) {
    report.degradation.notes.push_back(cache_note);
  }
  std::printf("%s", core::summarize(report).c_str());
  run_report.add_section("study", core::study_report_json(report));
  add_degradation_section(
      run_report,
      synth::scenario_degradation_json(options.faults, artifacts.fault_stats,
                                       artifacts.probe_stats),
      core::study_degradation_json(report.degradation),
      /*records_quarantined=*/0);
  // Injected faults degrade, they don't fail: the run exits 0 unless the
  // analysis error budget itself was blown.
  return report.degradation.budget_exhausted ? 1 : 0;
}

/// `geonet serve`: load one immutable snapshot (a graph file or an
/// artifact-cache entry by fingerprint), precompute every query table,
/// then answer density/f(d)/nearest/within/AS-hull queries until stopped
/// (SIGINT/SIGTERM drain in-flight work; the `reload` verb hot-swaps the
/// snapshot by fingerprint with zero downtime). See docs/serve.md.
int cmd_serve(const std::vector<std::string>& args,
              store::ArtifactCache* cache, obs::RunReport& run_report) {
  std::string graph_path;
  std::string fingerprint_hex;
  std::string port_file;
  std::uint16_t port = 0;
  std::uint64_t world_seed = 2002;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto flag_value = [&](const char* name) -> std::optional<std::string> {
      if (arg != name) return std::nullopt;
      if (i + 1 >= args.size()) return std::nullopt;
      return args[++i];
    };
    if (arg == "--graph") {
      const auto value = flag_value("--graph");
      if (!value) {
        obs::log(obs::LogLevel::kError, "--graph requires a file");
        return 2;
      }
      graph_path = *value;
    } else if (arg == "--fingerprint") {
      const auto value = flag_value("--fingerprint");
      if (!value) {
        obs::log(obs::LogLevel::kError,
                 "--fingerprint requires a 32-hex-digit cache key");
        return 2;
      }
      fingerprint_hex = *value;
    } else if (arg == "--port") {
      const auto value = flag_value("--port");
      char* end = nullptr;
      const unsigned long n =
          value ? std::strtoul(value->c_str(), &end, 10) : 0;
      if (!value || end == value->c_str() || *end != '\0' || n > 65535) {
        obs::log(obs::LogLevel::kError, "--port requires 0..65535");
        return 2;
      }
      port = static_cast<std::uint16_t>(n);
    } else if (arg == "--port-file") {
      const auto value = flag_value("--port-file");
      if (!value) {
        obs::log(obs::LogLevel::kError, "--port-file requires a path");
        return 2;
      }
      port_file = *value;
    } else if (arg == "--world-seed") {
      const auto value = flag_value("--world-seed");
      char* end = nullptr;
      const unsigned long long n =
          value ? std::strtoull(value->c_str(), &end, 10) : 0;
      if (!value || end == value->c_str() || *end != '\0') {
        obs::log(obs::LogLevel::kError, "--world-seed requires an integer");
        return 2;
      }
      world_seed = n;
    } else {
      obs::log(obs::LogLevel::kError, "serve: unknown argument '%s'",
               arg.c_str());
      return usage();
    }
  }
  if (graph_path.empty() == fingerprint_hex.empty()) {
    obs::log(obs::LogLevel::kError,
             "serve needs exactly one of --graph <file> or "
             "--fingerprint <hex32>");
    return 2;
  }

  // The same world seed as `analyze` by default, so served density
  // tables match offline runs over the same graph.
  const auto world = population::WorldPopulation::build(world_seed);
  serve::ServeOptions serve_options;

  err::Result<std::shared_ptr<const serve::ServeSnapshot>> snapshot =
      [&]() -> err::Result<std::shared_ptr<const serve::ServeSnapshot>> {
    if (!graph_path.empty()) {
      return serve::ServeSnapshot::from_file(graph_path, world, serve_options);
    }
    if (cache == nullptr) {
      return err::Status::invalid_argument(
          "--fingerprint needs a cache: pass --cache-dir or set "
          "GEONET_CACHE_DIR");
    }
    const auto key = store::Digest128::parse_hex(fingerprint_hex);
    if (!key) {
      return err::Status::invalid_argument(
          "--fingerprint is not 32 hex digits");
    }
    return serve::ServeSnapshot::from_cache(*cache, *key, world,
                                            serve_options);
  }();
  if (!snapshot.is_ok()) {
    obs::log(obs::LogLevel::kError, "serve: %s",
             snapshot.status().to_string().c_str());
    return 1;
  }

  serve::ServerOptions server_options;
  server_options.port = port;
  serve::Server server(server_options, snapshot.value(), cache, &world,
                       serve_options);
  const err::Status started = server.start();
  if (!started.is_ok()) {
    obs::log(obs::LogLevel::kError, "serve: %s", started.to_string().c_str());
    return 1;
  }
  if (!port_file.empty() &&
      !store::atomic_write_text(port_file,
                                std::to_string(server.port()) + "\n")) {
    obs::log(obs::LogLevel::kError, "serve: cannot write port file %s",
             port_file.c_str());
    return 1;
  }
  // Flushed immediately so a parent process waiting on the port (tests,
  // check_serve.py) sees it before the first query.
  std::printf("serve: listening on %s:%u (epoch %s)\n",
              server_options.host.c_str(), server.port(),
              snapshot.value()->epoch().c_str());
  std::fflush(stdout);

  server.install_signal_handlers();
  const err::Status ran = server.run();

  const serve::ServerStats stats = server.stats();
  std::printf("serve: stopped after %llu request(s), %llu error(s), "
              "%llu reload(s)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.errors),
              static_cast<unsigned long long>(stats.reloads));
  obs::JsonWriter json;
  json.begin_object();
  json.key("port").value(static_cast<std::uint64_t>(server.port()));
  json.key("epoch").value(server.epoch());
  json.key("requests").value(stats.requests);
  json.key("errors").value(stats.errors);
  json.key("batches").value(stats.batches);
  json.key("reloads").value(stats.reloads);
  json.key("connections").value(stats.connections);
  json.end_object();
  run_report.add_section("serve", json.str());
  if (!ran.is_ok()) {
    obs::log(obs::LogLevel::kError, "serve: %s", ran.to_string().c_str());
    return 1;
  }
  return 0;
}

/// `geonet perf diff A B` / `geonet perf check --baseline-dir D`: the
/// BENCH_*.json regression gate. Exit 0 = within tolerance, 1 = at least
/// one regression, 2 = usage error or an incomparable record pair
/// (metadata refusal without --ignore-meta).
int cmd_perf(const std::vector<std::string>& args,
             obs::RunReport& run_report) {
  if (args.size() < 2) return usage();
  const std::string& action = args[1];

  perf::Tolerances tolerances;
  bool ignore_meta = false;
  std::string baseline_dir;
  std::string current_dir = report::results_dir();
  std::vector<std::string> operands;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto flag_value = [&](const char* name) -> std::optional<std::string> {
      if (arg != name) return std::nullopt;
      if (i + 1 >= args.size()) return std::nullopt;
      return args[++i];
    };
    if (arg == "--tolerance-pct") {
      const auto value = flag_value("--tolerance-pct");
      if (!value || std::atof(value->c_str()) < 0.0) {
        obs::log(obs::LogLevel::kError,
                 "--tolerance-pct requires a non-negative percentage");
        return 2;
      }
      tolerances.default_pct = std::atof(value->c_str());
    } else if (arg == "--tolerance") {
      const auto value = flag_value("--tolerance");
      const std::size_t eq = value ? value->find('=') : std::string::npos;
      if (!value || eq == std::string::npos || eq == 0) {
        obs::log(obs::LogLevel::kError,
                 "--tolerance requires <metric>=<pct> (e.g. "
                 "span/study/run=25)");
        return 2;
      }
      tolerances.per_metric.emplace_back(
          value->substr(0, eq), std::atof(value->c_str() + eq + 1));
    } else if (arg == "--min-us") {
      const auto value = flag_value("--min-us");
      if (!value) {
        obs::log(obs::LogLevel::kError, "--min-us requires a count");
        return 2;
      }
      tolerances.min_us = std::atof(value->c_str());
    } else if (arg == "--ignore-meta") {
      ignore_meta = true;
    } else if (arg == "--baseline-dir") {
      const auto value = flag_value("--baseline-dir");
      if (!value) {
        obs::log(obs::LogLevel::kError, "--baseline-dir requires a directory");
        return 2;
      }
      baseline_dir = *value;
    } else if (arg == "--current-dir") {
      const auto value = flag_value("--current-dir");
      if (!value) {
        obs::log(obs::LogLevel::kError, "--current-dir requires a directory");
        return 2;
      }
      current_dir = *value;
    } else {
      operands.push_back(arg);
    }
  }

  std::vector<perf::Diff> diffs;
  std::vector<std::string> missing;
  if (action == "diff") {
    if (operands.size() != 2) {
      obs::log(obs::LogLevel::kError,
               "perf diff needs exactly two record files");
      return usage();
    }
    auto baseline = perf::load_bench_record(operands[0]);
    if (!baseline) {
      obs::log(obs::LogLevel::kError, "%s", baseline.status().to_string().c_str());
      return 2;
    }
    auto current = perf::load_bench_record(operands[1]);
    if (!current) {
      obs::log(obs::LogLevel::kError, "%s", current.status().to_string().c_str());
      return 2;
    }
    diffs.push_back(perf::diff_records(baseline.value(), current.value(),
                                       tolerances, ignore_meta));
  } else if (action == "check") {
    if (baseline_dir.empty()) {
      obs::log(obs::LogLevel::kError, "perf check requires --baseline-dir");
      return usage();
    }
    auto result = perf::check_directories(baseline_dir, current_dir,
                                          tolerances, ignore_meta);
    if (!result) {
      obs::log(obs::LogLevel::kError, "%s", result.status().to_string().c_str());
      return 2;
    }
    diffs = std::move(result.value().diffs);
    missing = std::move(result.value().missing_current);
  } else {
    obs::log(obs::LogLevel::kError, "unknown perf action '%s' (diff, check)",
             action.c_str());
    return usage();
  }

  std::size_t regressed = 0;
  std::size_t refused = 0;
  for (const perf::Diff& diff : diffs) {
    std::printf("%s", perf::render_diff(diff).c_str());
    if (diff.regressed()) ++regressed;
    if (!diff.comparable) ++refused;
  }
  for (const std::string& name : missing) {
    std::printf("perf check: %s has no current record (not gated)\n",
                name.c_str());
  }

  obs::JsonWriter json;
  json.begin_object();
  json.key("action").value(action);
  json.key("records").value(diffs.size());
  json.key("regressed").value(regressed);
  json.key("refused").value(refused);
  json.key("missing_current").value(missing.size());
  json.end_object();
  run_report.add_section("perf", json.str());

  if (refused != 0) return 2;
  return regressed != 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const auto flags = extract_global_flags(args);
  if (!flags) return 2;
  if (flags->version) {
    std::printf("%s\n", kVersion);
    return 0;
  }
  if (flags->help || args.empty()) {
    std::printf("%s", kUsage);
    return flags->help ? 0 : 2;
  }
  if (flags->quiet) obs::set_log_level(obs::LogLevel::kError);
  if (!flags->trace_path.empty() || !flags->profile_path.empty()) {
    obs::Tracer::global().set_enabled(true);
  }
  if (flags->threads) exec::ThreadPool::set_global_threads(*flags->threads);

  const std::string& command = args[0];
  obs::RunReport run_report(command);
  run_report.add_section("provenance", store::provenance_json());

  std::optional<store::ArtifactCache> cache;
  if (!flags->cache_dir.empty()) {
    cache.emplace(flags->cache_dir);
    if (flags->faults && flags->faults->cache_corrupt) {
      cache->set_corruption({flags->faults->cache_corrupt->probability,
                             flags->faults->seed});
    }
  }
  store::ArtifactCache* const cache_ptr = cache ? &*cache : nullptr;

  int status = 2;
  if (command == "generate") {
    status = cmd_generate(args, run_report);
  } else if (command == "analyze") {
    status = cmd_analyze(args, *flags, cache_ptr, run_report);
  } else if (command == "validate") {
    status = cmd_validate(args, *flags, run_report);
  } else if (command == "scenario" || command == "study") {
    status = cmd_scenario(args, *flags, cache_ptr, run_report);
  } else if (command == "cache") {
    status = cmd_cache(args, cache_ptr, run_report);
  } else if (command == "serve") {
    status = cmd_serve(args, cache_ptr, run_report);
  } else if (command == "perf") {
    status = cmd_perf(args, run_report);
  } else {
    obs::log(obs::LogLevel::kError, "unknown command '%s'", command.c_str());
    return usage();
  }

  const obs::Tracer& tracer = obs::Tracer::global();
  if (!flags->trace_path.empty()) {
    // Like every artifact: atomic write, provenance-stamped.
    if (store::atomic_write_text(
            flags->trace_path,
            tracer.chrome_trace_json(store::provenance_json()) + "\n")) {
      obs::log(obs::LogLevel::kInfo, "trace written: %s (open in chrome://tracing)",
               flags->trace_path.c_str());
      obs::log(obs::LogLevel::kInfo, "%s", tracer.summary().c_str());
    } else {
      obs::log(obs::LogLevel::kError, "cannot write trace %s",
               flags->trace_path.c_str());
      if (status == 0) status = 1;
    }
  }
  if (!flags->profile_path.empty()) {
    if (store::atomic_write_text(
            flags->profile_path,
            tracer.profile_json(store::provenance_json()) + "\n")) {
      obs::log(obs::LogLevel::kInfo, "profile written: %s",
               flags->profile_path.c_str());
    } else {
      obs::log(obs::LogLevel::kError, "cannot write profile %s",
               flags->profile_path.c_str());
      if (status == 0) status = 1;
    }
  }
  if (!flags->metrics_path.empty()) {
    if (tracer.enabled()) {
      run_report.add_section("profile", tracer.profile_json());
    }
    run_report.set_info("exit_status", std::to_string(status));
    if (store::atomic_write_text(flags->metrics_path,
                                 run_report.to_json() + "\n")) {
      obs::log(obs::LogLevel::kInfo, "run report written: %s",
               flags->metrics_path.c_str());
    } else {
      obs::log(obs::LogLevel::kError, "cannot write run report %s",
               flags->metrics_path.c_str());
      if (status == 0) status = 1;
    }
  }
  return status;
}
