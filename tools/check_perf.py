#!/usr/bin/env python3
"""Self-test of the `geonet perf check` regression gate.

Deterministic — no timing is measured. The committed baseline records
are compared against doctored copies of themselves, exercising all
three gate outcomes end-to-end through the CLI:
  * a verbatim copy passes (exit 0),
  * a synthetic 25% slowdown injected into every metric trips the gate
    (exit 1, REGRESSED verdict in the output),
  * a tampered threads field is refused, not misreported (exit 2).

Usage: check_perf.py <path-to-geonet_cli> <baseline-dir>
Registered as the opt-in `check_perf` ctest (label: perf).
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile

SLOWDOWN = 1.25


def fail(message):
    print("check_perf: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def run_check(cli, baseline_dir, current_dir):
    cmd = [cli, "perf", "check", "--baseline-dir", baseline_dir,
           "--current-dir", current_dir, "--quiet"]
    return subprocess.run(cmd, capture_output=True, text=True)


def doctor(path, slow_factor=None, threads=None):
    """Rewrites a BENCH record with injected slowdown and/or tampered
    thread count."""
    with open(path) as handle:
        record = json.load(handle)
    if slow_factor is not None:
        info = record.get("info", {})
        if "wall_us" in info:
            info["wall_us"] = str(int(float(info["wall_us"]) * slow_factor))
        for span in record.get("spans", []):
            if "total_us" in span:
                span["total_us"] = int(span["total_us"] * slow_factor)
    if threads is not None:
        record.setdefault("info", {})["threads"] = threads
    with open(path, "w") as handle:
        json.dump(record, handle)


def main():
    if len(sys.argv) != 3:
        fail("usage: check_perf.py <geonet_cli> <baseline-dir>")
    cli, baseline_dir = sys.argv[1], sys.argv[2]
    if not os.path.isdir(baseline_dir):
        fail("baseline dir missing: %s" % baseline_dir)
    records = sorted(name for name in os.listdir(baseline_dir)
                     if name.startswith("BENCH_") and name.endswith(".json"))
    if not records:
        fail("no BENCH_*.json records in %s" % baseline_dir)

    with tempfile.TemporaryDirectory(prefix="geonet_check_perf_") as tmp:
        current_dir = os.path.join(tmp, "current")

        # 1. A verbatim copy of the baseline must pass.
        shutil.copytree(baseline_dir, current_dir)
        result = run_check(cli, baseline_dir, current_dir)
        if result.returncode != 0:
            fail("self-comparison should pass, got exit %d\nstdout:\n%s"
                 "\nstderr:\n%s"
                 % (result.returncode, result.stdout, result.stderr))
        if "OK" not in result.stdout:
            fail("self-comparison verdict missing from output:\n%s"
                 % result.stdout)

        # 2. A uniform 25% slowdown must trip the default 10% gate.
        for name in records:
            doctor(os.path.join(current_dir, name), slow_factor=SLOWDOWN)
        result = run_check(cli, baseline_dir, current_dir)
        if result.returncode != 1:
            fail("injected %.0f%% slowdown should exit 1, got %d\nstdout:\n%s"
                 % ((SLOWDOWN - 1) * 100, result.returncode, result.stdout))
        if "REGRESSED" not in result.stdout:
            fail("REGRESSED verdict missing from output:\n%s" % result.stdout)

        # 3. A thread-count tamper must be refused, not compared.
        shutil.rmtree(current_dir)
        shutil.copytree(baseline_dir, current_dir)
        doctor(os.path.join(current_dir, records[0]), threads="97")
        result = run_check(cli, baseline_dir, current_dir)
        if result.returncode != 2:
            fail("thread tamper should exit 2 (refused), got %d\nstdout:\n%s"
                 % (result.returncode, result.stdout))
        if "REFUSED" not in result.stdout:
            fail("REFUSED verdict missing from output:\n%s" % result.stdout)

    print("check_perf: OK (%d records; pass/regress/refuse verified)"
          % len(records))


if __name__ == "__main__":
    main()
