#!/usr/bin/env python3
"""Format guard for the geonet.profile.v1 artifact.

Runs `geonet scenario --profile --quiet` at a small scale and asserts
that the profile document is well-formed:
  * schema is geonet.profile.v1 with a provenance stamp,
  * stages form a resolvable tree (every parent names an earlier stage,
    depth = parent depth + 1, depth-first emit order),
  * per-stage invariants hold: count > 0, 0 <= self_us <= total_us,
    p50_us <= p95_us <= max_us,
  * the embedded run-report copy (--metrics) carries the same profile
    under its "profile" section.

Usage: check_profile.py <path-to-geonet_cli> [scale]
Registered as the `check_profile` ctest in tests/CMakeLists.txt.
"""

import json
import os
import subprocess
import sys
import tempfile

MIN_STAGES = 12

REQUIRED_STAGES = [
    "synth/skitter",
    "synth/mercator",
    "study/run",
]

STAGE_FIELDS = [
    "name", "parent", "depth", "count",
    "total_us", "self_us", "p50_us", "p95_us", "max_us",
]


def fail(message):
    print("check_profile: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def check_profile_doc(profile, source):
    if profile.get("schema") != "geonet.profile.v1":
        fail("%s: unexpected schema %r" % (source, profile.get("schema")))
    stages = profile.get("stages")
    if not isinstance(stages, list) or not stages:
        fail("%s: no stages array" % source)
    if len(stages) < MIN_STAGES:
        fail("%s: only %d stages (need >= %d)"
             % (source, len(stages), MIN_STAGES))

    depth_of = {}
    for stage in stages:
        for field in STAGE_FIELDS:
            if field not in stage:
                fail("%s: stage %r missing %r"
                     % (source, stage.get("name"), field))
        name = stage["name"]
        parent = stage["parent"]
        if parent:
            if parent not in depth_of:
                fail("%s: stage %r parent %r not emitted before it "
                     "(not depth-first or dangling)" % (source, name, parent))
            # depth is the minimum depth the stage was observed at, so a
            # child sits strictly below its parent (>= parent + 1, not
            # necessarily == when a stage is reached from several depths).
            if stage["depth"] < depth_of[parent] + 1:
                fail("%s: stage %r depth %d not below parent depth %d"
                     % (source, name, stage["depth"], depth_of[parent]))
        depth_of[name] = stage["depth"]

        if stage["count"] <= 0:
            fail("%s: stage %r has zero count" % (source, name))
        if not 0 <= stage["self_us"] <= stage["total_us"]:
            fail("%s: stage %r self_us %r outside [0, total_us %r]"
                 % (source, name, stage["self_us"], stage["total_us"]))
        if not stage["p50_us"] <= stage["p95_us"] <= stage["max_us"]:
            fail("%s: stage %r percentiles not monotone (%r, %r, %r)"
                 % (source, name, stage["p50_us"], stage["p95_us"],
                    stage["max_us"]))

    if 0 not in depth_of.values():
        fail("%s: no depth-0 root stage" % source)
    names = set(depth_of)
    for required in REQUIRED_STAGES:
        if required not in names:
            fail("%s: expected stage %r missing; have %s"
                 % (source, required, sorted(names)))
    return len(stages)


def main():
    if len(sys.argv) < 2:
        fail("usage: check_profile.py <geonet_cli> [scale]")
    cli = sys.argv[1]
    scale = sys.argv[2] if len(sys.argv) > 2 else "0.02"

    with tempfile.TemporaryDirectory(prefix="geonet_check_profile_") as tmp:
        profile_path = os.path.join(tmp, "profile.json")
        metrics_path = os.path.join(tmp, "metrics.json")
        cmd = [cli, "scenario", scale, "--threads", "4",
               "--profile", profile_path, "--metrics", metrics_path,
               "--quiet"]
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 0:
            fail("CLI exited %d\nstderr:\n%s"
                 % (result.returncode, result.stderr))

        try:
            with open(profile_path) as handle:
                profile = json.load(handle)
        except (OSError, ValueError) as err:
            fail("profile file unreadable or invalid JSON: %s" % err)
        if not isinstance(profile.get("provenance"), dict):
            fail("profile missing provenance stamp")
        stage_count = check_profile_doc(profile, "profile artifact")

        # The run report embeds the same profile as a section.
        try:
            with open(metrics_path) as handle:
                report = json.load(handle)
        except (OSError, ValueError) as err:
            fail("metrics file unreadable or invalid JSON: %s" % err)
        embedded = report.get("sections", {}).get("profile")
        if not isinstance(embedded, dict):
            fail("run report has no profile section; sections: %s"
                 % sorted(report.get("sections", {})))
        check_profile_doc(embedded, "embedded profile")

    print("check_profile: OK (%d stages)" % stage_count)


if __name__ == "__main__":
    main()
