#!/usr/bin/env python3
"""Out-of-process protocol guard for `geonet serve`.

An independent client (sharing no code with src/serve) drives a real
server process end-to-end and drills the wire contract documented in
docs/serve.md:

  * startup: `geonet serve --port 0 --port-file` binds an ephemeral port
    and publishes it via the port file;
  * framed round trips: every data verb answers well-formed JSON with
    ok=true and a stable epoch; responses come back in request order on
    a pipelined connection;
  * the HTTP shim answers one GET with a valid HTTP/1.1 response and
    closes;
  * robustness: unparseable JSON answers {"ok":false,...} and keeps the
    connection; an oversized declared frame length is answered once and
    the connection closed; a half-sent frame followed by disconnect
    leaves the server serving;
  * `geonet cache stats --json` emits a machine-readable summary;
  * SIGTERM stops the server cleanly: exit code 0 and a stop summary.

Usage:
  check_serve.py <path-to-geonet_cli>

Registered as the `check_serve` ctest in tests/CMakeLists.txt.
"""

import json
import os
import signal
import socket
import struct
import subprocess
import sys
import tempfile
import time

MAX_FRAME = 1 << 20
STARTUP_TIMEOUT_S = 240
SHUTDOWN_TIMEOUT_S = 60


def fail(message):
    print("check_serve: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def send_frame(sock, payload):
    data = payload.encode() if isinstance(payload, str) else payload
    sock.sendall(struct.pack(">I", len(data)) + data)


def recv_exact(sock, n):
    out = b""
    while len(out) < n:
        chunk = sock.recv(n - len(out))
        if not chunk:
            raise ConnectionError("peer closed after %d of %d bytes"
                                  % (len(out), n))
        out += chunk
    return out


def recv_frame(sock):
    (length,) = struct.unpack(">I", recv_exact(sock, 4))
    if length > MAX_FRAME:
        raise ConnectionError("response declares %d bytes" % length)
    return recv_exact(sock, length)


def round_trip(sock, request):
    send_frame(sock, json.dumps(request))
    response = recv_frame(sock)
    try:
        return json.loads(response)
    except ValueError as err:
        fail("response is not JSON (%s): %r" % (err, response[:200]))


def expect_ok(doc, op):
    if not isinstance(doc, dict) or doc.get("ok") is not True:
        fail("%s answered %r" % (op, doc))
    if doc.get("op") != op:
        fail("asked for %r, answered op %r" % (op, doc.get("op")))
    if not doc.get("epoch"):
        fail("%s answer carries no epoch" % op)
    return doc


def start_server(cli, graph_path, tmp):
    port_file = os.path.join(tmp, "port.txt")
    process = subprocess.Popen(
        [cli, "serve", "--graph", graph_path, "--port", "0",
         "--port-file", port_file],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.time() + STARTUP_TIMEOUT_S
    while time.time() < deadline:
        if process.poll() is not None:
            fail("server exited %d during startup:\n%s"
                 % (process.returncode, process.stdout.read()))
        try:
            with open(port_file) as handle:
                text = handle.read().strip()
            if text:
                return process, int(text)
        except (OSError, ValueError):
            pass
        time.sleep(0.2)
    process.kill()
    fail("no port file after %ds" % STARTUP_TIMEOUT_S)


def connect(port):
    sock = socket.create_connection(("127.0.0.1", port), timeout=30)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def drill_data_verbs(port):
    sock = connect(port)
    epoch = expect_ok(round_trip(sock, {"op": "ping"}), "ping")["epoch"]

    info = expect_ok(round_trip(sock, {"op": "info"}), "info")
    if info["epoch"] != epoch:
        fail("info epoch %r != ping epoch %r" % (info["epoch"], epoch))
    if info.get("nodes", 0) <= 0 or not info.get("regions"):
        fail("info reports no nodes or no regions: %r" % info)
    region = info["regions"][0]["name"]

    nearest = expect_ok(
        round_trip(sock, {"op": "nearest", "lat": 40.0, "lon": -100.0,
                          "k": 3}), "nearest")
    hits = nearest.get("hits", [])
    if len(hits) != 3:
        fail("nearest k=3 returned %d hits" % len(hits))
    distances = [h["distance_miles"] for h in hits]
    if distances != sorted(distances):
        fail("nearest hits not sorted by distance: %r" % distances)

    within = expect_ok(
        round_trip(sock, {"op": "within", "lat": 40.0, "lon": -100.0,
                          "radius_miles": 1000.0, "max_hits": 2}), "within")
    if within["count"] < len(within["hits"]):
        fail("within count %d < listed hits %d"
             % (within["count"], len(within["hits"])))
    if len(within["hits"]) > 2:
        fail("within listed %d hits despite max_hits=2"
             % len(within["hits"]))

    fd = expect_ok(
        round_trip(sock, {"op": "fd", "region": region, "d": 200.0}), "fd")
    if fd.get("region") != region:
        fail("fd answered region %r" % fd.get("region"))
    if "beyond_range" not in fd and not (0.0 <= fd.get("f", -1.0) <= 1.0):
        fail("fd f=%r out of [0,1]" % fd.get("f"))

    expect_ok(round_trip(sock, {"op": "density", "lat": 40.0,
                                "lon": -100.0}), "density")
    expect_ok(round_trip(sock, {"op": "as", "lat": 40.0, "lon": -100.0}),
              "as")

    stats = expect_ok(round_trip(sock, {"op": "stats"}), "stats")
    if stats.get("requests", 0) < 7:
        fail("stats reports %r requests after 8 round trips"
             % stats.get("requests"))
    sock.close()
    return epoch


def drill_pipelining(port):
    sock = connect(port)
    for k in (1, 2, 3):
        send_frame(sock, json.dumps({"op": "nearest", "lat": 40.0,
                                     "lon": -100.0, "k": k}))
    for k in (1, 2, 3):
        doc = json.loads(recv_frame(sock))
        if len(doc.get("hits", [])) != k:
            fail("pipelined response %d has %d hits (order broken?)"
                 % (k, len(doc.get("hits", []))))
    sock.close()


def drill_http(port):
    sock = connect(port)
    sock.sendall(b"GET /ping HTTP/1.1\r\nHost: check\r\n\r\n")
    response = b""
    while True:
        chunk = sock.recv(4096)
        if not chunk:
            break
        response += chunk
    sock.close()
    if not response.startswith(b"HTTP/1.1 200"):
        fail("HTTP shim answered %r" % response[:80])
    head, _, body = response.partition(b"\r\n\r\n")
    if b"Connection: close" not in head:
        fail("HTTP response lacks Connection: close")
    doc = json.loads(body)
    if doc.get("ok") is not True:
        fail("HTTP /ping body: %r" % doc)


def drill_robustness(port):
    # Unparseable JSON: answered with ok=false, connection survives.
    sock = connect(port)
    send_frame(sock, "{definitely not json")
    doc = json.loads(recv_frame(sock))
    if doc.get("ok") is not False or "error" not in doc:
        fail("malformed JSON answered %r" % doc)
    expect_ok(round_trip(sock, {"op": "ping"}), "ping")
    sock.close()

    # Unknown verb and out-of-domain arguments: clean errors.
    sock = connect(port)
    for bad in ({"op": "warp"}, {"op": "nearest", "lat": 95, "lon": 0},
                {"op": "nearest", "lat": 0, "lon": 0, "k": 0}):
        doc = round_trip(sock, bad)
        if doc.get("ok") is not False:
            fail("bad request %r accepted: %r" % (bad, doc))
        if doc.get("error", {}).get("code") != "INVALID_ARGUMENT":
            fail("bad request %r answered code %r"
                 % (bad, doc.get("error", {}).get("code")))
    sock.close()

    # Oversized declared length: answered once, then closed.
    sock = connect(port)
    sock.sendall(struct.pack(">I", MAX_FRAME + 1))
    doc = json.loads(recv_frame(sock))
    if doc.get("ok") is not False:
        fail("oversized frame answered %r" % doc)
    try:
        extra = sock.recv(4096)
    except OSError:
        extra = b""
    if extra:
        fail("server kept talking after poisoned stream: %r" % extra[:80])
    sock.close()

    # Truncated frame + disconnect must not wedge the server.
    sock = connect(port)
    sock.sendall(struct.pack(">I", 64) + b"only-part")
    sock.close()
    sock = connect(port)
    expect_ok(round_trip(sock, {"op": "ping"}), "ping")
    sock.close()


def drill_cache_stats_json(cli, tmp):
    cache_dir = os.path.join(tmp, "cache")
    result = subprocess.run(
        [cli, "--cache-dir", cache_dir, "cache", "stats", "--json"],
        capture_output=True, text=True)
    if result.returncode != 0:
        fail("cache stats --json exited %d:\n%s"
             % (result.returncode, result.stderr))
    try:
        doc = json.loads(result.stdout)
    except ValueError as err:
        fail("cache stats --json printed non-JSON (%s): %r"
             % (err, result.stdout[:200]))
    for key in ("entries", "bytes", "quarantined", "dir"):
        if key not in doc:
            fail("cache stats --json lacks %r: %r" % (key, doc))


def main():
    if len(sys.argv) < 2:
        fail("usage: check_serve.py <geonet_cli>")
    cli = sys.argv[1]
    with tempfile.TemporaryDirectory(prefix="geonet_check_serve_") as tmp:
        graph_path = os.path.join(tmp, "topology.geos")
        result = subprocess.run(
            [cli, "generate", "64", graph_path, "7", "--quiet"],
            capture_output=True, text=True)
        if result.returncode != 0:
            fail("generate exited %d\nstderr:\n%s"
                 % (result.returncode, result.stderr))

        process, port = start_server(cli, graph_path, tmp)
        try:
            epoch = drill_data_verbs(port)
            drill_pipelining(port)
            drill_http(port)
            drill_robustness(port)
            drill_cache_stats_json(cli, tmp)

            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=SHUTDOWN_TIMEOUT_S)
            except subprocess.TimeoutExpired:
                process.kill()
                fail("server ignored SIGTERM for %ds" % SHUTDOWN_TIMEOUT_S)
            if process.returncode != 0:
                fail("server exited %d after SIGTERM:\n%s"
                     % (process.returncode, process.stdout.read()))
            output = process.stdout.read()
            if "serve: stopped" not in output:
                fail("no stop summary in server output:\n%s" % output)
        finally:
            if process.poll() is None:
                process.kill()

    print("check_serve: OK (port %d, epoch %s, clean SIGTERM stop)"
          % (port, epoch))


if __name__ == "__main__":
    main()
