#include "exec/thread_pool.h"

#include <cstdlib>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace geonet::exec {

namespace {

thread_local bool t_on_worker = false;

/// Emits one sample of both pool counter tracks when tracing is on.
/// Callers hold the pool mutex; the tracer mutex is a leaf, so the
/// ordering pool-then-tracer is the only one that ever occurs.
void sample_pool_counters(std::size_t pending, std::size_t active) {
  obs::Tracer& tracer = obs::Tracer::global();
  if (!tracer.enabled()) return;
  tracer.record_counter("exec.queue_depth",
                        static_cast<std::int64_t>(pending));
  tracer.record_counter("exec.active_workers",
                        static_cast<std::int64_t>(active));
}

obs::Counter& tasks_metric() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("exec.tasks");
  return c;
}

obs::Counter& steals_metric() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("exec.steals");
  return c;
}

obs::Gauge& queue_depth_metric() {
  static obs::Gauge& g =
      obs::MetricsRegistry::global().gauge("exec.queue_depth");
  return g;
}

/// Global pool storage. The configured size may be set (CLI --threads)
/// before or after the pool first spins up; a size change tears the old
/// pool down once no region is running (run_m_ serialises regions).
std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
std::size_t g_configured_threads = 0;  // 0 = use default_thread_count()

}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads == 0 ? 1 : threads) {
  // Slot threads_-1 is reserved for the thread calling run().
  workers_.reserve(threads_ - 1);
  for (std::size_t slot = 0; slot + 1 < threads_; ++slot) {
    workers_.emplace_back([this, slot] { worker_loop(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker; }

bool ThreadPool::take_chunk(Job& job, std::size_t slot, std::size_t& chunk) {
  if (job.pending == 0) return false;
  auto& own = job.queues[slot];
  if (!own.empty()) {
    chunk = own.front();
    own.pop_front();
    return true;
  }
  // Steal from the fullest other slot, from the back (the chunks its
  // owner would reach last), so owners and thieves rarely contend.
  std::size_t victim = job.queues.size();
  std::size_t victim_depth = 0;
  for (std::size_t s = 0; s < job.queues.size(); ++s) {
    if (s != slot && job.queues[s].size() > victim_depth) {
      victim = s;
      victim_depth = job.queues[s].size();
    }
  }
  if (victim == job.queues.size()) return false;
  chunk = job.queues[victim].back();
  job.queues[victim].pop_back();
  steals_metric().add();
  return true;
}

void ThreadPool::execute_chunk(Job& job, std::size_t chunk,
                               std::unique_lock<std::mutex>& lock) {
  ++job.active;
  --job.pending;
  sample_pool_counters(job.pending, job.active);
  lock.unlock();
  err::Status status;
  const bool was_worker = t_on_worker;
  t_on_worker = true;
  try {
    (*job.fn)(chunk);
  } catch (const ParallelError& e) {
    status = e.status();
  } catch (const std::exception& e) {
    status = err::Status::aborted(e.what());
  } catch (...) {
    status = err::Status::aborted("unknown error in parallel region");
  }
  t_on_worker = was_worker;
  tasks_metric().add();
  lock.lock();
  --job.active;
  sample_pool_counters(job.pending, job.active);
  if (!status.is_ok() && (!job.failed || chunk < job.error_chunk)) {
    job.failed = true;
    job.error_chunk = chunk;
    job.error = std::move(status);
  }
  if (job.pending == 0 && job.active == 0) done_cv_.notify_all();
}

void ThreadPool::worker_loop(std::size_t slot) {
  std::unique_lock<std::mutex> lock(m_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && job_->pending > 0);
    });
    if (stop_) return;
    Job& job = *job_;
    std::size_t chunk = 0;
    if (take_chunk(job, slot, chunk)) execute_chunk(job, chunk, lock);
  }
}

void ThreadPool::run(std::size_t chunks,
                     const std::function<void(std::size_t)>& fn) {
  if (chunks == 0) return;
  // Serial paths: a 1-slot pool, a single chunk, or a nested region on a
  // worker thread. Every chunk still runs (matching the parallel path's
  // error semantics), and the lowest-indexed failure wins.
  if (threads_ == 1 || chunks == 1 || on_worker_thread()) {
    bool failed = false;
    std::size_t error_chunk = 0;
    err::Status error;
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
      try {
        fn(chunk);
      } catch (const ParallelError& e) {
        if (!failed) {
          failed = true;
          error_chunk = chunk;
          error = e.status();
        }
      } catch (const std::exception& e) {
        if (!failed) {
          failed = true;
          error_chunk = chunk;
          error = err::Status::aborted(e.what());
        }
      } catch (...) {
        if (!failed) {
          failed = true;
          error_chunk = chunk;
          error = err::Status::aborted("unknown error in parallel region");
        }
      }
      tasks_metric().add();
    }
    if (failed) throw ParallelError(error_chunk, std::move(error));
    return;
  }

  std::lock_guard<std::mutex> run_guard(run_m_);
  Job job;
  job.fn = &fn;
  job.queues.resize(threads_);
  job.pending = chunks;
  const std::size_t caller_slot = threads_ - 1;
  {
    std::lock_guard<std::mutex> lock(m_);
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
      job.queues[chunk % threads_].push_back(chunk);
    }
    queue_depth_metric().set(static_cast<std::int64_t>(chunks));
    sample_pool_counters(job.pending, job.active);
    job_ = &job;
  }
  work_cv_.notify_all();

  std::unique_lock<std::mutex> lock(m_);
  std::size_t chunk = 0;
  while (take_chunk(job, caller_slot, chunk)) execute_chunk(job, chunk, lock);
  done_cv_.wait(lock, [&] { return job.pending == 0 && job.active == 0; });
  job_ = nullptr;
  queue_depth_metric().set(0);
  lock.unlock();

  if (job.failed) throw ParallelError(job.error_chunk, std::move(job.error));
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("GEONET_THREADS")) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && n > 0) {
      return static_cast<std::size_t>(n);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) {
    const std::size_t n = g_configured_threads != 0 ? g_configured_threads
                                                    : default_thread_count();
    g_pool = std::make_unique<ThreadPool>(n);
  }
  return *g_pool;
}

void ThreadPool::set_global_threads(std::size_t n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_configured_threads = n;
  const std::size_t want = n != 0 ? n : default_thread_count();
  if (g_pool && g_pool->thread_count() != want) g_pool.reset();
}

}  // namespace geonet::exec
