#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "err/status.h"

namespace geonet::exec {

/// Thrown at the join point of a parallel region when one or more chunk
/// bodies threw. Carries the err::Status captured from the lowest-indexed
/// failing chunk, so the error a caller sees does not depend on thread
/// scheduling. Derives from std::runtime_error so the study pipeline's
/// phase-capture harness charges it against the error budget like any
/// other phase failure.
class ParallelError : public std::runtime_error {
 public:
  ParallelError(std::size_t chunk, err::Status status)
      : std::runtime_error("parallel region failed at chunk " +
                           std::to_string(chunk) + ": " + status.message()),
        chunk_(chunk),
        status_(std::move(status)) {}

  [[nodiscard]] std::size_t chunk() const noexcept { return chunk_; }
  [[nodiscard]] const err::Status& status() const noexcept { return status_; }

 private:
  std::size_t chunk_;
  err::Status status_;
};

/// Work-stealing pool of `threads` execution slots: threads-1 worker
/// threads plus the thread that calls run(), which participates instead
/// of blocking idle. A pool of 1 runs everything inline on the caller.
///
/// Scheduling model: run() splits a job into indexed chunks, deals them
/// round-robin across per-slot queues, and every slot first drains its own
/// queue, then steals from the busiest other slot (counted in the
/// `exec.steals` metric). Which thread runs a chunk is scheduling noise by
/// design — deterministic results come from the chunk plan and the
/// chunk-ordered merges in parallel_reduce (see parallel.h), never from
/// execution order.
///
/// Error semantics: every chunk always runs, even after another chunk has
/// failed, so the captured error (lowest failing chunk index) and every
/// per-chunk side effect are identical at any thread count. The failure
/// surfaces at the join as a ParallelError.
///
/// Nesting: a parallel region entered from inside a worker runs inline and
/// serially on that worker; the pool never deadlocks on nested regions.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution slots (worker threads + the calling thread), >= 1.
  [[nodiscard]] std::size_t thread_count() const noexcept { return threads_; }

  /// Runs fn(chunk) for every chunk in [0, chunks), blocking until all
  /// chunks completed. Throws ParallelError if any chunk body threw.
  void run(std::size_t chunks, const std::function<void(std::size_t)>& fn);

  /// True on a thread currently executing a chunk for some ThreadPool.
  [[nodiscard]] static bool on_worker_thread() noexcept;

  /// The lazily-created process-wide pool, sized by set_global_threads()
  /// if called first, else by default_thread_count().
  static ThreadPool& global();

  /// Sets the global pool size (the CLI's --threads). Recreates the pool
  /// if it already exists with a different size; n == 0 resets to the
  /// default. Not safe concurrently with running regions.
  static void set_global_threads(std::size_t n);

  /// GEONET_THREADS when set to a positive integer, else
  /// hardware_concurrency (at least 1).
  [[nodiscard]] static std::size_t default_thread_count();

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::vector<std::deque<std::size_t>> queues;  ///< per-slot, guarded by m_
    std::size_t pending = 0;  ///< queued, not yet taken
    std::size_t active = 0;   ///< currently executing
    bool failed = false;
    std::size_t error_chunk = 0;
    err::Status error;
  };

  void worker_loop(std::size_t slot);
  /// Takes one chunk for `slot` (own queue first, then steals); returns
  /// false when no chunk is queued. Caller must hold m_.
  bool take_chunk(Job& job, std::size_t slot, std::size_t& chunk);
  /// Executes one chunk outside the lock, recording errors and metrics.
  void execute_chunk(Job& job, std::size_t chunk, std::unique_lock<std::mutex>& lock);

  std::size_t threads_;
  std::vector<std::thread> workers_;

  std::mutex m_;
  std::condition_variable work_cv_;  ///< workers: a job has queued chunks
  std::condition_variable done_cv_;  ///< caller: all chunks finished
  Job* job_ = nullptr;
  bool stop_ = false;

  std::mutex run_m_;  ///< serialises concurrent run() callers
};

}  // namespace geonet::exec
