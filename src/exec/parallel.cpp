#include "exec/parallel.h"

#include "obs/trace.h"

namespace geonet::exec {

ChunkPlan plan_chunks(std::size_t n, std::size_t grain,
                      std::size_t max_chunks) {
  ChunkPlan plan;
  plan.n = n;
  if (n == 0) return plan;
  if (grain == 0) grain = 1;
  if (max_chunks == 0) max_chunks = 1;
  // Floor division: every chunk holds at least `grain` items, so tiny
  // inputs collapse to one chunk and skip the pool entirely.
  std::size_t chunks = n / grain;
  if (chunks == 0) chunks = 1;
  if (chunks > max_chunks) chunks = max_chunks;
  plan.chunks = chunks;
  return plan;
}

RegionSpan::RegionSpan(const char* name) : span_(new obs::Span(name)) {
  // Capture the ambient context right after the span opened: it now names
  // this region span as the innermost live span on the calling thread.
  const obs::SpanContext context = obs::current_span_context();
  context_ = {context.span_id, context.depth};
}

RegionSpan::~RegionSpan() { delete static_cast<obs::Span*>(span_); }

ChunkScope::ChunkScope(RegionSpan::Context region, std::size_t chunk,
                       std::size_t range_begin,
                       std::size_t range_end) noexcept
    : impl_(nullptr) {
  if (!obs::Tracer::global().enabled()) return;
  impl_ = new obs::ChunkSpan(obs::SpanContext{region.span_id, region.depth},
                             chunk, range_begin, range_end);
}

ChunkScope::~ChunkScope() { delete static_cast<obs::ChunkSpan*>(impl_); }

}  // namespace geonet::exec
