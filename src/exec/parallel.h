#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "stats/rng.h"

namespace geonet::exec {

/// Deterministic parallel loop primitives.
///
/// The determinism contract (docs/parallelism.md): given the same inputs
/// and seed, a parallel region produces byte-identical results at ANY
/// thread count, including 1. Three rules make that hold:
///
///  1. the chunk plan is a pure function of (n, grain, max_chunks) — it
///     never consults the thread count or the hardware;
///  2. each chunk accumulates into private state, and parallel_reduce
///     merges the per-chunk accumulators in ascending chunk order on the
///     calling thread;
///  3. randomised chunk bodies draw from a substream derived from
///     seed ⊕ chunk_index (chunk_rng), never from a shared stream.
///
/// Which thread executes a chunk, and when, is the only thing the
/// scheduler controls — and nothing observable depends on it.

/// Upper bound on chunks per region. Fixed (never derived from the thread
/// count) so the chunk plan — and therefore per-chunk RNG substreams and
/// merge order — is identical on every machine. 64 chunks keep pools up
/// to ~16 threads busy with work-stealing headroom.
inline constexpr std::size_t kDefaultMaxChunks = 64;

/// Options for one parallel region.
struct RegionOptions {
  /// Span name for tracing; must outlive the call (string literals).
  const char* name = "exec/region";
  /// Minimum items per chunk; below 2*grain the region runs serially.
  std::size_t grain = 1024;
  std::size_t max_chunks = kDefaultMaxChunks;
};

/// Static chunk plan over [0, n): `chunks` ranges of near-equal size
/// (difference at most one item), in index order.
struct ChunkPlan {
  std::size_t n = 0;
  std::size_t chunks = 0;

  [[nodiscard]] std::size_t begin(std::size_t chunk) const noexcept {
    const std::size_t base = n / chunks;
    const std::size_t extra = n % chunks;
    return chunk * base + (chunk < extra ? chunk : extra);
  }
  [[nodiscard]] std::size_t end(std::size_t chunk) const noexcept {
    return begin(chunk + 1);
  }
};

/// Pure function of (n, grain, max_chunks): never consults thread count.
[[nodiscard]] ChunkPlan plan_chunks(std::size_t n, std::size_t grain,
                                    std::size_t max_chunks = kDefaultMaxChunks);

/// Deterministic RNG substream for one chunk: the (seed, chunk) pair
/// fully determines the stream. Uses seed ⊕ chunk_index, decorrelated by
/// Rng's splitmix64 seeding, so chunk 0 of seed s equals Rng(s).
/// (Header-only so geonet_exec itself has no link dependency on
/// geonet_stats, which links back to geonet_exec for its parallel loops.)
[[nodiscard]] inline stats::Rng chunk_rng(std::uint64_t seed,
                                          std::size_t chunk) noexcept {
  return stats::Rng(seed ^ static_cast<std::uint64_t>(chunk));
}

/// Opens a tracing span for a region (internal helper for the templates;
/// defined out of line so parallel.h does not pull in obs headers).
///
/// v2: the span's trace context (id + child depth) is captured at
/// construction — i.e. at submit time, on the calling thread — and handed
/// to every chunk via ChunkScope, which re-establishes it on the worker.
/// That is what keeps pool-executed chunk spans linked to the study phase
/// that submitted them instead of dangling as parentless roots.
class RegionSpan {
 public:
  /// Mirror of obs::SpanContext, kept POD here so this header stays free
  /// of obs includes.
  struct Context {
    std::uint64_t span_id = 0;
    std::uint32_t depth = 0;
  };

  explicit RegionSpan(const char* name);
  ~RegionSpan();
  RegionSpan(const RegionSpan&) = delete;
  RegionSpan& operator=(const RegionSpan&) = delete;

  /// The region span's context as captured at submit time.
  [[nodiscard]] Context context() const noexcept { return context_; }

 private:
  void* span_;  ///< obs::Span*
  Context context_;
};

/// Per-chunk trace scope, constructed on the executing worker: adopts the
/// region's context and emits an `exec/chunk[i]` child event with the
/// chunk index and item range. No-op (and allocation-free) when tracing
/// is disabled, so chunk-granularity regions cost nothing untraced.
class ChunkScope {
 public:
  ChunkScope(RegionSpan::Context region, std::size_t chunk,
             std::size_t range_begin, std::size_t range_end) noexcept;
  ~ChunkScope();
  ChunkScope(const ChunkScope&) = delete;
  ChunkScope& operator=(const ChunkScope&) = delete;

 private:
  void* impl_;  ///< obs::ChunkSpan*, null when tracing is off
};

/// Runs body(begin, end, chunk) over a static partition of [0, n) on the
/// global pool. Chunk bodies must write to disjoint state (e.g. disjoint
/// slices of a pre-sized output vector). Exceptions surface at the join
/// as ParallelError (see ThreadPool).
template <typename Body>
void parallel_for(std::size_t n, const RegionOptions& options, Body&& body) {
  const ChunkPlan plan = plan_chunks(n, options.grain, options.max_chunks);
  if (plan.chunks == 0) return;
  if (plan.chunks == 1) {
    body(static_cast<std::size_t>(0), n, static_cast<std::size_t>(0));
    return;
  }
  const RegionSpan span(options.name);
  const RegionSpan::Context context = span.context();
  ThreadPool::global().run(plan.chunks, [&](std::size_t chunk) {
    const ChunkScope scope(context, chunk, plan.begin(chunk), plan.end(chunk));
    body(plan.begin(chunk), plan.end(chunk), chunk);
  });
}

/// Chunked reduction: one accumulator per chunk (make()), filled by
/// body(acc, begin, end, chunk), merged in ascending chunk order by
/// merge(into, from). The chunk-ordered merge is what keeps
/// floating-point results byte-identical at any thread count.
template <typename Acc, typename Make, typename Body, typename Merge>
Acc parallel_reduce(std::size_t n, const RegionOptions& options, Make&& make,
                    Body&& body, Merge&& merge) {
  const ChunkPlan plan = plan_chunks(n, options.grain, options.max_chunks);
  if (plan.chunks <= 1) {
    Acc acc = make();
    if (plan.chunks == 1) {
      body(acc, static_cast<std::size_t>(0), n, static_cast<std::size_t>(0));
    }
    return acc;
  }
  const RegionSpan span(options.name);
  const RegionSpan::Context context = span.context();
  std::vector<std::optional<Acc>> chunk_accs(plan.chunks);
  ThreadPool::global().run(plan.chunks, [&](std::size_t chunk) {
    const ChunkScope scope(context, chunk, plan.begin(chunk), plan.end(chunk));
    Acc acc = make();
    body(acc, plan.begin(chunk), plan.end(chunk), chunk);
    chunk_accs[chunk].emplace(std::move(acc));
  });
  Acc out = std::move(*chunk_accs[0]);
  for (std::size_t chunk = 1; chunk < plan.chunks; ++chunk) {
    merge(out, std::move(*chunk_accs[chunk]));
  }
  return out;
}

}  // namespace geonet::exec
