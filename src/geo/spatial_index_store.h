#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "err/status.h"
#include "geo/spatial_index.h"
#include "store/bytes.h"
#include "store/snapshot.h"

namespace geonet::geo {

/// GEOS persistence for geo::SpatialIndex — the `SIDX` section. A graph
/// snapshot written by the CLI carries the index of its node locations so
/// warm runs skip the O(n log n) build, and run_study caches a standalone
/// SIDX snapshot per graph digest. Readers that predate SIDX skip the
/// section (unknown-section forward compatibility); readers that know it
/// re-verify the stored order against the canonical sort, so a stale or
/// doctored index can never silently disagree with a fresh build.
///
/// Payload layout (ByteWriter encoding, see docs/storage.md):
///
///   u32  sidx_version        kSpatialIndexFormatVersion
///   u32  leaf_size
///   u64  point_count n
///   f64  lat, f64 lon        x n, original input order
///   u32  order[i]            x n, the canonical Morton permutation
inline constexpr std::uint32_t kSectionSpatialIndex =
    store::fourcc('S', 'I', 'D', 'X');

/// Bumped on any change to the payload layout or to the canonical sort
/// order; mixed into every SIDX cache fingerprint so an upgraded binary
/// never trusts an old index.
inline constexpr std::uint32_t kSpatialIndexFormatVersion = 1;

void encode_spatial_index(store::ByteWriter& out, const SpatialIndex& index);

/// Decodes and fully validates one SIDX payload: version match, bounded
/// lengths, and the stored order being exactly the canonical build order
/// (kDataLoss otherwise).
err::Result<SpatialIndex> decode_spatial_index(store::ByteReader& in);

/// Renders a standalone single-section GEOS snapshot holding the index —
/// the artifact-cache entry shape run_study uses for the warm-index path.
[[nodiscard]] std::vector<std::byte> encode_spatial_index_snapshot(
    const SpatialIndex& index);

/// Parses a snapshot produced by encode_spatial_index_snapshot.
err::Result<SpatialIndex> decode_spatial_index_snapshot(
    std::span<const std::byte> bytes);

}  // namespace geonet::geo
