#include "geo/box_counting.h"

#include <cmath>

#include "geo/grid.h"

namespace geonet::geo {

BoxCount count_boxes(std::span<const GeoPoint> points, const Region& region,
                     double box_arcmin) {
  const Grid grid(region, box_arcmin);
  const auto counts = grid.tally(points);
  std::size_t occupied = 0;
  for (const double c : counts) {
    if (c > 0.0) ++occupied;
  }
  return {box_arcmin, occupied};
}

FractalDimension box_counting_dimension(std::span<const GeoPoint> points,
                                        const Region& region,
                                        double min_arcmin, double max_arcmin,
                                        std::size_t scales) {
  FractalDimension result;
  if (scales < 2 || !(min_arcmin > 0.0) || !(max_arcmin > min_arcmin)) {
    return result;
  }

  const double ratio = std::pow(max_arcmin / min_arcmin,
                                1.0 / static_cast<double>(scales - 1));
  std::vector<double> log_inv_eps;
  std::vector<double> log_n;
  double eps = min_arcmin;
  for (std::size_t i = 0; i < scales; ++i, eps *= ratio) {
    const BoxCount bc = count_boxes(points, region, eps);
    result.sweep.push_back(bc);
    if (bc.occupied_boxes > 0) {
      log_inv_eps.push_back(std::log10(1.0 / bc.box_arcmin));
      log_n.push_back(std::log10(static_cast<double>(bc.occupied_boxes)));
    }
  }

  result.fit = stats::fit_line(log_inv_eps, log_n);
  result.dimension = result.fit.slope;
  return result;
}

}  // namespace geonet::geo
