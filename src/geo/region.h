#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "geo/geo_point.h"

namespace geonet::geo {

/// A named latitude/longitude bounding box.
///
/// The paper delineates all study regions with simple lat/lon boundaries
/// (Table II) and notes that region names are therefore approximate. Boxes
/// here never cross the International Date Line, matching the paper's
/// regions.
struct Region {
  std::string name;
  double south_deg = 0.0;  ///< inclusive
  double north_deg = 0.0;  ///< exclusive upper edge
  double west_deg = 0.0;   ///< inclusive
  double east_deg = 0.0;   ///< exclusive upper edge

  [[nodiscard]] bool contains(const GeoPoint& p) const noexcept {
    return p.lat_deg >= south_deg && p.lat_deg < north_deg &&
           p.lon_deg >= west_deg && p.lon_deg < east_deg;
  }

  [[nodiscard]] double lat_span_deg() const noexcept {
    return north_deg - south_deg;
  }
  [[nodiscard]] double lon_span_deg() const noexcept {
    return east_deg - west_deg;
  }

  /// Geometric centre of the box.
  [[nodiscard]] GeoPoint center() const noexcept {
    return {0.5 * (south_deg + north_deg), 0.5 * (west_deg + east_deg)};
  }

  /// Great-circle distance between opposite corners, an upper bound on any
  /// intra-region distance; used to size distance-preference histograms.
  [[nodiscard]] double diagonal_miles() const noexcept;

  /// Approximate surface area of the box in square miles (exact for a
  /// spherical Earth: R^2 * dlon * (sin(north) - sin(south))).
  [[nodiscard]] double area_sq_miles() const noexcept;
};

/// The paper's study regions and reference boxes.
namespace regions {

/// Table II rows.
Region us();      ///< 25N..50N, 150W..45W
Region europe();  ///< 42N..58N, 5W..22E
Region japan();   ///< 30N..60N, 130E..150E

/// Figure 3 homogeneity-test subregions.
Region northern_us();      ///< upper half of the US box
Region southern_us();      ///< lower half of the US box
Region central_america();  ///< "Mexico"/Central America comparison box

/// Table III world economic regions.
Region africa();
Region south_america();
Region mexico();
Region western_europe();
Region australia();
Region world();

/// The three Table II regions, in the paper's order (US, Europe, Japan).
std::vector<Region> paper_study_regions();

/// All Table III rows except World, in the paper's order.
std::vector<Region> economic_regions();

/// Every named region (study, homogeneity and economic boxes plus
/// World), in a stable order — the domain of by_name().
std::vector<Region> all();

/// Looks a region up by its canonical name (case sensitive).
std::optional<Region> by_name(std::string_view name);

}  // namespace regions

}  // namespace geonet::geo
