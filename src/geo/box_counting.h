#pragma once

#include <span>
#include <vector>

#include "geo/geo_point.h"
#include "geo/region.h"
#include "stats/linear_fit.h"

namespace geonet::geo {

/// One scale of a box-counting sweep.
struct BoxCount {
  double box_arcmin = 0.0;        ///< box edge length at this scale
  std::size_t occupied_boxes = 0; ///< boxes containing >= 1 point
};

/// Result of a box-counting fractal-dimension estimate.
///
/// Yook, Jeong and Barabasi reported a fractal dimension of ~1.5 for
/// routers, ASes and population density; the paper states its datasets
/// confirm this via the box-counting method. dimension is the slope of
/// log N(eps) versus log (1/eps).
struct FractalDimension {
  double dimension = 0.0;
  stats::LinearFit fit;           ///< underlying log-log fit
  std::vector<BoxCount> sweep;    ///< per-scale occupied-box counts
};

/// Counts occupied boxes of the given edge length over the region.
BoxCount count_boxes(std::span<const GeoPoint> points, const Region& region,
                     double box_arcmin);

/// Estimates the box-counting dimension by sweeping box sizes
/// geometrically from `min_arcmin` to `max_arcmin` over `scales` steps.
FractalDimension box_counting_dimension(std::span<const GeoPoint> points,
                                        const Region& region,
                                        double min_arcmin = 15.0,
                                        double max_arcmin = 960.0,
                                        std::size_t scales = 7);

}  // namespace geonet::geo
