#pragma once

#include "geo/geo_point.h"

namespace geonet::geo {

/// Mean Earth radius. The paper reports all lengths in statute miles;
/// we follow suit everywhere (Tables V and VI, Figures 4-6).
constexpr double kEarthRadiusMiles = 3958.7613;
constexpr double kEarthRadiusKm = 6371.0088;

/// Great-circle distance between two points, in statute miles (haversine).
[[nodiscard]] double great_circle_miles(const GeoPoint& a,
                                        const GeoPoint& b) noexcept;

/// Great-circle distance in kilometres.
[[nodiscard]] double great_circle_km(const GeoPoint& a,
                                     const GeoPoint& b) noexcept;

/// Initial bearing from a to b, degrees clockwise from north in [0, 360).
[[nodiscard]] double initial_bearing_deg(const GeoPoint& a,
                                         const GeoPoint& b) noexcept;

/// Destination point reached travelling `distance_miles` from `start` along
/// the given initial bearing. Used to scatter synthetic routers around city
/// centres without distorting distances at high latitude.
[[nodiscard]] GeoPoint destination_point(const GeoPoint& start,
                                         double bearing_deg,
                                         double distance_miles) noexcept;

/// Miles subtended by one degree of longitude at the given latitude.
[[nodiscard]] double miles_per_lon_degree(double lat_deg) noexcept;

/// Miles subtended by one degree of latitude (constant on a sphere).
[[nodiscard]] double miles_per_lat_degree() noexcept;

/// One-way propagation latency in milliseconds over a great-circle fibre
/// path of the given length, assuming light at ~2/3 c in fibre and a
/// route-circuity factor (paths are not laid along geodesics).
[[nodiscard]] double fiber_latency_ms(double distance_miles,
                                      double circuity = 1.5) noexcept;

}  // namespace geonet::geo
