#pragma once

#include <span>
#include <vector>

#include "geo/projection.h"

namespace geonet::geo {

/// Convex hull of a planar point set (Andrew's monotone chain, O(n log n)).
///
/// Returns the hull vertices in counter-clockwise order without repeating
/// the first vertex. Degenerate inputs return what is available: empty for
/// no points, one vertex for coincident points, two for collinear sets.
std::vector<PlanarPoint> convex_hull(std::span<const PlanarPoint> points);

/// Signed area of a simple polygon (shoelace); positive when the vertices
/// wind counter-clockwise.
[[nodiscard]] double polygon_signed_area(std::span<const PlanarPoint> polygon) noexcept;

/// Absolute polygon area; 0 for fewer than three vertices.
[[nodiscard]] double polygon_area(std::span<const PlanarPoint> polygon) noexcept;

/// Area of the convex hull of a set of geographic points after projecting
/// with the given Albers projection, in square miles. This is exactly the
/// paper's Section VI.B measure of the geographic extent of an AS.
[[nodiscard]] double hull_area_sq_miles(std::span<const GeoPoint> points,
                                        const AlbersProjection& projection);

/// True iff the query point lies inside or on the boundary of a convex
/// polygon given in counter-clockwise order.
[[nodiscard]] bool point_in_convex_polygon(const PlanarPoint& query,
                                           std::span<const PlanarPoint> hull) noexcept;

}  // namespace geonet::geo
