#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "geo/geo_point.h"
#include "geo/region.h"

namespace geonet::geo {

/// Row/column address of a grid cell. Row 0 is the southern edge, column 0
/// the western edge.
struct CellIndex {
  std::size_t row = 0;
  std::size_t col = 0;

  friend bool operator==(const CellIndex&, const CellIndex&) = default;
};

/// A regular latitude/longitude grid over a region.
///
/// Section IV of the paper subdivides each study region into patches of
/// 75 arc-minutes square; this grid is that subdivision (and, at finer
/// resolutions, the cell structure used by the population raster and the
/// grid-accelerated pair counter).
class Grid {
 public:
  /// Requires cell_arcmin > 0. The final row/column absorbs any remainder
  /// so the grid exactly covers the region.
  Grid(Region region, double cell_arcmin);

  [[nodiscard]] const Region& region() const noexcept { return region_; }
  [[nodiscard]] double cell_arcmin() const noexcept { return cell_arcmin_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t cell_count() const noexcept { return rows_ * cols_; }

  /// Cell containing the point, or nullopt if outside the region.
  [[nodiscard]] std::optional<CellIndex> cell_of(const GeoPoint& p) const noexcept;

  /// Flattened row-major index.
  [[nodiscard]] std::size_t flat_index(const CellIndex& c) const noexcept {
    return c.row * cols_ + c.col;
  }
  [[nodiscard]] CellIndex unflatten(std::size_t flat) const noexcept {
    return {flat / cols_, flat % cols_};
  }

  /// Geographic centre of a cell.
  [[nodiscard]] GeoPoint cell_center(const CellIndex& c) const noexcept;

  /// Bounding box of a cell (clipped to the region).
  [[nodiscard]] Region cell_bounds(const CellIndex& c) const noexcept;

  /// Longest distance between any two points of one cell, in miles; bounds
  /// the positional error of centre-of-cell approximations.
  [[nodiscard]] double max_cell_diagonal_miles() const noexcept;

  /// Tallies points into flat cell counts; points outside are ignored and
  /// their number returned through dropped (if non-null).
  [[nodiscard]] std::vector<double> tally(std::span<const GeoPoint> points,
                                          std::size_t* dropped = nullptr) const;

 private:
  Region region_;
  double cell_arcmin_;
  double cell_deg_;
  std::size_t rows_;
  std::size_t cols_;
};

}  // namespace geonet::geo
