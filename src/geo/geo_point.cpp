#include "geo/geo_point.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace geonet::geo {

bool is_valid(const GeoPoint& p) noexcept {
  return std::isfinite(p.lat_deg) && std::isfinite(p.lon_deg) &&
         p.lat_deg >= -90.0 && p.lat_deg <= 90.0 && p.lon_deg >= -180.0 &&
         p.lon_deg <= 180.0;
}

GeoPoint normalized(const GeoPoint& p) noexcept {
  GeoPoint out = p;
  out.lat_deg = std::clamp(out.lat_deg, -90.0, 90.0);
  out.lon_deg = std::fmod(out.lon_deg + 180.0, 360.0);
  if (out.lon_deg < 0.0) out.lon_deg += 360.0;
  out.lon_deg -= 180.0;
  return out;
}

std::string to_string(const GeoPoint& p) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f%c %.2f%c", std::fabs(p.lat_deg),
                p.lat_deg >= 0.0 ? 'N' : 'S', std::fabs(p.lon_deg),
                p.lon_deg >= 0.0 ? 'E' : 'W');
  return buf;
}

std::uint64_t quantized_key(const GeoPoint& p, double quantum_deg) noexcept {
  const GeoPoint q = normalized(p);
  const auto lat = static_cast<std::int64_t>(std::llround(q.lat_deg / quantum_deg));
  const auto lon = static_cast<std::int64_t>(std::llround(q.lon_deg / quantum_deg));
  const auto ulat = static_cast<std::uint64_t>(lat + (1LL << 30));
  const auto ulon = static_cast<std::uint64_t>(lon + (1LL << 30));
  return (ulat << 32) | (ulon & 0xffffffffULL);
}

}  // namespace geonet::geo
