#include "geo/spatial_index.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "geo/distance.h"

namespace geonet::geo {

namespace {

/// Spreads the low 32 bits of x to the even bit positions of a 64-bit
/// word (the standard Morton interleave half).
std::uint64_t part1by1(std::uint64_t x) noexcept {
  x &= 0xffffffffULL;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

/// Maps v in [lo, hi] onto the full 32-bit range; clamps outside values
/// (and NaN) so every input gets some cell.
std::uint32_t quantize_unit(double v, double lo, double hi) noexcept {
  double t = (v - lo) / (hi - lo);
  if (!(t > 0.0)) t = 0.0;
  if (t > 1.0) t = 1.0;
  return static_cast<std::uint32_t>(t * 4294967295.0);
}

std::uint64_t morton_code(const GeoPoint& p) noexcept {
  const std::uint64_t qlat = quantize_unit(p.lat_deg, -90.0, 90.0);
  const std::uint64_t qlon = quantize_unit(p.lon_deg, -180.0, 180.0);
  return (part1by1(qlat) << 1) | part1by1(qlon);
}

/// Total order over doubles matching < on ordinary values (and ordering
/// -0 before +0, NaNs last by bit pattern). Using this instead of raw
/// double comparison keeps the sort comparator a strict total order for
/// any input bits — no UB risk, and the node order stays a pure function
/// of the coordinate bit patterns.
std::uint64_t total_order_key(double v) noexcept {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  return (bits & 0x8000000000000000ULL) != 0 ? ~bits
                                             : bits | 0x8000000000000000ULL;
}

/// The canonical sort order: (morton, lat, lon, original index). The id
/// tie-break makes it a total order, so the sorted permutation is unique
/// — the property from_sorted() verifies on the warm path.
bool canonical_less(const std::vector<std::uint64_t>& morton,
                    const std::vector<GeoPoint>& points, std::uint32_t a,
                    std::uint32_t b) noexcept {
  if (morton[a] != morton[b]) return morton[a] < morton[b];
  const std::uint64_t la = total_order_key(points[a].lat_deg);
  const std::uint64_t lb = total_order_key(points[b].lat_deg);
  if (la != lb) return la < lb;
  const std::uint64_t na = total_order_key(points[a].lon_deg);
  const std::uint64_t nb = total_order_key(points[b].lon_deg);
  if (na != nb) return na < nb;
  return a < b;
}

std::vector<std::uint64_t> morton_codes(const std::vector<GeoPoint>& points) {
  std::vector<std::uint64_t> codes(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    codes[i] = morton_code(points[i]);
  }
  return codes;
}

/// Minimum |cos(lat)| over the box's latitude span. Latitudes live in
/// [-90, 90] where cos is concave and non-negative, so the minimum sits
/// at whichever edge is farther from the equator.
double min_cos_lat(const SpatialIndex::BoundingBox& box) noexcept {
  const double c = std::min(std::cos(deg_to_rad(box.min_lat)),
                            std::cos(deg_to_rad(box.max_lat)));
  return std::max(0.0, c);
}

}  // namespace

SpatialIndex SpatialIndex::build(std::span<const GeoPoint> points,
                                 const Options& options) {
  if (points.size() >= 0xfffffffeULL) {
    throw std::invalid_argument("SpatialIndex: too many points");
  }
  SpatialIndex index;
  index.leaf_size_ = std::max<std::size_t>(1, options.leaf_size);
  index.points_.assign(points.begin(), points.end());
  index.order_.resize(points.size());
  std::iota(index.order_.begin(), index.order_.end(), 0u);
  const auto morton = morton_codes(index.points_);
  std::sort(index.order_.begin(), index.order_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return canonical_less(morton, index.points_, a, b);
            });
  index.build_tree();
  return index;
}

std::optional<SpatialIndex> SpatialIndex::from_sorted(
    std::vector<GeoPoint> points, std::vector<std::uint32_t> order,
    const Options& options) {
  if (points.size() >= 0xfffffffeULL) return std::nullopt;
  if (order.size() != points.size()) return std::nullopt;
  const auto n = static_cast<std::uint32_t>(points.size());
  for (const std::uint32_t id : order) {
    if (id >= n) return std::nullopt;
  }
  // Strictly ascending under the canonical total order implies the
  // entries are distinct — hence a permutation — and equal to build()'s
  // unique sorted output.
  const auto morton = morton_codes(points);
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (!canonical_less(morton, points, order[i - 1], order[i])) {
      return std::nullopt;
    }
  }
  SpatialIndex index;
  index.leaf_size_ = std::max<std::size_t>(1, options.leaf_size);
  index.points_ = std::move(points);
  index.order_ = std::move(order);
  index.build_tree();
  return index;
}

void SpatialIndex::build_tree() {
  nodes_.clear();
  leaves_.clear();
  if (points_.empty()) return;
  nodes_.reserve(2 * (points_.size() / leaf_size_ + 1));
  build_node(0, static_cast<std::uint32_t>(points_.size()));
}

std::uint32_t SpatialIndex::build_node(std::uint32_t begin,
                                       std::uint32_t end) {
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{begin, end, kNoChild, kNoChild, {}});
  if (end - begin > leaf_size_) {
    const std::uint32_t mid = begin + (end - begin) / 2;
    const std::uint32_t left = build_node(begin, mid);
    const std::uint32_t right = build_node(mid, end);
    Node& n = nodes_[index];
    n.left = left;
    n.right = right;
    const BoundingBox& lb = nodes_[left].box;
    const BoundingBox& rb = nodes_[right].box;
    n.box.min_lat = std::min(lb.min_lat, rb.min_lat);
    n.box.max_lat = std::max(lb.max_lat, rb.max_lat);
    n.box.min_lon = std::min(lb.min_lon, rb.min_lon);
    n.box.max_lon = std::max(lb.max_lon, rb.max_lon);
  } else {
    Node& n = nodes_[index];
    const GeoPoint& first = points_[order_[begin]];
    n.box = BoundingBox{first.lat_deg, first.lat_deg, first.lon_deg,
                        first.lon_deg};
    for (std::uint32_t i = begin + 1; i < end; ++i) {
      const GeoPoint& p = points_[order_[i]];
      n.box.min_lat = std::min(n.box.min_lat, p.lat_deg);
      n.box.max_lat = std::max(n.box.max_lat, p.lat_deg);
      n.box.min_lon = std::min(n.box.min_lon, p.lon_deg);
      n.box.max_lon = std::max(n.box.max_lon, p.lon_deg);
    }
    leaves_.push_back(index);
  }
  return index;
}

double SpatialIndex::min_distance_miles_lower_bound(
    const BoundingBox& a, const BoundingBox& b) noexcept {
  const double lat_gap =
      std::max(0.0, std::max(a.min_lat - b.max_lat, b.min_lat - a.max_lat));
  double lon_gap = 0.0;
  if (a.min_lon > b.max_lon || b.min_lon > a.max_lon) {
    const double direct =
        std::max(a.min_lon - b.max_lon, b.min_lon - a.max_lon);
    // The two boxes can also face each other across the antimeridian.
    const double wrap = 360.0 - (std::max(a.max_lon, b.max_lon) -
                                 std::min(a.min_lon, b.min_lon));
    lon_gap = std::min(direct, std::max(0.0, wrap));
    if (lon_gap > 180.0) lon_gap = 360.0 - lon_gap;
  }
  const double sin_lat = std::sin(0.5 * deg_to_rad(lat_gap));
  const double sin_lon = std::sin(0.5 * deg_to_rad(lon_gap));
  const double h = sin_lat * sin_lat +
                   min_cos_lat(a) * min_cos_lat(b) * sin_lon * sin_lon;
  const double sigma = 2.0 * std::asin(std::min(1.0, std::sqrt(h)));
  const double bound = kEarthRadiusMiles * sigma;
  // Safety slack: ~1e-9 relative + 1e-6 miles absolute, orders of
  // magnitude above libm's per-call error, so the bound can never
  // exceed a distance great_circle_miles would actually report.
  return std::max(0.0, bound * (1.0 - 1e-9) - 1e-6);
}

namespace {

/// (distance, id) ascending — the total order every query result uses.
bool neighbor_less(const SpatialIndex::Neighbor& x,
                   const SpatialIndex::Neighbor& y) noexcept {
  if (x.distance_miles != y.distance_miles) {
    return x.distance_miles < y.distance_miles;
  }
  return x.id < y.id;
}

}  // namespace

std::vector<SpatialIndex::Neighbor> SpatialIndex::nearest(
    const GeoPoint& query, std::size_t k) const {
  std::vector<Neighbor> best;  // max-heap: worst of the k best on top
  if (k == 0 || empty()) return best;
  const BoundingBox qbox{query.lat_deg, query.lat_deg, query.lon_deg,
                         query.lon_deg};
  auto descend = [&](auto&& self, std::uint32_t node_index) -> void {
    const Node& n = nodes_[node_index];
    if (best.size() == k) {
      // Prune on strict >: a subtree at exactly the worst distance can
      // still hold an equal-distance point with a smaller id.
      if (min_distance_miles_lower_bound(qbox, n.box) >
          best.front().distance_miles) {
        return;
      }
    }
    if (n.left == kNoChild) {
      for (std::uint32_t i = n.begin; i < n.end; ++i) {
        const std::uint32_t id = order_[i];
        const Neighbor cand{id, great_circle_miles(query, points_[id])};
        if (best.size() < k) {
          best.push_back(cand);
          std::push_heap(best.begin(), best.end(), neighbor_less);
        } else if (neighbor_less(cand, best.front())) {
          std::pop_heap(best.begin(), best.end(), neighbor_less);
          best.back() = cand;
          std::push_heap(best.begin(), best.end(), neighbor_less);
        }
      }
      return;
    }
    // Nearer child first so the heap tightens before the far side.
    const double lb_left =
        min_distance_miles_lower_bound(qbox, nodes_[n.left].box);
    const double lb_right =
        min_distance_miles_lower_bound(qbox, nodes_[n.right].box);
    if (lb_right < lb_left) {
      self(self, n.right);
      self(self, n.left);
    } else {
      self(self, n.left);
      self(self, n.right);
    }
  };
  descend(descend, 0);
  std::sort(best.begin(), best.end(), neighbor_less);
  return best;
}

std::vector<SpatialIndex::Neighbor> SpatialIndex::within_radius(
    const GeoPoint& query, double radius_miles) const {
  std::vector<Neighbor> hits;
  if (empty() || !(radius_miles >= 0.0)) return hits;
  const BoundingBox qbox{query.lat_deg, query.lat_deg, query.lon_deg,
                         query.lon_deg};
  auto descend = [&](auto&& self, std::uint32_t node_index) -> void {
    const Node& n = nodes_[node_index];
    if (min_distance_miles_lower_bound(qbox, n.box) > radius_miles) return;
    if (n.left == kNoChild) {
      for (std::uint32_t i = n.begin; i < n.end; ++i) {
        const std::uint32_t id = order_[i];
        const double d = great_circle_miles(query, points_[id]);
        if (d <= radius_miles) hits.push_back(Neighbor{id, d});
      }
      return;
    }
    self(self, n.left);
    self(self, n.right);
  };
  descend(descend, 0);
  std::sort(hits.begin(), hits.end(), neighbor_less);
  return hits;
}

std::vector<SpatialIndex::Neighbor> SpatialIndex::within_radius_km(
    const GeoPoint& query, double radius_km) const {
  return within_radius(query, radius_km * (kEarthRadiusMiles / kEarthRadiusKm));
}

std::vector<std::uint32_t> SpatialIndex::in_region(
    const Region& region) const {
  std::vector<std::uint32_t> ids;
  const auto mask = region_mask(region);
  for (std::uint32_t id = 0; id < mask.size(); ++id) {
    if (mask[id] != 0) ids.push_back(id);
  }
  return ids;
}

std::vector<std::uint8_t> SpatialIndex::region_mask(
    const Region& region) const {
  std::vector<std::uint8_t> mask(points_.size(), 0);
  if (empty()) return mask;
  auto descend = [&](auto&& self, std::uint32_t node_index) -> void {
    const Node& n = nodes_[node_index];
    const BoundingBox& box = n.box;
    // Disjoint under the half-open contains() contract.
    if (box.max_lat < region.south_deg || box.min_lat >= region.north_deg ||
        box.max_lon < region.west_deg || box.min_lon >= region.east_deg) {
      return;
    }
    // Fully inside: every point passes the same four comparisons.
    if (box.min_lat >= region.south_deg && box.max_lat < region.north_deg &&
        box.min_lon >= region.west_deg && box.max_lon < region.east_deg) {
      for (std::uint32_t i = n.begin; i < n.end; ++i) mask[order_[i]] = 1;
      return;
    }
    if (n.left == kNoChild) {
      for (std::uint32_t i = n.begin; i < n.end; ++i) {
        const std::uint32_t id = order_[i];
        if (region.contains(points_[id])) mask[id] = 1;
      }
      return;
    }
    self(self, n.left);
    self(self, n.right);
  };
  descend(descend, 0);
  return mask;
}

std::vector<double> SpatialIndex::tally(const Grid& grid,
                                        std::size_t* dropped) const {
  std::vector<double> counts(grid.cell_count(), 0.0);
  std::size_t inside = 0;
  if (!empty()) {
    const Region& region = grid.region();
    // Grid::cell_of admits the global upper edges (lat 90 / lon 180), so
    // the prune must not cut boxes touching them; see Grid::cell_of.
    const double inf = std::numeric_limits<double>::infinity();
    const double north_cut = region.north_deg == 90.0 ? inf : region.north_deg;
    const double east_cut = region.east_deg == 180.0 ? inf : region.east_deg;
    auto descend = [&](auto&& self, std::uint32_t node_index) -> void {
      const Node& n = nodes_[node_index];
      const BoundingBox& box = n.box;
      if (box.max_lat < region.south_deg || box.min_lat >= north_cut ||
          box.max_lon < region.west_deg || box.min_lon >= east_cut) {
        return;
      }
      if (n.left == kNoChild) {
        for (std::uint32_t i = n.begin; i < n.end; ++i) {
          if (const auto cell = grid.cell_of(points_[order_[i]])) {
            counts[grid.flat_index(*cell)] += 1.0;
            ++inside;
          }
        }
        return;
      }
      self(self, n.left);
      self(self, n.right);
    };
    descend(descend, 0);
  }
  if (dropped != nullptr) *dropped = points_.size() - inside;
  return counts;
}

}  // namespace geonet::geo
