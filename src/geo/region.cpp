#include "geo/region.h"

#include <cmath>

#include "geo/distance.h"

namespace geonet::geo {

double Region::diagonal_miles() const noexcept {
  return great_circle_miles({south_deg, west_deg}, {north_deg, east_deg});
}

double Region::area_sq_miles() const noexcept {
  const double dlon_rad = deg_to_rad(lon_span_deg());
  const double band = std::sin(deg_to_rad(north_deg)) -
                      std::sin(deg_to_rad(south_deg));
  return kEarthRadiusMiles * kEarthRadiusMiles * dlon_rad * band;
}

namespace regions {

Region us() { return {"US", 25.0, 50.0, -150.0, -45.0}; }
Region europe() { return {"Europe", 42.0, 58.0, -5.0, 22.0}; }
Region japan() { return {"Japan", 30.0, 60.0, 130.0, 150.0}; }

Region northern_us() { return {"Northern US", 37.5, 50.0, -150.0, -45.0}; }
Region southern_us() { return {"Southern US", 25.0, 37.5, -150.0, -45.0}; }
Region central_america() { return {"Central Am.", 7.0, 25.0, -118.0, -77.0}; }

Region africa() { return {"Africa", -35.0, 37.0, -18.0, 52.0}; }
Region south_america() { return {"South America", -56.0, 12.0, -82.0, -34.0}; }
Region mexico() { return {"Mexico", 7.0, 25.0, -118.0, -77.0}; }
Region western_europe() { return {"W. Europe", 36.0, 60.0, -10.0, 22.0}; }
Region australia() { return {"Australia", -45.0, -10.0, 112.0, 155.0}; }
Region world() { return {"World", -90.0, 90.0, -180.0, 180.0}; }

std::vector<Region> paper_study_regions() {
  return {us(), europe(), japan()};
}

std::vector<Region> economic_regions() {
  return {africa(), south_america(), mexico(),     western_europe(),
          japan(),  australia(),     us()};
}

std::vector<Region> all() {
  return {us(),          europe(),        japan(),
          northern_us(), southern_us(),   central_america(),
          africa(),      south_america(), mexico(),
          western_europe(), australia(),  world()};
}

std::optional<Region> by_name(std::string_view name) {
  static const std::vector<Region> known = all();
  for (const auto& r : known) {
    if (r.name == name) return r;
  }
  return std::nullopt;
}

}  // namespace regions

}  // namespace geonet::geo
