#include "geo/distance.h"

#include <algorithm>
#include <cmath>

namespace geonet::geo {

namespace {

double haversine_central_angle(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double sin_dlat = std::sin(0.5 * dlat);
  const double sin_dlon = std::sin(0.5 * dlon);
  const double h = sin_dlat * sin_dlat +
                   std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  return 2.0 * std::asin(std::min(1.0, std::sqrt(h)));
}

}  // namespace

double great_circle_miles(const GeoPoint& a, const GeoPoint& b) noexcept {
  return kEarthRadiusMiles * haversine_central_angle(a, b);
}

double great_circle_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  return kEarthRadiusKm * haversine_central_angle(a, b);
}

double initial_bearing_deg(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) -
                   std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  double bearing = rad_to_deg(std::atan2(y, x));
  if (bearing < 0.0) bearing += 360.0;
  return bearing;
}

GeoPoint destination_point(const GeoPoint& start, double bearing_deg,
                           double distance_miles) noexcept {
  const double delta = distance_miles / kEarthRadiusMiles;
  const double theta = deg_to_rad(bearing_deg);
  const double lat1 = deg_to_rad(start.lat_deg);
  const double lon1 = deg_to_rad(start.lon_deg);

  const double sin_lat2 = std::sin(lat1) * std::cos(delta) +
                          std::cos(lat1) * std::sin(delta) * std::cos(theta);
  const double lat2 = std::asin(std::clamp(sin_lat2, -1.0, 1.0));
  const double y = std::sin(theta) * std::sin(delta) * std::cos(lat1);
  const double x = std::cos(delta) - std::sin(lat1) * sin_lat2;
  const double lon2 = lon1 + std::atan2(y, x);

  return normalized({rad_to_deg(lat2), rad_to_deg(lon2)});
}

double miles_per_lat_degree() noexcept {
  return kEarthRadiusMiles * kDegToRad;
}

double miles_per_lon_degree(double lat_deg) noexcept {
  return kEarthRadiusMiles * kDegToRad * std::cos(deg_to_rad(lat_deg));
}

double fiber_latency_ms(double distance_miles, double circuity) noexcept {
  constexpr double kMilesPerMs = 186.282 * 2.0 / 3.0;  // ~2/3 c in fibre
  return circuity * distance_miles / kMilesPerMs;
}

}  // namespace geonet::geo
