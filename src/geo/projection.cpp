#include "geo/projection.h"

#include <cmath>

#include "geo/distance.h"

namespace geonet::geo {

AlbersProjection::AlbersProjection(double std_parallel1_deg,
                                   double std_parallel2_deg,
                                   double origin_lat_deg,
                                   double origin_lon_deg) noexcept {
  const double phi1 = deg_to_rad(std_parallel1_deg);
  const double phi2 = deg_to_rad(std_parallel2_deg);
  const double phi0 = deg_to_rad(origin_lat_deg);
  origin_lon_rad_ = deg_to_rad(origin_lon_deg);

  if (std::fabs(phi1 - phi2) < 1e-12) {
    n_ = std::sin(phi1);
  } else {
    n_ = 0.5 * (std::sin(phi1) + std::sin(phi2));
  }
  // Degenerate parallels straddling the equator symmetrically would give
  // n = 0 (a cylindrical limit); nudge to keep the cone well defined.
  if (std::fabs(n_) < 1e-9) n_ = 1e-9;

  c_ = std::cos(phi1) * std::cos(phi1) + 2.0 * n_ * std::sin(phi1);
  rho0_ = kEarthRadiusMiles *
          std::sqrt(std::max(0.0, c_ - 2.0 * n_ * std::sin(phi0))) / n_;
}

AlbersProjection AlbersProjection::for_region(const Region& region) noexcept {
  const double span = region.lat_span_deg();
  const double p1 = region.south_deg + span / 6.0;
  const double p2 = region.north_deg - span / 6.0;
  const GeoPoint c = region.center();
  return AlbersProjection(p1, p2, c.lat_deg, c.lon_deg);
}

AlbersProjection AlbersProjection::world() noexcept {
  return AlbersProjection(20.0, 50.0, 0.0, 0.0);
}

PlanarPoint AlbersProjection::project(const GeoPoint& p) const noexcept {
  const double phi = deg_to_rad(p.lat_deg);
  const double lam = deg_to_rad(p.lon_deg);
  const double rho = kEarthRadiusMiles *
                     std::sqrt(std::max(0.0, c_ - 2.0 * n_ * std::sin(phi))) /
                     n_;
  const double theta = n_ * (lam - origin_lon_rad_);
  return {rho * std::sin(theta), rho0_ - rho * std::cos(theta)};
}

}  // namespace geonet::geo
