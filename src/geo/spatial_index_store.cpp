#include "geo/spatial_index_store.h"

#include <utility>

namespace geonet::geo {

void encode_spatial_index(store::ByteWriter& out, const SpatialIndex& index) {
  out.u32(kSpatialIndexFormatVersion);
  out.u32(static_cast<std::uint32_t>(index.leaf_size()));
  out.u64(index.size());
  for (const GeoPoint& p : index.points()) {
    out.f64(p.lat_deg);
    out.f64(p.lon_deg);
  }
  for (const std::uint32_t id : index.order()) {
    out.u32(id);
  }
}

err::Result<SpatialIndex> decode_spatial_index(store::ByteReader& in) {
  const std::uint32_t version = in.u32();
  if (!in.ok()) {
    return err::Status::data_loss("SIDX: truncated header");
  }
  if (version != kSpatialIndexFormatVersion) {
    return err::Status::invalid_argument("SIDX: unsupported format version " +
                                         std::to_string(version));
  }
  const std::uint32_t leaf_size = in.u32();
  const std::uint64_t n = in.u64();
  if (!in.ok() || leaf_size == 0) {
    return err::Status::data_loss("SIDX: malformed header");
  }
  // Bound the allocation by the remaining input before trusting n.
  if (n > in.remaining() / 20) {
    return err::Status::data_loss("SIDX: point count exceeds payload");
  }
  std::vector<GeoPoint> points(static_cast<std::size_t>(n));
  for (auto& p : points) {
    p.lat_deg = in.f64();
    p.lon_deg = in.f64();
  }
  std::vector<std::uint32_t> order(static_cast<std::size_t>(n));
  for (auto& id : order) {
    id = in.u32();
  }
  if (!in.ok() || in.remaining() != 0) {
    return err::Status::data_loss("SIDX: truncated or oversized payload");
  }
  auto index = SpatialIndex::from_sorted(
      std::move(points), std::move(order),
      SpatialIndex::Options{static_cast<std::size_t>(leaf_size)});
  if (!index.has_value()) {
    return err::Status::data_loss("SIDX: stored order is not canonical");
  }
  return std::move(*index);
}

std::vector<std::byte> encode_spatial_index_snapshot(
    const SpatialIndex& index) {
  store::ByteWriter payload;
  encode_spatial_index(payload, index);
  store::SnapshotWriter writer;
  writer.add_section(kSectionSpatialIndex, payload.take());
  return writer.finish();
}

err::Result<SpatialIndex> decode_spatial_index_snapshot(
    std::span<const std::byte> bytes) {
  auto view = store::SnapshotView::parse(bytes);
  if (!view) return view.status();
  const auto* section = view.value().find(kSectionSpatialIndex);
  if (section == nullptr) {
    return err::Status::not_found("snapshot has no SIDX section");
  }
  store::ByteReader reader(section->payload);
  return decode_spatial_index(reader);
}

}  // namespace geonet::geo
