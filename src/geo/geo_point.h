#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace geonet::geo {

/// A point on the Earth's surface in decimal degrees.
///
/// Latitude is positive north, longitude positive east, matching the
/// conventions of the paper's Table II ("50N", "150W" = lat +50, lon -150).
struct GeoPoint {
  double lat_deg = 0.0;  ///< [-90, +90]
  double lon_deg = 0.0;  ///< [-180, +180)

  friend auto operator<=>(const GeoPoint&, const GeoPoint&) = default;
};

/// True iff lat is in [-90, 90] and lon in [-180, 180].
[[nodiscard]] bool is_valid(const GeoPoint& p) noexcept;

/// Wraps longitude into [-180, 180) and clamps latitude to [-90, 90].
[[nodiscard]] GeoPoint normalized(const GeoPoint& p) noexcept;

/// Human-readable form, e.g. "40.71N 74.01W".
[[nodiscard]] std::string to_string(const GeoPoint& p);

/// Packs a point quantised to `quantum_deg` into one 64-bit key, so that
/// "distinct locations" (Table I, Figure 7b) can be counted with a hash
/// set. Points within the same quantum cell share a key.
[[nodiscard]] std::uint64_t quantized_key(const GeoPoint& p,
                                          double quantum_deg = 0.01) noexcept;

constexpr double kPi = 3.14159265358979323846;
constexpr double kDegToRad = kPi / 180.0;
constexpr double kRadToDeg = 180.0 / kPi;

[[nodiscard]] constexpr double deg_to_rad(double deg) noexcept {
  return deg * kDegToRad;
}
[[nodiscard]] constexpr double rad_to_deg(double rad) noexcept {
  return rad * kRadToDeg;
}

}  // namespace geonet::geo
