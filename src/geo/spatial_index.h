#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geo/geo_point.h"
#include "geo/grid.h"
#include "geo/region.h"

namespace geonet::geo {

/// A snapshot-built spatial index over a fixed set of lat/lon points —
/// the geotree-style structure the ROADMAP names as the refactor under
/// every proximity hot path (distance-preference pair counting, per-AS
/// hulls, link-length scoping, density patch aggregation, and the future
/// `geonet serve` nearest/radius queries).
///
/// Structure: points are sorted once by (Morton code of the quantised
/// lat/lon, lat bits, lon bits, original index) — a geohash-style
/// space-filling order that is a pure function of the coordinates, never
/// of insertion order or thread count — and a packed bounding-box tree
/// (midpoint splits, preorder node array) is built over the sorted run.
/// Every traversal below therefore visits nodes in one deterministic
/// order, and every query result is defined by a total order on
/// (distance, original index), so results are reproducible byte for byte
/// across platforms, runs, and `--threads` settings.
///
/// Pruning uses a conservative great-circle lower bound between bounding
/// boxes derived from the haversine identity (see
/// min_distance_miles_lower_bound); the bound is relaxed by a safety
/// margin dwarfing any libm variance, so a pruned subtree provably
/// contains only points strictly farther than the query limit. The
/// differential property suite in tests/test_spatial_index.cpp pins every
/// query against a brute-force oracle, tie-breaking included.
///
/// Precondition: all points must satisfy is_valid() (finite lat in
/// [-90, 90], lon in [-180, 180]). Graph node locations always do.

/// Build knobs (namespace scope so it can serve as a default argument
/// inside the class definition below).
struct SpatialIndexOptions {
  /// Points per leaf, clamped to >= 1. The default is small enough that
  /// leaf scans stay cheap, large enough that the node array stays
  /// compact.
  std::size_t leaf_size = 16;
};

class SpatialIndex {
 public:
  /// Sentinel child index marking a leaf node.
  static constexpr std::uint32_t kNoChild = 0xffffffffu;
  static constexpr std::size_t kDefaultLeafSize = 16;

  using Options = SpatialIndexOptions;

  /// Closed lat/lon bounding box of a subtree (not wrapped: a cluster
  /// straddling the antimeridian gets a wide box, which is merely
  /// conservative for pruning).
  struct BoundingBox {
    double min_lat = 0.0;
    double max_lat = 0.0;
    double min_lon = 0.0;
    double max_lon = 0.0;
  };

  /// One node of the packed tree: a contiguous range [begin, end) of the
  /// sorted order plus the bounding box of its points. Leaves have
  /// left == right == kNoChild.
  struct Node {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    std::uint32_t left = kNoChild;
    std::uint32_t right = kNoChild;
    BoundingBox box;
  };

  /// A query hit: the point's index in the original input span plus its
  /// great-circle distance from the query, in statute miles. Results are
  /// always ordered by (distance_miles, id) ascending — the total order
  /// that makes ties deterministic.
  struct Neighbor {
    std::uint32_t id = 0;
    double distance_miles = 0.0;
    friend bool operator==(const Neighbor&, const Neighbor&) = default;
  };

  /// Tallies from one pairs_within sweep: pairs handed to the visitor
  /// plus pairs pruned wholesale (each provably farther than the limit).
  /// visited + pruned always equals n*(n-1)/2 — no pair is ever dropped.
  struct PairSweepStats {
    std::uint64_t visited_pairs = 0;
    std::uint64_t pruned_pairs = 0;
    [[nodiscard]] std::uint64_t total_pairs() const noexcept {
      return visited_pairs + pruned_pairs;
    }
  };

  SpatialIndex() = default;

  /// Builds the index over a copy of `points`. O(n log n); deterministic
  /// for a given point multiset (duplicates tie-break by input index).
  /// Throws std::invalid_argument if points.size() exceeds 2^32 - 2.
  static SpatialIndex build(std::span<const GeoPoint> points,
                            const Options& options = {});

  /// Reconstructs an index from a previously built sorted order (the
  /// SIDX warm path). Returns nullopt unless `order` is exactly the
  /// canonical build() order for `points` — a decoded index can never
  /// silently disagree with a freshly built one.
  static std::optional<SpatialIndex> from_sorted(
      std::vector<GeoPoint> points, std::vector<std::uint32_t> order,
      const Options& options = {});

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t leaf_size() const noexcept { return leaf_size_; }
  [[nodiscard]] const std::vector<GeoPoint>& points() const noexcept {
    return points_;
  }
  /// Sorted position -> original index (the Morton permutation).
  [[nodiscard]] const std::vector<std::uint32_t>& order() const noexcept {
    return order_;
  }
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
    return nodes_;
  }
  /// Node indices of the leaves, in sorted (spatial) order. The unit of
  /// work for parallel pair sweeps: chunk leaves with exec::parallel_reduce
  /// and merge per-chunk accumulators in chunk order.
  [[nodiscard]] const std::vector<std::uint32_t>& leaves() const noexcept {
    return leaves_;
  }
  [[nodiscard]] std::size_t leaf_count() const noexcept {
    return leaves_.size();
  }

  /// The k nearest points to `query` by (distance, id); fewer when the
  /// index holds fewer than k points.
  [[nodiscard]] std::vector<Neighbor> nearest(const GeoPoint& query,
                                              std::size_t k) const;

  /// All points within `radius_miles` (inclusive), sorted by
  /// (distance, id).
  [[nodiscard]] std::vector<Neighbor> within_radius(
      const GeoPoint& query, double radius_miles) const;

  /// Kilometre convenience wrapper: converts the radius via the earth
  /// radii ratio and reports distances in miles like everything else.
  [[nodiscard]] std::vector<Neighbor> within_radius_km(
      const GeoPoint& query, double radius_km) const;

  /// Original indices of all points inside `region` (half-open
  /// Region::contains semantics), ascending. Subtrees fully inside are
  /// taken wholesale; membership is decided by the exact same
  /// comparisons as a linear contains() scan.
  [[nodiscard]] std::vector<std::uint32_t> in_region(
      const Region& region) const;

  /// Byte-per-point membership mask for `region` (1 = inside).
  [[nodiscard]] std::vector<std::uint8_t> region_mask(
      const Region& region) const;

  /// Index-accelerated Grid::tally over this index's points: identical
  /// counts and dropped total as grid.tally(points()), with out-of-region
  /// subtrees skipped wholesale.
  [[nodiscard]] std::vector<double> tally(const Grid& grid,
                                          std::size_t* dropped = nullptr) const;

  /// Visits every unordered pair {a, b} of original indices that has at
  /// least one endpoint in leaf `leaf_ordinal` and the other at an equal
  /// or later sorted position — over all leaf ordinals this enumerates
  /// each of the n*(n-1)/2 pairs exactly once. Pairs whose bounding-box
  /// lower bound exceeds `limit_miles` are not visited; the count of such
  /// pruned pairs is returned (each is provably farther than the limit).
  /// Pass an infinite limit to visit every pair.
  template <typename Visitor>
  std::uint64_t visit_leaf_pairs(std::size_t leaf_ordinal, double limit_miles,
                                 Visitor&& visit) const {
    const Node& leaf = nodes_[leaves_[leaf_ordinal]];
    for (std::uint32_t i = leaf.begin; i < leaf.end; ++i) {
      for (std::uint32_t j = i + 1; j < leaf.end; ++j) {
        visit(order_[i], order_[j]);
      }
    }
    if (leaf.end >= size()) return 0;
    return visit_suffix_pairs(0, leaf, limit_miles, visit);
  }

  /// Serial all-pairs sweep: visit(a, b) for every unordered pair not
  /// pruned by `limit_miles`, leaves in spatial order. The parallel form
  /// lives in core/distance_pref (chunked over leaves()).
  template <typename Visitor>
  PairSweepStats pairs_within(double limit_miles, Visitor&& visit) const {
    PairSweepStats stats;
    for (std::size_t leaf = 0; leaf < leaves_.size(); ++leaf) {
      stats.pruned_pairs += visit_leaf_pairs(
          leaf, limit_miles, [&](std::uint32_t a, std::uint32_t b) {
            ++stats.visited_pairs;
            visit(a, b);
          });
    }
    return stats;
  }

  /// Conservative great-circle lower bound (statute miles) on the
  /// distance between any point of `a` and any point of `b`. From the
  /// haversine identity hav(s) = hav(dlat) + cos(lat_a) cos(lat_b)
  /// hav(dlon): each term is lower-bounded by the box gaps (circular in
  /// longitude) and the minimum |cos(lat)| over each box, then the
  /// result is shrunk by a relative + absolute safety margin far above
  /// libm's ulp-level variance — so `bound > d` never holds for a real
  /// pair distance d computed by great_circle_miles.
  [[nodiscard]] static double min_distance_miles_lower_bound(
      const BoundingBox& a, const BoundingBox& b) noexcept;

 private:
  void build_tree();
  std::uint32_t build_node(std::uint32_t begin, std::uint32_t end);

  template <typename Visitor>
  std::uint64_t visit_suffix_pairs(std::uint32_t node_index, const Node& leaf,
                                   double limit_miles, Visitor& visit) const {
    const Node& n = nodes_[node_index];
    if (n.end <= leaf.end) return 0;  // entirely at or before the leaf
    const std::uint32_t from = n.begin > leaf.end ? n.begin : leaf.end;
    if (min_distance_miles_lower_bound(leaf.box, n.box) > limit_miles) {
      return static_cast<std::uint64_t>(n.end - from) *
             static_cast<std::uint64_t>(leaf.end - leaf.begin);
    }
    if (n.left == kNoChild) {
      for (std::uint32_t j = from; j < n.end; ++j) {
        for (std::uint32_t i = leaf.begin; i < leaf.end; ++i) {
          visit(order_[i], order_[j]);
        }
      }
      return 0;
    }
    return visit_suffix_pairs(n.left, leaf, limit_miles, visit) +
           visit_suffix_pairs(n.right, leaf, limit_miles, visit);
  }

  std::vector<GeoPoint> points_;        ///< original input order
  std::vector<std::uint32_t> order_;    ///< sorted position -> original id
  std::vector<Node> nodes_;             ///< preorder packed tree
  std::vector<std::uint32_t> leaves_;   ///< leaf node indices, sorted order
  std::size_t leaf_size_ = kDefaultLeafSize;
};

}  // namespace geonet::geo
