#include "geo/grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geo/distance.h"

namespace geonet::geo {

Grid::Grid(Region region, double cell_arcmin)
    : region_(std::move(region)),
      cell_arcmin_(cell_arcmin),
      cell_deg_(cell_arcmin / 60.0) {
  if (!(cell_arcmin > 0.0)) {
    throw std::invalid_argument("Grid: cell size must be positive");
  }
  rows_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(region_.lat_span_deg() / cell_deg_ - 1e-9)));
  cols_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(region_.lon_span_deg() / cell_deg_ - 1e-9)));
}

std::optional<CellIndex> Grid::cell_of(const GeoPoint& p) const noexcept {
  // Half-open [south, north) x [west, east) like Region::contains, except
  // that a point exactly on the global upper edge (lat 90 or lon 180)
  // belongs to the last row/column: there is no cell beyond the pole or
  // the antimeridian to claim it. Interior upper edges stay exclusive so
  // adjacent grids never double-count a shared boundary.
  const bool lat_ok =
      p.lat_deg >= region_.south_deg &&
      (p.lat_deg < region_.north_deg ||
       (region_.north_deg == 90.0 && p.lat_deg == 90.0));
  const bool lon_ok =
      p.lon_deg >= region_.west_deg &&
      (p.lon_deg < region_.east_deg ||
       (region_.east_deg == 180.0 && p.lon_deg == 180.0));
  if (!lat_ok || !lon_ok) return std::nullopt;
  auto row = static_cast<std::size_t>((p.lat_deg - region_.south_deg) / cell_deg_);
  auto col = static_cast<std::size_t>((p.lon_deg - region_.west_deg) / cell_deg_);
  row = std::min(row, rows_ - 1);
  col = std::min(col, cols_ - 1);
  return CellIndex{row, col};
}

GeoPoint Grid::cell_center(const CellIndex& c) const noexcept {
  const Region b = cell_bounds(c);
  return b.center();
}

Region Grid::cell_bounds(const CellIndex& c) const noexcept {
  Region b;
  b.name = region_.name;
  b.south_deg = region_.south_deg + cell_deg_ * static_cast<double>(c.row);
  b.north_deg = std::min(region_.north_deg, b.south_deg + cell_deg_);
  b.west_deg = region_.west_deg + cell_deg_ * static_cast<double>(c.col);
  b.east_deg = std::min(region_.east_deg, b.west_deg + cell_deg_);
  return b;
}

double Grid::max_cell_diagonal_miles() const noexcept {
  // The widest cell in miles is the one nearest the equator-facing edge.
  const double lat_edge =
      std::min(std::fabs(region_.south_deg), std::fabs(region_.north_deg));
  const double lat_extent = cell_deg_ * miles_per_lat_degree();
  const double lon_extent = cell_deg_ * miles_per_lon_degree(
      region_.south_deg <= 0.0 && region_.north_deg >= 0.0 ? 0.0 : lat_edge);
  return std::hypot(lat_extent, lon_extent);
}

std::vector<double> Grid::tally(std::span<const GeoPoint> points,
                                std::size_t* dropped) const {
  std::vector<double> counts(cell_count(), 0.0);
  std::size_t outside = 0;
  for (const auto& p : points) {
    if (const auto cell = cell_of(p)) {
      counts[flat_index(*cell)] += 1.0;
    } else {
      ++outside;
    }
  }
  if (dropped != nullptr) *dropped = outside;
  return counts;
}

}  // namespace geonet::geo
