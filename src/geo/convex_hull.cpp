#include "geo/convex_hull.h"

#include <algorithm>
#include <cmath>

namespace geonet::geo {

namespace {

double cross(const PlanarPoint& o, const PlanarPoint& a,
             const PlanarPoint& b) noexcept {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

}  // namespace

std::vector<PlanarPoint> convex_hull(std::span<const PlanarPoint> points) {
  std::vector<PlanarPoint> pts(points.begin(), points.end());
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const std::size_t n = pts.size();
  if (n <= 2) return pts;

  std::vector<PlanarPoint> hull(2 * n);
  std::size_t k = 0;

  // Lower hull.
  for (std::size_t i = 0; i < n; ++i) {
    while (k >= 2 && cross(hull[k - 2], hull[k - 1], pts[i]) <= 0.0) --k;
    hull[k++] = pts[i];
  }
  // Upper hull.
  const std::size_t lower_size = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    while (k >= lower_size && cross(hull[k - 2], hull[k - 1], pts[i]) <= 0.0) --k;
    hull[k++] = pts[i];
  }

  hull.resize(k - 1);  // last point repeats the first
  return hull;
}

double polygon_signed_area(std::span<const PlanarPoint> polygon) noexcept {
  if (polygon.size() < 3) return 0.0;
  double twice_area = 0.0;
  for (std::size_t i = 0; i < polygon.size(); ++i) {
    const auto& a = polygon[i];
    const auto& b = polygon[(i + 1) % polygon.size()];
    twice_area += a.x * b.y - b.x * a.y;
  }
  return 0.5 * twice_area;
}

double polygon_area(std::span<const PlanarPoint> polygon) noexcept {
  return std::fabs(polygon_signed_area(polygon));
}

double hull_area_sq_miles(std::span<const GeoPoint> points,
                          const AlbersProjection& projection) {
  std::vector<PlanarPoint> projected;
  projected.reserve(points.size());
  for (const auto& p : points) projected.push_back(projection.project(p));
  const auto hull = convex_hull(projected);
  return polygon_area(hull);
}

bool point_in_convex_polygon(const PlanarPoint& query,
                             std::span<const PlanarPoint> hull) noexcept {
  if (hull.size() < 3) return false;
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const auto& a = hull[i];
    const auto& b = hull[(i + 1) % hull.size()];
    if (cross(a, b, query) < 0.0) return false;
  }
  return true;
}

}  // namespace geonet::geo
