#pragma once

#include "geo/geo_point.h"
#include "geo/region.h"

namespace geonet::geo {

/// A point in a planar projected coordinate system, in miles.
struct PlanarPoint {
  double x = 0.0;
  double y = 0.0;

  friend auto operator<=>(const PlanarPoint&, const PlanarPoint&) = default;
};

/// Albers equal-area conic projection.
///
/// Section VI.B of the paper measures the convex hull of each AS's
/// interface set after projecting the globe with the Albers Equal Area
/// projection, unfolding at the poles and the International Date Line.
/// Equal-area means hull *areas* are preserved up to small distortion,
/// which is exactly the property the analysis needs.
class AlbersProjection {
 public:
  /// Standard-parallel form; defaults are a common world/US compromise.
  AlbersProjection(double std_parallel1_deg, double std_parallel2_deg,
                   double origin_lat_deg, double origin_lon_deg) noexcept;

  /// Projection tuned for a particular region box: standard parallels at
  /// 1/6 and 5/6 of the latitude span (Snyder's rule of thumb).
  static AlbersProjection for_region(const Region& region) noexcept;

  /// Projection covering the whole globe, as the paper uses for Figure 9a.
  static AlbersProjection world() noexcept;

  /// Forward projection to planar miles.
  [[nodiscard]] PlanarPoint project(const GeoPoint& p) const noexcept;

 private:
  double n_ = 0.0;
  double c_ = 0.0;
  double rho0_ = 0.0;
  double origin_lon_rad_ = 0.0;
};

}  // namespace geonet::geo
