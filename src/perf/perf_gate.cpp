#include "perf/perf_gate.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "obs/json.h"
#include "store/fs.h"

namespace geonet::perf {

namespace {

/// Reads an info value as a string, "" when absent or not a string.
std::string info_string(const obs::JsonValue& info, std::string_view key) {
  const obs::JsonValue* value = info.find(key);
  return value != nullptr ? std::string(value->as_string()) : std::string();
}

/// Two metadata values conflict only when both are known and differ —
/// unstamped legacy records stay comparable.
bool conflicts(const std::string& a, const std::string& b) {
  return !a.empty() && !b.empty() && a != b;
}

}  // namespace

err::Result<BenchRecord> parse_bench_record(std::string_view json,
                                            std::string file) {
  std::string parse_error;
  const auto root = obs::json_parse(json, &parse_error);
  if (!root) {
    return err::Status::data_loss(file + ": invalid JSON: " + parse_error);
  }
  const obs::JsonValue* schema = root->find("schema");
  if (schema == nullptr ||
      schema->as_string() != "geonet.run_report.v1") {
    return err::Status::data_loss(
        file + ": not a geonet.run_report.v1 document");
  }
  BenchRecord record;
  record.file = std::move(file);
  if (const obs::JsonValue* info = root->find("info")) {
    record.experiment = info_string(*info, "experiment");
    record.threads = info_string(*info, "threads");
    record.git_describe = info_string(*info, "git_describe");
    record.build_type = info_string(*info, "build_type");
    record.timestamp_utc = info_string(*info, "timestamp_utc");
    const std::string wall = info_string(*info, "wall_us");
    if (!wall.empty()) {
      record.metrics.push_back({"wall_us", std::strtod(wall.c_str(), nullptr)});
    }
  }
  if (const obs::JsonValue* spans = root->find("spans")) {
    for (const obs::JsonValue& span : spans->items()) {
      const obs::JsonValue* name = span.find("name");
      const obs::JsonValue* total = span.find("total_us");
      if (name == nullptr || total == nullptr || !name->is_string()) continue;
      record.metrics.push_back(
          {"span/" + std::string(name->as_string()), total->as_double()});
    }
  }
  std::sort(record.metrics.begin(), record.metrics.end(),
            [](const Metric& a, const Metric& b) { return a.name < b.name; });
  return record;
}

err::Result<BenchRecord> load_bench_record(const std::string& path) {
  auto bytes = store::read_file_bytes(path);
  if (!bytes) return bytes.status();
  const std::string text(reinterpret_cast<const char*>(bytes.value().data()),
                         bytes.value().size());
  return parse_bench_record(
      text, std::filesystem::path(path).filename().string());
}

double Tolerances::for_metric(std::string_view name) const noexcept {
  for (const auto& [metric, pct] : per_metric) {
    if (metric == name) return pct;
  }
  return default_pct;
}

const char* row_status_name(RowStatus status) noexcept {
  switch (status) {
    case RowStatus::kOk: return "ok";
    case RowStatus::kRegression: return "REGRESSION";
    case RowStatus::kImprovement: return "improved";
    case RowStatus::kTooSmall: return "skipped";
    case RowStatus::kBaselineOnly: return "baseline-only";
    case RowStatus::kCurrentOnly: return "new";
  }
  return "?";
}

bool Diff::regressed() const noexcept {
  return std::any_of(rows.begin(), rows.end(), [](const DiffRow& row) {
    return row.status == RowStatus::kRegression;
  });
}

Diff diff_records(const BenchRecord& baseline, const BenchRecord& current,
                  const Tolerances& tolerances, bool ignore_meta) {
  Diff diff;
  diff.label = !baseline.file.empty() ? baseline.file : current.file;

  if (!ignore_meta) {
    if (conflicts(baseline.threads, current.threads)) {
      diff.comparable = false;
      diff.refusal = "thread counts differ (baseline " + baseline.threads +
                     ", current " + current.threads + ")";
    } else if (conflicts(baseline.build_type, current.build_type)) {
      diff.comparable = false;
      diff.refusal = "build types differ (baseline " + baseline.build_type +
                     ", current " + current.build_type + ")";
    } else if (!baseline.timestamp_utc.empty() &&
               !current.timestamp_utc.empty() &&
               current.timestamp_utc < baseline.timestamp_utc) {
      diff.comparable = false;
      diff.refusal = "current record (" + current.timestamp_utc +
                     ") predates the baseline (" + baseline.timestamp_utc +
                     ") — stale artifact?";
    }
    if (!diff.comparable) return diff;
  }

  // Walk the union of the two name-sorted metric lists.
  std::size_t b = 0;
  std::size_t c = 0;
  while (b < baseline.metrics.size() || c < current.metrics.size()) {
    DiffRow row;
    const bool have_b = b < baseline.metrics.size();
    const bool have_c = c < current.metrics.size();
    if (have_b && (!have_c || baseline.metrics[b].name < current.metrics[c].name)) {
      row.metric = baseline.metrics[b].name;
      row.baseline_us = baseline.metrics[b].us;
      row.status = RowStatus::kBaselineOnly;
      ++b;
    } else if (have_c &&
               (!have_b || current.metrics[c].name < baseline.metrics[b].name)) {
      row.metric = current.metrics[c].name;
      row.current_us = current.metrics[c].us;
      row.status = RowStatus::kCurrentOnly;
      ++c;
    } else {
      row.metric = baseline.metrics[b].name;
      row.baseline_us = baseline.metrics[b].us;
      row.current_us = current.metrics[c].us;
      row.tolerance_pct = tolerances.for_metric(row.metric);
      if (row.baseline_us > 0.0) {
        row.delta_pct =
            (row.current_us - row.baseline_us) / row.baseline_us * 100.0;
      }
      if (row.baseline_us < tolerances.min_us &&
          row.current_us < tolerances.min_us) {
        row.status = RowStatus::kTooSmall;  // sub-noise timings never gate
      } else if (row.delta_pct > row.tolerance_pct) {
        row.status = RowStatus::kRegression;
      } else if (row.delta_pct < -row.tolerance_pct) {
        row.status = RowStatus::kImprovement;
      } else {
        row.status = RowStatus::kOk;
      }
      ++b;
      ++c;
    }
    diff.rows.push_back(std::move(row));
  }
  return diff;
}

std::string render_diff(const Diff& diff) {
  std::string out = "perf diff: " + diff.label + "\n";
  if (!diff.comparable) {
    out += "  REFUSED: " + diff.refusal + "\n";
    out += "  (rerun with --ignore-meta to compare anyway)\n";
    return out;
  }
  char line[256];
  std::snprintf(line, sizeof(line), "  %-44s %14s %14s %9s %6s  %s\n",
                "metric", "baseline us", "current us", "delta", "tol",
                "status");
  out += line;
  std::size_t regressions = 0;
  std::size_t compared = 0;
  for (const DiffRow& row : diff.rows) {
    if (row.status == RowStatus::kRegression) ++regressions;
    if (row.status == RowStatus::kRegression ||
        row.status == RowStatus::kImprovement ||
        row.status == RowStatus::kOk) {
      ++compared;
    }
    switch (row.status) {
      case RowStatus::kBaselineOnly:
        std::snprintf(line, sizeof(line), "  %-44s %14.0f %14s %9s %6s  %s\n",
                      row.metric.c_str(), row.baseline_us, "-", "-", "-",
                      row_status_name(row.status));
        break;
      case RowStatus::kCurrentOnly:
        std::snprintf(line, sizeof(line), "  %-44s %14s %14.0f %9s %6s  %s\n",
                      row.metric.c_str(), "-", row.current_us, "-", "-",
                      row_status_name(row.status));
        break;
      default:
        std::snprintf(line, sizeof(line),
                      "  %-44s %14.0f %14.0f %+8.1f%% %5.0f%%  %s\n",
                      row.metric.c_str(), row.baseline_us, row.current_us,
                      row.delta_pct, row.tolerance_pct,
                      row_status_name(row.status));
        break;
    }
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "  => %s (%zu compared, %zu regression%s)\n",
                regressions == 0 ? "OK" : "REGRESSED", compared, regressions,
                regressions == 1 ? "" : "s");
  out += line;
  return out;
}

bool CheckResult::regressed() const noexcept {
  return std::any_of(diffs.begin(), diffs.end(),
                     [](const Diff& diff) { return diff.regressed(); });
}

bool CheckResult::refused() const noexcept {
  return std::any_of(diffs.begin(), diffs.end(),
                     [](const Diff& diff) { return !diff.comparable; });
}

err::Result<CheckResult> check_directories(const std::string& baseline_dir,
                                           const std::string& current_dir,
                                           const Tolerances& tolerances,
                                           bool ignore_meta) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(baseline_dir, ec)) {
    return err::Status::not_found("baseline dir missing: " + baseline_dir);
  }
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(baseline_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json") {
      names.push_back(name);
    }
  }
  if (ec) {
    return err::Status::data_loss("cannot list " + baseline_dir + ": " +
                                  ec.message());
  }
  if (names.empty()) {
    return err::Status::not_found("no BENCH_*.json records in " +
                                  baseline_dir);
  }
  std::sort(names.begin(), names.end());

  CheckResult result;
  for (const std::string& name : names) {
    auto baseline = load_bench_record(baseline_dir + "/" + name);
    if (!baseline) return baseline.status();
    const std::string current_path = current_dir + "/" + name;
    if (!fs::exists(current_path, ec)) {
      result.missing_current.push_back(name);
      continue;
    }
    auto current = load_bench_record(current_path);
    if (!current) return current.status();
    result.diffs.push_back(diff_records(baseline.value(), current.value(),
                                        tolerances, ignore_meta));
  }
  return result;
}

}  // namespace geonet::perf
