#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "err/status.h"

namespace geonet::perf {

/// Perf-regression gate over the BENCH_*.json trajectory.
///
/// Every bench binary leaves a `geonet.run_report.v1` record behind
/// (bench_common's exit hook): info facts (`wall_us`, `threads`,
/// `git_describe`, ...) plus per-stage span timings. This module parses
/// those records, compares a current run against a committed baseline
/// with per-metric tolerances, and renders the verdict — the engine
/// behind `geonet perf diff` / `geonet perf check` and the opt-in `perf`
/// ctest.
///
/// Comparisons refuse (rather than report bogus regressions) when the
/// two records are not comparable: different thread counts, different
/// build types, different scenario scales, or a current record that
/// predates the baseline (stale artifact). `--ignore-meta` overrides.

/// One named timing extracted from a record: `wall_us` plus one
/// `span/<name>` per span row (total_us).
struct Metric {
  std::string name;
  double us = 0.0;
};

/// One parsed BENCH record. Metadata fields are empty when the record
/// predates the stamping (old baselines) — unknown never conflicts.
struct BenchRecord {
  std::string file;  ///< basename of the source path, e.g. BENCH_fig02_density.json
  std::string experiment;
  std::string threads;
  std::string git_describe;
  std::string build_type;
  std::string timestamp_utc;  ///< ISO-8601 UTC, lexicographically ordered
  std::vector<Metric> metrics;  ///< name-sorted
};

/// Parses one geonet.run_report.v1 bench record from JSON text.
err::Result<BenchRecord> parse_bench_record(std::string_view json,
                                            std::string file = {});

/// Loads and parses a record from disk.
err::Result<BenchRecord> load_bench_record(const std::string& path);

/// Tolerance policy: a default percentage, optional per-metric
/// overrides (first match wins), and a floor below which timings are
/// considered noise and skipped.
struct Tolerances {
  double default_pct = 10.0;
  double min_us = 1000.0;
  std::vector<std::pair<std::string, double>> per_metric;

  [[nodiscard]] double for_metric(std::string_view name) const noexcept;
};

enum class RowStatus {
  kOk,            ///< within tolerance
  kRegression,    ///< current slower than baseline beyond tolerance
  kImprovement,   ///< current faster beyond tolerance (informational)
  kTooSmall,      ///< under min_us in both records; skipped
  kBaselineOnly,  ///< metric vanished from the current record
  kCurrentOnly,   ///< new metric with no baseline
};
[[nodiscard]] const char* row_status_name(RowStatus status) noexcept;

struct DiffRow {
  std::string metric;
  double baseline_us = 0.0;
  double current_us = 0.0;
  double delta_pct = 0.0;  ///< (current - baseline) / baseline * 100
  double tolerance_pct = 0.0;
  RowStatus status = RowStatus::kOk;
};

/// Verdict for one baseline/current record pair.
struct Diff {
  std::string label;     ///< record basename
  bool comparable = true;
  std::string refusal;   ///< why not comparable (metadata conflict)
  std::vector<DiffRow> rows;

  [[nodiscard]] bool regressed() const noexcept;
};

/// Compares two records under the given tolerances. Metadata conflicts
/// mark the diff incomparable (no rows) unless `ignore_meta`.
[[nodiscard]] Diff diff_records(const BenchRecord& baseline,
                                const BenchRecord& current,
                                const Tolerances& tolerances,
                                bool ignore_meta = false);

/// Human-readable table for one diff, ending in a one-line verdict.
[[nodiscard]] std::string render_diff(const Diff& diff);

/// Directory-level check: every BENCH_*.json in `baseline_dir` is
/// compared against the same-named file in `current_dir`. Records
/// missing from `current_dir` are listed, not failed — a partial bench
/// run gates only what it produced.
struct CheckResult {
  std::vector<Diff> diffs;
  std::vector<std::string> missing_current;

  [[nodiscard]] bool regressed() const noexcept;
  [[nodiscard]] bool refused() const noexcept;
};

err::Result<CheckResult> check_directories(const std::string& baseline_dir,
                                           const std::string& current_dir,
                                           const Tolerances& tolerances,
                                           bool ignore_meta = false);

}  // namespace geonet::perf
