#pragma once

namespace geonet::obs {

/// Leveled diagnostic logging to stderr.
///
/// Library and tool code must never write unconditionally to stderr;
/// every diagnostic goes through log(), which a front end can silence
/// (`--quiet` sets the threshold to kError) or crank up. stdout remains
/// reserved for actual program output (tables, reports).
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kSilent = 4,  ///< threshold only: suppresses everything
};

/// Messages below this level are dropped. Default: kInfo.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// printf-style; a trailing newline is appended when missing.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void log(LogLevel level, const char* fmt, ...);

}  // namespace geonet::obs
