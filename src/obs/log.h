#pragma once

#include <cstddef>
#include <cstdint>

namespace geonet::obs {

/// Leveled diagnostic logging to stderr.
///
/// Library and tool code must never write unconditionally to stderr;
/// every diagnostic goes through log(), which a front end can silence
/// (`--quiet` sets the threshold to kError) or crank up. stdout remains
/// reserved for actual program output (tables, reports).
///
/// Every line carries a `[<elapsed>ms t<idx>]` prefix: milliseconds
/// since the first log call and the dense per-thread index from
/// obs::thread_index() — the same index Chrome trace rows use as `tid`,
/// so interleaved multi-threaded log output cross-references the trace.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kSilent = 4,  ///< threshold only: suppresses everything
};

/// Messages below this level are dropped. Default: kInfo.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Renders the line prefix for a given elapsed time and thread index
/// into `buf` (NUL-terminated, truncating) and returns the would-be
/// length à la snprintf. Exposed so the format is pinned by a test:
/// `[<elapsed ms, width 8, 1 decimal>ms t<index, width 2, zero pad>] `.
std::size_t format_log_prefix(std::uint64_t elapsed_us, std::uint32_t thread,
                              char* buf, std::size_t size) noexcept;

/// printf-style; a trailing newline is appended when missing.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void log(LogLevel level, const char* fmt, ...);

}  // namespace geonet::obs
