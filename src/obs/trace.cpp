#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <unordered_map>

#include "obs/json.h"
#include "obs/metrics.h"

namespace geonet::obs {

namespace {

std::uint64_t to_us(std::chrono::steady_clock::duration d) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

/// Per-thread ambient trace context: the innermost live span and the
/// depth its children start at. Spans push/pop it RAII-style; a
/// ContextGuard swaps in a context captured on another thread.
struct Ambient {
  std::uint64_t id = 0;
  std::uint32_t depth = 0;
};

Ambient& ambient_slot() noexcept {
  static thread_local Ambient ambient;
  return ambient;
}

std::uint64_t next_span_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Initial event-buffer reservation when tracing turns on: enough for a
/// full scenario study at chunk granularity without a grow under the
/// record lock.
constexpr std::size_t kInitialEventCapacity = 4096;

}  // namespace

std::uint32_t thread_index() noexcept {
  static std::atomic<std::uint32_t> next{0};
  static thread_local const std::uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

SpanContext current_span_context() noexcept {
  const Ambient& ambient = ambient_slot();
  return {ambient.id, ambient.depth};
}

void Tracer::set_enabled(bool enabled) {
  if (enabled && !enabled_.load(std::memory_order_relaxed)) {
    const std::scoped_lock lock(mutex_);
    epoch_ = std::chrono::steady_clock::now();
    events_.reserve(kInitialEventCapacity);
  }
  enabled_.store(enabled, std::memory_order_relaxed);
}

std::uint64_t Tracer::now_us() const noexcept {
  return to_us(std::chrono::steady_clock::now() - epoch_);
}

void Tracer::record(TraceEvent event) {
  // The event arrives fully built (name string allocated by the caller),
  // so the lock covers one push_back into pre-reserved storage. Growth
  // doubles explicitly so a reserve-skipping first use still amortizes.
  const std::scoped_lock lock(mutex_);
  if (events_.size() == events_.capacity()) {
    events_.reserve(std::max(kInitialEventCapacity, events_.capacity() * 2));
  }
  events_.push_back(std::move(event));
}

void Tracer::record_counter(std::string_view name, std::int64_t value) {
  if (!enabled()) return;
  CounterEvent event{std::string(name), now_us(), value};
  const std::scoped_lock lock(mutex_);
  counters_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  const std::scoped_lock lock(mutex_);
  return events_;
}

std::vector<CounterEvent> Tracer::counter_events() const {
  const std::scoped_lock lock(mutex_);
  return counters_;
}

void Tracer::clear() {
  const std::scoped_lock lock(mutex_);
  events_.clear();
  counters_.clear();
}

std::string Tracer::chrome_trace_json(std::string_view provenance) const {
  auto sorted = events();
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_us < b.start_us;
            });
  // Parent thread lookup for flow binding (arrows only make sense when
  // the child ran on a different thread than its parent).
  std::unordered_map<std::uint64_t, std::uint32_t> thread_of;
  thread_of.reserve(sorted.size());
  for (const TraceEvent& event : sorted) {
    if (event.id != 0) thread_of.emplace(event.id, event.thread);
  }

  JsonWriter json;
  json.begin_object();
  json.key("traceEvents").begin_array();
  for (const TraceEvent& event : sorted) {
    json.begin_object();
    json.key("name").value(event.name);
    json.key("cat").value("geonet");
    json.key("ph").value("X");  // complete event: begin + duration in one
    json.key("ts").value(event.start_us);
    json.key("dur").value(event.duration_us);
    json.key("pid").value(1);
    json.key("tid").value(event.thread);
    json.key("args").begin_object();
    json.key("span_id").value(event.id);
    json.key("parent_id").value(event.parent);
    if (event.chunk != TraceEvent::kNoChunk) {
      json.key("chunk").value(event.chunk);
      json.key("begin").value(event.range_begin);
      json.key("end").value(event.range_end);
    }
    json.end_object();
    json.end_object();
  }
  // Flow arrows: one start/finish pair per cross-thread parent link, so
  // the viewer draws each phase fanning out to its pool chunks.
  for (const TraceEvent& event : sorted) {
    if (event.parent == 0) continue;
    const auto parent_thread = thread_of.find(event.parent);
    if (parent_thread == thread_of.end() ||
        parent_thread->second == event.thread) {
      continue;
    }
    json.begin_object();
    json.key("name").value(event.name);
    json.key("cat").value("geonet.flow");
    json.key("ph").value("s");
    json.key("id").value(event.id);
    json.key("ts").value(event.start_us);
    json.key("pid").value(1);
    json.key("tid").value(parent_thread->second);
    json.end_object();
    json.begin_object();
    json.key("name").value(event.name);
    json.key("cat").value("geonet.flow");
    json.key("ph").value("f");
    json.key("bp").value("e");
    json.key("id").value(event.id);
    json.key("ts").value(event.start_us);
    json.key("pid").value(1);
    json.key("tid").value(event.thread);
    json.end_object();
  }
  // Counter tracks (queue depth, active workers): own lanes over time.
  for (const CounterEvent& counter : counter_events()) {
    json.begin_object();
    json.key("name").value(counter.name);
    json.key("cat").value("geonet");
    json.key("ph").value("C");
    json.key("ts").value(counter.ts_us);
    json.key("pid").value(1);
    json.key("args").begin_object();
    json.key("value").value(counter.value);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.key("displayTimeUnit").value("ms");
  if (!provenance.empty()) json.key("geonet").raw(provenance);
  json.end_object();
  return json.str();
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json() << '\n';
  return static_cast<bool>(out);
}

namespace {

/// One aggregated stage of the profile tree: all events sharing a name,
/// attached under the stage name of their (first seen) parent event.
struct StageAgg {
  std::string parent;  ///< parent stage name, "" = root
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t self_us = 0;  ///< total minus direct children's time
  std::uint32_t min_depth = ~0u;
  Histogram durations;  ///< pow2 buckets over per-event duration_us
};

/// Groups events by stage name, computes self time from parent links and
/// feeds per-stage pow2 duration histograms (for p50/p95 estimates).
std::map<std::string, StageAgg> aggregate_stages(
    const std::vector<TraceEvent>& events) {
  std::unordered_map<std::uint64_t, std::size_t> index_of;
  index_of.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].id != 0) index_of.emplace(events[i].id, i);
  }
  std::vector<std::uint64_t> child_us(events.size(), 0);
  for (const TraceEvent& event : events) {
    if (event.parent == 0) continue;
    const auto it = index_of.find(event.parent);
    if (it != index_of.end()) child_us[it->second] += event.duration_us;
  }
  std::map<std::string, StageAgg> stages;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    StageAgg& agg = stages[event.name];
    ++agg.count;
    agg.total_us += event.duration_us;
    agg.self_us += event.duration_us > child_us[i]
                       ? event.duration_us - child_us[i]
                       : 0;
    agg.min_depth = std::min(agg.min_depth, event.depth);
    agg.durations.record(event.duration_us);
    if (agg.parent.empty() && event.parent != 0) {
      const auto it = index_of.find(event.parent);
      if (it != index_of.end()) agg.parent = events[it->second].name;
    }
  }
  // A stage must never claim itself (or a missing stage) as parent.
  for (auto& [name, agg] : stages) {
    if (agg.parent == name || stages.find(agg.parent) == stages.end()) {
      agg.parent.clear();
    }
  }
  return stages;
}

/// Children of each stage, ordered by total time descending.
std::map<std::string, std::vector<std::string>> stage_children(
    const std::map<std::string, StageAgg>& stages) {
  std::map<std::string, std::vector<std::string>> children;
  for (const auto& [name, agg] : stages) {
    children[agg.parent].push_back(name);
  }
  for (auto& [parent, names] : children) {
    std::sort(names.begin(), names.end(),
              [&](const std::string& a, const std::string& b) {
                return stages.at(a).total_us > stages.at(b).total_us;
              });
  }
  return children;
}

}  // namespace

std::string Tracer::summary() const {
  const auto stages = aggregate_stages(events());
  const auto children = stage_children(stages);

  std::string out =
      "stage                                     count   total ms    self ms"
      "    p50 ms    p95 ms    max ms\n";
  char line[256];
  const auto render = [&](const auto& self, const std::string& name,
                          std::size_t indent) -> void {
    const StageAgg& agg = stages.at(name);
    const std::string label(std::string(indent * 2, ' ') + name);
    std::snprintf(line, sizeof(line),
                  "%-40s %6llu %10.2f %10.2f %9.2f %9.2f %9.2f\n",
                  label.c_str(), static_cast<unsigned long long>(agg.count),
                  static_cast<double>(agg.total_us) / 1000.0,
                  static_cast<double>(agg.self_us) / 1000.0,
                  agg.durations.percentile(0.50) / 1000.0,
                  agg.durations.percentile(0.95) / 1000.0,
                  static_cast<double>(agg.durations.max()) / 1000.0);
    out += line;
    const auto it = children.find(name);
    if (it == children.end()) return;
    for (const std::string& child : it->second) {
      self(self, child, indent + 1);
    }
  };
  const auto roots = children.find("");
  if (roots != children.end()) {
    for (const std::string& root : roots->second) render(render, root, 0);
  }
  return out;
}

std::string Tracer::profile_json(std::string_view provenance) const {
  const auto stages = aggregate_stages(events());
  const auto children = stage_children(stages);

  JsonWriter json;
  json.begin_object();
  json.key("schema").value("geonet.profile.v1");
  if (!provenance.empty()) json.key("provenance").raw(provenance);
  json.key("stages").begin_array();
  // Depth-first from the roots so a reader can rebuild the tree from the
  // flat array in order; `parent` names carry the edges.
  const auto emit = [&](const auto& self, const std::string& name) -> void {
    const StageAgg& agg = stages.at(name);
    json.begin_object();
    json.key("name").value(name);
    json.key("parent").value(agg.parent);
    json.key("depth").value(agg.min_depth);
    json.key("count").value(agg.count);
    json.key("total_us").value(agg.total_us);
    json.key("self_us").value(agg.self_us);
    json.key("p50_us").value(agg.durations.percentile(0.50));
    json.key("p95_us").value(agg.durations.percentile(0.95));
    json.key("max_us").value(agg.durations.max());
    json.end_object();
    const auto it = children.find(name);
    if (it == children.end()) return;
    for (const std::string& child : it->second) self(self, child);
  };
  const auto roots = children.find("");
  if (roots != children.end()) {
    for (const std::string& root : roots->second) emit(emit, root);
  }
  json.end_array();
  json.end_object();
  return json.str();
}

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // never destroyed
  return *instance;
}

Span::Span(const char* name) : name_(name) { open(); }

Span::Span(std::string name) : owned_(std::move(name)), name_(owned_.c_str()) {
  open();
}

void Span::open() {
  Ambient& ambient = ambient_slot();
  depth_ = ambient.depth++;
  Tracer& tracer = Tracer::global();
  if (tracer.enabled()) {
    id_ = next_span_id();
    parent_ = ambient.id;
    ambient.id = id_;
    start_us_ = tracer.now_us();
  }
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  Ambient& ambient = ambient_slot();
  --ambient.depth;
  if (id_ != 0) ambient.id = parent_;
  const std::uint64_t duration_us =
      to_us(std::chrono::steady_clock::now() - start_);
  // Stage wall-time histogram: populated whether or not tracing is on, so
  // metrics output always carries per-stage timings. The handle lookup is
  // mutex-protected but spans are stage-granular, so this is cold.
  MetricsRegistry::global()
      .histogram(std::string("stage_us.") + name_)
      .record(duration_us);
  Tracer& tracer = Tracer::global();
  if (id_ != 0 && tracer.enabled()) {
    TraceEvent event;
    event.name = name_;
    event.start_us = start_us_;
    event.duration_us = duration_us;
    event.id = id_;
    event.parent = parent_;
    event.thread = thread_index();
    event.depth = depth_;
    tracer.record(std::move(event));
  }
}

ContextGuard::ContextGuard(SpanContext context) noexcept {
  Ambient& ambient = ambient_slot();
  saved_ = {ambient.id, ambient.depth};
  ambient.id = context.span_id;
  ambient.depth = context.depth;
}

ContextGuard::~ContextGuard() {
  Ambient& ambient = ambient_slot();
  ambient.id = saved_.span_id;
  ambient.depth = saved_.depth;
}

ChunkSpan::ChunkSpan(SpanContext region, std::size_t chunk,
                     std::size_t range_begin, std::size_t range_end) noexcept {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  Ambient& ambient = ambient_slot();
  saved_ = {ambient.id, ambient.depth};
  id_ = next_span_id();
  parent_ = region.span_id;
  depth_ = region.depth;
  ambient.id = id_;
  ambient.depth = region.depth + 1;
  chunk_ = chunk;
  range_begin_ = range_begin;
  range_end_ = range_end;
  start_us_ = tracer.now_us();
  start_ = std::chrono::steady_clock::now();
  active_ = true;
}

ChunkSpan::~ChunkSpan() {
  if (!active_) return;
  Ambient& ambient = ambient_slot();
  ambient.id = saved_.span_id;
  ambient.depth = saved_.depth;
  const std::uint64_t duration_us =
      to_us(std::chrono::steady_clock::now() - start_);
  TraceEvent event;
  event.name = "exec/chunk[" + std::to_string(chunk_) + "]";
  event.start_us = start_us_;
  event.duration_us = duration_us;
  event.id = id_;
  event.parent = parent_;
  event.thread = thread_index();
  event.depth = depth_;
  event.chunk = chunk_;
  event.range_begin = range_begin_;
  event.range_end = range_end_;
  Tracer::global().record(std::move(event));
}

ScopedTimer::~ScopedTimer() {
  sink_.record(to_us(std::chrono::steady_clock::now() - start_));
}

}  // namespace geonet::obs
