#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "obs/json.h"
#include "obs/metrics.h"

namespace geonet::obs {

namespace {

std::uint64_t to_us(std::chrono::steady_clock::duration d) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

/// Dense per-thread index for trace rows (Chrome groups events by tid).
std::uint32_t thread_index() {
  static std::atomic<std::uint32_t> next{0};
  static thread_local const std::uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

/// Per-thread span nesting depth.
std::uint32_t& depth_slot() {
  static thread_local std::uint32_t depth = 0;
  return depth;
}

}  // namespace

void Tracer::set_enabled(bool enabled) {
  if (enabled && !enabled_.load(std::memory_order_relaxed)) {
    const std::scoped_lock lock(mutex_);
    epoch_ = std::chrono::steady_clock::now();
  }
  enabled_.store(enabled, std::memory_order_relaxed);
}

std::uint64_t Tracer::now_us() const noexcept {
  return to_us(std::chrono::steady_clock::now() - epoch_);
}

void Tracer::record(std::string name, std::uint64_t start_us,
                    std::uint64_t duration_us, std::uint32_t depth) {
  TraceEvent event{std::move(name), start_us, duration_us, thread_index(),
                   depth};
  const std::scoped_lock lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  const std::scoped_lock lock(mutex_);
  return events_;
}

void Tracer::clear() {
  const std::scoped_lock lock(mutex_);
  events_.clear();
}

std::string Tracer::chrome_trace_json() const {
  auto sorted = events();
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_us < b.start_us;
            });
  JsonWriter json;
  json.begin_object();
  json.key("traceEvents").begin_array();
  for (const TraceEvent& event : sorted) {
    json.begin_object();
    json.key("name").value(event.name);
    json.key("cat").value("geonet");
    json.key("ph").value("X");  // complete event: begin + duration in one
    json.key("ts").value(event.start_us);
    json.key("dur").value(event.duration_us);
    json.key("pid").value(1);
    json.key("tid").value(event.thread);
    json.end_object();
  }
  json.end_array();
  json.key("displayTimeUnit").value("ms");
  json.end_object();
  return json.str();
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json() << '\n';
  return static_cast<bool>(out);
}

std::string Tracer::summary() const {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
    std::uint32_t min_depth = ~0u;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& event : events()) {
    Agg& agg = by_name[event.name];
    ++agg.count;
    agg.total_us += event.duration_us;
    agg.min_depth = std::min(agg.min_depth, event.depth);
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(), by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });

  std::string out = "stage                                   count   total ms    mean ms\n";
  char line[160];
  for (const auto& [name, agg] : rows) {
    const std::string label(std::string(agg.min_depth * 2, ' ') + name);
    std::snprintf(line, sizeof(line), "%-38s %6llu %10.2f %10.3f\n",
                  label.c_str(),
                  static_cast<unsigned long long>(agg.count),
                  static_cast<double>(agg.total_us) / 1000.0,
                  agg.count == 0 ? 0.0
                                 : static_cast<double>(agg.total_us) /
                                       (1000.0 * static_cast<double>(agg.count)));
    out += line;
  }
  return out;
}

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // never destroyed
  return *instance;
}

Span::Span(const char* name)
    : name_(name),
      start_(std::chrono::steady_clock::now()),
      start_us_(Tracer::global().enabled() ? Tracer::global().now_us() : 0),
      depth_(depth_slot()++) {}

Span::~Span() {
  --depth_slot();
  const std::uint64_t duration_us =
      to_us(std::chrono::steady_clock::now() - start_);
  // Stage wall-time histogram: populated whether or not tracing is on, so
  // metrics output always carries per-stage timings. The handle lookup is
  // mutex-protected but spans are stage-granular, so this is cold.
  MetricsRegistry::global()
      .histogram(std::string("stage_us.") + name_)
      .record(duration_us);
  Tracer& tracer = Tracer::global();
  if (tracer.enabled()) {
    tracer.record(name_, start_us_, duration_us, depth_);
  }
}

ScopedTimer::~ScopedTimer() {
  sink_.record(to_us(std::chrono::steady_clock::now() - start_));
}

}  // namespace geonet::obs
