#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace geonet::obs {

class Histogram;
class MetricsRegistry;

/// Stage-level tracing, v2: spans carry identities and parent links.
///
/// A `Span` is an RAII marker around one pipeline stage ("synth/skitter",
/// "study/density", ...). Spans always feed a per-stage wall-time
/// histogram in the global `MetricsRegistry` (metric `stage_us.<name>`),
/// so `--metrics` output carries stage timings even without a trace file.
/// When the global `Tracer` is enabled they additionally append a
/// complete event to its buffer, which exports as Chrome
/// `trace_event`-format JSON (open in chrome://tracing or
/// https://ui.perfetto.dev) or as a per-stage tree summary.
///
/// v2 adds trace contexts: every traced span gets a process-unique id and
/// records the id of the innermost live span on its thread as its parent.
/// The ambient context is thread-local; `current_span_context()` captures
/// it and `ContextGuard` re-establishes a captured context on another
/// thread, which is how `exec::parallel_for`/`parallel_reduce` keep chunk
/// spans executed on pool workers linked to the phase that submitted them
/// (`ChunkSpan` emits the per-chunk `exec/chunk[i]` child events). The
/// Chrome export adds flow arrows for cross-thread parent/child pairs and
/// counter tracks (`exec.queue_depth`, `exec.active_workers`) sampled by
/// the pool, so a study phase visibly fans out over the pool lanes.
///
/// Cost when tracing is disabled: two steady_clock reads plus one
/// histogram record per span — intended for stage granularity (tens to
/// thousands per run), not per-element hot loops. Chunk spans and counter
/// samples cost one relaxed load when disabled.

/// One completed span. Timestamps are microseconds since the tracer's
/// epoch (process start of tracing).
struct TraceEvent {
  /// Sentinel for `chunk` on events that are not chunk spans.
  static constexpr std::uint64_t kNoChunk = ~0ULL;

  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint64_t id = 0;      ///< process-unique span id, > 0 when traced
  std::uint64_t parent = 0;  ///< id of the enclosing span, 0 = root
  std::uint32_t thread = 0;  ///< dense thread index, 0 = first seen
  std::uint32_t depth = 0;   ///< nesting depth at start, 0 = top level
  /// Chunk-span payload (`exec/chunk[i]`): chunk index and the item range
  /// [range_begin, range_end) it covered. kNoChunk on ordinary spans.
  std::uint64_t chunk = kNoChunk;
  std::uint64_t range_begin = 0;
  std::uint64_t range_end = 0;
};

/// One sampled point of a counter track (Chrome "C" events): instruments
/// whose value-over-time matters, e.g. the pool's queue depth.
struct CounterEvent {
  std::string name;
  std::uint64_t ts_us = 0;
  std::int64_t value = 0;
};

/// A captured span context: the innermost live span on a thread plus the
/// nesting depth its children would start at. Copyable and cheap; valid
/// to re-establish on another thread while the span is still live.
struct SpanContext {
  std::uint64_t span_id = 0;  ///< 0 = no live span (root)
  std::uint32_t depth = 0;    ///< depth the next child span starts at
};

/// The ambient context of the calling thread. Capture at submit time,
/// hand to workers via ContextGuard (or ChunkSpan, which does both).
[[nodiscard]] SpanContext current_span_context() noexcept;

/// Dense per-thread index, 0 = first thread seen. Shared by trace rows
/// (`TraceEvent::thread`) and log-line prefixes so the two are cross-
/// referencable.
[[nodiscard]] std::uint32_t thread_index() noexcept;

class Tracer {
 public:
  /// Starts buffering events. Also (re)sets the epoch when first enabled
  /// and pre-reserves the event buffer.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Appends one completed span. The event (name string included) must be
  /// fully built by the caller so the critical section is a single
  /// push_back into pre-reserved storage — no allocation under the lock
  /// on the common path.
  void record(TraceEvent event);

  /// Appends one counter sample (no-op when disabled).
  void record_counter(std::string_view name, std::int64_t value);

  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::vector<CounterEvent> counter_events() const;
  void clear();

  /// Microseconds since the tracer epoch.
  [[nodiscard]] std::uint64_t now_us() const noexcept;

  /// Chrome trace_event JSON: complete ("X") events with span/parent ids
  /// and chunk ranges in args, flow ("s"/"f") arrows for cross-thread
  /// parent links, counter ("C") track events, and — when `provenance` is
  /// a non-empty JSON object — a top-level "geonet" provenance stamp.
  [[nodiscard]] std::string chrome_trace_json(
      std::string_view provenance = {}) const;
  bool write_chrome_trace(const std::string& path) const;

  /// Per-stage tree summary: stages indented under their parent stage,
  /// with count, total, self (total minus child spans) and p50/p95/max
  /// estimated from pow2-bucket histograms of the span durations.
  [[nodiscard]] std::string summary() const;

  /// Machine-readable profile, schema `geonet.profile.v1`: the same
  /// stage tree as `summary()` as a flat array of stage rows with parent
  /// names. Emitted via the CLI's `--profile` and embedded in run
  /// reports. `provenance` (a JSON object, usually
  /// `store::provenance_json()`) is spliced in when non-empty.
  [[nodiscard]] std::string profile_json(std::string_view provenance = {}) const;

  static Tracer& global();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::vector<CounterEvent> counters_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

/// RAII span around one stage. The `const char*` constructor borrows the
/// name (string literals); the `std::string` overload owns it (dynamic
/// names such as per-chunk labels).
class Span {
 public:
  explicit Span(const char* name);
  explicit Span(std::string name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void open();

  std::string owned_;  ///< backing storage for dynamic names (else empty)
  const char* name_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t start_us_ = 0;  ///< tracer-epoch timestamp (only if traced)
  std::uint64_t id_ = 0;        ///< assigned only while tracing
  std::uint64_t parent_ = 0;
  std::uint32_t depth_ = 0;
};

/// Re-establishes a captured context as this thread's ambient context for
/// the guard's lifetime — the bridge that carries a submitting phase's
/// span across the pool to its workers.
class ContextGuard {
 public:
  explicit ContextGuard(SpanContext context) noexcept;
  ~ContextGuard();

  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  SpanContext saved_;
};

/// Trace-only RAII span for one executed chunk of a parallel region:
/// re-establishes the region's context on the executing thread and emits
/// an `exec/chunk[i]` child event carrying the chunk index and item
/// range. Complete no-op when the tracer is disabled — chunk spans never
/// feed `stage_us.*` histograms, keeping the trace-off overhead of
/// chunk-granularity regions flat.
class ChunkSpan {
 public:
  ChunkSpan(SpanContext region, std::size_t chunk, std::size_t range_begin,
            std::size_t range_end) noexcept;
  ~ChunkSpan();

  ChunkSpan(const ChunkSpan&) = delete;
  ChunkSpan& operator=(const ChunkSpan&) = delete;

 private:
  SpanContext saved_;  ///< ambient context to restore
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint32_t depth_ = 0;
  std::uint64_t start_us_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t chunk_ = 0;
  std::uint64_t range_begin_ = 0;
  std::uint64_t range_end_ = 0;
  bool active_ = false;
};

/// RAII timer that records elapsed microseconds into one histogram and
/// nothing else — for sub-stage measurements too frequent to trace.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink) noexcept
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace geonet::obs
