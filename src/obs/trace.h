#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace geonet::obs {

class Histogram;

/// Stage-level tracing.
///
/// A `Span` is an RAII marker around one pipeline stage ("synth/skitter",
/// "study/density", ...). Spans always feed a per-stage wall-time
/// histogram in the global `MetricsRegistry` (metric `stage_us.<name>`),
/// so `--metrics` output carries stage timings even without a trace file.
/// When the global `Tracer` is enabled they additionally append a
/// complete event to its buffer, which exports as Chrome
/// `trace_event`-format JSON (open in chrome://tracing or
/// https://ui.perfetto.dev) or as a flat text summary.
///
/// Spans nest: a thread-local depth counter tracks the current stack so
/// the text summary can indent by nesting; the Chrome viewer infers
/// nesting from timestamps on its own.
///
/// Cost when tracing is disabled: two steady_clock reads plus one
/// histogram record per span — intended for stage granularity (tens to
/// thousands per run), not per-element hot loops. For hot loops, use
/// counters.

/// One completed span. Timestamps are microseconds since the tracer's
/// epoch (process start of tracing).
struct TraceEvent {
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint32_t thread = 0;  ///< dense thread index, 0 = first seen
  std::uint32_t depth = 0;   ///< nesting depth at start, 0 = top level
};

class Tracer {
 public:
  /// Starts buffering events. Also (re)sets the epoch when first enabled.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(std::string name, std::uint64_t start_us,
              std::uint64_t duration_us, std::uint32_t depth);

  [[nodiscard]] std::vector<TraceEvent> events() const;
  void clear();

  /// Microseconds since the tracer epoch.
  [[nodiscard]] std::uint64_t now_us() const noexcept;

  /// Chrome trace_event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  [[nodiscard]] std::string chrome_trace_json() const;
  bool write_chrome_trace(const std::string& path) const;

  /// Flat per-stage summary (count, total, mean), longest first.
  [[nodiscard]] std::string summary() const;

  static Tracer& global();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

/// RAII span around one stage. `name` must outlive the span (string
/// literals in practice).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t start_us_;  ///< tracer-epoch timestamp (only if enabled)
  std::uint32_t depth_;
};

/// RAII timer that records elapsed microseconds into one histogram and
/// nothing else — for sub-stage measurements too frequent to trace.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink) noexcept
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace geonet::obs
