#include "obs/run_report.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <map>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace geonet::obs {

void RunReport::set_info(std::string key, std::string value) {
  info_.emplace_back(std::move(key), std::move(value));
}

void RunReport::add_section(std::string name, std::string json) {
  assert(json_validate(json) && "section payload must be valid JSON");
  sections_.emplace_back(std::move(name), std::move(json));
}

std::string RunReport::to_json(const MetricsRegistry& metrics,
                               const Tracer& tracer) const {
  JsonWriter json;
  json.begin_object();
  json.key("schema").value("geonet.run_report.v1");
  json.key("command").value(command_);

  json.key("info").begin_object();
  for (const auto& [key, value] : info_) json.key(key).value(value);
  json.end_object();

  json.key("sections").begin_object();
  for (const auto& [name, payload] : sections_) json.key(name).raw(payload);
  json.end_object();

  json.key("metrics").raw(metrics.to_json());

  // Span aggregation. Prefer the tracer's buffer (exact, ordered); fall
  // back to the stage_us.* histograms so reports carry stage timings even
  // when tracing was never enabled.
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
  };
  std::map<std::string, Agg> spans;
  for (const TraceEvent& event : tracer.events()) {
    Agg& agg = spans[event.name];
    ++agg.count;
    agg.total_us += event.duration_us;
  }
  if (spans.empty()) {
    constexpr std::string_view kPrefix = "stage_us.";
    for (const auto& row : metrics.histograms()) {
      if (row.name.rfind(kPrefix, 0) != 0) continue;
      spans[row.name.substr(kPrefix.size())] = {row.histogram->count(),
                                                row.histogram->sum()};
    }
  }
  json.key("spans").begin_array();
  for (const auto& [name, agg] : spans) {
    json.begin_object();
    json.key("name").value(name);
    json.key("count").value(agg.count);
    json.key("total_us").value(agg.total_us);
    json.key("mean_us").value(
        agg.count == 0 ? 0.0
                       : static_cast<double>(agg.total_us) /
                             static_cast<double>(agg.count));
    json.end_object();
  }
  json.end_array();

  json.end_object();
  return json.str();
}

std::string RunReport::to_json() const {
  return to_json(MetricsRegistry::global(), Tracer::global());
}

bool RunReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << '\n';
  return static_cast<bool>(out);
}

}  // namespace geonet::obs
