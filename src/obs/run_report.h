#pragma once

#include <string>
#include <utility>
#include <vector>

namespace geonet::obs {

class MetricsRegistry;
class Tracer;

/// Machine-readable record of one run — the single JSON artifact a CLI
/// invocation or bench binary leaves behind (`--metrics <file>`,
/// `results/BENCH_*.json`). Schema `geonet.run_report.v1`:
///
/// {
///   "schema": "geonet.run_report.v1",
///   "command": "scenario",
///   "info":     { "scale": "0.15", ... },            // free-form strings
///   "sections": { "<name>": <object>, ... },         // domain payloads
///   "metrics":  { "counters": {...}, "gauges": {...},
///                 "histograms": { "<name>": { count,sum,min,max,mean,
///                                             buckets:[{le,count}] } } },
///   "spans":    [ { "name", "count", "total_us", "mean_us" }, ... ]
/// }
///
/// Sections are pre-rendered JSON objects supplied by the layers that own
/// the data (core::study_report_json, synth::processing_stats_json, ...),
/// keeping obs free of upward dependencies.
class RunReport {
 public:
  explicit RunReport(std::string command) : command_(std::move(command)) {}

  /// Adds a free-form string fact ("scale", "dataset", "argv", ...).
  void set_info(std::string key, std::string value);

  /// Attaches a pre-rendered JSON object under sections.<name>.
  /// `json` must be a valid JSON value (asserted in debug builds).
  void add_section(std::string name, std::string json);

  /// Renders the report, embedding the registry's current metrics and a
  /// per-stage span aggregation (from the tracer's buffer when tracing
  /// was on, else from the stage_us.* histograms).
  [[nodiscard]] std::string to_json(const MetricsRegistry& metrics,
                                    const Tracer& tracer) const;
  /// Same, against the global registry/tracer.
  [[nodiscard]] std::string to_json() const;

  bool write(const std::string& path) const;

 private:
  std::string command_;
  std::vector<std::pair<std::string, std::string>> info_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

}  // namespace geonet::obs
