#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace geonet::obs {

/// Observability primitives for the pipeline: named counters, gauges and
/// fixed-bucket latency histograms collected in a process-wide registry.
///
/// Design constraints (see docs/observability.md):
///  * increments must be cheap enough for hot loops — the increment path
///    is a single relaxed fetch_add on a thread-sharded cache line, with
///    no locks and no allocation;
///  * handles are stable for the life of the registry, so call sites
///    resolve a name once (static local) and then touch only atomics;
///  * reads (snapshots, JSON export) are approximate under concurrent
///    writes, which is fine for reporting.

/// Number of independent cells a counter is split across. Each cell sits
/// on its own cache line so concurrent writers from different threads do
/// not bounce a shared line.
inline constexpr std::size_t kCounterShards = 8;

/// Monotonic counter. add() is lock-free and wait-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shard_for_thread().fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over shards; approximate under concurrent writes.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.cell.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (auto& shard : shards_) shard.cell.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> cell{0};
  };

  [[nodiscard]] std::atomic<std::uint64_t>& shard_for_thread() noexcept;

  std::array<Shard, kCounterShards> shards_;
};

/// Last-value-wins gauge (e.g. dataset sizes, configuration knobs).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram for latencies (or any non-negative integer
/// quantity). Buckets are powers of two: bucket i counts samples in
/// [2^i, 2^(i+1)), bucket 0 additionally holds 0. With 40 buckets the
/// range covers 1 microsecond .. ~12 days when fed microseconds.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void record(std::uint64_t sample) noexcept {
    buckets_[bucket_index(sample)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    update_min(sample);
    update_max(sample);
  }

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t sample) noexcept {
    if (sample < 2) return 0;
    const auto bit = static_cast<std::size_t>(64 - __builtin_clzll(sample) - 1);
    return bit < kBuckets ? bit : kBuckets - 1;
  }

  /// Inclusive upper bound of bucket i (lower bound of bucket i+1 is +1).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t i) noexcept {
    return (i + 1 >= 64) ? ~0ULL : (1ULL << (i + 1)) - 1;
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const noexcept;  ///< 0 when empty
  [[nodiscard]] std::uint64_t max() const noexcept;  ///< 0 when empty
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Quantile estimate from the pow2 buckets: finds the bucket holding
  /// the q-th sample and interpolates linearly inside it, clamped to the
  /// exact observed [min, max]. q in [0, 1]; returns 0 when empty.
  /// Resolution is bucket-width (a factor of 2), which is enough to rank
  /// stages and spot order-of-magnitude shifts.
  [[nodiscard]] double percentile(double q) const noexcept;

 private:
  void update_min(std::uint64_t sample) noexcept;
  void update_max(std::uint64_t sample) noexcept;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ULL};
  std::atomic<std::uint64_t> max_{0};
};

/// Name → instrument registry. Lookup/registration takes a mutex (cold
/// path, do it once per call site); the returned references stay valid
/// for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  struct CounterRow {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeRow {
    std::string name;
    std::int64_t value;
  };
  struct HistogramRow {
    std::string name;
    const Histogram* histogram;
  };

  /// Name-sorted snapshots.
  [[nodiscard]] std::vector<CounterRow> counters() const;
  [[nodiscard]] std::vector<GaugeRow> gauges() const;
  [[nodiscard]] std::vector<HistogramRow> histograms() const;

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...}}.
  [[nodiscard]] std::string to_json() const;

  /// Drops every registered instrument (invalidates handles; tests only).
  void clear();

  /// The process-wide registry the pipeline instruments report to.
  static MetricsRegistry& global();

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::unique_ptr<T> instrument;
  };

  mutable std::mutex mutex_;
  std::vector<Named<Counter>> counters_;
  std::vector<Named<Gauge>> gauges_;
  std::vector<Named<Histogram>> histograms_;
};

}  // namespace geonet::obs
