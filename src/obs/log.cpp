#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/trace.h"

namespace geonet::obs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

std::uint64_t elapsed_us_since_first_log() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

std::size_t format_log_prefix(std::uint64_t elapsed_us, std::uint32_t thread,
                              char* buf, std::size_t size) noexcept {
  const int n =
      std::snprintf(buf, size, "[%8.1fms t%02u] ",
                    static_cast<double>(elapsed_us) / 1000.0, thread);
  return n < 0 ? 0 : static_cast<std::size_t>(n);
}

void log(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char prefix[48];
  format_log_prefix(elapsed_us_since_first_log(), thread_index(), prefix,
                    sizeof(prefix));

  // Render the message into one buffer so prefix + body + newline reach
  // stderr as a single write — interleaved threads stay line-atomic in
  // practice.
  char stack_buf[512];
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return;
  }
  if (static_cast<std::size_t>(needed) < sizeof(stack_buf)) {
    va_end(args_copy);
    std::fprintf(stderr, "%s%s%s", prefix, stack_buf,
                 (needed == 0 || stack_buf[needed - 1] != '\n') ? "\n" : "");
    return;
  }
  std::string body(static_cast<std::size_t>(needed) + 1, '\0');
  std::vsnprintf(body.data(), body.size(), fmt, args_copy);
  va_end(args_copy);
  body.resize(static_cast<std::size_t>(needed));
  std::fprintf(stderr, "%s%s%s", prefix, body.c_str(),
               (body.empty() || body.back() != '\n') ? "\n" : "");
}

}  // namespace geonet::obs
