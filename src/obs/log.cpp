#include "obs/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace geonet::obs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  const std::size_t len = std::strlen(fmt);
  if (len == 0 || fmt[len - 1] != '\n') std::fputc('\n', stderr);
}

}  // namespace geonet::obs
