#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace geonet::obs {

/// Minimal streaming JSON writer — the only JSON producer in geonet, so
/// every machine-readable artifact (traces, metrics, run reports, bench
/// records) shares one escaping and number-formatting policy.
///
/// The writer maintains a container stack and inserts commas itself;
/// misuse (value without key inside an object, unbalanced end_*) is a
/// programming error and asserts in debug builds. Non-finite doubles are
/// emitted as null, keeping output strictly RFC 8259 parseable.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& null();

  /// Splices pre-rendered JSON (e.g. a section built by another writer)
  /// as one value. The caller vouches for its validity.
  JsonWriter& raw(std::string_view json);

  /// The document so far. Call after the last end_*.
  [[nodiscard]] const std::string& str() const noexcept { return out_; }

  /// Appends a correctly escaped JSON string literal (with quotes) to `out`.
  static void append_escaped(std::string& out, std::string_view s);

 private:
  void before_value();

  std::string out_;
  std::vector<char> stack_;      // '{' or '['
  bool needs_comma_ = false;
  bool have_key_ = false;
};

/// Validates that `text` is one well-formed JSON value (RFC 8259 subset:
/// full syntax, no depth limit beyond recursion). On failure returns
/// false and, when `error` is non-null, a short diagnostic with offset.
/// Used by tests and tools/check_trace.py's C++ twin; not a parser — it
/// builds no DOM.
bool json_validate(std::string_view text, std::string* error = nullptr);

/// Parsed JSON value — the DOM counterpart to JsonWriter, introduced for
/// consumers of our own artifacts (the perf gate reads BENCH_*.json).
/// Owning tree; numbers are stored as double (exact for integers up to
/// 2^53, far beyond any microsecond timing we record). Object members
/// keep document order; lookup returns the first match.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Object, Array };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::String; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }

  /// Typed accessors with defaults — wrong-kind access returns the
  /// default rather than throwing, so schema drift degrades softly.
  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const noexcept {
    return is_number() ? number_ : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const noexcept {
    return is_number() ? static_cast<std::int64_t>(number_) : fallback;
  }
  [[nodiscard]] std::string_view as_string(
      std::string_view fallback = {}) const noexcept {
    return is_string() ? std::string_view(string_) : fallback;
  }

  /// Object member by key; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
  /// All object members in document order (empty unless an object).
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const noexcept {
    return members_;
  }
  /// Array elements (empty unless an array).
  [[nodiscard]] const std::vector<JsonValue>& items() const noexcept {
    return items_;
  }

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_object();
  static JsonValue make_array();

  void add_member(std::string key, JsonValue value);
  void add_item(JsonValue value);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> items_;
};

/// Parses one JSON document into a JsonValue tree. Returns nullopt on
/// malformed input (diagnostic with offset in `error` when non-null).
/// obs sits below err, so this reports via optional rather than
/// err::Result; callers wanting rich errors wrap it themselves.
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace geonet::obs
