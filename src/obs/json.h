#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace geonet::obs {

/// Minimal streaming JSON writer — the only JSON producer in geonet, so
/// every machine-readable artifact (traces, metrics, run reports, bench
/// records) shares one escaping and number-formatting policy.
///
/// The writer maintains a container stack and inserts commas itself;
/// misuse (value without key inside an object, unbalanced end_*) is a
/// programming error and asserts in debug builds. Non-finite doubles are
/// emitted as null, keeping output strictly RFC 8259 parseable.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& null();

  /// Splices pre-rendered JSON (e.g. a section built by another writer)
  /// as one value. The caller vouches for its validity.
  JsonWriter& raw(std::string_view json);

  /// The document so far. Call after the last end_*.
  [[nodiscard]] const std::string& str() const noexcept { return out_; }

  /// Appends a correctly escaped JSON string literal (with quotes) to `out`.
  static void append_escaped(std::string& out, std::string_view s);

 private:
  void before_value();

  std::string out_;
  std::vector<char> stack_;      // '{' or '['
  bool needs_comma_ = false;
  bool have_key_ = false;
};

/// Validates that `text` is one well-formed JSON value (RFC 8259 subset:
/// full syntax, no depth limit beyond recursion). On failure returns
/// false and, when `error` is non-null, a short diagnostic with offset.
/// Used by tests and tools/check_trace.py's C++ twin; not a parser — it
/// builds no DOM.
bool json_validate(std::string_view text, std::string* error = nullptr);

}  // namespace geonet::obs
