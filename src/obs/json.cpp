#include "obs/json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace geonet::obs {

void JsonWriter::append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void JsonWriter::before_value() {
  if (!stack_.empty() && stack_.back() == '{') {
    assert(have_key_ && "object members need a key() first");
    have_key_ = false;
    return;  // key() already handled the comma
  }
  if (needs_comma_) out_ += ',';
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back('{');
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back() == '{');
  stack_.pop_back();
  out_ += '}';
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back('[');
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back() == '[');
  stack_.pop_back();
  out_ += ']';
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!stack_.empty() && stack_.back() == '{');
  if (needs_comma_) out_ += ',';
  append_escaped(out_, k);
  out_ += ':';
  needs_comma_ = false;
  have_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  append_escaped(out_, v);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    out_ += buf;
  }
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  before_value();
  out_.append(json);
  needs_comma_ = true;
  return *this;
}

// ---------------------------------------------------------------------
// Validator: a hand-rolled recursive-descent checker.
// ---------------------------------------------------------------------

namespace {

struct Checker {
  std::string_view text;
  std::size_t pos = 0;
  std::string* error;

  bool fail(const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos >= text.size();
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return fail("bad literal");
    pos += word.size();
    return true;
  }

  bool string() {
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return fail("dangling escape");
        const char e = text[pos];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (pos >= text.size() || !std::isxdigit(static_cast<unsigned char>(text[pos]))) {
              return fail("bad \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape");
        }
      }
      ++pos;
    }
    return fail("unterminated string");
  }

  bool digits() {
    if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
      return fail("expected digit");
    }
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    return true;
  }

  bool number() {
    if (pos < text.size() && text[pos] == '-') ++pos;
    if (pos < text.size() && text[pos] == '0') {
      ++pos;  // leading zero: no further integer digits allowed
    } else if (!digits()) {
      return false;
    }
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (!digits()) return false;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    skip_ws();
    if (pos >= text.size()) return fail("expected value");
    switch (text[pos]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos;  // '{'
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos >= text.size() || text[pos] != ':') return fail("expected ':'");
      ++pos;
      if (!value()) return false;
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array() {
    ++pos;  // '['
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool json_validate(std::string_view text, std::string* error) {
  Checker checker{text, 0, error};
  if (!checker.value()) return false;
  if (!checker.at_end()) return checker.fail("trailing content");
  return true;
}

// ---------------------------------------------------------------------
// DOM parser: same grammar as the Checker, but builds a JsonValue tree.
// ---------------------------------------------------------------------

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::Bool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue out;
  out.kind_ = Kind::Number;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::String;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_object() {
  JsonValue out;
  out.kind_ = Kind::Object;
  return out;
}

JsonValue JsonValue::make_array() {
  JsonValue out;
  out.kind_ = Kind::Array;
  return out;
}

void JsonValue::add_member(std::string key, JsonValue value) {
  assert(kind_ == Kind::Object);
  members_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::add_item(JsonValue value) {
  assert(kind_ == Kind::Array);
  items_.push_back(std::move(value));
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser. Kept separate from the Checker so the
/// validator stays allocation-free; the two share the grammar by
/// construction (both are direct transcriptions of RFC 8259).
struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string* error;

  std::optional<JsonValue> fail(const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + " at offset " + std::to_string(pos);
    }
    return std::nullopt;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool hex4(std::uint32_t& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos >= text.size()) return false;
      const char c = text[pos++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    return true;
  }

  std::optional<std::string> string() {
    if (pos >= text.size() || text[pos] != '"') return std::nullopt;
    ++pos;
    std::string out;
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      if (c != '\\') {
        out += c;
        ++pos;
        continue;
      }
      ++pos;
      if (pos >= text.size()) return std::nullopt;
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!hex4(cp)) return std::nullopt;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // surrogate pair
            if (pos + 1 < text.size() && text[pos] == '\\' &&
                text[pos + 1] == 'u') {
              pos += 2;
              std::uint32_t low = 0;
              if (!hex4(low) || low < 0xDC00 || low > 0xDFFF) {
                return std::nullopt;
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            }  // lone surrogate: emit as-is, matching the validator
          }
          append_utf8(out, cp);
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> number() {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    const auto digits = [&] {
      const std::size_t before = pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
      return pos > before;
    };
    if (pos < text.size() && text[pos] == '0') {
      ++pos;
    } else if (!digits()) {
      return fail("expected digit");
    }
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (!digits()) return fail("expected fraction digits");
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (!digits()) return fail("expected exponent digits");
    }
    const std::string token(text.substr(start, pos - start));
    return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos >= text.size()) return fail("expected value");
    switch (text[pos]) {
      case '{': return object();
      case '[': return array();
      case '"': {
        auto s = string();
        if (!s) return fail("bad string");
        return JsonValue::make_string(std::move(*s));
      }
      case 't':
        if (!literal("true")) return fail("bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!literal("false")) return fail("bad literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!literal("null")) return fail("bad literal");
        return JsonValue::make_null();
      default: return number();
    }
  }

  std::optional<JsonValue> object() {
    ++pos;  // '{'
    JsonValue out = JsonValue::make_object();
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return out;
    }
    while (true) {
      skip_ws();
      auto key = string();
      if (!key) return fail("expected member key");
      skip_ws();
      if (pos >= text.size() || text[pos] != ':') return fail("expected ':'");
      ++pos;
      auto member = value();
      if (!member) return std::nullopt;
      out.add_member(std::move(*key), std::move(*member));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return out;
      }
      return fail("expected ',' or '}'");
    }
  }

  std::optional<JsonValue> array() {
    ++pos;  // '['
    JsonValue out = JsonValue::make_array();
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return out;
    }
    while (true) {
      auto item = value();
      if (!item) return std::nullopt;
      out.add_item(std::move(*item));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return out;
      }
      return fail("expected ',' or ']'");
    }
  }
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text, std::string* error) {
  Parser parser{text, 0, error};
  auto root = parser.value();
  if (!root) return std::nullopt;
  parser.skip_ws();
  if (parser.pos < parser.text.size()) return parser.fail("trailing content");
  return root;
}

}  // namespace geonet::obs
