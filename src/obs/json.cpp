#include "obs/json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace geonet::obs {

void JsonWriter::append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void JsonWriter::before_value() {
  if (!stack_.empty() && stack_.back() == '{') {
    assert(have_key_ && "object members need a key() first");
    have_key_ = false;
    return;  // key() already handled the comma
  }
  if (needs_comma_) out_ += ',';
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back('{');
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back() == '{');
  stack_.pop_back();
  out_ += '}';
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back('[');
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back() == '[');
  stack_.pop_back();
  out_ += ']';
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!stack_.empty() && stack_.back() == '{');
  if (needs_comma_) out_ += ',';
  append_escaped(out_, k);
  out_ += ':';
  needs_comma_ = false;
  have_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  append_escaped(out_, v);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    out_ += buf;
  }
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  before_value();
  out_.append(json);
  needs_comma_ = true;
  return *this;
}

// ---------------------------------------------------------------------
// Validator: a hand-rolled recursive-descent checker.
// ---------------------------------------------------------------------

namespace {

struct Checker {
  std::string_view text;
  std::size_t pos = 0;
  std::string* error;

  bool fail(const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos >= text.size();
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return fail("bad literal");
    pos += word.size();
    return true;
  }

  bool string() {
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return fail("dangling escape");
        const char e = text[pos];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (pos >= text.size() || !std::isxdigit(static_cast<unsigned char>(text[pos]))) {
              return fail("bad \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape");
        }
      }
      ++pos;
    }
    return fail("unterminated string");
  }

  bool digits() {
    if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
      return fail("expected digit");
    }
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    return true;
  }

  bool number() {
    if (pos < text.size() && text[pos] == '-') ++pos;
    if (pos < text.size() && text[pos] == '0') {
      ++pos;  // leading zero: no further integer digits allowed
    } else if (!digits()) {
      return false;
    }
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (!digits()) return false;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    skip_ws();
    if (pos >= text.size()) return fail("expected value");
    switch (text[pos]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos;  // '{'
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos >= text.size() || text[pos] != ':') return fail("expected ':'");
      ++pos;
      if (!value()) return false;
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array() {
    ++pos;  // '['
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool json_validate(std::string_view text, std::string* error) {
  Checker checker{text, 0, error};
  if (!checker.value()) return false;
  if (!checker.at_end()) return checker.fail("trailing content");
  return true;
}

}  // namespace geonet::obs
