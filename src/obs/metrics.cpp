#include "obs/metrics.h"

#include <algorithm>
#include <thread>

#include "obs/json.h"

namespace geonet::obs {

std::atomic<std::uint64_t>& Counter::shard_for_thread() noexcept {
  // Cheap thread → shard mapping: hash of the thread id, computed once
  // per thread. Collisions only cost sharing, never correctness.
  static thread_local const std::size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kCounterShards;
  return shards_[shard].cell;
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == ~0ULL ? 0 : v;
}

std::uint64_t Histogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::percentile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(n);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const auto in_bucket =
        static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= target) {
      const double lower = i == 0 ? 0.0 : static_cast<double>(1ULL << i);
      const double upper = static_cast<double>(bucket_upper(i));
      const double fraction = (target - cumulative) / in_bucket;
      const double estimate = lower + fraction * (upper - lower);
      const auto lo = static_cast<double>(min());
      const auto hi = static_cast<double>(max());
      return std::min(std::max(estimate, lo), hi);
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max());
}

void Histogram::update_min(std::uint64_t sample) noexcept {
  std::uint64_t current = min_.load(std::memory_order_relaxed);
  while (sample < current &&
         !min_.compare_exchange_weak(current, sample,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::update_max(std::uint64_t sample) noexcept {
  std::uint64_t current = max_.load(std::memory_order_relaxed);
  while (sample > current &&
         !max_.compare_exchange_weak(current, sample,
                                     std::memory_order_relaxed)) {
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  for (const auto& entry : counters_) {
    if (entry.name == name) return *entry.instrument;
  }
  counters_.push_back({std::string(name), std::make_unique<Counter>()});
  return *counters_.back().instrument;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  for (const auto& entry : gauges_) {
    if (entry.name == name) return *entry.instrument;
  }
  gauges_.push_back({std::string(name), std::make_unique<Gauge>()});
  return *gauges_.back().instrument;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  for (const auto& entry : histograms_) {
    if (entry.name == name) return *entry.instrument;
  }
  histograms_.push_back({std::string(name), std::make_unique<Histogram>()});
  return *histograms_.back().instrument;
}

std::vector<MetricsRegistry::CounterRow> MetricsRegistry::counters() const {
  std::vector<CounterRow> rows;
  {
    const std::scoped_lock lock(mutex_);
    rows.reserve(counters_.size());
    for (const auto& entry : counters_) {
      rows.push_back({entry.name, entry.instrument->value()});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const CounterRow& a, const CounterRow& b) { return a.name < b.name; });
  return rows;
}

std::vector<MetricsRegistry::GaugeRow> MetricsRegistry::gauges() const {
  std::vector<GaugeRow> rows;
  {
    const std::scoped_lock lock(mutex_);
    rows.reserve(gauges_.size());
    for (const auto& entry : gauges_) {
      rows.push_back({entry.name, entry.instrument->value()});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const GaugeRow& a, const GaugeRow& b) { return a.name < b.name; });
  return rows;
}

std::vector<MetricsRegistry::HistogramRow> MetricsRegistry::histograms() const {
  std::vector<HistogramRow> rows;
  {
    const std::scoped_lock lock(mutex_);
    rows.reserve(histograms_.size());
    for (const auto& entry : histograms_) {
      rows.push_back({entry.name, entry.instrument.get()});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const HistogramRow& a, const HistogramRow& b) {
    return a.name < b.name;
  });
  return rows;
}

std::string MetricsRegistry::to_json() const {
  JsonWriter json;
  json.begin_object();

  json.key("counters").begin_object();
  for (const auto& row : counters()) {
    json.key(row.name).value(row.value);
  }
  json.end_object();

  json.key("gauges").begin_object();
  for (const auto& row : gauges()) {
    json.key(row.name).value(row.value);
  }
  json.end_object();

  json.key("histograms").begin_object();
  for (const auto& row : histograms()) {
    const Histogram& h = *row.histogram;
    json.key(row.name).begin_object();
    json.key("count").value(h.count());
    json.key("sum").value(h.sum());
    json.key("min").value(h.min());
    json.key("max").value(h.max());
    json.key("mean").value(h.mean());
    json.key("buckets").begin_array();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h.bucket_count(i);
      if (n == 0) continue;  // sparse: empty buckets carry no information
      json.begin_object();
      json.key("le").value(Histogram::bucket_upper(i));
      json.key("count").value(n);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();

  json.end_object();
  return json.str();
}

void MetricsRegistry::clear() {
  const std::scoped_lock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never destroyed
  return *instance;
}

}  // namespace geonet::obs
