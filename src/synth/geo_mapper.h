#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geo/geo_point.h"
#include "geo/grid.h"
#include "net/ipv4.h"
#include "stats/rng.h"

namespace geonet::synth {

/// Error model of one geolocation service.
///
/// Padmanabhan & Subramanian showed hostname-based mapping is accurate to
/// city granularity; both tools the paper uses are built on that technique,
/// so the dominant error mode simulated here is a *city snap*: the true
/// location is replaced by the nearest city in the mapper's database. Two
/// further modes reproduce the paper's caveats: whois-style fallback maps a
/// node to its organisation's registered headquarters, and a small fraction
/// of addresses cannot be located at all.
struct MapperProfile {
  std::string name;
  double failure_rate = 0.015;   ///< P[address cannot be located]
  double hq_error_rate = 0.03;   ///< P[mapped to the AS home, not the node]
  /// P[the service knows the precise location (ISP-supplied data), so the
  /// answer is the true location quantised rather than a city snap].
  double precise_rate = 0.0;
  /// Quantisation of precise answers, degrees.
  double precise_quantum_deg = 0.05;
};

/// Deterministic nearest-city lookup over a fixed city database, bucketed
/// on a coarse grid for speed.
class CityIndex {
 public:
  explicit CityIndex(std::vector<geo::GeoPoint> cities,
                     double bucket_deg = 2.0);

  /// Index of the nearest city, or nullopt when the database is empty.
  [[nodiscard]] std::optional<std::size_t> nearest(const geo::GeoPoint& p) const;

  [[nodiscard]] const std::vector<geo::GeoPoint>& cities() const noexcept {
    return cities_;
  }

 private:
  std::vector<geo::GeoPoint> cities_;
  double bucket_deg_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::vector<std::uint32_t>> buckets_;

  [[nodiscard]] std::size_t bucket_of(const geo::GeoPoint& p) const noexcept;
};

/// Interface of a geolocation service: address in, location out.
/// `true_location` and `as_home` are the oracle inputs a synthetic
/// implementation may consult to produce realistic answers; a real
/// service would have neither.
class Mapper {
 public:
  virtual ~Mapper() = default;
  [[nodiscard]] virtual std::optional<geo::GeoPoint> map(
      net::Ipv4Addr addr, const geo::GeoPoint& true_location,
      const geo::GeoPoint& as_home) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// A simulated geolocation service (IxMapper / EdgeScape profile).
///
/// Mapping is a pure function of (address, seed): the same address always
/// maps the same way, as a real lookup database would behave.
class GeoMapper final : public Mapper {
 public:
  GeoMapper(MapperProfile profile, std::vector<geo::GeoPoint> city_db,
            std::uint64_t seed);

  /// Maps an address. `true_location` is where the interface really is;
  /// `as_home` is the registered headquarters of its organisation.
  /// Returns nullopt for unmappable addresses (including all private
  /// space, which the paper discards before mapping).
  [[nodiscard]] std::optional<geo::GeoPoint> map(
      net::Ipv4Addr addr, const geo::GeoPoint& true_location,
      const geo::GeoPoint& as_home) const override;

  [[nodiscard]] std::string name() const override { return profile_.name; }

  [[nodiscard]] const MapperProfile& profile() const noexcept { return profile_; }

  /// The paper's two services.
  static MapperProfile ixmapper_profile();
  static MapperProfile edgescape_profile();

 private:
  MapperProfile profile_;
  CityIndex index_;
  std::uint64_t seed_;
};

}  // namespace geonet::synth
