#include "synth/bgp.h"

#include <stdexcept>

namespace geonet::synth {

void BgpTable::announce(const net::Prefix& prefix, std::uint32_t asn) {
  const net::Prefix p = net::normalized(prefix);
  entries_.push_back({p, asn});
  trie_.insert(p, asn);
}

std::optional<std::uint32_t> BgpTable::origin_as(net::Ipv4Addr addr) const noexcept {
  return trie_.longest_match(addr);
}

net::Prefix AddressAllocator::allocate_block(std::uint8_t length) {
  if (length < 8 || length > 30) {
    throw std::invalid_argument("AddressAllocator: length must be in [8,30]");
  }
  const std::uint32_t block_size = 1u << (32 - length);
  // Align the cursor to the block size.
  std::uint32_t start = (cursor_ + block_size - 1) & ~(block_size - 1);

  // Skip reserved ranges entirely.
  const auto overlaps_reserved = [&](std::uint32_t s) {
    const std::uint32_t e = s + block_size - 1;
    const auto hits = [&](std::uint32_t lo, std::uint32_t hi) {
      return s <= hi && e >= lo;
    };
    return hits(0x0a000000u, 0x0affffffu) ||  // 10/8
           hits(0x7f000000u, 0x7fffffffu) ||  // 127/8
           hits(0xac100000u, 0xac1fffffu) ||  // 172.16/12
           hits(0xc0a80000u, 0xc0a8ffffu) ||  // 192.168/16
           hits(0xe0000000u, 0xffffffffu);    // multicast + reserved
  };
  while (overlaps_reserved(start)) {
    start += block_size;
  }
  if (start < cursor_) {
    throw std::runtime_error("AddressAllocator: public IPv4 space exhausted");
  }
  cursor_ = start + block_size;
  allocated_ += block_size;
  return net::Prefix{net::Ipv4Addr{start}, length};
}

net::Ipv4Addr AsAddressSpace::next() {
  const std::uint32_t block_size = 1u << (32 - block_length_);
  if (blocks_.empty() || offset_ >= block_size) {
    blocks_.push_back(allocator_->allocate_block(block_length_));
    offset_ = 1;  // skip the network address itself
  }
  return net::Ipv4Addr{blocks_.back().network.value + offset_++};
}

}  // namespace geonet::synth
