#include "synth/skitter.h"

#include <algorithm>
#include <unordered_set>

#include "net/graph_algos.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/rng.h"

namespace geonet::synth {

namespace {

std::uint64_t pair_key(net::InterfaceId a, net::InterfaceId b) noexcept {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return (hi << 32) | lo;
}

}  // namespace

InterfaceObservation run_skitter(const GroundTruth& truth,
                                 const SkitterOptions& options) {
  const obs::Span span("synth/skitter");
  InterfaceObservation out;
  const net::Topology& topology = truth.topology();
  const std::size_t n = topology.router_count();
  if (n == 0) return out;

  stats::Rng rng(options.seed);

  // Per-router trait: does it answer TTL-expired probes?
  std::vector<bool> responds(n, true);
  if (options.hop_response_rate < 1.0) {
    stats::Rng trait_rng = rng.fork(0x51);
    for (std::size_t r = 0; r < n; ++r) {
      responds[r] = trait_rng.bernoulli(options.hop_response_rate);
    }
  }

  // Monitors sit at well-connected routers (measurement infrastructure
  // lives in big POPs), chosen degree-weighted.
  std::vector<double> degree_weights(n);
  for (net::RouterId r = 0; r < n; ++r) {
    degree_weights[r] = static_cast<double>(topology.degree(r));
  }
  const stats::DiscreteSampler monitor_sampler(degree_weights);
  std::vector<net::RouterId> monitors;
  std::unordered_set<net::RouterId> monitor_set;
  while (monitors.size() < std::min(options.monitor_count, n)) {
    const std::size_t pick = monitor_sampler.sample(rng);
    if (pick >= n) break;
    const auto router = static_cast<net::RouterId>(pick);
    if (monitor_set.insert(router).second) monitors.push_back(router);
  }

  std::unordered_set<net::InterfaceId> seen_interfaces;
  std::unordered_set<std::uint64_t> seen_links;
  std::unordered_set<net::InterfaceId> destination_interfaces;

  for (const net::RouterId monitor : monitors) {
    const net::BfsTree tree = net::bfs_tree(topology, monitor);

    // Per-monitor destination list of varying size, uniform over routers
    // (the real lists aim to cover the whole address space).
    const double spread = options.destination_list_variation;
    const auto list_size = static_cast<std::size_t>(
        static_cast<double>(options.destinations_per_monitor) *
        rng.uniform(1.0 - spread, 1.0 + spread));

    for (std::size_t d = 0; d < list_size; ++d) {
      const auto destination =
          static_cast<net::RouterId>(rng.uniform_index(n));
      const auto path = net::extract_path(tree, destination);
      if (path.size() < 2) continue;
      ++out.traces;

      // Entry interfaces of every hop past the monitor, including the
      // access router serving the destination. The paper's 18% discard
      // concerns end-host addresses on the destination lists; hosts hang
      // *behind* the access router and are never recorded here at all.
      net::InterfaceId previous = 0;
      bool have_previous = false;
      for (std::size_t h = 1; h < path.size(); ++h) {
        if (!responds[path[h]]) continue;  // silent hop: spliced over
        const net::InterfaceId entry = tree.entry_if[path[h]];
        if (seen_interfaces.insert(entry).second) {
          out.interfaces.push_back(entry);
        }
        if (have_previous && previous != entry &&
            seen_links.insert(pair_key(previous, entry)).second) {
          out.links.emplace_back(previous, entry);
        }
        previous = entry;
        have_previous = true;
      }
      // One end-host address per trace would have been discarded.
      destination_interfaces.insert(tree.entry_if[path.back()]);
    }
  }
  out.destination_interfaces_discarded = out.traces;

  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter("skitter.traces").add(out.traces);
  metrics.counter("skitter.interfaces_observed").add(out.interfaces.size());
  metrics.counter("skitter.links_observed").add(out.links.size());
  return out;
}

}  // namespace geonet::synth
