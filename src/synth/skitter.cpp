#include "synth/skitter.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "exec/parallel.h"
#include "net/graph_algos.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/rng.h"

namespace geonet::synth {

namespace {

std::uint64_t pair_key(net::InterfaceId a, net::InterfaceId b) noexcept {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return (hi << 32) | lo;
}

}  // namespace

InterfaceObservation run_skitter(const GroundTruth& truth,
                                 const SkitterOptions& options) {
  const obs::Span span("synth/skitter");
  InterfaceObservation out;
  const net::Topology& topology = truth.topology();
  const std::size_t n = topology.router_count();
  if (n == 0) return out;

  stats::Rng rng(options.seed);

  // Per-router trait: does it answer TTL-expired probes? Rates of exactly
  // 1.0 (everyone answers) and 0.0 (total ICMP blackout) are honoured
  // without degenerate draws.
  const double response_rate =
      std::clamp(options.hop_response_rate, 0.0, 1.0);
  std::vector<bool> responds(n, true);
  if (response_rate < 1.0) {
    stats::Rng trait_rng = rng.fork(0x51);
    for (std::size_t r = 0; r < n; ++r) {
      responds[r] = trait_rng.bernoulli(response_rate);
    }
  }

  // Fault decisions draw exclusively from streams seeded by the plan, so
  // a run without a plan consumes exactly the same random sequence as the
  // pre-fault simulator (bit-identical observations).
  const fault::FaultPlan* plan =
      options.faults && !options.faults->empty() ? &*options.faults : nullptr;
  stats::Rng fault_rng(plan != nullptr ? plan->seed : 0);

  // ICMP rate limiting: a per-router trait like `responds`, but losses
  // are per-attempt, so retries can recover these hops.
  std::vector<bool> throttled;
  if (plan != nullptr && plan->throttle) {
    stats::Rng throttle_rng = fault_rng.fork(0x7407);
    throttled.assign(n, false);
    for (std::size_t r = 0; r < n; ++r) {
      if (throttle_rng.bernoulli(plan->throttle->router_fraction)) {
        throttled[r] = true;
        ++out.fault_stats.routers_throttled;
      }
    }
  }

  // Monitors sit at well-connected routers (measurement infrastructure
  // lives in big POPs), chosen degree-weighted.
  std::vector<double> degree_weights(n);
  for (net::RouterId r = 0; r < n; ++r) {
    degree_weights[r] = static_cast<double>(topology.degree(r));
  }
  const stats::DiscreteSampler monitor_sampler(degree_weights);
  std::vector<net::RouterId> monitors;
  std::unordered_set<net::RouterId> monitor_set;
  while (monitors.size() < std::min(options.monitor_count, n)) {
    const std::size_t pick = monitor_sampler.sample(rng);
    if (pick >= n) break;
    const auto router = static_cast<net::RouterId>(pick);
    if (monitor_set.insert(router).second) monitors.push_back(router);
  }

  // Which monitors go dark mid-run (uniform over the monitor set).
  std::vector<bool> dies(monitors.size(), false);
  if (plan != nullptr && plan->monitor_outage && !monitors.empty()) {
    stats::Rng outage_rng = fault_rng.fork(0x07a);
    std::vector<std::size_t> order(monitors.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    outage_rng.shuffle(std::span<std::size_t>(order));
    const std::size_t kills =
        std::min(plan->monitor_outage->count, monitors.size());
    for (std::size_t i = 0; i < kills; ++i) dies[order[i]] = true;
    out.fault_stats.monitors_killed = kills;
  }

  // Monitors probe independently, so each gets its own derived streams —
  // forked serially up front (labels are per-monitor, so every monitor's
  // randomness is fixed by the seed alone, never by scheduling):
  //   probe stream 0x9000+m: list size and destination draws
  //   fault stream 0x6000+m: bursts, truncations, retries (as in the
  //     serial fault design — damage to one monitor must not disturb
  //     another's pattern)
  std::vector<stats::Rng> probe_rngs;
  std::vector<stats::Rng> monitor_fault_rngs;
  probe_rngs.reserve(monitors.size());
  monitor_fault_rngs.reserve(monitors.size());
  for (std::size_t m = 0; m < monitors.size(); ++m) {
    probe_rngs.push_back(rng.fork(0x9000 + m));
    monitor_fault_rngs.push_back(fault_rng.fork(0x6000 + m));
  }

  // Each monitor first-occurrence-dedups its own observations; the
  // monitor-ordered merge below with global dedup sets then reproduces
  // exactly the interface/link ordering of a serial sweep.
  struct MonitorResult {
    std::vector<net::InterfaceId> interfaces;
    std::vector<std::pair<net::InterfaceId, net::InterfaceId>> links;
    std::vector<net::InterfaceId> destination_ifaces;
    std::size_t traces = 0;
    std::size_t destinations_skipped = 0;
    std::size_t traces_truncated = 0;
    std::size_t probes_lost = 0;
    fault::ProbeStats probe_stats;
  };
  std::vector<MonitorResult> results(monitors.size());

  exec::RegionOptions region;
  region.name = "synth/skitter_monitors";
  region.grain = 1;
  exec::parallel_for(monitors.size(), region, [&](std::size_t begin,
                                                  std::size_t end,
                                                  std::size_t) {
    for (std::size_t m = begin; m < end; ++m) {
      MonitorResult& local = results[m];
      std::unordered_set<net::InterfaceId> local_interfaces;
      std::unordered_set<std::uint64_t> local_links;
      const net::RouterId monitor = monitors[m];
      const net::BfsTree tree = net::bfs_tree(topology, monitor);

      // Per-monitor destination list of varying size, uniform over routers
      // (the real lists aim to cover the whole address space).
      stats::Rng& probe_rng = probe_rngs[m];
      const double spread =
          std::clamp(options.destination_list_variation, 0.0, 1.0);
      const auto list_size = static_cast<std::size_t>(
          static_cast<double>(options.destinations_per_monitor) *
          probe_rng.uniform(1.0 - spread, 1.0 + spread));

      // A dying monitor stops probing this far through its list.
      const std::size_t probe_limit =
          (plan != nullptr && plan->monitor_outage && dies[m])
              ? static_cast<std::size_t>(
                    static_cast<double>(list_size) *
                    std::clamp(plan->monitor_outage->at_fraction, 0.0, 1.0))
              : list_size;

      stats::Rng& monitor_fault_rng = monitor_fault_rngs[m];
      std::size_t burst_remaining = 0;

      for (std::size_t d = 0; d < list_size; ++d) {
        if (d >= probe_limit) {
          local.destinations_skipped += list_size - d;
          break;
        }
        const auto destination =
            static_cast<net::RouterId>(probe_rng.uniform_index(n));

        // Probe-loss bursts swallow whole traces for a stretch of the list.
        if (plan != nullptr && plan->probe_loss) {
          if (burst_remaining > 0) {
            --burst_remaining;
            ++local.probes_lost;
            continue;
          }
          if (monitor_fault_rng.bernoulli(
                  plan->probe_loss->burst_probability)) {
            const double length = std::max(
                1.0, monitor_fault_rng.exponential(
                         std::max(1.0, plan->probe_loss->mean_burst_length)));
            burst_remaining = static_cast<std::size_t>(length);
            if (burst_remaining > 0) --burst_remaining;
            ++local.probes_lost;
            continue;
          }
        }

        const auto path = net::extract_path(tree, destination);
        if (path.size() < 2) continue;
        ++local.traces;

        // Truncated traces stop at a random hop (loop detection, gap
        // limits, probes dying in-network).
        std::size_t hop_limit = path.size();
        if (plan != nullptr && plan->truncate &&
            path.size() > plan->truncate->min_hops &&
            monitor_fault_rng.bernoulli(plan->truncate->probability)) {
          hop_limit = plan->truncate->min_hops +
                      static_cast<std::size_t>(monitor_fault_rng.uniform_index(
                          path.size() - plan->truncate->min_hops));
          ++local.traces_truncated;
        }

        // Entry interfaces of every hop past the monitor, including the
        // access router serving the destination. The paper's 18% discard
        // concerns end-host addresses on the destination lists; hosts hang
        // *behind* the access router and are never recorded here at all.
        net::InterfaceId previous = 0;
        bool have_previous = false;
        for (std::size_t h = 1; h < hop_limit; ++h) {
          if (!responds[path[h]]) continue;  // ICMP filtered: spliced over
          if (!throttled.empty() && throttled[path[h]] &&
              !fault::probe_with_retry(monitor_fault_rng,
                                       plan->throttle->answer_rate,
                                       options.probe, local.probe_stats)) {
            continue;  // rate-limited and retries exhausted: spliced over
          }
          const net::InterfaceId entry = tree.entry_if[path[h]];
          if (local_interfaces.insert(entry).second) {
            local.interfaces.push_back(entry);
          }
          if (have_previous && previous != entry &&
              local_links.insert(pair_key(previous, entry)).second) {
            local.links.emplace_back(previous, entry);
          }
          previous = entry;
          have_previous = true;
        }
        // One end-host address per trace would have been discarded (only
        // traces that actually reached their destination).
        if (hop_limit == path.size()) {
          local.destination_ifaces.push_back(tree.entry_if[path.back()]);
        }
      }
    }
  });

  std::unordered_set<net::InterfaceId> seen_interfaces;
  std::unordered_set<std::uint64_t> seen_links;
  std::unordered_set<net::InterfaceId> destination_interfaces;
  for (MonitorResult& local : results) {
    out.traces += local.traces;
    out.fault_stats.destinations_skipped += local.destinations_skipped;
    out.fault_stats.traces_truncated += local.traces_truncated;
    out.fault_stats.probes_lost += local.probes_lost;
    out.probe_stats.merge(local.probe_stats);
    for (const net::InterfaceId iface : local.interfaces) {
      if (seen_interfaces.insert(iface).second) {
        out.interfaces.push_back(iface);
      }
    }
    for (const auto& [a, b] : local.links) {
      if (seen_links.insert(pair_key(a, b)).second) {
        out.links.emplace_back(a, b);
      }
    }
    for (const net::InterfaceId iface : local.destination_ifaces) {
      destination_interfaces.insert(iface);
    }
  }
  out.destination_interfaces_discarded = out.traces;

  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter("skitter.traces").add(out.traces);
  metrics.counter("skitter.interfaces_observed").add(out.interfaces.size());
  metrics.counter("skitter.links_observed").add(out.links.size());
  if (out.fault_stats.any()) {
    metrics.counter("fault.monitors_killed")
        .add(out.fault_stats.monitors_killed);
    metrics.counter("fault.destinations_skipped")
        .add(out.fault_stats.destinations_skipped);
    metrics.counter("fault.routers_throttled")
        .add(out.fault_stats.routers_throttled);
    metrics.counter("fault.traces_truncated")
        .add(out.fault_stats.traces_truncated);
    metrics.counter("fault.probes_lost").add(out.fault_stats.probes_lost);
  }
  return out;
}

}  // namespace geonet::synth
