#include "synth/faulty_mapper.h"

#include "obs/metrics.h"

namespace geonet::synth {

std::optional<geo::GeoPoint> FaultyMapper::map(
    net::Ipv4Addr addr, const geo::GeoPoint& true_location,
    const geo::GeoPoint& as_home) const {
  const auto answer = inner_.map(addr, true_location, as_home);
  if (!answer) return answer;
  if (const auto corrupted =
          corruptor_.corrupt(addr.value, *answer, stats_)) {
    static obs::Counter& corrupted_metric =
        obs::MetricsRegistry::global().counter("fault.geo_answers_corrupted");
    corrupted_metric.add();
    return corrupted;
  }
  return answer;
}

}  // namespace geonet::synth
