#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/topology.h"
#include "synth/ground_truth.h"

namespace geonet::synth {

/// Parameters of the Skitter-style measurement simulation.
///
/// Skitter (CAIDA) runs traceroute-like hop-limited probes from ~20
/// monitors worldwide to large destination lists; intermediate routers
/// reveal the IP of the interface the probe *entered on*. The observed
/// object is therefore an interface-level graph whose "links" join
/// interfaces adjacent on forward paths.
struct SkitterOptions {
  std::size_t monitor_count = 19;
  /// Mean destinations per monitor; per-monitor lists vary around this
  /// ("each probing a destination list of varying size").
  std::size_t destinations_per_monitor = 4000;
  double destination_list_variation = 0.5;  ///< +/- fraction of the mean
  /// Probability a router answers TTL-expired probes at all (a per-router
  /// trait: some filter ICMP entirely). Silent routers vanish from
  /// traces, splicing their neighbours into false interface adjacencies —
  /// a classic traceroute-map artifact the downstream pipeline must
  /// tolerate.
  double hop_response_rate = 0.97;
  std::uint64_t seed = 7;
};

/// Raw interface-level observation, before geolocation or AS mapping.
struct InterfaceObservation {
  std::vector<net::InterfaceId> interfaces;  ///< distinct observed interfaces
  std::vector<std::pair<net::InterfaceId, net::InterfaceId>> links;  ///< distinct
  std::size_t traces = 0;  ///< forward paths probed
  std::size_t destination_interfaces_discarded = 0;  ///< per the paper's 18%
};

/// Runs the Skitter simulation over the ground truth: per-monitor BFS
/// forwarding trees, per-destination path extraction, entry-interface
/// recording, and discarding of destination-list interfaces.
InterfaceObservation run_skitter(const GroundTruth& truth,
                                 const SkitterOptions& options = {});

}  // namespace geonet::synth
