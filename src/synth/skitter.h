#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "fault/fault_plan.h"
#include "fault/probe.h"
#include "net/topology.h"
#include "synth/ground_truth.h"

namespace geonet::synth {

/// Parameters of the Skitter-style measurement simulation.
///
/// Skitter (CAIDA) runs traceroute-like hop-limited probes from ~20
/// monitors worldwide to large destination lists; intermediate routers
/// reveal the IP of the interface the probe *entered on*. The observed
/// object is therefore an interface-level graph whose "links" join
/// interfaces adjacent on forward paths.
struct SkitterOptions {
  std::size_t monitor_count = 19;
  /// Mean destinations per monitor; per-monitor lists vary around this
  /// ("each probing a destination list of varying size"). Zero is valid
  /// and yields an empty observation.
  std::size_t destinations_per_monitor = 4000;
  double destination_list_variation = 0.5;  ///< +/- fraction, clamped [0,1]
  /// Probability a router answers TTL-expired probes at all (a per-router
  /// trait: some filter ICMP entirely — retries never help these, unlike
  /// throttled routers). Clamped to [0,1]; 0.0 and 1.0 are exact. Silent
  /// routers vanish from traces, splicing their neighbours into false
  /// interface adjacencies — a classic traceroute-map artifact the
  /// downstream pipeline must tolerate.
  double hop_response_rate = 0.97;
  std::uint64_t seed = 7;
  /// Retry-with-timeout behaviour for probes that get no answer (only
  /// throttled routers lose individual attempts; see fault::ThrottleFault).
  fault::ProbePolicy probe;
  /// Failures injected into this run. nullopt (or an empty plan) keeps
  /// the measurement byte-identical to the fault-free simulation: fault
  /// decisions draw from their own seeded streams, never the main one.
  std::optional<fault::FaultPlan> faults;
};

/// Raw interface-level observation, before geolocation or AS mapping.
struct InterfaceObservation {
  std::vector<net::InterfaceId> interfaces;  ///< distinct observed interfaces
  std::vector<std::pair<net::InterfaceId, net::InterfaceId>> links;  ///< distinct
  std::size_t traces = 0;  ///< forward paths probed
  std::size_t destination_interfaces_discarded = 0;  ///< per the paper's 18%
  fault::FaultStats fault_stats;  ///< injected damage, if any
  fault::ProbeStats probe_stats;  ///< retry/loss/giveup accounting
};

/// Runs the Skitter simulation over the ground truth: per-monitor BFS
/// forwarding trees, per-destination path extraction, entry-interface
/// recording, and discarding of destination-list interfaces.
///
/// Monitors probe in parallel on the global exec pool. Every monitor's
/// randomness (destinations and fault damage alike) comes from streams
/// forked per monitor index, and results merge in monitor order, so the
/// observation is a pure function of the options — byte-identical at any
/// thread count, with or without a fault plan.
InterfaceObservation run_skitter(const GroundTruth& truth,
                                 const SkitterOptions& options = {});

}  // namespace geonet::synth
