#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "fault/fault_plan.h"
#include "fault/probe.h"
#include "net/annotated_graph.h"
#include "population/synth_population.h"
#include "synth/geo_mapper.h"
#include "synth/ground_truth.h"
#include "synth/mercator.h"
#include "synth/skitter.h"

namespace geonet::synth {

/// The two topology datasets of the paper.
enum class DatasetKind : std::uint8_t { kSkitter, kMercator };
/// The two geolocation services of the paper.
enum class MapperKind : std::uint8_t { kIxMapper, kEdgeScape };

[[nodiscard]] const char* to_string(DatasetKind kind) noexcept;
[[nodiscard]] const char* to_string(MapperKind kind) noexcept;

/// Bookkeeping from one run of the processing pipeline — the numbers the
/// paper quotes in Section III.B (unmapped fractions, tie discards) and
/// Table I (processed sizes).
struct ProcessingStats {
  std::size_t input_nodes = 0;
  std::size_t unmapped_nodes = 0;       ///< geolocation failures, discarded
  std::size_t tie_discarded_routers = 0;///< Mercator location-vote ties
  std::size_t as_unmapped_nodes = 0;    ///< no BGP cover: the "separate AS"
  std::size_t output_nodes = 0;
  std::size_t output_links = 0;
  std::size_t distinct_locations = 0;
};

/// Geolocates and AS-labels a raw Skitter observation, producing the
/// processed interface-level dataset.
net::AnnotatedGraph process_interface_observation(
    const GroundTruth& truth, const InterfaceObservation& raw,
    const Mapper& mapper, ProcessingStats* stats = nullptr,
    const BgpTable* bgp = nullptr);  ///< nullptr = truth.bgp()

/// Geolocates and AS-labels a raw Mercator observation. Router location is
/// the most common location across its interfaces; ties discard the router
/// (and its links), as in Section III.B.
net::AnnotatedGraph process_router_observation(
    const GroundTruth& truth, const RouterObservation& raw,
    const Mapper& mapper, ProcessingStats* stats = nullptr,
    const BgpTable* bgp = nullptr);  ///< nullptr = truth.bgp()

/// Scenario build parameters; `scale` multiplies the paper's dataset
/// sizes. Honors the GEONET_SCALE environment variable in defaults().
struct ScenarioOptions {
  double scale = 0.15;
  std::uint64_t seed = 2002;
  /// Mechanical-fidelity mode: replace the statistical IxMapper with the
  /// hostname->LOC->whois parsing pipeline over generated reverse DNS,
  /// and replace the omniscient BGP table with a RouteViews-style union
  /// derived from valley-free route propagation.
  bool mechanical_pipeline = false;
  /// The Mercator snapshot predates Skitter's by ~2.4 years (Aug 1999 vs
  /// Jan 2002); the earlier Internet was roughly half the size. Mercator
  /// probes a separate ground truth built at scale * this factor over the
  /// same world (and is AS-mapped with its own, earlier BGP table, as the
  /// paper used the Aug 10, 1999 RouteViews snapshot).
  double mercator_epoch_factor = 0.45;
  GroundTruthOptions truth;       ///< interface_scale/seed overridden
  SkitterOptions skitter;         ///< seed/faults overridden
  MercatorOptions mercator;       ///< seed/faults overridden
  /// Failures injected into both measurement campaigns and the
  /// geolocation services (see fault::FaultPlan). nullopt = fault-free;
  /// the fault-free scenario is byte-identical with and without the
  /// fault machinery compiled in.
  std::optional<fault::FaultPlan> faults;

  static ScenarioOptions defaults();
};

/// The canonical end-to-end experiment world: one synthetic planet, one
/// ground-truth Internet, two measurement campaigns, two mappers, four
/// processed datasets. Every bench and example builds exactly one of
/// these, so all experiments share the same underlying reality.
class Scenario {
 public:
  static Scenario build(const ScenarioOptions& options = ScenarioOptions::defaults());

  [[nodiscard]] const ScenarioOptions& options() const noexcept { return options_; }
  [[nodiscard]] const population::WorldPopulation& world() const noexcept {
    return *world_;
  }
  /// The Skitter-epoch (later, larger) ground truth.
  [[nodiscard]] const GroundTruth& truth() const noexcept { return *truth_; }
  /// The Mercator-epoch (earlier, smaller) ground truth.
  [[nodiscard]] const GroundTruth& mercator_truth() const noexcept {
    return *mercator_truth_;
  }
  [[nodiscard]] const InterfaceObservation& skitter_raw() const noexcept {
    return skitter_raw_;
  }
  [[nodiscard]] const RouterObservation& mercator_raw() const noexcept {
    return mercator_raw_;
  }

  /// Processed dataset for a (dataset, mapper) pair — a Table I row.
  [[nodiscard]] const net::AnnotatedGraph& graph(DatasetKind dataset,
                                                 MapperKind mapper) const noexcept;
  [[nodiscard]] const ProcessingStats& stats(DatasetKind dataset,
                                             MapperKind mapper) const noexcept;

  /// Aggregate injected damage across both campaigns and all mappers.
  [[nodiscard]] const fault::FaultStats& fault_stats() const noexcept {
    return fault_stats_;
  }
  /// Aggregate probe retry/loss/giveup accounting across both campaigns.
  [[nodiscard]] const fault::ProbeStats& probe_stats() const noexcept {
    return probe_stats_;
  }

 private:
  static std::size_t slot(DatasetKind dataset, MapperKind mapper) noexcept;

  ScenarioOptions options_;
  std::unique_ptr<population::WorldPopulation> world_;
  std::unique_ptr<GroundTruth> truth_;
  std::unique_ptr<GroundTruth> mercator_truth_;
  InterfaceObservation skitter_raw_;
  RouterObservation mercator_raw_;
  std::array<std::unique_ptr<net::AnnotatedGraph>, 4> graphs_;
  std::array<ProcessingStats, 4> stats_;
  fault::FaultStats fault_stats_;
  fault::ProbeStats probe_stats_;
};

/// Counts distinct quantised node locations in a processed dataset.
std::size_t distinct_location_count(const net::AnnotatedGraph& graph,
                                    double quantum_deg = 0.01);

/// Renders one pipeline run's bookkeeping as a JSON object (a
/// `sections.*` payload of an `obs::RunReport`).
std::string processing_stats_json(const ProcessingStats& stats);

/// Renders all four (dataset, mapper) ProcessingStats of a scenario as
/// one JSON object keyed by "Dataset+Mapper" — the machine-readable
/// Table I.
std::string scenario_stats_json(const Scenario& scenario);

/// Renders the scenario's injected-fault plan, damage counts, and probe
/// retry accounting as one JSON object (the measurement half of a run
/// report's `degradation` section). "{}" for a fault-free scenario.
std::string scenario_degradation_json(const Scenario& scenario);

}  // namespace geonet::synth
