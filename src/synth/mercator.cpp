#include "synth/mercator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "net/graph_algos.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/rng.h"

namespace geonet::synth {

RouterObservation run_mercator(const GroundTruth& truth,
                               const MercatorOptions& options) {
  const obs::Span span("synth/mercator");
  RouterObservation out;
  const net::Topology& topology = truth.topology();
  const std::size_t n = topology.router_count();
  if (n == 0) return out;

  stats::Rng rng(options.seed);

  // Fault decisions draw from their own plan-seeded streams; without a
  // plan the run consumes exactly the pre-fault random sequence.
  const fault::FaultPlan* plan =
      options.faults && !options.faults->empty() ? &*options.faults : nullptr;
  stats::Rng fault_rng(plan != nullptr ? plan->seed : 0);
  stats::Rng probe_fault_rng = fault_rng.fork(0x9e2c);

  // Per-probe loss probability for discovery probes: bursts at the
  // destination-list level do not map onto a single-host sweep, so the
  // expected loss mass (burst rate x burst length) applies per probe.
  const double probe_loss_probability =
      (plan != nullptr && plan->probe_loss)
          ? std::min(1.0, plan->probe_loss->burst_probability *
                              plan->probe_loss->mean_burst_length)
          : 0.0;

  // Throttled routers answer UDP alias probes only at the throttle rate.
  std::vector<bool> throttled;
  if (plan != nullptr && plan->throttle) {
    stats::Rng throttle_rng = fault_rng.fork(0x7407);
    throttled.assign(n, false);
    for (std::size_t r = 0; r < n; ++r) {
      if (throttle_rng.bernoulli(plan->throttle->router_fraction)) {
        throttled[r] = true;
        ++out.fault_stats.routers_throttled;
      }
    }
  }

  // Single vantage point: the highest-degree router (a well-connected
  // academic host, as the Scan project used).
  net::RouterId source = 0;
  for (net::RouterId r = 1; r < n; ++r) {
    if (topology.degree(r) > topology.degree(source)) source = r;
  }
  const net::BfsTree tree = net::bfs_tree(topology, source);

  // Pass 1: which interfaces are observed, and which router links carry
  // probes. Tree edges are always seen; lateral links are found by loose
  // source routing with some probability.
  std::unordered_map<net::RouterId, std::vector<net::InterfaceId>> observed;
  std::vector<std::pair<net::InterfaceId, net::InterfaceId>> observed_links;
  std::unordered_set<std::uint64_t> seen_links;

  const auto link_key = [](net::LinkId id) { return static_cast<std::uint64_t>(id); };

  const auto observe = [&](net::RouterId router, net::InterfaceId iface) {
    auto& list = observed[router];
    if (std::find(list.begin(), list.end(), iface) == list.end()) {
      list.push_back(iface);
      ++out.raw_interfaces;
    }
  };

  for (net::RouterId r = 0; r < n; ++r) {
    if (tree.hop_count[r] == net::kNoParent) continue;  // unreachable
    for (const net::Adjacency& adj : topology.neighbors(r)) {
      const bool is_tree_edge = (tree.parent[adj.neighbor] == r &&
                                 tree.entry_if[adj.neighbor] == adj.remote_if) ||
                                (tree.parent[r] == adj.neighbor &&
                                 tree.entry_if[r] == adj.local_if);
      if (!seen_links.contains(link_key(adj.link))) {
        bool discovered =
            is_tree_edge || rng.bernoulli(options.lateral_discovery_rate);
        // Lateral discovery probes can be lost; retries may recover them.
        // Tree edges are the repeatedly-probed BFS backbone and survive.
        if (discovered && !is_tree_edge && probe_loss_probability > 0.0 &&
            !fault::probe_with_retry(probe_fault_rng,
                                     1.0 - probe_loss_probability,
                                     options.probe, out.probe_stats)) {
          ++out.fault_stats.probes_lost;
          discovered = false;
        }
        if (discovered) {
          seen_links.insert(link_key(adj.link));
          observe(r, adj.local_if);
          observe(adj.neighbor, adj.remote_if);
          observed_links.emplace_back(adj.local_if, adj.remote_if);
        }
      }
    }
  }

  // Pass 2: alias resolution. A router whose probes all answer correctly
  // collapses to one node; otherwise every observed interface stands alone
  // (the paper describes exactly this failure mode for UDP-probe
  // disambiguation).
  std::unordered_map<net::InterfaceId, std::uint32_t> node_of_interface;
  for (auto& [router, ifaces] : observed) {
    std::sort(ifaces.begin(), ifaces.end());
    bool resolved =
        ifaces.size() < 2 || rng.bernoulli(options.alias_resolution_rate);
    // Rate-limited routers drop UDP alias probes per attempt; retries can
    // still save the resolution.
    if (resolved && ifaces.size() >= 2 && !throttled.empty() &&
        throttled[router] &&
        !fault::probe_with_retry(probe_fault_rng, plan->throttle->answer_rate,
                                 options.probe, out.probe_stats)) {
      resolved = false;
    }
    if (resolved) {
      const auto node = static_cast<std::uint32_t>(out.routers.size());
      out.routers.push_back({ifaces, router});
      for (const net::InterfaceId iface : ifaces) {
        node_of_interface[iface] = node;
      }
    } else {
      for (const net::InterfaceId iface : ifaces) {
        const auto node = static_cast<std::uint32_t>(out.routers.size());
        out.routers.push_back({{iface}, router});
        node_of_interface[iface] = node;
      }
    }
  }

  // Pass 3: project links onto observed nodes, deduplicated.
  std::unordered_set<std::uint64_t> emitted;
  for (const auto& [if_a, if_b] : observed_links) {
    const std::uint32_t a = node_of_interface.at(if_a);
    const std::uint32_t b = node_of_interface.at(if_b);
    if (a == b) continue;
    const auto lo = static_cast<std::uint64_t>(std::min(a, b));
    const auto hi = static_cast<std::uint64_t>(std::max(a, b));
    if (emitted.insert((hi << 32) | lo).second) {
      out.links.emplace_back(a, b);
    }
  }

  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter("mercator.raw_interfaces").add(out.raw_interfaces);
  metrics.counter("mercator.routers_observed").add(out.routers.size());
  metrics.counter("mercator.links_observed").add(out.links.size());
  if (out.fault_stats.any()) {
    metrics.counter("fault.routers_throttled")
        .add(out.fault_stats.routers_throttled);
    metrics.counter("fault.probes_lost").add(out.fault_stats.probes_lost);
  }
  return out;
}

}  // namespace geonet::synth
