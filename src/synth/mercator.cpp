#include "synth/mercator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "net/graph_algos.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/rng.h"

namespace geonet::synth {

RouterObservation run_mercator(const GroundTruth& truth,
                               const MercatorOptions& options) {
  const obs::Span span("synth/mercator");
  RouterObservation out;
  const net::Topology& topology = truth.topology();
  const std::size_t n = topology.router_count();
  if (n == 0) return out;

  stats::Rng rng(options.seed);

  // Single vantage point: the highest-degree router (a well-connected
  // academic host, as the Scan project used).
  net::RouterId source = 0;
  for (net::RouterId r = 1; r < n; ++r) {
    if (topology.degree(r) > topology.degree(source)) source = r;
  }
  const net::BfsTree tree = net::bfs_tree(topology, source);

  // Pass 1: which interfaces are observed, and which router links carry
  // probes. Tree edges are always seen; lateral links are found by loose
  // source routing with some probability.
  std::unordered_map<net::RouterId, std::vector<net::InterfaceId>> observed;
  std::vector<std::pair<net::InterfaceId, net::InterfaceId>> observed_links;
  std::unordered_set<std::uint64_t> seen_links;

  const auto link_key = [](net::LinkId id) { return static_cast<std::uint64_t>(id); };

  const auto observe = [&](net::RouterId router, net::InterfaceId iface) {
    auto& list = observed[router];
    if (std::find(list.begin(), list.end(), iface) == list.end()) {
      list.push_back(iface);
      ++out.raw_interfaces;
    }
  };

  for (net::RouterId r = 0; r < n; ++r) {
    if (tree.hop_count[r] == net::kNoParent) continue;  // unreachable
    for (const net::Adjacency& adj : topology.neighbors(r)) {
      const bool is_tree_edge = (tree.parent[adj.neighbor] == r &&
                                 tree.entry_if[adj.neighbor] == adj.remote_if) ||
                                (tree.parent[r] == adj.neighbor &&
                                 tree.entry_if[r] == adj.local_if);
      if (!seen_links.contains(link_key(adj.link))) {
        const bool discovered =
            is_tree_edge || rng.bernoulli(options.lateral_discovery_rate);
        if (discovered) {
          seen_links.insert(link_key(adj.link));
          observe(r, adj.local_if);
          observe(adj.neighbor, adj.remote_if);
          observed_links.emplace_back(adj.local_if, adj.remote_if);
        }
      }
    }
  }

  // Pass 2: alias resolution. A router whose probes all answer correctly
  // collapses to one node; otherwise every observed interface stands alone
  // (the paper describes exactly this failure mode for UDP-probe
  // disambiguation).
  std::unordered_map<net::InterfaceId, std::uint32_t> node_of_interface;
  for (auto& [router, ifaces] : observed) {
    std::sort(ifaces.begin(), ifaces.end());
    const bool resolved =
        ifaces.size() < 2 || rng.bernoulli(options.alias_resolution_rate);
    if (resolved) {
      const auto node = static_cast<std::uint32_t>(out.routers.size());
      out.routers.push_back({ifaces, router});
      for (const net::InterfaceId iface : ifaces) {
        node_of_interface[iface] = node;
      }
    } else {
      for (const net::InterfaceId iface : ifaces) {
        const auto node = static_cast<std::uint32_t>(out.routers.size());
        out.routers.push_back({{iface}, router});
        node_of_interface[iface] = node;
      }
    }
  }

  // Pass 3: project links onto observed nodes, deduplicated.
  std::unordered_set<std::uint64_t> emitted;
  for (const auto& [if_a, if_b] : observed_links) {
    const std::uint32_t a = node_of_interface.at(if_a);
    const std::uint32_t b = node_of_interface.at(if_b);
    if (a == b) continue;
    const auto lo = static_cast<std::uint64_t>(std::min(a, b));
    const auto hi = static_cast<std::uint64_t>(std::max(a, b));
    if (emitted.insert((hi << 32) | lo).second) {
      out.links.emplace_back(a, b);
    }
  }

  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter("mercator.raw_interfaces").add(out.raw_interfaces);
  metrics.counter("mercator.routers_observed").add(out.routers.size());
  metrics.counter("mercator.links_observed").add(out.links.size());
  return out;
}

}  // namespace geonet::synth
