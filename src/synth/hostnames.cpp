#include "synth/hostnames.h"

#include <cctype>
#include <cstdio>

namespace geonet::synth {

CityCodebook::CityCodebook(std::vector<geo::GeoPoint> cities)
    : cities_(cities), index_(std::move(cities)) {
  by_code_.reserve(cities_.size());
  for (std::size_t i = 0; i < cities_.size(); ++i) {
    by_code_.emplace(code(i), i);
  }
}

std::string CityCodebook::code(std::size_t city_index) const {
  // Base-26, three letters: supports 17,576 cities.
  char buf[4] = {
      static_cast<char>('a' + (city_index / 676) % 26),
      static_cast<char>('a' + (city_index / 26) % 26),
      static_cast<char>('a' + city_index % 26),
      '\0',
  };
  return buf;
}

std::optional<std::size_t> CityCodebook::decode(std::string_view token) const {
  if (token.size() != 3) return std::nullopt;
  const auto it = by_code_.find(std::string(token));
  if (it == by_code_.end()) return std::nullopt;
  return it->second;
}

std::string make_hostname(stats::Rng& rng, std::string_view city_code,
                          std::uint32_t asn) {
  static const char* kIfPrefixes[] = {"so", "ge", "xe", "pos", "fa"};
  static const char* kRoles[] = {"cr", "br", "ar", "xl"};
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s-%llu-%llu-%llu.%s%llu.%.*s%llu.as%u.net",
                kIfPrefixes[rng.uniform_index(5)],
                static_cast<unsigned long long>(rng.uniform_index(8)),
                static_cast<unsigned long long>(rng.uniform_index(4)),
                static_cast<unsigned long long>(rng.uniform_index(4)),
                kRoles[rng.uniform_index(4)],
                static_cast<unsigned long long>(1 + rng.uniform_index(9)),
                static_cast<int>(city_code.size()), city_code.data(),
                static_cast<unsigned long long>(1 + rng.uniform_index(9)),
                asn);
  return buf;
}

std::optional<std::size_t> parse_city(std::string_view hostname,
                                      const CityCodebook& codebook) {
  // Scan dot-separated labels; a label whose leading alphabetic run (with
  // any trailing digits stripped) decodes as a city token wins. Labels
  // like "so-2-1-0" or "cr3" simply fail to decode.
  std::size_t begin = 0;
  while (begin <= hostname.size()) {
    std::size_t end = hostname.find('.', begin);
    if (end == std::string_view::npos) end = hostname.size();
    std::string_view label = hostname.substr(begin, end - begin);
    // Strip trailing digits (the per-city POP ordinal).
    while (!label.empty() && std::isdigit(static_cast<unsigned char>(label.back()))) {
      label.remove_suffix(1);
    }
    if (const auto city = codebook.decode(label)) return city;
    if (end == hostname.size()) break;
    begin = end + 1;
  }
  return std::nullopt;
}

std::optional<std::string> DnsDatabase::lookup(net::Ipv4Addr addr) const {
  const auto it = records_.find(addr.value);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

void DnsDatabase::insert(net::Ipv4Addr addr, std::string hostname) {
  records_[addr.value] = std::move(hostname);
}

void DnsDatabase::insert_loc(net::Ipv4Addr addr, const geo::GeoPoint& where) {
  loc_records_[addr.value] = where;
}

std::optional<geo::GeoPoint> DnsDatabase::lookup_loc(net::Ipv4Addr addr) const {
  const auto it = loc_records_.find(addr.value);
  if (it == loc_records_.end()) return std::nullopt;
  return it->second;
}

DnsDatabase build_dns(const GroundTruth& truth, const CityCodebook& codebook,
                      const DnsOptions& options) {
  DnsDatabase dns;
  stats::Rng rng(options.seed);
  const net::Topology& topology = truth.topology();
  for (const net::Interface& iface : topology.interfaces()) {
    const geo::GeoPoint& where = topology.router(iface.router).location;
    if (rng.bernoulli(options.loc_fraction)) {
      dns.insert_loc(iface.addr, where);  // exact, as RFC 1876 allows
    }
    if (!rng.bernoulli(options.named_fraction)) continue;
    auto city = codebook.nearest(where);
    if (!city) continue;
    if (rng.bernoulli(options.stale_fraction)) {
      // Stale record: points at some other random city.
      city = rng.uniform_index(codebook.size());
    }
    const std::uint32_t asn = topology.router(iface.router).asn;
    dns.insert(iface.addr, make_hostname(rng, codebook.code(*city), asn));
  }
  return dns;
}

HostnameMapper::HostnameMapper(const DnsDatabase& dns,
                               const CityCodebook& codebook,
                               double whois_fallback_rate, std::uint64_t seed)
    : dns_(&dns),
      codebook_(&codebook),
      whois_fallback_rate_(whois_fallback_rate),
      seed_(seed) {}

std::optional<geo::GeoPoint> HostnameMapper::map(
    net::Ipv4Addr addr, const geo::GeoPoint& true_location,
    const geo::GeoPoint& as_home) const {
  (void)true_location;  // a mechanical mapper never sees the oracle
  if (net::is_private(addr)) return std::nullopt;

  // The paper's fallback chain: hostname parsing, then LOC, then whois.
  if (const auto hostname = dns_->lookup(addr)) {
    if (const auto city = parse_city(*hostname, *codebook_)) {
      return codebook_->cities()[*city];
    }
  }
  if (const auto loc = dns_->lookup_loc(addr)) {
    return loc;
  }
  // whois lookup against the registered organisation succeeds for most
  // blocks and answers with the headquarters city.
  std::uint64_t h = seed_ ^ (0xda942042e4dd58b5ULL * (addr.value + 1));
  stats::Rng rng(stats::splitmix64(h));
  if (rng.bernoulli(whois_fallback_rate_)) {
    if (const auto city = codebook_->nearest(as_home)) {
      return codebook_->cities()[*city];
    }
  }
  return std::nullopt;
}

}  // namespace geonet::synth
