#include "synth/ground_truth.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "geo/distance.h"
#include "obs/trace.h"
#include "stats/distributions.h"
#include "stats/fenwick.h"
#include "stats/rng.h"

namespace geonet::synth {

namespace {

using geo::GeoPoint;
using net::RouterId;
using population::EconomicProfile;
using population::PopulationGrid;
using population::WorldPopulation;
using stats::Rng;

/// Per-region router supply: each grid cell holds a quota of routers drawn
/// Poisson with mean proportional to (cell population)^alpha. ASes *claim*
/// routers from these quotas, so the aggregate cell counts track the
/// planted superlinear law (Figure 2) regardless of how AS sizes vary.
class RouterQuota {
 public:
  RouterQuota(const PopulationGrid& raster, double alpha, std::size_t budget,
              Rng& rng)
      : raster_(&raster), tree_(raster.grid().cell_count()) {
    const auto& people = raster.cell_populations();
    double z = 0.0;
    std::vector<double> weights(people.size(), 0.0);
    for (std::size_t i = 0; i < people.size(); ++i) {
      if (people[i] > 0.0) {
        weights[i] = std::pow(people[i], alpha);
        z += weights[i];
      }
    }
    if (z <= 0.0) return;
    for (std::size_t i = 0; i < people.size(); ++i) {
      if (weights[i] <= 0.0) continue;
      const double lambda =
          static_cast<double>(budget) * weights[i] / z;
      const auto count = rng.poisson(lambda);
      if (count > 0) {
        tree_.set(i, static_cast<double>(count));
        remaining_ += count;
      }
    }
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return remaining_; }

  /// Cell index drawn proportional to current availability.
  [[nodiscard]] std::optional<std::size_t> sample_cell(Rng& rng) const {
    if (remaining_ == 0) return std::nullopt;
    const std::size_t cell = tree_.sample(rng);
    if (cell >= tree_.size()) return std::nullopt;
    return cell;
  }

  /// Availability-weighted cell within `radius_miles` of `home`
  /// (rejection sampling; falls back to nullopt when unlucky).
  [[nodiscard]] std::optional<std::size_t> sample_cell_within(
      Rng& rng, const GeoPoint& home, double radius_miles,
      int attempts = 24) const {
    for (int i = 0; i < attempts; ++i) {
      const auto cell = sample_cell(rng);
      if (!cell) return std::nullopt;
      if (geo::great_circle_miles(home, cell_center(*cell)) <= radius_miles) {
        return cell;
      }
    }
    return std::nullopt;
  }

  /// Routers still available in a cell.
  [[nodiscard]] std::size_t available(std::size_t cell) const noexcept {
    return static_cast<std::size_t>(tree_.value(cell) + 0.5);
  }

  /// Claims up to `want` routers from a cell; returns the number claimed.
  std::size_t take(std::size_t cell, std::size_t want) {
    const auto avail = static_cast<std::size_t>(tree_.value(cell) + 0.5);
    const std::size_t took = std::min(want, avail);
    if (took > 0) {
      tree_.add(cell, -static_cast<double>(took));
      remaining_ -= took;
    }
    return took;
  }

  [[nodiscard]] GeoPoint cell_center(std::size_t cell) const {
    return raster_->grid().cell_center(raster_->grid().unflatten(cell));
  }

  [[nodiscard]] GeoPoint random_point_in_cell(std::size_t cell,
                                              Rng& rng) const {
    const geo::Region b =
        raster_->grid().cell_bounds(raster_->grid().unflatten(cell));
    return {rng.uniform(b.south_deg, b.north_deg),
            rng.uniform(b.west_deg, b.east_deg)};
  }

 private:
  const PopulationGrid* raster_;
  stats::FenwickTree tree_;
  std::size_t remaining_ = 0;
};

/// Deduplicating link builder: refuses self-links and repeated router pairs.
class LinkBuilder {
 public:
  explicit LinkBuilder(net::Topology& topology) : topology_(&topology) {}

  bool connect(RouterId a, RouterId b, AsAddressSpace& numbering) {
    if (a == b) return false;
    const std::uint64_t key = pair_key(a, b);
    if (!seen_.insert(key).second) return false;
    topology_->add_link(a, b, numbering.next(), numbering.next());
    return true;
  }

 private:
  static std::uint64_t pair_key(RouterId a, RouterId b) noexcept {
    const auto lo = static_cast<std::uint64_t>(std::min(a, b));
    const auto hi = static_cast<std::uint64_t>(std::max(a, b));
    return (hi << 32) | lo;
  }

  net::Topology* topology_;
  std::unordered_set<std::uint64_t> seen_;
};

/// Draws a site index weighted by exp(-distance/lambda) from `from` among
/// sites[0, limit); falls back to the nearest when all weights underflow.
std::size_t pick_site_by_distance(const std::vector<Site>& sites,
                                  std::size_t limit, const GeoPoint& from,
                                  double lambda, Rng& rng) {
  std::vector<double> weights(limit, 0.0);
  double total = 0.0;
  for (std::size_t j = 0; j < limit; ++j) {
    const double d = geo::great_circle_miles(from, sites[j].center);
    weights[j] = std::exp(-d / lambda);
    total += weights[j];
  }
  if (total <= 0.0) {
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < limit; ++j) {
      const double d = geo::great_circle_miles(from, sites[j].center);
      if (d < best_d) {
        best_d = d;
        best = j;
      }
    }
    return best;
  }
  const std::size_t idx = stats::weighted_index(rng, weights);
  return idx < limit ? idx : limit - 1;
}

}  // namespace

GroundTruth GroundTruth::build(const WorldPopulation& world,
                               const GroundTruthOptions& options) {
  const obs::Span span("synth/ground_truth");
  GroundTruth gt;
  gt.options_ = options;
  Rng root(options.seed);

  const auto& profiles = world.profiles();
  const std::size_t n_profiles = profiles.size();

  // Per-region router budgets from the paper's interface counts, turned
  // into per-cell quotas that encode the superlinear placement law.
  Rng quota_rng = root.fork(17);
  std::vector<std::size_t> budgets(n_profiles);
  std::vector<RouterQuota> quotas;
  quotas.reserve(n_profiles);
  for (std::size_t i = 0; i < n_profiles; ++i) {
    budgets[i] = std::max<std::size_t>(
        30, static_cast<std::size_t>(profiles[i].paper_interfaces *
                                     options.interface_scale /
                                     options.interfaces_per_router));
    quotas.emplace_back(world.grid_for(i), profiles[i].placement_alpha,
                        budgets[i], quota_rng);
  }
  const auto quota_weights = [&]() {
    std::vector<double> w(n_profiles);
    for (std::size_t i = 0; i < n_profiles; ++i) {
      w[i] = static_cast<double>(quotas[i].remaining());
    }
    return w;
  };

  // ---------------------------------------------------------------
  // Stage 1: mint ASes that claim routers from the cell quotas.
  // ---------------------------------------------------------------
  Rng as_rng = root.fork(1);
  std::uint32_t next_asn = 100;

  for (std::size_t pi = 0; pi < n_profiles; ++pi) {
    while (quotas[pi].remaining() > 0) {
      AsInfo info;
      info.asn = next_asn++;
      info.profile_index = pi;
      info.announced = !as_rng.bernoulli(options.unannounced_fraction);

      const double max_size = std::max<double>(
          options.min_as_size + 1,
          options.max_as_size_fraction * static_cast<double>(budgets[pi]));
      auto size = static_cast<std::size_t>(
          std::llround(stats::bounded_pareto(as_rng, options.min_as_size,
                                             max_size,
                                             options.as_size_pareto_alpha)));
      size = std::max<std::size_t>(size, options.min_as_size);

      // Home cell: availability-weighted, preferring a metro big enough to
      // hold the whole headquarters deployment (small organisations do not
      // split across cities just because their city is small).
      std::optional<std::size_t> home_cell;
      for (int attempt = 0; attempt < 6; ++attempt) {
        const auto candidate = quotas[pi].sample_cell(as_rng);
        if (!candidate) break;
        if (!home_cell) home_cell = candidate;
        if (quotas[pi].available(*candidate) >=
            std::min<std::size_t>(size, 8)) {
          home_cell = candidate;
          break;
        }
      }
      if (!home_cell) break;
      info.home = quotas[pi].random_point_in_cell(*home_cell, as_rng);

      // Per-AS dispersal trait: large ASes always reach far; small and
      // medium ones vary widely (Section VI.B's two regimes).
      const bool large = size >= options.large_as_threshold;
      const double far_probability =
          large ? options.large_as_far_site_probability
                : as_rng.uniform(0.0, 2.0 * options.small_as_far_site_probability);

      std::size_t site_count;
      if (!large && as_rng.bernoulli(options.single_site_probability)) {
        site_count = 1;  // an enterprise confined to one metro
      } else {
        const double multiplier = large ? options.large_site_multiplier : 1.0;
        site_count = static_cast<std::size_t>(std::llround(
            multiplier *
            std::pow(static_cast<double>(size), options.site_exponent) *
            as_rng.uniform(0.6, 1.4)));
      }
      site_count = std::clamp<std::size_t>(site_count, 1, size);

      // Desired router share per site rank: headquarters-heavy.
      std::vector<double> shares(site_count);
      double share_z = 0.0;
      for (std::size_t k = 0; k < site_count; ++k) {
        shares[k] = std::pow(static_cast<double>(k + 1),
                             -options.site_weight_exponent);
        share_z += shares[k];
      }

      // Claim routers site by site. Each site occupies one quota cell;
      // shortfalls are made up by extra nearby claims afterwards.
      std::unordered_map<std::uint64_t, std::size_t> site_of_cell;
      std::size_t placed = 0;
      const auto place_at = [&](std::size_t region, std::size_t cell,
                                std::size_t count) {
        if (count == 0) return;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(region) << 32) | cell;
        const auto [it, fresh] =
            site_of_cell.try_emplace(key, info.sites.size());
        if (fresh) {
          info.sites.push_back({quotas[region].cell_center(cell), {}});
        }
        Site& site = info.sites[it->second];
        for (std::size_t r = 0; r < count; ++r) {
          const GeoPoint location =
              quotas[region].random_point_in_cell(cell, as_rng);
          const RouterId router = gt.topology_.add_router(location, info.asn);
          site.routers.push_back(router);
          info.routers.push_back(router);
        }
        placed += count;
      };

      for (std::size_t k = 0; k < site_count && placed < size; ++k) {
        const auto want = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::llround(
                   shares[k] / share_z * static_cast<double>(size))));
        std::size_t region = pi;
        std::optional<std::size_t> cell;
        if (k == 0) {
          cell = home_cell;
        } else if (as_rng.bernoulli(far_probability)) {
          const auto weights = quota_weights();
          const std::size_t target = stats::weighted_index(as_rng, weights);
          region = target < n_profiles ? target : pi;
          cell = quotas[region].sample_cell(as_rng);
        } else {
          const double radius =
              stats::pareto(as_rng, options.near_site_scale_miles,
                            options.near_site_pareto_alpha);
          cell = quotas[pi].sample_cell_within(as_rng, info.home, radius);
        }
        if (!cell) continue;
        place_at(region, *cell,
                 quotas[region].take(*cell, std::min(want, size - placed)));
      }

      // Make up any shortfall close to home first (the same metro), then
      // regionally, then anywhere — so small ASes stay compact.
      while (placed < size && quotas[pi].remaining() > 0) {
        auto cell = quotas[pi].sample_cell_within(as_rng, info.home, 25.0, 12);
        if (!cell) {
          cell = quotas[pi].sample_cell_within(as_rng, info.home, 400.0, 8);
        }
        if (!cell) cell = quotas[pi].sample_cell(as_rng);
        if (!cell) break;
        place_at(pi, *cell, quotas[pi].take(*cell, size - placed));
      }

      if (info.routers.empty()) {
        --next_asn;  // nothing claimed (region exhausted); retire the ASN
        continue;
      }
      gt.ases_.push_back(std::move(info));
    }
  }

  // ---------------------------------------------------------------
  // Stage 2: addressing (one loopback per router).
  // ---------------------------------------------------------------
  AddressAllocator allocator;
  std::vector<AsAddressSpace> spaces;
  spaces.reserve(gt.ases_.size());
  for (std::size_t i = 0; i < gt.ases_.size(); ++i) {
    spaces.emplace_back(allocator, options.block_prefix_length);
  }
  for (std::size_t ai = 0; ai < gt.ases_.size(); ++ai) {
    for (const RouterId r : gt.ases_[ai].routers) {
      gt.topology_.add_interface(r, spaces[ai].next());
    }
  }

  // ---------------------------------------------------------------
  // Stage 3: intradomain links.
  // ---------------------------------------------------------------
  Rng link_rng = root.fork(2);
  LinkBuilder links(gt.topology_);

  for (std::size_t ai = 0; ai < gt.ases_.size(); ++ai) {
    AsInfo& as_info = gt.ases_[ai];
    const double lambda =
        profiles[as_info.profile_index].link_distance_scale_miles;

    // 3a. Within each site: a random tree plus extra local links.
    for (const Site& site : as_info.sites) {
      const auto& rs = site.routers;
      for (std::size_t j = 1; j < rs.size(); ++j) {
        links.connect(rs[j], rs[link_rng.uniform_index(j)], spaces[ai]);
      }
      const auto extras = static_cast<std::size_t>(
          options.intra_site_extra_links_per_router *
          static_cast<double>(rs.size()));
      for (std::size_t e = 0; e < extras && rs.size() >= 2; ++e) {
        const RouterId a = rs[link_rng.uniform_index(rs.size())];
        const RouterId b = rs[link_rng.uniform_index(rs.size())];
        links.connect(a, b, spaces[ai]);
      }
    }

    // 3b. Between sites of the AS: a connecting tree whose parent choice is
    // mostly distance-sensitive (Waxman-like), sometimes structural
    // (distance-free backbone homerun), plus distance-weighted redundancy.
    const auto& sites = as_info.sites;
    for (std::size_t s = 1; s < sites.size(); ++s) {
      std::size_t parent;
      if (link_rng.bernoulli(options.structural_link_probability)) {
        parent = 0;  // backbone homerun, whatever the distance
      } else {
        parent = pick_site_by_distance(sites, s, sites[s].center, lambda,
                                       link_rng);
      }
      const RouterId a =
          sites[s].routers[link_rng.uniform_index(sites[s].routers.size())];
      const RouterId b = sites[parent]
                             .routers[link_rng.uniform_index(
                                 sites[parent].routers.size())];
      links.connect(a, b, spaces[ai]);
    }
    const auto site_extras = static_cast<std::size_t>(
        options.inter_site_extra_fraction * static_cast<double>(sites.size()));
    for (std::size_t e = 0; e < site_extras && sites.size() >= 2; ++e) {
      const std::size_t s = link_rng.uniform_index(sites.size());
      const std::size_t t = pick_site_by_distance(sites, sites.size(),
                                                  sites[s].center, lambda,
                                                  link_rng);
      if (s == t) continue;
      const RouterId a =
          sites[s].routers[link_rng.uniform_index(sites[s].routers.size())];
      const RouterId b =
          sites[t].routers[link_rng.uniform_index(sites[t].routers.size())];
      links.connect(a, b, spaces[ai]);
    }
  }

  // ---------------------------------------------------------------
  // Stage 4: interdomain links via a size-preferential AS graph.
  // ---------------------------------------------------------------
  Rng peer_rng = root.fork(3);
  const std::size_t n_as = gt.ases_.size();
  std::vector<std::size_t> as_degree(n_as, 0);

  const auto realize_as_edge = [&](std::size_t a, std::size_t b) {
    if (a == b) return;
    AsInfo& as_a = gt.ases_[a];
    AsInfo& as_b = gt.ases_[b];
    const auto physical = static_cast<std::size_t>(
        1 + peer_rng.poisson(options.links_per_as_edge - 1.0));
    for (std::size_t l = 0; l < physical; ++l) {
      std::size_t sa = 0, sb = 0;
      if (peer_rng.bernoulli(options.peering_colocated_probability)) {
        // Peer at the closest site pair (IXP-style colocation); sample if
        // the cross product is large.
        const std::size_t pairs = as_a.sites.size() * as_b.sites.size();
        double best = std::numeric_limits<double>::infinity();
        if (pairs <= 4096) {
          for (std::size_t i = 0; i < as_a.sites.size(); ++i) {
            for (std::size_t j = 0; j < as_b.sites.size(); ++j) {
              const double d = geo::great_circle_miles(
                  as_a.sites[i].center, as_b.sites[j].center);
              if (d < best) {
                best = d;
                sa = i;
                sb = j;
              }
            }
          }
        } else {
          for (std::size_t t = 0; t < 256; ++t) {
            const std::size_t i = peer_rng.uniform_index(as_a.sites.size());
            const std::size_t j = peer_rng.uniform_index(as_b.sites.size());
            const double d = geo::great_circle_miles(as_a.sites[i].center,
                                                     as_b.sites[j].center);
            if (d < best) {
              best = d;
              sa = i;
              sb = j;
            }
          }
        }
      } else {
        sa = peer_rng.uniform_index(as_a.sites.size());
        sb = peer_rng.uniform_index(as_b.sites.size());
      }
      const RouterId ra = as_a.sites[sa].routers[peer_rng.uniform_index(
          as_a.sites[sa].routers.size())];
      const RouterId rb = as_b.sites[sb].routers[peer_rng.uniform_index(
          as_b.sites[sb].routers.size())];
      // Interdomain links are numbered from one side's space — the source
      // of the paper's AS-mapping ambiguity for border interfaces. The
      // larger party (the provider) usually assigns the /30.
      const bool a_is_larger = as_a.routers.size() >= as_b.routers.size();
      const std::size_t provider = a_is_larger ? a : b;
      const std::size_t customer = a_is_larger ? b : a;
      AsAddressSpace& numbering =
          peer_rng.bernoulli(0.85) ? spaces[provider] : spaces[customer];
      links.connect(ra, rb, numbering);
    }
    ++as_degree[a];
    ++as_degree[b];
  };

  const auto pick_peer = [&](std::size_t upto, const GeoPoint& from,
                             double lambda) {
    std::vector<double> weights(upto, 0.0);
    const bool distance_free =
        peer_rng.bernoulli(options.interdomain_far_probability);
    for (std::size_t j = 0; j < upto; ++j) {
      double w = static_cast<double>(gt.ases_[j].routers.size()) +
                 3.0 * static_cast<double>(as_degree[j]);
      if (!distance_free) {
        const double d = geo::great_circle_miles(from, gt.ases_[j].home);
        w *= std::exp(-d / (options.interdomain_distance_multiplier * lambda));
      }
      weights[j] = w;
    }
    const std::size_t idx = stats::weighted_index(peer_rng, weights);
    return idx < upto ? idx : peer_rng.uniform_index(upto);
  };

  // Attachment pass guarantees AS-level connectivity.
  for (std::size_t a = 1; a < n_as; ++a) {
    const double lambda =
        profiles[gt.ases_[a].profile_index].link_distance_scale_miles;
    realize_as_edge(a, pick_peer(a, gt.ases_[a].home, lambda));
  }
  // Core mesh: the largest ASes (the era's tier-1 transit providers)
  // interconnect pairwise, as they did in reality — without this the AS
  // hierarchy fragments into disconnected customer cones.
  {
    std::vector<std::size_t> by_size(n_as);
    for (std::size_t i = 0; i < n_as; ++i) by_size[i] = i;
    std::sort(by_size.begin(), by_size.end(), [&](std::size_t a, std::size_t b) {
      return gt.ases_[a].routers.size() > gt.ases_[b].routers.size();
    });
    const std::size_t core = std::min<std::size_t>(n_as, 8);
    for (std::size_t i = 0; i < core; ++i) {
      for (std::size_t j = i + 1; j < core; ++j) {
        realize_as_edge(by_size[i], by_size[j]);
      }
    }
  }

  // Extra peerings beyond the tree, initiated by size-weighted ASes
  // (stub networks do not keep adding transit providers).
  std::vector<double> size_weights(n_as);
  for (std::size_t i = 0; i < n_as; ++i) {
    size_weights[i] = static_cast<double>(gt.ases_[i].routers.size());
  }
  const stats::DiscreteSampler initiator(size_weights);
  const auto extra_edges = static_cast<std::size_t>(
      (options.as_edge_factor - 1.0) * static_cast<double>(n_as));
  for (std::size_t e = 0; e < extra_edges && n_as >= 2; ++e) {
    const std::size_t a = initiator.sample(peer_rng);
    if (a >= n_as) break;
    const double lambda =
        profiles[gt.ases_[a].profile_index].link_distance_scale_miles;
    const std::size_t b = pick_peer(n_as, gt.ases_[a].home, lambda);
    if (a != b) realize_as_edge(a, b);
  }

  // ---------------------------------------------------------------
  // Stage 5: BGP view.
  // ---------------------------------------------------------------
  Rng bgp_rng = root.fork(4);
  for (std::size_t ai = 0; ai < gt.ases_.size(); ++ai) {
    AsInfo& as_info = gt.ases_[ai];
    as_info.prefixes = spaces[ai].blocks();
    if (!as_info.announced) continue;
    for (const net::Prefix& block : as_info.prefixes) {
      if (bgp_rng.bernoulli(options.split_announcement_probability) &&
          block.length < 30) {
        // Announce the two halves separately (a common deaggregation).
        const auto half = static_cast<std::uint8_t>(block.length + 1);
        const std::uint32_t step = 1u << (32 - half);
        gt.bgp_.announce({block.network, half}, as_info.asn);
        gt.bgp_.announce({net::Ipv4Addr{block.network.value + step}, half},
                         as_info.asn);
      } else {
        gt.bgp_.announce(block, as_info.asn);
      }
      if (bgp_rng.bernoulli(options.foreign_more_specific_probability) &&
          block.length <= 24 && gt.ases_.size() > 1) {
        // A customer announces a more-specific /24 from inside the block —
        // real-world noise that LPM mapping must honour.
        const std::size_t other = bgp_rng.uniform_index(gt.ases_.size());
        if (other != ai) {
          const std::uint32_t offset =
              static_cast<std::uint32_t>(bgp_rng.uniform_index(
                  1u << (24 - block.length)))
              << 8;
          gt.bgp_.announce({net::Ipv4Addr{block.network.value + offset}, 24},
                           gt.ases_[other].asn);
        }
      }
    }
  }

  for (std::size_t ai = 0; ai < gt.ases_.size(); ++ai) {
    gt.asn_index_[gt.ases_[ai].asn] = ai;
  }
  return gt;
}

const AsInfo* GroundTruth::as_info(std::uint32_t asn) const noexcept {
  const auto it = asn_index_.find(asn);
  return it == asn_index_.end() ? nullptr : &ases_[it->second];
}

const geo::GeoPoint& GroundTruth::interface_location(
    net::InterfaceId id) const noexcept {
  return topology_.router(topology_.interface(id).router).location;
}

geo::GeoPoint GroundTruth::interface_as_home(net::InterfaceId id) const noexcept {
  const std::uint32_t asn = interface_true_asn(id);
  const AsInfo* info = as_info(asn);
  return info != nullptr ? info->home : interface_location(id);
}

std::uint32_t GroundTruth::interface_true_asn(net::InterfaceId id) const noexcept {
  return topology_.router(topology_.interface(id).router).asn;
}

std::size_t GroundTruth::interdomain_link_count() const noexcept {
  std::size_t count = 0;
  for (const net::Link& link : topology_.links()) {
    const auto& if_a = topology_.interface(link.if_a);
    const auto& if_b = topology_.interface(link.if_b);
    if (topology_.router(if_a.router).asn != topology_.router(if_b.router).asn) {
      ++count;
    }
  }
  return count;
}

}  // namespace geonet::synth
