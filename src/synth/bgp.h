#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix_trie.h"

namespace geonet::synth {

/// One BGP RIB entry: an advertised prefix and its originating AS.
struct BgpEntry {
  net::Prefix prefix;
  std::uint32_t origin_asn = 0;
};

/// A synthetic BGP table, the library's stand-in for the RouteViews
/// backbone-table union the paper uses to label nodes with their parent AS
/// (Section III.C): longest advertised prefix matching the address wins.
class BgpTable {
 public:
  /// Announces a prefix originated by `asn` (later announcements of the
  /// same prefix overwrite earlier ones, as a RIB refresh would).
  void announce(const net::Prefix& prefix, std::uint32_t asn);

  /// AS originating the longest matching prefix, or nullopt if the address
  /// is not covered (the paper groups such nodes into a separate AS and
  /// omits them from AS analysis).
  [[nodiscard]] std::optional<std::uint32_t> origin_as(net::Ipv4Addr addr) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<BgpEntry>& entries() const noexcept {
    return entries_;
  }

 private:
  std::vector<BgpEntry> entries_;
  net::PrefixTrie trie_;
};

/// Sequential allocator of address blocks from public IPv4 space, used to
/// give every synthetic AS its own prefixes. Skips RFC 1918 and loopback
/// space so `net::is_private` filtering stays meaningful.
class AddressAllocator {
 public:
  /// Starts allocating at 1.0.0.0.
  AddressAllocator() = default;

  /// Allocates the next /`length` block (length in [8, 30]).
  net::Prefix allocate_block(std::uint8_t length);

  /// Addresses handed out so far (for diagnostics).
  [[nodiscard]] std::uint64_t allocated() const noexcept { return allocated_; }

 private:
  std::uint32_t cursor_ = 0x01000000;  // 1.0.0.0
  std::uint64_t allocated_ = 0;
};

/// Bump-pointer supply of host addresses inside a growing set of blocks;
/// each AS owns one. `next()` mints a fresh address, pulling a new block
/// from the allocator when the current one is exhausted.
class AsAddressSpace {
 public:
  AsAddressSpace(AddressAllocator& allocator, std::uint8_t block_length = 19)
      : allocator_(&allocator), block_length_(block_length) {}

  net::Ipv4Addr next();

  [[nodiscard]] const std::vector<net::Prefix>& blocks() const noexcept {
    return blocks_;
  }

 private:
  AddressAllocator* allocator_;
  std::uint8_t block_length_;
  std::vector<net::Prefix> blocks_;
  std::uint32_t offset_ = 0;  // next host offset within the last block
};

}  // namespace geonet::synth
