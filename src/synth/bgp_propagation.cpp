#include "synth/bgp_propagation.h"

#include "obs/trace.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace geonet::synth {

namespace {

std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return (hi << 32) | lo;
}

/// Adjacency split by role, keyed by ASN.
struct RelationGraph {
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> providers_of;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> customers_of;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> peers_of;
};

RelationGraph build_graph(std::span<const AsRelationship> relationships) {
  RelationGraph graph;
  for (const auto& rel : relationships) {
    if (rel.relation == AsRelation::kCustomerProvider) {
      graph.providers_of[rel.customer_asn].push_back(rel.provider_asn);
      graph.customers_of[rel.provider_asn].push_back(rel.customer_asn);
    } else {
      graph.peers_of[rel.customer_asn].push_back(rel.provider_asn);
      graph.peers_of[rel.provider_asn].push_back(rel.customer_asn);
    }
  }
  return graph;
}

void bfs_closure(
    const std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>& step,
    std::unordered_set<std::uint32_t>& members) {
  std::queue<std::uint32_t> frontier;
  for (const std::uint32_t asn : members) frontier.push(asn);
  while (!frontier.empty()) {
    const std::uint32_t asn = frontier.front();
    frontier.pop();
    const auto it = step.find(asn);
    if (it == step.end()) continue;
    for (const std::uint32_t next : it->second) {
      if (members.insert(next).second) frontier.push(next);
    }
  }
}

}  // namespace

std::vector<AsRelationship> infer_as_relationships(const GroundTruth& truth,
                                                   double provider_ratio) {
  const obs::Span span("bgp/infer_relationships");
  std::unordered_set<std::uint64_t> seen;
  std::vector<AsRelationship> out;
  const net::Topology& topology = truth.topology();

  for (const net::Link& link : topology.links()) {
    const std::uint32_t as_a =
        topology.router(topology.interface(link.if_a).router).asn;
    const std::uint32_t as_b =
        topology.router(topology.interface(link.if_b).router).asn;
    if (as_a == as_b) continue;
    if (!seen.insert(pair_key(as_a, as_b)).second) continue;

    const AsInfo* info_a = truth.as_info(as_a);
    const AsInfo* info_b = truth.as_info(as_b);
    const double size_a =
        info_a != nullptr ? static_cast<double>(info_a->routers.size()) : 1.0;
    const double size_b =
        info_b != nullptr ? static_cast<double>(info_b->routers.size()) : 1.0;

    AsRelationship rel;
    if (size_a >= provider_ratio * size_b) {
      rel = {as_b, as_a, AsRelation::kCustomerProvider};
    } else if (size_b >= provider_ratio * size_a) {
      rel = {as_a, as_b, AsRelation::kCustomerProvider};
    } else {
      rel = {std::min(as_a, as_b), std::max(as_a, as_b),
             AsRelation::kPeerPeer};
    }
    out.push_back(rel);
  }

  // Post-pass (as Gao-style inference does): every AS outside the top of
  // the hierarchy buys transit somewhere. An AS left with no provider has
  // its link to its largest neighbour reinterpreted as a transit
  // purchase, unless it is itself among the largest ASes (a tier-1).
  std::unordered_map<std::uint32_t, std::size_t> provider_count;
  for (const auto& rel : out) {
    if (rel.relation == AsRelation::kCustomerProvider) {
      ++provider_count[rel.customer_asn];
    }
  }
  std::size_t biggest = 0;
  for (const AsInfo& info : truth.ases()) {
    biggest = std::max(biggest, info.routers.size());
  }
  const double tier1_floor = 0.5 * static_cast<double>(biggest);

  // Ascending size order so small ASes claim transit first and the
  // cascade propagates upward with live provider counts.
  std::vector<const AsInfo*> ascending;
  for (const AsInfo& info : truth.ases()) ascending.push_back(&info);
  std::sort(ascending.begin(), ascending.end(),
            [](const AsInfo* a, const AsInfo* b) {
              return a->routers.size() < b->routers.size();
            });

  bool changed = true;
  for (int pass = 0; pass < 8 && changed; ++pass) {
  changed = false;
  for (const AsInfo* info_ptr : ascending) {
    const AsInfo& info = *info_ptr;
    if (provider_count[info.asn] > 0) continue;
    if (static_cast<double>(info.routers.size()) >= tier1_floor) continue;

    // Find this AS's largest neighbour among the inferred edges,
    // preferring flips that do not orphan the counterparty (stealing its
    // only provider just moves the hole around).
    AsRelationship* best = nullptr;
    double best_size = -1.0;
    bool best_orphans = true;
    for (auto& rel : out) {
      const bool touches =
          rel.customer_asn == info.asn || rel.provider_asn == info.asn;
      if (!touches) continue;
      const std::uint32_t other =
          rel.customer_asn == info.asn ? rel.provider_asn : rel.customer_asn;
      const AsInfo* other_info = truth.as_info(other);
      const double other_size =
          other_info != nullptr
              ? static_cast<double>(other_info->routers.size())
              : 0.0;
      const bool orphans = rel.relation == AsRelation::kCustomerProvider &&
                           rel.customer_asn == other &&
                           provider_count[other] <= 1;
      const bool better = best == nullptr ||
                          (best_orphans && !orphans) ||
                          (best_orphans == orphans && other_size > best_size);
      if (better) {
        best_size = other_size;
        best = &rel;
        best_orphans = orphans;
      }
    }
    if (best != nullptr) {
      const std::uint32_t other = best->customer_asn == info.asn
                                      ? best->provider_asn
                                      : best->customer_asn;
      // Keep the live counts honest: overwriting a transit edge that had
      // `other` as the customer removes one of `other`'s providers.
      if (best->relation == AsRelation::kCustomerProvider &&
          best->customer_asn == other) {
        --provider_count[other];
      }
      *best = {info.asn, other, AsRelation::kCustomerProvider};
      ++provider_count[info.asn];
      changed = true;
    }
  }
  }
  return out;
}

std::vector<std::uint32_t> visible_at(
    const GroundTruth& truth, std::span<const AsRelationship> relationships,
    std::uint32_t origin_asn) {
  (void)truth;
  const RelationGraph graph = build_graph(relationships);

  // Up: the origin and all transitive providers hear customer routes.
  std::unordered_set<std::uint32_t> upward{origin_asn};
  bfs_closure(graph.providers_of, upward);

  // Across: customer routes are exported to peers (one peering hop).
  std::unordered_set<std::uint32_t> reached = upward;
  for (const std::uint32_t asn : upward) {
    const auto it = graph.peers_of.find(asn);
    if (it == graph.peers_of.end()) continue;
    for (const std::uint32_t peer : it->second) reached.insert(peer);
  }

  // Down: everyone who heard the route exports it to customers.
  bfs_closure(graph.customers_of, reached);

  std::vector<std::uint32_t> out(reached.begin(), reached.end());
  std::sort(out.begin(), out.end());
  return out;
}

BgpTable vantage_table(const GroundTruth& truth,
                       std::span<const AsRelationship> relationships,
                       std::uint32_t vantage_asn) {
  return route_views_union(truth, relationships, {{vantage_asn}});
}

BgpTable route_views_union(const GroundTruth& truth,
                           std::span<const AsRelationship> relationships,
                           std::span<const std::uint32_t> vantage_asns) {
  const obs::Span span("bgp/route_views_union");
  const std::unordered_set<std::uint32_t> vantages(vantage_asns.begin(),
                                                   vantage_asns.end());
  BgpTable table;
  for (const AsInfo& origin : truth.ases()) {
    if (!origin.announced) continue;
    const auto reach = visible_at(truth, relationships, origin.asn);
    const bool seen = std::any_of(
        reach.begin(), reach.end(),
        [&](std::uint32_t asn) { return vantages.contains(asn); });
    if (!seen) continue;
    for (const net::Prefix& block : origin.prefixes) {
      table.announce(block, origin.asn);
    }
  }
  return table;
}

std::vector<std::uint32_t> as_path(
    std::span<const AsRelationship> relationships, std::uint32_t src_asn,
    std::uint32_t dst_asn) {
  if (src_asn == dst_asn) return {src_asn};
  const RelationGraph graph = build_graph(relationships);

  // BFS over (asn, phase) states; phases encode the valley-free grammar
  // up* across? down*: 0 = still climbing, 1 = crossed a peering,
  // 2 = descending.
  struct State {
    std::uint32_t asn;
    int phase;
  };
  struct Parent {
    std::uint32_t asn = 0;
    int phase = -1;
  };
  std::unordered_map<std::uint64_t, Parent> parents;
  const auto key = [](std::uint32_t asn, int phase) {
    return (static_cast<std::uint64_t>(asn) << 2) | static_cast<std::uint64_t>(phase);
  };

  std::queue<State> frontier;
  frontier.push({src_asn, 0});
  parents[key(src_asn, 0)] = {src_asn, -1};

  const auto visit = [&](const State& from, std::uint32_t next, int phase) {
    if (parents.contains(key(next, phase))) return State{0, -1};
    parents[key(next, phase)] = {from.asn, from.phase};
    return State{next, phase};
  };

  State goal{0, -1};
  while (!frontier.empty() && goal.phase < 0) {
    const State state = frontier.front();
    frontier.pop();
    const auto expand = [&](const std::unordered_map<
                                std::uint32_t, std::vector<std::uint32_t>>& step,
                            int next_phase) {
      const auto it = step.find(state.asn);
      if (it == step.end()) return;
      for (const std::uint32_t next : it->second) {
        const State fresh = visit(state, next, next_phase);
        if (fresh.phase < 0) continue;
        if (fresh.asn == dst_asn) {
          goal = fresh;
          return;
        }
        frontier.push(fresh);
      }
    };
    if (state.phase == 0) {
      expand(graph.providers_of, 0);   // keep climbing
      expand(graph.peers_of, 1);       // one peering crossing
    }
    if (state.phase <= 2) {
      expand(graph.customers_of, 2);   // descend
    }
    if (goal.phase >= 0) break;
  }
  if (goal.phase < 0) return {};

  std::vector<std::uint32_t> path;
  State cursor = goal;
  while (cursor.phase != -1) {
    path.push_back(cursor.asn);
    const Parent parent = parents.at(key(cursor.asn, cursor.phase));
    if (parent.phase == -1 && parent.asn == cursor.asn) break;
    cursor = {parent.asn, parent.phase};
  }
  path.push_back(src_asn);
  // Remove the duplicated source if the loop broke after pushing it.
  if (path.size() >= 2 && path[path.size() - 1] == path[path.size() - 2]) {
    path.pop_back();
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double table_coverage(const GroundTruth& truth, const BgpTable& table) {
  std::size_t announced = 0;
  std::size_t covered = 0;
  for (const AsInfo& info : truth.ases()) {
    if (!info.announced) continue;
    for (const net::Prefix& block : info.prefixes) {
      ++announced;
      const auto origin =
          table.origin_as(net::Ipv4Addr{block.network.value + 1});
      if (origin && *origin == info.asn) ++covered;
    }
  }
  return announced == 0
             ? 0.0
             : static_cast<double>(covered) / static_cast<double>(announced);
}

}  // namespace geonet::synth
