#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "synth/bgp.h"
#include "synth/ground_truth.h"

namespace geonet::synth {

/// Business relationship between two directly-connected ASes, in the
/// Gao-Rexford model that governs real BGP export policy.
enum class AsRelation : std::uint8_t { kCustomerProvider, kPeerPeer };

struct AsRelationship {
  std::uint32_t customer_asn = 0;  ///< for kPeerPeer: the smaller ASN
  std::uint32_t provider_asn = 0;  ///< for kPeerPeer: the larger ASN
  AsRelation relation = AsRelation::kCustomerProvider;
};

/// Infers relationships from the ground truth's physical interdomain
/// links: a pair whose router counts differ by more than `provider_ratio`
/// is customer-provider (small pays big); comparable sizes peer.
std::vector<AsRelationship> infer_as_relationships(
    const GroundTruth& truth, double provider_ratio = 1.4);

/// The set of ASes that receive routes originated by `origin` under
/// valley-free export: up through all transitive providers, across one
/// peering hop from any of those, then down through customers.
std::vector<std::uint32_t> visible_at(
    const GroundTruth& truth, std::span<const AsRelationship> relationships,
    std::uint32_t origin_asn);

/// Builds the BGP table a single vantage AS would observe: the prefixes
/// of every origin whose routes reach it valley-free.
BgpTable vantage_table(const GroundTruth& truth,
                       std::span<const AsRelationship> relationships,
                       std::uint32_t vantage_asn);

/// The RouteViews construction: the union of the backbone tables
/// contributed by several vantage ASes (Section III.C of the paper).
BgpTable route_views_union(const GroundTruth& truth,
                           std::span<const AsRelationship> relationships,
                           std::span<const std::uint32_t> vantage_asns);

/// Fraction of announced ground-truth prefixes present in `table`
/// (coverage of the omniscient RIB).
double table_coverage(const GroundTruth& truth, const BgpTable& table);

/// Fewest-hop valley-free AS path from src to dst (the route BGP policy
/// admits), or empty when policy forbids every path. This is the paper's
/// Section VII use case: AS-labelled topologies make interdomain-routing
/// simulation possible.
std::vector<std::uint32_t> as_path(
    std::span<const AsRelationship> relationships, std::uint32_t src_asn,
    std::uint32_t dst_asn);

}  // namespace geonet::synth
