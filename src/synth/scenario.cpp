#include "synth/scenario.h"

#include <algorithm>

#include "synth/scenario_store.h"

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "synth/bgp_propagation.h"
#include "synth/faulty_mapper.h"
#include "synth/hostnames.h"
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

namespace geonet::synth {

const char* to_string(DatasetKind kind) noexcept {
  return kind == DatasetKind::kSkitter ? "Skitter" : "Mercator";
}

const char* to_string(MapperKind kind) noexcept {
  return kind == MapperKind::kIxMapper ? "IxMapper" : "EdgeScape";
}

namespace {

/// AS of an interface as the paper derives it: longest-prefix match of the
/// interface's address in the BGP table; 0 for uncovered addresses.
std::uint32_t bgp_asn(const GroundTruth& truth, const BgpTable* bgp,
                      net::InterfaceId iface) {
  const net::Ipv4Addr addr = truth.topology().interface(iface).addr;
  const BgpTable& table = bgp != nullptr ? *bgp : truth.bgp();
  return table.origin_as(addr).value_or(net::kUnknownAs);
}

/// The paper's Section III.B bookkeeping, mirrored into the metrics
/// registry so every run's pipeline accounting is machine-readable.
void record_processing_metrics(const ProcessingStats& stats) {
  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter("pipeline.nodes_processed").add(stats.input_nodes);
  metrics.counter("pipeline.nodes_unmapped").add(stats.unmapped_nodes);
  metrics.counter("pipeline.routers_tie_discarded")
      .add(stats.tie_discarded_routers);
  metrics.counter("pipeline.nodes_as_unmapped").add(stats.as_unmapped_nodes);
  metrics.counter("pipeline.nodes_emitted").add(stats.output_nodes);
  metrics.counter("pipeline.links_emitted").add(stats.output_links);
}

}  // namespace

net::AnnotatedGraph process_interface_observation(
    const GroundTruth& truth, const InterfaceObservation& raw,
    const Mapper& mapper, ProcessingStats* stats, const BgpTable* bgp) {
  const obs::Span span("pipeline/process_interfaces");
  ProcessingStats local;
  local.input_nodes = raw.interfaces.size();

  net::AnnotatedGraph graph(net::NodeKind::kInterface,
                            std::string("Skitter+") + mapper.name());
  std::unordered_map<net::InterfaceId, std::uint32_t> node_of;

  for (const net::InterfaceId iface : raw.interfaces) {
    const auto location =
        mapper.map(truth.topology().interface(iface).addr,
                   truth.interface_location(iface), truth.interface_as_home(iface));
    if (!location) {
      ++local.unmapped_nodes;
      continue;
    }
    const std::uint32_t asn = bgp_asn(truth, bgp, iface);
    if (asn == net::kUnknownAs) ++local.as_unmapped_nodes;
    node_of[iface] = graph.add_node(
        {truth.topology().interface(iface).addr, *location, asn});
  }

  for (const auto& [a, b] : raw.links) {
    const auto it_a = node_of.find(a);
    const auto it_b = node_of.find(b);
    if (it_a == node_of.end() || it_b == node_of.end()) continue;
    graph.add_edge(it_a->second, it_b->second);
  }

  local.output_nodes = graph.node_count();
  local.output_links = graph.edge_count();
  local.distinct_locations = distinct_location_count(graph);
  record_processing_metrics(local);
  if (stats != nullptr) *stats = local;
  return graph;
}

net::AnnotatedGraph process_router_observation(
    const GroundTruth& truth, const RouterObservation& raw,
    const Mapper& mapper, ProcessingStats* stats, const BgpTable* bgp) {
  const obs::Span span("pipeline/process_routers");
  ProcessingStats local;
  local.input_nodes = raw.routers.size();

  net::AnnotatedGraph graph(net::NodeKind::kRouter,
                            std::string("Mercator+") + mapper.name());
  std::vector<std::int64_t> node_of(raw.routers.size(), -1);

  for (std::size_t i = 0; i < raw.routers.size(); ++i) {
    const ObservedRouter& router = raw.routers[i];

    // Map every interface; vote on location (most common wins, ties
    // discard the router) and on AS (most common wins, unmapped tolerated).
    std::vector<geo::GeoPoint> mapped;
    std::vector<std::uint32_t> asns;
    for (const net::InterfaceId iface : router.interfaces) {
      const auto location = mapper.map(truth.topology().interface(iface).addr,
                                       truth.interface_location(iface),
                                       truth.interface_as_home(iface));
      if (location) mapped.push_back(*location);
      asns.push_back(bgp_asn(truth, bgp, iface));
    }
    if (mapped.empty()) {
      ++local.unmapped_nodes;
      continue;
    }

    // Location vote over quantised keys.
    std::unordered_map<std::uint64_t, std::pair<std::size_t, geo::GeoPoint>> votes;
    for (const auto& loc : mapped) {
      auto& slot = votes[geo::quantized_key(loc)];
      ++slot.first;
      slot.second = loc;
    }
    std::size_t best = 0;
    bool tie = false;
    geo::GeoPoint winner;
    for (const auto& [key, value] : votes) {
      (void)key;
      if (value.first > best) {
        best = value.first;
        winner = value.second;
        tie = false;
      } else if (value.first == best) {
        tie = true;
      }
    }
    if (tie && votes.size() > 1) {
      ++local.tie_discarded_routers;
      continue;
    }

    // AS vote (prefer mapped ASes over the unknown bucket).
    std::unordered_map<std::uint32_t, std::size_t> as_votes;
    for (const std::uint32_t asn : asns) ++as_votes[asn];
    std::uint32_t best_asn = net::kUnknownAs;
    std::size_t best_count = 0;
    for (const auto& [asn, count] : as_votes) {
      const bool better =
          count > best_count ||
          (count == best_count && best_asn == net::kUnknownAs && asn != net::kUnknownAs);
      if (better) {
        best_count = count;
        best_asn = asn;
      }
    }
    if (best_asn == net::kUnknownAs) ++local.as_unmapped_nodes;

    node_of[i] = graph.add_node(
        {truth.topology().interface(router.interfaces.front()).addr, winner,
         best_asn});
  }

  for (const auto& [a, b] : raw.links) {
    if (node_of[a] < 0 || node_of[b] < 0) continue;
    graph.add_edge(static_cast<std::uint32_t>(node_of[a]),
                   static_cast<std::uint32_t>(node_of[b]));
  }

  local.output_nodes = graph.node_count();
  local.output_links = graph.edge_count();
  local.distinct_locations = distinct_location_count(graph);
  record_processing_metrics(local);
  if (stats != nullptr) *stats = local;
  return graph;
}

std::size_t distinct_location_count(const net::AnnotatedGraph& graph,
                                    double quantum_deg) {
  std::unordered_set<std::uint64_t> keys;
  keys.reserve(graph.node_count());
  for (const auto& node : graph.nodes()) {
    keys.insert(geo::quantized_key(node.location, quantum_deg));
  }
  return keys.size();
}

ScenarioOptions ScenarioOptions::defaults() {
  ScenarioOptions options;
  if (const char* env = std::getenv("GEONET_SCALE")) {
    const double parsed = std::atof(env);
    if (parsed > 0.0) options.scale = parsed;
  }
  return options;
}

std::size_t Scenario::slot(DatasetKind dataset, MapperKind mapper) noexcept {
  return (dataset == DatasetKind::kSkitter ? 0u : 2u) +
         (mapper == MapperKind::kIxMapper ? 0u : 1u);
}

Scenario Scenario::build(const ScenarioOptions& options) {
  const obs::Span build_span("scenario/build");
  Scenario s;
  s.options_ = options;

  {
    const obs::Span span("scenario/world_population");
    s.world_ = std::make_unique<population::WorldPopulation>(
        population::WorldPopulation::build(options.seed));
  }

  GroundTruthOptions truth_options = options.truth;
  truth_options.interface_scale = options.scale;
  truth_options.seed = options.seed ^ 0xa5a5a5a5ULL;
  s.truth_ = std::make_unique<GroundTruth>(
      GroundTruth::build(*s.world_, truth_options));

  // The earlier (Mercator-epoch) Internet: same world and growth seed, so
  // it is statistically an earlier snapshot of the same deployment
  // pattern, at a fraction of the size.
  GroundTruthOptions epoch_options = truth_options;
  epoch_options.interface_scale =
      options.scale * std::clamp(options.mercator_epoch_factor, 0.05, 1.0);
  s.mercator_truth_ = std::make_unique<GroundTruth>(
      GroundTruth::build(*s.world_, epoch_options));

  SkitterOptions skitter_options = options.skitter;
  skitter_options.seed = options.seed ^ 0x51c177e6ULL;
  skitter_options.faults = options.faults;
  // Destination lists scale with the world so coverage stays comparable.
  skitter_options.destinations_per_monitor = std::max<std::size_t>(
      200, s.truth_->topology().router_count() / 4);
  s.skitter_raw_ = run_skitter(*s.truth_, skitter_options);

  MercatorOptions mercator_options = options.mercator;
  mercator_options.seed = options.seed ^ 0x3e2ca707ULL;
  mercator_options.faults = options.faults;
  s.mercator_raw_ = run_mercator(*s.mercator_truth_, mercator_options);

  // City database shared by both mappers: where people actually live.
  std::vector<geo::GeoPoint> city_db;
  for (const auto& grid : s.world_->grids()) {
    for (const auto& city : grid.cities()) city_db.push_back(city.center);
  }

  const GeoMapper ixmapper(GeoMapper::ixmapper_profile(), city_db,
                           options.seed ^ 0x1a11ULL);
  const GeoMapper edgescape(GeoMapper::edgescape_profile(), city_db,
                            options.seed ^ 0xed6eULL);

  // Mechanical-fidelity mode: hostname parsing instead of the statistical
  // IxMapper, and a propagated RouteViews union instead of the omniscient
  // RIB.
  std::unique_ptr<CityCodebook> codebook;
  std::unique_ptr<DnsDatabase> dns;
  std::unique_ptr<DnsDatabase> dns_mercator;
  std::unique_ptr<HostnameMapper> hostname_mapper;
  std::unique_ptr<HostnameMapper> hostname_mapper_mercator;
  std::unique_ptr<BgpTable> propagated;
  std::unique_ptr<BgpTable> propagated_mercator;
  const auto propagate_for = [](const GroundTruth& truth) {
    const auto relationships = infer_as_relationships(truth);
    std::vector<const AsInfo*> by_size;
    for (const auto& info : truth.ases()) by_size.push_back(&info);
    std::sort(by_size.begin(), by_size.end(),
              [](const AsInfo* a, const AsInfo* b) {
                return a->routers.size() > b->routers.size();
              });
    std::vector<std::uint32_t> vantages;
    for (std::size_t i = 0; i < by_size.size() && i < 24; ++i) {
      vantages.push_back(by_size[i]->asn);
    }
    return std::make_unique<BgpTable>(
        route_views_union(truth, relationships, vantages));
  };
  if (options.mechanical_pipeline) {
    const obs::Span span("scenario/mechanical_setup");
    codebook = std::make_unique<CityCodebook>(city_db);
    dns = std::make_unique<DnsDatabase>(build_dns(*s.truth_, *codebook));
    dns_mercator =
        std::make_unique<DnsDatabase>(build_dns(*s.mercator_truth_, *codebook));
    hostname_mapper = std::make_unique<HostnameMapper>(
        *dns, *codebook, 0.85, options.seed ^ 0xd45ULL);
    hostname_mapper_mercator = std::make_unique<HostnameMapper>(
        *dns_mercator, *codebook, 0.85, options.seed ^ 0xd45ULL);
    propagated = propagate_for(*s.truth_);
    propagated_mercator = propagate_for(*s.mercator_truth_);
  }

  const auto process = [&](DatasetKind dataset, MapperKind mapper_kind,
                           const Mapper& mapper) {
    const std::size_t i = slot(dataset, mapper_kind);
    if (dataset == DatasetKind::kSkitter) {
      s.graphs_[i] = std::make_unique<net::AnnotatedGraph>(
          process_interface_observation(*s.truth_, s.skitter_raw_, mapper,
                                        &s.stats_[i], propagated.get()));
    } else {
      s.graphs_[i] = std::make_unique<net::AnnotatedGraph>(
          process_router_observation(*s.mercator_truth_, s.mercator_raw_,
                                     mapper, &s.stats_[i],
                                     propagated_mercator.get()));
    }
  };
  const Mapper& ix_role = options.mechanical_pipeline
                              ? static_cast<const Mapper&>(*hostname_mapper)
                              : static_cast<const Mapper&>(ixmapper);
  const Mapper& ix_role_mercator =
      options.mechanical_pipeline
          ? static_cast<const Mapper&>(*hostname_mapper_mercator)
          : static_cast<const Mapper&>(ixmapper);

  // Injected geolocation-database corruption wraps whichever mappers the
  // run uses; the wrapped service keeps its name so dataset labels stay
  // stable under damage.
  std::optional<FaultyMapper> faulty_ix, faulty_ix_mercator, faulty_edge;
  const Mapper* ix_use = &ix_role;
  const Mapper* ix_use_mercator = &ix_role_mercator;
  const Mapper* edge_use = &edgescape;
  if (options.faults && options.faults->geo_corrupt) {
    const fault::GeoCorruptFault& geo_fault = *options.faults->geo_corrupt;
    const std::uint64_t fault_seed = options.faults->seed;
    faulty_ix.emplace(ix_role, geo_fault, fault_seed);
    faulty_ix_mercator.emplace(ix_role_mercator, geo_fault, fault_seed);
    faulty_edge.emplace(edgescape, geo_fault, fault_seed);
    ix_use = &*faulty_ix;
    ix_use_mercator = &*faulty_ix_mercator;
    edge_use = &*faulty_edge;
  }

  process(DatasetKind::kSkitter, MapperKind::kIxMapper, *ix_use);
  process(DatasetKind::kSkitter, MapperKind::kEdgeScape, *edge_use);
  process(DatasetKind::kMercator, MapperKind::kIxMapper, *ix_use_mercator);
  process(DatasetKind::kMercator, MapperKind::kEdgeScape, *edge_use);

  s.fault_stats_.merge(s.skitter_raw_.fault_stats);
  s.fault_stats_.merge(s.mercator_raw_.fault_stats);
  for (const auto* faulty : {faulty_ix ? &*faulty_ix : nullptr,
                             faulty_ix_mercator ? &*faulty_ix_mercator : nullptr,
                             faulty_edge ? &*faulty_edge : nullptr}) {
    if (faulty != nullptr) s.fault_stats_.merge(faulty->stats());
  }
  s.probe_stats_.merge(s.skitter_raw_.probe_stats);
  s.probe_stats_.merge(s.mercator_raw_.probe_stats);
  return s;
}

const net::AnnotatedGraph& Scenario::graph(DatasetKind dataset,
                                           MapperKind mapper) const noexcept {
  return *graphs_[slot(dataset, mapper)];
}

const ProcessingStats& Scenario::stats(DatasetKind dataset,
                                       MapperKind mapper) const noexcept {
  return stats_[slot(dataset, mapper)];
}

std::string processing_stats_json(const ProcessingStats& stats) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("input_nodes").value(stats.input_nodes);
  json.key("unmapped_nodes").value(stats.unmapped_nodes);
  json.key("tie_discarded_routers").value(stats.tie_discarded_routers);
  json.key("as_unmapped_nodes").value(stats.as_unmapped_nodes);
  json.key("output_nodes").value(stats.output_nodes);
  json.key("output_links").value(stats.output_links);
  json.key("distinct_locations").value(stats.distinct_locations);
  json.end_object();
  return json.str();
}

std::string scenario_degradation_json(const Scenario& scenario) {
  return scenario_degradation_json(scenario.options().faults,
                                   scenario.fault_stats(),
                                   scenario.probe_stats());
}

std::string scenario_stats_json(const Scenario& scenario) {
  std::array<ProcessingStats, 4> stats;
  for (const DatasetKind dataset :
       {DatasetKind::kSkitter, DatasetKind::kMercator}) {
    for (const MapperKind mapper :
         {MapperKind::kIxMapper, MapperKind::kEdgeScape}) {
      stats[dataset_slot(dataset, mapper)] = scenario.stats(dataset, mapper);
    }
  }
  return scenario_stats_json(stats);
}

}  // namespace geonet::synth
