#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "err/status.h"
#include "fault/fault_plan.h"
#include "fault/probe.h"
#include "net/annotated_graph.h"
#include "store/fingerprint.h"
#include "synth/scenario.h"

namespace geonet::synth {

/// Snapshot persistence for the expensive half of a scenario run.
///
/// Building a Scenario simulates two measurement campaigns and processes
/// four datasets — by far the dominant cost of `geonet scenario`. The
/// artifacts below are everything the analysis/report side consumes:
/// the four processed graphs, their pipeline bookkeeping, and the
/// injected-damage accounting. A warm run decodes these from the cache
/// and rebuilds only the (cheap) population substrate, producing
/// byte-identical reports while skipping simulation entirely.

/// Slot layout shared with Scenario: Skitter+IxMapper, Skitter+EdgeScape,
/// Mercator+IxMapper, Mercator+EdgeScape.
[[nodiscard]] std::size_t dataset_slot(DatasetKind dataset,
                                       MapperKind mapper) noexcept;

struct ScenarioArtifacts {
  std::array<net::AnnotatedGraph, 4> graphs{
      net::AnnotatedGraph{net::NodeKind::kInterface},
      net::AnnotatedGraph{net::NodeKind::kInterface},
      net::AnnotatedGraph{net::NodeKind::kRouter},
      net::AnnotatedGraph{net::NodeKind::kRouter}};
  std::array<ProcessingStats, 4> stats{};
  fault::FaultStats fault_stats;
  fault::ProbeStats probe_stats;
};

/// Copies the cacheable outputs out of a built scenario.
ScenarioArtifacts snapshot_artifacts(const Scenario& scenario);

/// Renders artifacts as one GEOS snapshot: a 'SCEN' section (stats and
/// damage accounting) plus four 'GRPH' sections in slot order.
std::vector<std::byte> encode_scenario_artifacts(
    const ScenarioArtifacts& artifacts);

/// Parses and validates; kDataLoss on damage or a missing section.
err::Result<ScenarioArtifacts> decode_scenario_artifacts(
    std::span<const std::byte> bytes);

/// Cache key for one scenario build: provenance + every option that
/// shapes the simulation (scale, seed, pipeline mode, epoch factor and
/// the full fault plan).
store::Fingerprint scenario_fingerprint(const ScenarioOptions& options);

/// scenario_stats_json / scenario_degradation_json twins that work from
/// decoded artifacts — byte-identical to the Scenario-based renderers in
/// scenario.h (both delegate to the same implementation).
std::string scenario_stats_json(const std::array<ProcessingStats, 4>& stats);
std::string scenario_degradation_json(
    const std::optional<fault::FaultPlan>& plan,
    const fault::FaultStats& fault_stats, const fault::ProbeStats& probe_stats);

}  // namespace geonet::synth
