#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geo/geo_point.h"
#include "net/ipv4.h"
#include "stats/rng.h"
#include "synth/geo_mapper.h"
#include "synth/ground_truth.h"

namespace geonet::synth {

/// Assigns every synthetic city a short unique code — the stand-in for
/// the airport codes and city abbreviations real ISPs put in router
/// hostnames ("...XL1.NYC8.ALTER.NET" in the paper's example).
class CityCodebook {
 public:
  explicit CityCodebook(std::vector<geo::GeoPoint> cities);

  [[nodiscard]] std::size_t size() const noexcept { return cities_.size(); }
  [[nodiscard]] const std::vector<geo::GeoPoint>& cities() const noexcept {
    return cities_;
  }

  /// Three-letter code of a city ("aaa", "aab", ...). Requires index < size().
  [[nodiscard]] std::string code(std::size_t city_index) const;

  /// Inverse of code(); nullopt for unknown tokens.
  [[nodiscard]] std::optional<std::size_t> decode(std::string_view token) const;

  /// Index of the city nearest to p (linear in city count only at build
  /// time; lookup delegated to a CityIndex).
  [[nodiscard]] std::optional<std::size_t> nearest(const geo::GeoPoint& p) const {
    return index_.nearest(p);
  }

 private:
  std::vector<geo::GeoPoint> cities_;
  CityIndex index_;
  std::unordered_map<std::string, std::size_t> by_code_;
};

/// Builds an ISP-style router interface hostname carrying a city token,
/// e.g. "so-2-1-0.cr3.aab2.as204.net". Deterministic given the rng state.
std::string make_hostname(stats::Rng& rng, std::string_view city_code,
                          std::uint32_t asn);

/// Extracts the first label of a hostname that decodes as a city token
/// (the paper's hostname-based mapping heuristic). Returns the city index.
std::optional<std::size_t> parse_city(std::string_view hostname,
                                      const CityCodebook& codebook);

/// Reverse-DNS database for the synthetic Internet: address -> hostname,
/// plus optional RFC 1876 LOC records carrying explicit coordinates.
/// A configurable fraction of interfaces has no PTR record, and a small
/// fraction carries a *stale* name (the router moved; the name did not) —
/// both failure modes the hostname heuristic suffers in reality.
class DnsDatabase {
 public:
  [[nodiscard]] std::optional<std::string> lookup(net::Ipv4Addr addr) const;
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  void insert(net::Ipv4Addr addr, std::string hostname);

  /// RFC 1876 LOC record: exact coordinates, "accurate, [but] not
  /// required and therefore not always available" (paper, Section II).
  void insert_loc(net::Ipv4Addr addr, const geo::GeoPoint& where);
  [[nodiscard]] std::optional<geo::GeoPoint> lookup_loc(net::Ipv4Addr addr) const;
  [[nodiscard]] std::size_t loc_count() const noexcept {
    return loc_records_.size();
  }

 private:
  std::unordered_map<std::uint32_t, std::string> records_;
  std::unordered_map<std::uint32_t, geo::GeoPoint> loc_records_;
};

struct DnsOptions {
  double named_fraction = 0.88;   ///< interfaces with a PTR record
  double stale_fraction = 0.015;  ///< named, but with a wrong city token
  double loc_fraction = 0.04;     ///< interfaces with an RFC 1876 LOC record
  std::uint64_t seed = 1021;
};

/// Names the ground truth's interfaces after their routers' nearest
/// cities, honouring the failure modes above.
DnsDatabase build_dns(const GroundTruth& truth, const CityCodebook& codebook,
                      const DnsOptions& options = {});

/// A mechanically-faithful IxMapper implementing the paper's fallback
/// chain: hostname city-token parsing first, then DNS LOC records, and
/// finally whois (the organisation's headquarters city); unmappable when
/// all three fail. Contrast with GeoMapper, which models the same
/// behaviour statistically.
class HostnameMapper final : public Mapper {
 public:
  HostnameMapper(const DnsDatabase& dns, const CityCodebook& codebook,
                 double whois_fallback_rate, std::uint64_t seed);

  [[nodiscard]] std::optional<geo::GeoPoint> map(
      net::Ipv4Addr addr, const geo::GeoPoint& true_location,
      const geo::GeoPoint& as_home) const override;

  [[nodiscard]] std::string name() const override { return "HostnameMapper"; }

 private:
  const DnsDatabase* dns_;
  const CityCodebook* codebook_;
  double whois_fallback_rate_;
  std::uint64_t seed_;
};

}  // namespace geonet::synth
